module enframe

go 1.22
