package pctable

import (
	"math"
	"testing"

	"enframe/internal/event"
	"enframe/internal/worlds"
)

// sensors/readings fixture: two substations, uncertain readings.
func fixture() (*event.Space, *Relation, *Relation, []event.Expr) {
	sp := event.NewSpace()
	x1 := event.NewVar(sp.Add("x1", 0.6), "x1")
	x2 := event.NewVar(sp.Add("x2", 0.3), "x2")
	x3 := event.NewVar(sp.Add("x3", 0.5), "x3")

	sensors := NewRelation("sensors", "sid", "station")
	sensors.Insert(nil, Num(1), Str("north"))
	sensors.Insert(x1, Num(2), Str("south")) // sensor 2 may be offline

	readings := NewRelation("readings", "sid", "load", "pd")
	readings.Insert(x2, Num(1), Num(30), Num(5))
	readings.Insert(x3, Num(2), Num(70), Num(40))
	readings.Insert(nil, Num(1), Num(28), Num(4))
	return sp, sensors, readings, []event.Expr{x1, x2, x3}
}

func TestSelectJoinProject(t *testing.T) {
	sp, sensors, readings, _ := fixture()
	joined := sensors.Join(readings)
	if len(joined.Tuples) != 3 {
		t.Fatalf("join produced %d tuples, want 3", len(joined.Tuples))
	}
	south := joined.Select(func(get func(string) Value) bool {
		return get("station").Equal(Str("south"))
	})
	if len(south.Tuples) != 1 {
		t.Fatalf("selection produced %d tuples, want 1", len(south.Tuples))
	}
	// South reading exists iff sensor 2 online AND reading present:
	// Pr = 0.6 · 0.5.
	probs := south.TupleProb(sp)
	if !close2(probs[0], 0.3) {
		t.Errorf("Pr = %g, want 0.3", probs[0])
	}
	// Projection merges duplicate station values with ∨.
	stations := joined.Project("station")
	if len(stations.Tuples) != 2 {
		t.Fatalf("projection produced %d tuples, want 2", len(stations.Tuples))
	}
}

func TestProjectDisjoinsLineage(t *testing.T) {
	sp := event.NewSpace()
	x := event.NewVar(sp.Add("x", 0.5), "x")
	y := event.NewVar(sp.Add("y", 0.5), "y")
	r := NewRelation("r", "a", "b")
	r.Insert(x, Str("k"), Num(1))
	r.Insert(y, Str("k"), Num(2))
	p := r.Project("a")
	if len(p.Tuples) != 1 {
		t.Fatalf("got %d tuples, want 1", len(p.Tuples))
	}
	// Pr[x ∨ y] = 0.75.
	if got := p.TupleProb(sp)[0]; !close2(got, 0.75) {
		t.Errorf("Pr = %g, want 0.75", got)
	}
}

func TestUnionMergesDuplicates(t *testing.T) {
	sp := event.NewSpace()
	x := event.NewVar(sp.Add("x", 0.5), "x")
	y := event.NewVar(sp.Add("y", 0.5), "y")
	a := NewRelation("a", "v").Insert(x, Num(7))
	b := NewRelation("b", "v").Insert(y, Num(7)).Insert(nil, Num(8))
	u := a.Union(b)
	if len(u.Tuples) != 2 {
		t.Fatalf("got %d tuples, want 2", len(u.Tuples))
	}
	if got := u.TupleProb(sp)[0]; !close2(got, 0.75) {
		t.Errorf("Pr = %g, want 0.75", got)
	}
}

// TestAggregatesMatchEnumeration checks the c-value aggregates against
// per-world evaluation: in each world, the SUM aggregate must equal the sum
// of the present tuples (u when none).
func TestAggregatesMatchEnumeration(t *testing.T) {
	sp, sensors, readings, _ := fixture()
	joined := sensors.Join(readings)
	sum := joined.AggSum("load")
	count := joined.AggCount()

	worlds.Enumerate(sp, func(nu event.SliceValuation, p float64) bool {
		wantSum := event.U
		wantCount := event.U
		ev := event.NewEvaluator(nu, nil)
		for _, tup := range joined.Tuples {
			if ev.EvalExpr(tup.Lineage) {
				wantSum = event.Add(wantSum, event.Num(tup.Values[joined.col("load")].F))
				wantCount = event.Add(wantCount, event.Num(1))
			}
		}
		if got := ev.EvalNum(sum); !got.Equal(wantSum) {
			t.Fatalf("world %v: sum %v, want %v", nu, got, wantSum)
		}
		if got := ev.EvalNum(count); !got.Equal(wantCount) {
			t.Fatalf("world %v: count %v, want %v", nu, got, wantCount)
		}
		return true
	})
}

func TestGroupByAndObjects(t *testing.T) {
	sp, sensors, readings, _ := fixture()
	joined := sensors.Join(readings)
	groups := joined.GroupBy("station")
	keys := GroupKeys(groups)
	if len(keys) != 2 || keys[0] != "north" || keys[1] != "south" {
		t.Fatalf("group keys = %v", keys)
	}
	objs := joined.Objects("load", "pd")
	if len(objs) != 3 {
		t.Fatalf("got %d objects, want 3", len(objs))
	}
	if objs[2].Pos[0] != 70 || objs[2].Pos[1] != 40 {
		t.Errorf("object 2 position = %v", objs[2].Pos)
	}
	if p := event.ExactProb(objs[2].Lineage, sp); !close2(p, 0.3) {
		t.Errorf("object 2 existence probability = %g, want 0.3", p)
	}
}

func TestEmptyAggregatesAreUndefined(t *testing.T) {
	r := NewRelation("empty", "v")
	sum := r.AggSum("v")
	if got := event.EvalNum(sum, event.MapValuation{}, nil); !got.IsUndef() {
		t.Errorf("empty SUM = %v, want u", got)
	}
	if got := event.EvalNum(r.AggCount(), event.MapValuation{}, nil); !got.IsUndef() {
		t.Errorf("empty COUNT = %v, want u", got)
	}
}

func close2(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
