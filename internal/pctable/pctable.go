// Package pctable implements probabilistic-conditioned tables (pc-tables)
// and a positive relational algebra with aggregates over them — the
// substrate ENFrame's loadData() uses to pull uncertain objects from a
// database (§2 "Input data"; the paper delegates this to the SPROUT engine
// [14], which this package stands in for). Each tuple carries a lineage
// event over the shared variable space; operators combine lineage with ∧
// and ∨ following provenance semantics, and SUM/COUNT aggregates produce
// the c-values of the event language.
package pctable

import (
	"fmt"
	"sort"
	"strings"

	"enframe/internal/event"
	"enframe/internal/lineage"
	"enframe/internal/vec"
)

// Value is an attribute value: a string or a float64 (ints are floats).
type Value struct {
	IsStr bool
	S     string
	F     float64
}

// Str returns a string attribute value.
func Str(s string) Value { return Value{IsStr: true, S: s} }

// Num returns a numeric attribute value.
func Num(f float64) Value { return Value{F: f} }

func (v Value) String() string {
	if v.IsStr {
		return v.S
	}
	return fmt.Sprintf("%g", v.F)
}

// Equal compares attribute values.
func (v Value) Equal(w Value) bool { return v == w }

// Tuple is one row with its lineage event Φ.
type Tuple struct {
	Values  []Value
	Lineage event.Expr
}

// Relation is a pc-table: a schema plus tuples annotated with events.
type Relation struct {
	Name   string
	Schema []string
	Tuples []Tuple
}

// NewRelation returns an empty pc-table with the given schema.
func NewRelation(name string, schema ...string) *Relation {
	return &Relation{Name: name, Schema: schema}
}

// Insert appends a tuple with the given lineage (nil means certain).
func (r *Relation) Insert(lineage event.Expr, vals ...Value) *Relation {
	if len(vals) != len(r.Schema) {
		panic(fmt.Sprintf("pctable: %s: inserted %d values into schema of %d", r.Name, len(vals), len(r.Schema)))
	}
	if lineage == nil {
		lineage = event.True
	}
	r.Tuples = append(r.Tuples, Tuple{Values: vals, Lineage: lineage})
	return r
}

func (r *Relation) col(name string) int {
	for i, c := range r.Schema {
		if c == name {
			return i
		}
	}
	panic(fmt.Sprintf("pctable: relation %s has no attribute %q", r.Name, name))
}

// Pred is a tuple predicate for selections.
type Pred func(get func(col string) Value) bool

// Select keeps the tuples satisfying the predicate; lineage is unchanged.
func (r *Relation) Select(pred Pred) *Relation {
	out := NewRelation(r.Name+"_sel", r.Schema...)
	for _, t := range r.Tuples {
		tt := t
		if pred(func(c string) Value { return tt.Values[r.col(c)] }) {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// Project keeps the named columns, merging duplicate result tuples by
// disjoining their lineage (possible-worlds projection semantics).
func (r *Relation) Project(cols ...string) *Relation {
	out := NewRelation(r.Name+"_proj", cols...)
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = r.col(c)
	}
	seen := map[string]int{}
	for _, t := range r.Tuples {
		vals := make([]Value, len(cols))
		for i, j := range idx {
			vals[i] = t.Values[j]
		}
		key := tupleKey(vals)
		if at, dup := seen[key]; dup {
			out.Tuples[at].Lineage = event.NewOr(out.Tuples[at].Lineage, t.Lineage)
			continue
		}
		seen[key] = len(out.Tuples)
		out.Tuples = append(out.Tuples, Tuple{Values: vals, Lineage: t.Lineage})
	}
	return out
}

// Join computes the natural join; joined tuples carry the conjunction of
// their inputs' lineage.
func (r *Relation) Join(s *Relation) *Relation {
	var shared []string
	for _, c := range r.Schema {
		for _, d := range s.Schema {
			if c == d {
				shared = append(shared, c)
			}
		}
	}
	var extra []string
	for _, d := range s.Schema {
		if !contains(shared, d) {
			extra = append(extra, d)
		}
	}
	out := NewRelation(r.Name+"_"+s.Name, append(append([]string{}, r.Schema...), extra...)...)
	for _, t := range r.Tuples {
		for _, u := range s.Tuples {
			match := true
			for _, c := range shared {
				if !t.Values[r.col(c)].Equal(u.Values[s.col(c)]) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			vals := append(append([]Value{}, t.Values...), nil...)
			for _, d := range extra {
				vals = append(vals, u.Values[s.col(d)])
			}
			out.Tuples = append(out.Tuples, Tuple{
				Values:  vals,
				Lineage: event.NewAnd(t.Lineage, u.Lineage),
			})
		}
	}
	return out
}

// Union appends s to r (schemas must match), merging identical tuples by
// disjunction.
func (r *Relation) Union(s *Relation) *Relation {
	if len(r.Schema) != len(s.Schema) {
		panic("pctable: union over mismatched schemas")
	}
	out := NewRelation(r.Name+"_u_"+s.Name, r.Schema...)
	out.Tuples = append(out.Tuples, r.Tuples...)
	seen := map[string]int{}
	for i, t := range out.Tuples {
		seen[tupleKey(t.Values)] = i
	}
	for _, t := range s.Tuples {
		key := tupleKey(t.Values)
		if at, dup := seen[key]; dup {
			out.Tuples[at].Lineage = event.NewOr(out.Tuples[at].Lineage, t.Lineage)
			continue
		}
		seen[key] = len(out.Tuples)
		out.Tuples = append(out.Tuples, t)
	}
	return out
}

// TupleProb computes the marginal probability of each result tuple by the
// exact (enumeration-based) event semantics; fine for the data sizes
// loadData() handles.
func (r *Relation) TupleProb(space *event.Space) []float64 {
	out := make([]float64, len(r.Tuples))
	for i, t := range r.Tuples {
		out[i] = event.ExactProb(t.Lineage, space)
	}
	return out
}

// AggSum builds the c-value Σ_t Φ(t) ∧ ⊗v(t) over a numeric column — the
// semimodule-style aggregation of [14] in event-language form: the sum of
// the column over the tuples present in a world (undefined when no tuple
// exists).
func (r *Relation) AggSum(col string) event.NumExpr {
	j := r.col(col)
	terms := make([]event.NumExpr, 0, len(r.Tuples))
	for _, t := range r.Tuples {
		terms = append(terms, event.NewCondVal(t.Lineage, event.Num(t.Values[j].F)))
	}
	if len(terms) == 0 {
		return event.NewCondVal(event.False, event.U)
	}
	return event.NewSum(terms...)
}

// AggCount builds the c-value Σ_t Φ(t) ⊗ 1: the number of tuples present
// in a world (undefined when none is).
func (r *Relation) AggCount() event.NumExpr {
	terms := make([]event.NumExpr, 0, len(r.Tuples))
	for _, t := range r.Tuples {
		terms = append(terms, event.NewCondVal(t.Lineage, event.Num(1)))
	}
	if len(terms) == 0 {
		return event.NewCondVal(event.False, event.U)
	}
	return event.NewSum(terms...)
}

// GroupBy partitions tuples by the values of the given columns, returning
// one relation per group, keyed by the rendered group values.
func (r *Relation) GroupBy(cols ...string) map[string]*Relation {
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = r.col(c)
	}
	out := map[string]*Relation{}
	for _, t := range r.Tuples {
		var parts []string
		for _, j := range idx {
			parts = append(parts, t.Values[j].String())
		}
		key := strings.Join(parts, "|")
		g, ok := out[key]
		if !ok {
			g = NewRelation(r.Name+"@"+key, r.Schema...)
			out[key] = g
		}
		g.Tuples = append(g.Tuples, t)
	}
	return out
}

// GroupKeys returns the sorted group keys of a GroupBy result.
func GroupKeys(groups map[string]*Relation) []string {
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func tupleKey(vals []Value) string {
	var b strings.Builder
	for _, v := range vals {
		if v.IsStr {
			b.WriteByte('s')
			b.WriteString(v.S)
		} else {
			fmt.Fprintf(&b, "n%g", v.F)
		}
		b.WriteByte(0)
	}
	return b.String()
}

func contains(xs []string, x string) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}

// Objects converts a query result into uncertain data points for
// clustering: the named numeric columns become feature coordinates and each
// tuple's lineage conditions the point's existence — ENFrame's
// loadData()-from-query path (§2).
func (r *Relation) Objects(featureCols ...string) []lineage.Object {
	idx := make([]int, len(featureCols))
	for i, c := range featureCols {
		idx[i] = r.col(c)
	}
	out := make([]lineage.Object, len(r.Tuples))
	for i, t := range r.Tuples {
		pos := make(vec.Vec, len(idx))
		for d, j := range idx {
			pos[d] = t.Values[j].F
		}
		out[i] = lineage.Object{ID: i, Pos: pos, Lineage: t.Lineage}
	}
	return out
}
