package translate

import (
	"enframe/internal/event"
	"enframe/internal/network"
)

// eref and nref are opaque handles to Boolean events and c-values held by an
// emitter. The translator core is written entirely against handles, so the
// same evaluation code drives both back ends: the legacy AST emitter (handles
// index side tables of event.Expr/event.NumExpr) and the fused network
// emitter (handles ARE hash-consed network node ids).
type eref int32

type nref int32

// emitter is the translation back end: every event-construction site in the
// evaluator goes through it. Implementations must mirror the simplifications
// of the event constructors (¬¬e = e, ∧/∨ flattening, guard fusion) so both
// back ends denote the same networks.
type emitter interface {
	boolConst(v bool) eref
	constNum(v event.Value) nref
	// lineage grounds an externally supplied lineage expression (the Φ(o_l)
	// of loadData and init bindings).
	lineage(e event.Expr) eref
	not(e eref) eref
	and(es []eref) eref
	and2(l, r eref) eref
	or(es []eref) eref
	or2(l, r eref) eref
	atom(op event.CmpOp, l, r nref) eref
	condVal(guard eref, val event.Value) nref
	guardNum(guard eref, v nref) nref
	sum(xs []nref) nref
	sum2(l, r nref) nref
	prod(xs []nref) nref
	prod2(l, r nref) nref
	inv(x nref) nref
	pow(x nref, exp int) nref
	dist(l, r nref) nref
	declareBool(label string, e eref)
	declareNum(label string, n nref)
}

// astEmitter is the two-phase back end: it materialises the event-program
// AST (§3.5), which a later grounding pass walks into the network (§4.1).
// Handles index the bools/nums side tables; slots 0/1 of bools are
// pre-seeded with ⊥/⊤ so constants resolve without allocation.
type astEmitter struct {
	prog  *event.Program
	bools []event.Expr
	nums  []event.NumExpr
}

func newASTEmitter(prog *event.Program) *astEmitter {
	return &astEmitter{prog: prog, bools: []event.Expr{event.False, event.True}}
}

func (a *astEmitter) putB(e event.Expr) eref {
	a.bools = append(a.bools, e)
	return eref(len(a.bools) - 1)
}

func (a *astEmitter) putN(x event.NumExpr) nref {
	a.nums = append(a.nums, x)
	return nref(len(a.nums) - 1)
}

func (a *astEmitter) boolAt(e eref) event.Expr   { return a.bools[e] }
func (a *astEmitter) numAt(n nref) event.NumExpr { return a.nums[n] }

func (a *astEmitter) boolSlice(es []eref) []event.Expr {
	out := make([]event.Expr, len(es))
	for i, e := range es {
		out[i] = a.bools[e]
	}
	return out
}

func (a *astEmitter) numSlice(xs []nref) []event.NumExpr {
	out := make([]event.NumExpr, len(xs))
	for i, x := range xs {
		out[i] = a.nums[x]
	}
	return out
}

func (a *astEmitter) boolConst(v bool) eref {
	if v {
		return 1
	}
	return 0
}

func (a *astEmitter) constNum(v event.Value) nref { return a.putN(event.NewConstNum(v)) }
func (a *astEmitter) lineage(e event.Expr) eref   { return a.putB(e) }
func (a *astEmitter) not(e eref) eref             { return a.putB(event.NewNot(a.bools[e])) }
func (a *astEmitter) and(es []eref) eref          { return a.putB(event.NewAnd(a.boolSlice(es)...)) }
func (a *astEmitter) and2(l, r eref) eref         { return a.putB(event.NewAnd(a.bools[l], a.bools[r])) }
func (a *astEmitter) or(es []eref) eref           { return a.putB(event.NewOr(a.boolSlice(es)...)) }
func (a *astEmitter) or2(l, r eref) eref          { return a.putB(event.NewOr(a.bools[l], a.bools[r])) }

func (a *astEmitter) atom(op event.CmpOp, l, r nref) eref {
	return a.putB(event.NewAtom(op, a.nums[l], a.nums[r]))
}

func (a *astEmitter) condVal(guard eref, val event.Value) nref {
	return a.putN(event.NewCondVal(a.bools[guard], val))
}

func (a *astEmitter) guardNum(guard eref, v nref) nref {
	return a.putN(event.NewGuard(a.bools[guard], a.nums[v]))
}

func (a *astEmitter) sum(xs []nref) nref  { return a.putN(event.NewSum(a.numSlice(xs)...)) }
func (a *astEmitter) sum2(l, r nref) nref { return a.putN(event.NewSum(a.nums[l], a.nums[r])) }
func (a *astEmitter) prod(xs []nref) nref { return a.putN(event.NewProd(a.numSlice(xs)...)) }
func (a *astEmitter) prod2(l, r nref) nref {
	return a.putN(event.NewProd(a.nums[l], a.nums[r]))
}
func (a *astEmitter) inv(x nref) nref          { return a.putN(event.NewInv(a.nums[x])) }
func (a *astEmitter) pow(x nref, exp int) nref { return a.putN(event.NewPow(a.nums[x], exp)) }
func (a *astEmitter) dist(l, r nref) nref      { return a.putN(event.NewDist(a.nums[l], a.nums[r])) }

func (a *astEmitter) declareBool(label string, e eref) { a.prog.DeclareBool(label, a.bools[e]) }
func (a *astEmitter) declareNum(label string, n nref)  { a.prog.DeclareNum(label, a.nums[n]) }

// netEmitter is the fused back end (§3.5 + §4.1 in one pass): handles are
// network node ids and every construction interns directly into the
// hash-consed DAG, so the event-program AST is never materialised.
type netEmitter struct {
	b *network.Builder
	// ids is the reusable handle-conversion scratch for n-ary emissions;
	// pair keeps binary emissions off the heap.
	ids  []network.NodeID
	pair [2]network.NodeID
}

func (ne *netEmitter) toIDs(es []eref) []network.NodeID {
	ids := ne.ids[:0]
	for _, e := range es {
		ids = append(ids, network.NodeID(e))
	}
	ne.ids = ids
	return ids
}

func (ne *netEmitter) toNumIDs(xs []nref) []network.NodeID {
	ids := ne.ids[:0]
	for _, x := range xs {
		ids = append(ids, network.NodeID(x))
	}
	ne.ids = ids
	return ids
}

func (ne *netEmitter) boolConst(v bool) eref        { return eref(ne.b.Bool(v)) }
func (ne *netEmitter) constNum(v event.Value) nref  { return nref(ne.b.ConstNum(v)) }
func (ne *netEmitter) lineage(e event.Expr) eref    { return eref(ne.b.AddExpr(e)) }
func (ne *netEmitter) not(e eref) eref              { return eref(ne.b.Not(network.NodeID(e))) }
func (ne *netEmitter) and(es []eref) eref           { return eref(ne.b.And(ne.toIDs(es)...)) }
func (ne *netEmitter) or(es []eref) eref            { return eref(ne.b.Or(ne.toIDs(es)...)) }

func (ne *netEmitter) and2(l, r eref) eref {
	ne.pair[0], ne.pair[1] = network.NodeID(l), network.NodeID(r)
	return eref(ne.b.And(ne.pair[:]...))
}

func (ne *netEmitter) or2(l, r eref) eref {
	ne.pair[0], ne.pair[1] = network.NodeID(l), network.NodeID(r)
	return eref(ne.b.Or(ne.pair[:]...))
}

func (ne *netEmitter) atom(op event.CmpOp, l, r nref) eref {
	return eref(ne.b.Cmp(op, network.NodeID(l), network.NodeID(r)))
}

func (ne *netEmitter) condVal(guard eref, val event.Value) nref {
	return nref(ne.b.CondVal(network.NodeID(guard), val))
}

func (ne *netEmitter) guardNum(guard eref, v nref) nref {
	return nref(ne.b.Guard(network.NodeID(guard), network.NodeID(v)))
}

func (ne *netEmitter) sum(xs []nref) nref  { return nref(ne.b.Sum(ne.toNumIDs(xs)...)) }
func (ne *netEmitter) prod(xs []nref) nref { return nref(ne.b.Prod(ne.toNumIDs(xs)...)) }

func (ne *netEmitter) sum2(l, r nref) nref {
	ne.pair[0], ne.pair[1] = network.NodeID(l), network.NodeID(r)
	return nref(ne.b.Sum(ne.pair[:]...))
}

func (ne *netEmitter) prod2(l, r nref) nref {
	ne.pair[0], ne.pair[1] = network.NodeID(l), network.NodeID(r)
	return nref(ne.b.Prod(ne.pair[:]...))
}

func (ne *netEmitter) inv(x nref) nref { return nref(ne.b.Inv(network.NodeID(x))) }

func (ne *netEmitter) pow(x nref, exp int) nref {
	return nref(ne.b.Pow(network.NodeID(x), exp))
}

func (ne *netEmitter) dist(l, r nref) nref {
	return nref(ne.b.Dist(network.NodeID(l), network.NodeID(r)))
}

// The fused path never emits labelled declarations: labels only exist to
// name intermediates in the event-program artifact, and final variable
// bindings are tracked in the translator environment itself.
func (ne *netEmitter) declareBool(string, eref) {}
func (ne *netEmitter) declareNum(string, nref)  {}
