// Package translate turns user programs (internal/lang) into event programs
// (§3.5): mutable program variables become sequences of immutable event
// declarations whose names carry per-block assignment counters (the
// getLabel construction of Example 3, including the copy declarations
// emitted when a variable crosses a block boundary), arrays are flattened
// to one identifier per element, and reduce_* calls become the aggregate
// event expressions of the event language.
//
// The package has two back ends sharing one evaluator. Translate is the
// two-phase path: it materialises the event-program AST, which callers
// ground into a network afterwards. TranslateInto is the fused path
// (§3.5 + §4.1 in a single streaming pass): every event is interned into a
// hash-consed network.Builder the moment it is constructed, no AST is
// built, and the getLabel bookkeeping is skipped entirely because labelled
// declarations exist only to name intermediates in the AST artifact.
package translate

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"enframe/internal/event"
	"enframe/internal/lang"
	"enframe/internal/lineage"
	"enframe/internal/network"
	"enframe/internal/obs"
)

// External supplies the bindings for loadData(), loadParams(), and init(),
// mirroring interp.External but producing symbolic events: loadData binds
// O_l ≡ Φ(o_l) ⊗ o_l.
type External struct {
	Objects     []lineage.Object
	Space       *event.Space
	Matrix      [][]float64
	Params      []int
	InitIndices []int
	// Obs, when non-nil, receives "check" and "translate" spans under the
	// trace root, annotated with declaration and symbol counts.
	Obs *obs.Trace
}

// Result is a translated program: the grounded event program plus the final
// symbolic bindings of every program variable.
type Result struct {
	Program *event.Program
	finalB  map[string]event.Expr
	finalN  map[string]event.NumExpr
	labels  map[string]string
}

// BoolEvent returns the final Boolean event of a (flattened) variable
// symbol such as "InCl[0][2]".
func (r *Result) BoolEvent(sym string) (event.Expr, bool) {
	e, ok := r.finalB[sym]
	return e, ok
}

// HasBool reports whether sym is bound to a final Boolean event.
func (r *Result) HasBool(sym string) bool {
	_, ok := r.finalB[sym]
	return ok
}

// NumEvent returns the final c-value of a variable symbol.
func (r *Result) NumEvent(sym string) (event.NumExpr, bool) {
	n, ok := r.finalN[sym]
	return n, ok
}

// Label returns the last declared label of a variable symbol.
func (r *Result) Label(sym string) (string, bool) {
	l, ok := r.labels[sym]
	return l, ok
}

// SymbolsWithPrefix returns the flattened Boolean variable symbols starting
// with the given prefix, sorted lexicographically.
func (r *Result) SymbolsWithPrefix(prefix string) []string {
	return symbolsWithPrefix(r.finalB, prefix)
}

func symbolsWithPrefix[V any](m map[string]V, prefix string) []string {
	var out []string
	for sym := range m {
		if strings.HasPrefix(sym, prefix) {
			out = append(out, sym)
		}
	}
	sort.Strings(out)
	return out
}

// NetResult is the outcome of the fused TranslateInto path: the final
// bindings of every program variable as node ids in the caller's builder.
type NetResult struct {
	finalB map[string]network.NodeID
	finalN map[string]network.NodeID
}

// BoolNode returns the network node of a symbol's final Boolean event.
func (r *NetResult) BoolNode(sym string) (network.NodeID, bool) {
	id, ok := r.finalB[sym]
	return id, ok
}

// HasBool reports whether sym is bound to a final Boolean event.
func (r *NetResult) HasBool(sym string) bool {
	_, ok := r.finalB[sym]
	return ok
}

// NumNode returns the network node of a symbol's final c-value.
func (r *NetResult) NumNode(sym string) (network.NodeID, bool) {
	id, ok := r.finalN[sym]
	return id, ok
}

// SymbolsWithPrefix returns the flattened Boolean variable symbols starting
// with the given prefix, sorted lexicographically.
func (r *NetResult) SymbolsWithPrefix(prefix string) []string {
	return symbolsWithPrefix(r.finalB, prefix)
}

// Translate validates and translates a user program over the given external
// bindings, producing the two-phase event-program artifact.
func Translate(prog *lang.Program, ext External) (*Result, error) {
	checkSpan := ext.Obs.Root().Start("check")
	err := lang.Validate(prog)
	checkSpan.End()
	if err != nil {
		return nil, err
	}
	span := ext.Obs.Root().Start("translate")
	defer span.End()
	space := ext.Space
	if space == nil {
		space = event.NewSpace()
	}
	ae := newASTEmitter(event.NewProgram(space))
	tr := &translator{
		ext:    ext,
		em:     ae,
		decls:  true,
		vars:   map[string]tval{},
		labels: map[string]*labelStack{},
		frames: []*frame{{}},
	}
	if err := tr.stmts(prog.Stmts); err != nil {
		return nil, err
	}
	res := &Result{
		Program: ae.prog,
		finalB:  map[string]event.Expr{},
		finalN:  map[string]event.NumExpr{},
		labels:  map[string]string{},
	}
	for name, v := range tr.vars {
		exportAST(ae, res, name, v)
	}
	for sym, ls := range tr.labels {
		res.labels[sym] = ls.last
	}
	span.SetInt("decls", int64(len(ae.prog.Decls)))
	span.SetInt("symbols", int64(len(res.finalB)+len(res.finalN)))
	return res, nil
}

// TranslateInto validates and translates a user program, emitting every
// event directly into b as it is constructed (the fused front end). The
// caller owns the builder: register targets against the returned bindings
// and Build() to finalise the network.
func TranslateInto(prog *lang.Program, ext External, b *network.Builder) (*NetResult, error) {
	checkSpan := ext.Obs.Root().Start("check")
	err := lang.Validate(prog)
	checkSpan.End()
	if err != nil {
		return nil, err
	}
	span := ext.Obs.Root().Start("translate+ground")
	defer span.End()
	ne := &netEmitter{b: b}
	tr := &translator{
		ext:  ext,
		em:   ne,
		vars: map[string]tval{},
	}
	if err := tr.stmts(prog.Stmts); err != nil {
		return nil, err
	}
	res := &NetResult{
		finalB: map[string]network.NodeID{},
		finalN: map[string]network.NodeID{},
	}
	for name, v := range tr.vars {
		exportNet(ne, res, name, v)
	}
	span.SetInt("symbols", int64(len(res.finalB)+len(res.finalN)))
	return res, nil
}

func exportAST(ae *astEmitter, res *Result, sym string, v tval) {
	if v.arr != nil {
		for i, el := range v.arr {
			exportAST(ae, res, fmt.Sprintf("%s[%d]", sym, i), el)
		}
		return
	}
	if v.none {
		return
	}
	if b, ok := v.boolRef(ae); ok {
		res.finalB[sym] = ae.boolAt(b)
		return
	}
	if n, ok := v.numRef(ae); ok {
		res.finalN[sym] = ae.numAt(n)
	}
}

func exportNet(ne *netEmitter, res *NetResult, sym string, v tval) {
	if v.arr != nil {
		for i, el := range v.arr {
			exportNet(ne, res, fmt.Sprintf("%s[%d]", sym, i), el)
		}
		return
	}
	if v.none {
		return
	}
	if b, ok := v.boolRef(ne); ok {
		res.finalB[sym] = network.NodeID(b)
		return
	}
	if n, ok := v.numRef(ne); ok {
		res.finalN[sym] = network.NodeID(n)
	}
}

// tval is a symbolic value: a compile-time constant, a Boolean event, a
// c-value, an array, or the uninitialised placeholder. Event values are
// emitter handles, not AST pointers, so the evaluator is back-end agnostic.
type tval struct {
	none    bool
	isConst bool
	hasEv   bool
	hasNum  bool
	ev      eref
	num     nref
	constV  event.Value
	arr     []tval
}

func constTV(v event.Value) tval { return tval{isConst: true, constV: v} }

func boolTV(e eref) tval { return tval{hasEv: true, ev: e} }

func numTV(n nref) tval { return tval{hasNum: true, num: n} }

func noneTV() tval { return tval{none: true} }

// boolRef lifts the value to a Boolean event handle.
func (v tval) boolRef(em emitter) (eref, bool) {
	if v.hasEv {
		return v.ev, true
	}
	if v.isConst && v.constV.Kind == event.Boolean {
		return em.boolConst(v.constV.B), true
	}
	return 0, false
}

// numRef lifts the value to a c-value handle.
func (v tval) numRef(em emitter) (nref, bool) {
	if v.hasNum {
		return v.num, true
	}
	if v.isConst && v.constV.Kind != event.Boolean {
		return em.constNum(v.constV), true
	}
	return 0, false
}

func (v tval) constInt() (int, bool) {
	if !v.isConst || v.constV.Kind != event.Scalar {
		return 0, false
	}
	i := int(v.constV.S)
	if float64(i) != v.constV.S {
		return 0, false
	}
	return i, true
}

// labelStack tracks the per-block assignment counters of one variable
// symbol (getLabel, §3.5). counts[d] is the symbol's assignment counter in
// the block at nesting depth d; counters for blocks the symbol has not been
// assigned in yet sit at −1, which keeps labels unique across block
// boundaries.
type labelStack struct {
	counts []int
	last   string
}

func (ls *labelStack) render(sym string) string {
	parts := make([]string, len(ls.counts))
	for i, c := range ls.counts {
		parts[i] = strconv.Itoa(c)
	}
	return sym + strings.Join(parts, ".")
}

type frame struct {
	touched []string
	seen    map[string]bool
}

func (f *frame) touch(sym string) {
	if f.seen == nil {
		f.seen = map[string]bool{}
	}
	if !f.seen[sym] {
		f.seen[sym] = true
		f.touched = append(f.touched, sym)
	}
}

type translator struct {
	ext External
	em  emitter
	// decls enables the getLabel declaration machinery; the fused back end
	// runs with it off — declarations never influence final bindings, only
	// the event-program artifact.
	decls  bool
	vars   map[string]tval
	labels map[string]*labelStack
	frames []*frame
}

func (tr *translator) depth() int { return len(tr.frames) - 1 }

// declare emits one event declaration under the label machinery.
func (tr *translator) declare(label string, v tval) error {
	if b, ok := v.boolRef(tr.em); ok {
		tr.em.declareBool(label, b)
		return nil
	}
	if n, ok := v.numRef(tr.em); ok {
		tr.em.declareNum(label, n)
		return nil
	}
	return fmt.Errorf("translate: cannot declare %q: value has no event form", label)
}

// assignSym records an assignment of a flattened variable symbol, emitting
// the labelled declaration and returning its label. Vector-valued and
// placeholder values are tracked without declarations.
func (tr *translator) assignSym(sym string, v tval) error {
	if !tr.decls {
		return nil
	}
	ls := tr.labels[sym]
	d := tr.depth()
	if ls == nil {
		ls = &labelStack{}
		tr.labels[sym] = ls
	}
	// Align the stack to the current depth, opening silent counter slots
	// for blocks the symbol has not been touched in (reads emit the
	// block-entry copies; plain writes need no copy).
	for len(ls.counts) <= d {
		ls.counts = append(ls.counts, -1)
	}
	ls.counts = ls.counts[:d+1]
	ls.counts[d]++
	label := ls.render(sym)
	ls.last = label
	tr.frames[d].touch(sym)
	if v.none || (!v.hasEv && !v.hasNum && !v.isConst) {
		return nil
	}
	return tr.declare(label, v)
}

// readAlign emits the block-entry copy declarations of Example 3 (lines C
// and F): the first read of a symbol inside a deeper block binds
// label.(-1) ≡ current value.
func (tr *translator) readAlign(sym string, v tval) error {
	ls := tr.labels[sym]
	if ls == nil {
		return nil // externally bound values carry no labels
	}
	d := tr.depth()
	for len(ls.counts) <= d {
		ls.counts = append(ls.counts, -1)
		label := ls.render(sym)
		ls.last = label
		tr.frames[len(ls.counts)-1].touch(sym)
		if !v.none {
			if err := tr.declare(label, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// pushFrame opens a loop block; popFrame closes it, emitting the exit-copy
// assignments that carry each touched symbol back to the parent block
// (Example 3, lines I and J). Both are no-ops on the fused path.
func (tr *translator) pushFrame() {
	if !tr.decls {
		return
	}
	tr.frames = append(tr.frames, &frame{})
}

func (tr *translator) popFrame() error {
	if !tr.decls {
		return nil
	}
	d := tr.depth()
	f := tr.frames[d]
	tr.frames = tr.frames[:d]
	for _, sym := range f.touched {
		ls := tr.labels[sym]
		if ls == nil || len(ls.counts) != d+1 {
			continue
		}
		ls.counts = ls.counts[:d]
		v, ok := tr.lookupSym(sym)
		if !ok {
			continue
		}
		if err := tr.assignSym(sym, v); err != nil {
			return err
		}
	}
	return nil
}

// lookupSym resolves a flattened element symbol like "M[1][2]" against the
// variable environment.
func (tr *translator) lookupSym(sym string) (tval, bool) {
	name := sym
	var idx []int
	if i := strings.IndexByte(sym, '['); i >= 0 {
		name = sym[:i]
		for _, part := range strings.Split(sym[i+1:len(sym)-1], "][") {
			n, err := strconv.Atoi(part)
			if err != nil {
				return tval{}, false
			}
			idx = append(idx, n)
		}
	}
	v, ok := tr.vars[name]
	if !ok {
		return tval{}, false
	}
	for _, ix := range idx {
		if v.arr == nil || ix < 0 || ix >= len(v.arr) {
			return tval{}, false
		}
		v = v.arr[ix]
	}
	return v, true
}
