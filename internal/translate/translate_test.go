package translate

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"enframe/internal/event"
	"enframe/internal/interp"
	"enframe/internal/lang"
	"enframe/internal/lineage"
	"enframe/internal/vec"
	"enframe/internal/worlds"
)

// TestExampleThreeLabels reproduces the label sequence of the paper's
// Example 3 exactly, including the block-entry and block-exit copy
// declarations.
func TestExampleThreeLabels(t *testing.T) {
	prog := lang.MustParse(lang.Example3Source)
	res, err := Translate(prog, External{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"M0",                         // M ≡ 7
		"M1",                         // M ≡ M0 + 2
		"M1.-1",                      // block entry copy (line C)
		"M1.0",                       // i = 0 assignment (line E)
		"M1.0.-1",                    // inner block entry copy (line F)
		"M1.0.0", "M1.0.1", "M1.0.2", // inner assignments (line H)
		"M1.1", // inner block exit copy (line I)
		"M1.2", // i = 1 assignment
		"M1.2.-1",
		"M1.2.0", "M1.2.1", "M1.2.2",
		"M1.3",
		"M2", // outer block exit copy (line J)
		"M3", // final assignment (line K)
	}
	got := res.Program.Names()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("labels:\n got %v\nwant %v", got, want)
	}
	// The final value must match the interpreter: 7+2, +0, +3·1, +1, +3·1, +1.
	n, ok := res.NumEvent("M")
	if !ok {
		t.Fatal("no final numeric binding for M")
	}
	v := event.EvalNum(n, event.MapValuation{}, nil)
	if !v.Equal(event.Num(17)) {
		t.Fatalf("final M = %v, want 17", v)
	}
}

// diffProgram runs the translate-vs-interpret differential test: for every
// world, evaluating the translated events must equal running the program in
// that world with absent objects bound to u.
func diffProgram(t *testing.T, src string, ext External, metric vec.Distance, syms []string) {
	t.Helper()
	prog := lang.MustParse(src)
	res, err := Translate(prog, ext)
	if err != nil {
		t.Fatal(err)
	}
	evs := lineage.Events(ext.Objects)
	worlds.Enumerate(ext.Space, func(nu event.SliceValuation, p float64) bool {
		present := worlds.Presence(evs, nu)
		w, err := interp.Run(prog, interp.External{
			Objects:     ext.Objects,
			Present:     present,
			Matrix:      ext.Matrix,
			Params:      ext.Params,
			InitIndices: ext.InitIndices,
			Metric:      metric,
		})
		if err != nil {
			t.Fatalf("interp: %v", err)
		}
		ev := event.NewEvaluator(nu, metric)
		for _, sym := range syms {
			var got event.Value
			if b, ok := res.BoolEvent(sym); ok {
				got = event.Bool(ev.EvalExpr(b))
			} else if n, ok := res.NumEvent(sym); ok {
				got = ev.EvalNum(n)
			} else {
				t.Fatalf("no translated binding for %s", sym)
			}
			want, err := lookupWorldValue(w, sym)
			if err != nil {
				t.Fatal(err)
			}
			if !got.AlmostEqual(want, 1e-9) && !got.Equal(want) {
				t.Fatalf("world %v: %s: translated %v vs interpreted %v", nu, sym, got, want)
			}
		}
		return true
	})
}

// lookupWorldValue resolves a flattened symbol like "InCl[1][2]" in the
// interpreter's final environment.
func lookupWorldValue(w *interp.World, sym string) (event.Value, error) {
	name := sym
	var idx []int
	if i := indexByte(sym, '['); i >= 0 {
		name = sym[:i]
		rest := sym[i:]
		for len(rest) > 0 {
			j := indexByte(rest, ']')
			var n int
			fmt.Sscanf(rest[1:j], "%d", &n)
			idx = append(idx, n)
			rest = rest[j+1:]
		}
	}
	v, ok := w.Var(name)
	if !ok {
		return event.Value{}, fmt.Errorf("no interpreter variable %q", name)
	}
	for _, ix := range idx {
		if !v.IsArr() || ix >= len(v.Arr) {
			return event.Value{}, fmt.Errorf("bad index path %s", sym)
		}
		v = v.Arr[ix]
	}
	if v.None {
		return event.Value{}, fmt.Errorf("%s is uninitialised", sym)
	}
	return v.V, nil
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

func uncertainObjects(t *testing.T, rng *rand.Rand, n int, scheme lineage.Scheme) ([]lineage.Object, *event.Space) {
	t.Helper()
	pts := make([]vec.Vec, n)
	for i := range pts {
		pts[i] = vec.New(float64(rng.Intn(25)), float64(rng.Intn(25)))
	}
	objs, space, err := lineage.Attach(pts, lineage.Config{
		Scheme: scheme, GroupSize: 2, NumVars: 4, L: 2, M: 3, Seed: rng.Int63(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return objs, space
}

// TestKMedoidsTranslationMatchesInterpreter checks the generic translation
// of Figure 1 against the per-world interpreter on every world.
func TestKMedoidsTranslationMatchesInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 6; trial++ {
		objs, space := uncertainObjects(t, rng, 5, lineage.Scheme(trial%4))
		ext := External{
			Objects: objs, Space: space,
			Params:      []int{2, 2}, // k, iter
			InitIndices: []int{0, 1},
		}
		var syms []string
		for i := 0; i < 2; i++ {
			for l := 0; l < len(objs); l++ {
				syms = append(syms, fmt.Sprintf("InCl[%d][%d]", i, l))
				syms = append(syms, fmt.Sprintf("Centre[%d][%d]", i, l))
			}
		}
		diffProgram(t, lang.KMedoidsSource, ext, vec.SquaredEuclidean, syms)
	}
}

// TestKMeansTranslationMatchesInterpreter checks Figure 2 end to end,
// including the vector-valued centroid c-values.
func TestKMeansTranslationMatchesInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 6; trial++ {
		objs, space := uncertainObjects(t, rng, 4, lineage.Scheme(trial%4))
		ext := External{
			Objects: objs, Space: space,
			Params:      []int{2, 2},
			InitIndices: []int{0, 1},
		}
		syms := []string{"M[0]", "M[1]"}
		for i := 0; i < 2; i++ {
			for l := 0; l < len(objs); l++ {
				syms = append(syms, fmt.Sprintf("InCl[%d][%d]", i, l))
			}
		}
		diffProgram(t, lang.KMeansSource, ext, vec.SquaredEuclidean, syms)
	}
}

// TestMCLTranslationMatchesInterpreter checks Figure 3: a numeric program
// with products, powers, and inversions over a certain matrix.
func TestMCLTranslationMatchesInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 4
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	// A small symmetric stochastic-ish matrix.
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			w := rng.Float64()
			m[i][j], m[j][i] = w, w
		}
	}
	pts := make([]vec.Vec, n)
	for i := range pts {
		pts[i] = vec.New(float64(i))
	}
	objs := lineage.Certain(pts)
	ext := External{
		Objects: objs, Space: event.NewSpace(),
		Matrix: m,
		Params: []int{2, 2}, // r, iter
	}
	var syms []string
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			syms = append(syms, fmt.Sprintf("M[%d][%d]", i, j))
		}
	}
	diffProgram(t, lang.MCLSource, ext, nil, syms)
}

// TestTranslateDeclarationsAreImmutable ensures every emitted label is
// unique (the event-program immutability requirement of §3.4 — DeclareBool
// panics on duplicates, so reaching the end is the assertion).
func TestTranslateUniqueLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	objs, space := uncertainObjects(t, rng, 4, lineage.Positive)
	ext := External{Objects: objs, Space: space, Params: []int{2, 3}, InitIndices: []int{0, 1}}
	res, err := Translate(lang.MustParse(lang.KMedoidsSource), ext)
	if err != nil {
		t.Fatal(err)
	}
	names := res.Program.Names()
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate label %q", n)
		}
		seen[n] = true
	}
	if len(names) < 50 {
		t.Fatalf("suspiciously few declarations: %d", len(names))
	}
}
