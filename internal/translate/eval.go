package translate

import (
	"fmt"

	"enframe/internal/event"
	"enframe/internal/lang"
)

func (tr *translator) stmts(sts []lang.Stmt) error {
	for _, st := range sts {
		if err := tr.stmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (tr *translator) stmt(st lang.Stmt) error {
	switch t := st.(type) {
	case *lang.TupleAssign:
		return tr.tupleAssign(t)
	case *lang.Assign:
		return tr.assign(t)
	case *lang.For:
		from, err := tr.intExpr(t.From)
		if err != nil {
			return err
		}
		to, err := tr.intExpr(t.To)
		if err != nil {
			return err
		}
		// One frame covers every iteration of the loop block; nested
		// loops open a fresh frame per enclosing iteration (§3.5).
		tr.pushFrame()
		outer, had := tr.vars[t.Var]
		for i := from; i < to; i++ {
			tr.vars[t.Var] = constTV(event.Num(float64(i)))
			if err := tr.stmts(t.Body); err != nil {
				return err
			}
		}
		if had {
			tr.vars[t.Var] = outer
		} else {
			delete(tr.vars, t.Var)
		}
		return tr.popFrame()
	}
	return fmt.Errorf("translate: unknown statement %T", st)
}

func (tr *translator) tupleAssign(t *lang.TupleAssign) error {
	switch t.Fn {
	case "loadData":
		if len(t.Names) < 2 || len(t.Names) > 3 {
			return errAt(t.Pos, "loadData() binds (O, n) or (O, n, M)")
		}
		objs := make([]tval, len(tr.ext.Objects))
		for l, o := range tr.ext.Objects {
			// O_l ≡ Φ(o_l) ⊗ o_l (Figures 1–3).
			objs[l] = numTV(tr.em.condVal(tr.em.lineage(o.Lineage), event.Vect(o.Pos)))
		}
		arr := tval{arr: objs}
		tr.vars[t.Names[0]] = arr
		if err := tr.assignArray(t.Names[0], arr); err != nil {
			return err
		}
		tr.vars[t.Names[1]] = constTV(event.Num(float64(len(objs))))
		if len(t.Names) == 3 {
			if tr.ext.Matrix == nil {
				return errAt(t.Pos, "loadData() has no matrix binding configured")
			}
			rows := make([]tval, len(tr.ext.Matrix))
			for i, r := range tr.ext.Matrix {
				cells := make([]tval, len(r))
				for j, x := range r {
					cells[j] = constTV(event.Num(x))
				}
				rows[i] = tval{arr: cells}
			}
			tr.vars[t.Names[2]] = tval{arr: rows}
		}
		return nil
	case "loadParams":
		if len(t.Names) != len(tr.ext.Params) {
			return errAt(t.Pos, "loadParams() binds %d names but %d params were supplied",
				len(t.Names), len(tr.ext.Params))
		}
		for i, n := range t.Names {
			tr.vars[n] = constTV(event.Num(float64(tr.ext.Params[i])))
		}
		return nil
	}
	return errAt(t.Pos, "unknown external %q", t.Fn)
}

// assignArray flattens a whole-array binding into per-element labelled
// declarations; a no-op on the fused path, which emits no declarations.
func (tr *translator) assignArray(sym string, v tval) error {
	if !tr.decls {
		return nil
	}
	if v.arr == nil {
		return tr.assignSym(sym, v)
	}
	for i, el := range v.arr {
		if err := tr.assignArray(fmt.Sprintf("%s[%d]", sym, i), el); err != nil {
			return err
		}
	}
	return nil
}

func (tr *translator) assign(t *lang.Assign) error {
	// `M = init()`: M^i_{-1} ≡ Φ(o_π(i)) ⊗ o_π(i).
	if c, ok := t.Value.(*lang.Call); ok && c.Fn == "init" {
		ms := make([]tval, len(tr.ext.InitIndices))
		for i, ix := range tr.ext.InitIndices {
			o := tr.ext.Objects[ix]
			ms[i] = numTV(tr.em.condVal(tr.em.lineage(o.Lineage), event.Vect(o.Pos)))
		}
		arr := tval{arr: ms}
		tr.vars[t.Target.Name] = arr
		return tr.assignArray(t.Target.Name, arr)
	}
	val, err := tr.expr(t.Value)
	if err != nil {
		return err
	}
	if len(t.Target.Indices) == 0 {
		tr.vars[t.Target.Name] = val
		if val.arr != nil {
			return tr.assignArray(t.Target.Name, val)
		}
		return tr.assignSym(t.Target.Name, val)
	}
	cur, ok := tr.vars[t.Target.Name]
	if !ok || cur.arr == nil {
		return errAt(t.Pos, "%q is not an initialised array", t.Target.Name)
	}
	sym := t.Target.Name
	cell := &cur
	for d, ixe := range t.Target.Indices {
		ix, err := tr.intExpr(ixe)
		if err != nil {
			return err
		}
		if cell.arr == nil {
			return errAt(t.Pos, "%q has fewer than %d dimensions", t.Target.Name, d+1)
		}
		if ix < 0 || ix >= len(cell.arr) {
			return errAt(t.Pos, "index %d out of range for %q (size %d)", ix, t.Target.Name, len(cell.arr))
		}
		cell = &cell.arr[ix]
		if tr.decls {
			sym = fmt.Sprintf("%s[%d]", sym, ix)
		}
	}
	*cell = val
	tr.vars[t.Target.Name] = cur
	if val.arr != nil {
		return tr.assignArray(sym, val)
	}
	return tr.assignSym(sym, val)
}

func (tr *translator) intExpr(e lang.Expr) (int, error) {
	v, err := tr.expr(e)
	if err != nil {
		return 0, err
	}
	i, ok := v.constInt()
	if !ok {
		return 0, errAt(e.Position(), "expected a compile-time integer, found %s", lang.ExprString(e))
	}
	return i, nil
}

func (tr *translator) expr(e lang.Expr) (tval, error) {
	switch t := e.(type) {
	case *lang.IntLit:
		return constTV(event.Num(float64(t.V))), nil
	case *lang.FloatLit:
		return constTV(event.Num(t.V)), nil
	case *lang.BoolLit:
		return constTV(event.Bool(t.V)), nil
	case *lang.NoneLit:
		return noneTV(), nil
	case *lang.Name:
		v, ok := tr.vars[t.Ident]
		if !ok {
			return tval{}, errAt(t.Pos, "undefined name %q", t.Ident)
		}
		if err := tr.readAlignTree(t.Ident, v); err != nil {
			return tval{}, err
		}
		return v, nil
	case *lang.IndexExpr:
		base, err := tr.expr(t.X)
		if err != nil {
			return tval{}, err
		}
		ix, err := tr.intExpr(t.Index)
		if err != nil {
			return tval{}, err
		}
		if base.arr == nil {
			return tval{}, errAt(t.Pos, "indexing a non-array")
		}
		if ix < 0 || ix >= len(base.arr) {
			return tval{}, errAt(t.Pos, "index %d out of range (size %d)", ix, len(base.arr))
		}
		return base.arr[ix], nil
	case *lang.ArrayLit:
		size, err := tr.intExpr(t.Size)
		if err != nil {
			return tval{}, err
		}
		arr := make([]tval, size)
		for i := range arr {
			arr[i] = noneTV()
		}
		return tval{arr: arr}, nil
	case *lang.BinOp:
		return tr.binop(t)
	case *lang.Call:
		return tr.call(t)
	case *lang.ListCompr:
		return tval{}, errAt(t.Pos, "list comprehension outside reduce_*")
	}
	return tval{}, fmt.Errorf("translate: unknown expression %T", e)
}

// readAlignTree emits block-entry copies for every element of a read
// variable; a no-op on the fused path.
func (tr *translator) readAlignTree(sym string, v tval) error {
	if !tr.decls {
		return nil
	}
	if v.arr != nil {
		for i, el := range v.arr {
			if err := tr.readAlignTree(fmt.Sprintf("%s[%d]", sym, i), el); err != nil {
				return err
			}
		}
		return nil
	}
	return tr.readAlign(sym, v)
}

func (tr *translator) binop(t *lang.BinOp) (tval, error) {
	l, err := tr.expr(t.L)
	if err != nil {
		return tval{}, err
	}
	r, err := tr.expr(t.R)
	if err != nil {
		return tval{}, err
	}
	// Constant folding keeps loop bounds and indices compile-time.
	if l.isConst && r.isConst {
		switch t.Op {
		case "+":
			return constTV(event.Add(l.constV, r.constV)), nil
		case "*":
			return constTV(event.Mul(l.constV, r.constV)), nil
		default:
			op, err := cmpOp(t.Op)
			if err != nil {
				return tval{}, errAt(t.Pos, "%v", err)
			}
			return constTV(event.Bool(event.Compare(op, l.constV, r.constV))), nil
		}
	}
	ln, ok := l.numRef(tr.em)
	if !ok {
		return tval{}, errAt(t.L.Position(), "expected a numeric operand")
	}
	rn, ok := r.numRef(tr.em)
	if !ok {
		return tval{}, errAt(t.R.Position(), "expected a numeric operand")
	}
	switch t.Op {
	case "+":
		return numTV(tr.em.sum2(ln, rn)), nil
	case "*":
		return numTV(tr.em.prod2(ln, rn)), nil
	}
	op, err := cmpOp(t.Op)
	if err != nil {
		return tval{}, errAt(t.Pos, "%v", err)
	}
	return boolTV(tr.em.atom(op, ln, rn)), nil
}

func cmpOp(op string) (event.CmpOp, error) {
	switch op {
	case "<=":
		return event.LE, nil
	case ">=":
		return event.GE, nil
	case "<":
		return event.LT, nil
	case ">":
		return event.GT, nil
	case "==":
		return event.EQ, nil
	}
	return 0, fmt.Errorf("unknown operator %q", op)
}

func (tr *translator) numArg(e lang.Expr) (nref, error) {
	v, err := tr.expr(e)
	if err != nil {
		return 0, err
	}
	n, ok := v.numRef(tr.em)
	if !ok {
		return 0, errAt(e.Position(), "expected a numeric argument")
	}
	return n, nil
}

func (tr *translator) call(t *lang.Call) (tval, error) {
	if len(t.Fn) > 7 && t.Fn[:7] == "reduce_" {
		return tr.reduce(t)
	}
	switch t.Fn {
	case "dist":
		l, err := tr.numArg(t.Args[0])
		if err != nil {
			return tval{}, err
		}
		r, err := tr.numArg(t.Args[1])
		if err != nil {
			return tval{}, err
		}
		return numTV(tr.em.dist(l, r)), nil
	case "pow":
		b, err := tr.numArg(t.Args[0])
		if err != nil {
			return tval{}, err
		}
		exp, err := tr.intExpr(t.Args[1])
		if err != nil {
			return tval{}, err
		}
		return numTV(tr.em.pow(b, exp)), nil
	case "invert":
		b, err := tr.numArg(t.Args[0])
		if err != nil {
			return tval{}, err
		}
		return numTV(tr.em.inv(b)), nil
	case "scalar_mult":
		s, err := tr.numArg(t.Args[0])
		if err != nil {
			return tval{}, err
		}
		v, err := tr.numArg(t.Args[1])
		if err != nil {
			return tval{}, err
		}
		return numTV(tr.em.prod2(s, v)), nil
	case "breakTies", "breakTies1", "breakTies2":
		arg, err := tr.expr(t.Args[0])
		if err != nil {
			return tval{}, err
		}
		return tr.breakTies(t, arg)
	case "init", "loadData", "loadParams":
		return tval{}, errAt(t.Pos, "%s() may only appear as a statement right-hand side", t.Fn)
	}
	return tval{}, errAt(t.Pos, "unknown function %q", t.Fn)
}

// breakTies translates the tie breakers of §2.2: the kept entry is the
// first true one, encoded as raw[i] ∧ ⋀_{i'<i} ¬raw[i'].
func (tr *translator) breakTies(t *lang.Call, arg tval) (tval, error) {
	boolOf := func(v tval) (eref, error) {
		b, ok := v.boolRef(tr.em)
		if !ok {
			return 0, errAt(t.Pos, "%s() expects a Boolean array", t.Fn)
		}
		return b, nil
	}
	// firstTrue shares the prefix ⋀_{i'<i} ¬raw[i'] across entries: ∧
	// flattening makes out[i] identical to the textbook n-ary conjunction,
	// while the fused back end interns each prefix exactly once.
	firstTrue := func(cells []tval) ([]tval, error) {
		out := make([]tval, len(cells))
		var notPrior eref
		for i, c := range cells {
			b, err := boolOf(c)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				out[i] = boolTV(b)
				notPrior = tr.em.not(b)
				continue
			}
			out[i] = boolTV(tr.em.and2(b, notPrior))
			notPrior = tr.em.and2(notPrior, tr.em.not(b))
		}
		return out, nil
	}
	switch t.Fn {
	case "breakTies":
		if arg.arr == nil {
			return tval{}, errAt(t.Pos, "breakTies() expects an array")
		}
		cells, err := firstTrue(arg.arr)
		if err != nil {
			return tval{}, err
		}
		return tval{arr: cells}, nil
	case "breakTies1":
		if arg.arr == nil {
			return tval{}, errAt(t.Pos, "breakTies1() expects a 2-dimensional array")
		}
		out := make([]tval, len(arg.arr))
		for i, row := range arg.arr {
			if row.arr == nil {
				return tval{}, errAt(t.Pos, "breakTies1() expects a 2-dimensional array")
			}
			cells, err := firstTrue(row.arr)
			if err != nil {
				return tval{}, err
			}
			out[i] = tval{arr: cells}
		}
		return tval{arr: out}, nil
	case "breakTies2":
		if arg.arr == nil || len(arg.arr) == 0 || arg.arr[0].arr == nil {
			return tval{}, errAt(t.Pos, "breakTies2() expects a 2-dimensional array")
		}
		k := len(arg.arr)
		n := len(arg.arr[0].arr)
		out := make([]tval, k)
		for i := range out {
			out[i] = tval{arr: make([]tval, n)}
		}
		col := make([]tval, k)
		for l := 0; l < n; l++ {
			for i := 0; i < k; i++ {
				if arg.arr[i].arr == nil || len(arg.arr[i].arr) != n {
					return tval{}, errAt(t.Pos, "breakTies2() expects a rectangular array")
				}
				col[i] = arg.arr[i].arr[l]
			}
			cells, err := firstTrue(col)
			if err != nil {
				return tval{}, err
			}
			for i := 0; i < k; i++ {
				out[i].arr[l] = cells[i]
			}
		}
		return tval{arr: out}, nil
	}
	return tval{}, errAt(t.Pos, "unknown tie breaker %q", t.Fn)
}

// reduce translates reduce_*(list comprehension) per §3.5: reduce_sum to
// Σ cond ∧ elem, reduce_or to ∨ cond ∧ elem, reduce_count to Σ cond ⊗ 1,
// reduce_and to ⋀ (¬cond ∨ elem) — the filtered-out elements contribute the
// neutral element — and reduce_mult to Π (cond ∧ elem + ¬cond ⊗ 1).
func (tr *translator) reduce(t *lang.Call) (tval, error) {
	lc := t.Args[0].(*lang.ListCompr)
	from, err := tr.intExpr(lc.From)
	if err != nil {
		return tval{}, err
	}
	to, err := tr.intExpr(lc.To)
	if err != nil {
		return tval{}, err
	}
	outer, had := tr.vars[lc.Var]
	defer func() {
		if had {
			tr.vars[lc.Var] = outer
		} else {
			delete(tr.vars, lc.Var)
		}
	}()

	var bools []eref
	var nums []nref
	for i := from; i < to; i++ {
		tr.vars[lc.Var] = constTV(event.Num(float64(i)))
		cond := tr.em.boolConst(true)
		if lc.Cond != nil {
			cv, err := tr.expr(lc.Cond)
			if err != nil {
				return tval{}, err
			}
			c, ok := cv.boolRef(tr.em)
			if !ok {
				return tval{}, errAt(lc.Pos, "filter condition must be Boolean")
			}
			cond = c
		}
		if t.Fn == "reduce_count" {
			nums = append(nums, tr.em.condVal(cond, event.Num(1)))
			continue
		}
		ev, err := tr.expr(lc.Elem)
		if err != nil {
			return tval{}, err
		}
		switch t.Fn {
		case "reduce_and":
			b, ok := ev.boolRef(tr.em)
			if !ok {
				return tval{}, errAt(lc.Pos, "reduce_and over non-Boolean elements")
			}
			bools = append(bools, tr.em.or2(tr.em.not(cond), b))
		case "reduce_or":
			b, ok := ev.boolRef(tr.em)
			if !ok {
				return tval{}, errAt(lc.Pos, "reduce_or over non-Boolean elements")
			}
			bools = append(bools, tr.em.and2(cond, b))
		case "reduce_sum":
			n, ok := ev.numRef(tr.em)
			if !ok {
				return tval{}, errAt(lc.Pos, "reduce_sum over non-numeric elements")
			}
			nums = append(nums, tr.em.guardNum(cond, n))
		case "reduce_mult":
			n, ok := ev.numRef(tr.em)
			if !ok {
				return tval{}, errAt(lc.Pos, "reduce_mult over non-numeric elements")
			}
			if lc.Cond == nil {
				nums = append(nums, n)
			} else {
				nums = append(nums, tr.em.sum2(
					tr.em.guardNum(cond, n),
					tr.em.condVal(tr.em.not(cond), event.Num(1)),
				))
			}
		default:
			return tval{}, errAt(t.Pos, "unknown reduction %q", t.Fn)
		}
	}
	switch t.Fn {
	case "reduce_and":
		return boolTV(tr.em.and(bools)), nil
	case "reduce_or":
		return boolTV(tr.em.or(bools)), nil
	case "reduce_sum", "reduce_count":
		if len(nums) == 0 {
			// Σ of an empty range is the undefined value.
			return numTV(tr.em.condVal(tr.em.boolConst(false), event.U)), nil
		}
		return numTV(tr.em.sum(nums)), nil
	case "reduce_mult":
		if len(nums) == 0 {
			return constTV(event.Num(1)), nil
		}
		return numTV(tr.em.prod(nums)), nil
	}
	return tval{}, errAt(t.Pos, "unknown reduction %q", t.Fn)
}

func errAt(pos lang.Pos, format string, args ...any) error {
	return fmt.Errorf("translate: %s: %s", pos, fmt.Sprintf(format, args...))
}
