// Package vec provides the feature space used by ENFrame programs: dense
// real-valued vectors and the distance measures the user language exposes
// through its dist(A, B) builtin.
package vec

import (
	"fmt"
	"math"
	"strings"
)

// Vec is a point in the feature space. The zero value is the empty vector.
type Vec []float64

// New returns a vector with the given components.
func New(xs ...float64) Vec { return Vec(xs) }

// Zero returns the origin of a dim-dimensional feature space.
func Zero(dim int) Vec { return make(Vec, dim) }

// Clone returns a copy of v that shares no storage with it.
func (v Vec) Clone() Vec {
	w := make(Vec, len(v))
	copy(w, v)
	return w
}

// Dim reports the dimension of v.
func (v Vec) Dim() int { return len(v) }

// Add returns v + w. Both vectors must have equal dimension.
func (v Vec) Add(w Vec) Vec {
	mustMatch(v, w, "Add")
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v − w. Both vectors must have equal dimension.
func (v Vec) Sub(w Vec) Vec {
	mustMatch(v, w, "Sub")
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns a·v.
func (v Vec) Scale(a float64) Vec {
	out := make(Vec, len(v))
	for i := range v {
		out[i] = a * v[i]
	}
	return out
}

// Dot returns the inner product of v and w.
func (v Vec) Dot(w Vec) float64 {
	mustMatch(v, w, "Dot")
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vec) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Equal reports whether v and w are component-wise identical.
func (v Vec) Equal(w Vec) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// AlmostEqual reports whether v and w agree within eps in every component.
func (v Vec) AlmostEqual(w Vec, eps float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > eps {
			return false
		}
	}
	return true
}

// String renders v as "(x0, x1, ...)".
func (v Vec) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, x := range v {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%g", x)
	}
	b.WriteByte(')')
	return b.String()
}

func mustMatch(v, w Vec, op string) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("vec: %s on mismatched dimensions %d and %d", op, len(v), len(w)))
	}
}

// Distance is a distance measure on the feature space.
type Distance func(a, b Vec) float64

// Euclidean is the L2 distance, the measure used throughout the paper's
// evaluation.
func Euclidean(a, b Vec) float64 {
	mustMatch(a, b, "Euclidean")
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// SquaredEuclidean is the squared L2 distance. It avoids the square root and
// preserves nearest-neighbour order (but not distance sums).
func SquaredEuclidean(a, b Vec) float64 {
	mustMatch(a, b, "SquaredEuclidean")
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Manhattan is the L1 distance.
func Manhattan(a, b Vec) float64 {
	mustMatch(a, b, "Manhattan")
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// Chebyshev is the L∞ distance.
func Chebyshev(a, b Vec) float64 {
	mustMatch(a, b, "Chebyshev")
	var s float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > s {
			s = d
		}
	}
	return s
}

// Mean returns the component-wise mean of the given vectors. It panics when
// vs is empty; callers in the clustering code guard for empty clusters with
// the undefined value of the event domain instead.
func Mean(vs []Vec) Vec {
	if len(vs) == 0 {
		panic("vec: Mean of no vectors")
	}
	acc := Zero(vs[0].Dim())
	for _, v := range vs {
		for i := range acc {
			acc[i] += v[i]
		}
	}
	return acc.Scale(1 / float64(len(vs)))
}
