package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	a, b := New(1, 2), New(3, 4)
	if got := a.Add(b); !got.Equal(New(4, 6)) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); !got.Equal(New(2, 2)) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); !got.Equal(New(2, 4)) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 11 {
		t.Errorf("Dot = %g", got)
	}
	if got := New(3, 4).Norm(); got != 5 {
		t.Errorf("Norm = %g", got)
	}
	if a.Equal(b) || !a.Equal(New(1, 2)) {
		t.Error("Equal misbehaves")
	}
	if !a.AlmostEqual(New(1+1e-12, 2), 1e-9) {
		t.Error("AlmostEqual within eps")
	}
	if a.AlmostEqual(New(1.1, 2), 1e-9) {
		t.Error("AlmostEqual outside eps")
	}
	if got := a.Clone(); !got.Equal(a) {
		t.Error("Clone differs")
	}
	if got := New(1.5, -2).String(); got != "(1.5, -2)" {
		t.Errorf("String = %q", got)
	}
}

func TestDistances(t *testing.T) {
	a, b := New(0, 0), New(3, 4)
	if got := Euclidean(a, b); got != 5 {
		t.Errorf("Euclidean = %g", got)
	}
	if got := SquaredEuclidean(a, b); got != 25 {
		t.Errorf("SquaredEuclidean = %g", got)
	}
	if got := Manhattan(a, b); got != 7 {
		t.Errorf("Manhattan = %g", got)
	}
	if got := Chebyshev(a, b); got != 4 {
		t.Errorf("Chebyshev = %g", got)
	}
}

func TestMean(t *testing.T) {
	got := Mean([]Vec{New(0, 0), New(2, 4)})
	if !got.Equal(New(1, 2)) {
		t.Errorf("Mean = %v", got)
	}
}

func TestMismatchedDimsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mismatched dimensions")
		}
	}()
	New(1).Add(New(1, 2))
}

// Metric axioms on random vectors: symmetry, identity, triangle inequality.
func TestMetricAxioms(t *testing.T) {
	metrics := map[string]Distance{
		"euclidean": Euclidean,
		"manhattan": Manhattan,
		"chebyshev": Chebyshev,
	}
	for name, d := range metrics {
		err := quick.Check(func(ax, ay, bx, by, cx, cy float64) bool {
			if anyNaNInf(ax, ay, bx, by, cx, cy) {
				return true
			}
			a, b, c := New(ax, ay), New(bx, by), New(cx, cy)
			if d(a, b) != d(b, a) {
				return false
			}
			if d(a, a) != 0 {
				return false
			}
			return d(a, c) <= d(a, b)+d(b, c)+1e-9*(1+d(a, b)+d(b, c))
		}, &quick.Config{MaxCount: 300})
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func anyNaNInf(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
			return true
		}
	}
	return false
}
