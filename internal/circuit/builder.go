package circuit

import "enframe/internal/event"

// Builder accumulates circuit nodes bottom-up with hash-consing: a node
// whose (variable, children, decisions) match an existing node is shared
// rather than stored again. Children must be built before their parent, so
// the tracer adds nodes in post-order; Finish seals the circuit.
type Builder struct {
	c *Circuit
	// buckets maps a node's content hash to the candidate node ids; the
	// full content is compared on lookup, so hash collisions only cost an
	// extra comparison.
	buckets map[uint64][]NodeID
	// noCons disables sharing (every Node call stores a fresh node); the
	// equivalence tests use it to prove consing never changes evaluation.
	noCons bool
}

// NewBuilder starts an empty circuit over a variable space of numVars
// variables and the given compilation targets (in bound-index order; the
// slice is retained).
func NewBuilder(numVars int, targets []string) *Builder {
	return &Builder{
		c: &Circuit{
			evOff:   []int32{0},
			root:    None,
			targets: targets,
			numVars: numVars,
		},
		buckets: map[uint64][]NodeID{},
	}
}

// DisableConsing makes every Node call store a fresh node (test hook: the
// unconsed circuit is the traced tree verbatim).
func (b *Builder) DisableConsing() { b.noCons = true }

// Node adds (or shares) a node branching on v with true child hi and false
// child lo, firing evs on entry. A leaf passes v < 0 and None children.
// The evs slice is copied; the caller may reuse its backing array.
func (b *Builder) Node(v event.VarID, hi, lo NodeID, evs []Decision) NodeID {
	h := hashNode(v, hi, lo, evs)
	if !b.noCons {
		for _, id := range b.buckets[h] {
			if b.sameNode(id, v, hi, lo, evs) {
				b.c.merged++
				return id
			}
		}
	}
	c := b.c
	id := NodeID(len(c.vars))
	c.vars = append(c.vars, int32(v))
	c.hi = append(c.hi, hi)
	c.lo = append(c.lo, lo)
	c.evs = append(c.evs, evs...)
	c.evOff = append(c.evOff, int32(len(c.evs)))
	visits := int64(1)
	if hi != None {
		visits += c.visits[hi]
	}
	if lo != None {
		visits += c.visits[lo]
	}
	c.visits = append(c.visits, visits)
	b.buckets[h] = append(b.buckets[h], id)
	return id
}

// sameNode reports whether stored node id has exactly the given content.
func (b *Builder) sameNode(id NodeID, v event.VarID, hi, lo NodeID, evs []Decision) bool {
	c := b.c
	if c.vars[id] != int32(v) || c.hi[id] != hi || c.lo[id] != lo {
		return false
	}
	got := c.evs[c.evOff[id]:c.evOff[id+1]]
	if len(got) != len(evs) {
		return false
	}
	for i, d := range got {
		if d != evs[i] {
			return false
		}
	}
	return true
}

// Finish seals the circuit with its root and completeness flag and releases
// the builder's cons table. The builder must not be used afterwards.
func (b *Builder) Finish(root NodeID, complete bool) *Circuit {
	c := b.c
	c.root = root
	c.complete = complete
	b.c = nil
	b.buckets = nil
	return c
}

// FNV-1a folded word-wise over the node content.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func hashNode(v event.VarID, hi, lo NodeID, evs []Decision) uint64 {
	h := uint64(fnvOffset64)
	mix := func(x uint64) uint64 {
		h ^= x
		h *= fnvPrime64
		return h
	}
	mix(uint64(uint32(v)))
	mix(uint64(uint32(hi)))
	mix(uint64(uint32(lo)))
	mix(uint64(len(evs)))
	for _, d := range evs {
		mix(uint64(d))
	}
	return h
}
