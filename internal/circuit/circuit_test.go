package circuit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"enframe/internal/event"
)

// genTree grows a random decision tree into b over variables v..nVars-1,
// deciding every target in undecided exactly once on each root-leaf path —
// the smoothness invariant the exact compiler guarantees for complete
// traces. Called with identical rng streams it reproduces the identical
// tree, which the consing-invariance and complement properties rely on.
func genTree(rng *rand.Rand, b *Builder, v, nVars int, undecided []int, flip bool) NodeID {
	var here []Decision
	var rest []int
	for _, t := range undecided {
		if v == nVars || rng.Float64() < 0.3 {
			here = append(here, NewDecision(t, rng.Intn(2) == 0 != flip))
		} else {
			rest = append(rest, t)
		}
	}
	if v == nVars || len(rest) == 0 {
		return b.Node(-1, None, None, here)
	}
	hi := genTree(rng, b, v+1, nVars, rest, flip)
	lo := genTree(rng, b, v+1, nVars, rest, flip)
	return b.Node(event.VarID(v), hi, lo, here)
}

func buildRandom(seed int64, nVars, nTargets int, cons, flip bool) *Circuit {
	names := make([]string, nTargets)
	undecided := make([]int, nTargets)
	for i := range undecided {
		undecided[i] = i
	}
	b := NewBuilder(nVars, names)
	if !cons {
		b.DisableConsing()
	}
	root := genTree(rand.New(rand.NewSource(seed)), b, 0, nVars, undecided, flip)
	return b.Finish(root, true)
}

// TestQuickEvaluatorProperties drives the evaluator's algebraic contract
// over random complete circuits and random probability assignments:
//
//   - determinism: two evaluations of the same circuit are bit-equal;
//   - consing invariance: the hash-consed circuit evaluates bit-identically
//     to the unshared tree, and the unshared tree's node count equals the
//     consed circuit's replay size (TreeBranches);
//   - smoothness: every path decides every target once, so the true mass
//     and false mass of each target partition the unit mass — lower +
//     (1 − upper) = 1;
//   - complement consistency: flipping every decision swaps the roles of
//     the bounds — lower' = 1 − upper and upper' = 1 − lower.
func TestQuickEvaluatorProperties(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		nVars := 1 + rng.Intn(6)
		nTargets := 1 + rng.Intn(4)
		c := buildRandom(seed, nVars, nTargets, true, false)
		flat := buildRandom(seed, nVars, nTargets, false, false)
		comp := buildRandom(seed, nVars, nTargets, true, true)

		probs := make([]float64, nVars)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		lo1, hi1, err := c.Eval(probs)
		if err != nil {
			t.Fatalf("seed %d: eval: %v", seed, err)
		}
		lo2, hi2, err := c.Eval(probs)
		if err != nil {
			t.Fatalf("seed %d: re-eval: %v", seed, err)
		}
		loF, hiF, err := flat.Eval(probs)
		if err != nil {
			t.Fatalf("seed %d: unconsed eval: %v", seed, err)
		}
		loC, hiC, err := comp.Eval(probs)
		if err != nil {
			t.Fatalf("seed %d: complement eval: %v", seed, err)
		}

		if int64(flat.Nodes()) != c.TreeBranches() {
			t.Fatalf("seed %d: unconsed tree has %d nodes, consed replay size %d",
				seed, flat.Nodes(), c.TreeBranches())
		}
		if c.Nodes() > flat.Nodes() {
			t.Fatalf("seed %d: consing grew the circuit: %d > %d", seed, c.Nodes(), flat.Nodes())
		}
		const tol = 1e-9
		for i := range lo1 {
			if math.Float64bits(lo1[i]) != math.Float64bits(lo2[i]) ||
				math.Float64bits(hi1[i]) != math.Float64bits(hi2[i]) {
				t.Fatalf("seed %d: target %d: evaluation not deterministic", seed, i)
			}
			if math.Float64bits(lo1[i]) != math.Float64bits(loF[i]) ||
				math.Float64bits(hi1[i]) != math.Float64bits(hiF[i]) {
				t.Fatalf("seed %d: target %d: consed [%g,%g] vs unconsed [%g,%g]",
					seed, i, lo1[i], hi1[i], loF[i], hiF[i])
			}
			if mass := lo1[i] + (1 - hi1[i]); math.Abs(mass-1) > tol {
				t.Fatalf("seed %d: target %d: true+false mass %g, want 1", seed, i, mass)
			}
			if math.Abs(loC[i]-(1-hi1[i])) > tol || math.Abs(hiC[i]-(1-lo1[i])) > tol {
				t.Fatalf("seed %d: target %d: complement [%g,%g] vs expected [%g,%g]",
					seed, i, loC[i], hiC[i], 1-hi1[i], 1-lo1[i])
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDecisionPacking(t *testing.T) {
	for _, tc := range []struct {
		target int
		isTrue bool
	}{{0, true}, {0, false}, {7, true}, {1 << 20, false}} {
		d := NewDecision(tc.target, tc.isTrue)
		if d.Target() != tc.target || d.True() != tc.isTrue {
			t.Errorf("NewDecision(%d, %t) round-tripped to (%d, %t)",
				tc.target, tc.isTrue, d.Target(), d.True())
		}
	}
}

// TestConsingMergesIsomorphic pins the core storage property: identical
// leaves and identical interior nodes are stored once.
func TestConsingMergesIsomorphic(t *testing.T) {
	b := NewBuilder(2, []string{"t"})
	l1 := b.Node(-1, None, None, []Decision{NewDecision(0, true)})
	l2 := b.Node(-1, None, None, []Decision{NewDecision(0, true)})
	if l1 != l2 {
		t.Fatalf("identical leaves got distinct ids %d, %d", l1, l2)
	}
	l3 := b.Node(-1, None, None, []Decision{NewDecision(0, false)})
	if l3 == l1 {
		t.Fatal("distinct leaves were merged")
	}
	n1 := b.Node(0, l1, l3, nil)
	n2 := b.Node(0, l1, l3, nil)
	if n1 != n2 {
		t.Fatalf("identical interior nodes got distinct ids %d, %d", n1, n2)
	}
	root := b.Node(1, n1, n2, nil)
	c := b.Finish(root, true)
	if c.Nodes() != 4 {
		t.Errorf("stored %d nodes, want 4 (two leaves, one interior, root)", c.Nodes())
	}
	if c.Merged() != 2 {
		t.Errorf("merged %d nodes, want 2", c.Merged())
	}
	// The consed diamond still replays as the full 7-node tree.
	if c.TreeBranches() != 7 {
		t.Errorf("replay size %d, want 7", c.TreeBranches())
	}
}

func TestEvalValidation(t *testing.T) {
	b := NewBuilder(2, []string{"t"})
	root := b.Node(-1, None, None, []Decision{NewDecision(0, true)})
	c := b.Finish(root, true)
	if _, _, err := c.Eval([]float64{0.5}); err == nil {
		t.Error("short probability vector accepted")
	}
	if _, _, err := c.Eval([]float64{0.5, 1.5}); err == nil {
		t.Error("probability outside [0, 1] accepted")
	}
	if _, _, err := c.Eval([]float64{0.5, math.NaN()}); err == nil {
		t.Error("NaN probability accepted")
	}
	if err := c.EvalInto([]float64{0.5, 0.5}, make([]float64, 2), make([]float64, 1)); err == nil {
		t.Error("mis-sized bound slices accepted")
	}
}

// TestNoneChildSkipped checks replay over a pruned (incomplete) circuit: the
// missing subtree contributes nothing, and the completeness flag records
// that the circuit must not serve other probability assignments.
func TestNoneChildSkipped(t *testing.T) {
	b := NewBuilder(1, []string{"t"})
	leaf := b.Node(-1, None, None, []Decision{NewDecision(0, true)})
	root := b.Node(0, leaf, None, nil)
	c := b.Finish(root, false)
	if c.Complete() {
		t.Fatal("pruned circuit reports complete")
	}
	lo, hi, err := c.Eval([]float64{0.25})
	if err != nil {
		t.Fatal(err)
	}
	if lo[0] != 0.25 || hi[0] != 1 {
		t.Errorf("bounds [%g, %g], want [0.25, 1]", lo[0], hi[0])
	}
}
