// Package circuit is ENFrame's knowledge-compilation backend: it records the
// exact Shannon-expansion compiler's decision tree (paper §4, Algorithm 1) as
// a smooth deterministic arithmetic circuit that can recompute every target's
// marginal for a fresh probability assignment without recompiling the event
// network — the compile-once/evaluate-many shape of production probabilistic
// systems (ProbLog's OBDD/d-DNNF pipeline).
//
// The circuit is a DAG of decision nodes in structure-of-arrays layout. A
// node carries the variable it branches on (or none, for a leaf), its
// true/false children, and the list of target decisions the compiler fired on
// entering the node — target ti was masked true (its mass joins the lower
// bound) or false (its mass leaves the upper bound). Hash-consing merges
// isomorphic subcircuits at build time, so repeated decision-tree fragments
// are stored once.
//
// Evaluation is a top-down mass replay: starting from the root with mass 1,
// each decision node splits its mass into p·P(v) and p·(1−P(v)) and every
// event fires lower[t] += p or upper[t] −= p, expanding the consed DAG back
// into the traced tree. This reproduces the compiler's floating-point
// operations in the compiler's order, so at the traced probability
// assignment the evaluated bounds are bit-identical to exact compilation —
// the contract internal/difftest enforces over generated programs. The
// hash-consing is therefore storage compression only: no BDD-style node
// elimination is applied, because collapsing Decision(v, a, a) into a would
// reorder the additions and break bit-identity.
package circuit

import (
	"fmt"

	"enframe/internal/event"
)

// NodeID indexes a circuit node; None marks an absent child.
type NodeID int32

// None is the null node: a subtree the compiler never explored (zero branch
// mass, abort, or a bounds-converged cut). Replay skips it.
const None NodeID = -1

// Decision packs one target decision fired on entering a node: the target
// index shifted left once, with the low bit set when the target decided true.
type Decision uint32

// NewDecision packs a target decision.
func NewDecision(target int, isTrue bool) Decision {
	d := Decision(target) << 1
	if isTrue {
		d |= 1
	}
	return d
}

// Target returns the decided target's index.
func (d Decision) Target() int { return int(d >> 1) }

// True reports whether the target decided true (mass joins the lower bound)
// rather than false (mass leaves the upper bound).
func (d Decision) True() bool { return d&1 != 0 }

// Circuit is an immutable compiled decision circuit. Build one with a
// Builder; evaluate with Eval or EvalInto. Safe for concurrent evaluation.
type Circuit struct {
	// Structure-of-arrays node storage: branch variable (< 0 for a leaf),
	// true/false children, and a CSR event list per node (evOff[i] ..
	// evOff[i+1] into evs, in the compiler's firing order).
	vars   []int32
	hi, lo []NodeID
	evOff  []int32
	evs    []Decision
	// visits[i] is the number of node visits a replay of i's subtree
	// performs — the subtree's size as a tree, before hash-cons sharing.
	visits []int64

	root     NodeID
	targets  []string
	numVars  int
	complete bool
	merged   int64
}

// Nodes returns the number of stored (hash-consed) nodes.
func (c *Circuit) Nodes() int { return len(c.vars) }

// Events returns the number of stored target decisions.
func (c *Circuit) Events() int { return len(c.evs) }

// Merged counts hash-cons hits during construction: tree nodes that were
// shared with an existing isomorphic subcircuit instead of stored again.
func (c *Circuit) Merged() int64 { return c.merged }

// TreeBranches is the number of node visits one replay performs — the size
// of the traced decision tree, which hash-consing compresses to Nodes().
func (c *Circuit) TreeBranches() int64 {
	if c.root == None {
		return 0
	}
	return c.visits[c.root]
}

// NumVars is the length of the probability vector Eval expects (the
// variable space size of the traced network).
func (c *Circuit) NumVars() int { return c.numVars }

// Targets returns the compilation targets in bound-index order. The slice
// is shared with the circuit; callers must not modify it.
func (c *Circuit) Targets() []string { return c.targets }

// Complete reports whether the trace covered the whole decision tree. The
// exact compiler legitimately skips subtrees whose branch mass is zero or
// whose targets' bounds already converged; a circuit containing such cuts
// still replays bit-identically at the traced probability assignment (the
// skipped mass is zero there), but would be wrong at other assignments, so
// incomplete circuits must not serve what-if or sensitivity queries.
func (c *Circuit) Complete() bool { return c.complete }

// Eval computes every target's [lower, upper] probability bounds under the
// given per-variable marginals (indexed by event.VarID). The bounds are the
// raw replayed sums; callers wanting the compiler's exact output clamp them
// to [0, 1] the same way prob.CompileCtx does.
func (c *Circuit) Eval(probs []float64) (lo, hi []float64, err error) {
	lo = make([]float64, len(c.targets))
	hi = make([]float64, len(c.targets))
	if err := c.EvalInto(probs, lo, hi); err != nil {
		return nil, nil, err
	}
	return lo, hi, nil
}

// EvalInto is Eval writing into caller-provided slices, so repeated sweeps
// (the serving layer's /v1/whatif grid) evaluate allocation-free.
func (c *Circuit) EvalInto(probs, lo, hi []float64) error {
	if len(probs) != c.numVars {
		return fmt.Errorf("circuit: %d probabilities for %d variables", len(probs), c.numVars)
	}
	if len(lo) != len(c.targets) || len(hi) != len(c.targets) {
		return fmt.Errorf("circuit: bound slices sized %d/%d for %d targets", len(lo), len(hi), len(c.targets))
	}
	for i, p := range probs {
		if !(p >= 0 && p <= 1) {
			return fmt.Errorf("circuit: probability %g for variable %d outside [0, 1]", p, i)
		}
	}
	for i := range lo {
		lo[i] = 0
		hi[i] = 1
	}
	if c.root != None {
		c.replay(c.root, 1, probs, lo, hi)
	}
	return nil
}

// replay expands the consed DAG back into the traced tree, firing each
// node's decisions with its branch mass. The multiplication and addition
// sequence matches the compiler's walker exactly: pT = p·P(v) before the
// true child, pF = p·(1−P(v)) before the false child, adds in DFS order.
// Zero-mass children are skipped — at the traced assignment such children
// were never recorded, so the skip can only fire at other assignments,
// where a zero mass contributes nothing.
func (c *Circuit) replay(id NodeID, p float64, probs, lo, hi []float64) {
	for _, d := range c.evs[c.evOff[id]:c.evOff[id+1]] {
		if d&1 != 0 {
			lo[d>>1] += p
		} else {
			hi[d>>1] -= p
		}
	}
	v := c.vars[id]
	if v < 0 {
		return
	}
	pv := probs[v]
	if h := c.hi[id]; h != None {
		if pT := p * pv; pT != 0 {
			c.replay(h, pT, probs, lo, hi)
		}
	}
	if l := c.lo[id]; l != None {
		if pF := p * (1 - pv); pF != 0 {
			c.replay(l, pF, probs, lo, hi)
		}
	}
}

// Var returns the branch variable of a node, or -1 for a leaf. Exposed for
// tests and diagnostics.
func (c *Circuit) Var(id NodeID) event.VarID { return event.VarID(c.vars[id]) }
