package prob

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"enframe/internal/network"
	"enframe/internal/obs"
)

// execCompile runs CompileExec over a fresh local session.
func execCompile(t *testing.T, net *network.Net, opts Options, slots int) *Result {
	t.Helper()
	sess, err := NewSession(net, opts)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	res, err := CompileExec(context.Background(), net, opts, NewLocalExecutor(sess, slots))
	if err != nil {
		t.Fatalf("CompileExec: %v", err)
	}
	return res
}

// TestCompileExecBitIdentical is the byte-identity contract of the
// executor-driven plane: exact marginals from job-sharded execution must
// equal the sequential run bit for bit, because the coordinator replays
// bound contributions in sequential DFS order.
func TestCompileExecBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	for trial := 0; trial < 40; trial++ {
		net := randomNet(rng, 3+rng.Intn(8), 1+rng.Intn(4))
		seq, err := Compile(net, Options{Strategy: Exact, JobDepth: 2})
		if err != nil {
			t.Fatalf("trial %d: sequential: %v", trial, err)
		}
		for _, slots := range []int{1, 3} {
			got := execCompile(t, net, Options{Strategy: Exact, JobDepth: 2}, slots)
			for i, tb := range got.Targets {
				want := seq.Targets[i]
				if math.Float64bits(tb.Lower) != math.Float64bits(want.Lower) ||
					math.Float64bits(tb.Upper) != math.Float64bits(want.Upper) {
					t.Fatalf("trial %d slots %d target %s: got [%x, %x], want [%x, %x]",
						trial, slots, tb.Name,
						math.Float64bits(tb.Lower), math.Float64bits(tb.Upper),
						math.Float64bits(want.Lower), math.Float64bits(want.Upper))
				}
			}
		}
	}
}

// TestCompileExecApproxContract checks Upper−Lower ≤ 2ε and enclosure of the
// true probability for the budgeted strategies under the executor plane.
func TestCompileExecApproxContract(t *testing.T) {
	rng := rand.New(rand.NewSource(172))
	const eps = 0.05
	for trial := 0; trial < 25; trial++ {
		net := randomNet(rng, 3+rng.Intn(7), 1+rng.Intn(3))
		want := exactByEnumeration(net)
		for _, strat := range []Strategy{Eager, Lazy, Hybrid} {
			res := execCompile(t, net, Options{Strategy: strat, Epsilon: eps, JobDepth: 2}, 2)
			for i, tb := range res.Targets {
				if tb.Gap() > 2*eps+1e-9 {
					t.Fatalf("trial %d %v target %s: gap %g > 2ε", trial, strat, tb.Name, tb.Gap())
				}
				if want[i] < tb.Lower-1e-9 || want[i] > tb.Upper+1e-9 {
					t.Fatalf("trial %d %v target %s: %g outside [%g, %g]",
						trial, strat, tb.Name, want[i], tb.Lower, tb.Upper)
				}
			}
		}
	}
}

// flakyExecutor fails every job with a transport error until failLeft hits
// zero, then delegates — exercising MultiExecutor dead-marking and the
// duplicate-free budget discipline across retries.
type flakyExecutor struct {
	inner    JobExecutor
	failLeft atomic.Int64
}

func (f *flakyExecutor) ExecuteJob(ctx context.Context, j *WireJob) (*WireResult, error) {
	if f.failLeft.Add(-1) >= 0 {
		return nil, ErrExecutorUnavailable
	}
	return f.inner.ExecuteJob(ctx, j)
}

func (f *flakyExecutor) Slots() int { return 1 }

func TestMultiExecutorFailover(t *testing.T) {
	rng := rand.New(rand.NewSource(173))
	net := randomNet(rng, 8, 3)
	opts := Options{Strategy: Exact, JobDepth: 2}
	seq, err := Compile(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	bad := &flakyExecutor{inner: NewLocalExecutor(sess, 1)}
	bad.failLeft.Store(1 << 30) // never recovers: always unavailable
	multi := NewMultiExecutor(bad, NewLocalExecutor(sess, 2))
	res, err := CompileExec(context.Background(), net, opts, multi)
	if err != nil {
		t.Fatalf("CompileExec with failover: %v", err)
	}
	for i, tb := range res.Targets {
		if math.Float64bits(tb.Lower) != math.Float64bits(seq.Targets[i].Lower) {
			t.Fatalf("target %s: failover broke bit-identity", tb.Name)
		}
	}
}

func TestMultiExecutorAllDead(t *testing.T) {
	bad := &flakyExecutor{}
	bad.failLeft.Store(1 << 30)
	multi := NewMultiExecutor(bad)
	_, err := multi.ExecuteJob(context.Background(), &WireJob{})
	if !errors.Is(err, ErrExecutorUnavailable) {
		t.Fatalf("want ErrExecutorUnavailable, got %v", err)
	}
}

func TestCompileExecCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(174))
	net := randomNet(rng, 10, 3)
	sess, err := NewSession(net, Options{Strategy: Exact})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = CompileExec(ctx, net, Options{Strategy: Exact}, NewLocalExecutor(sess, 1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestWorkQueuePopUnblocksOnStop is the regression test for the satellite
// fix: a cancelled compilation must wake workers parked on the queue's
// condition variable instead of leaving them blocked until the queue drains.
func TestWorkQueuePopUnblocksOnStop(t *testing.T) {
	var stop atomic.Bool
	q := newWorkQueue(4, &stop)
	unblocked := make(chan bool, 1)
	go func() {
		_, ok := q.pop()
		unblocked <- ok
	}()
	time.Sleep(10 * time.Millisecond) // let the popper park on cond.Wait
	stop.Store(true)
	q.interrupt()
	select {
	case ok := <-unblocked:
		if ok {
			t.Fatal("pop returned a job after stop")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop stayed blocked after stop + interrupt")
	}
}

// TestCompileCtxCancelUnblocksDistributed drives the same fix end to end:
// cancelling the context of a distributed compilation returns promptly.
func TestCompileCtxCancelUnblocksDistributed(t *testing.T) {
	rng := rand.New(rand.NewSource(175))
	net := randomNet(rng, 14, 4)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := CompileCtx(ctx, net, Options{Strategy: Exact, Workers: 4, JobDepth: 1})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("unexpected error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("distributed compile hung after cancellation")
	}
}

// TestQueueMetrics checks the in-process runner publishes the queue gauge
// and fork/inline counters added for parity with the remote plane.
func TestQueueMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(176))
	net := randomNet(rng, 10, 3)
	tr := obs.New("test")
	_, err := Compile(net, Options{Strategy: Exact, Workers: 3, JobDepth: 1, Obs: tr})
	if err != nil {
		t.Fatal(err)
	}
	reg := tr.Metrics()
	forked := reg.Counter("prob.jobs.forked").Value()
	inlined := reg.Counter("prob.jobs.inlined").Value()
	if forked == 0 {
		t.Fatalf("prob.jobs.forked = 0, want > 0 (inlined=%d)", inlined)
	}
	found := false
	for _, v := range reg.Values() {
		if v.Name == "prob.queue.depth" {
			found = true
		}
	}
	if !found {
		t.Fatal("prob.queue.depth gauge not registered")
	}
}
