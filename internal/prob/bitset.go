package prob

import "math/bits"

// bitset is a packed array of single-bit flags in uint64 words. The flat
// compilation core keeps the three-valued Boolean masks of the event network
// in two of these planes (decided-true and decided-false), so a node's truth
// value costs 2 bits instead of a 56-byte nmask, snapshot and restore at
// distributed fork markers are word-wide memmoves, and population counts run
// 64 nodes per instruction.
type bitset []uint64

// bitsetWords returns the word count covering n bits.
func bitsetWords(n int) int { return (n + 63) >> 6 }

func newBitset(n int) bitset { return make(bitset, bitsetWords(n)) }

// get reports bit i.
func (b bitset) get(i int32) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// set sets bit i.
func (b bitset) set(i int32) { b[i>>6] |= 1 << (uint(i) & 63) }

// clear clears bit i.
func (b bitset) clear(i int32) { b[i>>6] &^= 1 << (uint(i) & 63) }

// setTo writes bit i to v.
func (b bitset) setTo(i int32, v bool) {
	if v {
		b.set(i)
	} else {
		b.clear(i)
	}
}

// popcount returns the number of set bits, 64 per word-wide instruction.
func (b bitset) popcount() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// copyFrom overwrites b with src (same length), one memmove.
func (b bitset) copyFrom(src bitset) { copy(b, src) }

// clone returns an independent copy.
func (b bitset) clone() bitset { return append(bitset(nil), b...) }

// zero clears every word.
func (b bitset) zero() {
	for i := range b {
		b[i] = 0
	}
}

// Three-valued truth values over two planes: a node is true iff its bit is
// set in the decided-true plane, false iff set in the decided-false plane,
// unknown otherwise. At most one plane holds the bit; bval3 folds the pair
// back into the legacy int8 encoding so both cores share derivation helpers.
func bval3(decT, decF bitset, id int32) int8 {
	w, m := id>>6, uint64(1)<<(uint(id)&63)
	if decT[w]&m != 0 {
		return bTrue
	}
	if decF[w]&m != 0 {
		return bFalse
	}
	return bUnknown
}

// setBval3 writes the legacy-encoded truth value v into the planes.
func setBval3(decT, decF bitset, id int32, v int8) {
	w, m := id>>6, uint64(1)<<(uint(id)&63)
	decT[w] &^= m
	decF[w] &^= m
	switch v {
	case bTrue:
		decT[w] |= m
	case bFalse:
		decF[w] |= m
	}
}
