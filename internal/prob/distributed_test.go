package prob

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// These tests pin the concurrency contracts of the distributed runner's two
// shared structures. They are written to be meaningful under the race
// detector: multiple goroutines hammer the same queue/pool concurrently.

// TestWorkQueueDrains models the real worker protocol — each popped job may
// fork children before done() — and checks every job is processed exactly
// once and the queue closes exactly when the last job finishes.
func TestWorkQueueDrains(t *testing.T) {
	q := newWorkQueue(1<<30, nil) // no backpressure: every fork enqueues
	var forksLeft atomic.Int64
	forksLeft.Store(500)
	var processed atomic.Int64

	q.push(job{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j, ok := q.pop()
				if !ok {
					return
				}
				_ = j
				// Fork up to two children per job while the budget lasts,
				// like a worker crossing depth boundaries.
				for c := 0; c < 2; c++ {
					if forksLeft.Add(-1) >= 0 {
						q.push(job{})
					}
				}
				processed.Add(1)
				q.done()
			}
		}()
	}
	wg.Wait()
	if got := processed.Load(); got != 501 {
		t.Fatalf("processed %d jobs, want 501 (root + 500 forks)", got)
	}
	// After close, pop must return immediately with ok=false.
	if _, ok := q.pop(); ok {
		t.Fatal("pop succeeded on a closed empty queue")
	}
}

// TestWorkQueueBackpressure: hasRoom must flip to false once maxPending
// jobs queue up, and recover as jobs are popped.
func TestWorkQueueBackpressure(t *testing.T) {
	q := newWorkQueue(2, nil)
	if !q.hasRoom() {
		t.Fatal("empty queue reports no room")
	}
	q.push(job{})
	if !q.hasRoom() {
		t.Fatal("queue of 1/2 reports no room")
	}
	q.push(job{})
	if q.hasRoom() {
		t.Fatal("full queue reports room")
	}
	if _, ok := q.pop(); !ok {
		t.Fatal("pop failed on non-empty queue")
	}
	if !q.hasRoom() {
		t.Fatal("no room after a pop made space")
	}
}

// TestWorkQueuePopBlocksUntilPush: a pop on an empty open queue must block,
// then wake when work arrives.
func TestWorkQueuePopBlocksUntilPush(t *testing.T) {
	q := newWorkQueue(4, nil)
	got := make(chan bool, 1)
	go func() {
		_, ok := q.pop()
		got <- ok
	}()
	select {
	case <-got:
		t.Fatal("pop returned on an empty open queue")
	case <-time.After(20 * time.Millisecond):
	}
	q.push(job{})
	select {
	case ok := <-got:
		if !ok {
			t.Fatal("pop woke with ok=false despite pending job")
		}
	case <-time.After(time.Second):
		t.Fatal("pop did not wake on push")
	}
}

// TestWorkQueueLIFO: within one worker the queue pops the most recently
// pushed job first (depth-first exploration keeps mask snapshots small).
func TestWorkQueueLIFO(t *testing.T) {
	q := newWorkQueue(8, nil)
	for i := 0; i < 3; i++ {
		q.push(job{oi: i})
	}
	for want := 2; want >= 0; want-- {
		j, ok := q.pop()
		if !ok || j.oi != want {
			t.Fatalf("pop = (%d, %v), want (%d, true)", j.oi, ok, want)
		}
	}
}

// TestBudgetPoolConservation: concurrent deposits and withdrawals must
// conserve the total budget per target exactly. Budgets are dyadic
// fractions, so float addition is exact and the totals compare with ==.
func TestBudgetPoolConservation(t *testing.T) {
	const (
		workers = 8
		rounds  = 200
		targets = 3
	)
	pool := &budgetPool{}
	fractions := []float64{0.5, 0.25, 0.125}

	totals := make([]float64, targets)    // what each worker deposits, summed
	tallies := make([][]float64, workers) // what each worker withdrew
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]float64, targets)
			deposited := make([]float64, targets)
			for r := 0; r < rounds; r++ {
				E := make([]float64, targets)
				for i := range E {
					E[i] = fractions[(w+r+i)%len(fractions)]
					deposited[i] += E[i]
				}
				pool.deposit(E)
				W := make([]float64, targets)
				pool.withdraw(W)
				for i := range W {
					local[i] += W[i]
				}
			}
			mu.Lock()
			tallies[w] = local
			for i := range deposited {
				totals[i] += deposited[i]
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	// Whatever was not withdrawn must still sit in the pool.
	remainder := make([]float64, targets)
	pool.withdraw(remainder)
	for i := 0; i < targets; i++ {
		var withdrawn float64
		for w := 0; w < workers; w++ {
			withdrawn += tallies[w][i]
		}
		if got := withdrawn + remainder[i]; got != totals[i] {
			t.Fatalf("target %d: withdrawn %v + remainder %v != deposited %v",
				i, withdrawn, remainder[i], totals[i])
		}
	}
}

// TestBudgetPoolSkipsNonPositive: exhausted (zero or negative) budget
// entries must not pollute the pool.
func TestBudgetPoolSkipsNonPositive(t *testing.T) {
	pool := &budgetPool{}
	pool.deposit([]float64{0.5, 0, -0.25})
	got := make([]float64, 3)
	pool.withdraw(got)
	if got[0] != 0.5 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("withdraw = %v, want [0.5 0 0]", got)
	}
}

// TestBudgetPoolWithdrawBeforeDeposit: withdrawing from a never-used pool
// is a no-op, not a nil-slice panic.
func TestBudgetPoolWithdrawBeforeDeposit(t *testing.T) {
	pool := &budgetPool{}
	E := []float64{0.125, 0.25}
	pool.withdraw(E)
	if E[0] != 0.125 || E[1] != 0.25 {
		t.Fatalf("withdraw on empty pool mutated E: %v", E)
	}
}
