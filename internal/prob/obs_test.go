package prob

import (
	"bytes"
	"strings"
	"testing"

	"enframe/internal/event"
	"enframe/internal/network"
	"enframe/internal/obs"
)

// obsNet builds a small network with enough variables that compilation
// actually branches: target = majority-ish OR of ANDs over six variables.
func obsNet(t *testing.T) *network.Net {
	t.Helper()
	space := event.NewSpace()
	xs := make([]event.VarID, 6)
	for i := range xs {
		xs[i] = space.Add("x", 0.3+0.1*float64(i%3))
	}
	b := network.NewBuilder(space, nil)
	var ors []network.NodeID
	for i := 0; i+1 < len(xs); i++ {
		ors = append(ors, b.And(b.Var(xs[i]), b.Var(xs[i+1])))
	}
	b.Target("t0", b.Or(ors...))
	b.Target("t1", b.And(b.Var(xs[0]), b.Not(b.Var(xs[5]))))
	return b.Build()
}

func TestCompileTraced(t *testing.T) {
	net := obsNet(t)
	tr := obs.New("test")
	res, err := Compile(net, Options{Strategy: Hybrid, Epsilon: 0.05, Obs: tr})
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()

	tree := tr.Tree()
	for _, want := range []string{"compile", "order", "init", "explore"} {
		if !strings.Contains(tree, want) {
			t.Errorf("trace tree missing span %q:\n%s", want, tree)
		}
	}
	st := res.Stats
	if st.MaxDepth <= 0 {
		t.Errorf("MaxDepth = %d, want > 0", st.MaxDepth)
	}
	if st.Timings.Explore <= 0 {
		t.Errorf("Timings.Explore = %v, want > 0", st.Timings.Explore)
	}
	if got := tr.Metrics().Counter("prob.branches").Value(); got != st.Branches {
		t.Errorf("metrics prob.branches = %d, stats say %d", got, st.Branches)
	}
	if st.BudgetPrunes > 0 {
		pts, _ := tr.Timeline("budget.spend", 1).Points()
		if len(pts) == 0 {
			t.Error("budget prunes happened but the budget.spend timeline is empty")
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"name":"compile"`) {
		t.Error("chrome export missing compile span")
	}
}

func TestCompileTracedDistributed(t *testing.T) {
	net := obsNet(t)
	tr := obs.New("test")
	res, err := Compile(net, Options{
		Strategy: Exact, Workers: 4, JobDepth: 1, Obs: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()

	st := res.Stats
	if len(st.PerWorker) != 4 {
		t.Fatalf("PerWorker has %d entries, want 4", len(st.PerWorker))
	}
	var jobs, branches int64
	for _, ws := range st.PerWorker {
		jobs += ws.Jobs
		branches += ws.Branches
	}
	if jobs != st.Jobs {
		t.Errorf("per-worker jobs sum %d != total %d", jobs, st.Jobs)
	}
	if branches != st.Branches {
		t.Errorf("per-worker branches sum %d != total %d", branches, st.Branches)
	}
	tree := tr.Tree()
	if !strings.Contains(tree, "distribute") {
		t.Errorf("trace tree missing distribute span:\n%s", tree)
	}
	if got := strings.Count(tree, "─ worker "); got != 4 {
		t.Errorf("trace tree has %d worker spans, want 4:\n%s", got, tree)
	}
}

func TestCompileTracedSimulated(t *testing.T) {
	net := obsNet(t)
	tr := obs.New("test")
	res, err := Compile(net, Options{
		Strategy: Exact, Workers: 3, JobDepth: 1, SimulateWorkers: true, Obs: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	st := res.Stats
	if len(st.PerWorker) != 3 {
		t.Fatalf("PerWorker has %d entries, want 3", len(st.PerWorker))
	}
	var jobs int64
	var maxBusy int64
	for _, ws := range st.PerWorker {
		jobs += ws.Jobs
		if int64(ws.Busy) > maxBusy {
			maxBusy = int64(ws.Busy)
		}
	}
	if jobs != st.Jobs {
		t.Errorf("per-worker jobs sum %d != total %d", jobs, st.Jobs)
	}
	// The virtual makespan is at least the busiest worker's busy time.
	if int64(st.SimulatedMakespan) < maxBusy {
		t.Errorf("makespan %dns < busiest worker %dns", int64(st.SimulatedMakespan), maxBusy)
	}
}

// TestCompileUntracedStatsStillFilled ensures stage timings and depth are
// recorded even with observability off (they are plain Stats fields).
func TestCompileUntracedStatsStillFilled(t *testing.T) {
	net := obsNet(t)
	res, err := Compile(net, Options{Strategy: Exact})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.MaxDepth <= 0 || st.Timings.Explore <= 0 {
		t.Errorf("untraced run lost stats: depth=%d explore=%v", st.MaxDepth, st.Timings.Explore)
	}
}
