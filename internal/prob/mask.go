package prob

import (
	"math"
	"sync/atomic"
	"time"

	"enframe/internal/event"
	"enframe/internal/network"
	"enframe/internal/vec"
)

// Three-valued Boolean masks.
const (
	bUnknown int8 = iota
	bTrue
	bFalse
)

// Decided-value kinds. vkNone marks an undecided numeric node; the other
// kinds double as the decided flag.
const (
	vkNone uint8 = iota
	vkUndef
	vkScalar
	vkVec
)

// Mask flags.
const (
	fMayU    uint8 = 1 << 0 // undefined outcome still possible
	fMayDef  uint8 = 1 << 1 // defined outcome still possible
	fBounded uint8 = 1 << 2 // lo/hi valid
)

// nmask is the mask of one network node under the current partial
// assignment: a three-valued truth value for Boolean nodes, an abstract
// value for numeric nodes. The struct is kept small (56 bytes) because mask
// copies dominate compilation time: decided scalar values live in lo==hi,
// decided vector values in the state's side pool.
type nmask struct {
	bval    int8
	valKind uint8
	flags   uint8
	_       uint8
	// c1 counts agreeing children (KAnd/KOr) or undecided children
	// (numeric aggregates); c2–c4 are the Σ counters for children that
	// may be undefined, may be defined, and have no usable bounds.
	c1, c2, c3, c4 int32
	// lo/hi bound the defined scalar outcomes; a decided scalar has
	// lo == hi == value. sumLo/sumHi aggregate Σ child contributions.
	lo, hi       float64
	sumLo, sumHi float64
}

func (m *nmask) decided() bool { return m.valKind != vkNone }
func (m *nmask) mayU() bool    { return m.flags&fMayU != 0 }
func (m *nmask) mayDef() bool  { return m.flags&fMayDef != 0 }
func (m *nmask) bounded() bool { return m.flags&fBounded != 0 }

// setScalar finalises the mask to a defined scalar value.
func (m *nmask) setScalar(v float64) {
	m.valKind = vkScalar
	m.flags = fMayDef | fBounded
	m.lo, m.hi = v, v
}

// setUndef finalises the mask to u.
func (m *nmask) setUndef() {
	m.valKind = vkUndef
	m.flags = fMayU | fBounded
	m.lo, m.hi = math.Inf(1), math.Inf(-1)
}

// setVec finalises the mask to a defined vector value (stored by the caller
// in the side pool).
func (m *nmask) setVec() {
	m.valKind = vkVec
	m.flags = fMayDef
}

// state is the per-worker compilation state over a shared immutable network.
type state struct {
	net    *network.Net
	types  []network.ValueType
	opts   Options
	bounds *boundsBook
	stats  Stats
	order  []event.VarID

	// targetsAt[id] is -1 or an index into targetLists.
	targetsAt   []int32
	targetLists [][]int

	masks []nmask
	// vecVals holds decided vector values; entries are only read while
	// the owning node is decided as vkVec, so stale values after undo are
	// harmless. Nil when the network has no vector-typed nodes.
	vecVals []vec.Vec
	trail   []trailEntry
	// level numbers assignments; trailedAt deduplicates trail entries so
	// a node repeatedly tightened within one assignment wave is recorded
	// once, with its mask from the start of the wave.
	level     int32
	trailedAt []int32
	queue     []network.NodeID
	queued    []bool
	queuedOld []nmask

	// nUnmasked counts targets not yet masked under the current branch;
	// tMasked holds the same per target.
	nUnmasked int
	tMasked   []bool
	// curMass is Pr(ν) of the assignment being propagated.
	curMass float64
	// deadline/stop/timedOut mirror the runner's abort machinery so even
	// slow single branches notice timeouts promptly.
	deadline   time.Time
	stopFlag   *atomic.Bool
	timedFlag  *atomic.Bool
	assignTick uint32
	// recording gates target-bound accumulation; it is off while a
	// distributed worker replays a job's assignment prefix (the forking
	// worker already credited targets masked within the prefix).
	recording bool
	// onAdd, when set, observes every recorded bound contribution in
	// execution order. Session executors capture the add stream through it
	// so the coordinator can replay contributions in sequential DFS order
	// (the merge that makes multi-process runs bit-identical to one
	// process). Nil outside executor-driven jobs.
	onAdd func(ti int, isTrue bool, p float64)
}

type trailEntry struct {
	id network.NodeID
	m  nmask
}

func newState(net *network.Net, types []network.ValueType, opts Options, bounds *boundsBook) *state {
	s := &state{
		net:       net,
		types:     types,
		opts:      opts,
		bounds:    bounds,
		targetsAt: make([]int32, len(net.Nodes)),
		masks:     make([]nmask, len(net.Nodes)),
		trailedAt: make([]int32, len(net.Nodes)),
		queued:    make([]bool, len(net.Nodes)),
		queuedOld: make([]nmask, len(net.Nodes)),
		recording: true,
	}
	for i := range s.targetsAt {
		s.targetsAt[i] = -1
		s.trailedAt[i] = -1
	}
	for i, t := range net.Targets {
		if at := s.targetsAt[t.Node]; at >= 0 {
			s.targetLists[at] = append(s.targetLists[at], i)
		} else {
			s.targetsAt[t.Node] = int32(len(s.targetLists))
			s.targetLists = append(s.targetLists, []int{i})
		}
	}
	for id, t := range types {
		if t == network.TVector {
			s.vecVals = make([]vec.Vec, len(net.Nodes))
			_ = id
			break
		}
	}
	s.nUnmasked = len(net.Targets)
	s.tMasked = make([]bool, len(net.Targets))
	return s
}

// value reconstructs a decided node's extended value.
func (s *state) value(id network.NodeID) event.Value {
	m := &s.masks[id]
	switch m.valKind {
	case vkUndef:
		return event.U
	case vkScalar:
		return event.Num(m.lo)
	case vkVec:
		return event.Vect(s.vecVals[id])
	}
	panic("prob: value of undecided node")
}

// setDecidedValue finalises a numeric mask from an extended value.
func (s *state) setDecidedValue(id network.NodeID, m *nmask, v event.Value) {
	switch v.Kind {
	case event.Undef:
		m.setUndef()
	case event.Scalar:
		m.setScalar(v.S)
	case event.Vector:
		m.setVec()
		s.vecVals[id] = v.V
	default:
		panic("prob: boolean value in numeric mask")
	}
}

// initAll computes the initial mask of every node bottom-up (node ids are
// topologically ordered). It must run before the first assignment; targets
// decided by the initial pass alone are recorded with the full unit mass.
func (s *state) initAll() {
	for id := range s.net.Nodes {
		m := s.initNode(network.NodeID(id))
		s.masks[id] = m
		s.stats.MaskUpdates++
		if at := s.targetsAt[id]; at >= 0 && m.bval != bUnknown {
			tis := s.targetLists[at]
			s.nUnmasked -= len(tis)
			for _, ti := range tis {
				s.tMasked[ti] = true
				if s.recording {
					s.bounds.add(ti, m.bval == bTrue, 1)
					if s.onAdd != nil {
						s.onAdd(ti, m.bval == bTrue, 1)
					}
				}
			}
		}
	}
}

// snapshotFrom copies the post-init masks and counters of a pristine state;
// used by distributed workers to reset between jobs without recomputing the
// initial pass.
func (s *state) snapshotFrom(pristine compCore) {
	p := pristine.(*state)
	copy(s.masks, p.masks)
	copy(s.tMasked, p.tMasked)
	if s.vecVals != nil {
		copy(s.vecVals, p.vecVals)
	}
	s.nUnmasked = p.nUnmasked
	s.trail = s.trail[:0]
}

// initNode derives a node's mask from its children's current masks. Used by
// the initial pass; updateParent keeps masks incrementally in sync
// afterwards.
func (s *state) initNode(id network.NodeID) nmask {
	nd := &s.net.Nodes[id]
	var m nmask
	switch nd.Kind {
	case network.KVar:
		m.bval = bUnknown
	case network.KConst:
		m.bval = boolMask(nd.B)
	case network.KNot:
		if c := s.masks[nd.Kids[0]].bval; c != bUnknown {
			m.bval = negMask(c)
		}
	case network.KAnd:
		m.bval = bUnknown
		for _, k := range nd.Kids {
			switch s.masks[k].bval {
			case bFalse:
				m.bval = bFalse
			case bTrue:
				m.c1++
			}
		}
		if m.bval == bUnknown && int(m.c1) == len(nd.Kids) {
			m.bval = bTrue
		}
	case network.KOr:
		m.bval = bUnknown
		for _, k := range nd.Kids {
			switch s.masks[k].bval {
			case bTrue:
				m.bval = bTrue
			case bFalse:
				m.c1++
			}
		}
		if m.bval == bUnknown && int(m.c1) == len(nd.Kids) {
			m.bval = bFalse
		}
	case network.KCmp:
		m.bval = s.deriveCmp(nd, &s.masks[nd.Kids[0]], &s.masks[nd.Kids[1]])
	case network.KCondVal:
		s.deriveCondVal(id, &m, nd, s.masks[nd.Kids[0]].bval)
	case network.KGuard:
		s.deriveGuard(id, &m, s.masks[nd.Kids[0]].bval, nd.Kids[1])
	case network.KSum:
		for _, k := range nd.Kids {
			s.sumAccount(&m, &s.masks[k], +1)
		}
		s.deriveSum(&m, id)
	case network.KProd, network.KInv, network.KPow, network.KDist:
		for _, k := range nd.Kids {
			if !s.masks[k].decided() {
				m.c1++
			}
		}
		s.deriveOpaque(&m, id, nd)
	}
	return m
}

func boolMask(b bool) int8 {
	if b {
		return bTrue
	}
	return bFalse
}

func negMask(v int8) int8 {
	switch v {
	case bTrue:
		return bFalse
	case bFalse:
		return bTrue
	}
	return bUnknown
}

// deriveCondVal refreshes guard ⊗ val from the guard's truth value.
func (s *state) deriveCondVal(id network.NodeID, m *nmask, nd *network.Node, g int8) {
	switch g {
	case bTrue:
		s.setDecidedValue(id, m, nd.Val)
	case bFalse:
		m.setUndef()
	default:
		m.flags = fMayU
		if !nd.Val.IsUndef() {
			m.flags |= fMayDef
		}
		if nd.Val.Kind == event.Scalar {
			m.flags |= fBounded
			m.lo, m.hi = nd.Val.S, nd.Val.S
		}
	}
}

// deriveGuard refreshes guard ∧ v from the guard's truth value and the
// value child's abstract.
func (s *state) deriveGuard(id network.NodeID, m *nmask, g int8, vkid network.NodeID) {
	vm := &s.masks[vkid]
	switch g {
	case bFalse:
		m.setUndef()
	case bTrue:
		if vm.decided() {
			m.valKind = vm.valKind
			m.flags = vm.flags
			m.lo, m.hi = vm.lo, vm.hi
			if vm.valKind == vkVec {
				s.vecVals[id] = s.vecVals[vkid]
			}
			return
		}
		m.valKind = vkNone
		m.flags = vm.flags & (fMayU | fMayDef | fBounded)
		m.lo, m.hi = vm.lo, vm.hi
	default:
		m.valKind = vkNone
		m.flags = fMayU
		if vm.mayDef() {
			m.flags |= fMayDef
		}
		if lo, hi, _, ok := effBounds(vm); ok {
			m.flags |= fBounded
			m.lo, m.hi = lo, hi
		}
	}
}

// hasBounds reports whether the child's defined outcomes have known scalar
// bounds (decided scalars and undefs always do; decided vectors never).
func hasBounds(cm *nmask) bool {
	if cm.decided() {
		return cm.valKind != vkVec
	}
	return cm.bounded()
}

// sumContrib is a child's contribution interval to a Σ node: its value when
// defined, or 0 when it is u (u is the identity of +).
func sumContrib(cm *nmask) (lo, hi float64) {
	if cm.decided() {
		if cm.valKind == vkUndef {
			return 0, 0
		}
		return cm.lo, cm.hi // decided scalar: lo == hi == value
	}
	lo, hi = cm.lo, cm.hi
	if cm.mayU() {
		lo = math.Min(lo, 0)
		hi = math.Max(hi, 0)
	}
	return lo, hi
}

// sumAccount adds (sign=+1) or removes (sign=-1) a child's current abstract
// from a Σ node's aggregates. Contribution sums cover exactly the children
// with usable bounds; when the last unbounded child gains bounds the sums
// are automatically complete.
func (s *state) sumAccount(m *nmask, cm *nmask, sign int32) {
	if !cm.decided() {
		m.c1 += sign
	}
	if cm.mayU() {
		m.c2 += sign
	}
	if cm.mayDef() {
		m.c3 += sign
	}
	if !hasBounds(cm) {
		m.c4 += sign
	} else {
		lo, hi := sumContrib(cm)
		m.sumLo += float64(sign) * lo
		m.sumHi += float64(sign) * hi
	}
}

// deriveSum refreshes a Σ node's visible abstract from its aggregates.
func (s *state) deriveSum(m *nmask, id network.NodeID) {
	nd := &s.net.Nodes[id]
	n := int32(len(nd.Kids))
	if m.c1 == 0 {
		// All children decided: recompute the exact value freshly in
		// child order so leaves match the reference evaluation
		// bit-for-bit.
		if s.types[id] == network.TVector {
			v := event.U
			for _, k := range nd.Kids {
				v = event.Add(v, s.value(k))
			}
			s.setDecidedValue(id, m, v)
			return
		}
		sum := 0.0
		defined := false
		for _, k := range nd.Kids {
			cm := &s.masks[k]
			if cm.valKind == vkUndef {
				continue
			}
			sum += cm.lo
			defined = true
		}
		if defined {
			m.setScalar(sum)
		} else {
			m.setUndef()
		}
		return
	}
	m.valKind = vkNone
	m.flags = 0
	if m.c2 == n {
		m.flags |= fMayU
	}
	if m.c3 > 0 {
		m.flags |= fMayDef
	}
	if s.types[id] == network.TScalar && m.c4 == 0 {
		m.flags |= fBounded
		m.lo, m.hi = m.sumLo, m.sumHi
	} else {
		m.lo, m.hi = 0, 0
	}
}

// deriveOpaque handles KProd, KInv, KPow, KDist: these decide when all
// children are decided (the value is then recomputed exactly), decide to u
// early when any child is certainly undefined (u annihilates · and dist),
// and otherwise stay conservatively unknown.
func (s *state) deriveOpaque(m *nmask, id network.NodeID, nd *network.Node) {
	for _, k := range nd.Kids {
		if s.masks[k].valKind == vkUndef {
			m.setUndef()
			return
		}
	}
	if m.c1 == 0 {
		s.setDecidedValue(id, m, s.evalOpaque(nd))
		return
	}
	m.valKind = vkNone
	m.flags = fMayU | fMayDef
	m.lo, m.hi = 0, 0
}

// evalOpaque computes the exact value of a fully decided KProd, KInv, KPow,
// or KDist node from its children's decided values.
func (s *state) evalOpaque(nd *network.Node) event.Value {
	switch nd.Kind {
	case network.KProd:
		v := event.Num(1)
		for _, k := range nd.Kids {
			v = event.Mul(v, s.value(k))
		}
		return v
	case network.KInv:
		return event.Inv(s.value(nd.Kids[0]))
	case network.KPow:
		return event.PowVal(s.value(nd.Kids[0]), nd.Exp)
	case network.KDist:
		return event.DistVal(s.net.Metric, s.value(nd.Kids[0]), s.value(nd.Kids[1]))
	}
	panic("prob: evalOpaque on non-opaque node")
}

// effBounds returns the interval of a child's defined outcomes plus whether
// u is still possible; ok is false when no useful bounds are known.
func effBounds(cm *nmask) (lo, hi float64, mayU, ok bool) {
	if cm.decided() {
		if cm.valKind != vkScalar {
			return 0, 0, cm.valKind == vkUndef, false
		}
		return cm.lo, cm.hi, false, true
	}
	if cm.bounded() && cm.mayDef() {
		return cm.lo, cm.hi, cm.mayU(), true
	}
	return 0, 0, true, false
}

// deriveCmp decides a comparison atom from its children's abstracts: exact
// when both sides are decided, true when either side is certainly undefined
// (§3.2: comparisons involving u hold), and early from interval separation
// with the safety slack otherwise.
func (s *state) deriveCmp(nd *network.Node, lm, rm *nmask) int8 {
	if lm.valKind == vkUndef || rm.valKind == vkUndef {
		return bTrue
	}
	if lm.valKind == vkScalar && rm.valKind == vkScalar {
		return boolMask(nd.Op.Holds(lm.lo, rm.lo))
	}
	llo, lhi, lMayU, lok := effBounds(lm)
	rlo, rhi, rMayU, rok := effBounds(rm)
	if !lok || !rok {
		return bUnknown
	}
	sl := s.opts.Slack
	// True when every defined combination satisfies the operator
	// (undefined combinations are true regardless).
	switch nd.Op {
	case event.LE, event.LT:
		if lhi <= rlo-sl {
			return bTrue
		}
	case event.GE, event.GT:
		if llo >= rhi+sl {
			return bTrue
		}
	}
	// False requires both sides certainly defined and the operator
	// certainly violated.
	if !lMayU && !rMayU {
		switch nd.Op {
		case event.LE, event.LT:
			if llo >= rhi+sl {
				return bFalse
			}
		case event.GE, event.GT:
			if lhi <= rlo-sl {
				return bFalse
			}
		case event.EQ:
			if llo >= rhi+sl || rlo >= lhi+sl {
				return bFalse
			}
		}
	}
	return bUnknown
}
