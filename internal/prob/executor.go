package prob

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"enframe/internal/event"
)

// ErrExecutorUnavailable marks transport-level executor failures: the worker
// process died, the connection broke, or no executor has free capacity left.
// The coordinator and MultiExecutor treat it as retryable on a different
// executor; execution errors (a job that genuinely failed) are not wrapped in
// it and fail the compilation.
var ErrExecutorUnavailable = errors.New("prob: job executor unavailable")

// Assign is one Shannon-expansion decision: variable x set to Val. A job's
// Path is the sequence of Assigns from the decision-tree root to the job's
// fork point; replaying it against the post-init state reproduces the
// forking worker's masks bit-exactly (propagation is deterministic), which
// is why jobs ship paths instead of mask snapshots.
type Assign struct {
	Var event.VarID
	Val bool
}

// WireJob is one depth-d decision-tree fragment shipped to an executor
// (paper §4.4). OI is the variable-order position to resume from, P the
// branch probability at the fork point, and E the per-target error budgets
// the job carries (all zero for exact compilation). Timeout, when positive,
// bounds the job's execution from its start; the result then returns
// partial with TimedOut set.
type WireJob struct {
	ID      uint64
	Path    []Assign
	OI      int
	P       float64
	E       []float64
	Timeout time.Duration
}

// ItemKind discriminates WireItem entries.
type ItemKind uint8

const (
	// ItemAdd records one bound contribution (boundsBook.add).
	ItemAdd ItemKind = iota
	// ItemFork marks where a continuation job was forked; Fork indexes the
	// result's Forks slice. The coordinator splices the child's full item
	// stream at this position, reproducing sequential DFS order.
	ItemFork
)

// WireItem is one entry of a job's ordered result stream. Float addition is
// not associative, so bit-identical marginals require replaying the adds in
// the exact order the sequential run would produce them; the item stream,
// with fork markers spliced recursively, is that order.
type WireItem struct {
	Kind   ItemKind
	Target int32
	IsTrue bool
	Fork   int32
	Mass   float64
}

// WireFork describes a continuation job forked while executing a job: the
// full root-relative assignment path, resume position, branch probability,
// and the budget shipped with it.
type WireFork struct {
	Path []Assign
	OI   int
	P    float64
	E    []float64
}

// JobStats counts the work one job performed (worker-side).
type JobStats struct {
	Branches     int64
	Assignments  int64
	MaskUpdates  int64
	BudgetPrunes int64
	MaxDepth     int64
	// DurNanos is the job's busy time on the worker; the distributed
	// benchmark schedules these durations onto virtual clusters.
	DurNanos int64
}

// WireResult is a completed job: the ordered item stream, the fork specs the
// stream references, the residual error budget to return to the shared pool,
// and work stats. Results are deterministic for exact compilation — re-
// executing the same job after a worker loss reproduces the same stream, so
// merging a duplicate completion is idempotent by construction.
type WireResult struct {
	ID       uint64
	Items    []WireItem
	Forks    []WireFork
	Residual []float64
	TimedOut bool
	Stats    JobStats
}

// JobExecutor executes decision-tree jobs. The in-process Session-backed
// LocalExecutor is one implementation; internal/dist's remote worker pool is
// another; MultiExecutor composes them. Implementations must be safe for
// concurrent ExecuteJob calls.
type JobExecutor interface {
	// ExecuteJob runs one job to completion. Transport-level failures
	// (worker death, broken pipe, no capacity) are reported as errors
	// wrapping ErrExecutorUnavailable; other errors are permanent.
	ExecuteJob(ctx context.Context, j *WireJob) (*WireResult, error)
	// Slots is the executor's current parallel capacity; the coordinator
	// keeps at most this many jobs in flight. It may change over time as
	// workers join or die; 0 means the executor cannot take work.
	Slots() int
}

// LocalExecutor runs jobs in-process against a Session.
type LocalExecutor struct {
	sess  *Session
	slots int
}

// NewLocalExecutor wraps a session as a JobExecutor with the given
// concurrency (minimum 1).
func NewLocalExecutor(sess *Session, slots int) *LocalExecutor {
	if slots < 1 {
		slots = 1
	}
	return &LocalExecutor{sess: sess, slots: slots}
}

func (l *LocalExecutor) ExecuteJob(ctx context.Context, j *WireJob) (*WireResult, error) {
	return l.sess.ExecJob(ctx, j)
}

func (l *LocalExecutor) Slots() int { return l.slots }

// MultiExecutor fans jobs out over several executors, routing each job to
// the least-loaded live one. An executor that fails with
// ErrExecutorUnavailable is marked dead and the job retries on the others,
// which is how mixed local+remote execution degrades gracefully when remote
// workers die.
type MultiExecutor struct {
	mu       sync.Mutex
	execs    []JobExecutor
	inflight []int
	dead     []bool
}

// NewMultiExecutor composes executors; at least one is required.
func NewMultiExecutor(execs ...JobExecutor) *MultiExecutor {
	return &MultiExecutor{
		execs:    execs,
		inflight: make([]int, len(execs)),
		dead:     make([]bool, len(execs)),
	}
}

// pick returns the live executor with the most free capacity, skipping
// excluded indices; -1 when none qualifies.
func (m *MultiExecutor) pick(exclude []bool) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	best, bestFree := -1, 0
	for i, e := range m.execs {
		if m.dead[i] || (exclude != nil && exclude[i]) {
			continue
		}
		free := e.Slots() - m.inflight[i]
		if best == -1 || free > bestFree {
			best, bestFree = i, free
		}
	}
	if best >= 0 {
		m.inflight[best]++
	}
	return best
}

func (m *MultiExecutor) release(i int) {
	m.mu.Lock()
	m.inflight[i]--
	m.mu.Unlock()
}

func (m *MultiExecutor) markDead(i int) {
	m.mu.Lock()
	m.dead[i] = true
	m.mu.Unlock()
}

func (m *MultiExecutor) ExecuteJob(ctx context.Context, j *WireJob) (*WireResult, error) {
	tried := make([]bool, len(m.execs))
	for {
		i := m.pick(tried)
		if i < 0 {
			return nil, fmt.Errorf("prob: all executors failed: %w", ErrExecutorUnavailable)
		}
		res, err := m.execs[i].ExecuteJob(ctx, j)
		m.release(i)
		if err != nil && errors.Is(err, ErrExecutorUnavailable) && ctx.Err() == nil {
			m.markDead(i)
			tried[i] = true
			continue
		}
		return res, err
	}
}

// Slots sums the live executors' capacity.
func (m *MultiExecutor) Slots() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for i, e := range m.execs {
		if !m.dead[i] {
			n += e.Slots()
		}
	}
	return n
}
