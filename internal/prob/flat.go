package prob

import (
	"math"
	"sync/atomic"
	"time"

	"enframe/internal/event"
	"enframe/internal/network"
	"enframe/internal/vec"
)

// fstate is the bit-parallel flat compilation core: the default compCore
// implementation (Options.LegacyCore opts back into the nmask walker).
//
// Where the legacy core keeps one 56-byte nmask per node and copies whole
// structs onto the trail and propagation queue, fstate stores each mask
// component in a contiguous slice indexed by node id over the network's
// structure-of-arrays layout (network.Flat):
//
//   - the three-valued truth value lives in two uint64 bit planes, decT and
//     decF (set bit = decided true / decided false, both clear = unknown),
//     so snapshots and restores are word-wide copies;
//   - valKind and flags pack into one byte (vkf: valKind in bits 0–1, flags
//     shifted up by 2);
//   - lo/hi bounds and the c1 counter are dense float64/int32 slices;
//   - the Σ-only aggregates (c2–c4, sumLo/sumHi) live in a dense side table
//     indexed through the record's aux index, so non-Σ nodes pay nothing
//     for them.
//
// The trail packs one uint64 per touched node — id, a kind-class tag, and
// the old truth bits — with small side stacks for counters, numeric
// abstracts, and Σ aggregates, replacing the legacy 64-byte trail entries.
//
// fstate performs the identical sequence of floating-point operations in the
// identical order as the legacy core — including its incremental Σ
// accounting, interval-based comparison decisions, and the fresh
// recomputation of exact values at decision-tree leaves — so marginals and
// Stats counters are bit-identical between the cores. The derivation
// functions below are line-for-line mirrors of mask.go/propagate.go; change
// them in lockstep (the equivalence suite in internal/difftest will catch
// divergence).
type fstate struct {
	net    *network.Net
	flat   *network.Flat
	types  []network.ValueType
	opts   Options
	bounds *boundsBook
	stats  Stats
	order  []event.VarID

	// targetsAt[id] is -1 or an index into targetLists.
	targetsAt   []int32
	targetLists [][]int

	// decT/decF are the packed truth planes; ab the per-node numeric
	// abstract and propagation scratch (see nabs); sums the dense Σ
	// aggregates reached via nabs.aux.
	decT, decF bitset
	// open has a bit set for every node not yet decided — the propagation
	// loop tests it to skip parents whose update would early-return, saving
	// the call. Maintained by the commit/undo paths in lockstep with the
	// truth planes and vkf kinds.
	open bitset
	ab   []nabs
	sums []sumAgg

	// vecVals holds decided vector values; entries are only read while the
	// owning node is decided as vkVec, so stale values after undo are
	// harmless. Nil when the network has no vector-typed nodes.
	vecVals []vec.Vec

	// The packed trail: one word per touched node plus side stacks popped
	// in step with the backward id walk during undo — one ntrail entry for
	// every class that carries a counter or numeric abstract, one sumAgg
	// for Σ nodes.
	trailIDs  []uint64
	trailNums []ntrail
	trailSums []sumAgg

	// level numbers assignments; nabs.trailedAt deduplicates trail entries
	// so a node repeatedly tightened within one assignment wave is recorded
	// once, with its state from the start of the wave.
	level int32
	// queue entries carry the node's visible abstract at enqueue time — the
	// oldC parents diff against — inline, so propagation reads and writes
	// the queue sequentially instead of scattering over per-node arrays.
	queue []qent

	// Dense per-kind derivation tables, reached through the record's aux
	// index, so the hot derives load one small record instead of walking
	// the CSR kid spans:
	//
	//   - cmpAux (KCmp) holds both kid ids and the operator;
	//   - guardAux (KGuard) holds the condition and value kid ids;
	//   - condAux (KCondVal) holds the guard kid id and the Vals index.
	//
	// cvTrue/cvUnk are per-KCondVal precomputed abstracts (indexed like
	// Flat.Vals): the node's fixed c-value makes the derived mask a
	// constant for each guard state, so the hot ⊗-derivation reduces to a
	// three-way copy. cvVec marks vector-valued entries that must also
	// install the side-pool value when the guard turns true.
	cmpAux   []cmpRec
	guardAux [][2]network.NodeID
	condAux  []condRec
	cvTrue   []fnum
	cvUnk    []fnum
	cvVec    []bool

	// nUnmasked counts targets not yet masked under the current branch;
	// tMasked holds the same per target.
	nUnmasked int
	tMasked   []bool
	// curMass is Pr(ν) of the assignment being propagated.
	curMass float64

	deadline   time.Time
	stopFlag   *atomic.Bool
	timedFlag  *atomic.Bool
	assignTick uint32
	recording  bool
	onAdd      func(ti int, isTrue bool, p float64)
}

// sumAgg is the Σ-node aggregate block: counters for children that may be
// undefined (c2), may be defined (c3), and have no usable bounds (c4), plus
// the contribution sums over the bounded children.
type sumAgg struct {
	c2, c3, c4   int32
	sumLo, sumHi float64
}

// nabs is one node's packed numeric abstract plus propagation scratch,
// laid out so touching a node during propagation covers everything a commit
// reads and writes — bounds, the c1 counter, the vkf byte, the trail-class
// tag, the queued flag, the trail-dedup level, and the Σ side-table index —
// in one 32-byte record (two per cache line) instead of seven parallel
// slices and as many cache misses.
type nabs struct {
	lo, hi    float64
	cnt       int32
	trailedAt int32
	aux       int32
	vkf       uint8
	tag       uint8
	queued    bool
	kind      network.Kind
}

// fnum is one packed numeric abstract: the vkf byte and bounds.
type fnum struct {
	vkf    uint8
	lo, hi float64
}

// ntrail is one counter/numeric trail record.
type ntrail struct {
	vkf    uint8
	cnt    int32
	lo, hi float64
}

// cmpRec is one KCmp node's derivation record: both kid ids and the
// comparison operator.
type cmpRec struct {
	l, r network.NodeID
	op   event.CmpOp
}

// condRec is one KCondVal node's derivation record: the guard kid and the
// index of the node's fixed c-value in Flat.Vals (and the cv* tables).
type condRec struct {
	g  network.NodeID
	vi int32
}

// qent is one propagation-queue entry: the node plus its visible abstract
// at enqueue time.
type qent struct {
	id      network.NodeID
	oldBval int8
	oldVkf  uint8
	oldLo   float64
	oldHi   float64
}

// Trail classes. The low two tag bits select which side stacks an entry
// pops on undo; tagTarget marks compilation-target nodes so the hot commit
// and undo paths can skip the targetsAt lookup for the vast majority of
// nodes that are not targets.
const (
	tagBool    uint8 = iota // truth bits only (KVar/KConst/KNot/KCmp)
	tagBoolCnt              // truth bits + c1 (KAnd/KOr)
	tagNum                  // c1 + vkf/lo/hi (guard, ⊗, opaque numerics)
	tagSum                  // tagNum + Σ aggregates

	tagClass  uint8 = 3
	tagTarget uint8 = 1 << 7
)

func newFstate(net *network.Net, types []network.ValueType, opts Options, bounds *boundsBook) *fstate {
	nn := len(net.Nodes)
	f := net.Flat()
	s := &fstate{
		net: net, flat: f, types: types, opts: opts, bounds: bounds,
		targetsAt: make([]int32, nn),
		decT:      newBitset(nn),
		decF:      newBitset(nn),
		open:      newBitset(nn),
		ab:        make([]nabs, nn),
		recording: true,
	}
	nSums := int32(0)
	for id := 0; id < nn; id++ {
		s.targetsAt[id] = -1
		a := &s.ab[id]
		a.trailedAt = -1
		a.aux = -1
		a.kind = f.Kind[id]
		switch f.Kind[id] {
		case network.KVar, network.KConst, network.KNot:
			a.tag = tagBool
		case network.KCmp:
			a.tag = tagBool
			kids := f.KidsOf(network.NodeID(id))
			a.aux = int32(len(s.cmpAux))
			s.cmpAux = append(s.cmpAux, cmpRec{l: kids[0], r: kids[1], op: f.Op[id]})
		case network.KAnd, network.KOr:
			a.tag = tagBoolCnt
		case network.KSum:
			a.tag = tagSum
			a.aux = nSums
			nSums++
		case network.KGuard:
			a.tag = tagNum
			kids := f.KidsOf(network.NodeID(id))
			a.aux = int32(len(s.guardAux))
			s.guardAux = append(s.guardAux, [2]network.NodeID{kids[0], kids[1]})
		case network.KCondVal:
			a.tag = tagNum
			kids := f.KidsOf(network.NodeID(id))
			a.aux = int32(len(s.condAux))
			s.condAux = append(s.condAux, condRec{g: kids[0], vi: f.ValIdx[id]})
		default:
			a.tag = tagNum
		}
	}
	s.sums = make([]sumAgg, nSums)
	s.cvTrue = make([]fnum, len(f.Vals))
	s.cvUnk = make([]fnum, len(f.Vals))
	s.cvVec = make([]bool, len(f.Vals))
	for vi := range f.Vals {
		val := &f.Vals[vi]
		switch val.Kind {
		case event.Undef:
			s.cvTrue[vi] = fnum{vkf: vkUndef | (fMayU|fBounded)<<2, lo: math.Inf(1), hi: math.Inf(-1)}
		case event.Scalar:
			s.cvTrue[vi] = fnum{vkf: vkScalar | (fMayDef|fBounded)<<2, lo: val.S, hi: val.S}
		case event.Vector:
			s.cvTrue[vi] = fnum{vkf: vkVec | fMayDef<<2}
			s.cvVec[vi] = true
		}
		fl := fMayU
		if !val.IsUndef() {
			fl |= fMayDef
		}
		u := fnum{}
		if val.Kind == event.Scalar {
			fl |= fBounded
			u.lo, u.hi = val.S, val.S
		}
		u.vkf = fl << 2
		s.cvUnk[vi] = u
	}
	for i, t := range net.Targets {
		s.ab[t.Node].tag |= tagTarget
		if at := s.targetsAt[t.Node]; at >= 0 {
			s.targetLists[at] = append(s.targetLists[at], i)
		} else {
			s.targetsAt[t.Node] = int32(len(s.targetLists))
			s.targetLists = append(s.targetLists, []int{i})
		}
	}
	for _, t := range types {
		if t == network.TVector {
			s.vecVals = make([]vec.Vec, nn)
			break
		}
	}
	s.nUnmasked = len(net.Targets)
	s.tMasked = make([]bool, len(net.Targets))
	return s
}

func (s *fstate) attachRun(order []event.VarID, deadline time.Time, stop, timed *atomic.Bool) {
	s.order = order
	s.deadline = deadline
	s.stopFlag = stop
	s.timedFlag = timed
}

func (s *fstate) trailMark() int { return len(s.trailIDs) }

func (s *fstate) clearTrail() {
	s.trailIDs = s.trailIDs[:0]
	s.trailNums = s.trailNums[:0]
	s.trailSums = s.trailSums[:0]
}

func (s *fstate) st() *Stats                                       { return &s.stats }
func (s *fstate) unmaskedTargets() int                             { return s.nUnmasked }
func (s *fstate) setRecording(on bool)                             { s.recording = on }
func (s *fstate) setOnAdd(fn func(ti int, isTrue bool, p float64)) { s.onAdd = fn }

func (s *fstate) bval(id network.NodeID) int8       { return bval3(s.decT, s.decF, int32(id)) }
func (s *fstate) setBval(id network.NodeID, v int8) { setBval3(s.decT, s.decF, int32(id), v) }

// setScalarF finalises a node to a defined scalar value.
func (s *fstate) setScalarF(id network.NodeID, v float64) {
	s.ab[id].vkf = vkScalar | (fMayDef|fBounded)<<2
	s.ab[id].lo, s.ab[id].hi = v, v
}

// setUndefF finalises a node to u.
func (s *fstate) setUndefF(id network.NodeID) {
	s.ab[id].vkf = vkUndef | (fMayU|fBounded)<<2
	s.ab[id].lo, s.ab[id].hi = math.Inf(1), math.Inf(-1)
}

// setDecidedValueF finalises a numeric node from an extended value. Like the
// legacy setVec, the vector case leaves lo/hi untouched — the stale bounds
// participate in state-equality checks, so both cores must keep them.
func (s *fstate) setDecidedValueF(id network.NodeID, v event.Value) {
	switch v.Kind {
	case event.Undef:
		s.setUndefF(id)
	case event.Scalar:
		s.setScalarF(id, v.S)
	case event.Vector:
		s.ab[id].vkf = vkVec | fMayDef<<2
		s.vecVals[id] = v.V
	default:
		panic("prob: boolean value in numeric mask")
	}
}

// valueF reconstructs a decided node's extended value.
func (s *fstate) valueF(id network.NodeID) event.Value {
	switch s.ab[id].vkf & 3 {
	case vkUndef:
		return event.U
	case vkScalar:
		return event.Num(s.ab[id].lo)
	case vkVec:
		return event.Vect(s.vecVals[id])
	}
	panic("prob: value of undecided node")
}

// hasBoundsF mirrors hasBounds over the packed vkf byte.
func hasBoundsF(v uint8) bool {
	if vk := v & 3; vk != vkNone {
		return vk != vkVec
	}
	return v>>2&fBounded != 0
}

// sumContribF mirrors sumContrib.
func sumContribF(v uint8, lo, hi float64) (float64, float64) {
	if vk := v & 3; vk != vkNone {
		if vk == vkUndef {
			return 0, 0
		}
		return lo, hi // decided scalar: lo == hi == value
	}
	if v>>2&fMayU != 0 {
		lo = math.Min(lo, 0)
		hi = math.Max(hi, 0)
	}
	return lo, hi
}

// effBoundsF mirrors effBounds.
func effBoundsF(v uint8, lo, hi float64) (float64, float64, bool, bool) {
	if vk := v & 3; vk != vkNone {
		if vk != vkScalar {
			return 0, 0, vk == vkUndef, false
		}
		return lo, hi, false, true
	}
	if fl := v >> 2; fl&fBounded != 0 && fl&fMayDef != 0 {
		return lo, hi, fl&fMayU != 0, true
	}
	return 0, 0, true, false
}

// sumSwapF replaces one child abstract with another in a Σ node's
// aggregates: remove-all-old then add-all-new, the exact float-op sequence
// of two legacy sumAccount calls fused into one.
func (s *fstate) sumSwapF(id network.NodeID, agg *sumAgg, ov uint8, olo, ohi float64, nv uint8, nlo, nhi float64) {
	s.sumAccF(id, agg, ov, olo, ohi, -1)
	s.sumAccF(id, agg, nv, nlo, nhi, +1)
}

// sumAccF adds (sign=+1) or removes (sign=-1) a child abstract (cv/clo/chi)
// from a Σ node's aggregates; mirrors sumAccount.
func (s *fstate) sumAccF(id network.NodeID, agg *sumAgg, cv uint8, clo, chi float64, sign int32) {
	if cv&3 == vkNone {
		s.ab[id].cnt += sign
	}
	fl := cv >> 2
	if fl&fMayU != 0 {
		agg.c2 += sign
	}
	if fl&fMayDef != 0 {
		agg.c3 += sign
	}
	if !hasBoundsF(cv) {
		agg.c4 += sign
	} else {
		lo, hi := sumContribF(cv, clo, chi)
		agg.sumLo += float64(sign) * lo
		agg.sumHi += float64(sign) * hi
	}
}

// deriveSumF mirrors deriveSum, writing the node's visible abstract in place.
func (s *fstate) deriveSumF(id network.NodeID, agg *sumAgg) {
	kids := s.flat.KidsOf(id)
	n := int32(len(kids))
	if s.ab[id].cnt == 0 {
		// All children decided: recompute the exact value freshly in child
		// order so leaves match the reference evaluation bit-for-bit.
		if s.types[id] == network.TVector {
			v := event.U
			for _, k := range kids {
				v = event.Add(v, s.valueF(k))
			}
			s.setDecidedValueF(id, v)
			return
		}
		sum := 0.0
		defined := false
		for _, k := range kids {
			if s.ab[k].vkf&3 == vkUndef {
				continue
			}
			sum += s.ab[k].lo
			defined = true
		}
		if defined {
			s.setScalarF(id, sum)
		} else {
			s.setUndefF(id)
		}
		return
	}
	var fl uint8
	if agg.c2 == n {
		fl |= fMayU
	}
	if agg.c3 > 0 {
		fl |= fMayDef
	}
	if s.types[id] == network.TScalar && agg.c4 == 0 {
		fl |= fBounded
		s.ab[id].lo, s.ab[id].hi = agg.sumLo, agg.sumHi
	} else {
		s.ab[id].lo, s.ab[id].hi = 0, 0
	}
	s.ab[id].vkf = fl << 2
}

// deriveOpaqueF mirrors deriveOpaque (KProd/KInv/KPow/KDist).
func (s *fstate) deriveOpaqueF(id network.NodeID) {
	kids := s.flat.KidsOf(id)
	for _, k := range kids {
		if s.ab[k].vkf&3 == vkUndef {
			s.setUndefF(id)
			return
		}
	}
	if s.ab[id].cnt == 0 {
		s.setDecidedValueF(id, s.evalOpaqueF(id))
		return
	}
	s.ab[id].vkf = (fMayU | fMayDef) << 2
	s.ab[id].lo, s.ab[id].hi = 0, 0
}

// evalOpaqueF mirrors evalOpaque.
func (s *fstate) evalOpaqueF(id network.NodeID) event.Value {
	kids := s.flat.KidsOf(id)
	switch s.flat.Kind[id] {
	case network.KProd:
		v := event.Num(1)
		for _, k := range kids {
			v = event.Mul(v, s.valueF(k))
		}
		return v
	case network.KInv:
		return event.Inv(s.valueF(kids[0]))
	case network.KPow:
		return event.PowVal(s.valueF(kids[0]), s.net.Nodes[id].Exp)
	case network.KDist:
		return event.DistVal(s.net.Metric, s.valueF(kids[0]), s.valueF(kids[1]))
	}
	panic("prob: evalOpaque on non-opaque node")
}

// deriveCondValF mirrors deriveCondVal. The node's c-value is fixed, so the
// derived abstract for each guard state was precomputed in newFstate; each
// branch fully writes vkf/lo/hi (the zero lo/hi of non-scalar precomputes
// reproduce the legacy core's reset-then-derive semantics, including setVec
// leaving the reset bounds in place).
func (s *fstate) deriveCondValF(id network.NodeID) {
	c := s.condAux[s.ab[id].aux]
	vi := c.vi
	switch s.bval(c.g) {
	case bTrue:
		f := &s.cvTrue[vi]
		s.ab[id].vkf, s.ab[id].lo, s.ab[id].hi = f.vkf, f.lo, f.hi
		if s.cvVec[vi] {
			s.vecVals[id] = s.flat.Vals[vi].V
		}
	case bFalse:
		s.setUndefF(id)
	default:
		f := &s.cvUnk[vi]
		s.ab[id].vkf, s.ab[id].lo, s.ab[id].hi = f.vkf, f.lo, f.hi
	}
}

// deriveGuardF mirrors deriveGuard; same reset precondition as
// deriveCondValF.
func (s *fstate) deriveGuardF(id network.NodeID) {
	ga := s.guardAux[s.ab[id].aux]
	g := s.bval(ga[0])
	vk := ga[1]
	vv := s.ab[vk].vkf
	switch g {
	case bFalse:
		s.setUndefF(id)
	case bTrue:
		if vv&3 != vkNone {
			s.ab[id].vkf = vv
			s.ab[id].lo, s.ab[id].hi = s.ab[vk].lo, s.ab[vk].hi
			if vv&3 == vkVec {
				s.vecVals[id] = s.vecVals[vk]
			}
			return
		}
		s.ab[id].vkf = vv & (7 << 2)
		s.ab[id].lo, s.ab[id].hi = s.ab[vk].lo, s.ab[vk].hi
	default:
		fl := fMayU
		if vv>>2&fMayDef != 0 {
			fl |= fMayDef
		}
		if lo, hi, _, ok := effBoundsF(vv, s.ab[vk].lo, s.ab[vk].hi); ok {
			fl |= fBounded
			s.ab[id].lo, s.ab[id].hi = lo, hi
		}
		s.ab[id].vkf = fl << 2
	}
}

// deriveCmpF mirrors deriveCmp.
func (s *fstate) deriveCmpF(id network.NodeID) int8 {
	c := &s.cmpAux[s.ab[id].aux]
	la, ra := &s.ab[c.l], &s.ab[c.r]
	lv, rv := la.vkf, ra.vkf
	if lv&3 == vkUndef || rv&3 == vkUndef {
		return bTrue
	}
	op := c.op
	if lv&3 == vkScalar && rv&3 == vkScalar {
		return boolMask(op.Holds(la.lo, ra.lo))
	}
	llo, lhi, lMayU, lok := effBoundsF(lv, la.lo, la.hi)
	rlo, rhi, rMayU, rok := effBoundsF(rv, ra.lo, ra.hi)
	if !lok || !rok {
		return bUnknown
	}
	sl := s.opts.Slack
	// True when every defined combination satisfies the operator
	// (undefined combinations are true regardless).
	switch op {
	case event.LE, event.LT:
		if lhi <= rlo-sl {
			return bTrue
		}
	case event.GE, event.GT:
		if llo >= rhi+sl {
			return bTrue
		}
	}
	// False requires both sides certainly defined and the operator
	// certainly violated.
	if !lMayU && !rMayU {
		switch op {
		case event.LE, event.LT:
			if llo >= rhi+sl {
				return bFalse
			}
		case event.GE, event.GT:
			if lhi <= rlo-sl {
				return bFalse
			}
		case event.EQ:
			if llo >= rhi+sl || rlo >= lhi+sl {
				return bFalse
			}
		}
	}
	return bUnknown
}

// initAll computes the initial mask of every node bottom-up (node ids are
// topologically ordered); mirrors state.initAll.
func (s *fstate) initAll() {
	for id := network.NodeID(0); int(id) < len(s.flat.Kind); id++ {
		s.initNodeF(id)
		a := &s.ab[id]
		if a.tag&tagClass <= tagBoolCnt {
			s.open.setTo(int32(id), s.bval(id) == bUnknown)
		} else {
			s.open.setTo(int32(id), a.vkf&3 == vkNone)
		}
		s.stats.MaskUpdates++
		if at := s.targetsAt[id]; at >= 0 {
			if v := s.bval(id); v != bUnknown {
				tis := s.targetLists[at]
				s.nUnmasked -= len(tis)
				for _, ti := range tis {
					s.tMasked[ti] = true
					if s.recording {
						s.bounds.add(ti, v == bTrue, 1)
						if s.onAdd != nil {
							s.onAdd(ti, v == bTrue, 1)
						}
					}
				}
			}
		}
	}
}

// initNodeF mirrors initNode over the flat layout.
func (s *fstate) initNodeF(id network.NodeID) {
	kids := s.flat.KidsOf(id)
	switch s.flat.Kind[id] {
	case network.KVar:
	case network.KConst:
		s.setBval(id, boolMask(s.net.Nodes[id].B))
	case network.KNot:
		if c := s.bval(kids[0]); c != bUnknown {
			s.setBval(id, negMask(c))
		}
	case network.KAnd:
		v := bUnknown
		c1 := int32(0)
		for _, k := range kids {
			switch s.bval(k) {
			case bFalse:
				v = bFalse
			case bTrue:
				c1++
			}
		}
		if v == bUnknown && int(c1) == len(kids) {
			v = bTrue
		}
		s.ab[id].cnt = int32(len(kids)) - c1
		if v != bUnknown {
			s.setBval(id, v)
		}
	case network.KOr:
		v := bUnknown
		c1 := int32(0)
		for _, k := range kids {
			switch s.bval(k) {
			case bTrue:
				v = bTrue
			case bFalse:
				c1++
			}
		}
		if v == bUnknown && int(c1) == len(kids) {
			v = bFalse
		}
		s.ab[id].cnt = int32(len(kids)) - c1
		if v != bUnknown {
			s.setBval(id, v)
		}
	case network.KCmp:
		if v := s.deriveCmpF(id); v != bUnknown {
			s.setBval(id, v)
		}
	case network.KCondVal:
		s.deriveCondValF(id)
	case network.KGuard:
		s.deriveGuardF(id)
	case network.KSum:
		agg := &s.sums[s.ab[id].aux]
		for _, k := range kids {
			s.sumAccF(id, agg, s.ab[k].vkf, s.ab[k].lo, s.ab[k].hi, +1)
		}
		s.deriveSumF(id, agg)
	case network.KProd, network.KInv, network.KPow, network.KDist:
		for _, k := range kids {
			if s.ab[k].vkf&3 == vkNone {
				s.ab[id].cnt++
			}
		}
		s.deriveOpaqueF(id)
	}
}

// commitDecide finishes the decision of a counterless Boolean node (KVar,
// KNot, KCmp): such nodes commit at most once per wave — deciding clears
// their open bit — and always from the unknown state, so there is no trail
// dedup to check and no old truth bits to record. The trail word carries the
// node's target flag (bit 36) so undo consults the target tables only for
// actual targets. Mirrors commit for the tagBool class.
func (s *fstate) commitDecide(id network.NodeID, a *nabs, newV int8) {
	tg := a.tag
	a.trailedAt = s.level
	w := uint64(uint32(id)) | uint64(tagBool)<<32
	if tg&tagTarget != 0 {
		w |= 1 << 36
	}
	s.trailIDs = append(s.trailIDs, w)
	s.stats.MaskUpdates++
	s.open.clear(int32(id))
	if tg&tagTarget != 0 {
		s.maskTargets(id, newV)
	}
	if !a.queued {
		a.queued = true
		s.queue = append(s.queue, qent{id: id, oldBval: bUnknown})
	}
}

// commitBoolCnt finishes a KAnd/KOr update — a counter move and possibly a
// decision; the caller already wrote the new truth bits and counter and
// passes the prior counter. Mirrors commit for the tagBoolCnt class.
func (s *fstate) commitBoolCnt(id network.NodeID, a *nabs, oldCnt int32, newV int8) {
	tg := a.tag
	if a.trailedAt != s.level {
		a.trailedAt = s.level
		w := uint64(uint32(id)) | uint64(tagBoolCnt)<<32
		if tg&tagTarget != 0 {
			w |= 1 << 36
		}
		s.trailIDs = append(s.trailIDs, w)
		s.trailNums = append(s.trailNums, ntrail{cnt: oldCnt})
	}
	s.stats.MaskUpdates++
	if newV == bUnknown {
		return // only the counter moved; nothing visible changed
	}
	s.open.clear(int32(id))
	if tg&tagTarget != 0 {
		s.maskTargets(id, newV)
	}
	if !a.queued {
		a.queued = true
		s.queue = append(s.queue, qent{id: id, oldBval: bUnknown})
	}
}

// maskTargets masks the compilation targets rooted at a node that just
// decided, accumulating the branch mass into their bounds.
func (s *fstate) maskTargets(id network.NodeID, newV int8) {
	tis := s.targetLists[s.targetsAt[id]]
	s.nUnmasked -= len(tis)
	for _, ti := range tis {
		s.tMasked[ti] = true
		if s.recording {
			s.bounds.add(ti, newV == bTrue, s.curMass)
			if s.onAdd != nil {
				s.onAdd(ti, newV == bTrue, s.curMass)
			}
		}
	}
}

// commitNum finishes a numeric-node update: the caller already wrote the new
// abstract into the arrays and passes the prior values. Numeric nodes are
// never Boolean compilation targets, so no target bookkeeping here.
func (s *fstate) commitNum(id network.NodeID, a *nabs, oldVkf uint8, oldLo, oldHi float64, oldCnt int32, oldAgg *sumAgg) {
	if a.trailedAt != s.level {
		a.trailedAt = s.level
		tg := a.tag & tagClass
		s.trailIDs = append(s.trailIDs, uint64(uint32(id))|uint64(tg)<<32)
		s.trailNums = append(s.trailNums, ntrail{vkf: oldVkf, cnt: oldCnt, lo: oldLo, hi: oldHi})
		if tg == tagSum {
			s.trailSums = append(s.trailSums, *oldAgg)
		}
	}
	s.stats.MaskUpdates++
	if a.vkf == oldVkf && a.lo == oldLo && a.hi == oldHi {
		return // only counters/sums moved; nothing visible changed
	}
	if a.vkf&3 != vkNone {
		s.open.clear(int32(id))
	}
	if !a.queued {
		a.queued = true
		s.queue = append(s.queue, qent{id: id, oldBval: bUnknown, oldVkf: oldVkf, oldLo: oldLo, oldHi: oldHi})
	}
}

// assign pushes the valuation x ↦ v with branch mass p into the network and
// propagates masks upward (Algorithm 2); mirrors state.assign.
func (s *fstate) assign(x event.VarID, v bool, p float64) {
	s.stats.Assignments++
	s.assignTick++
	if s.assignTick&15 == 0 && !s.deadline.IsZero() && time.Now().After(s.deadline) {
		s.timedFlag.Store(true)
		s.stopFlag.Store(true)
	}
	s.curMass = p
	s.level++
	id := s.net.VarNode[x]
	if id == network.NoNode {
		return
	}
	s.setBval(id, boolMask(v))
	s.commitDecide(id, &s.ab[id], boolMask(v))
	s.propagate()
}

// propagate drains the work queue, updating parents of changed nodes — the
// inner switch is the former updateParent, fused into the loop so the ~1M
// parent-edge visits of a large compile pay no call overhead and the queue
// entry stays in registers. The child's current abstract is loaded once per
// dequeue, not once per parent: parent updates only ever mutate higher node
// ids (the network is topologically ordered), so it cannot change inside
// the loop. Parents are filtered through the open plane, which mirrors
// "not yet decided" exactly (see commitBool/commitNum/undoTo), replacing
// the legacy walker's per-call early return. Each case mirrors
// state.updateParent with the per-class equality checks spelled out (the
// legacy core compares whole nmask structs).
func (s *fstate) propagate() {
	for i := 0; i < len(s.queue); i++ {
		e := s.queue[i] // by value: commits may grow (reallocate) the queue
		s.ab[e.id].queued = false
		var cv int8
		var cvkf uint8
		var clo, chi float64
		if s.ab[e.id].tag&tagClass <= tagBoolCnt {
			cv = s.bval(e.id)
		} else {
			cvkf, clo, chi = s.ab[e.id].vkf, s.ab[e.id].lo, s.ab[e.id].hi
		}
		for _, pid := range s.flat.ParsOf(e.id) {
			if !s.open.get(int32(pid)) {
				continue // already decided; the trail restores consistently
			}
			a := &s.ab[pid]
			switch a.kind {
			case network.KNot:
				nv := negMask(cv)
				if nv == bUnknown {
					continue
				}
				s.setBval(pid, nv)
				s.commitDecide(pid, a, nv)
			case network.KAnd:
				// cnt counts down the kids still missing a true value, so
				// the all-true decision is a zero test with no fan-in
				// lookup.
				if cv == bFalse {
					s.setBval(pid, bFalse)
					s.commitBoolCnt(pid, a, a.cnt, bFalse)
				} else if cv == bTrue && e.oldBval != bTrue {
					oldCnt := a.cnt
					a.cnt--
					nv := bUnknown
					if a.cnt == 0 {
						nv = bTrue
						s.setBval(pid, bTrue)
					}
					s.commitBoolCnt(pid, a, oldCnt, nv)
				}
			case network.KOr:
				if cv == bTrue {
					s.setBval(pid, bTrue)
					s.commitBoolCnt(pid, a, a.cnt, bTrue)
				} else if cv == bFalse && e.oldBval != bFalse {
					oldCnt := a.cnt
					a.cnt--
					nv := bUnknown
					if a.cnt == 0 {
						nv = bFalse
						s.setBval(pid, bFalse)
					}
					s.commitBoolCnt(pid, a, oldCnt, nv)
				}
			case network.KCmp:
				nv := s.deriveCmpF(pid)
				if nv == bUnknown {
					continue
				}
				s.setBval(pid, nv)
				s.commitDecide(pid, a, nv)
			case network.KCondVal:
				oldV, oldL, oldH := a.vkf, a.lo, a.hi
				s.deriveCondValF(pid)
				if a.vkf == oldV && a.lo == oldL && a.hi == oldH {
					continue
				}
				s.commitNum(pid, a, oldV, oldL, oldH, 0, nil)
			case network.KGuard:
				oldV, oldL, oldH := a.vkf, a.lo, a.hi
				a.vkf, a.lo, a.hi = 0, 0, 0
				s.deriveGuardF(pid)
				if a.vkf == oldV && a.lo == oldL && a.hi == oldH {
					continue
				}
				s.commitNum(pid, a, oldV, oldL, oldH, 0, nil)
			case network.KSum:
				oldV, oldL, oldH := a.vkf, a.lo, a.hi
				agg := &s.sums[a.aux]
				oldAgg := *agg
				oldCnt := a.cnt
				s.sumAccF(pid, agg, e.oldVkf, e.oldLo, e.oldHi, -1)
				s.sumAccF(pid, agg, cvkf, clo, chi, +1)
				s.deriveSumF(pid, agg)
				if a.vkf == oldV && a.lo == oldL && a.hi == oldH &&
					a.cnt == oldCnt && *agg == oldAgg {
					continue
				}
				s.commitNum(pid, a, oldV, oldL, oldH, oldCnt, &oldAgg)
			case network.KProd, network.KInv, network.KPow, network.KDist:
				oldV, oldL, oldH := a.vkf, a.lo, a.hi
				oldCnt := a.cnt
				if (e.oldVkf&3 != vkNone) != (cvkf&3 != vkNone) {
					a.cnt--
				}
				s.deriveOpaqueF(pid)
				if a.vkf == oldV && a.lo == oldL && a.hi == oldH &&
					a.cnt == oldCnt {
					continue
				}
				s.commitNum(pid, a, oldV, oldL, oldH, oldCnt, nil)
			}
		}
	}
	s.queue = s.queue[:0]
}

// undoTo backtracks the trail to a saved mark, restoring masks bit-exactly
// and reopening targets that were masked past the mark; mirrors
// state.undoTo. Side stacks pop in step with the backward id walk.
func (s *fstate) undoTo(mark int) {
	nn, ns := len(s.trailNums), len(s.trailSums)
	for i := len(s.trailIDs) - 1; i >= mark; i-- {
		w := s.trailIDs[i]
		id := network.NodeID(uint32(w))
		tg := uint8(w >> 32 & 3)
		switch tg {
		case tagBool, tagBoolCnt:
			oldT := w&(1<<34) != 0
			oldF := w&(1<<35) != 0
			if w&(1<<36) != 0 && !oldT && !oldF &&
				s.bval(id) != bUnknown {
				tis := s.targetLists[s.targetsAt[id]]
				s.nUnmasked += len(tis)
				for _, ti := range tis {
					s.tMasked[ti] = false
				}
			}
			s.decT.setTo(int32(id), oldT)
			s.decF.setTo(int32(id), oldF)
			s.open.setTo(int32(id), !oldT && !oldF)
			if tg == tagBoolCnt {
				nn--
				s.ab[id].cnt = s.trailNums[nn].cnt
			}
		case tagSum:
			ns--
			s.sums[s.ab[id].aux] = s.trailSums[ns]
			nn--
			f := &s.trailNums[nn]
			s.ab[id].vkf, s.ab[id].cnt, s.ab[id].lo, s.ab[id].hi = f.vkf, f.cnt, f.lo, f.hi
			s.open.setTo(int32(id), f.vkf&3 == vkNone)
		case tagNum:
			nn--
			f := &s.trailNums[nn]
			s.ab[id].vkf, s.ab[id].cnt, s.ab[id].lo, s.ab[id].hi = f.vkf, f.cnt, f.lo, f.hi
			s.open.setTo(int32(id), f.vkf&3 == vkNone)
		}
	}
	s.trailIDs = s.trailIDs[:mark]
	s.trailNums = s.trailNums[:nn]
	s.trailSums = s.trailSums[:ns]
}

// nextVar mirrors state.nextVar over the flat layout.
func (s *fstate) nextVar(oi int) (int, event.VarID, bool) {
	for ; oi < len(s.order); oi++ {
		x := s.order[oi]
		id := s.net.VarNode[x]
		if s.bval(id) != bUnknown {
			continue // assigned on this branch
		}
		if s.opts.SkipDisabled {
			return oi, x, true
		}
		if s.targetsAt[id] >= 0 {
			return oi, x, true // the leaf itself is a compilation target
		}
		for _, pid := range s.flat.ParsOf(id) {
			if s.flat.Kind[pid].IsBool() {
				if s.bval(pid) == bUnknown {
					return oi, x, true
				}
			} else if s.ab[pid].vkf&3 == vkNone {
				return oi, x, true
			}
		}
	}
	return oi, -1, false
}

// allSettled mirrors state.allSettled.
func (s *fstate) allSettled() bool {
	if s.nUnmasked == 0 {
		return true
	}
	if s.bounds.allTight() {
		return true
	}
	if s.bounds.eps2 == 0 {
		return false // exact: tight only at full convergence
	}
	nTight := int64(len(s.tMasked)) - s.bounds.nLoose.Load()
	if int64(s.nUnmasked) > nTight {
		return false // pigeonhole: some target is neither masked nor tight
	}
	return s.bounds.settledWith(s.tMasked)
}

// snapshotFrom copies the post-init masks and counters of a pristine state.
func (s *fstate) snapshotFrom(pristine compCore) {
	p := pristine.(*fstate)
	s.decT.copyFrom(p.decT)
	s.decF.copyFrom(p.decF)
	s.open.copyFrom(p.open)
	copy(s.ab, p.ab)
	copy(s.sums, p.sums)
	if p.level > s.level {
		s.level = p.level
	}
	copy(s.tMasked, p.tMasked)
	if s.vecVals != nil {
		copy(s.vecVals, p.vecVals)
	}
	s.nUnmasked = p.nUnmasked
	s.clearTrail()
}

// fsnap is the flat core's job snapshot: the packed planes plus the dense
// abstract records and target bookkeeping. level is the forking state's
// assignment level: the snapshotted trailedAt values are at most level, so
// an adopting state raises its own level to at least it, keeping the
// trail-dedup comparison sound across workers.
type fsnap struct {
	decT, decF bitset
	// open has a bit set for every node not yet decided — the propagation
	// loop tests it to skip parents whose update would early-return, saving
	// the call. Maintained by the commit/undo paths in lockstep with the
	// truth planes and vkf kinds.
	open      bitset
	ab        []nabs
	sums      []sumAgg
	vecVals   []vec.Vec
	tMasked   []bool
	nUnmasked int
	level     int32
}

func (sn *fsnap) snapUnmasked() int { return sn.nUnmasked }

func (s *fstate) forkSnap() coreSnap {
	sn := &fsnap{
		decT:      s.decT.clone(),
		decF:      s.decF.clone(),
		open:      s.open.clone(),
		ab:        append([]nabs(nil), s.ab...),
		sums:      append([]sumAgg(nil), s.sums...),
		tMasked:   append([]bool(nil), s.tMasked...),
		nUnmasked: s.nUnmasked,
		level:     s.level,
	}
	if s.vecVals != nil {
		sn.vecVals = append([]vec.Vec(nil), s.vecVals...)
	}
	return sn
}

func (s *fstate) shareSnap() coreSnap {
	return &fsnap{
		decT: s.decT, decF: s.decF, open: s.open, ab: s.ab, sums: s.sums,
		vecVals: s.vecVals, tMasked: s.tMasked, nUnmasked: s.nUnmasked,
		level: s.level,
	}
}

func (s *fstate) adoptSnap(c coreSnap) {
	sn := c.(*fsnap)
	s.decT, s.decF = sn.decT, sn.decF
	s.open = sn.open
	s.ab, s.sums = sn.ab, sn.sums
	s.tMasked = sn.tMasked
	if sn.level > s.level {
		s.level = sn.level
	}
	if sn.vecVals != nil {
		s.vecVals = sn.vecVals
	}
	s.nUnmasked = sn.nUnmasked
	s.clearTrail()
}
