package prob

import (
	"sort"

	"enframe/internal/event"
	"enframe/internal/network"
)

// computeOrder returns the Shannon-expansion variable order. Variables that
// do not occur in the network are excluded: their assignments cannot change
// any mask and their probability mass marginalises out.
func computeOrder(net *network.Net, opts Options) []event.VarID {
	if opts.Order != nil {
		var order []event.VarID
		for _, x := range opts.Order {
			if net.VarNode[x] != network.NoNode {
				order = append(order, x)
			}
		}
		return order
	}
	var vars []event.VarID
	for x, id := range net.VarNode {
		if id != network.NoNode {
			vars = append(vars, event.VarID(x))
		}
	}
	if opts.Heuristic == InputOrder {
		return vars
	}
	// FanoutOrder: the paper picks the next variable to "influence as many
	// events as possible"; we order statically by the number of network
	// nodes transitively reachable upward from the variable's leaf.
	influence := make(map[event.VarID]int, len(vars))
	visited := make([]int32, len(net.Nodes))
	epoch := int32(0)
	stack := make([]network.NodeID, 0, 128)
	for _, x := range vars {
		epoch++
		count := 0
		stack = append(stack[:0], net.VarNode[x])
		visited[net.VarNode[x]] = epoch
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			count++
			for _, p := range net.Parents[id] {
				if visited[p] != epoch {
					visited[p] = epoch
					stack = append(stack, p)
				}
			}
		}
		influence[x] = count
	}
	sort.SliceStable(vars, func(i, j int) bool {
		if influence[vars[i]] != influence[vars[j]] {
			return influence[vars[i]] > influence[vars[j]]
		}
		return vars[i] < vars[j]
	})
	return vars
}
