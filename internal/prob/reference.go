package prob

import (
	"time"

	"enframe/internal/event"
	"enframe/internal/network"
)

// CompileRef is a reference implementation of exact compilation that
// recomputes an interval abstract interpretation of the whole network at
// every decision-tree node instead of propagating masks incrementally. It
// is slower than Compile but structurally much simpler; the two are
// differential-tested against each other, and the masking-vs-recompute
// ablation benchmark quantifies the gap.
func CompileRef(net *network.Net, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if len(net.Targets) == 0 {
		return nil, ErrNoTargets
	}
	types, err := net.Types()
	if err != nil {
		return nil, err
	}
	r := &refRun{
		net:   net,
		types: types,
		slack: opts.Slack,
		order: computeOrder(net, opts),
		abs:   make([]refAbs, len(net.Nodes)),
		nu:    make([]int8, net.Space.Len()),
		lo:    make([]float64, len(net.Targets)),
		hi:    make([]float64, len(net.Targets)),
		acct:  make([]bool, len(net.Targets)),
	}
	for i := range r.nu {
		r.nu[i] = bUnknown
	}
	for i := range r.hi {
		r.hi[i] = 1
	}
	if opts.Timeout > 0 {
		r.deadline = time.Now().Add(opts.Timeout)
	}
	start := time.Now()
	r.dfs(0, 1)
	res := &Result{TimedOut: r.timedOut}
	res.Stats.Branches = r.branches
	res.Stats.Duration = time.Since(start)
	res.Stats.NetworkNodes = net.NumNodes()
	res.Stats.Jobs = 1
	for i, t := range net.Targets {
		res.Targets = append(res.Targets, TargetBound{Name: t.Name, Lower: r.lo[i], Upper: r.hi[i]})
	}
	return res, nil
}

// refAbs is the abstract value of one node under a partial assignment.
type refAbs struct {
	bval    int8
	decided bool
	val     event.Value
	mayU    bool
	lo, hi  float64
	bounded bool
}

type refRun struct {
	net      *network.Net
	types    []network.ValueType
	slack    float64
	order    []event.VarID
	abs      []refAbs
	nu       []int8 // per-variable partial assignment
	lo, hi   []float64
	acct     []bool // target accounted on current branch
	branches int64
	deadline time.Time
	timedOut bool
}

func (r *refRun) dfs(oi int, p float64) {
	r.branches++
	if r.branches&255 == 0 && !r.deadline.IsZero() && time.Now().After(r.deadline) {
		r.timedOut = true
	}
	if r.timedOut || p == 0 {
		return
	}
	r.pass()
	var newly []int
	allDone := true
	for i, t := range r.net.Targets {
		if r.acct[i] {
			continue
		}
		a := &r.abs[t.Node]
		if a.bval == bUnknown {
			allDone = false
			continue
		}
		if a.bval == bTrue {
			r.lo[i] += p
		} else {
			r.hi[i] -= p
		}
		r.acct[i] = true
		newly = append(newly, i)
	}
	if !allDone {
		if oi < len(r.order) {
			x := r.order[oi]
			px := r.net.Space.Prob(x)
			r.nu[x] = bTrue
			r.dfs(oi+1, p*px)
			r.nu[x] = bFalse
			r.dfs(oi+1, p*(1-px))
			r.nu[x] = bUnknown
		}
	}
	for _, i := range newly {
		r.acct[i] = false
	}
}

// pass recomputes the abstract value of every node bottom-up.
func (r *refRun) pass() {
	for id := range r.net.Nodes {
		nd := &r.net.Nodes[id]
		a := refAbs{}
		switch nd.Kind {
		case network.KVar:
			a.bval = r.nu[nd.Var]
		case network.KConst:
			a.bval = boolMask(nd.B)
		case network.KNot:
			a.bval = negMask(r.abs[nd.Kids[0]].bval)
		case network.KAnd:
			a.bval = bTrue
			for _, k := range nd.Kids {
				switch r.abs[k].bval {
				case bFalse:
					a.bval = bFalse
				case bUnknown:
					if a.bval != bFalse {
						a.bval = bUnknown
					}
				}
				if a.bval == bFalse {
					break
				}
			}
		case network.KOr:
			a.bval = bFalse
			for _, k := range nd.Kids {
				switch r.abs[k].bval {
				case bTrue:
					a.bval = bTrue
				case bUnknown:
					if a.bval != bTrue {
						a.bval = bUnknown
					}
				}
				if a.bval == bTrue {
					break
				}
			}
		case network.KCmp:
			a.bval = r.cmp(nd)
		case network.KCondVal:
			switch r.abs[nd.Kids[0]].bval {
			case bTrue:
				a.set(nd.Val)
			case bFalse:
				a.set(event.U)
			default:
				a.mayU = true
				if nd.Val.Kind == event.Scalar {
					a.lo, a.hi, a.bounded = nd.Val.S, nd.Val.S, true
				}
			}
		case network.KGuard:
			g := r.abs[nd.Kids[0]].bval
			v := &r.abs[nd.Kids[1]]
			switch g {
			case bFalse:
				a.set(event.U)
			case bTrue:
				a = *v
			default:
				a = *v
				a.decided = false
				a.mayU = true
				if v.decided {
					if v.val.Kind == event.Scalar {
						a.lo, a.hi, a.bounded = v.val.S, v.val.S, true
					} else {
						a.bounded = false
					}
				}
			}
		case network.KSum:
			allDec, allMayU := true, true
			lo, hi := 0.0, 0.0
			bounded := r.types[id] == network.TScalar
			for _, k := range nd.Kids {
				c := &r.abs[k]
				if !c.decided {
					allDec = false
				}
				if !c.mayU {
					allMayU = false
				}
				clo, chi, cb := refContrib(c)
				if !cb {
					bounded = false
				} else {
					lo += clo
					hi += chi
				}
			}
			if allDec {
				v := event.U
				for _, k := range nd.Kids {
					v = event.Add(v, r.abs[k].val)
				}
				a.set(v)
			} else {
				a.mayU = allMayU
				a.lo, a.hi, a.bounded = lo, hi, bounded
			}
		case network.KProd, network.KInv, network.KPow, network.KDist:
			allDec := true
			anyMustU := false
			for _, k := range nd.Kids {
				c := &r.abs[k]
				if !c.decided {
					allDec = false
				} else if c.val.IsUndef() {
					anyMustU = true
				}
			}
			switch {
			case anyMustU:
				a.set(event.U)
			case allDec:
				a.set(r.evalOp(nd))
			default:
				a.mayU = true
			}
		}
		r.abs[id] = a
	}
}

func (a *refAbs) set(v event.Value) {
	a.decided = true
	a.val = v
	a.mayU = v.IsUndef()
	if v.Kind == event.Scalar {
		a.lo, a.hi, a.bounded = v.S, v.S, true
	}
}

func refContrib(c *refAbs) (lo, hi float64, ok bool) {
	if c.decided {
		if c.val.IsUndef() {
			return 0, 0, true
		}
		if c.val.Kind != event.Scalar {
			return 0, 0, false
		}
		return c.val.S, c.val.S, true
	}
	if !c.bounded {
		return 0, 0, false
	}
	lo, hi = c.lo, c.hi
	if c.mayU {
		if lo > 0 {
			lo = 0
		}
		if hi < 0 {
			hi = 0
		}
	}
	return lo, hi, true
}

func (r *refRun) evalOp(nd *network.Node) event.Value {
	switch nd.Kind {
	case network.KProd:
		v := event.Num(1)
		for _, k := range nd.Kids {
			v = event.Mul(v, r.abs[k].val)
		}
		return v
	case network.KInv:
		return event.Inv(r.abs[nd.Kids[0]].val)
	case network.KPow:
		return event.PowVal(r.abs[nd.Kids[0]].val, nd.Exp)
	case network.KDist:
		return event.DistVal(r.net.Metric, r.abs[nd.Kids[0]].val, r.abs[nd.Kids[1]].val)
	}
	panic("prob: evalOp on unexpected node")
}

func (r *refRun) cmp(nd *network.Node) int8 {
	l, rt := &r.abs[nd.Kids[0]], &r.abs[nd.Kids[1]]
	if (l.decided && l.val.IsUndef()) || (rt.decided && rt.val.IsUndef()) {
		return bTrue
	}
	if l.decided && rt.decided {
		return boolMask(nd.Op.Holds(l.val.S, rt.val.S))
	}
	lb, ok1 := refBounds(l)
	rb, ok2 := refBounds(rt)
	if !ok1 || !ok2 {
		return bUnknown
	}
	sl := r.slack
	switch nd.Op {
	case event.LE, event.LT:
		if lb.hi <= rb.lo-sl {
			return bTrue
		}
	case event.GE, event.GT:
		if lb.lo >= rb.hi+sl {
			return bTrue
		}
	}
	if !l.mayU && !rt.mayU {
		switch nd.Op {
		case event.LE, event.LT:
			if lb.lo >= rb.hi+sl {
				return bFalse
			}
		case event.GE, event.GT:
			if lb.hi <= rb.lo-sl {
				return bFalse
			}
		case event.EQ:
			if lb.lo >= rb.hi+sl || rb.lo >= lb.hi+sl {
				return bFalse
			}
		}
	}
	return bUnknown
}

type interval struct{ lo, hi float64 }

func refBounds(a *refAbs) (interval, bool) {
	if a.decided {
		if a.val.Kind != event.Scalar {
			return interval{}, false
		}
		return interval{a.val.S, a.val.S}, true
	}
	if !a.bounded {
		return interval{}, false
	}
	return interval{a.lo, a.hi}, true
}
