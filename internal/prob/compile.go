package prob

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"enframe/internal/event"
	"enframe/internal/network"
	"enframe/internal/obs"
)

// ErrNoTargets is returned when the network declares no compilation targets.
var ErrNoTargets = errors.New("prob: network has no compilation targets")

// Compile computes probability bounds for every compilation target of the
// network (Algorithm 1). Exact compilation runs until the bounds meet; the
// approximation strategies guarantee Upper − Lower ≤ 2·Epsilon per target
// unless the timeout fires first.
func Compile(net *network.Net, opts Options) (*Result, error) {
	return CompileCtx(context.Background(), net, opts)
}

// Order returns the Shannon-expansion variable order the given heuristic
// produces for the network. Callers that compile the same network repeatedly
// (e.g. the serving layer's artifact cache) can compute the order once and
// replay it through Options.Order, skipping the per-compile order stage.
func Order(net *network.Net, h OrderHeuristic) []event.VarID {
	return computeOrder(net, Options{Heuristic: h})
}

// CompileCtx is Compile with cooperative cancellation: when ctx is cancelled
// or its deadline passes, all workers stop at the next branch boundary and
// CompileCtx returns ctx's error instead of a partial result. This is
// distinct from Options.Timeout, which returns the partial bounds reached so
// far with Result.TimedOut set.
func CompileCtx(ctx context.Context, net *network.Net, opts Options) (*Result, error) {
	if opts.Strategy == Circuit {
		// The circuit backend traces one exact sequential compilation and
		// answers from a replay of the recorded circuit (see circuit.go);
		// callers needing the reusable circuit itself use CompileCircuit.
		_, res, err := CompileCircuit(ctx, net, opts)
		return res, err
	}
	opts = opts.withDefaults()
	if len(net.Targets) == 0 {
		return nil, ErrNoTargets
	}
	types, err := net.Types()
	if err != nil {
		return nil, err
	}
	eps2 := 0.0
	if opts.Strategy != Exact {
		eps2 = 2 * opts.Epsilon
	}
	span := opts.Obs.Root().Start("compile")
	defer span.End()
	span.SetStr("strategy", opts.Strategy.String())
	if opts.Strategy != Exact {
		span.SetFloat("eps", opts.Epsilon)
	}
	span.SetInt("workers", int64(opts.Workers))
	span.SetInt("targets", int64(len(net.Targets)))
	span.SetInt("nodes", int64(net.NumNodes()))

	tOrder := time.Now()
	orderSpan := span.Start("order")
	order := computeOrder(net, opts)
	orderSpan.SetInt("vars", int64(len(order)))
	orderSpan.End()
	orderDur := time.Since(tOrder)

	run := &runner{
		net:    net,
		types:  types,
		opts:   opts,
		order:  order,
		span:   span,
		bounds: newBoundsBook(len(net.Targets), eps2),
	}
	if opts.Strategy.budgeted() {
		// Bounded per-target budget-spend timeline; nil when tracing is off.
		run.timeline = opts.Obs.Timeline("budget.spend", budgetTimelineCap)
	}
	if opts.Timeout > 0 {
		run.deadline = time.Now().Add(opts.Timeout)
	}
	// Cancellation watcher: dfs consults run.stop on every branch, so
	// flipping it aborts all workers promptly. The watcher itself exits
	// when compilation finishes, whichever comes first.
	if ctx.Done() != nil {
		finished := make(chan struct{})
		defer close(finished)
		go func() {
			select {
			case <-ctx.Done():
				run.canceled.Store(true)
				run.stop.Store(true)
				run.interrupt()
			case <-finished:
			}
		}()
	}
	start := time.Now()
	var stats Stats
	switch {
	case opts.Workers > 1 && opts.SimulateWorkers:
		stats = run.runSimulated()
	case opts.Workers > 1:
		stats = run.runDistributed()
	default:
		stats = run.runSequential()
	}
	stats.Duration = time.Since(start)
	stats.NetworkNodes = net.NumNodes()
	stats.Timings.Order = orderDur
	if !opts.LegacyCore {
		stats.MaskWords = int64(bitsetWords(net.NumNodes()))
	}
	stats.BatchTargets = int64(len(net.Targets))

	span.SetInt("branches", stats.Branches)
	span.SetInt("max_depth", stats.MaxDepth)
	if stats.BudgetPrunes > 0 {
		span.SetInt("budget_prunes", stats.BudgetPrunes)
	}
	if run.timedOut.Load() {
		span.SetStr("timed_out", "true")
	}
	if reg := opts.Obs.Metrics(); reg != nil {
		reg.Counter("prob.branches").Add(stats.Branches)
		reg.Counter("prob.assignments").Add(stats.Assignments)
		reg.Counter("prob.mask_updates").Add(stats.MaskUpdates)
		reg.Counter("prob.budget_prunes").Add(stats.BudgetPrunes)
		reg.Counter("prob.jobs").Add(stats.Jobs)
		reg.Counter("prob.mask_words").Add(stats.MaskWords)
		reg.Counter("prob.batch_targets").Add(stats.BatchTargets)
		reg.Gauge("prob.tree.max_depth").SetMax(float64(stats.MaxDepth))
	}
	if run.canceled.Load() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("prob: compile: %w", err)
		}
	}
	lo, hi := run.bounds.snapshot()
	res := &Result{Stats: stats, TimedOut: run.timedOut.Load()}
	for i, t := range net.Targets {
		// Clamp float round-off at the [0, 1] borders.
		l, h := lo[i], hi[i]
		if l < 0 {
			l = 0
		}
		if h > 1 {
			h = 1
		}
		if h < l {
			h = l
		}
		res.Targets = append(res.Targets, TargetBound{Name: t.Name, Lower: l, Upper: h})
	}
	return res, nil
}

// budgetTimelineCap bounds the per-target budget-spend timeline recorded
// under tracing; beyond it, points are counted as dropped.
const budgetTimelineCap = 8192

// runner holds the pieces shared by all workers of one compilation.
type runner struct {
	net      *network.Net
	types    []network.ValueType
	opts     Options
	order    []event.VarID
	bounds   *boundsBook
	span     *obs.Span     // compile span (nil when tracing is off)
	timeline *obs.Timeline // budget-spend timeline (nil unless traced+budgeted)
	deadline time.Time
	stop     atomic.Bool // set on timeout or external abort
	timedOut atomic.Bool
	canceled atomic.Bool // set when the compile context was cancelled
	// queue is the distributed work queue, published so the cancellation
	// watcher can wake workers parked on its condition variable.
	queue atomic.Pointer[workQueue]
}

// interrupt wakes workers blocked on the distributed work queue so they
// observe the stop flag promptly instead of sleeping until the queue drains.
func (r *runner) interrupt() {
	if q := r.queue.Load(); q != nil {
		q.interrupt()
	}
}

// leaseBudgetBuf hands a walker the backing array for its per-depth budget
// buffers: (|order|+2)·n floats cover the deepest possible expansion, so a
// Hybrid walker allocates exactly once per compilation instead of once per
// depth reached.
func (r *runner) leaseBudgetBuf(n int) []float64 {
	return make([]float64, (len(r.order)+2)*n)
}

func (r *runner) runSequential() Stats {
	tInit := time.Now()
	initSpan := r.span.Start("init")
	s := r.attach(newCompCore(r.net, r.types, r.opts, r.bounds))
	s.initAll()
	initSpan.End()
	st := s.st()
	st.Timings.Init = time.Since(tInit)

	tExplore := time.Now()
	exploreSpan := r.span.Start("explore")
	w := &walker{state: s, run: r}
	E := make([]float64, len(r.net.Targets))
	if r.opts.Strategy.budgeted() {
		for i := range E {
			E[i] = 2 * r.opts.Epsilon
		}
	}
	w.dfs(0, 0, -1, false, 1, E)
	exploreSpan.SetInt("branches", st.Branches)
	exploreSpan.End()
	st.Timings.Explore = time.Since(tExplore)
	st.Jobs = 1
	return *st
}

// attach wires the runner's order and abort machinery into a worker state.
func (r *runner) attach(s compCore) compCore {
	s.attachRun(r.order, r.deadline, &r.stop, &r.timedOut)
	return s
}

// walker runs the depth-first Shannon expansion over one state (either
// core implementation; see compCore). In distributed mode forkDepth > 0
// makes it enqueue a continuation job instead of descending past that many
// local assignments.
type walker struct {
	state     compCore
	run       *runner
	forkDepth int
	// fork ships the current masks as a new job; it reports false when
	// the queue is saturated, in which case the walker descends locally.
	fork func(oi int, p float64, E []float64) bool
	// localVars counts assignments made since the current job's root.
	localVars int
	// back is the contiguous backing of the per-depth budget-halving
	// buffers (Hybrid only), leased from the runner on first use.
	back []float64
	// trackPath maintains path — the assignments from this walker's job
	// root to the current branch — so session executors can ship fork
	// continuations as replayable assignment paths instead of raw mask
	// snapshots.
	trackPath bool
	path      []Assign
}

// dfs explores the branch extending the current assignment by x ↦ xval
// (x < 0 at the root) with branch mass p and per-target error budgets E.
// It mutates E in place to the residual budgets (Algorithm 1, blue lines);
// for non-budgeted strategies E stays untouched.
func (w *walker) dfs(depth, oi int, x event.VarID, xval bool, p float64, E []float64) {
	s := w.state
	r := w.run
	st := s.st()
	st.Branches++
	if int64(depth) > st.MaxDepth {
		st.MaxDepth = int64(depth)
	}
	if st.Branches&1023 == 0 {
		r.checkDeadline()
	}
	if r.stop.Load() || p == 0 {
		return
	}
	budgeted := r.opts.Strategy.budgeted()
	// Budget pruning: when every target's budget covers the whole subtree
	// mass, cut the subtree and consume the budget.
	if budgeted && p <= minOf(E) {
		st.BudgetPrunes++
		if r.timeline != nil {
			for i := range E {
				r.timeline.Add(i, p)
			}
		}
		for i := range E {
			E[i] -= p
		}
		return
	}
	mark := s.trailMark()
	if x >= 0 {
		s.assign(x, xval, p)
		w.localVars++
		if w.trackPath {
			w.path = append(w.path, Assign{Var: x, Val: xval})
		}
	}

	switch {
	case s.allSettled():
		// Every target masked on this branch or globally tight.

	case w.forkDepth > 0 && w.localVars > 0 && w.localVars%w.forkDepth == 0 &&
		w.fork(oi, p, E):
		// Distributed fork boundary: the masks and budget travelled with
		// the job. When the queue is saturated, fork reports false and
		// the walker keeps descending locally instead.
		if budgeted {
			for i := range E {
				E[i] = 0
			}
		}

	default:
		oi2, y, ok := s.nextVar(oi)
		if ok {
			py := r.net.Space.Prob(y)
			switch r.opts.Strategy {
			case Hybrid:
				L := w.buf(depth, len(E))
				for i := range E {
					L[i] = E[i] / 2
				}
				w.dfs(depth+1, oi2+1, y, true, p*py, L)
				for i := range E {
					E[i] = E[i]/2 + L[i]
				}
			default:
				// Exact and lazy carry no budget; eager hands the full
				// remaining budget to the left branch in place.
				w.dfs(depth+1, oi2+1, y, true, p*py, E)
			}
			// Algorithm 1: explore the right branch only while some
			// target's bounds exceed 2ε.
			if !r.stop.Load() && !r.bounds.allTight() {
				w.dfs(depth+1, oi2+1, y, false, p*(1-py), E)
			}
		}
		// !ok is unreachable while targets are unmasked: an undecided
		// node always has an undecided child, so some influential
		// variable exists (see nextVar).
	}

	if x >= 0 {
		w.localVars--
		if w.trackPath {
			w.path = w.path[:len(w.path)-1]
		}
		s.undoTo(mark)
	}
}

// buf returns the depth-th budget buffer, a row of a single contiguous
// backing array leased from the runner — one allocation per walker instead
// of one per depth. Exact compilation never calls it, so the non-budgeted
// path stays allocation-free here.
func (w *walker) buf(depth, n int) []float64 {
	if w.back == nil {
		w.back = w.run.leaseBudgetBuf(n)
	}
	off := depth * n
	return w.back[off : off+n]
}

// nextVar returns the next influential unassigned variable at or after
// order position oi. Variables whose direct uses are all masked cannot
// change any event and are skipped (their mass marginalises out).
func (s *state) nextVar(oi int) (int, event.VarID, bool) {
	for ; oi < len(s.order); oi++ {
		x := s.order[oi]
		id := s.net.VarNode[x]
		if s.masks[id].bval != bUnknown {
			continue // assigned on this branch
		}
		if s.opts.SkipDisabled {
			return oi, x, true
		}
		if s.targetsAt[id] >= 0 {
			return oi, x, true // the leaf itself is a compilation target
		}
		for _, pid := range s.net.Parents[id] {
			pm := &s.masks[pid]
			if s.net.Nodes[pid].Kind.IsBool() {
				if pm.bval == bUnknown {
					return oi, x, true
				}
			} else if !pm.decided() {
				return oi, x, true
			}
		}
	}
	return oi, -1, false
}

// allSettled reports the termination condition of Algorithm 1: every target
// masked on this branch or already within 2ε globally.
func (s *state) allSettled() bool {
	if s.nUnmasked == 0 {
		return true
	}
	if s.bounds.allTight() {
		return true
	}
	if s.bounds.eps2 == 0 {
		return false // exact: tight only at full convergence
	}
	nTight := int64(len(s.tMasked)) - s.bounds.nLoose.Load()
	if int64(s.nUnmasked) > nTight {
		return false // pigeonhole: some target is neither masked nor tight
	}
	return s.bounds.settledWith(s.tMasked)
}

func (r *runner) checkDeadline() {
	if !r.deadline.IsZero() && time.Now().After(r.deadline) {
		r.timedOut.Store(true)
		r.stop.Store(true)
		r.interrupt()
	}
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
