package prob

import (
	"context"
	"fmt"
	"time"

	"enframe/internal/network"
	"enframe/internal/obs"
)

// CompileExec compiles the network by shipping depth-d decision-tree jobs to
// a JobExecutor — the multi-process twin of CompileCtx's in-process
// distributed runner. The executor may be local (NewLocalExecutor), a remote
// worker pool (internal/dist), or a MultiExecutor mix.
//
// Determinism and idempotence: each job returns an ordered stream of bound
// contributions with fork markers; the coordinator splices child streams at
// their markers, reproducing the exact add order of a sequential run, so
// exact-strategy marginals are bit-identical to Compile with Workers=1. A
// job's error budget is withdrawn from the shared pool once, at first
// dispatch, and travels with the job across retries; residuals are deposited
// once per accepted completion. Re-executed jobs (after a worker death)
// therefore reproduce the identical result and the ε-contract
// Upper−Lower ≤ 2ε survives worker loss.
func CompileExec(ctx context.Context, net *network.Net, opts Options, exec JobExecutor) (*Result, error) {
	return CompileExecObserve(ctx, net, opts, exec, nil)
}

// CompileExecObserve is CompileExec with a per-completion observer (used by
// the distributed benchmark to collect job durations and the fork
// precedence graph). observe runs on the coordinator goroutine after the
// result is accepted; children IDs are jobs[res.Forks[k]] in fork order
// starting at the value observe can compute from prior calls — the observer
// receives the dispatched job, its result, and the IDs assigned to its
// forked children.
func CompileExecObserve(ctx context.Context, net *network.Net, opts Options, exec JobExecutor, observe func(j *WireJob, res *WireResult, children []uint64)) (*Result, error) {
	opts = opts.withDefaults()
	if len(net.Targets) == 0 {
		return nil, ErrNoTargets
	}
	types, err := net.Types()
	if err != nil {
		return nil, err
	}
	eps2 := 0.0
	if opts.Strategy != Exact {
		eps2 = 2 * opts.Epsilon
	}
	budgeted := opts.Strategy.budgeted()

	span := opts.Obs.Root().Start("compile")
	defer span.End()
	span.SetStr("strategy", opts.Strategy.String())
	span.SetStr("mode", "executor")
	span.SetInt("targets", int64(len(net.Targets)))
	span.SetInt("nodes", int64(net.NumNodes()))

	tOrder := time.Now()
	order := computeOrder(net, opts)
	orderDur := time.Since(tOrder)

	// The coordinator owns the authoritative book. The initial bottom-up
	// pass credits targets decided without any assignment, exactly as the
	// sequential run does first; job streams follow in merge order.
	book := newBoundsBook(len(net.Targets), eps2)
	tInit := time.Now()
	initSpan := span.Start("init")
	init := newCompCore(net, types, opts, book)
	init.attachRun(order, time.Time{}, nil, nil)
	init.initAll()
	initSpan.End()
	initDur := time.Since(tInit)

	tExplore := time.Now()
	dspan := span.Start("distribute")
	defer dspan.End()

	const (
		jPending = iota
		jInflight
		jDone
		jSkipped
	)
	type cjob struct {
		wj        *WireJob
		res       *WireResult
		children  []uint64
		state     uint8
		withdrawn bool
	}

	E0 := make([]float64, len(net.Targets))
	if budgeted {
		for i := range E0 {
			E0[i] = 2 * opts.Epsilon
		}
	}
	jobs := map[uint64]*cjob{0: {wj: &WireJob{ID: 0, P: 1, E: E0}}}
	pending := []uint64{0}
	nextID := uint64(1)
	pool := &budgetPool{}

	// Ordered merge: an explicit stack of (job, item-index) frames walks the
	// item streams depth-first, descending into a child at its fork marker
	// and pausing whenever the next needed result has not arrived yet.
	type mergeFrame struct {
		id   uint64
		item int
	}
	mstack := []mergeFrame{{id: 0}}
	merge := func() {
		for len(mstack) > 0 {
			f := &mstack[len(mstack)-1]
			cj := jobs[f.id]
			if cj.state == jSkipped {
				mstack = mstack[:len(mstack)-1]
				continue
			}
			if cj.state != jDone {
				return
			}
			descended := false
			for f.item < len(cj.res.Items) {
				it := cj.res.Items[f.item]
				f.item++
				if it.Kind == ItemAdd {
					book.add(int(it.Target), it.IsTrue, it.Mass)
					continue
				}
				mstack = append(mstack, mergeFrame{id: cj.children[it.Fork]})
				descended = true
				break
			}
			if !descended {
				mstack = mstack[:len(mstack)-1]
			}
		}
	}

	type execDone struct {
		id  uint64
		res *WireResult
		err error
	}
	resCh := make(chan execDone, 16)
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	var deadline time.Time
	var deadlineCh <-chan time.Time
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
		t := time.NewTimer(opts.Timeout)
		defer t.Stop()
		deadlineCh = t.C
	}

	var total Stats
	var firstErr error
	timedOut := false
	inflight := 0
	ctxDone := ctx.Done()

	for {
		if firstErr == nil && !timedOut {
			for len(pending) > 0 {
				slots := exec.Slots()
				if slots < 1 {
					if inflight == 0 {
						firstErr = fmt.Errorf("prob: compile: %w", ErrExecutorUnavailable)
					}
					break
				}
				if inflight >= slots {
					break
				}
				id := pending[len(pending)-1]
				pending = pending[:len(pending)-1]
				cj := jobs[id]
				// Once every target is within 2ε the remaining subtrees
				// cannot improve the contract; skip them. Exact runs
				// (eps2 = 0) never skip, preserving bit-identity.
				if eps2 > 0 && book.allTight() {
					cj.state = jSkipped
					continue
				}
				if !deadline.IsZero() {
					rem := time.Until(deadline)
					if rem <= 0 {
						timedOut = true
						pending = append(pending, id)
						break
					}
					cj.wj.Timeout = rem
				}
				if budgeted && !cj.withdrawn {
					pool.withdraw(cj.wj.E)
					cj.withdrawn = true
				}
				cj.state = jInflight
				inflight++
				go func(id uint64, wj *WireJob) {
					// Per-job span carried on the context: a pool executor
					// propagates its trace context to the worker and splices
					// the remote subtree back underneath. Nil (tracing off)
					// flows through every call without allocating.
					jspan := dspan.Start("job")
					jspan.SetInt("id", int64(id))
					jspan.SetInt("depth", int64(len(wj.Path)))
					res, err := exec.ExecuteJob(obs.ContextWithSpan(runCtx, jspan), wj)
					if res != nil {
						jspan.SetInt("items", int64(len(res.Items)))
						jspan.SetInt("forks", int64(len(res.Forks)))
					}
					jspan.End()
					resCh <- execDone{id: id, res: res, err: err}
				}(id, cj.wj)
			}
		}
		if firstErr != nil || timedOut {
			for _, id := range pending {
				jobs[id].state = jSkipped
			}
			pending = pending[:0]
		}
		if inflight == 0 {
			if len(pending) == 0 {
				break
			}
			continue // re-enter dispatch (or the skip branch above)
		}
		select {
		case d := <-resCh:
			inflight--
			cj := jobs[d.id]
			if d.err != nil {
				if firstErr == nil && !timedOut && ctx.Err() == nil {
					firstErr = fmt.Errorf("prob: compile: %w", d.err)
					cancelRun()
				}
				cj.state = jSkipped
				continue
			}
			cj.state = jDone
			cj.res = d.res
			if budgeted && len(d.res.Residual) > 0 {
				pool.deposit(d.res.Residual)
			}
			if d.res.TimedOut {
				timedOut = true
			}
			cj.children = make([]uint64, len(d.res.Forks))
			for k := range d.res.Forks {
				fk := d.res.Forks[k]
				cid := nextID
				nextID++
				cj.children[k] = cid
				jobs[cid] = &cjob{wj: &WireJob{ID: cid, Path: fk.Path, OI: fk.OI, P: fk.P, E: fk.E}}
			}
			// LIFO with children reversed: the leftmost child runs first,
			// keeping dispatch close to sequential DFS order so the merge
			// stack rarely stalls.
			for k := len(cj.children) - 1; k >= 0; k-- {
				pending = append(pending, cj.children[k])
			}
			st := d.res.Stats
			total.Branches += st.Branches
			total.Assignments += st.Assignments
			total.MaskUpdates += st.MaskUpdates
			total.BudgetPrunes += st.BudgetPrunes
			if st.MaxDepth > total.MaxDepth {
				total.MaxDepth = st.MaxDepth
			}
			total.Jobs++
			if observe != nil {
				observe(cj.wj, d.res, cj.children)
			}
			merge()
		case <-deadlineCh:
			timedOut = true
			deadlineCh = nil
		case <-ctxDone:
			if firstErr == nil {
				firstErr = fmt.Errorf("prob: compile: %w", ctx.Err())
			}
			cancelRun()
			ctxDone = nil
		}
	}

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("prob: compile: %w", err)
	}
	merge()

	total.MaskUpdates += init.st().MaskUpdates
	if !opts.LegacyCore {
		total.MaskWords = int64(bitsetWords(net.NumNodes()))
	}
	total.BatchTargets = int64(len(net.Targets))
	total.NetworkNodes = net.NumNodes()
	total.Timings.Order = orderDur
	total.Timings.Init = initDur
	total.Timings.Explore = time.Since(tExplore)
	total.Duration = orderDur + initDur + total.Timings.Explore
	dspan.SetInt("jobs", total.Jobs)
	span.SetInt("branches", total.Branches)
	span.SetInt("max_depth", total.MaxDepth)
	if reg := opts.Obs.Metrics(); reg != nil {
		reg.Counter("prob.branches").Add(total.Branches)
		reg.Counter("prob.assignments").Add(total.Assignments)
		reg.Counter("prob.mask_updates").Add(total.MaskUpdates)
		reg.Counter("prob.budget_prunes").Add(total.BudgetPrunes)
		reg.Counter("prob.jobs").Add(total.Jobs)
		reg.Counter("prob.mask_words").Add(total.MaskWords)
		reg.Counter("prob.batch_targets").Add(total.BatchTargets)
		reg.Gauge("prob.tree.max_depth").SetMax(float64(total.MaxDepth))
	}

	lo, hi := book.snapshot()
	res := &Result{Stats: total, TimedOut: timedOut}
	for i, t := range net.Targets {
		l, h := lo[i], hi[i]
		if l < 0 {
			l = 0
		}
		if h > 1 {
			h = 1
		}
		if h < l {
			h = l
		}
		res.Targets = append(res.Targets, TargetBound{Name: t.Name, Lower: l, Upper: h})
	}
	return res, nil
}
