package prob

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// Property tests for the bitset layer under the flat compilation core. The
// packed planes are the part of the core where a single off-by-one word or a
// stale bit silently corrupts every marginal downstream, so the layer is
// pinned against naive reference models with testing/quick rather than
// hand-picked cases.

// quickCfg sizes the random exploration; the bit indices below are reduced
// modulo small plane sizes so word boundaries (bit 63/64) are hit often.
var quickCfg = &quick.Config{MaxCount: 400}

// TestBitsetQuickModel checks set/clear/setTo/get against a map-based
// reference model over arbitrary operation sequences.
func TestBitsetQuickModel(t *testing.T) {
	f := func(nBits uint8, ops []uint16) bool {
		n := int(nBits)%130 + 1 // 1..130 bits: 1–3 words, crossing boundaries
		b := newBitset(n)
		ref := make(map[int32]bool)
		for _, op := range ops {
			i := int32(int(op>>2) % n)
			switch op & 3 {
			case 0:
				b.set(i)
				ref[i] = true
			case 1:
				b.clear(i)
				ref[i] = false
			case 2:
				b.setTo(i, op&4 != 0)
				ref[i] = op&4 != 0
			case 3:
				if b.get(i) != ref[i] {
					return false
				}
			}
		}
		for i := int32(0); i < int32(n); i++ {
			if b.get(i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestBitsetQuickPopcount checks the word-parallel popcount against a naive
// per-bit count.
func TestBitsetQuickPopcount(t *testing.T) {
	f := func(nBits uint8, setBits []uint16) bool {
		n := int(nBits)%200 + 1
		b := newBitset(n)
		for _, raw := range setBits {
			b.set(int32(int(raw) % n))
		}
		naive := 0
		for i := int32(0); i < int32(n); i++ {
			if b.get(i) {
				naive++
			}
		}
		return b.popcount() == naive
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestBval3QuickRoundTrip checks the two-plane three-valued encoding: every
// setBval3 write reads back via bval3, and the planes stay mutually
// exclusive (a node is never decided both true and false).
func TestBval3QuickRoundTrip(t *testing.T) {
	f := func(nBits uint8, writes []uint16) bool {
		n := int(nBits)%130 + 1
		decT, decF := newBitset(n), newBitset(n)
		ref := make(map[int32]int8)
		vals := [3]int8{bUnknown, bTrue, bFalse}
		for _, raw := range writes {
			i := int32(int(raw>>2) % n)
			v := vals[int(raw&3)%3]
			setBval3(decT, decF, i, v)
			ref[i] = v
		}
		for w := range decT {
			if decT[w]&decF[w] != 0 {
				return false // decided true AND false
			}
		}
		for i := int32(0); i < int32(n); i++ {
			want, ok := ref[i]
			if !ok {
				want = bUnknown
			}
			if bval3(decT, decF, i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestBitsetSnapshotRestoreQuick checks that clone/copyFrom — the primitives
// under the flat core's fork snapshots — restore a mutated plane exactly and
// are idempotent (restoring twice equals restoring once).
func TestBitsetSnapshotRestoreQuick(t *testing.T) {
	f := func(nBits uint8, initial, mutations []uint16) bool {
		n := int(nBits)%300 + 1
		b := newBitset(n)
		for _, raw := range initial {
			b.setTo(int32(int(raw>>1)%n), raw&1 != 0)
		}
		snap := b.clone()
		for _, raw := range mutations {
			b.setTo(int32(int(raw>>1)%n), raw&1 != 0)
		}
		b.copyFrom(snap)
		for w := range b {
			if b[w] != snap[w] {
				return false
			}
		}
		b.copyFrom(snap) // idempotent
		for w := range b {
			if b[w] != snap[w] {
				return false
			}
		}
		b.zero()
		for _, w := range b {
			if w != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// flatSig is the semantically visible slice of an fstate: the truth and open
// planes plus every node's numeric abstract and aggregate. Bookkeeping that
// is allowed to go stale across undo (trailedAt dedup stamps, queued flags)
// is deliberately excluded.
type flatSig struct {
	decT, decF, open bitset
	vkf              []uint8
	lo, hi           []float64
	cnt              []int32
	sums             []sumAgg
	tMasked          []bool
	nUnmasked        int
}

func captureSig(s *fstate) flatSig {
	sig := flatSig{
		decT:      s.decT.clone(),
		decF:      s.decF.clone(),
		open:      s.open.clone(),
		sums:      append([]sumAgg(nil), s.sums...),
		tMasked:   append([]bool(nil), s.tMasked...),
		nUnmasked: s.nUnmasked,
	}
	for i := range s.ab {
		a := &s.ab[i]
		sig.vkf = append(sig.vkf, a.vkf)
		sig.lo = append(sig.lo, a.lo)
		sig.hi = append(sig.hi, a.hi)
		sig.cnt = append(sig.cnt, a.cnt)
	}
	return sig
}

func (sig *flatSig) equal(o flatSig) string {
	for w := range sig.decT {
		if sig.decT[w] != o.decT[w] || sig.decF[w] != o.decF[w] {
			return fmt.Sprintf("truth planes differ at word %d", w)
		}
		if sig.open[w] != o.open[w] {
			return fmt.Sprintf("open plane differs at word %d", w)
		}
	}
	for i := range sig.vkf {
		if sig.vkf[i] != o.vkf[i] || sig.lo[i] != o.lo[i] || sig.hi[i] != o.hi[i] || sig.cnt[i] != o.cnt[i] {
			return fmt.Sprintf("abstract of node %d differs", i)
		}
	}
	for i := range sig.sums {
		if sig.sums[i] != o.sums[i] {
			return fmt.Sprintf("sum aggregate %d differs", i)
		}
	}
	for i := range sig.tMasked {
		if sig.tMasked[i] != o.tMasked[i] {
			return fmt.Sprintf("target mask %d differs", i)
		}
	}
	if sig.nUnmasked != o.nUnmasked {
		return fmt.Sprintf("nUnmasked %d vs %d", sig.nUnmasked, o.nUnmasked)
	}
	return ""
}

// TestFlatSnapshotRestoreProperty drives full fstates over random networks:
// for a spread of seeds it asserts that (a) trail undo restores the exact
// pre-assignment state, and (b) a forkSnap taken mid-branch adopts back to
// the identical state even after further assignments mutated the live
// planes — the two restore paths the distributed runner depends on for
// bit-identical job replay.
func TestFlatSnapshotRestoreProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			net := randomNet(rng, 3+rng.Intn(4), 1+rng.Intn(3))
			types, err := net.Types()
			if err != nil {
				t.Fatal(err)
			}
			opts := Options{Strategy: Exact}.withDefaults()
			book := newBoundsBook(len(net.Targets), 0)
			s := newFstate(net, types, opts, book)
			s.attachRun(computeOrder(net, opts), time.Time{}, nil, nil)
			s.initAll()

			base := captureSig(s)

			// (a) assign a random prefix of the variable order, undo, and
			// require the signature back bit for bit.
			mark := s.trailMark()
			assignPrefix(s, rng)
			if s.trailMark() == mark {
				t.Skip("no variable left undecided after init")
			}
			s.undoTo(mark)
			after := captureSig(s)
			if d := base.equal(after); d != "" {
				t.Fatalf("undo did not restore init state: %s", d)
			}

			// (b) fork snapshot round-trip: mutate past the snapshot, adopt
			// it back, and require the snapshotted signature. Adopting the
			// same snapshot twice must also be a fixpoint.
			assignPrefix(s, rng)
			snap := s.forkSnap()
			want := captureSig(s)
			assignPrefix(s, rng)
			s.adoptSnap(snap)
			got := captureSig(s)
			if d := want.equal(got); d != "" {
				t.Fatalf("adoptSnap did not restore forked state: %s", d)
			}
			s.adoptSnap(snap)
			got2 := captureSig(s)
			if d := want.equal(got2); d != "" {
				t.Fatalf("second adoptSnap drifted: %s", d)
			}
		})
	}
}

// assignPrefix pushes a random run of assignments through the walker's own
// nextVar filter, mirroring how expand drives the core.
func assignPrefix(s *fstate, rng *rand.Rand) {
	oi := 0
	for steps := 1 + rng.Intn(3); steps > 0; steps-- {
		ni, x, ok := s.nextVar(oi)
		if !ok {
			return
		}
		oi = ni + 1
		s.assign(x, rng.Intn(2) == 0, 0.5)
	}
}
