package prob

import (
	"math"
	"testing"

	"enframe/internal/event"
	"enframe/internal/network"
)

// approxCase is one hand-computed network: build returns the net, want is
// the exact marginal of its single target.
type approxCase struct {
	name  string
	want  float64
	build func() *network.Net
}

// approxCases are small networks whose exact answers are computed by hand,
// pinning the ε-contract of every strategy against known ground truth
// (independent of the enumeration helpers used elsewhere in this package).
func approxCases() []approxCase {
	return []approxCase{
		{
			// P(x) = 0.3.
			name: "single-var", want: 0.3,
			build: func() *network.Net {
				sp := event.NewSpace()
				x := sp.Add("x", 0.3)
				b := newTestBuilder(sp)
				b.Target("t", b.Var(x))
				return b.Build()
			},
		},
		{
			// P(x ∨ y ∨ z) = 1 − 0.7·0.5·0.4 = 0.86.
			name: "or3", want: 0.86,
			build: func() *network.Net {
				sp := event.NewSpace()
				x, y, z := sp.Add("x", 0.3), sp.Add("y", 0.5), sp.Add("z", 0.6)
				b := newTestBuilder(sp)
				b.Target("t", b.Or(b.Var(x), b.Var(y), b.Var(z)))
				return b.Build()
			},
		},
		{
			// P(x ∧ y) = 0.4·0.5 = 0.2.
			name: "and2", want: 0.2,
			build: func() *network.Net {
				sp := event.NewSpace()
				x, y := sp.Add("x", 0.4), sp.Add("y", 0.5)
				b := newTestBuilder(sp)
				b.Target("t", b.And(b.Var(x), b.Var(y)))
				return b.Build()
			},
		},
		{
			// P(¬x) = 0.7.
			name: "not", want: 0.7,
			build: func() *network.Net {
				sp := event.NewSpace()
				x := sp.Add("x", 0.3)
				b := newTestBuilder(sp)
				b.Target("t", b.Not(b.Var(x)))
				return b.Build()
			},
		},
		{
			// P(x ⊕ y) = 0.3·0.6 + 0.7·0.4 = 0.46.
			name: "xor", want: 0.46,
			build: func() *network.Net {
				sp := event.NewSpace()
				x, y := sp.Add("x", 0.3), sp.Add("y", 0.4)
				b := newTestBuilder(sp)
				vx, vy := b.Var(x), b.Var(y)
				b.Target("t", b.Or(b.And(vx, b.Not(vy)), b.And(b.Not(vx), vy)))
				return b.Build()
			},
		},
		{
			// cnt = Σ CondVal(x,1), CondVal(y,1); target cnt ≥ 2. When both
			// guards are false the sum is the undefined value u, and a
			// comparison involving u holds (§2.1), so the target is true
			// when both variables hold OR neither does:
			// 0.3·0.4 + 0.7·0.6 = 0.54.
			name: "count-threshold-undefined", want: 0.54,
			build: func() *network.Net {
				sp := event.NewSpace()
				x, y := sp.Add("x", 0.3), sp.Add("y", 0.4)
				b := newTestBuilder(sp)
				cnt := b.Sum(b.CondVal(b.Var(x), event.Num(1)), b.CondVal(b.Var(y), event.Num(1)))
				b.Target("t", b.Cmp(event.GE, cnt, b.ConstNum(event.Num(2))))
				return b.Build()
			},
		},
		{
			// Adding a constant 0 summand makes the count defined in every
			// world, so cnt ≥ 1 is exactly x ∨ y = 1 − 0.7·0.6 = 0.58.
			name: "count-threshold-defined", want: 0.58,
			build: func() *network.Net {
				sp := event.NewSpace()
				x, y := sp.Add("x", 0.3), sp.Add("y", 0.4)
				b := newTestBuilder(sp)
				cnt := b.Sum(b.ConstNum(event.Num(0)),
					b.CondVal(b.Var(x), event.Num(1)), b.CondVal(b.Var(y), event.Num(1)))
				b.Target("t", b.Cmp(event.GE, cnt, b.ConstNum(event.Num(1))))
				return b.Build()
			},
		},
	}
}

// TestApproximationGuaranteeTable: for every case × strategy × ε, the
// bounds must contain the hand-computed truth, the gap must respect 2ε,
// and the estimate must be within ε of the truth. Exact mode must pin the
// truth to within 1e-12.
func TestApproximationGuaranteeTable(t *testing.T) {
	epsilons := []float64{0.01, 0.05, 0.2}
	for _, c := range approxCases() {
		t.Run(c.name, func(t *testing.T) {
			net := c.build()

			res, err := Compile(net, Options{Strategy: Exact})
			if err != nil {
				t.Fatalf("exact: %v", err)
			}
			tb := res.Targets[0]
			if tb.Gap() > 1e-12 || math.Abs(tb.Lower-c.want) > 1e-12 {
				t.Fatalf("exact: got [%.15g, %.15g], want %g", tb.Lower, tb.Upper, c.want)
			}

			for _, strat := range []Strategy{Eager, Lazy, Hybrid} {
				for _, eps := range epsilons {
					res, err := Compile(net, Options{Strategy: strat, Epsilon: eps})
					if err != nil {
						t.Fatalf("%v ε=%g: %v", strat, eps, err)
					}
					tb := res.Targets[0]
					if c.want < tb.Lower-1e-12 || c.want > tb.Upper+1e-12 {
						t.Errorf("%v ε=%g: truth %g outside [%g, %g]",
							strat, eps, c.want, tb.Lower, tb.Upper)
					}
					if tb.Gap() > 2*eps+1e-12 {
						t.Errorf("%v ε=%g: gap %g exceeds 2ε", strat, eps, tb.Gap())
					}
					if e := tb.Estimate(); math.Abs(e-c.want) > eps+1e-12 {
						t.Errorf("%v ε=%g: estimate %g off truth %g by more than ε",
							strat, eps, e, c.want)
					}
				}
			}
		})
	}
}

// TestBudgetedStrategiesPrune: with a generous budget the eager strategy
// must actually cut subtrees, while the lazy strategy never consumes an
// error budget (it stops expanding instead).
func TestBudgetedStrategiesPrune(t *testing.T) {
	sp := event.NewSpace()
	b := newTestBuilder(sp)
	var kids []network.NodeID
	for _, p := range []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.45} {
		kids = append(kids, b.Var(sp.Add("v", p)))
	}
	b.Target("t", b.Or(kids...))
	net := b.Build()

	eager, err := Compile(net, Options{Strategy: Eager, Epsilon: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if eager.Stats.BudgetPrunes == 0 {
		t.Error("eager with ε=0.4 never pruned a subtree")
	}
	lazy, err := Compile(net, Options{Strategy: Lazy, Epsilon: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if lazy.Stats.BudgetPrunes != 0 {
		t.Errorf("lazy consumed an error budget: %d prunes", lazy.Stats.BudgetPrunes)
	}
}
