package prob

import (
	"context"
	"errors"
	"fmt"
	"time"

	"enframe/internal/circuit"
	"enframe/internal/event"
	"enframe/internal/network"
)

// ErrIncompleteCircuit is returned when a query needs a complete circuit but
// the trace contained lossy cuts (zero-mass branches or bounds-converged
// subtrees); callers fall back to recompilation.
var ErrIncompleteCircuit = errors.New("prob: circuit is incomplete (pruned subtrees); recompilation required")

// CompileCircuit runs one exact sequential compilation while recording the
// decision tree into a hash-consed arithmetic circuit (internal/circuit),
// and returns the circuit together with the Result obtained by replaying it
// at the space's current probabilities. The replay reproduces the exact
// compiler's floating-point operation sequence, so the returned marginals —
// and the work counters of the traced walk — are bit-identical to
// Options{Strategy: Exact}. Epsilon and worker fan-out do not apply: the
// circuit re-creates exact marginals for any probability assignment, which
// subsumes what the approximation strategies would cache.
func CompileCircuit(ctx context.Context, net *network.Net, opts Options) (*circuit.Circuit, *Result, error) {
	opts = opts.withDefaults()
	if len(net.Targets) == 0 {
		return nil, nil, ErrNoTargets
	}
	types, err := net.Types()
	if err != nil {
		return nil, nil, err
	}
	// The trace is a plain exact sequential walk; the core never consults
	// the Circuit strategy value.
	topts := opts
	topts.Strategy = Exact
	topts.Epsilon = 0
	topts.Workers = 1

	span := opts.Obs.Root().Start("compile")
	defer span.End()
	span.SetStr("strategy", "circuit")
	span.SetInt("targets", int64(len(net.Targets)))
	span.SetInt("nodes", int64(net.NumNodes()))

	tOrder := time.Now()
	orderSpan := span.Start("order")
	order := computeOrder(net, topts)
	orderSpan.SetInt("vars", int64(len(order)))
	orderSpan.End()
	orderDur := time.Since(tOrder)

	run := &runner{
		net:    net,
		types:  types,
		opts:   topts,
		order:  order,
		span:   span,
		bounds: newBoundsBook(len(net.Targets), 0),
	}
	if opts.Timeout > 0 {
		run.deadline = time.Now().Add(opts.Timeout)
	}
	if ctx.Done() != nil {
		finished := make(chan struct{})
		defer close(finished)
		go func() {
			select {
			case <-ctx.Done():
				run.canceled.Store(true)
				run.stop.Store(true)
				run.interrupt()
			case <-finished:
			}
		}()
	}

	start := time.Now()
	tInit := time.Now()
	initSpan := span.Start("init")
	s := run.attach(newCompCore(net, types, topts, run.bounds))
	names := make([]string, len(net.Targets))
	for i, t := range net.Targets {
		names[i] = t.Name
	}
	tw := &traceWalker{
		state: s,
		run:   run,
		b:     circuit.NewBuilder(net.Space.Len(), names),
	}
	// Targets the initial mask pass decides fire with the full unit mass;
	// they become the root node's decisions (replayed with mass 1).
	s.setOnAdd(tw.observe)
	s.initAll()
	initSpan.End()
	st := s.st()
	st.Timings.Init = time.Since(tInit)

	tExplore := time.Now()
	traceSpan := span.Start("trace")
	root := tw.dfs(0, 0, -1, false, 1)
	traceSpan.SetInt("branches", st.Branches)
	traceSpan.End()
	st.Timings.Explore = time.Since(tExplore)
	st.Jobs = 1

	stats := *st
	stats.Duration = time.Since(start)
	stats.NetworkNodes = net.NumNodes()
	stats.Timings.Order = orderDur
	if !topts.LegacyCore {
		stats.MaskWords = int64(bitsetWords(net.NumNodes()))
	}
	stats.BatchTargets = int64(len(net.Targets))

	span.SetInt("branches", stats.Branches)
	span.SetInt("max_depth", stats.MaxDepth)
	if run.canceled.Load() {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("prob: circuit trace: %w", err)
		}
	}
	if root == circuit.None {
		// Only reachable when the stop flag fired before the root expansion.
		return nil, nil, fmt.Errorf("prob: circuit trace aborted before the root expansion")
	}
	c := tw.b.Finish(root, !tw.incomplete)
	span.SetInt("circuit_nodes", int64(c.Nodes()))
	if reg := opts.Obs.Metrics(); reg != nil {
		reg.Counter("prob.branches").Add(stats.Branches)
		reg.Counter("prob.assignments").Add(stats.Assignments)
		reg.Counter("prob.mask_updates").Add(stats.MaskUpdates)
		reg.Counter("prob.jobs").Add(stats.Jobs)
		reg.Counter("prob.mask_words").Add(stats.MaskWords)
		reg.Counter("prob.batch_targets").Add(stats.BatchTargets)
		reg.Gauge("prob.tree.max_depth").SetMax(float64(stats.MaxDepth))
		reg.Gauge("circuit.nodes").Set(float64(c.Nodes()))
	}

	res, err := EvalCircuit(c, SpaceProbs(net.Space))
	if err != nil {
		return nil, nil, err
	}
	res.Stats = stats
	res.TimedOut = run.timedOut.Load()
	return c, res, nil
}

// traceWalker mirrors walker.dfs for the exact sequential strategy while
// building the circuit post-order. Every control decision — the branch
// gate, the settled check, the variable selection, the right-branch cut —
// matches the exact walker line for line, so the traced Stats counters and
// the replayed marginals stay bit-identical to exact compilation.
type traceWalker struct {
	state compCore
	run   *runner
	b     *circuit.Builder
	// events is the scratch stack of target decisions observed since the
	// current node's entry; child frames append and truncate around it.
	events []circuit.Decision
	// incomplete records lossy cuts: a gated branch (zero mass or stop) or
	// a bounds-converged skip while targets were still undecided. Such a
	// circuit replays correctly at the traced probabilities (the cut mass
	// is zero there) but not at other assignments.
	incomplete bool
}

// observe is the compCore onAdd hook: the branch mass is implied by the
// node the decision fires under, so only (target, truth) is recorded.
func (tw *traceWalker) observe(ti int, isTrue bool, _ float64) {
	tw.events = append(tw.events, circuit.NewDecision(ti, isTrue))
}

func (tw *traceWalker) dfs(depth, oi int, x event.VarID, xval bool, p float64) circuit.NodeID {
	s := tw.state
	r := tw.run
	st := s.st()
	st.Branches++
	if int64(depth) > st.MaxDepth {
		st.MaxDepth = int64(depth)
	}
	if st.Branches&1023 == 0 {
		r.checkDeadline()
	}
	if r.stop.Load() || p == 0 {
		// The exact walker leaves this subtree unexplored; its targets (the
		// parent was not settled) never fire, so the circuit cannot answer
		// for it at probability assignments where the mass is nonzero.
		tw.incomplete = true
		return circuit.None
	}
	mark := s.trailMark()
	evMark := len(tw.events)
	if x >= 0 {
		s.assign(x, xval, p)
	} else {
		// Root: adopt the initial mask pass's unit-mass decisions.
		evMark = 0
	}

	v := event.VarID(-1)
	hiID, loID := circuit.None, circuit.None
	if s.allSettled() {
		if s.unmaskedTargets() > 0 {
			// Settled via global bounds convergence with targets still
			// undecided on this branch: their mass never fired here.
			tw.incomplete = true
		}
	} else {
		oi2, y, ok := s.nextVar(oi)
		if ok {
			v = y
			py := r.net.Space.Prob(y)
			hiID = tw.dfs(depth+1, oi2+1, y, true, p*py)
			if !r.stop.Load() && !r.bounds.allTight() {
				loID = tw.dfs(depth+1, oi2+1, y, false, p*(1-py))
			} else if s.unmaskedTargets() > 0 {
				tw.incomplete = true
			}
		}
	}

	id := tw.b.Node(v, hiID, loID, tw.events[evMark:])
	tw.events = tw.events[:evMark]
	if x >= 0 {
		s.undoTo(mark)
	}
	return id
}

// EvalCircuit replays the circuit at the given per-variable marginals and
// returns per-target bounds clamped exactly as CompileCtx clamps its
// bounds book — the last step of the bit-identity contract. The returned
// Result carries no Stats; callers compiling fresh attach the trace stats.
func EvalCircuit(c *circuit.Circuit, probs []float64) (*Result, error) {
	lo, hi, err := c.Eval(probs)
	if err != nil {
		return nil, fmt.Errorf("prob: %w", err)
	}
	res := &Result{Targets: make([]TargetBound, len(lo))}
	for i, name := range c.Targets() {
		l, h := lo[i], hi[i]
		if l < 0 {
			l = 0
		}
		if h > 1 {
			h = 1
		}
		if h < l {
			h = l
		}
		res.Targets[i] = TargetBound{Name: name, Lower: l, Upper: h}
	}
	return res, nil
}

// SpaceProbs snapshots the space's marginals indexed by VarID — the
// probability-vector shape circuit evaluation takes. Mutating the returned
// slice (what-if sweeps, sensitivity pinning) leaves the space untouched.
func SpaceProbs(sp *event.Space) []float64 {
	out := make([]float64, sp.Len())
	for i := range out {
		out[i] = sp.Prob(event.VarID(i))
	}
	return out
}
