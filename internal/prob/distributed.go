package prob

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"enframe/internal/obs"
)

// Distributed compilation (§4.4): the decision tree is split into jobs of
// depth d (Options.JobDepth). A worker explores a fragment from its root;
// whenever it crosses a depth-d boundary it forks a continuation job instead
// of descending. As in the paper, a job ships the mask at job creation (a
// snapshot of the per-node mask array) together with its branch probability
// and error budgets; bounds are merged in the shared boundsBook and residual
// budgets synchronise through a shared pool at job start and end. The queue
// applies backpressure: when enough jobs are pending, workers descend past
// the boundary locally instead of forking, bounding queue memory.

type job struct {
	snap coreSnap
	oi   int
	p    float64
	E    []float64
}

type workQueue struct {
	mu          sync.Mutex
	cond        *sync.Cond
	jobs        []job
	outstanding int
	closed      bool
	maxPending  int
	// stop mirrors the runner's abort flag into the wait loop: without it a
	// cancelled CompileCtx left workers parked on cond.Wait until the queue
	// drained naturally. Nil means no external abort source.
	stop *atomic.Bool
	// depth publishes the pending-job count as prob.queue.depth; nil-safe.
	depth *obs.Gauge
}

func newWorkQueue(maxPending int, stop *atomic.Bool) *workQueue {
	q := &workQueue{maxPending: maxPending, stop: stop}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *workQueue) stopped() bool {
	return q.stop != nil && q.stop.Load()
}

// interrupt wakes every worker blocked in pop after the stop flag flipped.
// The empty critical section orders the flag write before the broadcast, so
// a worker is either not yet waiting (and re-checks the flag before Wait) or
// waiting (and is woken here); either way it drains promptly.
func (q *workQueue) interrupt() {
	q.mu.Lock()
	//lint:ignore SA2001 the lock pairs the stop-flag write with cond.Wait
	q.mu.Unlock()
	q.cond.Broadcast()
}

// hasRoom reports whether forking another job is worthwhile; racy reads are
// fine, this is only backpressure.
func (q *workQueue) hasRoom() bool {
	q.mu.Lock()
	room := len(q.jobs) < q.maxPending
	q.mu.Unlock()
	return room
}

// push enqueues a job.
func (q *workQueue) push(j job) {
	q.mu.Lock()
	q.jobs = append(q.jobs, j)
	q.outstanding++
	q.depth.Set(float64(len(q.jobs)))
	q.mu.Unlock()
	q.cond.Signal()
}

// pop blocks for the next job; ok is false once all work is finished or the
// stop flag aborted the compilation.
func (q *workQueue) pop() (job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.jobs) == 0 && !q.closed && !q.stopped() {
		q.cond.Wait()
	}
	if len(q.jobs) == 0 || q.stopped() {
		return job{}, false
	}
	j := q.jobs[len(q.jobs)-1]
	q.jobs[len(q.jobs)-1] = job{}
	q.jobs = q.jobs[:len(q.jobs)-1]
	q.depth.Set(float64(len(q.jobs)))
	return j, true
}

// done marks one job finished; when no work remains the queue closes and
// all waiting workers drain out.
func (q *workQueue) done() {
	q.mu.Lock()
	q.outstanding--
	if q.outstanding == 0 {
		q.closed = true
		q.mu.Unlock()
		q.cond.Broadcast()
		return
	}
	q.mu.Unlock()
}

// budgetPool redistributes residual error budgets between jobs.
type budgetPool struct {
	mu   sync.Mutex
	pool []float64
}

// deposit returns a job's residual budgets to the pool.
func (b *budgetPool) deposit(E []float64) {
	b.mu.Lock()
	if b.pool == nil {
		b.pool = make([]float64, len(E))
	}
	for i, e := range E {
		if e > 0 {
			b.pool[i] += e
		}
	}
	b.mu.Unlock()
}

// withdraw moves the whole pooled budget into E.
func (b *budgetPool) withdraw(E []float64) {
	b.mu.Lock()
	if b.pool != nil {
		for i := range E {
			E[i] += b.pool[i]
			b.pool[i] = 0
		}
	}
	b.mu.Unlock()
}

func (r *runner) runDistributed() Stats {
	// The pristine state provides the root job's masks; its initial pass
	// records targets decided without any assignment.
	tInit := time.Now()
	initSpan := r.span.Start("init")
	pristine := r.attach(newCompCore(r.net, r.types, r.opts, r.bounds))
	pristine.initAll()
	initSpan.End()
	initDur := time.Since(tInit)

	tExplore := time.Now()
	dspan := r.span.Start("distribute")
	defer dspan.End()

	queue := newWorkQueue(4*r.opts.Workers, &r.stop)
	var forkedC, inlinedC *obs.Counter
	if reg := r.opts.Obs.Metrics(); reg != nil {
		queue.depth = reg.Gauge("prob.queue.depth")
		forkedC = reg.Counter("prob.jobs.forked")
		inlinedC = reg.Counter("prob.jobs.inlined")
	}
	// Publish the queue so the cancellation watcher can wake parked workers,
	// then re-check: the watcher may have fired before the queue existed.
	r.queue.Store(queue)
	if r.stop.Load() {
		queue.interrupt()
	}
	pool := &budgetPool{}
	E0 := make([]float64, len(r.net.Targets))
	if r.opts.Strategy.budgeted() {
		for i := range E0 {
			E0[i] = 2 * r.opts.Epsilon
		}
	}
	queue.push(job{snap: pristine.shareSnap(), oi: 0, p: 1, E: E0})

	type workerReport struct {
		id    int
		stats Stats
		busy  time.Duration
	}
	var wg sync.WaitGroup
	statsCh := make(chan workerReport, r.opts.Workers)
	for wi := 0; wi < r.opts.Workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			wspan := dspan.Start("worker")
			wspan.SetTID(wi + 2)
			wspan.SetInt("id", int64(wi))
			defer wspan.End()
			var busy time.Duration
			s := r.attach(newCompCore(r.net, r.types, r.opts, r.bounds))
			st := s.st()
			w := &walker{state: s, run: r, forkDepth: r.opts.JobDepth}
			w.fork = func(oi int, p float64, E []float64) bool {
				if !queue.hasRoom() {
					inlinedC.Add(1)
					return false
				}
				forkedC.Add(1)
				queue.push(job{snap: s.forkSnap(), oi: oi, p: p,
					E: append([]float64(nil), E...)})
				return true
			}
			for {
				j, ok := queue.pop()
				if !ok {
					break
				}
				st.Jobs++
				t0 := time.Now()
				r.runJob(w, pool, j)
				busy += time.Since(t0)
				queue.done()
			}
			wspan.SetInt("jobs", st.Jobs)
			wspan.SetInt("branches", st.Branches)
			wspan.SetDuration("busy_ms", busy)
			statsCh <- workerReport{id: wi, stats: *st, busy: busy}
		}(wi)
	}
	wg.Wait()
	close(statsCh)
	var total Stats
	total.PerWorker = make([]WorkerStats, r.opts.Workers)
	for rep := range statsCh {
		st := rep.stats
		total.Branches += st.Branches
		total.Assignments += st.Assignments
		total.MaskUpdates += st.MaskUpdates
		total.BudgetPrunes += st.BudgetPrunes
		total.Jobs += st.Jobs
		if st.MaxDepth > total.MaxDepth {
			total.MaxDepth = st.MaxDepth
		}
		total.PerWorker[rep.id] = WorkerStats{Jobs: st.Jobs, Branches: st.Branches, Busy: rep.busy}
	}
	total.MaskUpdates += pristine.st().MaskUpdates
	total.Timings.Init = initDur
	total.Timings.Explore = time.Since(tExplore)
	if reg := r.opts.Obs.Metrics(); reg != nil {
		for wi, ws := range total.PerWorker {
			reg.Gauge(fmt.Sprintf("prob.worker.%d.utilization", wi)).
				Set(ws.Utilization(total.Timings.Explore))
		}
	}
	return total
}

// runJob adopts the job's shipped masks, tops the budget up from the shared
// pool, explores the fragment, and deposits the residual budget.
func (r *runner) runJob(w *walker, pool *budgetPool, j job) {
	s := w.state
	if r.opts.Strategy.budgeted() {
		defer pool.deposit(j.E)
	}
	if r.stop.Load() || r.bounds.allTight() {
		return
	}
	if debugHook != nil {
		debugHook("job p=%g oi=%d unmasked=%d\n", j.p, j.oi, j.snap.snapUnmasked())
	}
	s.adoptSnap(j.snap)
	w.localVars = 0
	if r.opts.Strategy.budgeted() {
		pool.withdraw(j.E)
	}
	w.dfs(0, j.oi, -1, false, j.p, j.E)
}

// runSimulated executes the distributed algorithm on the calling goroutine
// and schedules the measured job durations onto W virtual workers with an
// event-driven list scheduler: a job becomes ready when its forking job
// completes, and runs on the earliest-available worker. The resulting
// makespan lands in Stats.SimulatedMakespan. This mirrors the paper's own
// methodology ("timings reported for hybrid-d were obtained by simulating
// distributed computation on a single machine", §5).
func (r *runner) runSimulated() Stats {
	tInit := time.Now()
	initSpan := r.span.Start("init")
	pristine := r.attach(newCompCore(r.net, r.types, r.opts, r.bounds))
	pristine.initAll()
	initSpan.End()
	initDur := time.Since(tInit)

	tExplore := time.Now()
	dspan := r.span.Start("distribute")
	dspan.SetStr("mode", "simulated")
	defer dspan.End()

	type simJob struct {
		job
		ready time.Duration
	}
	var stack []simJob
	pool := &budgetPool{}
	E0 := make([]float64, len(r.net.Targets))
	if r.opts.Strategy.budgeted() {
		for i := range E0 {
			E0[i] = 2 * r.opts.Epsilon
		}
	}
	stack = append(stack, simJob{
		job: job{snap: pristine.shareSnap(), oi: 0, p: 1, E: E0},
	})

	s := r.attach(newCompCore(r.net, r.types, r.opts, r.bounds))
	st := s.st()
	w := &walker{state: s, run: r, forkDepth: r.opts.JobDepth}
	workers := make([]time.Duration, r.opts.Workers)
	busyPer := make([]time.Duration, r.opts.Workers)
	jobsPer := make([]int64, r.opts.Workers)
	var forked []job
	maxPending := 4 * r.opts.Workers
	var forkedC, inlinedC *obs.Counter
	if reg := r.opts.Obs.Metrics(); reg != nil {
		forkedC = reg.Counter("prob.jobs.forked")
		inlinedC = reg.Counter("prob.jobs.inlined")
	}
	w.fork = func(oi int, p float64, E []float64) bool {
		if len(stack)+len(forked) >= maxPending {
			inlinedC.Add(1)
			return false
		}
		forkedC.Add(1)
		forked = append(forked, job{snap: s.forkSnap(), oi: oi, p: p,
			E: append([]float64(nil), E...)})
		return true
	}

	var makespan time.Duration
	for len(stack) > 0 {
		sj := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st.Jobs++
		forked = forked[:0]
		t0 := time.Now()
		r.runJob(w, pool, sj.job)
		dur := time.Since(t0)
		// Schedule onto the earliest-available worker, not before the
		// forking job finished.
		wi := 0
		for i := 1; i < len(workers); i++ {
			if workers[i] < workers[wi] {
				wi = i
			}
		}
		start := workers[wi]
		if sj.ready > start {
			start = sj.ready
		}
		end := start + dur
		workers[wi] = end
		busyPer[wi] += dur
		jobsPer[wi]++
		if end > makespan {
			makespan = end
		}
		for _, j := range forked {
			stack = append(stack, simJob{job: j, ready: end})
		}
	}
	st.SimulatedMakespan = makespan
	st.MaskUpdates += pristine.st().MaskUpdates
	st.Timings.Init = initDur
	st.Timings.Explore = time.Since(tExplore)
	st.PerWorker = make([]WorkerStats, r.opts.Workers)
	for wi := range st.PerWorker {
		st.PerWorker[wi] = WorkerStats{Jobs: jobsPer[wi], Busy: busyPer[wi]}
	}
	dspan.SetInt("jobs", st.Jobs)
	dspan.SetDuration("virtual_makespan_ms", makespan)
	if reg := r.opts.Obs.Metrics(); reg != nil {
		for wi, ws := range st.PerWorker {
			reg.Gauge(fmt.Sprintf("prob.worker.%d.utilization", wi)).
				Set(ws.Utilization(makespan))
		}
	}
	return *st
}
