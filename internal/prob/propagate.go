package prob

import (
	"sync"
	"sync/atomic"
	"time"

	"enframe/internal/event"
	"enframe/internal/network"
)

// boundsBook holds the shared lower/upper probability bounds of all
// compilation targets. It is safe for concurrent use by distributed workers;
// bounds only tighten, and a target whose gap reaches 2ε is marked tight
// exactly once.
type boundsBook struct {
	mu     sync.Mutex
	lo, hi []float64
	eps2   float64
	tight  []bool
	nLoose atomic.Int64
}

func newBoundsBook(n int, eps2 float64) *boundsBook {
	b := &boundsBook{
		lo:    make([]float64, n),
		hi:    make([]float64, n),
		eps2:  eps2,
		tight: make([]bool, n),
	}
	for i := range b.hi {
		b.hi[i] = 1
	}
	loose := int64(0)
	for i := range b.tight {
		if 1 <= eps2 {
			b.tight[i] = true
		} else {
			loose++
		}
	}
	b.nLoose.Store(loose)
	return b
}

// add records that a target was masked true (mass joins the lower bound) or
// false (mass leaves the upper bound) on a branch of probability p.
func (b *boundsBook) add(ti int, isTrue bool, p float64) {
	b.mu.Lock()
	if debugHook != nil {
		debugHook("bounds.add t%d %t mass=%g\n", ti, isTrue, p)
	}
	if isTrue {
		b.lo[ti] += p
	} else {
		b.hi[ti] -= p
	}
	if !b.tight[ti] && b.hi[ti]-b.lo[ti] <= b.eps2 {
		b.tight[ti] = true
		b.nLoose.Add(-1)
	}
	b.mu.Unlock()
}

// allTight reports whether every target's bounds are within 2ε.
func (b *boundsBook) allTight() bool { return b.nLoose.Load() == 0 }

// settledWith reports whether every target is either branch-masked (per the
// caller's flags) or globally tight.
func (b *boundsBook) settledWith(masked []bool) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, t := range b.tight {
		if !t && !masked[i] {
			return false
		}
	}
	return true
}

// restoreFrom resets the book to a bit-exact copy of src. src must be
// quiescent (session executors restore from a post-init book that is never
// written again); b must have the same target count.
func (b *boundsBook) restoreFrom(src *boundsBook) {
	b.mu.Lock()
	copy(b.lo, src.lo)
	copy(b.hi, src.hi)
	copy(b.tight, src.tight)
	b.eps2 = src.eps2
	loose := int64(0)
	for _, t := range src.tight {
		if !t {
			loose++
		}
	}
	b.nLoose.Store(loose)
	b.mu.Unlock()
}

// snapshot copies the current bounds.
func (b *boundsBook) snapshot() (lo, hi []float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	lo = append([]float64(nil), b.lo...)
	hi = append([]float64(nil), b.hi...)
	return lo, hi
}

// visibleChanged reports whether the externally observable part of a mask
// changed — the part parents derive from. Aggregate counters and sums are
// internal and do not propagate by themselves.
func visibleChanged(a, b *nmask) bool {
	return a.bval != b.bval ||
		a.valKind != b.valKind ||
		a.flags != b.flags ||
		a.lo != b.lo || a.hi != b.hi
}

// commit records the old mask on the trail, installs the new one (already
// written in place by the caller), updates target bookkeeping, and enqueues
// the node for upward propagation when its visible abstract changed.
func (s *state) commit(id network.NodeID, old *nmask) {
	if s.trailedAt[id] != s.level {
		s.trailedAt[id] = s.level
		s.trail = append(s.trail, trailEntry{id: id, m: *old})
	}
	s.stats.MaskUpdates++
	nm := &s.masks[id]
	if !visibleChanged(old, nm) {
		return
	}
	if at := s.targetsAt[id]; at >= 0 && nm.bval != bUnknown && old.bval == bUnknown {
		tis := s.targetLists[at]
		s.nUnmasked -= len(tis)
		for _, ti := range tis {
			s.tMasked[ti] = true
			if s.recording {
				s.bounds.add(ti, nm.bval == bTrue, s.curMass)
				if s.onAdd != nil {
					s.onAdd(ti, nm.bval == bTrue, s.curMass)
				}
			}
		}
	}
	if !s.queued[id] {
		s.queued[id] = true
		s.queuedOld[id] = *old
		s.queue = append(s.queue, id)
	}
}

// assign pushes the valuation x ↦ v with branch mass p into the network and
// propagates masks upward (Algorithm 2).
func (s *state) assign(x event.VarID, v bool, p float64) {
	s.stats.Assignments++
	s.assignTick++
	if s.assignTick&15 == 0 && !s.deadline.IsZero() && time.Now().After(s.deadline) {
		s.timedFlag.Store(true)
		s.stopFlag.Store(true)
	}
	s.curMass = p
	s.level++
	id := s.net.VarNode[x]
	if id == network.NoNode {
		return
	}
	old := s.masks[id]
	s.masks[id].bval = boolMask(v)
	s.commit(id, &old)
	s.propagate()
}

// propagate drains the work queue, updating parents of changed nodes.
func (s *state) propagate() {
	for i := 0; i < len(s.queue); i++ {
		id := s.queue[i]
		s.queued[id] = false
		old := s.queuedOld[id]
		for _, pid := range s.net.Parents[id] {
			s.updateParent(pid, id, &old)
		}
	}
	s.queue = s.queue[:0]
}

// updateParent refreshes one parent's mask after child changed from oldC to
// its current mask. The parent mask is mutated in place; its previous value
// goes to the trail.
func (s *state) updateParent(pid, child network.NodeID, oldC *nmask) {
	nd := &s.net.Nodes[pid]
	pm := &s.masks[pid]
	if nd.Kind.IsBool() {
		if pm.bval != bUnknown {
			return // already decided; the trail restores consistently
		}
	} else if pm.decided() {
		return
	}
	old := *pm
	newC := &s.masks[child]
	switch nd.Kind {
	case network.KNot:
		pm.bval = negMask(newC.bval)
	case network.KAnd:
		if newC.bval == bFalse {
			pm.bval = bFalse
		} else if newC.bval == bTrue && oldC.bval != bTrue {
			pm.c1++
			if int(pm.c1) == len(nd.Kids) {
				pm.bval = bTrue
			}
		}
	case network.KOr:
		if newC.bval == bTrue {
			pm.bval = bTrue
		} else if newC.bval == bFalse && oldC.bval != bFalse {
			pm.c1++
			if int(pm.c1) == len(nd.Kids) {
				pm.bval = bFalse
			}
		}
	case network.KCmp:
		pm.bval = s.deriveCmp(nd, &s.masks[nd.Kids[0]], &s.masks[nd.Kids[1]])
	case network.KCondVal:
		*pm = nmask{}
		s.deriveCondVal(pid, pm, nd, newC.bval)
	case network.KGuard:
		*pm = nmask{}
		s.deriveGuard(pid, pm, s.masks[nd.Kids[0]].bval, nd.Kids[1])
	case network.KSum:
		s.sumAccount(pm, oldC, -1)
		s.sumAccount(pm, newC, +1)
		s.deriveSum(pm, pid)
	case network.KProd, network.KInv, network.KPow, network.KDist:
		if oldC.decided() != newC.decided() {
			pm.c1--
		}
		s.deriveOpaque(pm, pid, nd)
	default:
		return
	}
	if *pm == old {
		return
	}
	s.commit(pid, &old)
}

// undoTo backtracks the trail to a saved mark, restoring masks bit-exactly
// and reopening targets that were masked past the mark.
func (s *state) undoTo(mark int) {
	for i := len(s.trail) - 1; i >= mark; i-- {
		e := &s.trail[i]
		cur := &s.masks[e.id]
		if at := s.targetsAt[e.id]; at >= 0 && cur.bval != bUnknown && e.m.bval == bUnknown {
			tis := s.targetLists[at]
			s.nUnmasked += len(tis)
			for _, ti := range tis {
				s.tMasked[ti] = false
			}
		}
		s.masks[e.id] = e.m
	}
	s.trail = s.trail[:mark]
}

// debugHook, when set by tests, receives tracing output.
var debugHook func(format string, args ...any)
