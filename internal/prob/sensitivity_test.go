package prob

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"enframe/internal/event"
	"enframe/internal/network"
	"enframe/internal/worlds"
)

// TestSensitivityMatchesFiniteDifferences validates the conditional
// decomposition against numeric differentiation of the enumerated
// probability.
func TestSensitivityMatchesFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 10; trial++ {
		net := randomNet(rng, 4+rng.Intn(4), 1)
		infl, err := Sensitivity(net, Options{Strategy: Exact}, net.Targets[0].Name)
		if err != nil {
			t.Fatal(err)
		}
		probAt := func(x event.VarID, p float64) float64 {
			orig := net.Space.Prob(x)
			net.Space.SetProb(x, p)
			defer net.Space.SetProb(x, orig)
			total := 0.0
			worlds.Enumerate(net.Space, func(nu event.SliceValuation, mass float64) bool {
				if net.Eval(nu).Bools[net.Targets[0].Node] {
					total += mass
				}
				return true
			})
			return total
		}
		for _, vi := range infl {
			p := net.Space.Prob(vi.Var)
			h := 0.01
			if p < h || p > 1-h {
				continue
			}
			fd := (probAt(vi.Var, p+h) - probAt(vi.Var, p-h)) / (2 * h)
			if math.Abs(fd-vi.Derivative) > 1e-6 {
				t.Fatalf("trial %d var %s: derivative %g vs finite difference %g",
					trial, vi.Name, vi.Derivative, fd)
			}
			// Consistency: Pr = p·Pr|x + (1−p)·Pr|¬x.
			want := probAt(vi.Var, p)
			got := p*vi.CondTrue + (1-p)*vi.CondFalse
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d var %s: decomposition %g vs %g", trial, vi.Name, got, want)
			}
		}
	}
}

func TestSensitivityUnknownTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	net := randomNet(rng, 4, 1)
	if _, err := Sensitivity(net, Options{Strategy: Exact}, "nope"); err == nil {
		t.Error("unknown target must fail")
	}
}

func TestExplainRendersTopInfluences(t *testing.T) {
	sp := event.NewSpace()
	x := sp.Add("crucial", 0.5)
	y := sp.Add("irrelevantish", 0.5)
	b := newTestBuilder(sp)
	// target = x ∨ (x ∧ y): y matters only a little.
	tgt := b.Or(b.Var(x), b.And(b.Var(x), b.Var(y)))
	b.Target("t", tgt)
	net := b.Build()
	s, err := Explain(net, Options{Strategy: Exact}, "t", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "crucial") {
		t.Errorf("explanation %q should lead with the crucial variable", s)
	}
}

func newTestBuilder(sp *event.Space) *network.Builder {
	return network.NewBuilder(sp, nil)
}
