// Package prob implements ENFrame's probability-computation algorithms
// (paper §4): bulk compilation of all events of an event network into one
// decision tree via Shannon expansion, incremental mask propagation
// (Algorithms 1 and 2), anytime absolute ε-approximation with the eager,
// lazy, and hybrid budget strategies (§4.3), and distributed exploration of
// disjoint decision-tree fragments by a pool of workers (§4.4).
package prob

import (
	"fmt"
	"time"

	"enframe/internal/event"
	"enframe/internal/obs"
)

// Strategy selects between exact compilation and the three approximation
// schemes of §4.3.
type Strategy uint8

const (
	// Exact compiles until every target's probability bounds meet.
	Exact Strategy = iota
	// Eager spends the whole error budget as soon as possible, pruning
	// the leftmost subtrees of the decision tree.
	Eager
	// Lazy follows exact computation and stops as soon as every target's
	// bounds are within 2ε, effectively spending the budget on the
	// rightmost branches.
	Lazy
	// Hybrid halves the budget at every split and carries residual budget
	// from the left branch into the right branch.
	Hybrid
	// Circuit traces one exact sequential compilation into a reusable
	// arithmetic circuit (internal/circuit) and answers from a replay
	// evaluation of it — the compile-once/evaluate-many backend. Marginals
	// are bit-identical to Exact; Epsilon and Workers are ignored.
	Circuit
)

func (s Strategy) String() string {
	switch s {
	case Exact:
		return "exact"
	case Eager:
		return "eager"
	case Lazy:
		return "lazy"
	case Hybrid:
		return "hybrid"
	case Circuit:
		return "circuit"
	}
	return fmt.Sprintf("Strategy(%d)", uint8(s))
}

// OrderHeuristic selects the variable order of the Shannon expansion.
type OrderHeuristic uint8

const (
	// FanoutOrder orders variables by decreasing influence — the number
	// of network nodes they (transitively) feed into — approximating the
	// paper's "influences as many events as possible" rule.
	FanoutOrder OrderHeuristic = iota
	// InputOrder keeps the declaration order of the variable space; used
	// by the variable-order ablation.
	InputOrder
)

// Options configures a compilation.
type Options struct {
	// Strategy defaults to Exact.
	Strategy Strategy
	// Epsilon is the absolute approximation error; each target ti gets an
	// error budget of 2ε and the computed bounds satisfy Ui − Li ≤ 2ε.
	// Ignored for Exact.
	Epsilon float64
	// Workers > 1 enables distributed compilation with that many
	// concurrent workers.
	Workers int
	// JobDepth is the size d of a distributed job: the depth of the
	// decision-tree fragment a worker explores before forking
	// continuations. Zero defaults to 3 (the paper's best setting).
	JobDepth int
	// SimulateWorkers runs the distributed algorithm on one OS thread and
	// reports the virtual makespan of a W-worker cluster in
	// Stats.SimulatedMakespan: jobs execute one at a time with measured
	// durations and are placed on virtual workers by an event-driven list
	// scheduler that respects fork precedence. The paper's hybrid-d
	// timings were likewise "obtained by simulating distributed
	// computation on a single machine" (§5); this container has a single
	// CPU, so simulation is also how Fig. 9 is regenerated here.
	SimulateWorkers bool
	// Order overrides the variable order. Variables absent from the
	// order are never branched on (only safe when they do not occur in
	// the network).
	Order []event.VarID
	// Heuristic selects the automatic order when Order is nil.
	Heuristic OrderHeuristic
	// DynamicSkip skips variables all of whose direct uses are already
	// masked (their value cannot influence any event). Enabled by
	// default via Compile; set SkipDisabled to turn it off.
	SkipDisabled bool
	// Slack is the safety margin for deciding comparisons from interval
	// bounds: a comparison is decided early only when the intervals are
	// separated by more than Slack, which keeps incremental floating-
	// point bookkeeping from ever deciding a near-tie wrongly. Exact
	// values at decision-tree leaves are recomputed freshly, so ties are
	// always resolved exactly. Zero defaults to 1e-9.
	Slack float64
	// Timeout aborts compilation, returning the bounds reached so far
	// with Result.TimedOut set. Zero means no timeout.
	Timeout time.Duration
	// LegacyCore selects the original pointer-DAG mask walker (one 56-byte
	// nmask per node) instead of the default bit-parallel flat core. Both
	// cores produce bit-identical marginals and Stats counters; the legacy
	// core is retained as the differential oracle for the equivalence suite
	// in internal/difftest, mirroring the LegacyFrontEnd pattern.
	LegacyCore bool
	// Obs, when non-nil, receives spans for every compilation stage
	// (order → init → explore/distribute, plus one span per distributed
	// worker), work counters in its metrics registry, and — for budgeted
	// strategies — a bounded "budget.spend" timeline of per-target error
	// budget consumption. A nil Trace disables all of it at the cost of a
	// nil check (no allocation; see internal/obs).
	Obs *obs.Trace
}

func (o Options) withDefaults() Options {
	if o.JobDepth <= 0 {
		o.JobDepth = 3
	}
	if o.Slack == 0 {
		o.Slack = 1e-9
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	return o
}

// budgeted reports whether the strategy prunes subtrees against an error
// budget (the blue lines of Algorithm 1).
func (s Strategy) budgeted() bool { return s == Eager || s == Hybrid }

// TargetBound is the computed probability interval of one compilation
// target.
type TargetBound struct {
	Name         string
	Lower, Upper float64
}

// Estimate returns the midpoint of the bounds, the canonical
// ε-approximation pˆ with L ≤ pˆ ≤ U.
func (t TargetBound) Estimate() float64 {
	m := (t.Lower + t.Upper) / 2
	if m < 0 {
		return 0
	}
	if m > 1 {
		return 1
	}
	return m
}

// Gap returns U − L.
func (t TargetBound) Gap() float64 { return t.Upper - t.Lower }

// Stats reports work counters of a compilation.
type Stats struct {
	// Branches is the number of decision-tree nodes visited.
	Branches int64
	// Assignments is the number of variable assignments propagated.
	Assignments int64
	// MaskUpdates counts node-mask changes (including initial masking).
	MaskUpdates int64
	// BudgetPrunes counts subtrees cut by the error budget.
	BudgetPrunes int64
	// MaskWords is the number of uint64 words per truth-value bit plane of
	// the flat core (zero under Options.LegacyCore): ⌈nodes/64⌉, the unit of
	// word-wide snapshot/restore work at distributed fork markers.
	MaskWords int64
	// BatchTargets is the number of compilation targets batched through the
	// single shared expansion pass.
	BatchTargets int64
	// MaxDepth is the deepest decision-tree node visited (0 when only the
	// root was needed).
	MaxDepth int64
	// Jobs counts distributed jobs (1 for sequential runs).
	Jobs int64
	// SimulatedMakespan is the virtual wall-clock of a simulated
	// W-worker run (zero unless Options.SimulateWorkers was set).
	SimulatedMakespan time.Duration
	// NetworkNodes is the size of the compiled event network.
	NetworkNodes int
	// Duration is the wall-clock compilation time.
	Duration time.Duration
	// Timings breaks Duration into compilation stages.
	Timings StageTimings
	// PerWorker holds per-worker utilisation of a distributed run, indexed
	// by worker id (nil for sequential runs). For simulated runs, Busy is
	// virtual busy time on the simulated cluster and Branches is zero (a
	// single real state explores every virtual job).
	PerWorker []WorkerStats
}

// StageTimings is the wall-clock breakdown of one compilation.
type StageTimings struct {
	// Order is the variable-order computation (§4.2 heuristic).
	Order time.Duration
	// Init is the initial bottom-up mask pass over the network.
	Init time.Duration
	// Explore is the decision-tree exploration (including distribution).
	Explore time.Duration
}

// WorkerStats summarises one worker of a distributed compilation.
type WorkerStats struct {
	// Jobs and Branches count the work the worker performed.
	Jobs     int64
	Branches int64
	// Busy is the time spent executing jobs (as opposed to waiting on the
	// queue); for simulated workers it is virtual time.
	Busy time.Duration
}

// Utilization returns Busy as a fraction of the given makespan.
func (w WorkerStats) Utilization(makespan time.Duration) float64 {
	if makespan <= 0 {
		return 0
	}
	return float64(w.Busy) / float64(makespan)
}

// Result is the outcome of a compilation.
type Result struct {
	Targets  []TargetBound
	Stats    Stats
	TimedOut bool
}

// Target returns the bound for the named target.
func (r *Result) Target(name string) (TargetBound, bool) {
	for _, t := range r.Targets {
		if t.Name == name {
			return t, true
		}
	}
	return TargetBound{}, false
}

// MaxGap returns the widest bound interval across targets.
func (r *Result) MaxGap() float64 {
	var g float64
	for _, t := range r.Targets {
		if t.Gap() > g {
			g = t.Gap()
		}
	}
	return g
}
