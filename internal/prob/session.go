package prob

import (
	"context"
	"fmt"
	"sync"
	"time"

	"enframe/internal/event"
	"enframe/internal/network"
)

// Session pins one event network plus fixed compilation options for repeated
// job execution — the worker side of the executor-driven distributed plane.
// Construction runs the variable order and the initial bottom-up mask pass
// once; every job then resets from that pristine snapshot, replays its
// assignment path without recording (the forking job already credited
// targets masked within the prefix), and explores its fragment with an
// always-fork policy at depth-d boundaries.
//
// Jobs execute against a session-local boundsBook cloned from the post-init
// book rather than a globally shared one. That makes each job's result a
// pure function of the job itself: re-executing after a worker loss
// reproduces the identical item stream, so duplicate completions merge
// idempotently, and exact-strategy runs stay bit-reproducible. The local
// book still drives the termination checks; for exact compilation its
// all-tight cut only ever skips zero-mass subtrees, so the add stream is
// unaffected (see coordinator.go for the merge argument).
type Session struct {
	net   *network.Net
	types []network.ValueType
	opts  Options
	order []event.VarID
	eps2  float64

	pristine     compCore
	pristineBook *boundsBook

	pool sync.Pool // *sessWorker
}

// sessWorker is one reusable per-job execution state with its private book.
type sessWorker struct {
	s    compCore
	book *boundsBook
}

// NewSession prepares a network for job execution. opts fixes strategy, ε,
// job depth, heuristic/order, slack, and the per-job timeout for every job
// of the session; Workers is ignored (parallelism is the executor's
// concern). Safe for concurrent ExecJob calls afterwards.
func NewSession(net *network.Net, opts Options) (*Session, error) {
	opts = opts.withDefaults()
	if len(net.Targets) == 0 {
		return nil, ErrNoTargets
	}
	types, err := net.Types()
	if err != nil {
		return nil, err
	}
	eps2 := 0.0
	if opts.Strategy != Exact {
		eps2 = 2 * opts.Epsilon
	}
	order := computeOrder(net, opts)
	book := newBoundsBook(len(net.Targets), eps2)
	pr := newCompCore(net, types, opts, book)
	pr.attachRun(order, time.Time{}, nil, nil)
	pr.initAll()
	return &Session{
		net: net, types: types, opts: opts, order: order, eps2: eps2,
		pristine: pr, pristineBook: book,
	}, nil
}

// Targets returns the number of compilation targets (the length job budget
// and residual vectors must have).
func (ss *Session) Targets() int { return len(ss.net.Targets) }

// ExecJob executes one job and returns its ordered result stream. It is
// deterministic given the job (see Session) and safe for concurrent use.
// Cancelling ctx aborts at branch granularity and returns ctx's error; a
// job or session timeout instead returns the partial result with TimedOut.
func (ss *Session) ExecJob(ctx context.Context, j *WireJob) (*WireResult, error) {
	t0 := time.Now()
	wkr, _ := ss.pool.Get().(*sessWorker)
	if wkr == nil {
		book := newBoundsBook(len(ss.net.Targets), ss.eps2)
		wkr = &sessWorker{book: book, s: newCompCore(ss.net, ss.types, ss.opts, book)}
	}
	defer ss.pool.Put(wkr)

	r := &runner{net: ss.net, types: ss.types, opts: ss.opts, order: ss.order, bounds: wkr.book}
	if ss.opts.Timeout > 0 {
		r.deadline = t0.Add(ss.opts.Timeout)
	}
	if j.Timeout > 0 {
		if d := t0.Add(j.Timeout); r.deadline.IsZero() || d.Before(r.deadline) {
			r.deadline = d
		}
	}
	s := r.attach(wkr.s)
	wkr.book.restoreFrom(ss.pristineBook)
	s.snapshotFrom(ss.pristine)

	if ctx.Done() != nil {
		finished := make(chan struct{})
		defer close(finished)
		go func() {
			select {
			case <-ctx.Done():
				r.canceled.Store(true)
				r.stop.Store(true)
			case <-finished:
			}
		}()
	}

	// Replay the assignment prefix with recording off: propagation is
	// deterministic, so the masks end up bit-identical to the forking
	// worker's state at the fork point.
	s.setRecording(false)
	for _, a := range j.Path {
		s.assign(a.Var, a.Val, j.P)
		if r.stop.Load() {
			break
		}
	}
	s.clearTrail()
	s.setRecording(true)

	res := &WireResult{ID: j.ID}
	s.setOnAdd(func(ti int, isTrue bool, mass float64) {
		res.Items = append(res.Items, WireItem{Kind: ItemAdd, Target: int32(ti), IsTrue: isTrue, Mass: mass})
	})
	defer s.setOnAdd(nil)
	w := &walker{state: s, run: r, forkDepth: ss.opts.JobDepth, trackPath: true}
	w.fork = func(oi int, p float64, E []float64) bool {
		fp := make([]Assign, 0, len(j.Path)+len(w.path))
		fp = append(append(fp, j.Path...), w.path...)
		res.Items = append(res.Items, WireItem{Kind: ItemFork, Fork: int32(len(res.Forks))})
		res.Forks = append(res.Forks, WireFork{
			Path: fp, OI: oi, P: p, E: append([]float64(nil), E...),
		})
		return true
	}

	E := make([]float64, len(ss.net.Targets))
	copy(E, j.E)
	st := s.st()
	base := *st
	st.MaxDepth = 0
	if !r.stop.Load() {
		w.dfs(0, j.OI, -1, false, j.P, E)
	}
	if r.canceled.Load() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("prob: job %d: %w", j.ID, err)
		}
	}
	res.Residual = E
	res.TimedOut = r.timedOut.Load()
	res.Stats = JobStats{
		Branches:     st.Branches - base.Branches,
		Assignments:  st.Assignments - base.Assignments,
		MaskUpdates:  st.MaskUpdates - base.MaskUpdates,
		BudgetPrunes: st.BudgetPrunes - base.BudgetPrunes,
		MaxDepth:     st.MaxDepth,
		DurNanos:     time.Since(t0).Nanoseconds(),
	}
	return res, nil
}
