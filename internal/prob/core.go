package prob

import (
	"sync/atomic"
	"time"

	"enframe/internal/event"
	"enframe/internal/network"
	"enframe/internal/vec"
)

// compCore abstracts one worker's compilation state so the Shannon-expansion
// walker and every distributed driver (in-process queue, simulated cluster,
// session/executor job replay) run unchanged over both implementations:
//
//   - the legacy pointer-DAG state of mask.go, one 56-byte nmask per node
//     (Options.LegacyCore, kept as the differential oracle), and
//   - the packed flat core of flat.go, truth values in two uint64 bit planes
//     over the network's structure-of-arrays layout.
//
// Both cores perform the identical sequence of floating-point operations in
// the identical order, so marginals — and the Stats counters — are
// bit-identical between them; the equivalence suite in internal/difftest
// enforces this over generated programs.
type compCore interface {
	// attachRun wires the variable order and the runner's abort machinery
	// into the state. deadline/stop/timed may be zero/nil outside runners.
	attachRun(order []event.VarID, deadline time.Time, stop, timed *atomic.Bool)
	// initAll runs the initial bottom-up mask pass; targets decided by it
	// are recorded with the full unit mass.
	initAll()
	// assign pushes x ↦ v with branch mass p and propagates (Algorithm 2).
	assign(x event.VarID, v bool, p float64)
	// trailMark/undoTo bracket one branch: undoTo restores masks bit-exactly
	// to the state at the matching trailMark.
	trailMark() int
	undoTo(mark int)
	// clearTrail drops the trail without undoing (job adoption/replay).
	clearTrail()
	// nextVar returns the next influential unassigned variable at or after
	// order position oi.
	nextVar(oi int) (int, event.VarID, bool)
	// allSettled reports the termination condition of Algorithm 1.
	allSettled() bool
	// unmaskedTargets counts targets not yet decided on the current branch;
	// the circuit tracer uses it to detect lossy cuts (a subtree skipped
	// while targets were still undecided cannot replay at other
	// probability assignments).
	unmaskedTargets() int
	// st exposes the state's work counters.
	st() *Stats
	// setRecording gates target-bound accumulation (off during job replay).
	setRecording(bool)
	// setOnAdd installs the bound-contribution observer (session executors).
	setOnAdd(func(ti int, isTrue bool, p float64))
	// snapshotFrom resets to a pristine post-init state of the same type.
	snapshotFrom(pristine compCore)
	// forkSnap deep-copies the current masks as a shippable job snapshot;
	// shareSnap hands out the live arrays (only safe for a pristine state
	// that is never touched again, i.e. the root job).
	forkSnap() coreSnap
	shareSnap() coreSnap
	// adoptSnap installs a snapshot, replacing the current masks.
	adoptSnap(coreSnap)
}

// coreSnap is an opaque mask snapshot shipped inside an in-process job;
// each core adopts only its own snapshot type.
type coreSnap interface{ snapUnmasked() int }

// newCompCore builds the state implementation selected by opts.
func newCompCore(net *network.Net, types []network.ValueType, opts Options, bounds *boundsBook) compCore {
	if opts.LegacyCore {
		return newState(net, types, opts, bounds)
	}
	return newFstate(net, types, opts, bounds)
}

// stateSnap is the legacy core's job snapshot: the full per-node nmask
// array plus target bookkeeping.
type stateSnap struct {
	masks     []nmask
	vecVals   []vec.Vec
	tMasked   []bool
	nUnmasked int
}

func (sn *stateSnap) snapUnmasked() int { return sn.nUnmasked }

func (s *state) attachRun(order []event.VarID, deadline time.Time, stop, timed *atomic.Bool) {
	s.order = order
	s.deadline = deadline
	s.stopFlag = stop
	s.timedFlag = timed
}

func (s *state) trailMark() int                                   { return len(s.trail) }
func (s *state) clearTrail()                                      { s.trail = s.trail[:0] }
func (s *state) st() *Stats                                       { return &s.stats }
func (s *state) unmaskedTargets() int                             { return s.nUnmasked }
func (s *state) setRecording(on bool)                             { s.recording = on }
func (s *state) setOnAdd(fn func(ti int, isTrue bool, p float64)) { s.onAdd = fn }

func (s *state) forkSnap() coreSnap {
	sn := &stateSnap{
		masks:     append([]nmask(nil), s.masks...),
		tMasked:   append([]bool(nil), s.tMasked...),
		nUnmasked: s.nUnmasked,
	}
	if s.vecVals != nil {
		sn.vecVals = append([]vec.Vec(nil), s.vecVals...)
	}
	return sn
}

func (s *state) shareSnap() coreSnap {
	return &stateSnap{
		masks:     s.masks,
		vecVals:   s.vecVals,
		tMasked:   s.tMasked,
		nUnmasked: s.nUnmasked,
	}
}

func (s *state) adoptSnap(c coreSnap) {
	sn := c.(*stateSnap)
	s.masks = sn.masks
	s.tMasked = sn.tMasked
	if sn.vecVals != nil {
		s.vecVals = sn.vecVals
	}
	s.nUnmasked = sn.nUnmasked
	s.trail = s.trail[:0]
}
