package prob

import (
	"context"
	"fmt"
	"sort"

	"enframe/internal/circuit"
	"enframe/internal/event"
	"enframe/internal/network"
)

// VarInfluence reports how one input random variable influences a target
// event: the target's probability conditioned on the variable being true
// and false, and the derivative of the target probability with respect to
// the variable's marginal. Since the variables are independent,
// Pr[Φ] = Px·Pr[Φ | x] + (1−Px)·Pr[Φ | ¬x], so the derivative is the
// difference of the conditionals.
type VarInfluence struct {
	Var        event.VarID
	Name       string
	CondTrue   float64 // Pr[target | x]
	CondFalse  float64 // Pr[target | ¬x]
	Derivative float64 // ∂Pr[target]/∂Px = CondTrue − CondFalse
}

// Sensitivity performs the sensitivity analysis the event representation
// enables (§1): for every variable occurring in the network it computes the
// named target's conditional probabilities and derivative, sorted by
// decreasing |derivative|. It compiles the network twice per variable with
// the variable's marginal pinned to 1 and 0; the space's probabilities are
// restored before returning. Not safe for concurrent use of the same
// variable space.
func Sensitivity(net *network.Net, opts Options, targetName string) ([]VarInfluence, error) {
	ti := -1
	for i, t := range net.Targets {
		if t.Name == targetName {
			ti = i
			break
		}
	}
	if ti < 0 {
		return nil, fmt.Errorf("prob: no target named %q", targetName)
	}
	if opts.Strategy == Circuit {
		// Compile once, then answer every conditional by replaying the
		// circuit with the variable's marginal pinned — two evaluations per
		// variable instead of two compilations. A pruned (incomplete) trace
		// cannot replay at pinned probabilities; fall back to recompiling.
		c, _, err := CompileCircuit(context.Background(), net, opts)
		if err != nil {
			return nil, err
		}
		if c.Complete() {
			return SensitivityCircuit(c, net, targetName)
		}
		opts.Strategy = Exact
	}
	var out []VarInfluence
	for x, id := range net.VarNode {
		if id == network.NoNode {
			continue
		}
		xv := event.VarID(x)
		orig := net.Space.Prob(xv)
		cond := func(p float64) (float64, error) {
			net.Space.SetProb(xv, p)
			res, err := Compile(net, opts)
			if err != nil {
				return 0, err
			}
			return res.Targets[ti].Estimate(), nil
		}
		condTrue, err := cond(1)
		if err != nil {
			net.Space.SetProb(xv, orig)
			return nil, err
		}
		condFalse, err := cond(0)
		net.Space.SetProb(xv, orig)
		if err != nil {
			return nil, err
		}
		out = append(out, VarInfluence{
			Var:        xv,
			Name:       net.Space.Name(xv),
			CondTrue:   condTrue,
			CondFalse:  condFalse,
			Derivative: condTrue - condFalse,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := abs(out[i].Derivative), abs(out[j].Derivative)
		if di != dj {
			return di > dj
		}
		return out[i].Var < out[j].Var
	})
	return out, nil
}

// SensitivityCircuit is Sensitivity answered from an already-compiled
// complete circuit: each conditional probability is one replay evaluation
// with the variable's marginal pinned to 1 or 0, so the whole analysis
// costs 2·|vars| evaluations and zero recompilations. The net must be the
// network the circuit was traced from; its space is only read, never
// mutated, making this safe to run concurrently over a shared artifact.
func SensitivityCircuit(c *circuit.Circuit, net *network.Net, targetName string) ([]VarInfluence, error) {
	ti := -1
	for i, name := range c.Targets() {
		if name == targetName {
			ti = i
			break
		}
	}
	if ti < 0 {
		return nil, fmt.Errorf("prob: no target named %q", targetName)
	}
	if !c.Complete() {
		return nil, ErrIncompleteCircuit
	}
	probs := SpaceProbs(net.Space)
	lo := make([]float64, len(c.Targets()))
	hi := make([]float64, len(c.Targets()))
	cond := func(xv event.VarID, p float64) (float64, error) {
		orig := probs[xv]
		probs[xv] = p
		err := c.EvalInto(probs, lo, hi)
		probs[xv] = orig
		if err != nil {
			return 0, fmt.Errorf("prob: %w", err)
		}
		l, h := lo[ti], hi[ti]
		if l < 0 {
			l = 0
		}
		if h > 1 {
			h = 1
		}
		if h < l {
			h = l
		}
		return TargetBound{Lower: l, Upper: h}.Estimate(), nil
	}
	var out []VarInfluence
	for x, id := range net.VarNode {
		if id == network.NoNode {
			continue
		}
		xv := event.VarID(x)
		condTrue, err := cond(xv, 1)
		if err != nil {
			return nil, err
		}
		condFalse, err := cond(xv, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, VarInfluence{
			Var:        xv,
			Name:       net.Space.Name(xv),
			CondTrue:   condTrue,
			CondFalse:  condFalse,
			Derivative: condTrue - condFalse,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := abs(out[i].Derivative), abs(out[j].Derivative)
		if di != dj {
			return di > dj
		}
		return out[i].Var < out[j].Var
	})
	return out, nil
}

// Explain renders the most influential variables of a target — the
// "explanation of the program result" use of events (§1).
func Explain(net *network.Net, opts Options, targetName string, top int) (string, error) {
	infl, err := Sensitivity(net, opts, targetName)
	if err != nil {
		return "", err
	}
	if top > 0 && top < len(infl) {
		infl = infl[:top]
	}
	s := fmt.Sprintf("influence on Pr[%s]:\n", targetName)
	for _, vi := range infl {
		s += fmt.Sprintf("  %-12s ∂Pr/∂p = %+.4f   (Pr|x = %.4f, Pr|¬x = %.4f)\n",
			vi.Name, vi.Derivative, vi.CondTrue, vi.CondFalse)
	}
	return s, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
