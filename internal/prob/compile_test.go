package prob

import (
	"fmt"
	"math/rand"
	"testing"

	"enframe/internal/event"
	"enframe/internal/network"
	"enframe/internal/worlds"
)

// randomNet builds a random event network over nVars variables with
// nTargets Boolean targets mixing propositional structure, conditional
// values, sums, and comparisons — the node mix of clustering programs.
func randomNet(rng *rand.Rand, nVars, nTargets int) *network.Net {
	sp := event.NewSpace()
	for i := 0; i < nVars; i++ {
		sp.Add(fmt.Sprintf("x%d", i), 0.2+0.6*rng.Float64())
	}
	b := network.NewBuilder(sp, nil)
	vars := make([]network.NodeID, nVars)
	for i := range vars {
		vars[i] = b.Var(event.VarID(i))
	}
	var randBool func(d int) network.NodeID
	var randNum func(d int) network.NodeID
	randBool = func(d int) network.NodeID {
		if d == 0 {
			return vars[rng.Intn(nVars)]
		}
		switch rng.Intn(6) {
		case 0:
			return b.Not(randBool(d - 1))
		case 1:
			return b.And(randBool(d-1), randBool(d-1))
		case 2:
			return b.Or(randBool(d-1), randBool(d-1))
		case 3:
			ops := []event.CmpOp{event.LE, event.LT, event.GE, event.GT, event.EQ}
			return b.Cmp(ops[rng.Intn(len(ops))], randNum(d-1), randNum(d-1))
		default:
			return vars[rng.Intn(nVars)]
		}
	}
	randNum = func(d int) network.NodeID {
		if d == 0 {
			return b.CondVal(randBool(0), event.Num(float64(rng.Intn(7)-3)))
		}
		switch rng.Intn(4) {
		case 0:
			return b.Sum(randNum(d-1), randNum(d-1), randNum(d-1))
		case 1:
			return b.Guard(randBool(d-1), randNum(d-1))
		case 2:
			return b.CondVal(randBool(d-1), event.Num(float64(rng.Intn(7)-3)))
		default:
			return b.ConstNum(event.Num(float64(rng.Intn(5))))
		}
	}
	for t := 0; t < nTargets; t++ {
		b.Target(fmt.Sprintf("t%d", t), randBool(3))
	}
	return b.Build()
}

// exactByEnumeration computes target probabilities by full world
// enumeration using the independent network evaluator.
func exactByEnumeration(net *network.Net) []float64 {
	probs := make([]float64, len(net.Targets))
	worlds.Enumerate(net.Space, func(nu event.SliceValuation, p float64) bool {
		a := net.Eval(nu)
		for i, t := range net.Targets {
			if a.Bools[t.Node] {
				probs[i] += p
			}
		}
		return true
	})
	return probs
}

func TestCompileExactMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		net := randomNet(rng, 3+rng.Intn(8), 1+rng.Intn(4))
		want := exactByEnumeration(net)
		res, err := Compile(net, Options{Strategy: Exact})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, tb := range res.Targets {
			if tb.Gap() > 1e-9 {
				t.Fatalf("trial %d target %s: exact bounds did not converge: [%g, %g]",
					trial, tb.Name, tb.Lower, tb.Upper)
			}
			if !almost(tb.Lower, want[i], 1e-9) {
				t.Fatalf("trial %d target %s: got %g, want %g",
					trial, tb.Name, tb.Lower, want[i])
			}
		}
	}
}

func TestCompileRefMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 40; trial++ {
		net := randomNet(rng, 3+rng.Intn(7), 1+rng.Intn(3))
		want := exactByEnumeration(net)
		res, err := CompileRef(net, Options{Strategy: Exact})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, tb := range res.Targets {
			if tb.Gap() > 1e-9 || !almost(tb.Lower, want[i], 1e-9) {
				t.Fatalf("trial %d target %s: got [%g, %g], want %g",
					trial, tb.Name, tb.Lower, tb.Upper, want[i])
			}
		}
	}
}

func TestApproximationBoundsContainTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	const eps = 0.1
	for trial := 0; trial < 40; trial++ {
		net := randomNet(rng, 4+rng.Intn(8), 1+rng.Intn(4))
		want := exactByEnumeration(net)
		for _, strat := range []Strategy{Eager, Lazy, Hybrid} {
			res, err := Compile(net, Options{Strategy: strat, Epsilon: eps})
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, strat, err)
			}
			for i, tb := range res.Targets {
				if want[i] < tb.Lower-1e-9 || want[i] > tb.Upper+1e-9 {
					t.Fatalf("trial %d %v target %s: truth %g outside [%g, %g]",
						trial, strat, tb.Name, want[i], tb.Lower, tb.Upper)
				}
				if tb.Gap() > 2*eps+1e-9 {
					t.Fatalf("trial %d %v target %s: gap %g exceeds 2ε",
						trial, strat, tb.Name, tb.Gap())
				}
				if e := tb.Estimate(); e < want[i]-eps-1e-9 || e > want[i]+eps+1e-9 {
					t.Fatalf("trial %d %v target %s: estimate %g not within ε of %g",
						trial, strat, tb.Name, e, want[i])
				}
			}
		}
	}
}

func TestDistributedMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 30; trial++ {
		net := randomNet(rng, 5+rng.Intn(8), 1+rng.Intn(4))
		want := exactByEnumeration(net)
		for _, d := range []int{1, 2, 3, 5} {
			res, err := Compile(net, Options{Strategy: Exact, Workers: 4, JobDepth: d})
			if err != nil {
				t.Fatalf("trial %d d=%d: %v", trial, d, err)
			}
			for i, tb := range res.Targets {
				if tb.Gap() > 1e-9 || !almost(tb.Lower, want[i], 1e-9) {
					t.Fatalf("trial %d d=%d target %s: got [%g, %g], want %g",
						trial, d, tb.Name, tb.Lower, tb.Upper, want[i])
				}
			}
		}
	}
}

func TestDistributedHybridBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	const eps = 0.05
	for trial := 0; trial < 20; trial++ {
		net := randomNet(rng, 6+rng.Intn(8), 1+rng.Intn(3))
		want := exactByEnumeration(net)
		res, err := Compile(net, Options{Strategy: Hybrid, Epsilon: eps, Workers: 8, JobDepth: 3})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, tb := range res.Targets {
			if want[i] < tb.Lower-1e-9 || want[i] > tb.Upper+1e-9 {
				t.Fatalf("trial %d target %s: truth %g outside [%g, %g]",
					trial, tb.Name, want[i], tb.Lower, tb.Upper)
			}
		}
	}
}

func TestCompileNoTargets(t *testing.T) {
	sp := event.NewSpace()
	sp.Add("x", 0.5)
	b := network.NewBuilder(sp, nil)
	b.Var(0)
	net := b.Build()
	if _, err := Compile(net, Options{}); err != ErrNoTargets {
		t.Errorf("got %v, want ErrNoTargets", err)
	}
}

func TestCompileConstantTargets(t *testing.T) {
	sp := event.NewSpace()
	x := sp.Add("x", 0.5)
	b := network.NewBuilder(sp, nil)
	b.Target("always", b.Or(b.Var(x), b.Not(b.Var(x))))
	b.Target("never", b.And(b.Var(x), b.Not(b.Var(x))))
	net := b.Build()
	res, err := Compile(net, Options{Strategy: Exact})
	if err != nil {
		t.Fatal(err)
	}
	at, _ := res.Target("always")
	nv, _ := res.Target("never")
	if !almost(at.Lower, 1, 1e-12) || at.Gap() > 1e-12 {
		t.Errorf("tautology bounds [%g, %g], want [1, 1]", at.Lower, at.Upper)
	}
	if !almost(nv.Upper, 0, 1e-12) || nv.Gap() > 1e-12 {
		t.Errorf("contradiction bounds [%g, %g], want [0, 0]", nv.Lower, nv.Upper)
	}
}

func almost(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

func TestSimulatedDistributedMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 20; trial++ {
		net := randomNet(rng, 5+rng.Intn(7), 1+rng.Intn(3))
		want := exactByEnumeration(net)
		res, err := Compile(net, Options{Strategy: Exact, Workers: 8, JobDepth: 2, SimulateWorkers: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Stats.SimulatedMakespan <= 0 {
			t.Fatalf("trial %d: no simulated makespan", trial)
		}
		if res.Stats.SimulatedMakespan > res.Stats.Duration {
			t.Fatalf("trial %d: makespan %v exceeds real duration %v",
				trial, res.Stats.SimulatedMakespan, res.Stats.Duration)
		}
		for i, tb := range res.Targets {
			if tb.Gap() > 1e-9 || !almost(tb.Lower, want[i], 1e-9) {
				t.Fatalf("trial %d target %s: got [%g, %g], want %g",
					trial, tb.Name, tb.Lower, tb.Upper, want[i])
			}
		}
	}
}
