// Package worlds implements the possible-worlds substrate: enumeration of
// the valuations ν : X → {true, false} of a variable space, their
// probability masses, and helpers to derive the possible worlds (present
// subsets) of a collection of uncertain objects. The naïve baseline and the
// brute-force differential tests are built on this package; the real
// probability-computation algorithms live in internal/prob.
package worlds

import (
	"math"

	"enframe/internal/event"
)

// MaxEnumerableVars bounds full enumeration; 2^30 valuations is already far
// beyond what the naïve baseline can visit before any sensible timeout.
const MaxEnumerableVars = 30

// Enumerate visits every valuation of the space together with its
// probability mass Pr(ν) = Π Px[ν(x)], in depth-first order with the true
// branch first (matching the decision-tree order of the prob package). The
// callback returns false to abort enumeration early; Enumerate reports
// whether the walk ran to completion.
func Enumerate(space *event.Space, fn func(nu event.SliceValuation, p float64) bool) bool {
	n := space.Len()
	if n > MaxEnumerableVars {
		panic("worlds: variable space too large to enumerate")
	}
	nu := make(event.SliceValuation, n)
	var rec func(i int, p float64) bool
	rec = func(i int, p float64) bool {
		if i == n {
			return fn(nu, p)
		}
		px := space.Prob(event.VarID(i))
		if px > 0 {
			nu[i] = true
			if !rec(i+1, p*px) {
				return false
			}
		}
		if px < 1 {
			nu[i] = false
			if !rec(i+1, p*(1-px)) {
				return false
			}
		}
		return true
	}
	return rec(0, 1)
}

// Prob returns Pr(ν) for a complete valuation of the space.
func Prob(space *event.Space, nu event.SliceValuation) float64 {
	p := 1.0
	for i := range nu {
		px := space.Prob(event.VarID(i))
		if nu[i] {
			p *= px
		} else {
			p *= 1 - px
		}
	}
	return p
}

// Count returns the number of valuations of the space, saturating at
// MaxUint64 for absurd sizes.
func Count(space *event.Space) uint64 {
	if space.Len() >= 64 {
		return math.MaxUint64
	}
	return 1 << uint(space.Len())
}

// PresenceKey is a compact bitset identifying which objects of a fixed list
// exist in a world; it is comparable and therefore usable as a map key for
// world memoisation.
type PresenceKey struct {
	words [4]uint64 // supports up to 256 objects; larger sets use KeyOf's ok=false
	n     int
}

// KeyOf computes the presence bitset of the given lineage events under a
// valuation. ok is false when there are more objects than the key can hold,
// in which case callers must not memoise.
func KeyOf(lineage []event.Expr, nu event.Valuation) (key PresenceKey, present []bool, ok bool) {
	present = Presence(lineage, nu)
	if len(lineage) > 256 {
		return PresenceKey{}, present, false
	}
	key.n = len(lineage)
	for i, p := range present {
		if p {
			key.words[i/64] |= 1 << uint(i%64)
		}
	}
	return key, present, true
}

// Presence evaluates each object's lineage event under ν.
func Presence(lineage []event.Expr, nu event.Valuation) []bool {
	out := make([]bool, len(lineage))
	ev := event.NewEvaluator(nu, nil)
	for i, e := range lineage {
		out[i] = ev.EvalExpr(e)
	}
	return out
}

// Distribution accumulates a probability per named outcome; it is a small
// convenience for tests and examples that aggregate per-world results.
type Distribution map[string]float64

// Add adds mass p to outcome key.
func (d Distribution) Add(key string, p float64) { d[key] += p }

// TotalMass returns the summed probability mass (≈1 for complete walks).
func (d Distribution) TotalMass() float64 {
	var s float64
	for _, p := range d {
		s += p
	}
	return s
}
