package worlds

import (
	"math"
	"testing"

	"enframe/internal/event"
)

func space(ps ...float64) *event.Space {
	sp := event.NewSpace()
	for _, p := range ps {
		sp.Add("x", p)
	}
	return sp
}

func TestEnumerateMassSumsToOne(t *testing.T) {
	sp := space(0.3, 0.5, 0.9)
	total := 0.0
	count := 0
	Enumerate(sp, func(nu event.SliceValuation, p float64) bool {
		total += p
		count++
		if got := Prob(sp, nu); math.Abs(got-p) > 1e-12 {
			t.Fatalf("Prob(%v) = %g, enumeration said %g", nu, got, p)
		}
		return true
	})
	if count != 8 {
		t.Errorf("visited %d valuations, want 8", count)
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("total mass %g", total)
	}
}

func TestEnumerateDegenerateProbabilities(t *testing.T) {
	sp := space(0, 1, 0.5)
	count := 0
	Enumerate(sp, func(nu event.SliceValuation, p float64) bool {
		count++
		if nu[0] {
			t.Error("variable with Pr 0 enumerated true")
		}
		if !nu[1] {
			t.Error("variable with Pr 1 enumerated false")
		}
		return true
	})
	if count != 2 {
		t.Errorf("visited %d valuations, want 2", count)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	sp := space(0.5, 0.5)
	count := 0
	complete := Enumerate(sp, func(nu event.SliceValuation, p float64) bool {
		count++
		return count < 2
	})
	if complete || count != 2 {
		t.Errorf("complete=%t count=%d", complete, count)
	}
}

func TestCount(t *testing.T) {
	if got := Count(space(0.5, 0.5, 0.5)); got != 8 {
		t.Errorf("Count = %d", got)
	}
}

func TestPresenceAndKey(t *testing.T) {
	sp := event.NewSpace()
	x := event.NewVar(sp.Add("x", 0.5), "x")
	y := event.NewVar(sp.Add("y", 0.5), "y")
	evs := []event.Expr{x, event.NewAnd(x, y), event.True}
	nu := event.SliceValuation{true, false}
	key1, present, ok := KeyOf(evs, nu)
	if !ok {
		t.Fatal("key not computed")
	}
	if !present[0] || present[1] || !present[2] {
		t.Errorf("presence = %v", present)
	}
	key2, _, _ := KeyOf(evs, event.SliceValuation{true, true})
	if key1 == key2 {
		t.Error("different worlds produced identical keys")
	}
	key3, _, _ := KeyOf(evs, event.SliceValuation{true, false})
	if key1 != key3 {
		t.Error("same world produced different keys")
	}
}

func TestDistribution(t *testing.T) {
	d := Distribution{}
	d.Add("a", 0.25)
	d.Add("a", 0.25)
	d.Add("b", 0.5)
	if d["a"] != 0.5 || math.Abs(d.TotalMass()-1) > 1e-12 {
		t.Errorf("distribution %v", d)
	}
}
