package gen

import (
	"strings"
	"testing"

	"enframe/internal/lang"
)

// TestDeterministic: the same seed must yield the identical program and
// input, or printed seeds would not reproduce failures.
func TestDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a, b := New(seed), New(seed)
		if a.Source() != b.Source() {
			t.Fatalf("seed %d: sources differ:\n%s\n----\n%s", seed, a.Source(), b.Source())
		}
		if len(a.Input.Objects) != len(b.Input.Objects) || a.Input.Space.Len() != b.Input.Space.Len() {
			t.Fatalf("seed %d: inputs differ", seed)
		}
	}
}

// TestGeneratedProgramsAreValid: every generated program must parse and
// pass static validation; generation is total over seeds.
func TestGeneratedProgramsAreValid(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		p := New(seed)
		prog, err := lang.Parse(p.Source())
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, p.Source())
		}
		if err := lang.Validate(prog); err != nil {
			t.Fatalf("seed %d: validate: %v\n%s", seed, err, p.Source())
		}
		if len(p.Syms()) == 0 {
			t.Fatalf("seed %d: no checked symbols", seed)
		}
		if p.Input.Space.Len() > 9 {
			t.Fatalf("seed %d: %d variables exceeds enumeration budget", seed, p.Input.Space.Len())
		}
		hasBool := false
		for _, s := range p.Syms() {
			if s.IsBool {
				hasBool = true
			}
		}
		if !hasBool {
			t.Fatalf("seed %d: anchor block produced no Boolean symbol\n%s", seed, p.Source())
		}
	}
}

// TestGrammarCoverage: across a modest seed range the generator must
// exercise the interesting constructs at least once each.
func TestGrammarCoverage(t *testing.T) {
	features := map[string]int{
		"reduce_sum": 0, "reduce_count": 0, "reduce_mult": 0,
		"reduce_and": 0, "reduce_or": 0,
		"breakTies(": 0, "breakTies1(": 0, "breakTies2(": 0,
		"dist(": 0, "pow(": 0, "scalar_mult(": 0,
		" if ": 0, "range(0, 0)": 0,
	}
	for seed := int64(0); seed < 400; seed++ {
		src := New(seed).Source()
		for f := range features {
			features[f] += strings.Count(src, f)
		}
	}
	for f, n := range features {
		if n == 0 {
			t.Errorf("feature %q never generated in 400 seeds", f)
		}
	}
}

// TestWithoutBlock: shrinking drops exactly one block and keeps the rest
// byte-identical.
func TestWithoutBlock(t *testing.T) {
	p := New(7)
	if len(p.Blocks) < 2 {
		t.Skip("seed 7 has a single block")
	}
	q := p.WithoutBlock(0)
	if len(q.Blocks) != len(p.Blocks)-1 {
		t.Fatalf("got %d blocks, want %d", len(q.Blocks), len(p.Blocks)-1)
	}
	if !strings.Contains(p.Source(), q.Blocks[0].Lines[0]) {
		t.Fatal("remaining block not from original program")
	}
}
