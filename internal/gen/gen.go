// Package gen generates random well-typed user programs together with
// random probabilistic input data, for the differential verification harness
// of internal/difftest. Every program is derived deterministically from one
// int64 seed, so any failing case reproduces from its printed seed, and
// programs decompose into independent blocks that the harness can drop one
// at a time to shrink a failure.
//
// The generated fragment is chosen so that all three evaluation paths
// (per-world interpreter, translated event program, compiled network) are
// bit-for-bit comparable: data points sit on a small integer grid, the
// metric is the squared Euclidean distance, the language fragment has no
// invert() and no float literals, and every numeric expression carries a
// static magnitude bound kept below 2^53. All intermediate values are then
// exact integers (or the undefined value u), so sums and products agree
// exactly regardless of association order, and comparison ties resolve
// identically in every path.
package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"enframe/internal/event"
	"enframe/internal/lineage"
	"enframe/internal/vec"
)

// maxMag bounds the magnitude of every generated numeric expression; well
// below 2^53, so integer arithmetic stays exact in float64.
const maxMag = 1e9

// Input is the external data a generated program runs over.
type Input struct {
	Objects     []lineage.Object
	Space       *event.Space
	Params      []int // k, iter
	InitIndices []int
	Metric      vec.Distance
}

// Sym names one flattened program variable cell (e.g. "A0[1]") whose final
// value the harness checks in every world.
type Sym struct {
	Name   string
	IsBool bool
}

// Block is one independent group of statements; shrinking drops blocks.
type Block struct {
	Lines []string
	Syms  []Sym
}

// Program is a generated user program plus its input data.
type Program struct {
	Seed    int64
	Prelude []string
	Blocks  []Block
	Input   Input
}

// Source renders the program as user-language text.
func (p *Program) Source() string {
	var b strings.Builder
	for _, l := range p.Prelude {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	for _, blk := range p.Blocks {
		for _, l := range blk.Lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Syms returns the checked symbols of all blocks, deduplicated by name.
func (p *Program) Syms() []Sym {
	var out []Sym
	seen := map[string]bool{}
	for _, blk := range p.Blocks {
		for _, s := range blk.Syms {
			if !seen[s.Name] {
				seen[s.Name] = true
				out = append(out, s)
			}
		}
	}
	return out
}

// WithoutBlock returns a copy of the program with block i removed; the
// input data is shared. Used by the shrinker.
func (p *Program) WithoutBlock(i int) *Program {
	blocks := make([]Block, 0, len(p.Blocks)-1)
	blocks = append(blocks, p.Blocks[:i]...)
	blocks = append(blocks, p.Blocks[i+1:]...)
	return &Program{Seed: p.Seed, Prelude: p.Prelude, Blocks: blocks, Input: p.Input}
}

// New generates the program of the given seed. Generation is total: every
// int64 produces a valid program.
func New(seed int64) *Program {
	rng := rand.New(rand.NewSource(seed))
	in := newInput(rng)
	g := &gens{
		rng:   rng,
		in:    in,
		nObj:  len(in.Objects),
		k:     in.Params[0],
		iter:  in.Params[1],
		names: map[string]*vinfo{},
		cnt:   map[string]int{},
	}
	p := &Program{
		Seed: seed,
		Prelude: []string{
			"(O, n) = loadData()",
			"(k, iter) = loadParams()",
			"M = init()",
		},
		Input: in,
	}
	nBlocks := 1 + rng.Intn(4)
	for b := 0; b < nBlocks; b++ {
		p.Blocks = append(p.Blocks, g.block())
	}
	p.Blocks = append(p.Blocks, g.anchorBlock())
	return p
}

// newInput draws the data points, correlation scheme, and clustering
// parameters. The variable space is kept small enough for brute-force world
// enumeration (at most 2^9 worlds).
func newInput(rng *rand.Rand) Input {
	nObj := 3 + rng.Intn(5) // 3..7
	pts := make([]vec.Vec, nObj)
	for i := range pts {
		pts[i] = vec.New(float64(rng.Intn(13)), float64(rng.Intn(13)))
	}
	scheme := lineage.Scheme(rng.Intn(4))
	groupSize := 1 + rng.Intn(3)
	if scheme == lineage.Conditional {
		groupSize = 2 + rng.Intn(2) // bound fresh variables: 2 per group
	}
	cfg := lineage.Config{
		Scheme:          scheme,
		GroupSize:       groupSize,
		NumVars:         2 + rng.Intn(3),
		L:               1 + rng.Intn(2),
		M:               2 + rng.Intn(2),
		CertainFraction: []float64{0, 0, 0.3, 0.5}[rng.Intn(4)],
		Seed:            rng.Int63(),
	}
	if rng.Intn(2) == 0 {
		cfg.ProbLow, cfg.ProbHigh = 0.25, 0.85
	}
	objs, space, err := lineage.Attach(pts, cfg)
	if err != nil || space.Len() > 9 {
		// Deterministic fallback keeps generation total.
		objs, space, err = lineage.Attach(pts, lineage.Config{
			Scheme: lineage.Independent, GroupSize: 2, Seed: cfg.Seed,
		})
		if err != nil {
			panic(fmt.Sprintf("gen: fallback lineage failed: %v", err))
		}
	}
	k := 2
	if nObj > 2 && rng.Intn(2) == 0 {
		k = 3
	}
	init := rng.Perm(nObj)[:k]
	return Input{
		Objects:     objs,
		Space:       space,
		Params:      []int{k, 1 + rng.Intn(2)},
		InitIndices: init,
		Metric:      vec.SquaredEuclidean,
	}
}

// vkind is the value kind of a generated program variable.
type vkind uint8

const (
	kNum vkind = iota
	kBool
	kVec
)

// vinfo tracks a defined program variable: its kind, array dimensions (nil
// for scalars), and the static magnitude bound of its numeric cells.
type vinfo struct {
	name  string
	kind  vkind
	dims  []int
	bound float64
}

type loopInfo struct {
	name string
	n    int // exclusive upper bound; the variable ranges over [0, n)
}

// gens is the generator state for one program.
type gens struct {
	rng           *rand.Rand
	in            Input
	nObj, k, iter int

	vars  []*vinfo // definition order, for deterministic choice
	names map[string]*vinfo
	loops []loopInfo
	cnt   map[string]int

	lines  []string
	indent int
	syms   []Sym
	// selfContained blocks read only prelude data (O, M, params), so the
	// shrinker can drop earlier blocks without breaking them.
	selfContained bool
	blockStart    int
}

func (g *gens) fresh(prefix string) string {
	n := g.cnt[prefix]
	g.cnt[prefix]++
	return fmt.Sprintf("%s%d", prefix, n)
}

func (g *gens) emit(format string, args ...any) {
	g.lines = append(g.lines, strings.Repeat("    ", g.indent)+fmt.Sprintf(format, args...))
}

func (g *gens) define(v *vinfo) {
	g.vars = append(g.vars, v)
	g.names[v.name] = v
	g.addSyms(v)
}

func (g *gens) addSyms(v *vinfo) {
	isBool := v.kind == kBool
	switch len(v.dims) {
	case 0:
		g.syms = append(g.syms, Sym{Name: v.name, IsBool: isBool})
	case 1:
		for i := 0; i < v.dims[0]; i++ {
			g.syms = append(g.syms, Sym{Name: fmt.Sprintf("%s[%d]", v.name, i), IsBool: isBool})
		}
	case 2:
		for i := 0; i < v.dims[0]; i++ {
			for j := 0; j < v.dims[1]; j++ {
				g.syms = append(g.syms, Sym{Name: fmt.Sprintf("%s[%d][%d]", v.name, i, j), IsBool: isBool})
			}
		}
	}
}

// readable reports whether the variable may be referenced by the current
// block: self-contained blocks only read variables they defined themselves.
func (g *gens) readable(i int) bool {
	return !g.selfContained || i >= g.blockStart
}

// pick returns a random readable variable satisfying want, or nil.
func (g *gens) pick(want func(*vinfo) bool) *vinfo {
	var cands []*vinfo
	for i, v := range g.vars {
		if g.readable(i) && want(v) {
			cands = append(cands, v)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	return cands[g.rng.Intn(len(cands))]
}

// idx renders an index expression valid for an array dimension of size dim:
// a loop variable whose range fits inside the dimension, or a literal.
func (g *gens) idx(dim int) string {
	var fits []loopInfo
	for _, l := range g.loops {
		if l.n <= dim {
			fits = append(fits, l)
		}
	}
	if len(fits) > 0 && g.rng.Intn(4) != 0 {
		return fits[g.rng.Intn(len(fits))].name
	}
	return fmt.Sprintf("%d", g.rng.Intn(dim))
}

// nx is a generated numeric expression: source text plus a static magnitude
// bound. Values are nonnegative exact integers or the undefined value u.
type nx struct {
	src   string
	bound float64
}

// bx is a generated Boolean expression.
type bx struct {
	src string
}

// vx is a generated vector expression with a per-coordinate magnitude bound.
type vx struct {
	src   string
	coord float64
}

// dimName renders a loop bound: the literal, or its parameter name when the
// value happens to match n or k (exercising symbolic range bounds).
func (g *gens) dimName(d int) string {
	if d == g.nObj && g.rng.Intn(2) == 0 {
		return "n"
	}
	if d == g.k && g.rng.Intn(2) == 0 {
		return "k"
	}
	return fmt.Sprintf("%d", d)
}

// vecAtom produces a vector-valued expression: a data point, a medoid, a
// vector variable cell, or a small integer scaling of one of those.
func (g *gens) vecAtom() vx {
	var base vx
	switch g.rng.Intn(3) {
	case 0:
		base = vx{src: fmt.Sprintf("O[%s]", g.idx(g.nObj)), coord: 12}
	case 1:
		base = vx{src: fmt.Sprintf("M[%s]", g.idx(g.k)), coord: 12}
	default:
		if v := g.pick(func(v *vinfo) bool { return v.kind == kVec && len(v.dims) == 1 }); v != nil {
			base = vx{src: fmt.Sprintf("%s[%s]", v.name, g.idx(v.dims[0])), coord: v.bound}
		} else {
			base = vx{src: fmt.Sprintf("O[%s]", g.idx(g.nObj)), coord: 12}
		}
	}
	if g.rng.Intn(5) == 0 && base.coord <= 1000 {
		c := 1 + g.rng.Intn(3)
		return vx{src: fmt.Sprintf("scalar_mult(%d, %s)", c, base.src), coord: float64(c) * base.coord}
	}
	return base
}

// dist produces a squared-distance atom; for d-dimensional integer points
// with per-coordinate bound c the result is an integer at most d·(2c)².
func (g *gens) distAtom() nx {
	a, b := g.vecAtom(), g.vecAtom()
	c := a.coord
	if b.coord > c {
		c = b.coord
	}
	return nx{src: fmt.Sprintf("dist(%s, %s)", a.src, b.src), bound: 2 * (2 * c) * (2 * c)}
}

// numAtom produces a leaf numeric expression within the magnitude cap.
func (g *gens) numAtom(cap float64) nx {
	for try := 0; try < 6; try++ {
		var e nx
		switch g.rng.Intn(6) {
		case 0:
			v := g.rng.Intn(10)
			e = nx{src: fmt.Sprintf("%d", v), bound: float64(v)}
		case 1:
			if len(g.loops) == 0 {
				continue
			}
			l := g.loops[g.rng.Intn(len(g.loops))]
			e = nx{src: l.name, bound: float64(l.n - 1)}
		case 2:
			switch g.rng.Intn(3) {
			case 0:
				e = nx{src: "n", bound: float64(g.nObj)}
			case 1:
				e = nx{src: "k", bound: float64(g.k)}
			default:
				e = nx{src: "iter", bound: float64(g.iter)}
			}
		case 3:
			v := g.pick(func(v *vinfo) bool { return v.kind == kNum && v.dims == nil })
			if v == nil {
				continue
			}
			e = nx{src: v.name, bound: v.bound}
		case 4:
			v := g.pick(func(v *vinfo) bool { return v.kind == kNum && len(v.dims) == 1 })
			if v == nil {
				continue
			}
			e = nx{src: fmt.Sprintf("%s[%s]", v.name, g.idx(v.dims[0])), bound: v.bound}
		default:
			v := g.pick(func(v *vinfo) bool { return v.kind == kNum && len(v.dims) == 2 })
			if v != nil && g.rng.Intn(2) == 0 {
				e = nx{src: fmt.Sprintf("%s[%s][%s]", v.name, g.idx(v.dims[0]), g.idx(v.dims[1])), bound: v.bound}
			} else {
				e = g.distAtom()
			}
		}
		if e.bound <= cap {
			return e
		}
	}
	v := g.rng.Intn(4)
	return nx{src: fmt.Sprintf("%d", v), bound: float64(v)}
}

// numExpr produces a numeric expression of the given depth budget whose
// magnitude bound stays below cap.
func (g *gens) numExpr(depth int, cap float64) nx {
	if depth <= 0 {
		return g.numAtom(cap)
	}
	switch g.rng.Intn(6) {
	case 0, 1:
		a := g.numExpr(depth-1, cap)
		b := g.numExpr(depth-1, cap-a.bound)
		return nx{src: fmt.Sprintf("(%s + %s)", a.src, b.src), bound: a.bound + b.bound}
	case 2:
		a := g.numExpr(depth-1, cap)
		// Keep the product in range: the second factor is a small literal
		// unless the first operand is small.
		if a.bound > 1000 || g.rng.Intn(2) == 0 {
			c := 1 + g.rng.Intn(3)
			if a.bound*float64(c) > cap {
				return a
			}
			return nx{src: fmt.Sprintf("(%s * %d)", a.src, c), bound: a.bound * float64(c)}
		}
		b := g.numAtom(1000)
		if a.bound*b.bound > cap {
			return a
		}
		return nx{src: fmt.Sprintf("(%s * %s)", a.src, b.src), bound: a.bound * b.bound}
	case 3:
		// pow with a small base keeps the result an exact integer.
		base := g.numAtom(1000)
		exp := g.rng.Intn(4)
		bound := 1.0
		for i := 0; i < exp; i++ {
			bound *= base.bound
		}
		if bound < 1 {
			bound = 1
		}
		if bound > cap {
			return base
		}
		return nx{src: fmt.Sprintf("pow(%s, %d)", base.src, exp), bound: bound}
	case 4:
		return g.reduceNum(depth, cap)
	default:
		return g.numAtom(cap)
	}
}

// reduceNum produces a reduce_sum, reduce_count, or reduce_mult over a list
// comprehension; empty ranges (undefined sums) are generated on purpose.
func (g *gens) reduceNum(depth int, cap float64) nx {
	t := g.comprRange()
	q := g.fresh("q")
	g.loops = append(g.loops, loopInfo{name: q, n: t})
	defer func() { g.loops = g.loops[:len(g.loops)-1] }()
	cond := ""
	if g.rng.Intn(2) == 0 {
		cond = " if " + g.boolExpr(depth-1).src
	}
	rangeS := g.dimName(t)
	switch g.rng.Intn(3) {
	case 0:
		if float64(t) > cap {
			return g.numAtom(cap)
		}
		return nx{
			src:   fmt.Sprintf("reduce_count([1 for %s in range(0, %s)%s])", q, rangeS, cond),
			bound: float64(t),
		}
	case 1:
		elemCap := cap
		if t > 0 {
			elemCap = cap / float64(t)
		}
		el := g.numExpr(depth-1, elemCap)
		return nx{
			src:   fmt.Sprintf("reduce_sum([%s for %s in range(0, %s)%s])", el.src, q, rangeS, cond),
			bound: float64(t) * el.bound,
		}
	default:
		el := g.numAtom(30)
		bound := 1.0
		for i := 0; i < t; i++ {
			bound *= el.bound
			if el.bound < 1 {
				bound = 1
			}
		}
		if bound > cap {
			return g.numAtom(cap)
		}
		return nx{
			src:   fmt.Sprintf("reduce_mult([%s for %s in range(0, %s)%s])", el.src, q, rangeS, cond),
			bound: bound,
		}
	}
}

// comprRange picks a comprehension range bound; zero-trip ranges are kept
// rare but present (they exercise the undefined-value semantics).
func (g *gens) comprRange() int {
	if g.rng.Intn(8) == 0 {
		return 0
	}
	switch g.rng.Intn(4) {
	case 0:
		return g.nObj
	case 1:
		return g.k
	default:
		return 1 + g.rng.Intn(3)
	}
}

var cmpOps = []string{"<=", ">=", "<", ">", "=="}

// boolExpr produces a Boolean expression: comparisons between numeric
// expressions, Boolean variables and cells, and reduce_and / reduce_or over
// comprehensions. The user language has no and/or/not operators.
func (g *gens) boolExpr(depth int) bx {
	choice := g.rng.Intn(8)
	if depth <= 0 && choice >= 5 {
		choice = g.rng.Intn(5)
	}
	switch choice {
	case 0:
		if v := g.pick(func(v *vinfo) bool { return v.kind == kBool && v.dims == nil }); v != nil {
			return bx{src: v.name}
		}
	case 1:
		if v := g.pick(func(v *vinfo) bool { return v.kind == kBool && len(v.dims) == 1 }); v != nil {
			return bx{src: fmt.Sprintf("%s[%s]", v.name, g.idx(v.dims[0]))}
		}
	case 2:
		if v := g.pick(func(v *vinfo) bool { return v.kind == kBool && len(v.dims) == 2 }); v != nil {
			return bx{src: fmt.Sprintf("%s[%s][%s]", v.name, g.idx(v.dims[0]), g.idx(v.dims[1]))}
		}
	case 3:
		if g.rng.Intn(2) == 0 {
			return bx{src: "True"}
		}
		return bx{src: "False"}
	case 5, 6:
		if depth > 0 {
			return g.reduceBool(depth)
		}
	}
	// Comparison atom: the workhorse.
	d := depth - 1
	if d < 0 {
		d = 0
	}
	a := g.numExpr(d, maxMag)
	b := g.numExpr(d, maxMag)
	return bx{src: fmt.Sprintf("(%s %s %s)", a.src, cmpOps[g.rng.Intn(len(cmpOps))], b.src)}
}

// reduceBool produces reduce_and / reduce_or over a comprehension.
func (g *gens) reduceBool(depth int) bx {
	t := g.comprRange()
	q := g.fresh("q")
	g.loops = append(g.loops, loopInfo{name: q, n: t})
	defer func() { g.loops = g.loops[:len(g.loops)-1] }()
	el := g.boolExpr(depth - 1)
	cond := ""
	if g.rng.Intn(3) == 0 {
		cond = " if " + g.boolExpr(depth-1).src
	}
	fn := "reduce_and"
	if g.rng.Intn(2) == 0 {
		fn = "reduce_or"
	}
	return bx{src: fmt.Sprintf("%s([%s for %s in range(0, %s)%s])", fn, el.src, q, g.dimName(t), cond)}
}

// block generates one random top-level block.
func (g *gens) block() Block {
	g.lines = nil
	g.syms = nil
	g.blockStart = len(g.vars)
	g.selfContained = g.rng.Intn(10) < 7
	switch g.rng.Intn(5) {
	case 0:
		g.scalarBlock()
	case 1:
		g.arr1Block()
	case 2:
		g.arr2Block()
	case 3:
		g.accumBlock()
	default:
		g.iterBlock()
	}
	return Block{Lines: g.lines, Syms: g.syms}
}

// scalarBlock defines one or two fresh scalars.
func (g *gens) scalarBlock() {
	for i := 0; i < 1+g.rng.Intn(2); i++ {
		if g.rng.Intn(2) == 0 {
			name := g.fresh("s")
			e := g.numExpr(2, maxMag)
			g.emit("%s = %s", name, e.src)
			g.define(&vinfo{name: name, kind: kNum, bound: e.bound})
		} else {
			name := g.fresh("b")
			e := g.boolExpr(2)
			g.emit("%s = %s", name, e.src)
			g.define(&vinfo{name: name, kind: kBool})
		}
	}
}

// arr1Block fills a fresh 1-D array cell by cell, optionally breaking ties
// when the cells are Boolean.
func (g *gens) arr1Block() {
	d := []int{2, 3, g.nObj, g.k}[g.rng.Intn(4)]
	name := g.fresh("A")
	i := g.fresh("i")
	isBool := g.rng.Intn(2) == 0
	dimS := g.dimName(d)
	g.emit("%s = [None] * %s", name, dimS)
	g.emit("for %s in range(0, %s):", i, dimS)
	g.indent++
	g.loops = append(g.loops, loopInfo{name: i, n: d})
	var bound float64
	if isBool {
		e := g.boolExpr(2)
		g.emit("%s[%s] = %s", name, i, e.src)
	} else {
		e := g.numExpr(2, maxMag)
		g.emit("%s[%s] = %s", name, i, e.src)
		bound = e.bound
	}
	g.loops = g.loops[:len(g.loops)-1]
	g.indent--
	if isBool && g.rng.Intn(2) == 0 {
		g.emit("%s = breakTies(%s)", name, name)
	}
	kind := kNum
	if isBool {
		kind = kBool
	}
	g.define(&vinfo{name: name, kind: kind, dims: []int{d}, bound: bound})
}

// arr2Block fills a fresh 2-D array, optionally applying breakTies1 or
// breakTies2 when Boolean.
func (g *gens) arr2Block() {
	d1 := []int{2, g.k}[g.rng.Intn(2)]
	d2 := []int{2, 3, g.nObj}[g.rng.Intn(3)]
	name := g.fresh("A")
	i, j := g.fresh("i"), g.fresh("i")
	isBool := g.rng.Intn(3) > 0
	d1S, d2S := g.dimName(d1), g.dimName(d2)
	g.emit("%s = [None] * %s", name, d1S)
	g.emit("for %s in range(0, %s):", i, d1S)
	g.indent++
	g.loops = append(g.loops, loopInfo{name: i, n: d1})
	g.emit("%s[%s] = [None] * %s", name, i, d2S)
	g.emit("for %s in range(0, %s):", j, d2S)
	g.indent++
	g.loops = append(g.loops, loopInfo{name: j, n: d2})
	var bound float64
	if isBool {
		e := g.boolExpr(2)
		g.emit("%s[%s][%s] = %s", name, i, j, e.src)
	} else {
		e := g.numExpr(2, maxMag)
		g.emit("%s[%s][%s] = %s", name, i, j, e.src)
		bound = e.bound
	}
	g.loops = g.loops[:len(g.loops)-2]
	g.indent -= 2
	if isBool {
		switch g.rng.Intn(3) {
		case 0:
			g.emit("%s = breakTies1(%s)", name, name)
		case 1:
			g.emit("%s = breakTies2(%s)", name, name)
		}
	}
	kind := kNum
	if isBool {
		kind = kBool
	}
	g.define(&vinfo{name: name, kind: kind, dims: []int{d1, d2}, bound: bound})
}

// accumBlock grows a scalar accumulator inside a loop, exercising the
// block-entry and block-exit copy declarations of the label machinery
// (Example 3 of the paper). It sometimes reuses an existing scalar.
func (g *gens) accumBlock() {
	var name string
	reused := false
	if v := g.pick(func(v *vinfo) bool { return v.kind == kNum && v.dims == nil }); v != nil && g.rng.Intn(2) == 0 {
		name = v.name
		reused = true
	} else {
		name = g.fresh("s")
		e := g.numAtom(100)
		g.emit("%s = %s", name, e.src)
	}
	d := 1 + g.rng.Intn(3)
	i := g.fresh("i")
	g.emit("for %s in range(0, %d):", i, d)
	g.indent++
	g.loops = append(g.loops, loopInfo{name: i, n: d})
	step := g.numExpr(1, 1e5)
	g.emit("%s = (%s + %s)", name, name, step.src)
	if g.rng.Intn(2) == 0 {
		d2 := 1 + g.rng.Intn(2)
		j := g.fresh("i")
		g.emit("for %s in range(0, %d):", j, d2)
		g.indent++
		g.loops = append(g.loops, loopInfo{name: j, n: d2})
		step2 := g.numExpr(1, 1e5)
		g.emit("%s = (%s + %s)", name, name, step2.src)
		g.loops = g.loops[:len(g.loops)-1]
		g.indent--
		d = d * (1 + d2) // loose trip-count factor for the bound below
	}
	g.loops = g.loops[:len(g.loops)-1]
	g.indent--
	bound := 100 + float64(d+1)*2e5
	if reused {
		g.names[name].bound += bound
	} else {
		g.define(&vinfo{name: name, kind: kNum, bound: bound})
	}
}

// iterBlock wraps an accumulator in an outer `for it in range(0, iter)`
// loop, mirroring the clustering programs' iteration structure.
func (g *gens) iterBlock() {
	name := g.fresh("s")
	e := g.numAtom(100)
	g.emit("%s = %s", name, e.src)
	it := g.fresh("t")
	g.emit("for %s in range(0, iter):", it)
	g.indent++
	g.loops = append(g.loops, loopInfo{name: it, n: g.iter})
	d := 1 + g.rng.Intn(2)
	i := g.fresh("i")
	g.emit("for %s in range(0, %d):", i, d)
	g.indent++
	g.loops = append(g.loops, loopInfo{name: i, n: d})
	step := g.numExpr(1, 1e5)
	g.emit("%s = (%s + %s)", name, name, step.src)
	g.loops = g.loops[:len(g.loops)-2]
	g.indent -= 2
	g.define(&vinfo{name: name, kind: kNum, bound: 100 + float64(g.iter*d)*1e5})
}

// anchorBlock is always appended last and guarantees the program declares
// Boolean events that genuinely depend on the uncertain data, so the
// compiled network has nontrivial targets.
func (g *gens) anchorBlock() Block {
	g.lines = nil
	g.syms = nil
	g.blockStart = len(g.vars)
	g.selfContained = true
	switch g.rng.Intn(3) {
	case 0:
		g.anchorThreshold()
	case 1:
		g.anchorCount()
	default:
		g.anchorCluster()
	}
	return Block{Lines: g.lines, Syms: g.syms}
}

// anchorThreshold: per-object distance array, thresholded into a Boolean
// array, tie-broken. Absent objects have undefined distances, so their
// comparisons hold — the u-semantics shows up in the marginals.
func (g *gens) anchorThreshold() {
	dn := g.fresh("A")
	tn := g.fresh("T")
	l := g.fresh("i")
	g.emit("%s = [None] * n", dn)
	g.emit("for %s in range(0, n):", l)
	g.indent++
	g.loops = append(g.loops, loopInfo{name: l, n: g.nObj})
	g.emit("%s[%s] = dist(O[%s], M[%s])", dn, l, l, g.idx(g.k))
	g.loops = g.loops[:len(g.loops)-1]
	g.indent--
	thr := 30 + g.rng.Intn(200)
	l2 := g.fresh("i")
	g.emit("%s = [None] * n", tn)
	g.emit("for %s in range(0, n):", l2)
	g.indent++
	g.loops = append(g.loops, loopInfo{name: l2, n: g.nObj})
	g.emit("%s[%s] = (%s[%s] <= %d)", tn, l2, dn, l2, thr)
	g.loops = g.loops[:len(g.loops)-1]
	g.indent--
	if g.rng.Intn(2) == 0 {
		g.emit("%s = breakTies(%s)", tn, tn)
	}
	g.define(&vinfo{name: dn, kind: kNum, dims: []int{g.nObj}, bound: 1152})
	g.define(&vinfo{name: tn, kind: kBool, dims: []int{g.nObj}})
}

// anchorCount: a filtered count of nearby objects compared to a threshold;
// an empty count is undefined, and comparisons against u hold.
func (g *gens) anchorCount() {
	cn := g.fresh("s")
	bn := g.fresh("b")
	thr := 30 + g.rng.Intn(200)
	g.emit("%s = reduce_count([1 for q in range(0, n) if (dist(O[q], M[0]) <= %d)])", cn, thr)
	g.emit("%s = (%s >= %d)", bn, cn, 1+g.rng.Intn(3))
	g.define(&vinfo{name: cn, kind: kNum, bound: float64(g.nObj)})
	g.define(&vinfo{name: bn, kind: kBool})
}

// anchorCluster: the k-medoids assignment pattern — nearest-medoid Boolean
// matrix, tie-broken so each object is in exactly one cluster — optionally
// followed by a k-means-style vector reduction over cluster members.
func (g *gens) anchorCluster() {
	name := g.fresh("C")
	i, l, j := g.fresh("i"), g.fresh("i"), g.fresh("q")
	g.emit("%s = [None] * k", name)
	g.emit("for %s in range(0, k):", i)
	g.indent++
	g.emit("%s[%s] = [None] * n", name, i)
	g.emit("for %s in range(0, n):", l)
	g.indent++
	g.emit("%s[%s][%s] = reduce_and([(dist(O[%s], M[%s]) <= dist(O[%s], M[%s])) for %s in range(0, k)])",
		name, i, l, l, i, l, j, j)
	g.indent -= 2
	g.emit("%s = breakTies2(%s)", name, name)
	g.define(&vinfo{name: name, kind: kBool, dims: []int{g.k, g.nObj}})
	if g.rng.Intn(2) == 0 {
		wn := g.fresh("W")
		i2, l2 := g.fresh("i"), g.fresh("q")
		g.emit("%s = [None] * k", wn)
		g.emit("for %s in range(0, k):", i2)
		g.indent++
		g.emit("%s[%s] = reduce_sum([O[%s] for %s in range(0, n) if %s[%s][%s]])",
			wn, i2, l2, l2, name, i2, l2)
		g.indent--
		g.define(&vinfo{name: wn, kind: kVec, dims: []int{g.k}, bound: float64(g.nObj) * 12})
	}
}
