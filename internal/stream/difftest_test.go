package stream_test

import (
	"context"
	"math/rand"
	"strconv"
	"testing"

	"enframe/internal/stream"
)

func ctxb() context.Context { return context.Background() }

// TestSeededDeltaDifftest is the streaming plane's oracle test: a seeded
// random walk of delta batches against a session, where after every batch
// the streamed marginals must be byte-identical to recompiling every live
// window from scratch through the standard pipeline. The walk mixes all
// four delta ops, boundary probabilities (0 and 1, which force the
// incomplete-circuit slow path), multi-delta batches, and periodic
// duplicate/out-of-order pushes that must bounce off the sequence check
// without perturbing state.
func TestSeededDeltaDifftest(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		seed := seed
		t.Run("seed-"+strconv.FormatInt(seed, 10), func(t *testing.T) {
			t.Parallel()
			runDifftest(t, seed, 28)
		})
	}
}

func runDifftest(t *testing.T, seed int64, steps int) {
	rng := rand.New(rand.NewSource(seed))
	cfg := testConfig()
	cfg.Seed = seed
	cfg.Segments = 3
	s := mustSession(t, cfg)
	seq := uint64(0)

	randP := func() float64 {
		switch rng.Intn(6) {
		case 0:
			return 0 // boundary: prunes the trace, circuit not memoizable
		case 1:
			return 1
		default:
			return rng.Float64()
		}
	}

	randDelta := func() (stream.Delta, bool) {
		wins := s.Windows()
		w := wins[rng.Intn(len(wins))]
		switch rng.Intn(8) {
		case 0: // advance, occasionally
			return stream.Delta{Op: stream.OpAdvance, N: 1 + rng.Intn(2)}, true
		case 1, 2: // insert
			ids, err := s.TupleIDs(w)
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) >= cfg.MaxSegmentTuples {
				return stream.Delta{}, false
			}
			return stream.Delta{
				Op: stream.OpInsert, Window: &w,
				Pos: []float64{rng.Float64(), rng.Float64()},
				P:   fp(randP()),
			}, true
		case 3: // delete
			ids, err := s.TupleIDs(w)
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) <= cfg.K {
				return stream.Delta{}, false
			}
			return stream.Delta{Op: stream.OpDelete, Window: &w, ID: ids[rng.Intn(len(ids))]}, true
		default: // prob — the common case in a live feed
			vars, err := s.VarNames(w)
			if err != nil {
				t.Fatal(err)
			}
			if len(vars) == 0 {
				return stream.Delta{}, false
			}
			return stream.Delta{
				Op: stream.OpProb, Window: &w,
				Var: vars[rng.Intn(len(vars))], P: fp(randP()),
			}, true
		}
	}

	for step := 0; step < steps; step++ {
		var batch []stream.Delta
		n := 1 + rng.Intn(3)
		hasDelete := false
		for len(batch) < n {
			d, ok := randDelta()
			if !ok {
				continue
			}
			// At most one delete per batch: randDelta's size floor is
			// checked against session state, so a second delete on the
			// same window could dip below k and bounce the whole batch.
			if d.Op == stream.OpDelete {
				if hasDelete {
					continue
				}
				hasDelete = true
			}
			batch = append(batch, d)
			if d.Op == stream.OpAdvance {
				break // later deltas could address the admitted window
			}
		}

		// Every few steps, first fire a stale or futuristic push; it must
		// be rejected and must not move the session.
		if step%5 == 4 {
			bad := seq + uint64(rng.Intn(3)) + 1
			if rng.Intn(2) == 0 && seq > 0 {
				bad = seq - 1
			}
			if _, err := s.Apply(ctxb(), bad, batch); err == nil {
				t.Fatalf("step %d: push with base_seq %d (session at %d) was accepted", step, bad, seq)
			}
			if got := s.Seq(); got != seq {
				t.Fatalf("step %d: rejected push moved seq to %d", step, got)
			}
		}

		u, err := s.Apply(ctxb(), seq, batch)
		if err != nil {
			t.Fatalf("step %d: apply %+v: %v", step, batch, err)
		}
		seq = u.Seq
		sameMarginals(t, u.Marginals, oracleMarginals(t, s), "difftest step")
	}
}
