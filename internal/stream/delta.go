package stream

import (
	"fmt"

	"enframe/internal/event"
	"enframe/internal/lineage"
	"enframe/internal/vec"
)

// Delta is one entry of a session's append-only delta log. Ops:
//
//   - "prob":    set Pr[Var = true] = *P in segment Window. Never structural:
//     the segment's consed circuit replays at the new probabilities.
//   - "insert":  append a tuple at Pos to segment Window, backed by a fresh
//     independent random variable with Pr = *P. Structural.
//   - "delete":  remove tuple ID from segment Window. Structural.
//   - "advance": slide the window by N segments — retire the N oldest, admit
//     N fresh segments from the deterministic feed. Structural for the
//     admitted segments only.
//
// Window selects the target segment by its window index; nil means the
// newest live segment. Deltas are validated as a batch before any state
// mutates, so a rejected batch leaves the session untouched.
type Delta struct {
	Op     string    `json:"op"`
	Window *int64    `json:"window,omitempty"`
	Var    string    `json:"var,omitempty"`
	P      *float64  `json:"p,omitempty"`
	Pos    []float64 `json:"pos,omitempty"`
	ID     int       `json:"id,omitempty"`
	N      int       `json:"n,omitempty"`
}

// Delta op names.
const (
	OpProb    = "prob"
	OpInsert  = "insert"
	OpDelete  = "delete"
	OpAdvance = "advance"
)

// SeqError rejects a push whose base sequence number does not match the
// session's current sequence — the duplicate/out-of-order delivery guard.
// Want is the only acceptable base; Got is what the client sent.
type SeqError struct {
	Want, Got uint64
}

func (e *SeqError) Error() string {
	return fmt.Sprintf("stream: base_seq %d does not match session seq %d (duplicate or out-of-order push)", e.Got, e.Want)
}

// ValidationError marks a rejected delta batch: the client sent something
// malformed, not the session failing. Servers map it to 400.
type ValidationError struct{ Err error }

func (e *ValidationError) Error() string { return e.Err.Error() }
func (e *ValidationError) Unwrap() error { return e.Err }

// maxAdvancePerBatch bounds how far one batch may slide the window.
const maxAdvancePerBatch = 64

// simSeg tracks the simulated mutable state of one segment during batch
// validation: enough to decide id/var existence and size bounds without
// touching the real segment.
type simSeg struct {
	live   map[int]bool    // current tuple ids
	vars   map[string]bool // current variable names
	nextID int
}

func newSimSeg(seg *segment) *simSeg {
	ss := &simSeg{
		live:   make(map[int]bool, len(seg.objs)),
		vars:   make(map[string]bool, len(seg.varIdx)),
		nextID: seg.nextID,
	}
	for _, o := range seg.objs {
		ss.live[o.ID] = true
	}
	for name := range seg.varIdx {
		ss.vars[name] = true
	}
	return ss
}

// validate simulates the batch against the current session state. It never
// mutates the session. Deltas may not reference a window admitted by an
// advance earlier in the same batch (its feed-generated variable names are
// not materialised yet); push a second batch instead.
func (s *Session) validate(deltas []Delta) error {
	if len(deltas) == 0 {
		return fmt.Errorf("stream: empty delta batch")
	}
	wins := make([]int64, len(s.segs))
	segByWin := make(map[int64]*segment, len(s.segs))
	for i, seg := range s.segs {
		wins[i] = seg.window
		segByWin[seg.window] = seg
	}
	sims := map[int64]*simSeg{}
	simFor := func(w int64) *simSeg {
		if ss, ok := sims[w]; ok {
			return ss
		}
		ss := newSimSeg(segByWin[w])
		sims[w] = ss
		return ss
	}
	isLive := func(w int64) bool {
		for _, lw := range wins {
			if lw == w {
				return true
			}
		}
		return false
	}
	advanced := 0
	for i, d := range deltas {
		resolveWin := func() (int64, error) {
			if d.Window == nil {
				w := wins[len(wins)-1]
				if _, pending := segByWin[w]; !pending {
					return 0, fmt.Errorf("stream: delta %d: cannot target window %d admitted earlier in this batch; push it in a following batch", i, w)
				}
				return w, nil
			}
			w := *d.Window
			if !isLive(w) {
				return 0, fmt.Errorf("stream: delta %d: window %d is not live (live: %v)", i, w, wins)
			}
			if _, materialised := segByWin[w]; !materialised {
				return 0, fmt.Errorf("stream: delta %d: cannot target window %d admitted earlier in this batch; push it in a following batch", i, w)
			}
			return w, nil
		}
		switch d.Op {
		case OpProb:
			w, err := resolveWin()
			if err != nil {
				return err
			}
			if d.Var == "" {
				return fmt.Errorf("stream: delta %d: prob needs var", i)
			}
			if d.P == nil || *d.P < 0 || *d.P > 1 {
				return fmt.Errorf("stream: delta %d: prob needs p in [0, 1]", i)
			}
			if !simFor(w).vars[d.Var] {
				return fmt.Errorf("stream: delta %d: window %d has no variable %q", i, w, d.Var)
			}
		case OpInsert:
			w, err := resolveWin()
			if err != nil {
				return err
			}
			if len(d.Pos) != feedDim {
				return fmt.Errorf("stream: delta %d: insert needs a %d-dimensional pos (got %d)", i, feedDim, len(d.Pos))
			}
			if d.P == nil || *d.P < 0 || *d.P > 1 {
				return fmt.Errorf("stream: delta %d: insert needs p in [0, 1]", i)
			}
			ss := simFor(w)
			if len(ss.live) >= s.cfg.MaxSegmentTuples {
				return fmt.Errorf("stream: delta %d: window %d is full (%d tuples)", i, w, len(ss.live))
			}
			ss.live[ss.nextID] = true
			ss.vars[insertVarName(ss.nextID)] = true
			ss.nextID++
		case OpDelete:
			w, err := resolveWin()
			if err != nil {
				return err
			}
			ss := simFor(w)
			if !ss.live[d.ID] {
				return fmt.Errorf("stream: delta %d: window %d has no tuple %d", i, w, d.ID)
			}
			if len(ss.live)-1 < s.cfg.K {
				return fmt.Errorf("stream: delta %d: window %d cannot drop below k=%d tuples", i, w, s.cfg.K)
			}
			delete(ss.live, d.ID)
		case OpAdvance:
			n := d.N
			if n == 0 {
				n = 1
			}
			if n < 1 || advanced+n > maxAdvancePerBatch {
				return fmt.Errorf("stream: delta %d: advance n must be in [1, %d] per batch", i, maxAdvancePerBatch)
			}
			advanced += n
			for j := 0; j < n; j++ {
				// Retire the oldest live window, admit a fresh (unmaterialised)
				// one. Later deltas in this batch cannot address the admission.
				wins = append(wins[1:], s.nextWindow+int64(advanced-n+j))
			}
		default:
			return fmt.Errorf("stream: delta %d: unknown op %q (want prob, insert, delete, or advance)", i, d.Op)
		}
	}
	return nil
}

// insertVarName names the fresh variable backing an inserted tuple. The "+"
// prefix cannot collide with feed-generated lineage variable names.
func insertVarName(id int) string { return fmt.Sprintf("+v%d", id) }

// apply mutates session state for one validated batch. It cannot fail:
// everything fallible was checked by validate. Structural mutations mark
// their segment dirty; probability updates mark it probsDirty.
func (s *Session) apply(deltas []Delta) {
	for _, d := range deltas {
		switch d.Op {
		case OpProb:
			seg := s.segFor(d.Window)
			seg.space.SetProb(seg.varIdx[d.Var], *d.P)
			seg.probsDirty = true
		case OpInsert:
			seg := s.segFor(d.Window)
			name := insertVarName(seg.nextID)
			id := seg.space.Add(name, *d.P)
			seg.varIdx[name] = id
			seg.objs = append(seg.objs, lineage.Object{
				ID:      seg.nextID,
				Pos:     vec.New(d.Pos...),
				Lineage: event.NewVar(id, name),
			})
			seg.nextID++
			seg.dirty = true
		case OpDelete:
			seg := s.segFor(d.Window)
			for i, o := range seg.objs {
				if o.ID == d.ID {
					seg.objs = append(seg.objs[:i], seg.objs[i+1:]...)
					break
				}
			}
			seg.dirty = true
		case OpAdvance:
			n := d.N
			if n == 0 {
				n = 1
			}
			for j := 0; j < n; j++ {
				s.segs = s.segs[1:]
				s.segs = append(s.segs, s.mustSegment(s.nextWindow))
				s.nextWindow++
			}
		}
	}
}

// segFor resolves a delta's window reference against live segments; nil
// means newest. Only called after validation, so the lookup cannot miss.
func (s *Session) segFor(w *int64) *segment {
	if w == nil {
		return s.segs[len(s.segs)-1]
	}
	for _, seg := range s.segs {
		if seg.window == *w {
			return seg
		}
	}
	panic(fmt.Sprintf("stream: window %d vanished after validation", *w))
}
