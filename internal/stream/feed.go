package stream

import (
	"enframe/internal/data"
	"enframe/internal/event"
	"enframe/internal/lineage"
)

// feedDim is the dimensionality of feed tuples (load, probability-of-default
// — the synthetic sensor shape of internal/data).
const feedDim = 2

// newSegment materialises the feed segment for one window index. The
// segment is a pure function of (Config, window): positions come from
// data.Points and lineage from lineage.Attach, both seeded by a mix of the
// session seed and the window. This is what makes replay deterministic —
// any replica that applies the same delta-log prefix regenerates bit-equal
// windows.
func (s *Session) newSegment(w int64) (*segment, error) {
	seed := s.cfg.Seed + w*1000003 // decorrelate windows, keep determinism
	pts := data.Points(s.cfg.SegmentN, seed)
	objs, space, err := lineage.Attach(pts, lineage.Config{
		Scheme:          s.scheme,
		GroupSize:       s.cfg.Group,
		NumVars:         s.cfg.Vars,
		L:               s.cfg.L,
		M:               s.cfg.M,
		CertainFraction: s.cfg.Certain,
		Seed:            seed,
	})
	if err != nil {
		return nil, err
	}
	seg := &segment{
		window: w,
		objs:   objs,
		space:  space,
		varIdx: make(map[string]event.VarID, space.Len()),
		nextID: len(objs),
		dirty:  true,
	}
	for i := 0; i < space.Len(); i++ {
		seg.varIdx[space.Name(event.VarID(i))] = event.VarID(i)
	}
	return seg, nil
}

// mustSegment is newSegment for the window-advance path. Attach failures
// are purely config-dependent and NewSession already materialised the
// initial windows with this exact config, so a failure here is a bug.
func (s *Session) mustSegment(w int64) *segment {
	seg, err := s.newSegment(w)
	if err != nil {
		panic("stream: feed attach failed after initial windows succeeded: " + err.Error())
	}
	return seg
}
