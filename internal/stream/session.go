// Package stream is the incremental data plane: long-lived sessions that
// hold a compiled artifact per window segment plus an append-only,
// monotonically sequenced delta log. Probability-only deltas replay each
// affected segment's memoized decision circuit at the new marginals with
// zero recompilation — byte-identical to compiling from scratch, because
// the exact compiler's tree shape is probability-independent for complete
// circuits and replay skips zero-mass subtrees exactly like a fresh trace
// does. Structural deltas (tuple insert/delete, window advance) re-ground
// only the dirty segments through the fused emitter, and a structural
// fingerprint of the re-grounded network decides whether the old circuit
// is still valid or a re-trace is due. When the dirty fraction crosses a
// threshold the session falls back to rebuilding every live segment.
package stream

import (
	"context"
	"fmt"
	"strings"
	"time"

	"enframe/internal/core"
	"enframe/internal/lang"
	"enframe/internal/network"
	"enframe/internal/prob"

	"enframe/internal/circuit"
	"enframe/internal/event"
	"enframe/internal/lineage"
)

// Config describes a streaming session. The zero value of most fields picks
// a sensible default; Validate reports the few combinations that cannot
// work.
type Config struct {
	// Program names a builtin ("kmedoids" or "kmeans"); Source, when
	// non-empty, is an inline program and wins. MCL is not streamable —
	// its input is a similarity matrix, not a tuple window.
	Program string `json:"program,omitempty"`
	Source  string `json:"source,omitempty"`

	// K and Iter are the clustering parameters (k, iterations).
	K    int `json:"k,omitempty"`
	Iter int `json:"iter,omitempty"`

	// Targets are result-name prefixes to report; default ["Centre["].
	Targets []string `json:"targets,omitempty"`

	// Segments is the number of live window segments; SegmentN the number
	// of feed tuples each admits. Defaults 4 and 8.
	Segments int `json:"segments,omitempty"`
	SegmentN int `json:"segment_n,omitempty"`

	// MaxSegmentTuples caps a segment's size after inserts; default 64.
	MaxSegmentTuples int `json:"max_segment_tuples,omitempty"`

	// Lineage shape of the feed (see lineage.Config). Scheme is one of
	// "independent", "positive", "mutex", "conditional"; default
	// independent.
	Scheme  string  `json:"scheme,omitempty"`
	Vars    int     `json:"vars,omitempty"`
	L       int     `json:"l,omitempty"`
	M       int     `json:"m,omitempty"`
	Certain float64 `json:"certain,omitempty"`
	Group   int     `json:"group,omitempty"`

	// Seed drives the deterministic feed: segment contents are a pure
	// function of (Config, window index).
	Seed int64 `json:"seed,omitempty"`

	// Order selects the variable-order heuristic: "fanout" (default) or
	// "input".
	Order string `json:"order,omitempty"`

	// DirtyThreshold is the dirty-segment fraction at which recompute
	// abandons incrementality and rebuilds every live segment. 0 means
	// the default 0.5; negative disables the fallback entirely; a tiny
	// positive value forces full recompilation on any structural delta.
	DirtyThreshold float64 `json:"dirty_threshold,omitempty"`
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Program == "" && out.Source == "" {
		out.Program = "kmedoids"
	}
	if out.K == 0 {
		out.K = 2
	}
	if out.Iter == 0 {
		out.Iter = 2
	}
	if len(out.Targets) == 0 {
		out.Targets = []string{"Centre["}
	}
	if out.Segments == 0 {
		out.Segments = 4
	}
	if out.SegmentN == 0 {
		out.SegmentN = 8
	}
	if out.MaxSegmentTuples == 0 {
		out.MaxSegmentTuples = 64
	}
	if out.DirtyThreshold == 0 {
		out.DirtyThreshold = 0.5
	}
	return out
}

func (c *Config) heuristic() (prob.OrderHeuristic, error) {
	switch c.Order {
	case "", "fanout":
		return prob.FanoutOrder, nil
	case "input":
		return prob.InputOrder, nil
	}
	return 0, fmt.Errorf("stream: unknown order %q (want fanout or input)", c.Order)
}

func (c *Config) lineageScheme() (lineage.Scheme, error) {
	switch c.Scheme {
	case "", "independent":
		return lineage.Independent, nil
	case "positive":
		return lineage.Positive, nil
	case "mutex":
		return lineage.Mutex, nil
	case "conditional":
		return lineage.Conditional, nil
	}
	return 0, fmt.Errorf("stream: unknown scheme %q", c.Scheme)
}

func (c *Config) source() (string, error) {
	if c.Source != "" {
		return c.Source, nil
	}
	switch c.Program {
	case "kmedoids":
		return lang.KMedoidsSource, nil
	case "kmeans":
		return lang.KMeansSource, nil
	case "mcl":
		return "", fmt.Errorf("stream: mcl is not streamable (matrix-shaped input); use kmedoids or kmeans")
	}
	return "", fmt.Errorf("stream: unknown program %q", c.Program)
}

// segment is one live window: its tuples, variable space, prepared
// artifact, and (when complete) the consed decision circuit.
type segment struct {
	window int64
	objs   []lineage.Object
	space  *event.Space
	varIdx map[string]event.VarID
	nextID int // next tuple id / insert-variable suffix

	art   *core.Artifact
	circ  *circuit.Circuit // nil until built, or while incomplete
	fp    uint64
	hasFP bool
	marg  []prob.TargetBound

	dirty      bool // structure changed: re-ground and maybe re-trace
	probsDirty bool // only marginals changed: replay the circuit
}

// Session is a streaming session. All methods are safe for concurrent use;
// the session serialises pushes, so a batch observes the state left by the
// previous one.
type Session struct {
	cfg    Config
	scheme lineage.Scheme
	heur   prob.OrderHeuristic
	parsed *lang.Program

	mu         chan struct{} // capacity-1 semaphore: ctx-aware mutex
	segs       []*segment    // oldest → newest
	nextWindow int64
	seq        uint64
	log        []Delta
	broken     error // sticky compile failure; nil while healthy
}

// Marginal is one reported target bound, namespaced by window.
type Marginal struct {
	Window int64   `json:"window"`
	Name   string  `json:"name"`
	Lower  float64 `json:"lower"`
	Upper  float64 `json:"upper"`
}

// Stats describes what one Apply actually did.
type Stats struct {
	Applied        int     `json:"applied"`         // deltas in the batch
	Replayed       int     `json:"replayed"`        // segments whose circuit replayed
	Reground       int     `json:"reground"`        // segments re-grounded through the emitter
	Retraced       int     `json:"retraced"`        // segments whose circuit was re-traced
	ReusedCircuits int     `json:"reused_circuits"` // re-grounds that kept the old circuit (fingerprint hit)
	Full           bool    `json:"full"`            // threshold fallback rebuilt everything
	DirtyFraction  float64 `json:"dirty_fraction"`
	GroundMs       float64 `json:"ground_ms"`
	TraceMs        float64 `json:"trace_ms"`
	ReplayMs       float64 `json:"replay_ms"`
	ApplyMs        float64 `json:"apply_ms"` // end-to-end, including the above
}

// Update is the result of a successful Apply (or Query): the session's new
// sequence number and the marginals of every live target.
type Update struct {
	Seq       uint64     `json:"seq"`
	Marginals []Marginal `json:"marginals"`
	Stats     Stats      `json:"stats"`
}

// NewSession builds a session, materialises the initial window segments
// from the deterministic feed, and compiles them.
func NewSession(ctx context.Context, cfg Config) (*Session, error) {
	cfg = cfg.withDefaults()
	if cfg.K < 1 || cfg.Iter < 1 {
		return nil, fmt.Errorf("stream: k and iter must be >= 1")
	}
	if cfg.Segments < 1 || cfg.Segments > 32 {
		return nil, fmt.Errorf("stream: segments must be in [1, 32]")
	}
	if cfg.SegmentN < cfg.K {
		return nil, fmt.Errorf("stream: segment_n (%d) must be >= k (%d)", cfg.SegmentN, cfg.K)
	}
	if cfg.SegmentN > 64 || cfg.MaxSegmentTuples > 256 {
		return nil, fmt.Errorf("stream: segment_n <= 64 and max_segment_tuples <= 256")
	}
	if cfg.MaxSegmentTuples < cfg.SegmentN {
		return nil, fmt.Errorf("stream: max_segment_tuples (%d) must be >= segment_n (%d)", cfg.MaxSegmentTuples, cfg.SegmentN)
	}
	src, err := cfg.source()
	if err != nil {
		return nil, err
	}
	scheme, err := cfg.lineageScheme()
	if err != nil {
		return nil, err
	}
	heur, err := cfg.heuristic()
	if err != nil {
		return nil, err
	}
	toks, err := lang.Tokens(src)
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	parsed, err := lang.ParseTokens(toks)
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	s := &Session{
		cfg:    cfg,
		scheme: scheme,
		heur:   heur,
		parsed: parsed,
		mu:     make(chan struct{}, 1),
	}
	for w := int64(0); w < int64(cfg.Segments); w++ {
		seg, err := s.newSegment(w)
		if err != nil {
			return nil, fmt.Errorf("stream: %w", err)
		}
		s.segs = append(s.segs, seg)
	}
	s.nextWindow = int64(cfg.Segments)
	for _, seg := range s.segs {
		seg.dirty = true
	}
	var st Stats
	if err := s.recompute(ctx, &st); err != nil {
		return nil, err
	}
	return s, nil
}

// lock acquires the session mutex, honouring ctx cancellation.
func (s *Session) lock(ctx context.Context) error {
	select {
	case s.mu <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Session) unlock() { <-s.mu }

// Seq returns the session's current sequence number.
func (s *Session) Seq() uint64 {
	s.mu <- struct{}{}
	defer s.unlock()
	return s.seq
}

// Log returns a copy of the delta log.
func (s *Session) Log() []Delta {
	s.mu <- struct{}{}
	defer s.unlock()
	out := make([]Delta, len(s.log))
	copy(out, s.log)
	return out
}

// Windows returns the live window indices, oldest first.
func (s *Session) Windows() []int64 {
	s.mu <- struct{}{}
	defer s.unlock()
	out := make([]int64, len(s.segs))
	for i, seg := range s.segs {
		out[i] = seg.window
	}
	return out
}

// Apply validates a delta batch against the session sequence, appends it to
// the log, mutates segment state, and brings every dirty segment back to a
// compiled, evaluated state. Same (config, delta-log prefix) always yields
// byte-identical marginals: the feed is deterministic, grounding is
// deterministic, and circuit replay is byte-identical to a fresh trace.
func (s *Session) Apply(ctx context.Context, baseSeq uint64, deltas []Delta) (*Update, error) {
	if err := s.lock(ctx); err != nil {
		return nil, err
	}
	defer s.unlock()
	if s.broken != nil {
		return nil, fmt.Errorf("stream: session failed permanently: %w", s.broken)
	}
	if baseSeq != s.seq {
		return nil, &SeqError{Want: s.seq, Got: baseSeq}
	}
	if err := s.validate(deltas); err != nil {
		return nil, &ValidationError{Err: err}
	}
	start := time.Now()
	s.apply(deltas)
	s.log = append(s.log, deltas...)
	s.seq += uint64(len(deltas))
	st := Stats{Applied: len(deltas)}
	if err := s.recompute(ctx, &st); err != nil {
		// Cancellation keeps dirty flags set; the next Apply or Query
		// resumes the rebuild. Anything else is a grounding/compile bug on
		// state we validated, so the session is declared broken rather
		// than serving stale marginals.
		if ctx.Err() == nil {
			s.broken = err
		}
		return nil, err
	}
	st.ApplyMs = float64(time.Since(start)) / float64(time.Millisecond)
	return &Update{Seq: s.seq, Marginals: s.marginals(), Stats: st}, nil
}

// Query returns the current marginals without applying deltas. If an
// earlier Apply was cancelled mid-recompute, Query finishes the rebuild.
func (s *Session) Query(ctx context.Context) (*Update, error) {
	if err := s.lock(ctx); err != nil {
		return nil, err
	}
	defer s.unlock()
	if s.broken != nil {
		return nil, fmt.Errorf("stream: session failed permanently: %w", s.broken)
	}
	var st Stats
	if err := s.recompute(ctx, &st); err != nil {
		if ctx.Err() == nil {
			s.broken = err
		}
		return nil, err
	}
	return &Update{Seq: s.seq, Marginals: s.marginals(), Stats: st}, nil
}

func (s *Session) marginals() []Marginal {
	var out []Marginal
	for _, seg := range s.segs {
		for _, t := range seg.marg {
			out = append(out, Marginal{Window: seg.window, Name: t.Name, Lower: t.Lower, Upper: t.Upper})
		}
	}
	return out
}

// specFor assembles the compilation spec of one segment. The shared parsed
// program makes PrepareContext skip lexing and parsing entirely.
func (s *Session) specFor(seg *segment) core.Spec {
	init := make([]int, s.cfg.K)
	for i := range init {
		init[i] = i
	}
	return core.Spec{
		Source:      "", // Parsed wins; source only matters for error text
		Parsed:      s.parsed,
		Objects:     seg.objs,
		Space:       seg.space,
		Params:      []int{s.cfg.K, s.cfg.Iter},
		InitIndices: init,
		Targets:     s.cfg.Targets,
	}
}

// SegmentSpec returns a from-scratch compilation spec for a live window —
// the oracle the difftest and benchmarks compile independently to check
// byte-identity. The object slice is copied; the space is shared (the
// standard pipeline never mutates it).
func (s *Session) SegmentSpec(w int64) (core.Spec, error) {
	s.mu <- struct{}{}
	defer s.unlock()
	for _, seg := range s.segs {
		if seg.window == w {
			spec := s.specFor(seg)
			objs := make([]lineage.Object, len(seg.objs))
			copy(objs, seg.objs)
			spec.Objects = objs
			return spec, nil
		}
	}
	return core.Spec{}, fmt.Errorf("stream: window %d is not live", w)
}

// Heuristic returns the session's variable-order heuristic (for oracle
// compilations that must match the session's circuits bit for bit).
func (s *Session) Heuristic() prob.OrderHeuristic { return s.heur }

// recompute brings every segment back to evaluated state:
//
//   - dirty segments re-ground through the fused emitter; if the new
//     network fingerprint matches the old one the consed circuit is kept,
//     otherwise the stale circuit memo is dropped and the segment
//     re-traces;
//   - segments with only probability changes replay their circuit;
//   - when the dirty fraction reaches the threshold, all segments are
//     rebuilt (the incremental bookkeeping is no longer worth it).
func (s *Session) recompute(ctx context.Context, st *Stats) error {
	dirty := 0
	for _, seg := range s.segs {
		if seg.dirty {
			dirty++
		}
	}
	if len(s.segs) > 0 {
		st.DirtyFraction = float64(dirty) / float64(len(s.segs))
	}
	if dirty > 0 && s.cfg.DirtyThreshold >= 0 && st.DirtyFraction >= s.cfg.DirtyThreshold {
		st.Full = true
		for _, seg := range s.segs {
			seg.dirty = true
		}
	}
	for _, seg := range s.segs {
		switch {
		case seg.dirty:
			if err := s.rebuild(ctx, seg, st); err != nil {
				return err
			}
			seg.dirty, seg.probsDirty = false, false
		case seg.probsDirty:
			if err := s.replay(ctx, seg, st); err != nil {
				return err
			}
			seg.probsDirty = false
		}
	}
	return nil
}

// rebuild re-grounds a segment and re-traces its circuit unless the
// fingerprint proves the old circuit still replays this network.
func (s *Session) rebuild(ctx context.Context, seg *segment, st *Stats) error {
	t0 := time.Now()
	art, err := core.PrepareContext(ctx, s.specFor(seg))
	if err != nil {
		return fmt.Errorf("stream: window %d: re-ground: %w", seg.window, err)
	}
	st.GroundMs += float64(time.Since(t0)) / float64(time.Millisecond)
	st.Reground++
	fp := network.Fingerprint(art.Net)
	if seg.hasFP && fp == seg.fp && seg.circ != nil {
		// Structurally identical re-ground (e.g. insert+delete cancelling
		// out): the circuit replays; only the marginals may have moved.
		seg.art = art
		st.ReusedCircuits++
		return s.replay(ctx, seg, st)
	}
	seg.art, seg.fp, seg.hasFP = art, fp, true
	seg.circ = nil
	return s.retrace(ctx, seg, st)
}

// retrace compiles the segment's circuit from its prepared artifact and
// records the resulting marginals.
func (s *Session) retrace(ctx context.Context, seg *segment, st *Stats) error {
	t0 := time.Now()
	c, res, _, err := seg.art.Circuit(ctx, prob.Options{Heuristic: s.heur})
	st.TraceMs += float64(time.Since(t0)) / float64(time.Millisecond)
	if err != nil {
		return fmt.Errorf("stream: window %d: trace: %w", seg.window, err)
	}
	st.Retraced++
	if c.Complete() {
		seg.circ = c
	} else {
		// Boundary probabilities pruned subtrees out of the trace; the
		// circuit is only valid at these exact marginals, so drop it and
		// re-trace on the next change. Marginals remain exact either way.
		seg.circ = nil
	}
	seg.marg = res.Targets
	return nil
}

// replay re-evaluates the segment's memoized circuit at the space's current
// marginals — the zero-recompilation fast path. Incomplete segments (no
// stored circuit) fall back to a fresh trace, which is just as exact.
func (s *Session) replay(ctx context.Context, seg *segment, st *Stats) error {
	if seg.circ == nil {
		return s.retrace(ctx, seg, st)
	}
	t0 := time.Now()
	res, err := prob.EvalCircuit(seg.circ, prob.SpaceProbs(seg.space))
	st.ReplayMs += float64(time.Since(t0)) / float64(time.Millisecond)
	if err != nil {
		return fmt.Errorf("stream: window %d: replay: %w", seg.window, err)
	}
	st.Replayed++
	seg.marg = res.Targets
	return nil
}

// VarNames returns the variable names of a live window, in declaration
// order — what a client may address with prob deltas.
func (s *Session) VarNames(w int64) ([]string, error) {
	s.mu <- struct{}{}
	defer s.unlock()
	for _, seg := range s.segs {
		if seg.window == w {
			out := make([]string, seg.space.Len())
			for i := range out {
				out[i] = seg.space.Name(event.VarID(i))
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("stream: window %d is not live", w)
}

// TupleIDs returns the live tuple ids of a window.
func (s *Session) TupleIDs(w int64) ([]int, error) {
	s.mu <- struct{}{}
	defer s.unlock()
	for _, seg := range s.segs {
		if seg.window == w {
			out := make([]int, len(seg.objs))
			for i, o := range seg.objs {
				out[i] = o.ID
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("stream: window %d is not live", w)
}

// Describe summarises the session for status endpoints.
func (s *Session) Describe() string {
	s.mu <- struct{}{}
	defer s.unlock()
	wins := make([]string, len(s.segs))
	for i, seg := range s.segs {
		wins[i] = fmt.Sprintf("%d(%dt/%dv)", seg.window, len(seg.objs), seg.space.Len())
	}
	return fmt.Sprintf("seq=%d windows=[%s]", s.seq, strings.Join(wins, " "))
}
