package stream_test

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"enframe/internal/core"
	"enframe/internal/prob"
	"enframe/internal/stream"
)

func testConfig() stream.Config {
	return stream.Config{
		Program:  "kmedoids",
		K:        2,
		Iter:     2,
		Segments: 3,
		SegmentN: 5,
		Group:    2,
		Seed:     11,
	}
}

func fp(v float64) *float64 { return &v }

func mustSession(t *testing.T, cfg stream.Config) *stream.Session {
	t.Helper()
	s, err := stream.NewSession(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustApply(t *testing.T, s *stream.Session, base uint64, ds []stream.Delta) *stream.Update {
	t.Helper()
	u, err := s.Apply(context.Background(), base, ds)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// sameMarginals asserts bitwise equality — the streaming plane's contract
// is byte-identity, not approximate agreement.
func sameMarginals(t *testing.T, got, want []stream.Marginal, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d marginals, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Window != w.Window || g.Name != w.Name ||
			math.Float64bits(g.Lower) != math.Float64bits(w.Lower) ||
			math.Float64bits(g.Upper) != math.Float64bits(w.Upper) {
			t.Fatalf("%s: marginal %d differs:\n  got  %+v (bits %x/%x)\n  want %+v (bits %x/%x)",
				label, i, g, math.Float64bits(g.Lower), math.Float64bits(g.Upper),
				w, math.Float64bits(w.Lower), math.Float64bits(w.Upper))
		}
	}
}

// oracleMarginals recompiles every live window from scratch — fresh
// artifact, fresh trace, fresh evaluation — through the standard pipeline.
func oracleMarginals(t *testing.T, s *stream.Session) []stream.Marginal {
	t.Helper()
	ctx := context.Background()
	var out []stream.Marginal
	for _, w := range s.Windows() {
		spec, err := s.SegmentSpec(w)
		if err != nil {
			t.Fatal(err)
		}
		art, err := core.PrepareContext(ctx, spec)
		if err != nil {
			t.Fatalf("oracle window %d: %v", w, err)
		}
		_, res, _, err := art.Circuit(ctx, prob.Options{Heuristic: s.Heuristic()})
		if err != nil {
			t.Fatalf("oracle window %d: %v", w, err)
		}
		for _, tb := range res.Targets {
			out = append(out, stream.Marginal{Window: w, Name: tb.Name, Lower: tb.Lower, Upper: tb.Upper})
		}
	}
	return out
}

func TestProbDeltaReplaysWithoutRecompilation(t *testing.T) {
	s := mustSession(t, testConfig())
	vars, err := s.VarNames(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) == 0 {
		t.Fatal("window 0 has no variables")
	}
	u := mustApply(t, s, 0, []stream.Delta{
		{Op: stream.OpProb, Window: i64(0), Var: vars[0], P: fp(0.31)},
	})
	if u.Seq != 1 {
		t.Fatalf("seq = %d, want 1", u.Seq)
	}
	if u.Stats.Replayed != 1 || u.Stats.Reground != 0 || u.Stats.Retraced != 0 {
		t.Fatalf("prob delta did not take the replay fast path: %+v", u.Stats)
	}
	sameMarginals(t, u.Marginals, oracleMarginals(t, s), "prob replay vs scratch")
}

func TestStructuralDeltaRegroundsOnlyDirtySegment(t *testing.T) {
	cfg := testConfig()
	cfg.Segments = 4 // 1 dirty of 4 = 0.25 < default threshold 0.5
	s := mustSession(t, cfg)
	u := mustApply(t, s, 0, []stream.Delta{
		{Op: stream.OpInsert, Window: i64(2), Pos: []float64{0.4, 0.6}, P: fp(0.5)},
	})
	if u.Stats.Full {
		t.Fatalf("single-segment insert triggered full recompilation: %+v", u.Stats)
	}
	if u.Stats.Reground != 1 || u.Stats.Retraced != 1 {
		t.Fatalf("insert should re-ground and re-trace exactly one segment: %+v", u.Stats)
	}
	sameMarginals(t, u.Marginals, oracleMarginals(t, s), "insert vs scratch")

	// Delete the inserted tuple again; still one dirty segment.
	ids, err := s.TupleIDs(2)
	if err != nil {
		t.Fatal(err)
	}
	u = mustApply(t, s, u.Seq, []stream.Delta{
		{Op: stream.OpDelete, Window: i64(2), ID: ids[len(ids)-1]},
	})
	if u.Stats.Reground != 1 || u.Stats.Full {
		t.Fatalf("delete stats: %+v", u.Stats)
	}
	sameMarginals(t, u.Marginals, oracleMarginals(t, s), "delete vs scratch")
}

func TestDirtyThresholdFallsBackToFullRecompile(t *testing.T) {
	cfg := testConfig()
	cfg.Segments = 3
	s := mustSession(t, cfg)
	// Two dirty of three = 0.67 >= 0.5 → full rebuild.
	u := mustApply(t, s, 0, []stream.Delta{
		{Op: stream.OpInsert, Window: i64(0), Pos: []float64{0.2, 0.8}, P: fp(0.4)},
		{Op: stream.OpInsert, Window: i64(1), Pos: []float64{0.7, 0.1}, P: fp(0.6)},
	})
	if !u.Stats.Full {
		t.Fatalf("dirty fraction %.2f did not trigger full recompilation: %+v", u.Stats.DirtyFraction, u.Stats)
	}
	if u.Stats.Reground != 3 {
		t.Fatalf("full recompilation should re-ground all 3 segments: %+v", u.Stats)
	}
	sameMarginals(t, u.Marginals, oracleMarginals(t, s), "full fallback vs scratch")
}

func TestWindowAdvance(t *testing.T) {
	s := mustSession(t, testConfig())
	u := mustApply(t, s, 0, []stream.Delta{{Op: stream.OpAdvance, N: 2}})
	wins := s.Windows()
	if len(wins) != 3 || wins[0] != 2 || wins[2] != 4 {
		t.Fatalf("windows after advance 2 = %v, want [2 3 4]", wins)
	}
	sameMarginals(t, u.Marginals, oracleMarginals(t, s), "advance vs scratch")
}

func TestSequenceDiscipline(t *testing.T) {
	s := mustSession(t, testConfig())
	vars, _ := s.VarNames(0)
	d := []stream.Delta{{Op: stream.OpProb, Window: i64(0), Var: vars[0], P: fp(0.2)}}

	before := mustApply(t, s, 0, d) // seq 0 → 1

	// Duplicate delivery: same base again.
	_, err := s.Apply(context.Background(), 0, d)
	var se *stream.SeqError
	if !errors.As(err, &se) || se.Want != 1 || se.Got != 0 {
		t.Fatalf("duplicate push: err = %v, want SeqError{Want:1, Got:0}", err)
	}
	// Out-of-order delivery: base from the future.
	_, err = s.Apply(context.Background(), 7, d)
	if !errors.As(err, &se) || se.Want != 1 || se.Got != 7 {
		t.Fatalf("future push: err = %v, want SeqError{Want:1, Got:7}", err)
	}
	// Rejected pushes must not have moved anything.
	if s.Seq() != 1 {
		t.Fatalf("seq moved to %d after rejected pushes", s.Seq())
	}
	q, err := s.Query(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameMarginals(t, q.Marginals, before.Marginals, "state after rejected pushes")
}

func TestBatchValidationIsAtomic(t *testing.T) {
	s := mustSession(t, testConfig())
	vars, _ := s.VarNames(0)
	before, _ := s.Query(context.Background())
	// First delta is valid, second is not: nothing may stick.
	_, err := s.Apply(context.Background(), 0, []stream.Delta{
		{Op: stream.OpProb, Window: i64(0), Var: vars[0], P: fp(0.9)},
		{Op: stream.OpProb, Window: i64(0), Var: "no-such-var", P: fp(0.5)},
	})
	if err == nil {
		t.Fatal("invalid batch was accepted")
	}
	if s.Seq() != 0 {
		t.Fatalf("seq = %d after rejected batch, want 0", s.Seq())
	}
	after, _ := s.Query(context.Background())
	sameMarginals(t, after.Marginals, before.Marginals, "state after rejected batch")
}

func TestBatchCannotTouchWindowAdmittedInSameBatch(t *testing.T) {
	s := mustSession(t, testConfig())
	_, err := s.Apply(context.Background(), 0, []stream.Delta{
		{Op: stream.OpAdvance, N: 1},
		{Op: stream.OpInsert, Pos: []float64{0.1, 0.2}, P: fp(0.5)}, // nil window = newest = just admitted
	})
	if err == nil {
		t.Fatal("delta addressing a window admitted in the same batch was accepted")
	}
	if s.Seq() != 0 {
		t.Fatalf("seq = %d after rejected batch, want 0", s.Seq())
	}
}

func TestDeleteCannotDropBelowK(t *testing.T) {
	cfg := testConfig()
	cfg.SegmentN = 2 // already at k
	s := mustSession(t, cfg)
	ids, _ := s.TupleIDs(0)
	_, err := s.Apply(context.Background(), 0, []stream.Delta{
		{Op: stream.OpDelete, Window: i64(0), ID: ids[0]},
	})
	if err == nil {
		t.Fatal("delete below k was accepted")
	}
}

// TestDeterministicReplay drives two independent sessions with the same
// config through the same delta-log prefix and demands byte-identical
// marginals at every step — the replicated-replay contract.
func TestDeterministicReplay(t *testing.T) {
	a := mustSession(t, testConfig())
	b := mustSession(t, testConfig())
	vars, _ := a.VarNames(1)
	batches := [][]stream.Delta{
		{{Op: stream.OpProb, Window: i64(1), Var: vars[0], P: fp(0.77)}},
		{{Op: stream.OpInsert, Window: i64(2), Pos: []float64{0.3, 0.9}, P: fp(0.25)}},
		{{Op: stream.OpAdvance}},
		nil, // rebuilt below once the advance reveals the newest window
	}
	seq := uint64(0)
	for _, batch := range batches {
		if batch == nil {
			// After the advance, pick the newest window's first variable
			// and push a boundary probability (exercises the incomplete-
			// circuit path on both replicas).
			nv, err := a.VarNames(a.Windows()[len(a.Windows())-1])
			if err != nil {
				t.Fatal(err)
			}
			batch = []stream.Delta{{Op: stream.OpProb, Var: nv[0], P: fp(0)}}
		}
		ua := mustApply(t, a, seq, batch)
		ub := mustApply(t, b, seq, batch)
		sameMarginals(t, ua.Marginals, ub.Marginals, "replica divergence")
		seq = ua.Seq
	}
}

// TestThresholdDoesNotChangeResults runs the same log through an always-full
// session and a never-full session: incrementality is an optimisation, not
// a semantics.
func TestThresholdDoesNotChangeResults(t *testing.T) {
	full := testConfig()
	full.DirtyThreshold = 1e-9 // any dirt → rebuild everything
	incr := testConfig()
	incr.DirtyThreshold = -1 // never fall back
	a := mustSession(t, full)
	b := mustSession(t, incr)
	vars, _ := a.VarNames(0)
	batches := [][]stream.Delta{
		{{Op: stream.OpInsert, Window: i64(0), Pos: []float64{0.9, 0.9}, P: fp(0.5)}},
		{{Op: stream.OpProb, Window: i64(0), Var: vars[0], P: fp(1)}},
		{{Op: stream.OpDelete, Window: i64(1), ID: 0}},
		{{Op: stream.OpProb, Window: i64(0), Var: vars[0], P: fp(0.42)}},
	}
	seq := uint64(0)
	for _, batch := range batches {
		ua := mustApply(t, a, seq, batch)
		ub := mustApply(t, b, seq, batch)
		sameMarginals(t, ua.Marginals, ub.Marginals, "threshold divergence")
		seq = ua.Seq
	}
}

// TestConcurrentQueries hammers Query from many goroutines while Apply
// runs; meaningful under -race.
func TestConcurrentQueries(t *testing.T) {
	s := mustSession(t, testConfig())
	vars, _ := s.VarNames(0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.Query(context.Background()); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	seq := uint64(0)
	for i := 0; i < 8; i++ {
		p := 0.1 + float64(i)*0.1
		u := mustApply(t, s, seq, []stream.Delta{
			{Op: stream.OpProb, Window: i64(0), Var: vars[0], P: fp(p)},
		})
		seq = u.Seq
	}
	close(stop)
	wg.Wait()
}

func i64(v int64) *int64 { return &v }
