package difftest

import (
	"fmt"
	"sync/atomic"
	"testing"

	"enframe/internal/gen"
	"enframe/internal/lang"
	"enframe/internal/network"
	"enframe/internal/prob"
	"enframe/internal/translate"
)

// TestFlatLegacyEquivalence is the oracle check for the bit-parallel flat
// compilation core: for a batch of generated programs, compiling one network
// with the packed flat core (the default) and with the legacy nmask walker
// (Options.LegacyCore) must produce bit-identical marginals, bit-identical
// ε-bounds under the hybrid budget strategy, and identical work counters —
// the two cores are required to perform the same floating-point operations
// in the same order, so Branches, Assignments, MaskUpdates, and MaxDepth
// must agree exactly, not approximately. Runs parallel per seed, so
// `go test -race` also exercises the cached network.Flat layout under
// concurrent first use.
func TestFlatLegacyEquivalence(t *testing.T) {
	const seeds = 300
	minChecked := int64(230)
	if testing.Short() {
		minChecked = 30
	}
	var checked atomic.Int64
	for seed := int64(1); seed <= seeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			if checkFlatLegacy(t, seed) {
				checked.Add(1)
			}
		})
	}
	t.Cleanup(func() {
		if got := checked.Load(); got < minChecked {
			t.Errorf("only %d/%d seeds produced comparable networks (need ≥%d)", got, seeds, minChecked)
		}
	})
}

// checkFlatLegacy builds one generated program and compiles it with both
// cores under the exact and hybrid strategies; it reports whether the seed
// yielded a comparable network.
func checkFlatLegacy(t *testing.T, seed int64) bool {
	p := gen.New(seed)
	in := p.Input
	prog, err := lang.Parse(p.Source())
	if err != nil {
		t.Skipf("parse: %v", err)
	}
	ext := translate.External{
		Objects:     in.Objects,
		Space:       in.Space,
		Params:      in.Params,
		InitIndices: in.InitIndices,
	}
	fb := network.NewBuilder(in.Space, in.Metric)
	fres, err := translate.TranslateInto(prog, ext, fb)
	if err != nil {
		t.Skipf("translate: %v", err)
	}
	n := 0
	for _, s := range p.Syms() {
		if !s.IsBool {
			continue
		}
		if id, ok := fres.BoolNode(s.Name); ok {
			fb.Target(s.Name, id)
			n++
		}
	}
	if n == 0 {
		t.Skip("no Boolean targets")
	}
	net := fb.Build()

	for _, tc := range []struct {
		stage string
		opts  prob.Options
	}{
		{"exact", prob.Options{Strategy: prob.Exact}},
		{"hybrid", prob.Options{Strategy: prob.Hybrid, Epsilon: 0.05}},
	} {
		flatOpts, legacyOpts := tc.opts, tc.opts
		legacyOpts.LegacyCore = true
		flat, err := prob.Compile(net, flatOpts)
		if err != nil {
			t.Fatalf("%s: flat compile: %v", tc.stage, err)
		}
		legacy, err := prob.Compile(net, legacyOpts)
		if err != nil {
			t.Fatalf("%s: legacy compile: %v", tc.stage, err)
		}
		compareBits(t, seed, p, tc.stage+"-core", legacy, flat)
		compareCoreStats(t, seed, p, tc.stage, &legacy.Stats, &flat.Stats)
	}
	return true
}

// compareCoreStats asserts the two cores did the identical amount of work:
// any drift in node or branch counts means the flat core took a different
// decision somewhere, even if the marginals happened to agree.
func compareCoreStats(t *testing.T, seed int64, p *gen.Program, stage string, legacy, flat *prob.Stats) {
	t.Helper()
	type cnt struct {
		name         string
		legacy, flat int64
	}
	for _, c := range []cnt{
		{"branches", legacy.Branches, flat.Branches},
		{"assignments", legacy.Assignments, flat.Assignments},
		{"mask_updates", legacy.MaskUpdates, flat.MaskUpdates},
		{"budget_prunes", legacy.BudgetPrunes, flat.BudgetPrunes},
		{"max_depth", legacy.MaxDepth, flat.MaxDepth},
	} {
		if c.legacy != c.flat {
			t.Fatalf("seed %d: %s: %s: legacy %d vs flat %d\nprogram:\n%s",
				seed, stage, c.name, c.legacy, c.flat, p.Source())
		}
	}
}
