//go:build race

package difftest

// raceEnabled scales down bulk seed counts: the race detector slows world
// enumeration by roughly an order of magnitude, and the concurrency
// coverage does not improve with more seeds.
const raceEnabled = true
