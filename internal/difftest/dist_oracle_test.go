package difftest

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"enframe/internal/core"
	"enframe/internal/dist"
	"enframe/internal/prob"
	"enframe/internal/server"
)

// The distributed-vs-local oracle over real TCP: for a spread of generator
// seeds, exact compilation shipped to dist workers must reproduce the
// sequential in-process compile bit for bit, and the budgeted strategy must
// keep its ε-contract. This is the network twin of checkProgram's
// in-process distributed stage — it additionally covers the wire codec, the
// worker's spec re-resolution, and the coordinator's ordered merge.

// startOracleWorkers boots in-process TCP workers resolving specs the same
// way `enframe worker` does.
func startOracleWorkers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		w, err := dist.NewWorker(dist.WorkerConfig{
			Resolver: func(specJSON []byte) (core.Spec, string, error) {
				var req server.RunRequest
				if err := json.Unmarshal(specJSON, &req); err != nil {
					return core.Spec{}, "", err
				}
				return server.BuildSpec(req)
			},
			Slots: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		go func() { _ = w.Serve() }()
		t.Cleanup(func() { _ = w.Close() })
		addrs[i] = w.Addr()
	}
	return addrs
}

func TestDistributedOracleOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP oracle sweep is not short")
	}
	ctx := context.Background()
	pool, err := dist.NewPool(ctx, dist.PoolConfig{Addrs: startOracleWorkers(t, 2)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = pool.Close() })

	checked := 0
	for seed := int64(1); seed <= 25; seed++ {
		req := server.RunRequest{Data: server.DataSpec{Kind: "gen", Seed: seed}}
		spec, key, err := server.BuildSpec(req)
		if err != nil {
			// Some seeds generate programs without Boolean targets; the
			// sweep below asserts enough seeds survive.
			continue
		}
		checked++
		art, err := core.PrepareContext(ctx, spec)
		if err != nil {
			t.Fatalf("seed %d: prepare: %v", seed, err)
		}
		specJSON, err := json.Marshal(server.ArtifactRequest(req))
		if err != nil {
			t.Fatal(err)
		}

		for _, depth := range []int{1, 3} {
			opts := prob.Options{Strategy: prob.Exact, JobDepth: depth}
			opts.Order = art.Order(opts.Heuristic)
			want, err := prob.CompileCtx(ctx, art.Net, opts)
			if err != nil {
				t.Fatalf("seed %d depth %d: local: %v", seed, depth, err)
			}
			exec := pool.Session(key, specJSON, dist.FromOptions(opts))
			got, err := prob.CompileExec(ctx, art.Net, opts, exec)
			if err != nil {
				t.Fatalf("seed %d depth %d: remote: %v", seed, depth, err)
			}
			if f := checkSame(got, want, fmt.Sprintf("tcp seed=%d depth=%d", seed, depth)); f != nil {
				t.Fatal(f)
			}
			for i, gt := range got.Targets {
				wt := want.Targets[i]
				if math.Float64bits(gt.Lower) != math.Float64bits(wt.Lower) ||
					math.Float64bits(gt.Upper) != math.Float64bits(wt.Upper) {
					t.Fatalf("seed %d depth %d: %s not bit-identical: [%x,%x] vs [%x,%x]",
						seed, depth, gt.Name,
						math.Float64bits(gt.Lower), math.Float64bits(gt.Upper),
						math.Float64bits(wt.Lower), math.Float64bits(wt.Upper))
				}
			}

			// Cross-core over the wire: the remote workers splice jobs with
			// the flat core; a sequential legacy-walker compile must land on
			// the same bits, closing the loop remote-flat ↔ local-legacy.
			legacyOpts := opts
			legacyOpts.LegacyCore = true
			legacy, err := prob.CompileCtx(ctx, art.Net, legacyOpts)
			if err != nil {
				t.Fatalf("seed %d depth %d: legacy local: %v", seed, depth, err)
			}
			for i, gt := range got.Targets {
				lt := legacy.Targets[i]
				if math.Float64bits(gt.Lower) != math.Float64bits(lt.Lower) ||
					math.Float64bits(gt.Upper) != math.Float64bits(lt.Upper) {
					t.Fatalf("seed %d depth %d: %s: remote flat [%x,%x] vs local legacy [%x,%x]",
						seed, depth, gt.Name,
						math.Float64bits(gt.Lower), math.Float64bits(gt.Upper),
						math.Float64bits(lt.Lower), math.Float64bits(lt.Upper))
				}
			}
		}

		// Budgeted strategy over the wire: the ε-contract must hold even
		// though job budgets were withdrawn and merged remotely.
		const eps = 0.05
		opts := prob.Options{Strategy: prob.Hybrid, Epsilon: eps, JobDepth: 2}
		opts.Order = art.Order(opts.Heuristic)
		exec := pool.Session(key, specJSON, dist.FromOptions(opts))
		got, err := prob.CompileExec(ctx, art.Net, opts, exec)
		if err != nil {
			t.Fatalf("seed %d hybrid: remote: %v", seed, err)
		}
		for _, tb := range got.Targets {
			if tb.Lower < -tol || tb.Upper > 1+tol || tb.Lower > tb.Upper+tol {
				t.Fatalf("seed %d hybrid: %s has insane bounds [%g, %g]", seed, tb.Name, tb.Lower, tb.Upper)
			}
			if gap := tb.Upper - tb.Lower; gap > 2*eps+tol {
				t.Fatalf("seed %d hybrid: %s gap %g exceeds 2ε=%g", seed, tb.Name, gap, 2*eps)
			}
		}
	}
	if checked < 15 {
		t.Fatalf("only %d/25 seeds produced Boolean targets; sweep too thin", checked)
	}
}
