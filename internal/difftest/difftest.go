// Package difftest is the end-to-end differential verification harness. For
// one generated program (internal/gen) it computes every checked symbol
// through five independent paths and asserts they agree:
//
//  1. the naïve per-world oracle — enumerate all possible worlds
//     (internal/worlds) and run the interpreter (internal/interp) in each;
//  2. the full pipeline — translate to an event program
//     (internal/translate), ground it into an event network
//     (internal/network), and compile marginal probabilities exactly
//     (internal/prob) with the primary compilation core;
//  3. the reference recompute evaluator (prob.CompileRef);
//  4. the opposite compilation core (prob.Options.LegacyCore flipped) —
//     required to be bit-identical to path 2, not merely within tolerance:
//     the bit-parallel flat core and the legacy nmask walker must perform
//     the same floating-point operations in the same order;
//  5. the knowledge-compilation circuit backend (prob.Circuit) — an exact
//     trace recorded into an arithmetic circuit and replayed, likewise
//     required to be bit-identical to path 2 including work counters.
//
// On top of the exact agreement it checks the ε-approximation contract of
// the eager, lazy, and hybrid strategies (truth within bounds, gap ≤ 2ε,
// estimate within ε) and that the distributed runner returns bounds equal
// to the sequential compiler for every Workers × JobDepth combination.
//
// A failing program is shrunk by dropping blocks while the differential
// failure persists; the reported error carries the one seed that
// reproduces it via `enframe fuzz -seed N -n 1`.
package difftest

import (
	"fmt"
	"math"
	"runtime/debug"
	"strconv"
	"strings"

	"enframe/internal/event"
	"enframe/internal/gen"
	"enframe/internal/interp"
	"enframe/internal/lang"
	"enframe/internal/lineage"
	"enframe/internal/network"
	"enframe/internal/prob"
	"enframe/internal/translate"
	"enframe/internal/worlds"
)

// tol is the agreement tolerance for paths that are exact by construction.
const tol = 1e-9

// Options selects which configurations Check exercises beyond the always-on
// exact/reference/oracle comparison.
type Options struct {
	// Epsilons are the error budgets for the eager/lazy/hybrid runs.
	Epsilons []float64
	// Workers and JobDepths are crossed to exercise the distributed runner.
	Workers   []int
	JobDepths []int
	// NoShrink reports the original failing program without shrinking.
	NoShrink bool
	// LegacyCore makes the legacy nmask walker the primary core for the
	// whole matrix (exact, approximation, distributed); the cross-core
	// stage then checks the flat core against it. Default is the reverse:
	// flat primary, legacy cross-checked.
	LegacyCore bool
}

// Quick is the per-seed configuration used for bulk runs and fuzzing.
func Quick() Options {
	return Options{Epsilons: []float64{0.05}, Workers: []int{2}, JobDepths: []int{3}}
}

// Full crosses more approximation and distribution settings per seed.
func Full() Options {
	return Options{
		Epsilons:  []float64{0.01, 0.1},
		Workers:   []int{1, 2, 4},
		JobDepths: []int{1, 3},
	}
}

// Failure describes one differential disagreement.
type Failure struct {
	Seed   int64
	Stage  string // which path or configuration disagreed
	Detail string
	Source string // (possibly shrunk) program text
}

func (f *Failure) Error() string {
	return fmt.Sprintf("difftest: seed %d: %s: %s\nreproduce: enframe fuzz -seed %d -n 1\nprogram:\n%s",
		f.Seed, f.Stage, f.Detail, f.Seed, f.Source)
}

// setupStages are failure stages that do not indicate a differential bug in
// a shrink candidate (dropping a block can orphan a reference, which is the
// candidate's fault, not the pipeline's).
var setupStages = map[string]bool{"parse": true, "translate": true, "setup": true}

// Check generates the program of the given seed, runs the full differential
// matrix, and returns a *Failure (shrunk unless opt.NoShrink) or nil.
func Check(seed int64, opt Options) error {
	p := gen.New(seed)
	f := checkProgram(p, opt)
	if f == nil {
		return nil
	}
	if !opt.NoShrink {
		p, f = shrink(p, f, opt)
	}
	f.Seed = seed
	f.Source = p.Source()
	return f
}

// shrink repeatedly drops whole blocks while some differential stage still
// fails. Candidates that fail during setup are rejected: those failures are
// artifacts of the removal, not of the pipeline.
func shrink(p *gen.Program, f *Failure, opt Options) (*gen.Program, *Failure) {
	for improved := true; improved; {
		improved = false
		for i := len(p.Blocks) - 1; i >= 0; i-- {
			if len(p.Blocks) <= 1 {
				break
			}
			cand := p.WithoutBlock(i)
			cf := checkProgram(cand, opt)
			if cf != nil && !setupStages[cf.Stage] {
				p, f = cand, cf
				improved = true
				break
			}
		}
	}
	return p, f
}

// checkProgram runs the differential matrix over one program. Any panic in
// any path is converted into a Failure rather than crashing the harness.
func checkProgram(p *gen.Program, opt Options) (f *Failure) {
	defer func() {
		if r := recover(); r != nil {
			f = &Failure{Stage: "panic", Detail: fmt.Sprintf("%v\n%s", r, debug.Stack())}
		}
	}()

	prog, err := lang.Parse(p.Source())
	if err != nil {
		return &Failure{Stage: "parse", Detail: err.Error()}
	}
	if err := lang.Validate(prog); err != nil {
		return &Failure{Stage: "parse", Detail: "validate: " + err.Error()}
	}
	in := p.Input
	res, err := translate.Translate(prog, translate.External{
		Objects:     in.Objects,
		Space:       in.Space,
		Params:      in.Params,
		InitIndices: in.InitIndices,
	})
	if err != nil {
		return &Failure{Stage: "translate", Detail: err.Error()}
	}
	syms := p.Syms()

	// Path 1: the per-world oracle. Every world's interpreter run must
	// match the translated events, and the Boolean marginals accumulated
	// here are the ground truth for the network paths below.
	truth := map[string]float64{}
	mass := 0.0
	evs := lineage.Events(in.Objects)
	worlds.Enumerate(in.Space, func(nu event.SliceValuation, pw float64) bool {
		mass += pw
		present := worlds.Presence(evs, nu)
		w, err := interp.Run(prog, interp.External{
			Objects:     in.Objects,
			Present:     present,
			Params:      in.Params,
			InitIndices: in.InitIndices,
			Metric:      in.Metric,
		})
		if err != nil {
			f = &Failure{Stage: "interp", Detail: fmt.Sprintf("world %v: %v", nu, err)}
			return false
		}
		ev := event.NewEvaluator(nu, in.Metric)
		for _, s := range syms {
			want, err := worldValue(w, s.Name)
			if err != nil {
				f = &Failure{Stage: "oracle", Detail: fmt.Sprintf("world %v: %v", nu, err)}
				return false
			}
			var got event.Value
			if b, ok := res.BoolEvent(s.Name); ok && s.IsBool {
				got = event.Bool(ev.EvalExpr(b))
			} else if n, ok := res.NumEvent(s.Name); ok {
				got = ev.EvalNum(n)
			} else {
				f = &Failure{Stage: "oracle", Detail: fmt.Sprintf("no translated binding for %s", s.Name)}
				return false
			}
			if !got.Equal(want) && !got.AlmostEqual(want, tol) {
				f = &Failure{
					Stage:  "oracle",
					Detail: fmt.Sprintf("world %v: %s: translated %v vs interpreted %v", nu, s.Name, got, want),
				}
				return false
			}
			if s.IsBool && want.B {
				truth[s.Name] += pw
			}
		}
		return true
	})
	if f != nil {
		return f
	}
	if math.Abs(mass-1) > tol {
		return &Failure{Stage: "oracle", Detail: fmt.Sprintf("world probabilities sum to %g", mass)}
	}

	// Paths 2 and 3: ground the event program into a network and compile
	// the Boolean symbols' marginals.
	var targets []string
	labelToSym := map[string]string{}
	for _, s := range syms {
		if !s.IsBool {
			continue
		}
		label, ok := res.Label(s.Name)
		if !ok {
			return &Failure{Stage: "setup", Detail: fmt.Sprintf("no declaration label for %s", s.Name)}
		}
		targets = append(targets, label)
		labelToSym[label] = s.Name
	}
	if len(targets) == 0 {
		return &Failure{Stage: "setup", Detail: "no Boolean targets"}
	}
	net, err := network.FromProgram(res.Program, in.Metric, targets)
	if err != nil {
		return &Failure{Stage: "network", Detail: err.Error()}
	}

	exact, err := prob.Compile(net, prob.Options{Strategy: prob.Exact, LegacyCore: opt.LegacyCore})
	if err != nil {
		return &Failure{Stage: "exact", Detail: err.Error()}
	}
	if f := checkExact(exact, "exact", truth, labelToSym); f != nil {
		return f
	}
	// Path 4: the opposite compilation core. Bit-identical, not tolerant:
	// both cores are contracted to the same float-op sequence.
	cross, err := prob.Compile(net, prob.Options{Strategy: prob.Exact, LegacyCore: !opt.LegacyCore})
	if err != nil {
		return &Failure{Stage: "cross-core", Detail: err.Error()}
	}
	if f := checkBitIdentical(cross, exact, "cross-core"); f != nil {
		return f
	}
	// Path 5: the knowledge-compilation circuit backend. Tracing the exact
	// walk into a circuit and replaying it must reproduce the exact
	// compiler's float-op sequence — bounds and work counters bit-identical.
	circ, err := prob.Compile(net, prob.Options{Strategy: prob.Circuit, LegacyCore: opt.LegacyCore})
	if err != nil {
		return &Failure{Stage: "circuit", Detail: err.Error()}
	}
	if f := checkBitIdentical(circ, exact, "circuit"); f != nil {
		return f
	}
	ref, err := prob.CompileRef(net, prob.Options{Strategy: prob.Exact})
	if err != nil {
		return &Failure{Stage: "reference", Detail: err.Error()}
	}
	if f := checkExact(ref, "reference", truth, labelToSym); f != nil {
		return f
	}
	order, err := prob.Compile(net, prob.Options{Strategy: prob.Exact, Heuristic: prob.InputOrder, LegacyCore: opt.LegacyCore})
	if err != nil {
		return &Failure{Stage: "order", Detail: err.Error()}
	}
	if f := checkExact(order, "order", truth, labelToSym); f != nil {
		return f
	}

	// Approximation contract: truth within bounds, gap ≤ 2ε, estimate
	// within ε — for every strategy × ε.
	for _, eps := range opt.Epsilons {
		for _, strat := range []prob.Strategy{prob.Eager, prob.Lazy, prob.Hybrid} {
			r, err := prob.Compile(net, prob.Options{Strategy: strat, Epsilon: eps, LegacyCore: opt.LegacyCore})
			stage := fmt.Sprintf("%v ε=%g", strat, eps)
			if err != nil {
				return &Failure{Stage: stage, Detail: err.Error()}
			}
			if f := checkApprox(r, stage, eps, truth, labelToSym); f != nil {
				return f
			}
		}
	}

	// Distributed runner: bounds must equal the sequential exact compile
	// for every Workers × JobDepth combination, and the hybrid strategy
	// must keep its ε contract when distributed.
	for _, w := range opt.Workers {
		for _, d := range opt.JobDepths {
			r, err := prob.Compile(net, prob.Options{Strategy: prob.Exact, Workers: w, JobDepth: d, LegacyCore: opt.LegacyCore})
			stage := fmt.Sprintf("distributed W=%d depth=%d", w, d)
			if err != nil {
				return &Failure{Stage: stage, Detail: err.Error()}
			}
			if f := checkSame(r, exact, stage); f != nil {
				return f
			}
		}
	}
	if len(opt.Epsilons) > 0 && len(opt.Workers) > 0 {
		eps, w := opt.Epsilons[0], opt.Workers[len(opt.Workers)-1]
		r, err := prob.Compile(net, prob.Options{Strategy: prob.Hybrid, Epsilon: eps, Workers: w, LegacyCore: opt.LegacyCore})
		stage := fmt.Sprintf("distributed-hybrid W=%d ε=%g", w, eps)
		if err != nil {
			return &Failure{Stage: stage, Detail: err.Error()}
		}
		if f := checkApprox(r, stage, eps, truth, labelToSym); f != nil {
			return f
		}
	}
	return nil
}

// checkExact asserts an exact-mode result: every target pinned to the
// oracle marginal with a vanishing gap.
func checkExact(r *prob.Result, stage string, truth map[string]float64, labelToSym map[string]string) *Failure {
	for _, tb := range r.Targets {
		sym, ok := labelToSym[tb.Name]
		if !ok {
			return &Failure{Stage: stage, Detail: fmt.Sprintf("unexpected target %q", tb.Name)}
		}
		want := truth[sym]
		if tb.Gap() > tol {
			return &Failure{Stage: stage, Detail: fmt.Sprintf("%s: gap %g not exact", sym, tb.Gap())}
		}
		if math.Abs(tb.Lower-want) > tol && math.Abs(tb.Upper-want) > tol {
			return &Failure{Stage: stage,
				Detail: fmt.Sprintf("%s: got [%.12g, %.12g], oracle %.12g", sym, tb.Lower, tb.Upper, want)}
		}
	}
	return nil
}

// checkApprox asserts the ε contract of an approximate result.
func checkApprox(r *prob.Result, stage string, eps float64, truth map[string]float64, labelToSym map[string]string) *Failure {
	for _, tb := range r.Targets {
		sym, ok := labelToSym[tb.Name]
		if !ok {
			return &Failure{Stage: stage, Detail: fmt.Sprintf("unexpected target %q", tb.Name)}
		}
		want := truth[sym]
		if want < tb.Lower-tol || want > tb.Upper+tol {
			return &Failure{Stage: stage,
				Detail: fmt.Sprintf("%s: oracle %.12g outside [%.12g, %.12g]", sym, want, tb.Lower, tb.Upper)}
		}
		if tb.Gap() > 2*eps+tol {
			return &Failure{Stage: stage, Detail: fmt.Sprintf("%s: gap %g exceeds 2ε", sym, tb.Gap())}
		}
		if e := tb.Estimate(); math.Abs(e-want) > eps+tol {
			return &Failure{Stage: stage,
				Detail: fmt.Sprintf("%s: estimate %.12g off oracle %.12g by more than ε", sym, e, want)}
		}
	}
	return nil
}

// checkBitIdentical asserts two results carry the same bounds down to the
// last float bit — the cross-core contract of the flat compilation core.
func checkBitIdentical(got, want *prob.Result, stage string) *Failure {
	if len(got.Targets) != len(want.Targets) {
		return &Failure{Stage: stage,
			Detail: fmt.Sprintf("%d targets, primary core has %d", len(got.Targets), len(want.Targets))}
	}
	for i, wt := range want.Targets {
		gt := got.Targets[i]
		if gt.Name != wt.Name ||
			math.Float64bits(gt.Lower) != math.Float64bits(wt.Lower) ||
			math.Float64bits(gt.Upper) != math.Float64bits(wt.Upper) {
			return &Failure{Stage: stage,
				Detail: fmt.Sprintf("%s: [%x, %x] vs primary [%x, %x] — cores diverged",
					wt.Name, math.Float64bits(gt.Lower), math.Float64bits(gt.Upper),
					math.Float64bits(wt.Lower), math.Float64bits(wt.Upper))}
		}
	}
	gs, ws := &got.Stats, &want.Stats
	if gs.Branches != ws.Branches || gs.Assignments != ws.Assignments ||
		gs.MaskUpdates != ws.MaskUpdates || gs.BudgetPrunes != ws.BudgetPrunes ||
		gs.MaxDepth != ws.MaxDepth {
		return &Failure{Stage: stage,
			Detail: fmt.Sprintf("work counters diverged: branches %d/%d assignments %d/%d mask_updates %d/%d prunes %d/%d depth %d/%d",
				gs.Branches, ws.Branches, gs.Assignments, ws.Assignments,
				gs.MaskUpdates, ws.MaskUpdates, gs.BudgetPrunes, ws.BudgetPrunes,
				gs.MaxDepth, ws.MaxDepth)}
	}
	return nil
}

// checkSame asserts two results carry identical bounds target by target.
func checkSame(got, want *prob.Result, stage string) *Failure {
	if len(got.Targets) != len(want.Targets) {
		return &Failure{Stage: stage,
			Detail: fmt.Sprintf("%d targets, sequential has %d", len(got.Targets), len(want.Targets))}
	}
	for _, wt := range want.Targets {
		gt, ok := got.Target(wt.Name)
		if !ok {
			return &Failure{Stage: stage, Detail: fmt.Sprintf("missing target %q", wt.Name)}
		}
		if math.Abs(gt.Lower-wt.Lower) > tol || math.Abs(gt.Upper-wt.Upper) > tol {
			return &Failure{Stage: stage,
				Detail: fmt.Sprintf("%s: got [%.12g, %.12g], sequential [%.12g, %.12g]",
					wt.Name, gt.Lower, gt.Upper, wt.Lower, wt.Upper)}
		}
	}
	return nil
}

// worldValue resolves a flattened symbol like "C0[1][2]" in the
// interpreter's final environment.
func worldValue(w *interp.World, sym string) (event.Value, error) {
	name := sym
	var idx []int
	if i := strings.IndexByte(sym, '['); i >= 0 {
		name = sym[:i]
		rest := sym[i:]
		for len(rest) > 0 {
			j := strings.IndexByte(rest, ']')
			if j < 0 {
				return event.Value{}, fmt.Errorf("malformed symbol %q", sym)
			}
			n, err := strconv.Atoi(rest[1:j])
			if err != nil {
				return event.Value{}, fmt.Errorf("malformed symbol %q: %v", sym, err)
			}
			idx = append(idx, n)
			rest = rest[j+1:]
		}
	}
	v, ok := w.Var(name)
	if !ok {
		return event.Value{}, fmt.Errorf("no interpreter variable %q", name)
	}
	for _, ix := range idx {
		if !v.IsArr() || ix >= len(v.Arr) {
			return event.Value{}, fmt.Errorf("bad index path %s", sym)
		}
		v = v.Arr[ix]
	}
	if v.None {
		return event.Value{}, fmt.Errorf("%s is uninitialised", sym)
	}
	return v.V, nil
}
