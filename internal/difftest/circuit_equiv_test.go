package difftest

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"testing"

	"enframe/internal/event"
	"enframe/internal/gen"
	"enframe/internal/lang"
	"enframe/internal/network"
	"enframe/internal/prob"
	"enframe/internal/translate"
)

// TestCircuitExactEquivalence is the oracle check for the circuit backend:
// for a batch of generated programs, compiling with Strategy Circuit (trace
// the exact walk into an arithmetic circuit, replay it) must be
// bit-identical to a plain exact compile — marginals and work counters —
// and a second trace must reproduce the first byte for byte. On top of the
// bit contract it checks the reuse property the backend exists for:
// re-evaluating the circuit at perturbed probabilities agrees with a fresh
// exact compile at those probabilities to within accumulation tolerance.
// Runs parallel per seed so `go test -race` exercises concurrent replay.
func TestCircuitExactEquivalence(t *testing.T) {
	const seeds = 300
	minChecked := int64(230)
	if testing.Short() {
		minChecked = 30
	}
	var checked atomic.Int64
	for seed := int64(1); seed <= seeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			if checkCircuitExact(t, seed) {
				checked.Add(1)
			}
		})
	}
	t.Cleanup(func() {
		if got := checked.Load(); got < minChecked {
			t.Errorf("only %d/%d seeds produced comparable networks (need ≥%d)", got, seeds, minChecked)
		}
	})
}

// buildEquivNet grounds one generated program into an event network; it
// reports ok=false (after t.Skip bookkeeping) for seeds that do not yield a
// comparable network.
func buildEquivNet(t *testing.T, p *gen.Program) *network.Net {
	t.Helper()
	in := p.Input
	prog, err := lang.Parse(p.Source())
	if err != nil {
		t.Skipf("parse: %v", err)
	}
	ext := translate.External{
		Objects:     in.Objects,
		Space:       in.Space,
		Params:      in.Params,
		InitIndices: in.InitIndices,
	}
	fb := network.NewBuilder(in.Space, in.Metric)
	fres, err := translate.TranslateInto(prog, ext, fb)
	if err != nil {
		t.Skipf("translate: %v", err)
	}
	n := 0
	for _, s := range p.Syms() {
		if !s.IsBool {
			continue
		}
		if id, ok := fres.BoolNode(s.Name); ok {
			fb.Target(s.Name, id)
			n++
		}
	}
	if n == 0 {
		t.Skip("no Boolean targets")
	}
	return fb.Build()
}

func checkCircuitExact(t *testing.T, seed int64) bool {
	p := gen.New(seed)
	net := buildEquivNet(t, p)

	exact, err := prob.Compile(net, prob.Options{Strategy: prob.Exact})
	if err != nil {
		t.Fatalf("exact compile: %v", err)
	}
	c1, circRes, err := prob.CompileCircuit(context.Background(), net, prob.Options{})
	if err != nil {
		t.Fatalf("circuit compile: %v", err)
	}
	compareBits(t, seed, p, "circuit", exact, circRes)
	compareCoreStats(t, seed, p, "circuit", &exact.Stats, &circRes.Stats)

	// Trace determinism: a second compilation must record the identical
	// circuit — node for node, decision for decision.
	c2, _, err := prob.CompileCircuit(context.Background(), net, prob.Options{})
	if err != nil {
		t.Fatalf("circuit recompile: %v", err)
	}
	if c1.Nodes() != c2.Nodes() || c1.Events() != c2.Events() ||
		c1.TreeBranches() != c2.TreeBranches() || c1.Complete() != c2.Complete() {
		t.Fatalf("seed %d: traces diverged: %d/%d nodes, %d/%d events, %d/%d branches\nprogram:\n%s",
			seed, c1.Nodes(), c2.Nodes(), c1.Events(), c2.Events(),
			c1.TreeBranches(), c2.TreeBranches(), p.Source())
	}

	// The reuse contract: replaying the circuit at perturbed probabilities
	// must agree with a fresh exact compile at those probabilities. Only
	// complete circuits answer for other assignments.
	if c1.Complete() {
		probs := prob.SpaceProbs(net.Space)
		orig := append([]float64(nil), probs...)
		for i := range probs {
			probs[i] = 0.35 + 0.4*probs[i] // keep strictly inside (0, 1)
			net.Space.SetProb(event.VarID(i), probs[i])
		}
		fresh, err := prob.Compile(net, prob.Options{Strategy: prob.Exact})
		for i := range orig {
			net.Space.SetProb(event.VarID(i), orig[i])
		}
		if err != nil {
			t.Fatalf("perturbed exact compile: %v", err)
		}
		replay, err := prob.EvalCircuit(c1, probs)
		if err != nil {
			t.Fatalf("perturbed replay: %v", err)
		}
		for i, want := range fresh.Targets {
			got := replay.Targets[i]
			if got.Name != want.Name ||
				math.Abs(got.Lower-want.Lower) > tol || math.Abs(got.Upper-want.Upper) > tol {
				t.Fatalf("seed %d: perturbed replay: %s: got [%.12g, %.12g], fresh exact [%.12g, %.12g]\nprogram:\n%s",
					seed, want.Name, got.Lower, got.Upper, want.Lower, want.Upper, p.Source())
			}
		}
	}
	return true
}

// TestCircuitSensitivityAgreement checks that sensitivity analysis routed
// through a cached circuit (one trace + two replays per variable) agrees
// with the recompile-per-conditional exact path across a sweep of seeds.
func TestCircuitSensitivityAgreement(t *testing.T) {
	seeds := []int64{1, 3, 7, 11, 19, 42, 97, 128}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			p := gen.New(seed)
			net := buildEquivNet(t, p)
			target := net.Targets[0].Name
			viaExact, err := prob.Sensitivity(net, prob.Options{Strategy: prob.Exact}, target)
			if err != nil {
				t.Fatalf("exact sensitivity: %v", err)
			}
			viaCircuit, err := prob.Sensitivity(net, prob.Options{Strategy: prob.Circuit}, target)
			if err != nil {
				t.Fatalf("circuit sensitivity: %v", err)
			}
			if len(viaExact) != len(viaCircuit) {
				t.Fatalf("seed %d: %d vs %d influences", seed, len(viaExact), len(viaCircuit))
			}
			// The sort is by |derivative|; near-ties may order differently
			// across the two paths, so match influences by variable.
			want := map[event.VarID]prob.VarInfluence{}
			for _, vi := range viaExact {
				want[vi.Var] = vi
			}
			for _, got := range viaCircuit {
				w, ok := want[got.Var]
				if !ok {
					t.Fatalf("seed %d: circuit reported unknown variable %d", seed, got.Var)
				}
				if math.Abs(got.CondTrue-w.CondTrue) > tol ||
					math.Abs(got.CondFalse-w.CondFalse) > tol ||
					math.Abs(got.Derivative-w.Derivative) > tol {
					t.Fatalf("seed %d: var %d: circuit {%g %g %g} vs exact {%g %g %g}",
						seed, got.Var, got.CondTrue, got.CondFalse, got.Derivative,
						w.CondTrue, w.CondFalse, w.Derivative)
				}
			}
		})
	}
}
