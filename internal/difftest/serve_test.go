package difftest

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"enframe/internal/core"
	"enframe/internal/prob"
	"enframe/internal/server"
)

// TestServedRunMatchesDirectRun posts seeded generator programs (data kind
// "gen") to a live server and asserts the marginals in the HTTP response
// are byte-identical to a direct in-process core.Run over the very spec the
// server derives from the same seed. This pins the serving layer — request
// decoding, artifact caching, admission, response encoding — as a pure
// transport around the pipeline: it must not perturb a single bit of the
// computed probabilities.
func TestServedRunMatchesDirectRun(t *testing.T) {
	srv := server.New(server.Config{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	client := &http.Client{}

	for _, seed := range []int64{1, 2, 3, 5, 8, 13} {
		req := server.RunRequest{
			Data:     server.DataSpec{Kind: "gen", Seed: seed},
			Strategy: "exact",
		}

		// Direct path: the exact spec the server would build, compiled with
		// the server's default options (sequential exact, fanout order).
		spec, _, err := server.BuildSpec(req)
		if err != nil {
			t.Fatalf("seed %d: BuildSpec: %v", seed, err)
		}
		spec.Compile = prob.Options{Strategy: prob.Exact, Workers: 1, JobDepth: 3, Heuristic: prob.FanoutOrder}
		direct, err := core.Run(spec)
		if err != nil {
			t.Fatalf("seed %d: direct run: %v", seed, err)
		}
		want := make([]server.RunTarget, 0, len(direct.Result.Targets))
		for _, tb := range direct.Result.Targets {
			want = append(want, server.RunTarget{
				Name: tb.Name, Lower: tb.Lower, Upper: tb.Upper, Estimate: tb.Estimate(),
			})
		}
		wantJSON, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}

		// Served path: run both the cold (miss) and warm (hit) requests so a
		// cached artifact is held to the same bit-exactness.
		for pass, wantCache := range []string{"miss", "hit"} {
			body, err := json.Marshal(req)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := client.Post("http://"+srv.Addr()+"/v1/run", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatalf("seed %d: POST /v1/run: %v", seed, err)
			}
			var buf bytes.Buffer
			_, readErr := buf.ReadFrom(resp.Body)
			resp.Body.Close()
			if readErr != nil {
				t.Fatal(readErr)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("seed %d: status %d: %s", seed, resp.StatusCode, buf.Bytes())
			}
			var fields struct {
				Cache   string          `json:"cache"`
				Targets json.RawMessage `json:"targets"`
			}
			if err := json.Unmarshal(buf.Bytes(), &fields); err != nil {
				t.Fatalf("seed %d: response JSON: %v\n%s", seed, err, buf.Bytes())
			}
			if fields.Cache != wantCache {
				t.Errorf("seed %d pass %d: cache = %q, want %q", seed, pass, fields.Cache, wantCache)
			}
			if got := bytes.TrimSpace(fields.Targets); !bytes.Equal(got, wantJSON) {
				t.Errorf("seed %d (%s): served marginals differ from direct run:\nserved: %s\ndirect: %s",
					seed, wantCache, got, wantJSON)
			}
		}
	}
}
