package difftest

import (
	"strings"
	"testing"
)

// scaled shrinks a bulk seed count under -short or -race so the suite stays
// inside CI time budgets; the full matrix runs in the default configuration.
func scaled(n int, t *testing.T) int {
	if testing.Short() {
		n /= 10
	}
	if raceEnabled {
		n /= 6
	}
	if n < 5 {
		n = 5
	}
	return n
}

// TestGeneratedProgramsAgree is the main differential sweep: several
// hundred generated programs, each checked through the per-world oracle,
// the exact pipeline, the reference evaluator, one approximation setting,
// and one distributed setting.
func TestGeneratedProgramsAgree(t *testing.T) {
	n := scaled(2000, t)
	for seed := int64(1); seed <= int64(n); seed++ {
		if err := Check(seed, Quick()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGeneratedProgramsFullMatrix crosses more ε values and every
// Workers × JobDepth combination on a smaller seed set.
func TestGeneratedProgramsFullMatrix(t *testing.T) {
	n := scaled(200, t)
	for i := int64(0); i < int64(n); i++ {
		if err := Check(10000+i, Full()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFailureMessageCarriesSeed pins the reproduction contract: a Failure
// must print its seed and the fuzz command that replays it.
func TestFailureMessageCarriesSeed(t *testing.T) {
	f := &Failure{Seed: 42, Stage: "exact", Detail: "boom", Source: "M = init()\n"}
	msg := f.Error()
	for _, want := range []string{"seed 42", "enframe fuzz -seed 42", "exact", "boom"} {
		if !strings.Contains(msg, want) {
			t.Errorf("failure message missing %q:\n%s", want, msg)
		}
	}
}
