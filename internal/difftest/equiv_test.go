package difftest

import (
	"fmt"
	"sync/atomic"
	"testing"

	"enframe/internal/gen"
	"enframe/internal/lang"
	"enframe/internal/network"
	"enframe/internal/prob"
	"enframe/internal/translate"
)

// TestFusedLegacyEquivalence is the oracle check for the fused front end:
// for a batch of generated programs, the network built by the streaming
// TranslateInto path must be structurally isomorphic to the one built by
// the legacy two-phase translate-then-ground path, and both must compile to
// bit-identical marginals under the exact compiler and the reference
// evaluator. Runs parallel per seed, so `go test -race` also exercises the
// builders under concurrent construction.
func TestFusedLegacyEquivalence(t *testing.T) {
	const seeds = 260
	minChecked := int64(200)
	if testing.Short() {
		minChecked = 30
	}
	var checked atomic.Int64
	for seed := int64(1); seed <= seeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			if checkFusedLegacy(t, seed) {
				checked.Add(1)
			}
		})
	}
	t.Cleanup(func() {
		if got := checked.Load(); got < minChecked {
			t.Errorf("only %d/%d seeds produced comparable networks (need ≥%d)", got, seeds, minChecked)
		}
	})
}

// checkFusedLegacy builds one generated program through both front ends and
// cross-checks them; it reports whether the seed yielded a comparable pair.
func checkFusedLegacy(t *testing.T, seed int64) bool {
	p := gen.New(seed)
	in := p.Input
	prog, err := lang.Parse(p.Source())
	if err != nil {
		t.Skipf("parse: %v", err)
	}
	ext := translate.External{
		Objects:     in.Objects,
		Space:       in.Space,
		Params:      in.Params,
		InitIndices: in.InitIndices,
	}

	res, err := translate.Translate(prog, ext)
	if err != nil {
		t.Skipf("translate: %v", err)
	}
	fb := network.NewBuilder(in.Space, in.Metric)
	fres, err := translate.TranslateInto(prog, ext, fb)
	if err != nil {
		t.Fatalf("fused translate failed where legacy succeeded: %v", err)
	}

	var targets []string
	for _, s := range p.Syms() {
		if !s.IsBool {
			continue
		}
		e, legacyOK := res.BoolEvent(s.Name)
		id, fusedOK := fres.BoolNode(s.Name)
		if legacyOK != fusedOK {
			t.Fatalf("%s: legacy binding %v vs fused binding %v", s.Name, legacyOK, fusedOK)
		}
		if !legacyOK {
			continue
		}
		_ = e
		_ = id
		targets = append(targets, s.Name)
	}
	if len(targets) == 0 {
		t.Skip("no Boolean targets")
	}

	lb := network.NewBuilder(in.Space, in.Metric)
	for _, sym := range targets {
		e, _ := res.BoolEvent(sym)
		lb.Target(sym, lb.AddExpr(e))
	}
	legacyNet := lb.Build()

	for _, sym := range targets {
		id, _ := fres.BoolNode(sym)
		fb.Target(sym, id)
	}
	fusedNet := fb.Build()

	if err := network.Isomorphic(legacyNet, fusedNet); err != nil {
		t.Fatalf("seed %d: %v\nprogram:\n%s", seed, err, p.Source())
	}

	// Isomorphic nets must compile to bit-identical marginals: same exact
	// compiler output, same reference-evaluator output.
	compareBits(t, seed, p, "exact",
		mustCompile(t, legacyNet, prob.Compile),
		mustCompile(t, fusedNet, prob.Compile))
	compareBits(t, seed, p, "reference",
		mustCompile(t, legacyNet, prob.CompileRef),
		mustCompile(t, fusedNet, prob.CompileRef))
	return true
}

func mustCompile(t *testing.T, net *network.Net,
	compile func(*network.Net, prob.Options) (*prob.Result, error)) *prob.Result {
	t.Helper()
	r, err := compile(net, prob.Options{Strategy: prob.Exact})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return r
}

func compareBits(t *testing.T, seed int64, p *gen.Program, stage string, legacy, fused *prob.Result) {
	t.Helper()
	if len(legacy.Targets) != len(fused.Targets) {
		t.Fatalf("seed %d: %s: %d vs %d targets", seed, stage, len(legacy.Targets), len(fused.Targets))
	}
	for _, lt := range legacy.Targets {
		ft, ok := fused.Target(lt.Name)
		if !ok {
			t.Fatalf("seed %d: %s: fused result missing target %q", seed, stage, lt.Name)
		}
		if lt.Lower != ft.Lower || lt.Upper != ft.Upper {
			t.Fatalf("seed %d: %s: %s: legacy [%.17g, %.17g] vs fused [%.17g, %.17g]\nprogram:\n%s",
				seed, stage, lt.Name, lt.Lower, lt.Upper, ft.Lower, ft.Upper, p.Source())
		}
	}
}
