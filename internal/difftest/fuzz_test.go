package difftest

import "testing"

// FuzzPipeline feeds arbitrary seeds to the full differential harness: the
// generator must be total over int64, and every generated program must agree
// across the per-world oracle, the exact pipeline, the reference evaluator,
// the cross-checked compilation core, the approximation strategies, and the
// distributed runner. legacyPrimary flips which core drives the matrix —
// false runs the bit-parallel flat core (the default) with the legacy nmask
// walker as the cross-core oracle, true the reverse — so the fuzzer explores
// both cores' code paths against each other.
func FuzzPipeline(f *testing.F) {
	for _, seed := range []int64{1, 42, -1, 1 << 40, -9007199254740993} {
		f.Add(seed, false)
		f.Add(seed, true)
	}
	f.Fuzz(func(t *testing.T, seed int64, legacyPrimary bool) {
		opt := Quick()
		opt.LegacyCore = legacyPrimary
		if err := Check(seed, opt); err != nil {
			t.Fatal(err)
		}
	})
}
