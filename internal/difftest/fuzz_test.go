package difftest

import "testing"

// FuzzPipeline feeds arbitrary seeds to the full differential harness: the
// generator must be total over int64, and every generated program must agree
// across the per-world oracle, the exact pipeline, the reference evaluator,
// the approximation strategies, and the distributed runner.
func FuzzPipeline(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-1))
	f.Add(int64(1 << 40))
	f.Add(int64(-9007199254740993))
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := Check(seed, Quick()); err != nil {
			t.Fatal(err)
		}
	})
}
