package server

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Regression tests for poolFor's locking: the original implementation held
// poolsMu across dist.NewPool's TCP dials, so one slow or hung dial
// serialised every remote request on the server — including requests naming
// completely different worker sets. Dials now single-flight per address set
// outside the lock.

// TestPoolForSlowDialDoesNotBlockOtherSets: while one address set's dial is
// stuck, a request for a different set dials and completes immediately.
func TestPoolForSlowDialDoesNotBlockOtherSets(t *testing.T) {
	worker := startDistWorker(t)
	s := New(Config{})

	slowGate := make(chan struct{})
	entered := make(chan struct{}, 1)
	testHookPoolDial = func(key string) {
		if strings.Contains(key, "127.0.0.1:1") {
			entered <- struct{}{}
			<-slowGate
		}
	}
	defer func() { testHookPoolDial = nil }()

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, _ = s.poolFor(ctx, []string{"127.0.0.1:1"}) // dead port; error expected
	}()
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	t0 := time.Now()
	p, err := s.poolFor(ctx, []string{worker})
	if err != nil {
		t.Fatalf("poolFor(other set) while slow dial in flight: %v", err)
	}
	defer p.Close()
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Errorf("poolFor(other set) took %v — blocked behind the slow dial", elapsed)
	}

	close(slowGate)
	select {
	case <-leaderDone:
	case <-time.After(10 * time.Second):
		t.Fatal("slow-dial leader never returned")
	}
}

// TestPoolForSingleFlight: concurrent requests for one address set share one
// dial.
func TestPoolForSingleFlight(t *testing.T) {
	worker := startDistWorker(t)
	s := New(Config{})

	var dials atomic.Int32
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	testHookPoolDial = func(string) {
		dials.Add(1)
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
	}
	defer func() { testHookPoolDial = nil }()

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_, errs[i] = s.poolFor(ctx, []string{worker})
		}(i)
	}
	<-entered
	// Give the other callers time to reach poolFor and queue as waiters.
	time.Sleep(100 * time.Millisecond)
	if got := dials.Load(); got != 1 {
		t.Fatalf("%d dials in flight, want 1 (single-flight broken)", got)
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if got := dials.Load(); got != 1 {
		t.Errorf("%d dials total, want 1", got)
	}
	s.poolsMu.Lock()
	p := s.pools[worker]
	s.poolsMu.Unlock()
	if p == nil {
		t.Fatal("pool not cached after single-flight dial")
	}
	_ = p.Close()
}

// TestPoolForWaiterHonoursContext: a waiter whose context dies while the
// leader is still dialing unblocks immediately with the context error.
func TestPoolForWaiterHonoursContext(t *testing.T) {
	s := New(Config{})

	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	testHookPoolDial = func(string) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-gate
	}
	defer func() { testHookPoolDial = nil }()

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, _ = s.poolFor(ctx, []string{"127.0.0.1:1"})
	}()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t0 := time.Now()
	_, err := s.poolFor(ctx, []string{"127.0.0.1:1"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter error = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(t0); elapsed > time.Second {
		t.Errorf("canceled waiter took %v to unblock", elapsed)
	}

	close(gate)
	select {
	case <-leaderDone:
	case <-time.After(10 * time.Second):
		t.Fatal("leader never returned")
	}
}
