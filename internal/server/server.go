// Package server is ENFrame's long-lived serving layer: an HTTP JSON API
// that runs the core pipeline (lex → parse → translate → ground → compile)
// concurrently, with a bounded LRU cache of compiled artifacts so repeated
// (program, data, targets) requests skip straight to probability
// compilation with fresh strategy/ε/deadline, admission control (bounded
// worker pool plus bounded accept queue with fast 429/503 rejection),
// per-request deadlines that cancel in-flight compilation, and graceful
// drain. Endpoints: POST /v1/run, GET /healthz, GET /metrics, and optional
// /debug/pprof. Everything is standard library; see SERVING.md.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"enframe/internal/core"
	"enframe/internal/dist"
	"enframe/internal/obs"
	"enframe/internal/prob"
)

// Config sizes the server. Zero values take the documented defaults.
type Config struct {
	// Addr is the listen address; ":0" and "127.0.0.1:0" pick an ephemeral
	// port (read it back with Addr after Start).
	Addr string
	// MaxInflight bounds concurrently executing pipeline runs (the worker
	// pool). Default 4×GOMAXPROCS.
	MaxInflight int
	// QueueDepth bounds requests admitted but waiting for a worker slot;
	// beyond MaxInflight+QueueDepth, requests are rejected immediately
	// with 429. Default 4×MaxInflight.
	QueueDepth int
	// CacheEntries bounds the compiled-artifact LRU. Default 64.
	CacheEntries int
	// DefaultTimeout applies when a request carries no timeout_ms;
	// MaxTimeout clamps what a request may ask for. Defaults 30s and 2m.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxBodyBytes bounds the request body. Default 1 MiB.
	MaxBodyBytes int64
	// TenantQuota caps the admission slots (executing + queued) any single
	// named tenant may hold; a tenant at its quota is answered 429 even
	// when global capacity remains, so one hot tenant cannot starve the
	// accept queue. Anonymous requests are exempt. Default: half of
	// MaxInflight+QueueDepth, minimum 1.
	TenantQuota int
	// MaxStreamSessions caps concurrently open /v1/stream sessions;
	// StreamIdleTimeout is how long an untouched session may linger before
	// a full registry may evict it. Defaults 64 and 15m.
	MaxStreamSessions int
	StreamIdleTimeout time.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
	// Registry receives the server metrics; a fresh one is created when
	// nil. GET /metrics renders it.
	Registry *obs.Registry
	// AccessLog, when non-nil, receives one structured line per request:
	// request ID, route, status, outcome, artifact/cache disposition,
	// duration, and response bytes. Nil disables access logging.
	AccessLog *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4 * runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxInflight
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.TenantQuota <= 0 {
		c.TenantQuota = (c.MaxInflight + c.QueueDepth) / 2
		if c.TenantQuota < 1 {
			c.TenantQuota = 1
		}
	}
	if c.MaxStreamSessions <= 0 {
		c.MaxStreamSessions = 64
	}
	if c.StreamIdleTimeout <= 0 {
		c.StreamIdleTimeout = 15 * time.Minute
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c
}

// statusClientClosedRequest is nginx's conventional status for a client
// that disconnected before the response was ready.
const statusClientClosedRequest = 499

// Server is one serving instance. Create with New, bind with Start, stop
// with Shutdown.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	cache *artifactCache

	// workSlots bounds executing runs; queueSlots additionally bounds
	// admitted-but-waiting runs. Both are semaphores.
	workSlots  chan struct{}
	queueSlots chan struct{}

	httpSrv   *http.Server
	listener  net.Listener
	draining  atomic.Bool
	inflight  atomic.Int64
	serveErr  chan error
	accessLog *slog.Logger

	// stopRuntime halts the process-gauge collector started by Start.
	stopRuntime func()

	// pools caches worker pools by their sorted address list, so repeated
	// requests naming the same worker set reuse live connections and
	// worker-side session caches. Dials run outside poolsMu: concurrent
	// requests for the same address set single-flight on a poolCall
	// (poolDials), and requests for different sets never wait on each
	// other's TCP dials.
	poolsMu   sync.Mutex
	pools     map[string]*dist.Pool
	poolDials map[string]*poolCall

	// tenants is the fairness-aware half of admission control (tenant.go).
	tenants *tenantLimiter

	mRequests       *obs.Counter
	mOK             *obs.Counter
	mBadRequest     *obs.Counter
	mErrors         *obs.Counter
	mRejQueue       *obs.Counter // 429: queue full
	mRejDraining    *obs.Counter // 503: draining
	mDeadline       *obs.Counter // 504: per-request deadline exceeded
	mCanceled       *obs.Counter // 499: client disconnected
	mBadGateway     *obs.Counter // 502: remote worker plane failed
	mRemoteRuns     *obs.Counter
	mRemoteFallback *obs.Counter
	gInflight       *obs.Gauge
	gInflightPeak   *obs.Gauge
	hLatency        *obs.Histogram

	// Circuit-backend telemetry: cache disposition of /v1/whatif circuit
	// lookups, size of the most recent circuit, and per-point replay cost.
	mCircuitHits   *obs.Counter
	mCircuitMisses *obs.Counter
	gCircuitNodes  *obs.Gauge
	hCircuitEval   *obs.Histogram

	// mWarm counts /v1/warm requests that resolved an artifact (the shard
	// router's cache-migration traffic).
	mWarm *obs.Counter

	// streams is the /v1/stream session registry; the stream.* metrics
	// expose its traffic (see OBSERVABILITY.md).
	streams            *streamRegistry
	mStreamCreated     *obs.Counter
	mStreamClosed      *obs.Counter
	mStreamEvicted     *obs.Counter
	mStreamPushes      *obs.Counter
	mStreamDeltas      *obs.Counter
	mStreamSeqConflict *obs.Counter
	mStreamReplays     *obs.Counter
	mStreamRetraces    *obs.Counter
	mStreamRegrounds   *obs.Counter
	mStreamFull        *obs.Counter
	gStreamActive      *obs.Gauge
	hStreamPush        *obs.Histogram
}

// latencyBucketsMs are the /metrics latency histogram upper bounds.
var latencyBucketsMs = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// evalBucketsMs are the circuit-replay histogram bounds; one replay is
// orders of magnitude cheaper than a compile, so the buckets start at 10µs.
var evalBucketsMs = []float64{0.01, 0.05, 0.1, 0.5, 1, 5, 25, 100}

// testHookInflight, when set by tests, runs while the request holds a
// worker slot, before the pipeline starts.
var testHookInflight func()

// testHookPoolDial, when set by tests, runs on the dialing (leader) path of
// poolFor just before dist.NewPool, with the pool's address-set key. It
// exists to prove that a slow dial blocks neither other address sets nor
// same-set waiters' cancellation.
var testHookPoolDial func(key string)

// New builds a server; it does not listen yet.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		reg:        cfg.Registry,
		cache:      newArtifactCache(cfg.CacheEntries, cfg.Registry),
		workSlots:  make(chan struct{}, cfg.MaxInflight),
		queueSlots: make(chan struct{}, cfg.MaxInflight+cfg.QueueDepth),
		serveErr:   make(chan error, 1),
		pools:      map[string]*dist.Pool{},
		poolDials:  map[string]*poolCall{},
		tenants:    newTenantLimiter(cfg.TenantQuota, cfg.Registry),
		accessLog:  cfg.AccessLog,

		mRequests:       cfg.Registry.Counter("server.requests"),
		mOK:             cfg.Registry.Counter("server.responses.ok"),
		mBadRequest:     cfg.Registry.Counter("server.responses.bad_request"),
		mErrors:         cfg.Registry.Counter("server.responses.error"),
		mRejQueue:       cfg.Registry.Counter("server.rejected.queue_full"),
		mRejDraining:    cfg.Registry.Counter("server.rejected.draining"),
		mDeadline:       cfg.Registry.Counter("server.deadline_exceeded"),
		mCanceled:       cfg.Registry.Counter("server.client_canceled"),
		mBadGateway:     cfg.Registry.Counter("server.responses.bad_gateway"),
		mRemoteRuns:     cfg.Registry.Counter("server.remote.runs"),
		mRemoteFallback: cfg.Registry.Counter("server.remote.fallbacks"),
		gInflight:       cfg.Registry.Gauge("server.inflight"),
		gInflightPeak:   cfg.Registry.Gauge("server.inflight.peak"),
		hLatency:        cfg.Registry.Histogram("server.latency_ms", latencyBucketsMs),

		mCircuitHits:   cfg.Registry.Counter("circuit.cache.hits"),
		mCircuitMisses: cfg.Registry.Counter("circuit.cache.misses"),
		gCircuitNodes:  cfg.Registry.Gauge("circuit.nodes"),
		hCircuitEval:   cfg.Registry.Histogram("circuit.eval_ms", evalBucketsMs),

		mWarm: cfg.Registry.Counter("server.warm.requests"),

		streams:            newStreamRegistry(cfg.MaxStreamSessions, cfg.StreamIdleTimeout),
		mStreamCreated:     cfg.Registry.Counter("stream.sessions.created"),
		mStreamClosed:      cfg.Registry.Counter("stream.sessions.closed"),
		mStreamEvicted:     cfg.Registry.Counter("stream.sessions.evicted"),
		mStreamPushes:      cfg.Registry.Counter("stream.pushes"),
		mStreamDeltas:      cfg.Registry.Counter("stream.deltas"),
		mStreamSeqConflict: cfg.Registry.Counter("stream.seq_conflicts"),
		mStreamReplays:     cfg.Registry.Counter("stream.segment.replays"),
		mStreamRetraces:    cfg.Registry.Counter("stream.segment.retraces"),
		mStreamRegrounds:   cfg.Registry.Counter("stream.segment.regrounds"),
		mStreamFull:        cfg.Registry.Counter("stream.full_recompiles"),
		gStreamActive:      cfg.Registry.Gauge("stream.sessions.active"),
		hStreamPush:        cfg.Registry.Histogram("stream.push_ms", latencyBucketsMs),
	}
	s.httpSrv = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Handler returns the server's route mux (also usable without a listener,
// e.g. under httptest).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/whatif", s.handleWhatif)
	mux.HandleFunc("/v1/stream", s.handleStream)
	mux.HandleFunc("/v1/warm", s.handleWarm)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	if s.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s.withTelemetry(mux)
}

// Start binds the configured address and serves in the background. The
// listener is bound when Start returns, so Addr is immediately valid.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	s.listener = ln
	// Process runtime gauges (goroutines, heap, GC) refresh for as long as
	// the server serves; handler-only embeddings (httptest) skip them.
	s.stopRuntime = s.reg.StartRuntimeCollector(0)
	go func() {
		err := s.httpSrv.Serve(ln)
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.serveErr <- err
		}
		close(s.serveErr)
	}()
	return nil
}

// Addr returns the bound listen address (empty before Start).
func (s *Server) Addr() string {
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains gracefully: new work is rejected with 503, the listener
// closes, in-flight requests run to completion (or until ctx expires, at
// which point remaining connections are cut), and every remote worker pool
// is torn down.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.stopRuntime != nil {
		s.stopRuntime()
	}
	err := s.httpSrv.Shutdown(ctx)
	if serr, ok := <-s.serveErr; ok && err == nil {
		err = serr
	}
	s.poolsMu.Lock()
	for key, p := range s.pools {
		_ = p.Close()
		delete(s.pools, key)
	}
	s.poolsMu.Unlock()
	// Streaming sessions are plain state (no goroutines); dropping the
	// registry releases them.
	s.streams.clear()
	s.gStreamActive.Set(0)
	return err
}

// Registry exposes the metrics registry (for embedding servers, e.g. the
// load generator's in-process mode).
func (s *Server) Registry() *obs.Registry { return s.reg }

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics renders the registry; format negotiation (JSON snapshot,
// Prometheus exposition, human-readable dump) lives in obs.WriteMetricsHTTP
// so every /metrics endpoint in the fleet — serve shards and the shard
// router — shares one contract.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.reg.SampleRuntime() // scrape answers must reflect the live process
	obs.WriteMetricsHTTP(s.reg, w, r)
}

// handleRun is POST /v1/run: admission → decode → cache-aware pipeline →
// JSON result. See SERVING.md for the exact status-code contract.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.mRequests.Inc()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.draining.Load() {
		s.mRejDraining.Inc()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	// Fast rejection: no free queue slot means the backlog is already
	// MaxInflight+QueueDepth deep — shed immediately instead of stacking
	// goroutines.
	select {
	case s.queueSlots <- struct{}{}:
		defer func() { <-s.queueSlots }()
	default:
		s.mRejQueue.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "queue full (%d executing + %d waiting)",
			s.cfg.MaxInflight, s.cfg.QueueDepth)
		return
	}

	var req RunRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.mBadRequest.Inc()
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	req = req.withDefaults()
	spec, key, err := BuildSpec(req)
	if err != nil {
		s.mBadRequest.Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	info := infoFrom(r.Context())
	info.artifact = key

	// Fairness: a named tenant at its quota is shed even though global
	// capacity remains, so it cannot monopolise the accept queue. The tenant
	// identity never reaches BuildSpec — it must not perturb the artifact key.
	tenant := resolveTenant(req.Tenant, r.Header.Get(tenantHeader))
	info.tenant = tenant
	if !s.tenants.acquire(tenant) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "tenant %q over quota (%d slots)",
			tenant, s.cfg.TenantQuota)
		return
	}
	defer s.tenants.release(tenant)

	// Per-request hard deadline, clamped to the server maximum. It covers
	// queueing and the whole pipeline, and is joined with the client's
	// disconnect signal via the request context.
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Admission: wait for a worker slot under the deadline.
	select {
	case s.workSlots <- struct{}{}:
		defer func() { <-s.workSlots }()
	case <-ctx.Done():
		s.finishCtxErr(w, r, ctx)
		return
	}
	cur := s.inflight.Add(1)
	s.gInflight.Set(float64(cur))
	s.gInflightPeak.SetMax(float64(cur))
	defer func() { s.gInflight.Set(float64(s.inflight.Add(-1))) }()
	if testHookInflight != nil {
		testHookInflight()
	}

	// Per-request tracing is opt-in: the whole pipeline runs under one trace
	// whose span tree (including spliced remote worker subtrees) returns
	// inline in the response.
	var tr *obs.Trace
	if req.Trace {
		tr = obs.New("run")
		tr.Root().SetStr("request_id", info.id)
	}

	t0 := time.Now()
	rep, cache, remote, err := s.execute(ctx, spec, key, req, tr)
	info.cache = cache.String()
	info.remote = remote.used
	info.fallback = remote.fellBack
	if err != nil {
		if ctx.Err() != nil {
			s.finishCtxErr(w, r, ctx)
			return
		}
		// A broken worker plane — unreachable workers, mid-run total loss,
		// protocol version skew, truncated frames — is an upstream failure:
		// 502, never a hang or a panic.
		if isRemoteError(err) {
			s.mBadGateway.Inc()
			writeError(w, http.StatusBadGateway, "remote worker plane: %v", err)
			return
		}
		s.mErrors.Inc()
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.hLatency.Observe(float64(time.Since(t0)) / float64(time.Millisecond))
	s.mOK.Inc()
	resp := buildResponse(req, rep, cache.reused(), remote)
	if tr != nil {
		tr.Finish()
		ex := tr.Root().Export()
		resp.Trace = &ex
	}
	writeJSON(w, http.StatusOK, resp)
}

// isRemoteError classifies distributed-plane failures for the 502 contract:
// typed wire-protocol errors and transport-level executor loss, as opposed
// to compilation errors (422) and context errors (499/504).
func isRemoteError(err error) bool {
	return dist.IsProtocolError(err) || errors.Is(err, prob.ErrExecutorUnavailable)
}

// remoteStatus records how the distributed plane served one request, for
// the response body and metrics.
type remoteStatus struct {
	used     bool // jobs shipped to remote workers
	workers  int  // live workers at completion
	fellBack bool // remote requested but served locally
}

// execute resolves the artifact through the cache and compiles it with the
// request's options — in-process, or over the remote worker plane when the
// request names remote_workers. A coalesced preparation that failed only
// because the leading request's context expired is retried once under our
// own context.
func (s *Server) execute(ctx context.Context, spec core.Spec, key string, req RunRequest, tr *obs.Trace) (*core.Report, cacheOutcome, remoteStatus, error) {
	prepare := func() (*core.Artifact, error) { return core.PrepareContext(ctx, spec) }
	art, cache, err := s.cache.getOrPrepare(key, prepare)
	if err != nil && isCtxError(err) && ctx.Err() == nil {
		art, cache, err = s.cache.getOrPrepare(key, prepare)
	}
	if err != nil {
		return nil, cache, remoteStatus{}, err
	}

	strategy, _ := parseStrategy(req.Strategy) // validated by BuildSpec
	heuristic, _ := parseOrder(req.Order)
	opts := prob.Options{
		Strategy:  strategy,
		Epsilon:   req.Epsilon,
		Workers:   req.Workers,
		JobDepth:  req.JobDepth,
		Heuristic: heuristic,
		Timeout:   time.Duration(req.SoftTimeoutMs) * time.Millisecond,
		Obs:       tr,
	}

	if len(req.RemoteWorkers) > 0 {
		rep, remote, rerr := s.executeRemote(ctx, art, key, req, opts)
		if rerr == nil {
			return rep, cache, remote, nil
		}
		if !req.RemoteFallback || ctx.Err() != nil || !isRemoteError(rerr) {
			return nil, cache, remote, rerr
		}
		// The plane is down and the request opted into degraded mode: run
		// locally and say so in the response.
		s.mRemoteFallback.Inc()
	}

	rep, err := art.CompileContext(ctx, opts)
	if err != nil {
		return nil, cache, remoteStatus{}, err
	}
	remote := remoteStatus{fellBack: len(req.RemoteWorkers) > 0}
	return rep, cache, remote, nil
}

// executeRemote ships the compilation to the request's worker set via a
// cached pool. The artifact-identifying request travels as the session spec;
// workers re-derive the artifact and verify its content hash equals key.
func (s *Server) executeRemote(ctx context.Context, art *core.Artifact, key string, req RunRequest, opts prob.Options) (*core.Report, remoteStatus, error) {
	pool, err := s.poolFor(ctx, req.RemoteWorkers)
	if err != nil {
		return nil, remoteStatus{}, err
	}
	specJSON, err := json.Marshal(ArtifactRequest(req))
	if err != nil {
		return nil, remoteStatus{}, fmt.Errorf("server: encode wire spec: %w", err)
	}
	opts.Order = art.Order(opts.Heuristic)
	exec := pool.Session(key, specJSON, dist.FromOptions(opts))
	s.mRemoteRuns.Inc()

	tm := art.PrepTimings
	tCompile := time.Now()
	pr, err := prob.CompileExec(ctx, art.Net, opts, exec)
	tm.Compile = time.Since(tCompile)
	tm.Total = tm.Lex + tm.Parse + tm.Translate + tm.Ground + tm.Compile
	remote := remoteStatus{used: true, workers: pool.AliveWorkers()}
	if err != nil {
		return nil, remote, err
	}
	return &core.Report{
		Result: pr, Events: art.Events, Net: art.Net, Translation: art.Translation,
		Ground: art.Ground, Timings: tm,
	}, remote, nil
}

// poolCall is one in-flight pool dial; concurrent poolFor calls for the
// same address set wait on done instead of dialing twice.
type poolCall struct {
	done chan struct{}
	pool *dist.Pool
	err  error
}

// poolFor returns the cached pool for a worker set (keyed by the sorted
// address list), dialing it on first use and re-dialing when every worker in
// the cached pool has died. Dials are single-flighted per address set and
// run OUTSIDE poolsMu — a slow or hung dial to one worker set must block
// neither requests naming other sets nor the map itself (the same pattern
// the artifact cache uses for slow preparations). Waiters honour their own
// context: a caller whose deadline expires while the leader is still
// dialing unblocks immediately.
func (s *Server) poolFor(ctx context.Context, addrs []string) (*dist.Pool, error) {
	sorted := append([]string(nil), addrs...)
	sort.Strings(sorted)
	key := strings.Join(sorted, ",")
	for {
		s.poolsMu.Lock()
		if p, ok := s.pools[key]; ok {
			if p.AliveWorkers() > 0 {
				s.poolsMu.Unlock()
				return p, nil
			}
			_ = p.Close()
			delete(s.pools, key)
		}
		if call, ok := s.poolDials[key]; ok {
			s.poolsMu.Unlock()
			select {
			case <-call.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if call.err != nil {
				// The leader's dial failed (possibly under its own, shorter
				// deadline). Loop to retry under ours rather than inheriting
				// a failure we might not have had.
				if ctx.Err() != nil {
					return nil, call.err
				}
				continue
			}
			return call.pool, nil
		}
		call := &poolCall{done: make(chan struct{})}
		s.poolDials[key] = call
		s.poolsMu.Unlock()

		if testHookPoolDial != nil {
			testHookPoolDial(key)
		}
		p, err := dist.NewPool(ctx, dist.PoolConfig{
			Addrs: sorted,
			Reg:   s.reg,
		})
		s.poolsMu.Lock()
		delete(s.poolDials, key)
		if err == nil {
			s.pools[key] = p
		}
		s.poolsMu.Unlock()
		call.pool, call.err = p, err
		close(call.done)
		return p, err
	}
}

// finishCtxErr maps a context failure to the response contract: 504 for a
// deadline, 499 for a client that went away.
func (s *Server) finishCtxErr(w http.ResponseWriter, r *http.Request, ctx context.Context) {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		s.mDeadline.Inc()
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded")
		return
	}
	// The client disconnected; the write is best-effort.
	s.mCanceled.Inc()
	w.WriteHeader(statusClientClosedRequest)
}

func isCtxError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
