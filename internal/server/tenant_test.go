package server

import (
	"net/http"
	"sync"
	"testing"
)

// TestTenantQuotaEnforced: a named tenant at its quota is answered 429 even
// though global capacity remains, while other tenants and anonymous traffic
// keep flowing.
func TestTenantQuotaEnforced(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	testHookInflight = func() {
		entered <- struct{}{}
		<-gate
	}
	defer func() { testHookInflight = nil }()
	var once sync.Once
	openGate := func() { once.Do(func() { close(gate) }) }
	defer openGate()

	s := startTestServer(t, Config{MaxInflight: 4, QueueDepth: 4, TenantQuota: 1})
	client := &http.Client{}

	// Tenant t1 occupies its single slot.
	firstDone := make(chan int, 1)
	go func() {
		req := smallRequest(41, 6)
		req.Tenant = "t1"
		status, _, _ := postRun(t, client, s.Addr(), req)
		firstDone <- status
	}()
	<-entered

	// Same tenant, second request: over quota → 429.
	req := smallRequest(42, 6)
	req.Tenant = "t1"
	status, _, body := postRun(t, client, s.Addr(), req)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-quota tenant: status %d, want 429: %s", status, body)
	}
	if counterValue(s, "server.tenant.throttled") != 1 {
		t.Errorf("server.tenant.throttled = %d, want 1", counterValue(s, "server.tenant.throttled"))
	}
	if counterValue(s, "server.tenant.t1.throttled") != 1 {
		t.Errorf("server.tenant.t1.throttled = %d, want 1", counterValue(s, "server.tenant.t1.throttled"))
	}

	// A different tenant and an anonymous caller are unaffected.
	openGate()
	other := smallRequest(43, 6)
	other.Tenant = "t2"
	if status, _, body := postRun(t, client, s.Addr(), other); status != http.StatusOK {
		t.Fatalf("other tenant: status %d: %s", status, body)
	}
	if status, _, body := postRun(t, client, s.Addr(), smallRequest(44, 6)); status != http.StatusOK {
		t.Fatalf("anonymous: status %d: %s", status, body)
	}
	if status := <-firstDone; status != http.StatusOK {
		t.Fatalf("tenant t1's admitted request: status %d", status)
	}

	// Quota released: t1 can run again.
	req = smallRequest(45, 6)
	req.Tenant = "t1"
	if status, _, body := postRun(t, client, s.Addr(), req); status != http.StatusOK {
		t.Fatalf("t1 after release: status %d: %s", status, body)
	}
}

// TestTenantIdentityResolution: the body field wins over the header, the
// header works alone, and identifiers are sanitized before reaching metric
// names.
func TestTenantIdentityResolution(t *testing.T) {
	if got := resolveTenant("body", "header"); got != "body" {
		t.Errorf("resolveTenant(body, header) = %q, want body", got)
	}
	if got := resolveTenant("", "header"); got != "header" {
		t.Errorf("resolveTenant(\"\", header) = %q, want header", got)
	}
	if got := resolveTenant("", ""); got != "" {
		t.Errorf("resolveTenant(\"\", \"\") = %q, want empty", got)
	}
	if got := sanitizeTenant("a b/c#d"); got != "a_b_c_d" {
		t.Errorf("sanitizeTenant = %q, want a_b_c_d", got)
	}
	long := make([]byte, 200)
	for i := range long {
		long[i] = 'x'
	}
	if got := sanitizeTenant(string(long)); len(got) != maxTenantIDLen {
		t.Errorf("sanitizeTenant(long) length = %d, want %d", len(got), maxTenantIDLen)
	}
}

// TestTenantSeriesCardinalityCap: past maxTenantSeries distinct tenants,
// per-tenant metrics fold into "overflow" — quotas still apply per tenant,
// the registry just stops growing.
func TestTenantSeriesCardinalityCap(t *testing.T) {
	s := startTestServer(t, Config{})
	client := &http.Client{}

	for i := 0; i < maxTenantSeries+5; i++ {
		req := smallRequest(50, 6) // one artifact; cache keeps this cheap
		req.Tenant = "tenant-" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		if status, _, body := postRun(t, client, s.Addr(), req); status != http.StatusOK {
			t.Fatalf("tenant %d: status %d: %s", i, status, body)
		}
	}
	perTenant := 0
	for _, v := range s.reg.Values() {
		if len(v.Name) > 14 && v.Name[:14] == "server.tenant." &&
			v.Name != "server.tenant.requests" && v.Name != "server.tenant.throttled" &&
			v.Name != "server.tenant.active" {
			perTenant++
		}
	}
	// Each in-cap tenant gets .requests + .inflight; overflow adds the same.
	max := (maxTenantSeries + 1) * 2
	if perTenant > max {
		t.Errorf("%d per-tenant series, want ≤ %d (cardinality cap broken)", perTenant, max)
	}
	if counterValue(s, "server.tenant.overflow.requests") == 0 {
		t.Error("overflow series never used despite exceeding the cap")
	}
}
