package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"enframe/internal/core"
	"enframe/internal/data"
	"enframe/internal/gen"
	"enframe/internal/lang"
	"enframe/internal/lineage"
	"enframe/internal/prob"
)

// RunRequest is the body of POST /v1/run. Program source, data-generation
// spec, and targets identify the compiled artifact (they form the cache
// key); strategy, ε, workers, and deadlines are per-request compilation
// parameters that reuse a cached artifact unchanged. See SERVING.md.
type RunRequest struct {
	// Program names a builtin ("kmedoids", "kmeans", "mcl"); Source carries
	// inline program text and takes precedence. The server never reads
	// files.
	Program string `json:"program,omitempty"`
	Source  string `json:"source,omitempty"`
	// Data configures the probabilistic input generator.
	Data DataSpec `json:"data"`
	// Params backs loadParams(): K/Iter for the clustering programs, R/Iter
	// for Markov clustering.
	Params ParamSpec `json:"params"`
	// Targets are symbol patterns as in the CLI -targets flag; default
	// "Centre[".
	Targets []string `json:"targets,omitempty"`
	// Strategy is exact (default), eager, lazy, or hybrid; Epsilon is the
	// absolute error budget for the approximation strategies.
	Strategy string  `json:"strategy,omitempty"`
	Epsilon  float64 `json:"epsilon,omitempty"`
	// Workers > 1 compiles with the distributed runner; JobDepth is the
	// fragment depth d.
	Workers  int `json:"workers,omitempty"`
	JobDepth int `json:"job_depth,omitempty"`
	// Order selects the variable-order heuristic: "fanout" (default) or
	// "input".
	Order string `json:"order,omitempty"`
	// TimeoutMs is the hard per-request deadline: exceeding it aborts the
	// pipeline and answers 504. Zero means the server default; values are
	// clamped to the server maximum.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// SoftTimeoutMs, when positive, bounds compilation via prob's anytime
	// timer instead: the request succeeds with the partial bounds reached
	// so far and "timed_out": true.
	SoftTimeoutMs int `json:"soft_timeout_ms,omitempty"`
	// RemoteWorkers lists TCP addresses of enframe worker processes; when
	// non-empty, compilation jobs ship to them over the distributed plane
	// instead of running in-process. Workers and RemoteWorkers are
	// mutually exclusive interpretations of the same request: remote wins.
	RemoteWorkers []string `json:"remote_workers,omitempty"`
	// RemoteFallback permits local in-process compilation when the remote
	// plane is unreachable or lost mid-run; by default such failures
	// answer 502 Bad Gateway.
	RemoteFallback bool `json:"remote_fallback,omitempty"`
	// Trace asks for a per-request execution trace: the response carries the
	// span tree under "trace", with remote worker subtrees spliced in on
	// their own process lanes. Tracing never affects the cache key.
	Trace bool `json:"trace,omitempty"`
	// Tenant identifies the caller for per-tenant accounting and quota
	// enforcement; the X-Tenant-Id header is the out-of-band equivalent (the
	// body field wins). Tenancy never affects the artifact cache key —
	// ArtifactRequest strips it, so tenants share compiled artifacts.
	Tenant string `json:"tenant,omitempty"`
}

// DataSpec mirrors the CLI data-generation flags. Kind "sensor" (default)
// is the synthetic energy-network feed with a correlation scheme attached;
// kind "gen" replays the differential harness's seeded generator
// (internal/gen), deriving program, data, and targets from Seed alone.
type DataSpec struct {
	Kind    string  `json:"kind,omitempty"` // "sensor" (default) or "gen"
	N       int     `json:"n,omitempty"`
	Scheme  string  `json:"scheme,omitempty"`
	Vars    int     `json:"vars,omitempty"`
	L       int     `json:"l,omitempty"`
	M       int     `json:"m,omitempty"`
	Certain float64 `json:"certain,omitempty"`
	Group   int     `json:"group,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
}

// ParamSpec backs loadParams() and init().
type ParamSpec struct {
	K    int `json:"k,omitempty"`
	Iter int `json:"iter,omitempty"`
	R    int `json:"r,omitempty"`
}

// withDefaults mirrors the CLI flag defaults.
func (r RunRequest) withDefaults() RunRequest {
	if r.Program == "" && r.Source == "" {
		r.Program = "kmedoids"
	}
	if r.Data.Kind == "" {
		r.Data.Kind = "sensor"
	}
	if r.Data.N == 0 {
		r.Data.N = 12
	}
	if r.Data.Scheme == "" {
		r.Data.Scheme = "positive"
	}
	if r.Data.Vars == 0 {
		r.Data.Vars = 10
	}
	if r.Data.L == 0 {
		r.Data.L = 8
	}
	if r.Data.M == 0 {
		r.Data.M = 12
	}
	if r.Data.Group == 0 {
		r.Data.Group = 4
	}
	if r.Data.Seed == 0 {
		r.Data.Seed = 1
	}
	if r.Params.K == 0 {
		r.Params.K = 2
	}
	if r.Params.Iter == 0 {
		r.Params.Iter = 3
	}
	if r.Params.R == 0 {
		r.Params.R = 2
	}
	if len(r.Targets) == 0 {
		r.Targets = []string{"Centre["}
	}
	if r.Strategy == "" {
		r.Strategy = "exact"
	}
	if r.Strategy != "exact" && r.Strategy != "circuit" && r.Epsilon == 0 {
		r.Epsilon = 0.1
	}
	if r.Workers == 0 {
		r.Workers = 1
	}
	if r.JobDepth == 0 {
		r.JobDepth = 3
	}
	if r.Order == "" {
		r.Order = "fanout"
	}
	return r
}

// maxWorkersPerRequest caps the goroutine fan-out a single request may ask
// for; overall compile concurrency is bounded separately by admission
// control. The same cap bounds remote_workers addresses.
const maxWorkersPerRequest = 16

// ArtifactRequest strips a request down to the fields that determine its
// compiled artifact (program, data, params, targets) — the exact inputs of
// the cache key. This is the spec form shipped to remote workers: the worker
// re-derives the artifact with BuildSpec and verifies the content hash, while
// per-request knobs (strategy, ε, depth, timeouts) travel separately as
// session options.
func ArtifactRequest(req RunRequest) RunRequest {
	req = req.withDefaults()
	return RunRequest{
		Program: req.Program,
		Source:  req.Source,
		Data:    req.Data,
		Params:  req.Params,
		Targets: req.Targets,
	}
}

// badRequestError marks request-validation failures that map to HTTP 400.
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &badRequestError{msg: fmt.Sprintf(format, args...)}
}

// BuildSpec validates the request (after defaulting) and produces the
// core.Spec it denotes — everything but the compile options — together with
// the artifact cache key: a content hash over the resolved program source,
// the data-generation spec, and the targets. Two requests with equal keys
// ground byte-identical event networks.
func BuildSpec(req RunRequest) (core.Spec, string, error) {
	req = req.withDefaults()
	strategy, err := parseStrategy(req.Strategy)
	if err != nil {
		return core.Spec{}, "", err
	}
	if strategy != prob.Exact && strategy != prob.Circuit && req.Epsilon <= 0 {
		return core.Spec{}, "", badRequest("epsilon must be > 0 with strategy %q", req.Strategy)
	}
	if strategy == prob.Circuit && req.Workers > 1 {
		return core.Spec{}, "", badRequest("strategy circuit compiles sequentially (workers must be 1, got %d)", req.Workers)
	}
	if strategy == prob.Circuit && len(req.RemoteWorkers) > 0 {
		return core.Spec{}, "", badRequest("strategy circuit does not support remote_workers")
	}
	if req.Workers < 1 || req.Workers > maxWorkersPerRequest {
		return core.Spec{}, "", badRequest("workers must be in [1, %d] (got %d)", maxWorkersPerRequest, req.Workers)
	}
	if req.JobDepth < 1 {
		return core.Spec{}, "", badRequest("job_depth must be ≥ 1 (got %d)", req.JobDepth)
	}
	if _, err := parseOrder(req.Order); err != nil {
		return core.Spec{}, "", err
	}
	if req.TimeoutMs < 0 || req.SoftTimeoutMs < 0 {
		return core.Spec{}, "", badRequest("timeouts must be ≥ 0")
	}
	if len(req.RemoteWorkers) > maxWorkersPerRequest {
		return core.Spec{}, "", badRequest("remote_workers must list at most %d addresses (got %d)",
			maxWorkersPerRequest, len(req.RemoteWorkers))
	}
	for _, addr := range req.RemoteWorkers {
		if strings.TrimSpace(addr) == "" {
			return core.Spec{}, "", badRequest("remote_workers entries must be host:port addresses")
		}
	}
	if req.RemoteFallback && len(req.RemoteWorkers) == 0 {
		return core.Spec{}, "", badRequest("remote_fallback requires remote_workers")
	}

	switch req.Data.Kind {
	case "gen":
		return buildGenSpec(req)
	case "sensor":
		return buildSensorSpec(req)
	default:
		return core.Spec{}, "", badRequest("unknown data kind %q (want sensor or gen)", req.Data.Kind)
	}
}

// buildSensorSpec assembles the synthetic energy-network workload, the
// served twin of the CLI's default path.
func buildSensorSpec(req RunRequest) (core.Spec, string, error) {
	if req.Data.N < 1 {
		return core.Spec{}, "", badRequest("data.n must be ≥ 1 (got %d)", req.Data.N)
	}
	if req.Data.N > 64 {
		return core.Spec{}, "", badRequest("data.n must be ≤ 64 (got %d)", req.Data.N)
	}
	if req.Params.K < 1 || req.Params.Iter < 1 || req.Params.R < 1 {
		return core.Spec{}, "", badRequest("params must be ≥ 1")
	}
	source, isMCL, err := resolveProgram(req)
	if err != nil {
		return core.Spec{}, "", err
	}
	scheme, err := parseScheme(req.Data.Scheme)
	if err != nil {
		return core.Spec{}, "", err
	}
	pts := data.Points(req.Data.N, req.Data.Seed)
	objs, space, err := lineage.Attach(pts, lineage.Config{
		Scheme:          scheme,
		GroupSize:       req.Data.Group,
		NumVars:         req.Data.Vars,
		L:               req.Data.L,
		M:               req.Data.M,
		CertainFraction: req.Data.Certain,
		Seed:            req.Data.Seed,
	})
	if err != nil {
		return core.Spec{}, "", badRequest("data: %v", err)
	}
	spec := core.Spec{
		Source:  source,
		Objects: objs,
		Space:   space,
		Targets: req.Targets,
	}
	if isMCL {
		spec.Params = []int{req.Params.R, req.Params.Iter}
		spec.Matrix = similarityMatrix(objs)
	} else {
		spec.Params = []int{req.Params.K, req.Params.Iter}
		init := make([]int, req.Params.K)
		for i := range init {
			init[i] = i
		}
		spec.InitIndices = init
	}

	h := sha256.New()
	fmt.Fprintf(h, "v1\x00source\x00%s\x00", source)
	fmt.Fprintf(h, "data\x00sensor;n=%d;scheme=%s;vars=%d;l=%d;m=%d;certain=%g;group=%d;seed=%d\x00",
		req.Data.N, req.Data.Scheme, req.Data.Vars, req.Data.L, req.Data.M,
		req.Data.Certain, req.Data.Group, req.Data.Seed)
	fmt.Fprintf(h, "params\x00k=%d;iter=%d;r=%d;mcl=%t\x00", req.Params.K, req.Params.Iter, req.Params.R, isMCL)
	fmt.Fprintf(h, "targets\x00%s", strings.Join(req.Targets, "\x01"))
	return spec, hex.EncodeToString(h.Sum(nil)), nil
}

// buildGenSpec replays the differential harness's seeded generator: program
// text, input data, and Boolean targets all derive from data.seed, making a
// served run directly comparable to the in-process pipeline on the same
// seed (internal/difftest exploits this).
func buildGenSpec(req RunRequest) (core.Spec, string, error) {
	p := gen.New(req.Data.Seed)
	var targets []string
	for _, s := range p.Syms() {
		if s.IsBool {
			targets = append(targets, s.Name)
		}
	}
	if len(targets) == 0 {
		return core.Spec{}, "", badRequest("gen seed %d has no Boolean targets", req.Data.Seed)
	}
	spec := core.Spec{
		Source:      p.Source(),
		Objects:     p.Input.Objects,
		Space:       p.Input.Space,
		Params:      p.Input.Params,
		InitIndices: p.Input.InitIndices,
		Metric:      p.Input.Metric,
		Targets:     targets,
	}
	h := sha256.New()
	fmt.Fprintf(h, "v1\x00gen\x00seed=%d", req.Data.Seed)
	return spec, hex.EncodeToString(h.Sum(nil)), nil
}

// resolveProgram maps the request to program text. Unlike the CLI, inline
// source is the only non-builtin path — a server must not read local files
// on client demand.
func resolveProgram(req RunRequest) (source string, isMCL bool, err error) {
	if req.Source != "" {
		return req.Source, strings.Contains(req.Source, "(O, n, M)"), nil
	}
	switch req.Program {
	case "kmedoids":
		return lang.KMedoidsSource, false, nil
	case "kmeans":
		return lang.KMeansSource, false, nil
	case "mcl":
		return lang.MCLSource, true, nil
	}
	return "", false, badRequest("unknown builtin program %q (want kmedoids, kmeans, or mcl; send inline text via source)", req.Program)
}

func parseScheme(s string) (lineage.Scheme, error) {
	switch s {
	case "independent":
		return lineage.Independent, nil
	case "positive":
		return lineage.Positive, nil
	case "mutex":
		return lineage.Mutex, nil
	case "conditional":
		return lineage.Conditional, nil
	}
	return 0, badRequest("unknown correlation scheme %q", s)
}

func parseStrategy(s string) (prob.Strategy, error) {
	switch s {
	case "exact":
		return prob.Exact, nil
	case "eager":
		return prob.Eager, nil
	case "lazy":
		return prob.Lazy, nil
	case "hybrid":
		return prob.Hybrid, nil
	case "circuit":
		return prob.Circuit, nil
	}
	return 0, badRequest("unknown strategy %q (want exact, eager, lazy, hybrid, or circuit)", s)
}

func parseOrder(s string) (prob.OrderHeuristic, error) {
	switch s {
	case "fanout":
		return prob.FanoutOrder, nil
	case "input":
		return prob.InputOrder, nil
	}
	return 0, badRequest("unknown order heuristic %q (want fanout or input)", s)
}

// similarityMatrix derives MCL edge weights from pairwise distances, as the
// CLI does.
func similarityMatrix(objs []lineage.Object) [][]float64 {
	n := len(objs)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			if i == j {
				m[i][j] = 1
				continue
			}
			d := objs[i].Pos.Sub(objs[j].Pos).Norm()
			m[i][j] = 1 / (1 + d)
		}
	}
	return m
}
