package server

import (
	"time"

	"enframe/internal/core"
	"enframe/internal/obs"
)

// RunResponse is the body of a successful POST /v1/run.
type RunResponse struct {
	// Cache is "hit" when the compiled artifact was reused, "miss" when
	// this request paid for lex/parse/translate/ground.
	Cache    string  `json:"cache"`
	Strategy string  `json:"strategy"`
	Epsilon  float64 `json:"epsilon,omitempty"`
	Workers  int     `json:"workers"`
	// TimedOut reports the soft (anytime) timeout: bounds are partial.
	TimedOut     bool        `json:"timed_out,omitempty"`
	Variables    int         `json:"variables"`
	NetworkNodes int         `json:"network_nodes"`
	Targets      []RunTarget `json:"targets"`
	Stats        RunStats    `json:"stats"`
	TimingsMs    RunTimings  `json:"timings_ms"`
	// Remote reports how the distributed plane served the request; absent
	// for purely local runs.
	Remote *RemoteResponse `json:"remote,omitempty"`
	// Trace is the per-request span tree, present when the request set
	// "trace": true. Remote worker subtrees appear under their ship spans
	// with distinct pid lanes.
	Trace *obs.SpanExport `json:"trace,omitempty"`
}

// RemoteResponse describes the distributed plane's involvement in one run.
type RemoteResponse struct {
	// Workers is the count of live remote workers when the run finished.
	Workers int `json:"workers"`
	// Fallback is true when remote execution was requested but the run was
	// served in-process because the worker plane was unavailable.
	Fallback bool `json:"fallback,omitempty"`
}

// RunTarget is one compilation target's probability interval.
type RunTarget struct {
	Name     string  `json:"name"`
	Lower    float64 `json:"lower"`
	Upper    float64 `json:"upper"`
	Estimate float64 `json:"estimate"`
}

// RunStats carries the compilation work counters.
type RunStats struct {
	Branches     int64 `json:"branches"`
	Assignments  int64 `json:"assignments"`
	MaskUpdates  int64 `json:"mask_updates"`
	BudgetPrunes int64 `json:"budget_prunes,omitempty"`
	MaxDepth     int64 `json:"max_depth"`
	Jobs         int64 `json:"jobs"`
}

// RunTimings is the per-stage wall-clock breakdown in milliseconds. On a
// cache hit the preparation stages report the original preparation's cost
// (the request itself skipped them).
type RunTimings struct {
	Lex       float64 `json:"lex"`
	Parse     float64 `json:"parse"`
	Translate float64 `json:"translate"`
	Ground    float64 `json:"ground"`
	Compile   float64 `json:"compile"`
	Total     float64 `json:"total"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func buildResponse(req RunRequest, rep *core.Report, hit bool, remote remoteStatus) RunResponse {
	out := RunResponse{
		Cache:        "miss",
		Strategy:     req.Strategy,
		Epsilon:      req.Epsilon,
		Workers:      req.Workers,
		TimedOut:     rep.Result.TimedOut,
		Variables:    rep.Net.Space.Len(),
		NetworkNodes: rep.Net.NumNodes(),
		Stats: RunStats{
			Branches:     rep.Result.Stats.Branches,
			Assignments:  rep.Result.Stats.Assignments,
			MaskUpdates:  rep.Result.Stats.MaskUpdates,
			BudgetPrunes: rep.Result.Stats.BudgetPrunes,
			MaxDepth:     rep.Result.Stats.MaxDepth,
			Jobs:         rep.Result.Stats.Jobs,
		},
		TimingsMs: RunTimings{
			Lex:       ms(rep.Timings.Lex),
			Parse:     ms(rep.Timings.Parse),
			Translate: ms(rep.Timings.Translate),
			Ground:    ms(rep.Timings.Ground),
			Compile:   ms(rep.Timings.Compile),
			Total:     ms(rep.Timings.Total),
		},
	}
	if hit {
		out.Cache = "hit"
	}
	if remote.used || remote.fellBack {
		out.Remote = &RemoteResponse{Workers: remote.workers, Fallback: remote.fellBack}
	}
	if req.Strategy == "exact" {
		out.Epsilon = 0
	}
	for _, tb := range rep.Result.Targets {
		out.Targets = append(out.Targets, RunTarget{
			Name: tb.Name, Lower: tb.Lower, Upper: tb.Upper, Estimate: tb.Estimate(),
		})
	}
	return out
}
