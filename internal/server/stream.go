package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"time"

	"enframe/internal/stream"
)

// StreamRequest is the body of POST /v1/stream — one protocol verb against
// a long-lived streaming session. Ops:
//
//   - "create": open a session from Config; returns the session id, its
//     initial marginals, and the addressable window/variable/tuple state.
//   - "push":   apply Deltas atop BaseSeq; BaseSeq must equal the session's
//     current sequence or the push is rejected with 409 (duplicate or
//     out-of-order delivery).
//   - "query":  read the current marginals without pushing.
//   - "close":  tear the session down.
type StreamRequest struct {
	Op        string         `json:"op"`
	SessionID string         `json:"session_id,omitempty"`
	Config    *stream.Config `json:"config,omitempty"`
	BaseSeq   uint64         `json:"base_seq,omitempty"`
	Deltas    []stream.Delta `json:"deltas,omitempty"`
	TimeoutMs int            `json:"timeout_ms,omitempty"`
	Tenant    string         `json:"tenant,omitempty"`
}

// StreamWindow describes one live window of a session: what a client may
// address with deltas.
type StreamWindow struct {
	Window int64    `json:"window"`
	Vars   []string `json:"vars"`
	Tuples []int    `json:"tuples"`
}

// StreamResponse is the body of a successful POST /v1/stream.
type StreamResponse struct {
	SessionID string            `json:"session_id"`
	Seq       uint64            `json:"seq"`
	Marginals []stream.Marginal `json:"marginals,omitempty"`
	Stats     *stream.Stats     `json:"stats,omitempty"`
	Windows   []StreamWindow    `json:"windows,omitempty"`
	Closed    bool              `json:"closed,omitempty"`
}

// streamSeqConflict is the 409 body of a rejected push; Seq tells the
// client where to resume.
type streamSeqConflict struct {
	Error string `json:"error"`
	Seq   uint64 `json:"seq"`
}

// streamEntry is one registered session.
type streamEntry struct {
	s        *stream.Session
	tenant   string
	lastUsed time.Time
}

// streamRegistry holds the server's live sessions: a flat map with a hard
// cap and idle-based eviction (a session untouched for longer than the idle
// timeout is reclaimed when space is needed).
type streamRegistry struct {
	mu       sync.Mutex
	sessions map[string]*streamEntry
	cap      int
	idle     time.Duration
}

func newStreamRegistry(capacity int, idle time.Duration) *streamRegistry {
	return &streamRegistry{
		sessions: map[string]*streamEntry{},
		cap:      capacity,
		idle:     idle,
	}
}

// add registers a session, evicting idle ones if the registry is full.
// It reports how many sessions were evicted and whether the add succeeded.
func (r *streamRegistry) add(id string, e *streamEntry) (evicted int, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.sessions[id]; exists {
		return 0, false
	}
	if len(r.sessions) >= r.cap {
		cutoff := time.Now().Add(-r.idle)
		for sid, se := range r.sessions {
			if se.lastUsed.Before(cutoff) {
				delete(r.sessions, sid)
				evicted++
			}
		}
	}
	if len(r.sessions) >= r.cap {
		return evicted, false
	}
	r.sessions[id] = e
	return evicted, true
}

// get returns a session and bumps its idle clock.
func (r *streamRegistry) get(id string) (*streamEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.sessions[id]
	if ok {
		e.lastUsed = time.Now()
	}
	return e, ok
}

func (r *streamRegistry) remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.sessions[id]
	delete(r.sessions, id)
	return ok
}

func (r *streamRegistry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

func (r *streamRegistry) clear() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sessions = map[string]*streamEntry{}
}

// newSessionID mints a random 16-hex-digit session id.
func newSessionID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("server: session id entropy unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// NewStreamSessionID mints a session id for callers that must know it
// before the shard does — the shard router assigns ids to anonymous
// "create" requests so it has a routing key for the whole session life.
func NewStreamSessionID() string { return newSessionID() }

// handleStream is POST /v1/stream: admission → decode → verb dispatch
// against the session registry. Sessions are shard-local state; the shard
// router pins every request carrying one session id to the same shard.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	s.mRequests.Inc()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.draining.Load() {
		s.mRejDraining.Inc()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	select {
	case s.queueSlots <- struct{}{}:
		defer func() { <-s.queueSlots }()
	default:
		s.mRejQueue.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "queue full (%d executing + %d waiting)",
			s.cfg.MaxInflight, s.cfg.QueueDepth)
		return
	}

	var req StreamRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.mBadRequest.Inc()
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.TimeoutMs < 0 {
		s.mBadRequest.Inc()
		writeError(w, http.StatusBadRequest, "timeout_ms must be ≥ 0")
		return
	}
	info := infoFrom(r.Context())
	info.artifact = "stream:" + req.SessionID

	tenant := resolveTenant(req.Tenant, r.Header.Get(tenantHeader))
	info.tenant = tenant
	if !s.tenants.acquire(tenant) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "tenant %q over quota (%d slots)",
			tenant, s.cfg.TenantQuota)
		return
	}
	defer s.tenants.release(tenant)

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	select {
	case s.workSlots <- struct{}{}:
		defer func() { <-s.workSlots }()
	case <-ctx.Done():
		s.finishCtxErr(w, r, ctx)
		return
	}
	cur := s.inflight.Add(1)
	s.gInflight.Set(float64(cur))
	s.gInflightPeak.SetMax(float64(cur))
	defer func() { s.gInflight.Set(float64(s.inflight.Add(-1))) }()
	if testHookInflight != nil {
		testHookInflight()
	}

	t0 := time.Now()
	switch req.Op {
	case "create":
		s.streamCreate(ctx, w, req, tenant)
	case "push":
		s.streamPush(ctx, w, req)
	case "query":
		s.streamQuery(ctx, w, req)
	case "close":
		s.streamClose(w, req)
	default:
		s.mBadRequest.Inc()
		writeError(w, http.StatusBadRequest, "unknown op %q (want create, push, query, or close)", req.Op)
		return
	}
	s.hLatency.Observe(float64(time.Since(t0)) / float64(time.Millisecond))
	if req.Op == "push" {
		s.hStreamPush.Observe(float64(time.Since(t0)) / float64(time.Millisecond))
	}
}

func (s *Server) streamCreate(ctx context.Context, w http.ResponseWriter, req StreamRequest, tenant string) {
	cfg := stream.Config{}
	if req.Config != nil {
		cfg = *req.Config
	}
	sess, err := stream.NewSession(ctx, cfg)
	if err != nil {
		if ctx.Err() != nil {
			s.mDeadline.Inc()
			writeError(w, http.StatusGatewayTimeout, "deadline exceeded")
			return
		}
		s.mBadRequest.Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id := req.SessionID
	if id == "" {
		id = newSessionID()
	}
	evicted, ok := s.streams.add(id, &streamEntry{s: sess, tenant: tenant, lastUsed: time.Now()})
	if evicted > 0 {
		s.mStreamEvicted.Add(int64(evicted))
	}
	if !ok {
		if _, exists := s.streams.get(id); exists {
			s.mBadRequest.Inc()
			writeError(w, http.StatusConflict, "session %q already exists", id)
			return
		}
		s.mRejQueue.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "session registry full (%d sessions)", s.cfg.MaxStreamSessions)
		return
	}
	s.mStreamCreated.Inc()
	s.gStreamActive.Set(float64(s.streams.len()))
	u, err := sess.Query(ctx)
	if err != nil {
		s.streamError(w, ctx, err)
		return
	}
	writeJSON(w, http.StatusOK, &StreamResponse{
		SessionID: id,
		Seq:       u.Seq,
		Marginals: u.Marginals,
		Stats:     &u.Stats,
		Windows:   streamWindows(sess),
	})
}

func (s *Server) streamPush(ctx context.Context, w http.ResponseWriter, req StreamRequest) {
	e, ok := s.streams.get(req.SessionID)
	if !ok {
		writeError(w, http.StatusNotFound, "no session %q", req.SessionID)
		return
	}
	u, err := e.s.Apply(ctx, req.BaseSeq, req.Deltas)
	if err != nil {
		var se *stream.SeqError
		if errors.As(err, &se) {
			s.mStreamSeqConflict.Inc()
			writeJSON(w, http.StatusConflict, streamSeqConflict{Error: se.Error(), Seq: se.Want})
			return
		}
		s.streamError(w, ctx, err)
		return
	}
	s.mStreamPushes.Inc()
	s.mStreamDeltas.Add(int64(u.Stats.Applied))
	s.mStreamReplays.Add(int64(u.Stats.Replayed))
	s.mStreamRetraces.Add(int64(u.Stats.Retraced))
	s.mStreamRegrounds.Add(int64(u.Stats.Reground))
	if u.Stats.Full {
		s.mStreamFull.Inc()
	}
	writeJSON(w, http.StatusOK, &StreamResponse{
		SessionID: req.SessionID,
		Seq:       u.Seq,
		Marginals: u.Marginals,
		Stats:     &u.Stats,
	})
}

func (s *Server) streamQuery(ctx context.Context, w http.ResponseWriter, req StreamRequest) {
	e, ok := s.streams.get(req.SessionID)
	if !ok {
		writeError(w, http.StatusNotFound, "no session %q", req.SessionID)
		return
	}
	u, err := e.s.Query(ctx)
	if err != nil {
		s.streamError(w, ctx, err)
		return
	}
	writeJSON(w, http.StatusOK, &StreamResponse{
		SessionID: req.SessionID,
		Seq:       u.Seq,
		Marginals: u.Marginals,
		Stats:     &u.Stats,
		Windows:   streamWindows(e.s),
	})
}

func (s *Server) streamClose(w http.ResponseWriter, req StreamRequest) {
	if !s.streams.remove(req.SessionID) {
		writeError(w, http.StatusNotFound, "no session %q", req.SessionID)
		return
	}
	s.mStreamClosed.Inc()
	s.gStreamActive.Set(float64(s.streams.len()))
	writeJSON(w, http.StatusOK, &StreamResponse{SessionID: req.SessionID, Closed: true})
}

// streamError maps a session failure onto the response contract: 400 for
// rejected batches, 504/499 for context expiry, 422 otherwise.
func (s *Server) streamError(w http.ResponseWriter, ctx context.Context, err error) {
	var ve *stream.ValidationError
	if errors.As(err, &ve) {
		s.mBadRequest.Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if ctx.Err() != nil {
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.mDeadline.Inc()
			writeError(w, http.StatusGatewayTimeout, "deadline exceeded")
		} else {
			s.mCanceled.Inc()
			w.WriteHeader(statusClientClosedRequest)
		}
		return
	}
	s.mErrors.Inc()
	writeError(w, http.StatusUnprocessableEntity, "%v", err)
}

func streamWindows(sess *stream.Session) []StreamWindow {
	var out []StreamWindow
	for _, w := range sess.Windows() {
		vars, _ := sess.VarNames(w)
		ids, _ := sess.TupleIDs(w)
		out = append(out, StreamWindow{Window: w, Vars: vars, Tuples: ids})
	}
	return out
}
