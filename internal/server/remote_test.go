package server

import (
	"encoding/json"
	"math"
	"net/http"
	"testing"

	"enframe/internal/core"
	"enframe/internal/dist"
)

// startDistWorker runs an in-process dist.Worker backed by the server's own
// spec resolver — the same wiring `enframe worker` uses — and returns its
// address.
func startDistWorker(t *testing.T) string {
	t.Helper()
	w, err := dist.NewWorker(dist.WorkerConfig{
		Resolver: func(specJSON []byte) (core.Spec, string, error) {
			var req RunRequest
			if err := json.Unmarshal(specJSON, &req); err != nil {
				return core.Spec{}, "", err
			}
			return BuildSpec(req)
		},
		Slots: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go func() { _ = w.Serve() }()
	t.Cleanup(func() { _ = w.Close() })
	return w.Addr()
}

func TestRemoteRunMatchesLocal(t *testing.T) {
	addr := startDistWorker(t)
	s := startTestServer(t, Config{})
	client := &http.Client{}

	local := smallRequest(31, 10)
	status, localResp, raw := postRun(t, client, s.Addr(), local)
	if status != http.StatusOK {
		t.Fatalf("local run: status %d: %s", status, raw)
	}
	if localResp.Remote != nil {
		t.Fatalf("local run reported remote involvement: %+v", localResp.Remote)
	}

	remote := local
	remote.RemoteWorkers = []string{addr}
	status, remoteResp, raw := postRun(t, client, s.Addr(), remote)
	if status != http.StatusOK {
		t.Fatalf("remote run: status %d: %s", status, raw)
	}
	if remoteResp.Remote == nil || remoteResp.Remote.Workers != 1 || remoteResp.Remote.Fallback {
		t.Fatalf("remote block: %+v", remoteResp.Remote)
	}
	if len(remoteResp.Targets) != len(localResp.Targets) {
		t.Fatalf("target count: remote %d, local %d", len(remoteResp.Targets), len(localResp.Targets))
	}
	for i, rt := range remoteResp.Targets {
		lt := localResp.Targets[i]
		if rt.Name != lt.Name ||
			math.Float64bits(rt.Lower) != math.Float64bits(lt.Lower) ||
			math.Float64bits(rt.Upper) != math.Float64bits(lt.Upper) {
			t.Fatalf("target %d diverges: remote %+v, local %+v", i, rt, lt)
		}
	}
	if counterValue(s, "server.remote.runs") == 0 {
		t.Error("server.remote.runs not incremented")
	}
}

func TestRemoteDeadWorkersAnswer502(t *testing.T) {
	s := startTestServer(t, Config{})
	client := &http.Client{}

	req := smallRequest(32, 8)
	req.RemoteWorkers = []string{"127.0.0.1:1"}
	status, _, raw := postRun(t, client, s.Addr(), req)
	if status != http.StatusBadGateway {
		t.Fatalf("want 502, got %d: %s", status, raw)
	}
	if counterValue(s, "server.responses.bad_gateway") == 0 {
		t.Error("server.responses.bad_gateway not incremented")
	}
}

func TestRemoteFallbackServesLocally(t *testing.T) {
	s := startTestServer(t, Config{})
	client := &http.Client{}

	req := smallRequest(33, 8)
	req.RemoteWorkers = []string{"127.0.0.1:1"}
	req.RemoteFallback = true
	status, resp, raw := postRun(t, client, s.Addr(), req)
	if status != http.StatusOK {
		t.Fatalf("want 200 via fallback, got %d: %s", status, raw)
	}
	if resp.Remote == nil || !resp.Remote.Fallback {
		t.Fatalf("fallback not reported: %+v", resp.Remote)
	}
	if counterValue(s, "server.remote.fallbacks") == 0 {
		t.Error("server.remote.fallbacks not incremented")
	}
}

func TestRemoteRequestValidation(t *testing.T) {
	s := startTestServer(t, Config{})
	client := &http.Client{}

	fallbackOnly := smallRequest(34, 8)
	fallbackOnly.RemoteFallback = true
	if status, _, raw := postRun(t, client, s.Addr(), fallbackOnly); status != http.StatusBadRequest {
		t.Errorf("remote_fallback without remote_workers: want 400, got %d: %s", status, raw)
	}

	blank := smallRequest(34, 8)
	blank.RemoteWorkers = []string{"  "}
	if status, _, raw := postRun(t, client, s.Addr(), blank); status != http.StatusBadRequest {
		t.Errorf("blank remote_workers entry: want 400, got %d: %s", status, raw)
	}

	tooMany := smallRequest(34, 8)
	for i := 0; i < maxWorkersPerRequest+1; i++ {
		tooMany.RemoteWorkers = append(tooMany.RemoteWorkers, "127.0.0.1:1")
	}
	if status, _, raw := postRun(t, client, s.Addr(), tooMany); status != http.StatusBadRequest {
		t.Errorf("too many remote_workers: want 400, got %d: %s", status, raw)
	}
}
