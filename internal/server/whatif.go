package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"enframe/internal/core"
	"enframe/internal/event"
	"enframe/internal/prob"
)

// WhatifRequest is the body of POST /v1/whatif: sweep one input variable's
// marginal probability over a grid and report every target's bounds at each
// grid point, answered by replaying the artifact's cached arithmetic
// circuit — the whole sweep costs at most one compilation (a cold trace)
// and N evaluations. Program, data, params, and targets identify the
// artifact exactly as in /v1/run.
type WhatifRequest struct {
	Program string    `json:"program,omitempty"`
	Source  string    `json:"source,omitempty"`
	Data    DataSpec  `json:"data"`
	Params  ParamSpec `json:"params"`
	Targets []string  `json:"targets,omitempty"`
	// Var names the swept input variable (e.g. "x3"); empty sweeps the
	// first variable of the compilation order — the most influential one
	// under the fanout heuristic.
	Var string `json:"var,omitempty"`
	// Grid lists explicit probabilities to evaluate, each in [0, 1].
	// Mutually exclusive with Steps.
	Grid []float64 `json:"grid,omitempty"`
	// Steps asks for a uniform grid of that many points spanning [0, 1]
	// inclusive; default 32, maximum 256.
	Steps int `json:"steps,omitempty"`
	// Influence additionally reports each target's conditional
	// probabilities at the swept variable's extremes and the derivative
	// ∂Pr[target]/∂p — the VarInfluence decomposition, batched over all
	// targets from two extra evaluations.
	Influence bool `json:"influence,omitempty"`
	// Order selects the variable-order heuristic, as in /v1/run.
	Order     string `json:"order,omitempty"`
	TimeoutMs int    `json:"timeout_ms,omitempty"`
	// Tenant identifies the caller for quota enforcement, as in /v1/run.
	Tenant string `json:"tenant,omitempty"`
}

// WhatifResponse is the body of a successful POST /v1/whatif.
type WhatifResponse struct {
	// Var is the swept variable; BaseProb its marginal in the stored data.
	Var      string  `json:"var"`
	BaseProb float64 `json:"base_prob"`
	// Cache is the artifact cache disposition ("hit"/"miss"), as in /v1/run.
	Cache   string        `json:"cache"`
	Circuit CircuitInfo   `json:"circuit"`
	Points  []WhatifPoint `json:"points"`
	// Influence is present when the request set "influence": true.
	Influence []TargetInfluence `json:"influence,omitempty"`
}

// CircuitInfo describes the circuit that served the sweep.
type CircuitInfo struct {
	Nodes  int `json:"nodes"`
	Events int `json:"events"`
	// Cached is true when the circuit came from the artifact's memo: the
	// request paid zero compilations.
	Cached   bool    `json:"cached"`
	Complete bool    `json:"complete"`
	TraceMs  float64 `json:"trace_ms,omitempty"`
	EvalMs   float64 `json:"eval_ms"`
}

// WhatifPoint is the per-target bounds at one grid probability.
type WhatifPoint struct {
	P       float64     `json:"p"`
	Targets []RunTarget `json:"targets"`
}

// TargetInfluence is one target's sensitivity to the swept variable.
type TargetInfluence struct {
	Target     string  `json:"target"`
	CondTrue   float64 `json:"cond_true"`
	CondFalse  float64 `json:"cond_false"`
	Derivative float64 `json:"derivative"`
}

// maxWhatifPoints bounds the sweep grid.
const maxWhatifPoints = 256

// RunRequest strips a what-if request down to the artifact-identifying
// RunRequest used for cache-key derivation and validation; the shard router
// uses it to route what-if traffic by the same artifact key as /v1/run.
func (wr WhatifRequest) RunRequest() RunRequest {
	return RunRequest{
		Program: wr.Program,
		Source:  wr.Source,
		Data:    wr.Data,
		Params:  wr.Params,
		Targets: wr.Targets,
		Order:   wr.Order,
	}.withDefaults()
}

// grid resolves the evaluation grid after validation.
func (wr WhatifRequest) grid() ([]float64, error) {
	if len(wr.Grid) > 0 && wr.Steps > 0 {
		return nil, badRequest("grid and steps are mutually exclusive")
	}
	if len(wr.Grid) > 0 {
		if len(wr.Grid) > maxWhatifPoints {
			return nil, badRequest("grid must list at most %d points (got %d)", maxWhatifPoints, len(wr.Grid))
		}
		for _, p := range wr.Grid {
			if !(p >= 0 && p <= 1) {
				return nil, badRequest("grid probabilities must be in [0, 1] (got %g)", p)
			}
		}
		return wr.Grid, nil
	}
	steps := wr.Steps
	if steps == 0 {
		steps = 32
	}
	if steps < 2 || steps > maxWhatifPoints {
		return nil, badRequest("steps must be in [2, %d] (got %d)", maxWhatifPoints, steps)
	}
	g := make([]float64, steps)
	for i := range g {
		g[i] = float64(i) / float64(steps-1)
	}
	return g, nil
}

// handleWhatif is POST /v1/whatif: admission → decode → cached artifact →
// cached circuit → grid replay. Status contract matches /v1/run, plus 422
// when the trace was pruned (an incomplete circuit cannot answer at swept
// probabilities).
func (s *Server) handleWhatif(w http.ResponseWriter, r *http.Request) {
	s.mRequests.Inc()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.draining.Load() {
		s.mRejDraining.Inc()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	select {
	case s.queueSlots <- struct{}{}:
		defer func() { <-s.queueSlots }()
	default:
		s.mRejQueue.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "queue full (%d executing + %d waiting)",
			s.cfg.MaxInflight, s.cfg.QueueDepth)
		return
	}

	var req WhatifRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.mBadRequest.Inc()
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	grid, err := req.grid()
	if err != nil {
		s.mBadRequest.Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.TimeoutMs < 0 {
		s.mBadRequest.Inc()
		writeError(w, http.StatusBadRequest, "timeout_ms must be ≥ 0")
		return
	}
	rreq := req.RunRequest()
	spec, key, err := BuildSpec(rreq)
	if err != nil {
		s.mBadRequest.Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	info := infoFrom(r.Context())
	info.artifact = key

	tenant := resolveTenant(req.Tenant, r.Header.Get(tenantHeader))
	info.tenant = tenant
	if !s.tenants.acquire(tenant) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "tenant %q over quota (%d slots)",
			tenant, s.cfg.TenantQuota)
		return
	}
	defer s.tenants.release(tenant)

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	select {
	case s.workSlots <- struct{}{}:
		defer func() { <-s.workSlots }()
	case <-ctx.Done():
		s.finishCtxErr(w, r, ctx)
		return
	}
	cur := s.inflight.Add(1)
	s.gInflight.Set(float64(cur))
	s.gInflightPeak.SetMax(float64(cur))
	defer func() { s.gInflight.Set(float64(s.inflight.Add(-1))) }()
	if testHookInflight != nil {
		testHookInflight()
	}

	t0 := time.Now()
	resp, cache, err := s.executeWhatif(ctx, spec, key, rreq, req, grid)
	info.cache = cache.String()
	if err != nil {
		if ctx.Err() != nil {
			s.finishCtxErr(w, r, ctx)
			return
		}
		if _, ok := err.(*badRequestError); ok {
			s.mBadRequest.Inc()
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.mErrors.Inc()
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.hLatency.Observe(float64(time.Since(t0)) / float64(time.Millisecond))
	s.mOK.Inc()
	writeJSON(w, http.StatusOK, resp)
}

// executeWhatif resolves the artifact and its circuit through their caches
// and replays the grid.
func (s *Server) executeWhatif(ctx context.Context, spec core.Spec, key string, rreq RunRequest, req WhatifRequest, grid []float64) (*WhatifResponse, cacheOutcome, error) {
	prepare := func() (*core.Artifact, error) { return core.PrepareContext(ctx, spec) }
	art, cache, err := s.cache.getOrPrepare(key, prepare)
	if err != nil && isCtxError(err) && ctx.Err() == nil {
		art, cache, err = s.cache.getOrPrepare(key, prepare)
	}
	if err != nil {
		return nil, cache, err
	}
	heuristic, _ := parseOrder(rreq.Order) // validated by BuildSpec

	tTrace := time.Now()
	c, _, circuitCached, err := art.Circuit(ctx, prob.Options{Heuristic: heuristic})
	traceDur := time.Since(tTrace)
	if err != nil {
		return nil, cache, err
	}
	if circuitCached {
		s.mCircuitHits.Inc()
	} else {
		s.mCircuitMisses.Inc()
	}
	s.gCircuitNodes.Set(float64(c.Nodes()))
	if !c.Complete() {
		return nil, cache, fmt.Errorf("circuit trace was pruned (timed out or converged early); what-if replay needs a complete circuit")
	}

	// Resolve the swept variable: by name, or default to the head of the
	// compilation order (the most influential variable under the heuristic).
	sp := art.Net.Space
	xv := event.VarID(-1)
	if req.Var == "" {
		order := art.Order(heuristic)
		if len(order) == 0 {
			return nil, cache, badRequest("network has no variables to sweep")
		}
		xv = order[0]
	} else {
		for i := 0; i < sp.Len(); i++ {
			if sp.Name(event.VarID(i)) == req.Var {
				xv = event.VarID(i)
				break
			}
		}
		if xv < 0 {
			return nil, cache, badRequest("no input variable named %q", req.Var)
		}
	}

	probs := prob.SpaceProbs(sp)
	base := probs[xv]
	resp := &WhatifResponse{
		Var:      sp.Name(xv),
		BaseProb: base,
		Cache:    cache.String(),
		Circuit: CircuitInfo{
			Nodes:    c.Nodes(),
			Events:   c.Events(),
			Cached:   circuitCached,
			Complete: c.Complete(),
		},
		Points: make([]WhatifPoint, 0, len(grid)),
	}
	if !circuitCached {
		resp.Circuit.TraceMs = ms(traceDur)
	}

	evalAt := func(p float64) (*prob.Result, error) {
		probs[xv] = p
		tEval := time.Now()
		res, err := prob.EvalCircuit(c, probs)
		d := ms(time.Since(tEval))
		s.hCircuitEval.Observe(d)
		resp.Circuit.EvalMs += d
		return res, err
	}
	for _, p := range grid {
		res, err := evalAt(p)
		if err != nil {
			return nil, cache, err
		}
		pt := WhatifPoint{P: p, Targets: make([]RunTarget, 0, len(res.Targets))}
		for _, tb := range res.Targets {
			pt.Targets = append(pt.Targets, RunTarget{
				Name: tb.Name, Lower: tb.Lower, Upper: tb.Upper, Estimate: tb.Estimate(),
			})
		}
		resp.Points = append(resp.Points, pt)
	}
	if req.Influence {
		condTrue, err := evalAt(1)
		if err != nil {
			return nil, cache, err
		}
		condFalse, err := evalAt(0)
		if err != nil {
			return nil, cache, err
		}
		for i, tt := range condTrue.Targets {
			tf := condFalse.Targets[i]
			resp.Influence = append(resp.Influence, TargetInfluence{
				Target:     tt.Name,
				CondTrue:   tt.Estimate(),
				CondFalse:  tf.Estimate(),
				Derivative: tt.Estimate() - tf.Estimate(),
			})
		}
	}
	probs[xv] = base
	return resp, cache, nil
}
