package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"testing"
	"time"

	"enframe/internal/stream"
)

func postStream(t *testing.T, client *http.Client, addr string, req StreamRequest) (int, StreamResponse, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post("http://"+addr+"/v1/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/stream: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var out StreamResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("bad response JSON: %v\n%s", err, buf.Bytes())
		}
	}
	return resp.StatusCode, out, buf.Bytes()
}

func smallStreamConfig() *stream.Config {
	return &stream.Config{
		Program:  "kmedoids",
		K:        2,
		Iter:     2,
		Segments: 3,
		SegmentN: 5,
		Group:    2,
		Seed:     5,
	}
}

func pf(v float64) *float64 { return &v }
func pw(v int64) *int64     { return &v }

func TestStreamSessionLifecycle(t *testing.T) {
	s := startTestServer(t, Config{})
	client := &http.Client{}

	status, created, raw := postStream(t, client, s.Addr(), StreamRequest{
		Op: "create", Config: smallStreamConfig(),
	})
	if status != http.StatusOK {
		t.Fatalf("create: status %d: %s", status, raw)
	}
	if created.SessionID == "" || created.Seq != 0 {
		t.Fatalf("create: bad response %+v", created)
	}
	if len(created.Windows) != 3 || len(created.Marginals) == 0 {
		t.Fatalf("create: windows/marginals missing: %+v", created)
	}

	// Push a probability delta addressed at a real variable.
	v := created.Windows[0].Vars[0]
	status, pushed, raw := postStream(t, client, s.Addr(), StreamRequest{
		Op: "push", SessionID: created.SessionID, BaseSeq: 0,
		Deltas: []stream.Delta{{Op: stream.OpProb, Window: pw(created.Windows[0].Window), Var: v, P: pf(0.33)}},
	})
	if status != http.StatusOK {
		t.Fatalf("push: status %d: %s", status, raw)
	}
	if pushed.Seq != 1 || pushed.Stats == nil || pushed.Stats.Replayed != 1 {
		t.Fatalf("push: %+v / %+v", pushed, pushed.Stats)
	}

	// Query returns the same state.
	status, queried, raw := postStream(t, client, s.Addr(), StreamRequest{
		Op: "query", SessionID: created.SessionID,
	})
	if status != http.StatusOK {
		t.Fatalf("query: status %d: %s", status, raw)
	}
	if queried.Seq != 1 {
		t.Fatalf("query: seq %d, want 1", queried.Seq)
	}
	for i := range queried.Marginals {
		if math.Float64bits(queried.Marginals[i].Lower) != math.Float64bits(pushed.Marginals[i].Lower) {
			t.Fatalf("query marginals diverge from push response")
		}
	}

	// Close, then the session is gone.
	status, closed, raw := postStream(t, client, s.Addr(), StreamRequest{
		Op: "close", SessionID: created.SessionID,
	})
	if status != http.StatusOK || !closed.Closed {
		t.Fatalf("close: status %d: %s", status, raw)
	}
	status, _, _ = postStream(t, client, s.Addr(), StreamRequest{
		Op: "query", SessionID: created.SessionID,
	})
	if status != http.StatusNotFound {
		t.Fatalf("query after close: status %d, want 404", status)
	}
}

func TestStreamSeqConflictIs409(t *testing.T) {
	s := startTestServer(t, Config{})
	client := &http.Client{}
	_, created, _ := postStream(t, client, s.Addr(), StreamRequest{Op: "create", Config: smallStreamConfig()})
	v := created.Windows[0].Vars[0]
	d := []stream.Delta{{Op: stream.OpProb, Window: pw(created.Windows[0].Window), Var: v, P: pf(0.5)}}

	status, _, _ := postStream(t, client, s.Addr(), StreamRequest{
		Op: "push", SessionID: created.SessionID, BaseSeq: 0, Deltas: d,
	})
	if status != http.StatusOK {
		t.Fatalf("first push: status %d", status)
	}
	// Replaying the same push (same base_seq) must 409 and carry the seq to
	// resume from.
	status, _, raw := postStream(t, client, s.Addr(), StreamRequest{
		Op: "push", SessionID: created.SessionID, BaseSeq: 0, Deltas: d,
	})
	if status != http.StatusConflict {
		t.Fatalf("duplicate push: status %d, want 409: %s", status, raw)
	}
	var conflict streamSeqConflict
	if err := json.Unmarshal(raw, &conflict); err != nil || conflict.Seq != 1 {
		t.Fatalf("conflict body should carry seq=1: %s", raw)
	}
	if got := s.reg.Counter("stream.seq_conflicts").Value(); got != 1 {
		t.Fatalf("stream.seq_conflicts = %d, want 1", got)
	}
}

// TestStreamStructuralDeltaServesFreshCircuit is the stale-circuit
// regression: a structural delta must invalidate the segment's memoized
// circuit, so a following query reflects the new structure instead of
// replaying the stale one. The inserted tuple carries probability 1 at the
// position of an existing certain point, which measurably moves the
// cluster-membership marginals.
func TestStreamStructuralDeltaServesFreshCircuit(t *testing.T) {
	s := startTestServer(t, Config{})
	client := &http.Client{}
	cfg := smallStreamConfig()
	cfg.Segments = 4 // keep the dirty fraction below the full-rebuild threshold
	_, created, _ := postStream(t, client, s.Addr(), StreamRequest{Op: "create", Config: cfg})

	w := created.Windows[1].Window
	before := map[string]float64{}
	for _, m := range created.Marginals {
		if m.Window == w {
			before[m.Name] = m.Lower
		}
	}

	// Pile three confident tuples onto one spot of window w.
	var deltas []stream.Delta
	for i := 0; i < 3; i++ {
		deltas = append(deltas, stream.Delta{
			Op: stream.OpInsert, Window: pw(w), Pos: []float64{0.95, 0.95}, P: pf(1),
		})
	}
	status, pushed, raw := postStream(t, client, s.Addr(), StreamRequest{
		Op: "push", SessionID: created.SessionID, BaseSeq: 0, Deltas: deltas,
	})
	if status != http.StatusOK {
		t.Fatalf("push: status %d: %s", status, raw)
	}
	if pushed.Stats.Retraced == 0 {
		t.Fatalf("structural delta did not re-trace any segment: %+v", pushed.Stats)
	}

	// The replayed query must serve the fresh circuit's marginals.
	_, queried, _ := postStream(t, client, s.Addr(), StreamRequest{Op: "query", SessionID: created.SessionID})
	moved := false
	for _, m := range queried.Marginals {
		if m.Window != w {
			continue
		}
		if old, ok := before[m.Name]; ok && math.Float64bits(old) != math.Float64bits(m.Lower) {
			moved = true
		}
	}
	if !moved {
		t.Fatalf("marginals of window %d did not move after structural deltas (stale circuit?)", w)
	}
	// And they must match the push response exactly (replay determinism).
	for i := range queried.Marginals {
		if math.Float64bits(queried.Marginals[i].Lower) != math.Float64bits(pushed.Marginals[i].Lower) {
			t.Fatalf("query and push marginals diverge at %d", i)
		}
	}
}

func TestStreamValidationAndRouting(t *testing.T) {
	s := startTestServer(t, Config{})
	client := &http.Client{}

	// Unknown session: 404.
	status, _, _ := postStream(t, client, s.Addr(), StreamRequest{Op: "push", SessionID: "nope"})
	if status != http.StatusNotFound {
		t.Fatalf("push to unknown session: status %d, want 404", status)
	}
	// Unknown op: 400.
	status, _, _ = postStream(t, client, s.Addr(), StreamRequest{Op: "mutate"})
	if status != http.StatusBadRequest {
		t.Fatalf("unknown op: status %d, want 400", status)
	}
	// Bad config: 400.
	status, _, _ = postStream(t, client, s.Addr(), StreamRequest{
		Op: "create", Config: &stream.Config{Program: "mcl"},
	})
	if status != http.StatusBadRequest {
		t.Fatalf("mcl create: status %d, want 400", status)
	}
	// Bad delta batch: 400, and the session survives.
	_, created, _ := postStream(t, client, s.Addr(), StreamRequest{Op: "create", Config: smallStreamConfig()})
	status, _, _ = postStream(t, client, s.Addr(), StreamRequest{
		Op: "push", SessionID: created.SessionID, BaseSeq: 0,
		Deltas: []stream.Delta{{Op: stream.OpProb, Var: "no-such-var", P: pf(0.5)}},
	})
	if status != http.StatusBadRequest {
		t.Fatalf("bad delta: status %d, want 400", status)
	}
	status, q, _ := postStream(t, client, s.Addr(), StreamRequest{Op: "query", SessionID: created.SessionID})
	if status != http.StatusOK || q.Seq != 0 {
		t.Fatalf("session state moved after rejected batch: status %d seq %d", status, q.Seq)
	}
}

func TestStreamRegistryCapAndEviction(t *testing.T) {
	s := startTestServer(t, Config{MaxStreamSessions: 2, StreamIdleTimeout: 50 * time.Millisecond})
	client := &http.Client{}
	mk := func() (int, StreamResponse) {
		st, resp, _ := postStream(t, client, s.Addr(), StreamRequest{Op: "create", Config: smallStreamConfig()})
		return st, resp
	}
	if st, _ := mk(); st != http.StatusOK {
		t.Fatalf("create 1: %d", st)
	}
	if st, _ := mk(); st != http.StatusOK {
		t.Fatalf("create 2: %d", st)
	}
	// Registry full, nothing idle yet: 429.
	if st, _ := mk(); st != http.StatusTooManyRequests {
		t.Fatalf("create at cap: status %d, want 429", st)
	}
	// After the idle timeout, creation evicts and succeeds.
	time.Sleep(60 * time.Millisecond)
	if st, _ := mk(); st != http.StatusOK {
		t.Fatalf("create after idle: %d", st)
	}
	if s.reg.Counter("stream.sessions.evicted").Value() == 0 {
		t.Fatal("no evictions recorded")
	}
}
