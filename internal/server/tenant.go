package server

import (
	"fmt"
	"sync"

	"enframe/internal/obs"
)

// tenantHeader carries the caller's tenant identity when the request body
// does not; the body field wins when both are present.
const tenantHeader = "X-Tenant-Id"

// maxTenantIDLen bounds what an inbound tenant identifier may inject into
// metric names and logs.
const maxTenantIDLen = 64

// maxTenantSeries bounds the number of tenants that get their own metric
// series; beyond it, accounting still works (quotas are per real tenant)
// but the extra tenants share the "overflow" series, so a tenant-id
// cardinality attack cannot balloon the registry.
const maxTenantSeries = 32

// tenantLimiter is the fairness-aware half of admission control: it caps
// how many admission slots (executing + queued) any single named tenant may
// occupy, so one hot tenant saturating the accept queue still leaves
// capacity for everyone else. Anonymous traffic (no tenant field, no
// X-Tenant-Id header) is accounted but never throttled — without an
// identity there is nothing fair to enforce against.
type tenantLimiter struct {
	quota int

	mu     sync.Mutex
	active map[string]int  // tenant → admission slots currently held
	series map[string]bool // tenants with their own metric series

	reg        *obs.Registry
	mRequests  *obs.Counter
	mThrottled *obs.Counter
	gTenants   *obs.Gauge
}

func newTenantLimiter(quota int, reg *obs.Registry) *tenantLimiter {
	return &tenantLimiter{
		quota:      quota,
		active:     map[string]int{},
		series:     map[string]bool{},
		reg:        reg,
		mRequests:  reg.Counter("server.tenant.requests"),
		mThrottled: reg.Counter("server.tenant.throttled"),
		gTenants:   reg.Gauge("server.tenant.active"),
	}
}

// resolveTenant picks the request's tenant identity: the body field wins,
// then the X-Tenant-Id header; empty means anonymous. The result is
// sanitized for use in metric names and logs.
func resolveTenant(field, header string) string {
	id := field
	if id == "" {
		id = header
	}
	return sanitizeTenant(id)
}

// sanitizeTenant truncates and restricts a tenant identifier to
// [A-Za-z0-9._-], replacing everything else with '_'.
func sanitizeTenant(id string) string {
	if len(id) > maxTenantIDLen {
		id = id[:maxTenantIDLen]
	}
	b := []byte(id)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// seriesID maps a tenant onto its metric-series name, folding tenants past
// the cardinality cap into "overflow". Callers hold t.mu.
func (t *tenantLimiter) seriesID(id string) string {
	if t.series[id] {
		return id
	}
	if len(t.series) < maxTenantSeries {
		t.series[id] = true
		return id
	}
	return "overflow"
}

// acquire claims one admission slot for the tenant, or reports that the
// tenant is over quota (the caller answers 429). Anonymous requests
// (id == "") always succeed.
func (t *tenantLimiter) acquire(id string) bool {
	if t == nil {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.mRequests.Inc()
	if id == "" {
		return true
	}
	sid := t.seriesID(id)
	if t.active[id] >= t.quota {
		t.mThrottled.Inc()
		t.reg.Counter(fmt.Sprintf("server.tenant.%s.throttled", sid)).Inc()
		return false
	}
	t.active[id]++
	t.reg.Counter(fmt.Sprintf("server.tenant.%s.requests", sid)).Inc()
	t.reg.Gauge(fmt.Sprintf("server.tenant.%s.inflight", sid)).Set(float64(t.active[id]))
	t.gTenants.Set(float64(len(t.active)))
	return true
}

// release returns the tenant's admission slot.
func (t *tenantLimiter) release(id string) {
	if t == nil || id == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.active[id] <= 1 {
		delete(t.active, id)
	} else {
		t.active[id]--
	}
	t.reg.Gauge(fmt.Sprintf("server.tenant.%s.inflight", t.seriesID(id))).Set(float64(t.active[id]))
	t.gTenants.Set(float64(len(t.active)))
}
