package server

import (
	"context"
	"encoding/json"
	"net/http"

	"enframe/internal/core"
)

// WarmResponse is the body of a successful POST /v1/warm.
type WarmResponse struct {
	// Key is the artifact content hash the request resolved to.
	Key string `json:"key"`
	// Cache is the artifact cache disposition: "hit" when the artifact was
	// already resident, "miss" when this warm paid for preparation,
	// "coalesced" when it joined another in-flight preparation.
	Cache        string `json:"cache"`
	Variables    int    `json:"variables"`
	NetworkNodes int    `json:"network_nodes"`
}

// handleWarm is POST /v1/warm: resolve the request's artifact into the
// compiled-artifact cache without compiling probabilities. The shard router
// uses it to migrate cache residency on membership change — when the ring
// reassigns a key, the new owner is warmed before traffic finds it cold.
// The body is a RunRequest; only the artifact-identifying fields matter
// (strategy/ε/deadlines are ignored). Warming takes a worker slot (the
// front end is real CPU work) but bypasses tenant quotas: it is fleet
// maintenance, not tenant traffic.
func (s *Server) handleWarm(w http.ResponseWriter, r *http.Request) {
	s.mRequests.Inc()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.draining.Load() {
		s.mRejDraining.Inc()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	select {
	case s.queueSlots <- struct{}{}:
		defer func() { <-s.queueSlots }()
	default:
		s.mRejQueue.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "queue full (%d executing + %d waiting)",
			s.cfg.MaxInflight, s.cfg.QueueDepth)
		return
	}

	var req RunRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.mBadRequest.Inc()
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	spec, key, err := BuildSpec(ArtifactRequest(req))
	if err != nil {
		s.mBadRequest.Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	info := infoFrom(r.Context())
	info.artifact = key

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.DefaultTimeout)
	defer cancel()
	select {
	case s.workSlots <- struct{}{}:
		defer func() { <-s.workSlots }()
	case <-ctx.Done():
		s.finishCtxErr(w, r, ctx)
		return
	}

	prepare := func() (*core.Artifact, error) { return core.PrepareContext(ctx, spec) }
	art, cache, err := s.cache.getOrPrepare(key, prepare)
	if err != nil && isCtxError(err) && ctx.Err() == nil {
		art, cache, err = s.cache.getOrPrepare(key, prepare)
	}
	info.cache = cache.String()
	if err != nil {
		if ctx.Err() != nil {
			s.finishCtxErr(w, r, ctx)
			return
		}
		s.mErrors.Inc()
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.mWarm.Inc()
	writeJSON(w, http.StatusOK, WarmResponse{
		Key:          key,
		Cache:        cache.String(),
		Variables:    art.Net.Space.Len(),
		NetworkNodes: art.Net.NumNodes(),
	})
}
