package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"time"
)

// requestIDHeader carries the per-request correlation identifier: an inbound
// value is echoed back (so callers can stitch server lines into their own
// traces); absent one, the server generates an ID. Every response carries the
// header, and every access-log line carries the same value.
const requestIDHeader = "X-Request-Id"

// maxRequestIDLen bounds what an inbound header may inject into logs.
const maxRequestIDLen = 64

// newRequestID returns a 16-hex-char random identifier.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// reqInfo is the per-request telemetry record: installed by the middleware,
// filled in by handlers, consumed by the access log once the response is
// written.
type reqInfo struct {
	id       string
	artifact string // artifact cache key (content hash); run requests only
	cache    string // miss | hit | coalesced
	remote   bool   // jobs shipped to remote workers
	fallback bool   // remote requested but served locally
	tenant   string // sanitized tenant identity; empty for anonymous
}

type reqInfoKey struct{}

// infoFrom returns the request's telemetry record. Handlers invoked without
// the middleware (direct mux use in tests) get a discardable record, so the
// fill-in sites need no nil checks.
func infoFrom(ctx context.Context) *reqInfo {
	if info, ok := ctx.Value(reqInfoKey{}).(*reqInfo); ok {
		return info
	}
	return &reqInfo{}
}

// statusRecorder captures the response status and body size for the access
// log and the per-outcome latency histograms.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += int64(n)
	return n, err
}

// Flush keeps streaming handlers (pprof profiles) working under the wrapper.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// outcomeForStatus maps a response status onto the serving contract's
// outcome vocabulary (SERVING.md). The same words key the per-outcome
// latency histograms and the access log.
func outcomeForStatus(status int) string {
	switch status {
	case http.StatusOK:
		return "ok"
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusUnprocessableEntity:
		return "error"
	case http.StatusTooManyRequests:
		return "queue_full"
	case statusClientClosedRequest:
		return "client_canceled"
	case http.StatusBadGateway:
		return "bad_gateway"
	case http.StatusServiceUnavailable:
		return "draining"
	case http.StatusGatewayTimeout:
		return "deadline_exceeded"
	}
	return "other"
}

// withTelemetry wraps the route mux with the per-request envelope:
// request-ID propagation, status/bytes recording, per-outcome latency
// histograms on the run route, and the structured access log.
func (s *Server) withTelemetry(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(requestIDHeader)
		if id == "" {
			id = newRequestID()
		} else if len(id) > maxRequestIDLen {
			id = id[:maxRequestIDLen]
		}
		w.Header().Set(requestIDHeader, id)
		info := &reqInfo{id: id}
		r = r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, info))
		rec := &statusRecorder{ResponseWriter: w}
		t0 := time.Now()
		next.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		durMs := float64(time.Since(t0)) / float64(time.Millisecond)
		outcome := outcomeForStatus(rec.status)
		if r.URL.Path == "/v1/run" {
			s.reg.Histogram("server.latency_ms."+outcome, latencyBucketsMs).Observe(durMs)
		}
		if s.accessLog == nil {
			return
		}
		attrs := []slog.Attr{
			slog.String("request_id", id),
			slog.String("method", r.Method),
			slog.String("route", r.URL.Path),
			slog.Int("status", rec.status),
			slog.String("outcome", outcome),
			slog.Float64("duration_ms", durMs),
			slog.Int64("bytes", rec.bytes),
		}
		if info.artifact != "" {
			attrs = append(attrs,
				slog.String("artifact", shortHash(info.artifact)),
				slog.String("cache", info.cache))
		}
		if info.remote || info.fallback {
			attrs = append(attrs,
				slog.Bool("remote", info.remote),
				slog.Bool("fallback", info.fallback))
		}
		if info.tenant != "" {
			attrs = append(attrs, slog.String("tenant", info.tenant))
		}
		s.accessLog.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
	})
}

// shortHash truncates a content hash for log lines; 16 hex chars identify an
// artifact beyond any realistic cache population.
func shortHash(h string) string {
	if len(h) > 16 {
		return h[:16]
	}
	return h
}
