package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestRequestIDEchoAndGenerate checks the correlation-ID contract: an inbound
// X-Request-Id comes back verbatim (truncated at 64), and absent one the
// server mints a 16-hex-char ID.
func TestRequestIDEchoAndGenerate(t *testing.T) {
	s := startTestServer(t, Config{})
	client := &http.Client{Timeout: 10 * time.Second}

	req, _ := http.NewRequest(http.MethodGet, "http://"+s.Addr()+"/healthz", nil)
	req.Header.Set("X-Request-Id", "caller-supplied-7")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "caller-supplied-7" {
		t.Errorf("inbound ID not echoed: got %q", got)
	}

	resp2, err := client.Get("http://" + s.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	id := resp2.Header.Get("X-Request-Id")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
		t.Errorf("generated ID %q, want 16 hex chars", id)
	}

	long := strings.Repeat("x", 200)
	req3, _ := http.NewRequest(http.MethodGet, "http://"+s.Addr()+"/healthz", nil)
	req3.Header.Set("X-Request-Id", long)
	resp3, err := client.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if got := resp3.Header.Get("X-Request-Id"); len(got) != maxRequestIDLen {
		t.Errorf("oversized inbound ID echoed at %d chars, want %d", len(got), maxRequestIDLen)
	}
}

// syncBuffer serialises writes so the slog handler can be read back safely
// after requests complete.
type syncBuffer struct {
	mu  chan struct{}
	buf bytes.Buffer
}

func newSyncBuffer() *syncBuffer {
	sb := &syncBuffer{mu: make(chan struct{}, 1)}
	sb.mu <- struct{}{}
	return sb
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	<-sb.mu
	defer func() { sb.mu <- struct{}{} }()
	return sb.buf.Write(p)
}

func (sb *syncBuffer) Lines() []string {
	<-sb.mu
	defer func() { sb.mu <- struct{}{} }()
	return strings.Split(strings.TrimSpace(sb.buf.String()), "\n")
}

// TestAccessLogFields runs one cache-missing and one cache-hitting request
// and checks the structured access-log lines carry the documented schema:
// request_id, method, route, status, outcome, duration, bytes, and the
// run-specific artifact/cache attributes.
func TestAccessLogFields(t *testing.T) {
	sb := newSyncBuffer()
	s := startTestServer(t, Config{AccessLog: slog.New(slog.NewJSONHandler(sb, nil))})
	client := &http.Client{Timeout: 30 * time.Second}

	status, _, _ := postRun(t, client, s.Addr(), smallRequest(1, 12))
	if status != http.StatusOK {
		t.Fatalf("run status %d", status)
	}
	status, _, _ = postRun(t, client, s.Addr(), smallRequest(1, 12))
	if status != http.StatusOK {
		t.Fatalf("rerun status %d", status)
	}

	lines := sb.Lines()
	if len(lines) < 2 {
		t.Fatalf("got %d access-log lines, want >= 2", len(lines))
	}
	var first, second map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 not JSON: %v\n%s", err, lines[0])
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 2 not JSON: %v\n%s", err, lines[1])
	}
	for _, k := range []string{"request_id", "method", "route", "status", "outcome", "duration_ms", "bytes", "artifact", "cache"} {
		if _, ok := first[k]; !ok {
			t.Errorf("access log missing %q: %s", k, lines[0])
		}
	}
	if first["route"] != "/v1/run" || first["method"] != http.MethodPost {
		t.Errorf("route/method = %v/%v", first["route"], first["method"])
	}
	if first["outcome"] != "ok" {
		t.Errorf("outcome = %v, want ok", first["outcome"])
	}
	if first["cache"] != "miss" {
		t.Errorf("first run cache = %v, want miss", first["cache"])
	}
	if c := second["cache"]; c != "hit" && c != "coalesced" {
		t.Errorf("second run cache = %v, want hit or coalesced", c)
	}
	if first["artifact"] != second["artifact"] {
		t.Errorf("artifact differs across identical requests: %v vs %v", first["artifact"], second["artifact"])
	}
	if first["request_id"] == second["request_id"] {
		t.Errorf("request IDs not unique: %v", first["request_id"])
	}
}

// TestRunTraceOptIn checks the "trace": true request field returns the span
// tree inline, and that the default path carries no trace payload.
func TestRunTraceOptIn(t *testing.T) {
	s := startTestServer(t, Config{})
	client := &http.Client{Timeout: 30 * time.Second}

	req := smallRequest(2, 12)
	req.Trace = true
	status, rr, raw := postRun(t, client, s.Addr(), req)
	if status != http.StatusOK {
		t.Fatalf("traced run status %d: %s", status, raw)
	}
	if rr.Trace == nil {
		t.Fatalf("trace:true returned no trace: %s", raw)
	}
	if rr.Trace.Name != "run" {
		t.Errorf("trace root name %q, want \"run\"", rr.Trace.Name)
	}
	if len(rr.Trace.Children) == 0 {
		t.Error("trace root has no children")
	}

	status, rr2, _ := postRun(t, client, s.Addr(), smallRequest(2, 12))
	if status != http.StatusOK {
		t.Fatalf("untraced run status %d", status)
	}
	if rr2.Trace != nil {
		t.Error("untraced run returned a trace payload")
	}
}

// TestMetricsContentNegotiation checks the three /metrics forms: Prometheus
// text on Accept: text/plain, JSON on Accept: application/json, and the
// legacy human-readable dump by default.
func TestMetricsContentNegotiation(t *testing.T) {
	s := startTestServer(t, Config{})
	client := &http.Client{Timeout: 10 * time.Second}
	if st, _, _ := postRun(t, client, s.Addr(), smallRequest(3, 12)); st != http.StatusOK {
		t.Fatalf("warmup run status %d", st)
	}

	get := func(accept, query string) (*http.Response, string) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, "http://"+s.Addr()+"/metrics"+query, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, buf.String()
	}

	resp, body := get("text/plain", "")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("prometheus Content-Type = %q", ct)
	}
	if !strings.Contains(body, "# TYPE ") || !strings.Contains(body, "server_latency_ms_ok_bucket{le=") {
		t.Errorf("prometheus body missing TYPE lines or latency histogram:\n%s", body)
	}

	resp, body = get("application/json", "")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("json Content-Type = %q", ct)
	}
	var vals []map[string]any
	if err := json.Unmarshal([]byte(body), &vals); err != nil {
		t.Fatalf("json body does not parse: %v\n%s", err, body)
	}
	found := false
	for _, v := range vals {
		if v["name"] == "server.latency_ms.ok" && v["kind"] == "histogram" {
			found = true
		}
	}
	if !found {
		t.Errorf("json metrics missing server.latency_ms.ok histogram")
	}

	// curl-style Accept: */* must keep the legacy dump.
	resp, body = get("*/*", "")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; charset=utf-8") {
		t.Errorf("legacy Content-Type = %q", ct)
	}
	if strings.Contains(body, "# TYPE ") {
		t.Errorf("default /metrics switched to prometheus format:\n%s", body)
	}

	// Explicit query parameters override Accept.
	resp, body = get("application/json", "?format=prometheus")
	if !strings.Contains(body, "# TYPE ") {
		t.Errorf("?format=prometheus ignored:\n%s", body)
	}
	_ = resp
}
