package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"
)

// startTestServer boots a server on an ephemeral port and tears it down
// with the test.
func startTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s := New(cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

// smallRequest is a quickly-compiling kmedoids run; vary seed/n for
// distinct cache keys.
func smallRequest(seed int64, n int) RunRequest {
	return RunRequest{
		Program: "kmedoids",
		Data:    DataSpec{N: n, Vars: 5, L: 4, Seed: seed},
		Params:  ParamSpec{K: 2, Iter: 2},
	}
}

// postRun POSTs a request and decodes the response, failing the test on
// transport errors.
func postRun(t *testing.T, client *http.Client, addr string, req RunRequest) (int, RunResponse, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post("http://"+addr+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/run: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var out RunResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("bad response JSON: %v\n%s", err, buf.Bytes())
		}
	}
	return resp.StatusCode, out, buf.Bytes()
}

func counterValue(s *Server, name string) int64 {
	return s.reg.Counter(name).Value()
}

func TestRunMissThenHit(t *testing.T) {
	s := startTestServer(t, Config{})
	client := &http.Client{}

	status, first, firstRaw := postRun(t, client, s.Addr(), smallRequest(1, 8))
	if status != http.StatusOK {
		t.Fatalf("first request: status %d", status)
	}
	if first.Cache != "miss" {
		t.Fatalf("first request: cache = %q, want miss", first.Cache)
	}
	if len(first.Targets) == 0 {
		t.Fatal("first request: no targets")
	}

	status, second, secondRaw := postRun(t, client, s.Addr(), smallRequest(1, 8))
	if status != http.StatusOK {
		t.Fatalf("second request: status %d", status)
	}
	if second.Cache != "hit" {
		t.Fatalf("second request: cache = %q, want hit", second.Cache)
	}

	// The marginals of hit and miss must agree byte for byte.
	var a, b struct {
		Targets json.RawMessage `json:"targets"`
	}
	if err := json.Unmarshal(firstRaw, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(secondRaw, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Targets, b.Targets) {
		t.Errorf("cache hit changed marginals:\nmiss: %s\nhit:  %s", a.Targets, b.Targets)
	}

	if hits, misses := counterValue(s, "server.cache.hits"), counterValue(s, "server.cache.misses"); hits != 1 || misses != 1 {
		t.Errorf("cache counters: hits=%d misses=%d, want 1/1", hits, misses)
	}

	// A different strategy on the same (program, data, targets) still hits:
	// compile parameters are not part of the artifact key.
	req := smallRequest(1, 8)
	req.Strategy = "hybrid"
	req.Epsilon = 0.1
	status, third, _ := postRun(t, client, s.Addr(), req)
	if status != http.StatusOK || third.Cache != "hit" {
		t.Errorf("hybrid on cached key: status=%d cache=%q, want 200/hit", status, third.Cache)
	}
}

func TestSustains64ConcurrentInflight(t *testing.T) {
	const want = 64
	// Cleanup order (LIFO): unblock the barrier, then the server drains,
	// then the hook is uninstalled — so no handler can race the reset.
	t.Cleanup(func() { testHookInflight = nil })
	s := startTestServer(t, Config{MaxInflight: want, QueueDepth: 16})
	release := make(chan struct{})
	var relOnce sync.Once
	unblock := func() { relOnce.Do(func() { close(release) }) }
	t.Cleanup(unblock)

	// Barrier: every request blocks inside its worker slot until all of
	// them hold one simultaneously — deterministic proof of `want`
	// concurrent in-flight requests, independent of compile speed.
	var mu sync.Mutex
	arrived := 0
	testHookInflight = func() {
		mu.Lock()
		arrived++
		n := arrived
		mu.Unlock()
		if n == want {
			unblock()
		}
		<-release
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: want}}
	var wg sync.WaitGroup
	statuses := make([]int, want)
	for i := 0; i < want; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _, _ := postRun(t, client, s.Addr(), smallRequest(int64(i+1), 6))
			statuses[i] = status
		}(i)
	}
	wg.Wait()
	for i, status := range statuses {
		if status != http.StatusOK {
			t.Errorf("request %d: status %d", i, status)
		}
	}
	if peak := s.reg.Gauge("server.inflight.peak").Value(); peak < want {
		t.Errorf("peak in-flight %v, want ≥ %d", peak, want)
	}
}

func TestConcurrentMixedKeysHammerCache(t *testing.T) {
	// Cache capacity 3 with 8 distinct keys forces constant eviction and
	// re-preparation while goroutines race on the LRU and the coalescing
	// map.
	s := startTestServer(t, Config{MaxInflight: 8, QueueDepth: 512, CacheEntries: 3})
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}

	reqs := make([]RunRequest, 0, 8)
	for _, program := range []string{"kmedoids", "kmeans"} {
		for _, n := range []int{6, 7} {
			for _, seed := range []int64{1, 2} {
				r := smallRequest(seed, n)
				r.Program = program
				if program == "kmeans" {
					// kmeans has no Centre variable; InCl is its
					// Boolean cluster-membership matrix.
					r.Targets = []string{"InCl["}
				}
				reqs = append(reqs, r)
			}
		}
	}

	const goroutines, perG = 32, 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				req := reqs[(g+i)%len(reqs)]
				status, out, raw := postRun(t, client, s.Addr(), req)
				if status != http.StatusOK {
					errs <- fmt.Sprintf("goroutine %d: status %d: %s", g, status, raw)
					return
				}
				if out.Cache != "hit" && out.Cache != "miss" {
					errs <- fmt.Sprintf("goroutine %d: cache = %q", g, out.Cache)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	if got := s.cache.len(); got > 3 {
		t.Errorf("cache grew past its bound: %d entries", got)
	}
	total := int64(goroutines * perG)
	hits := counterValue(s, "server.cache.hits")
	misses := counterValue(s, "server.cache.misses")
	if hits+misses != total {
		t.Errorf("cache accounting: hits=%d + misses=%d != %d requests", hits, misses, total)
	}
	if misses < 8 {
		t.Errorf("misses=%d, want ≥ 8 (one per distinct key)", misses)
	}
}

func TestGracefulShutdown(t *testing.T) {
	cfg := Config{Addr: "127.0.0.1:0", MaxInflight: 2}
	t.Cleanup(func() { testHookInflight = nil })
	s := New(cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	// Ensure the server is down (idempotent) before the hook reset runs.
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})

	// Hold one request in flight, blocked inside its worker slot.
	inFlight := make(chan struct{})
	release := make(chan struct{})
	var relOnce sync.Once
	unblock := func() { relOnce.Do(func() { close(release) }) }
	t.Cleanup(unblock)
	var hookOnce sync.Once
	testHookInflight = func() {
		hookOnce.Do(func() { close(inFlight) })
		<-release
	}

	client := &http.Client{}
	type result struct {
		status int
		cache  string
	}
	done := make(chan result, 1)
	go func() {
		status, out, _ := postRun(t, client, s.Addr(), smallRequest(1, 6))
		done <- result{status, out.Cache}
	}()
	<-inFlight

	// Begin the drain while that request is still executing.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	// New work is rejected with 503 while draining (exercised through the
	// handler directly: the TCP listener is already closed to new
	// connections).
	body, _ := json.Marshal(smallRequest(2, 6))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/run", bytes.NewReader(body)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("request during drain: status %d, want 503", rec.Code)
	}
	if got := counterValue(s, "server.rejected.draining"); got < 1 {
		t.Errorf("rejected.draining = %d, want ≥ 1", got)
	}

	// Health flips to draining too.
	recH := httptest.NewRecorder()
	s.Handler().ServeHTTP(recH, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if recH.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: status %d, want 503", recH.Code)
	}

	// The in-flight request completes normally once unblocked, and only
	// then does Shutdown return.
	select {
	case err := <-shutdownDone:
		t.Fatalf("shutdown returned before in-flight request finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	unblock()
	if r := <-done; r.status != http.StatusOK {
		t.Errorf("in-flight request during drain: status %d, want 200", r.status)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

func TestDeadlineExceededReturns504WithoutLeaking(t *testing.T) {
	s := startTestServer(t, Config{MaxInflight: 8})
	client := &http.Client{}

	// Warm up the transport and the pipeline once so the baseline includes
	// keep-alive machinery.
	if status, _, _ := postRun(t, client, s.Addr(), smallRequest(1, 6)); status != http.StatusOK {
		t.Fatalf("warm-up: status %d", status)
	}
	runtime.GC()
	before := runtime.NumGoroutine()

	// A 1 ms hard deadline cannot cover even the smallest pipeline; the
	// heavy variable pool makes exact compilation long enough that the
	// cancellation necessarily lands mid-flight.
	heavy := RunRequest{
		Program:   "kmedoids",
		Data:      DataSpec{N: 24, Vars: 18, L: 8, Seed: 7},
		Params:    ParamSpec{K: 2, Iter: 3},
		TimeoutMs: 1,
	}
	for i, workers := range []int{1, 4, 1} {
		req := heavy
		req.Workers = workers
		status, _, raw := postRun(t, client, s.Addr(), req)
		if status != http.StatusGatewayTimeout {
			t.Fatalf("deadline run %d (workers=%d): status %d, want 504: %s", i, workers, status, raw)
		}
	}
	if got := counterValue(s, "server.deadline_exceeded"); got != 3 {
		t.Errorf("deadline_exceeded = %d, want 3", got)
	}

	// All compilation workers and cancellation watchers must unwind.
	deadline := time.Now().Add(5 * time.Second)
	slack := 8
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+slack {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d (slack %d)", before, runtime.NumGoroutine(), slack)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestAdmissionRejectsWhenQueueFull(t *testing.T) {
	// One worker slot, one queue slot; with both pinned by the hook, the
	// third request must bounce with 429 immediately.
	t.Cleanup(func() { testHookInflight = nil })
	s := startTestServer(t, Config{MaxInflight: 1, QueueDepth: 1})
	release := make(chan struct{})
	var relOnce sync.Once
	unblock := func() { relOnce.Do(func() { close(release) }) }
	t.Cleanup(unblock)
	testHookInflight = func() { <-release }

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}}
	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			status, _, _ := postRun(t, client, s.Addr(), smallRequest(int64(i), 6))
			results <- status
		}(i)
	}
	// Wait until both of the first two requests are admitted (one
	// executing, one queued).
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queueSlots) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("first two requests were not admitted in time")
		}
		time.Sleep(time.Millisecond)
	}

	status, _, raw := postRun(t, client, s.Addr(), smallRequest(99, 6))
	if status != http.StatusTooManyRequests {
		t.Fatalf("third request: status %d, want 429: %s", status, raw)
	}
	if got := counterValue(s, "server.rejected.queue_full"); got != 1 {
		t.Errorf("rejected.queue_full = %d, want 1", got)
	}

	unblock()
	for i := 0; i < 2; i++ {
		if status := <-results; status != http.StatusOK {
			t.Errorf("admitted request: status %d, want 200", status)
		}
	}
}

func TestBadRequests(t *testing.T) {
	s := startTestServer(t, Config{})
	client := &http.Client{}

	cases := []struct {
		name string
		req  RunRequest
		want string // substring of the error
	}{
		{"unknown program", RunRequest{Program: "exfiltrate.py"}, "unknown builtin program"},
		{"unknown strategy", RunRequest{Strategy: "banana"}, "unknown strategy"},
		{"bad scheme", RunRequest{Data: DataSpec{Scheme: "spooky"}}, "unknown correlation scheme"},
		{"workers cap", RunRequest{Workers: 1000}, "workers"},
		{"bad order", RunRequest{Order: "random"}, "order"},
		{"bad target", RunRequest{Targets: []string{"NoSuchVar["}}, "target"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, raw := postRun(t, client, s.Addr(), tc.req)
			if status != http.StatusBadRequest && status != http.StatusUnprocessableEntity {
				t.Fatalf("status %d, want 400/422: %s", status, raw)
			}
			if !bytes.Contains(raw, []byte(tc.want)) {
				t.Errorf("error %s does not mention %q", raw, tc.want)
			}
		})
	}

	resp, err := client.Get("http://" + s.Addr() + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run: status %d, want 405", resp.StatusCode)
	}
}

func TestHealthzAndMetricsEndpoints(t *testing.T) {
	s := startTestServer(t, Config{})
	client := &http.Client{}

	resp, err := client.Get("http://" + s.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	if status, _, _ := postRun(t, client, s.Addr(), smallRequest(1, 6)); status != http.StatusOK {
		t.Fatalf("run: status %d", status)
	}

	resp, err = client.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	text.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"server.requests", "server.cache.misses", "server.latency_ms"} {
		if !bytes.Contains(text.Bytes(), []byte(want)) {
			t.Errorf("/metrics text output lacks %q:\n%s", want, text.String())
		}
	}

	resp, err = client.Get("http://" + s.Addr() + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var values []map[string]any
	err = json.NewDecoder(resp.Body).Decode(&values)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if len(values) == 0 {
		t.Error("metrics JSON is empty")
	}
}
