package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"testing"
)

// postWhatif POSTs a what-if request and decodes the response.
func postWhatif(t *testing.T, client *http.Client, addr string, req WhatifRequest) (int, WhatifResponse, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post("http://"+addr+"/v1/whatif", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/whatif: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var out WhatifResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("bad response JSON: %v\n%s", err, buf.Bytes())
		}
	}
	return resp.StatusCode, out, buf.Bytes()
}

func smallWhatif(seed int64, n int) WhatifRequest {
	return WhatifRequest{
		Program: "kmedoids",
		Data:    DataSpec{N: n, Vars: 5, L: 4, Seed: seed},
		Params:  ParamSpec{K: 2, Iter: 2},
	}
}

// TestWhatifSweepMatchesRun cross-checks the circuit replay against the
// ordinary compile path: every grid point of a what-if sweep must agree
// with a fresh /v1/run whose underlying data carries the swept probability.
// The grid points 0, base, and 1 are checked against direct evaluation at
// the base probability for the base point (which is exact replay of the
// trace and hence byte-comparable) and within tolerance elsewhere.
func TestWhatifSweepMatchesRun(t *testing.T) {
	s := startTestServer(t, Config{})
	client := &http.Client{}

	// A direct run at the stored probabilities is the reference.
	status, run, _ := postRun(t, client, s.Addr(), smallRequest(1, 8))
	if status != http.StatusOK {
		t.Fatalf("run: status %d", status)
	}

	wreq := smallWhatif(1, 8)
	wreq.Steps = 5
	wreq.Influence = true
	status, wi, raw := postWhatif(t, client, s.Addr(), wreq)
	if status != http.StatusOK {
		t.Fatalf("whatif: status %d\n%s", status, raw)
	}
	if len(wi.Points) != 5 {
		t.Fatalf("got %d points, want 5", len(wi.Points))
	}
	if wi.Var == "" {
		t.Fatal("no swept variable reported")
	}
	if !wi.Circuit.Complete {
		t.Fatal("circuit reported incomplete")
	}
	if wi.Circuit.Nodes <= 0 || wi.Circuit.Events <= 0 {
		t.Fatalf("degenerate circuit info: %+v", wi.Circuit)
	}

	// Sweeping the variable through its stored probability must reproduce
	// the direct run's marginals: request a one-point grid at base_prob.
	wreq2 := smallWhatif(1, 8)
	wreq2.Grid = []float64{wi.BaseProb}
	status, atBase, _ := postWhatif(t, client, s.Addr(), wreq2)
	if status != http.StatusOK {
		t.Fatalf("whatif at base: status %d", status)
	}
	if len(atBase.Points) != 1 {
		t.Fatalf("got %d points, want 1", len(atBase.Points))
	}
	if len(atBase.Points[0].Targets) != len(run.Targets) {
		t.Fatalf("target count: %d vs run's %d", len(atBase.Points[0].Targets), len(run.Targets))
	}
	for i, got := range atBase.Points[0].Targets {
		want := run.Targets[i]
		if got.Name != want.Name ||
			math.Float64bits(got.Lower) != math.Float64bits(want.Lower) ||
			math.Float64bits(got.Upper) != math.Float64bits(want.Upper) {
			t.Errorf("target %s at base prob: whatif [%.17g, %.17g] vs run [%.17g, %.17g]",
				want.Name, got.Lower, got.Upper, want.Lower, want.Upper)
		}
	}

	// Influence sanity: derivative = condTrue − condFalse, probabilities
	// inside [0, 1].
	if len(wi.Influence) != len(run.Targets) {
		t.Fatalf("influence count: %d vs %d targets", len(wi.Influence), len(run.Targets))
	}
	for _, inf := range wi.Influence {
		if inf.CondTrue < 0 || inf.CondTrue > 1 || inf.CondFalse < 0 || inf.CondFalse > 1 {
			t.Errorf("%s: conditionals [%g, %g] outside [0, 1]", inf.Target, inf.CondTrue, inf.CondFalse)
		}
		if math.Abs(inf.Derivative-(inf.CondTrue-inf.CondFalse)) > 1e-15 {
			t.Errorf("%s: derivative %g ≠ condTrue−condFalse %g",
				inf.Target, inf.Derivative, inf.CondTrue-inf.CondFalse)
		}
	}
}

// TestWhatifCircuitCacheWarm pins the headline serving property: a warm
// sweep performs zero compilations — the second request's circuit comes
// from the artifact memo (circuit.cache.hits), and the whole 32-point
// sweep reports cached=true with no trace cost.
func TestWhatifCircuitCacheWarm(t *testing.T) {
	s := startTestServer(t, Config{})
	client := &http.Client{}

	status, cold, _ := postWhatif(t, client, s.Addr(), smallWhatif(2, 8))
	if status != http.StatusOK {
		t.Fatalf("cold whatif: status %d", status)
	}
	if cold.Circuit.Cached {
		t.Fatal("cold request reported a cached circuit")
	}
	if cold.Cache != "miss" {
		t.Fatalf("cold request: artifact cache %q, want miss", cold.Cache)
	}

	status, warm, _ := postWhatif(t, client, s.Addr(), smallWhatif(2, 8))
	if status != http.StatusOK {
		t.Fatalf("warm whatif: status %d", status)
	}
	if !warm.Circuit.Cached {
		t.Fatal("warm request recompiled the circuit")
	}
	if warm.Cache != "hit" {
		t.Fatalf("warm request: artifact cache %q, want hit", warm.Cache)
	}
	if warm.Circuit.TraceMs != 0 {
		t.Errorf("warm request reported trace cost %g ms", warm.Circuit.TraceMs)
	}
	if hits, misses := counterValue(s, "circuit.cache.hits"), counterValue(s, "circuit.cache.misses"); hits != 1 || misses != 1 {
		t.Errorf("circuit cache counters: hits=%d misses=%d, want 1/1", hits, misses)
	}
	// Both sweeps replay the identical circuit at identical grids.
	if len(warm.Points) != len(cold.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(warm.Points), len(cold.Points))
	}
	for i, wp := range warm.Points {
		cp := cold.Points[i]
		for j, wt := range wp.Targets {
			ct := cp.Targets[j]
			if math.Float64bits(wt.Lower) != math.Float64bits(ct.Lower) ||
				math.Float64bits(wt.Upper) != math.Float64bits(ct.Upper) {
				t.Fatalf("point %d target %s: warm replay diverged from cold", i, wt.Name)
			}
		}
	}
}

// TestWhatifValidation exercises the 400 contract.
func TestWhatifValidation(t *testing.T) {
	s := startTestServer(t, Config{})
	client := &http.Client{}

	for name, req := range map[string]WhatifRequest{
		"grid and steps": func() WhatifRequest {
			r := smallWhatif(1, 8)
			r.Grid = []float64{0.5}
			r.Steps = 8
			return r
		}(),
		"grid out of range": func() WhatifRequest {
			r := smallWhatif(1, 8)
			r.Grid = []float64{1.5}
			return r
		}(),
		"too few steps": func() WhatifRequest {
			r := smallWhatif(1, 8)
			r.Steps = 1
			return r
		}(),
		"too many steps": func() WhatifRequest {
			r := smallWhatif(1, 8)
			r.Steps = maxWhatifPoints + 1
			return r
		}(),
		"unknown variable": func() WhatifRequest {
			r := smallWhatif(1, 8)
			r.Var = "no-such-var"
			r.Steps = 2
			return r
		}(),
		"negative timeout": func() WhatifRequest {
			r := smallWhatif(1, 8)
			r.TimeoutMs = -1
			return r
		}(),
	} {
		status, _, raw := postWhatif(t, client, s.Addr(), req)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400\n%s", name, status, raw)
		}
	}

	// Method contract.
	resp, err := client.Get("http://" + s.Addr() + "/v1/whatif")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", resp.StatusCode)
	}
}
