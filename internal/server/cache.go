package server

import (
	"container/list"
	"sync"

	"enframe/internal/core"
	"enframe/internal/obs"
)

// artifactCache is a bounded LRU of compiled pipeline prefixes
// (core.Artifact: translated event program + grounded, hash-consed event
// network) keyed by the content hash of (program, data spec, targets).
// Artifacts are immutable, so one entry serves any number of concurrent
// compilations. Concurrent misses on the same key are coalesced: one caller
// prepares, the rest wait and share the result (and count as hits).
type artifactCache struct {
	mu       sync.Mutex
	max      int
	ll       *list.List               // front = most recently used
	items    map[string]*list.Element // key → element whose Value is *cacheEntry
	inflight map[string]*prepareCall

	hits, misses, coalesced, evictions *obs.Counter
	size                               *obs.Gauge
	// batchJoined counts coalesced waits under their fleet-facing name: in a
	// sharded deployment, distinct concurrent requests routed to this shard
	// for the same artifact joined one compilation (cross-request batching).
	batchJoined *obs.Counter
}

type cacheEntry struct {
	key string
	art *core.Artifact
}

// prepareCall tracks one in-flight preparation that later same-key arrivals
// wait on.
type prepareCall struct {
	done chan struct{}
	art  *core.Artifact
	err  error
}

func newArtifactCache(max int, reg *obs.Registry) *artifactCache {
	if max < 1 {
		max = 1
	}
	return &artifactCache{
		max:       max,
		ll:        list.New(),
		items:     map[string]*list.Element{},
		inflight:  map[string]*prepareCall{},
		hits:      reg.Counter("server.cache.hits"),
		misses:    reg.Counter("server.cache.misses"),
		coalesced: reg.Counter("server.cache.coalesced"),
		evictions: reg.Counter("server.cache.evictions"),
		size:      reg.Gauge("server.cache.size"),

		batchJoined: reg.Counter("server.batch.joined"),
	}
}

// cacheOutcome is how one request resolved its artifact: a fresh
// preparation, an LRU hit, or a wait coalesced onto another caller's
// in-flight preparation. The response body reports coalesced waits as plain
// hits (the artifact was reused); the access log keeps the distinction.
type cacheOutcome uint8

const (
	cacheMiss cacheOutcome = iota
	cacheHit
	cacheCoalesced
)

func (o cacheOutcome) String() string {
	switch o {
	case cacheHit:
		return "hit"
	case cacheCoalesced:
		return "coalesced"
	}
	return "miss"
}

// reused reports whether the artifact was served without paying for
// preparation — the "hit" notion of the response body.
func (o cacheOutcome) reused() bool { return o != cacheMiss }

// getOrPrepare returns the artifact for key, preparing it with prepare() on
// a miss. Failed preparations are not cached; every waiter receives the same
// error.
func (c *artifactCache) getOrPrepare(key string, prepare func() (*core.Artifact, error)) (art *core.Artifact, outcome cacheOutcome, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		c.hits.Inc()
		return el.Value.(*cacheEntry).art, cacheHit, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-call.done
		if call.err != nil {
			return nil, cacheMiss, call.err
		}
		c.hits.Inc()
		c.coalesced.Inc()
		c.batchJoined.Inc()
		return call.art, cacheCoalesced, nil
	}
	call := &prepareCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()
	c.misses.Inc()

	call.art, call.err = prepare()
	close(call.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if call.err == nil {
		c.add(key, call.art)
	}
	c.mu.Unlock()
	return call.art, cacheMiss, call.err
}

// add inserts under c.mu, evicting from the LRU tail past capacity.
func (c *artifactCache) add(key string, art *core.Artifact) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).art = art
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, art: art})
	for c.ll.Len() > c.max {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
	c.size.Set(float64(c.ll.Len()))
}

// len returns the number of cached artifacts.
func (c *artifactCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
