package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

func postWarm(t *testing.T, client *http.Client, addr string, req RunRequest) (int, WarmResponse, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post("http://"+addr+"/v1/warm", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/warm: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var out WarmResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("bad warm response: %v\n%s", err, buf.Bytes())
		}
	}
	return resp.StatusCode, out, buf.Bytes()
}

// TestWarmResolvesArtifact: /v1/warm pays for preparation, so the next run
// of the same artifact is a cache hit with zero front-end work.
func TestWarmResolvesArtifact(t *testing.T) {
	s := startTestServer(t, Config{})
	client := &http.Client{}

	req := smallRequest(61, 8)
	status, warm, raw := postWarm(t, client, s.Addr(), req)
	if status != http.StatusOK {
		t.Fatalf("warm: status %d: %s", status, raw)
	}
	if warm.Cache != "miss" {
		t.Errorf("first warm: cache = %q, want miss", warm.Cache)
	}
	if warm.Key == "" || warm.Variables == 0 || warm.NetworkNodes == 0 {
		t.Errorf("warm response incomplete: %+v", warm)
	}

	status, run, _ := postRun(t, client, s.Addr(), req)
	if status != http.StatusOK {
		t.Fatalf("run after warm: status %d", status)
	}
	if run.Cache != "hit" {
		t.Errorf("run after warm: cache = %q, want hit", run.Cache)
	}
	if counterValue(s, "server.warm.requests") != 1 {
		t.Errorf("server.warm.requests = %d, want 1", counterValue(s, "server.warm.requests"))
	}

	// Warming an already-hot artifact is a hit, not a second preparation.
	status, warm2, _ := postWarm(t, client, s.Addr(), req)
	if status != http.StatusOK || warm2.Cache != "hit" {
		t.Errorf("second warm: status %d cache %q, want 200/hit", status, warm2.Cache)
	}
}

// TestWarmValidation: method and body errors map to the run contract.
func TestWarmValidation(t *testing.T) {
	s := startTestServer(t, Config{})
	client := &http.Client{}

	resp, err := client.Get("http://" + s.Addr() + "/v1/warm")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/warm: status %d, want 405", resp.StatusCode)
	}

	resp, err = client.Post("http://"+s.Addr()+"/v1/warm", "application/json",
		bytes.NewReader([]byte(`{"program":"no-such-program"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad program: status %d, want 400", resp.StatusCode)
	}
}
