package shard

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"enframe/internal/server"
	"enframe/internal/stream"
)

func postStreamRoute(t *testing.T, url string, req server.StreamRequest) (int, server.StreamResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out server.StreamResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("bad response JSON: %v", err)
		}
	}
	return resp.StatusCode, out, resp.Header.Get("X-Shard")
}

func streamCfg(seed int64) *stream.Config {
	return &stream.Config{
		Program: "kmedoids", K: 2, Iter: 2,
		Segments: 3, SegmentN: 5, Group: 2, Seed: seed,
	}
}

// TestRouterPinsStreamSession drives a whole session life through the
// router over a two-shard fleet: every verb must land on the same shard
// (sessions are shard-local state), and the marginal bytes must flow
// through unchanged.
func TestRouterPinsStreamSession(t *testing.T) {
	s1, s2 := startShard(t), startShard(t)
	_, rsrv := startRouter(t, []string{s1.Addr(), s2.Addr()}, RouterConfig{})

	status, created, shard0 := postStreamRoute(t, rsrv.URL, server.StreamRequest{
		Op: "create", Config: streamCfg(3),
	})
	if status != http.StatusOK {
		t.Fatalf("create via router: status %d", status)
	}
	if created.SessionID == "" || shard0 == "" {
		t.Fatalf("create: id=%q shard=%q", created.SessionID, shard0)
	}

	v := created.Windows[0].Vars[0]
	w := created.Windows[0].Window
	p := 0.4
	seq := created.Seq
	for i := 0; i < 4; i++ {
		status, pushed, shard := postStreamRoute(t, rsrv.URL, server.StreamRequest{
			Op: "push", SessionID: created.SessionID, BaseSeq: seq,
			Deltas: []stream.Delta{{Op: stream.OpProb, Window: &w, Var: v, P: &p}},
		})
		if status != http.StatusOK {
			t.Fatalf("push %d: status %d", i, status)
		}
		if shard != shard0 {
			t.Fatalf("push %d landed on %s, session lives on %s", i, shard, shard0)
		}
		seq = pushed.Seq
		p += 0.1
	}

	status, _, shard := postStreamRoute(t, rsrv.URL, server.StreamRequest{
		Op: "query", SessionID: created.SessionID,
	})
	if status != http.StatusOK || shard != shard0 {
		t.Fatalf("query: status %d shard %s (want %s)", status, shard, shard0)
	}
	status, _, shard = postStreamRoute(t, rsrv.URL, server.StreamRequest{
		Op: "close", SessionID: created.SessionID,
	})
	if status != http.StatusOK || shard != shard0 {
		t.Fatalf("close: status %d shard %s (want %s)", status, shard, shard0)
	}
}

// TestRouterStreamSpreadsSessions opens many sessions and checks the fleet
// shares them (the hash is per-session, not per-fleet-constant).
func TestRouterStreamSpreadsSessions(t *testing.T) {
	s1, s2 := startShard(t), startShard(t)
	_, rsrv := startRouter(t, []string{s1.Addr(), s2.Addr()}, RouterConfig{})

	hits := map[string]int{}
	for i := 0; i < 12; i++ {
		status, _, shard := postStreamRoute(t, rsrv.URL, server.StreamRequest{
			Op: "create", Config: streamCfg(int64(i)),
		})
		if status != http.StatusOK {
			t.Fatalf("create %d: status %d", i, status)
		}
		hits[shard]++
	}
	if len(hits) < 2 {
		t.Fatalf("12 sessions all landed on one shard: %v", hits)
	}
}

func TestRouterStreamRequiresSessionID(t *testing.T) {
	s1 := startShard(t)
	_, rsrv := startRouter(t, []string{s1.Addr()}, RouterConfig{})
	status, _, _ := postStreamRoute(t, rsrv.URL, server.StreamRequest{Op: "push"})
	if status != http.StatusBadRequest {
		t.Fatalf("push without session_id: status %d, want 400", status)
	}
}
