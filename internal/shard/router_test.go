package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"enframe/internal/server"
)

// startShard boots one enframe serve process-equivalent on an ephemeral
// port.
func startShard(t *testing.T) *server.Server {
	t.Helper()
	s := server.New(server.Config{Addr: "127.0.0.1:0"})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

func startRouter(t *testing.T, shards []string, cfg RouterConfig) (*Router, *httptest.Server) {
	t.Helper()
	cfg.Shards = shards
	rt := NewRouter(cfg)
	srv := httptest.NewServer(rt.Handler())
	t.Cleanup(srv.Close)
	return rt, srv
}

func runBody(t *testing.T, seed int64, n int) []byte {
	t.Helper()
	body, err := json.Marshal(server.RunRequest{
		Program: "kmedoids",
		Data:    server.DataSpec{N: n, Vars: 5, L: 4, Seed: seed},
		Params:  server.ParamSpec{K: 2, Iter: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// post sends a body to a URL and returns status, the X-Shard header, and the
// response bytes.
func post(t *testing.T, url string, body []byte) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("X-Shard"), buf.Bytes()
}

func targetsOf(t *testing.T, raw []byte) []byte {
	t.Helper()
	var v struct {
		Targets json.RawMessage `json:"targets"`
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, raw)
	}
	return v.Targets
}

// TestRouterRoutesByArtifactKey is the tentpole contract: repeated requests
// for one artifact land on one shard (where the second is a cache hit), and
// routed marginals are byte-identical to a standalone single-node server.
func TestRouterRoutesByArtifactKey(t *testing.T) {
	s1, s2 := startShard(t), startShard(t)
	single := startShard(t)
	_, router := startRouter(t, []string{s1.Addr(), s2.Addr()}, RouterConfig{})

	body := runBody(t, 1, 8)
	status, shardA, first := post(t, router.URL+"/v1/run", body)
	if status != http.StatusOK {
		t.Fatalf("first routed request: status %d: %s", status, first)
	}
	status, shardB, second := post(t, router.URL+"/v1/run", body)
	if status != http.StatusOK {
		t.Fatalf("second routed request: status %d", status)
	}
	if shardA == "" || shardA != shardB {
		t.Fatalf("same artifact routed to different shards: %q vs %q", shardA, shardB)
	}
	var c1, c2 struct {
		Cache string `json:"cache"`
	}
	if err := json.Unmarshal(first, &c1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(second, &c2); err != nil {
		t.Fatal(err)
	}
	if c1.Cache != "miss" || c2.Cache != "hit" {
		t.Errorf("cache dispositions %q/%q, want miss/hit — routing did not keep the artifact on one shard", c1.Cache, c2.Cache)
	}

	status, _, direct := post(t, "http://"+single.Addr()+"/v1/run", body)
	if status != http.StatusOK {
		t.Fatalf("direct request: status %d", status)
	}
	if !bytes.Equal(targetsOf(t, first), targetsOf(t, direct)) {
		t.Errorf("routed marginals differ from single-node:\nrouted: %s\ndirect: %s",
			targetsOf(t, first), targetsOf(t, direct))
	}
}

// TestRouterWhatifSharesRunPlacement: what-if traffic for an artifact lands
// on the same shard as its run traffic — they share the compiled artifact
// and the cached circuit.
func TestRouterWhatifSharesRunPlacement(t *testing.T) {
	s1, s2 := startShard(t), startShard(t)
	_, router := startRouter(t, []string{s1.Addr(), s2.Addr()}, RouterConfig{})

	run := runBody(t, 3, 8)
	status, runShard, raw := post(t, router.URL+"/v1/run", run)
	if status != http.StatusOK {
		t.Fatalf("run: status %d: %s", status, raw)
	}
	whatif, err := json.Marshal(server.WhatifRequest{
		Program: "kmedoids",
		Data:    server.DataSpec{N: 8, Vars: 5, L: 4, Seed: 3},
		Params:  server.ParamSpec{K: 2, Iter: 2},
		Steps:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	status, whatifShard, raw := post(t, router.URL+"/v1/whatif", whatif)
	if status != http.StatusOK {
		t.Fatalf("whatif: status %d: %s", status, raw)
	}
	if runShard != whatifShard {
		t.Errorf("run and whatif for one artifact routed apart: %q vs %q", runShard, whatifShard)
	}
	var resp struct {
		Cache string `json:"cache"`
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cache != "hit" {
		t.Errorf("whatif artifact cache = %q, want hit (artifact was hot from the run)", resp.Cache)
	}
}

// TestRouterFailover: with the primary dead, requests fail over to the
// replica and still answer correctly.
func TestRouterFailover(t *testing.T) {
	s1, s2 := startShard(t), startShard(t)
	single := startShard(t)
	rt, router := startRouter(t, []string{s1.Addr(), s2.Addr()}, RouterConfig{})

	body := runBody(t, 5, 8)
	// Find and kill the primary for this key.
	status, primary, _ := post(t, router.URL+"/v1/run", body)
	if status != http.StatusOK {
		t.Fatalf("warmup: status %d", status)
	}
	victim := s1
	if primary == s2.Addr() {
		victim = s2
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := victim.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	status, survivor, raw := post(t, router.URL+"/v1/run", body)
	if status != http.StatusOK {
		t.Fatalf("failover request: status %d: %s", status, raw)
	}
	if survivor == primary {
		t.Fatalf("request answered by dead shard %q", survivor)
	}
	status, _, direct := post(t, "http://"+single.Addr()+"/v1/run", body)
	if status != http.StatusOK {
		t.Fatalf("direct: status %d", status)
	}
	if !bytes.Equal(targetsOf(t, raw), targetsOf(t, direct)) {
		t.Errorf("failover marginals differ from single-node")
	}
	if rt.Registry().Counter("shard.route.failovers").Value() == 0 {
		t.Error("failover counter not incremented")
	}
}

// TestRouterValidatesBeforeForwarding: a request the shards would 400 is
// rejected at the router without consuming shard capacity.
func TestRouterValidatesBeforeForwarding(t *testing.T) {
	s1 := startShard(t)
	rt, router := startRouter(t, []string{s1.Addr()}, RouterConfig{})

	status, _, _ := post(t, router.URL+"/v1/run", []byte(`{"strategy":"nonsense"}`))
	if status != http.StatusBadRequest {
		t.Fatalf("invalid strategy: status %d, want 400", status)
	}
	status, _, _ = post(t, router.URL+"/v1/run", []byte(`{not json`))
	if status != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", status)
	}
	if got := rt.Registry().Counter("shard.route.forwards").Value(); got != 0 {
		t.Errorf("invalid requests were forwarded (%d)", got)
	}
	if got := rt.Registry().Counter("shard.route.bad_request").Value(); got != 2 {
		t.Errorf("bad_request counter = %d, want 2", got)
	}
}

// TestRouterEmptyRing answers 503, not a panic.
func TestRouterEmptyRing(t *testing.T) {
	_, router := startRouter(t, nil, RouterConfig{})
	status, _, _ := post(t, router.URL+"/v1/run", runBody(t, 1, 8))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("empty ring: status %d, want 503", status)
	}
}

// TestRouterSpreadsDistinctArtifacts: with enough distinct artifacts, more
// than one shard does work — the ring spreads the keyspace.
func TestRouterSpreadsDistinctArtifacts(t *testing.T) {
	s1, s2 := startShard(t), startShard(t)
	_, router := startRouter(t, []string{s1.Addr(), s2.Addr()}, RouterConfig{})

	hit := map[string]bool{}
	for seed := int64(1); seed <= 8; seed++ {
		status, shard, raw := post(t, router.URL+"/v1/run", runBody(t, seed, 6))
		if status != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, status, raw)
		}
		hit[shard] = true
	}
	if len(hit) < 2 {
		t.Errorf("8 distinct artifacts all routed to one shard: %v", hit)
	}
}

// TestRouterTenantHeaderPropagates: the router forwards X-Tenant-Id, so
// shard-side quotas and accounting see the caller's identity.
func TestRouterTenantHeaderPropagates(t *testing.T) {
	s1 := startShard(t)
	_, router := startRouter(t, []string{s1.Addr()}, RouterConfig{})

	req, err := http.NewRequest(http.MethodPost, router.URL+"/v1/run", bytes.NewReader(runBody(t, 9, 6)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant-Id", "acme")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := s1.Registry().Counter("server.tenant.acme.requests").Value(); got != 1 {
		t.Errorf("shard-side tenant counter = %d, want 1 (header not propagated?)", got)
	}
}
