package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"enframe/internal/server"
)

// postQuiet is post() for traffic goroutines: it returns an error instead of
// failing the test, so workers can report through a channel.
func postQuiet(url string, body []byte) (int, string, []byte, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return 0, "", nil, err
	}
	return resp.StatusCode, resp.Header.Get("X-Shard"), buf.Bytes(), nil
}

// artifactKey computes the same content hash the router routes by.
func artifactKey(t *testing.T, seed int64, n int) string {
	t.Helper()
	var req server.RunRequest
	if err := json.Unmarshal(runBody(t, seed, n), &req); err != nil {
		t.Fatal(err)
	}
	_, key, err := server.BuildSpec(req)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// TestMembershipChangeMidTraffic is the fleet's correctness drill: a shard
// joins and another drains while traffic flows, and every response — before,
// during, and after — stays byte-identical to a single-node server. Moved
// keys must arrive warm on their new owners (direct cache-hit assertions),
// the ring must count moves, and the router must leak no goroutines. Run
// under -race via `make test-race`.
func TestMembershipChangeMidTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns four servers and sustained traffic")
	}
	s1, s2, s3 := startShard(t), startShard(t), startShard(t)
	single := startShard(t)
	rt, router := startRouter(t, []string{s1.Addr(), s2.Addr()}, RouterConfig{})

	const nObjects = 6
	seeds := make([]int64, 16)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}

	// Reference marginals from an untouched single-node server.
	ref := map[int64][]byte{}
	for _, seed := range seeds {
		status, _, raw := post(t, "http://"+single.Addr()+"/v1/run", runBody(t, seed, nObjects))
		if status != http.StatusOK {
			t.Fatalf("reference seed %d: status %d: %s", seed, status, raw)
		}
		ref[seed] = targetsOf(t, raw)
	}

	// Prime: route every key once so the router tracks the full keyspace
	// (membership-change warming covers tracked keys) and every artifact is
	// hot on its current owner.
	for _, seed := range seeds {
		status, _, raw := post(t, router.URL+"/v1/run", runBody(t, seed, nObjects))
		if status != http.StatusOK {
			t.Fatalf("prime seed %d: status %d: %s", seed, status, raw)
		}
		if !bytes.Equal(targetsOf(t, raw), ref[seed]) {
			t.Fatalf("prime seed %d: routed marginals diverged from single-node", seed)
		}
	}

	baseGoroutines := runtime.NumGoroutine()

	// Sustained traffic through the router across the whole membership
	// change. Workers verify every response against the reference.
	stop := make(chan struct{})
	errs := make(chan error, 256)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := w
			for {
				select {
				case <-stop:
					return
				default:
				}
				seed := seeds[i%len(seeds)]
				i++
				status, _, raw, err := postQuiet(router.URL+"/v1/run", runBody(t, seed, nObjects))
				if err != nil {
					select {
					case errs <- fmt.Errorf("seed %d: %v", seed, err):
					default:
					}
					return
				}
				if status != http.StatusOK {
					select {
					case errs <- fmt.Errorf("seed %d: status %d: %s", seed, status, raw):
					default:
					}
					return
				}
				if !bytes.Equal(targetsOf(t, raw), ref[seed]) {
					select {
					case errs <- fmt.Errorf("seed %d: routed marginals diverged from single-node", seed):
					default:
					}
					return
				}
			}
		}(w)
	}
	time.Sleep(150 * time.Millisecond)

	// Join s3 mid-traffic. Join blocks until warming completes, so the keys
	// it now owns must already be hot: a direct run on s3 is a cache hit.
	movedJoin, warmedJoin, err := rt.Join(s3.Addr())
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	hitsChecked := 0
	for _, seed := range seeds {
		key := artifactKey(t, seed, nObjects)
		owners := map[string]bool{}
		rtOwners := func() []string {
			rt.mu.Lock()
			defer rt.mu.Unlock()
			return rt.ring.Owners(key, rt.cfg.Replicas)
		}()
		for _, o := range rtOwners {
			owners[o] = true
		}
		if !owners[s3.Addr()] {
			continue
		}
		status, _, raw, err := postQuiet("http://"+s3.Addr()+"/v1/run", runBody(t, seed, nObjects))
		if err != nil || status != http.StatusOK {
			t.Fatalf("direct run on joined shard, seed %d: status %d err %v", seed, status, err)
		}
		var resp struct {
			Cache string `json:"cache"`
		}
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Cache != "hit" {
			t.Errorf("seed %d moved to joined shard but was not warm: cache = %q", seed, resp.Cache)
		}
		if !bytes.Equal(targetsOf(t, raw), ref[seed]) {
			t.Errorf("seed %d: joined shard marginals diverged", seed)
		}
		hitsChecked++
	}
	if hitsChecked == 0 {
		t.Error("joined shard owns none of the tracked keys; warming unexercised")
	}

	time.Sleep(100 * time.Millisecond)

	// Drain s1 mid-traffic: it leaves the ring, its keys are warmed onto
	// their new owners, and no new traffic routes to it.
	movedLeave, _, err := rt.Leave(s1.Addr())
	if err != nil {
		t.Fatalf("leave: %v", err)
	}
	if movedJoin+movedLeave == 0 {
		t.Error("join+leave moved no keys")
	}
	if got := rt.Registry().Counter("shard.ring.moves").Value(); got != int64(movedJoin+movedLeave) {
		t.Errorf("shard.ring.moves = %d, want %d", got, movedJoin+movedLeave)
	}
	if warmedJoin == 0 {
		t.Error("join warmed no keys")
	}

	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// After the drain, every key answers via the surviving shards, every
	// response is still byte-identical, and everything is hot somewhere.
	for _, seed := range seeds {
		status, shard, raw := post(t, router.URL+"/v1/run", runBody(t, seed, nObjects))
		if status != http.StatusOK {
			t.Fatalf("post-drain seed %d: status %d: %s", seed, status, raw)
		}
		if shard == s1.Addr() {
			t.Errorf("seed %d routed to drained shard %s", seed, shard)
		}
		if !bytes.Equal(targetsOf(t, raw), ref[seed]) {
			t.Errorf("post-drain seed %d: marginals diverged", seed)
		}
		var resp struct {
			Cache string `json:"cache"`
		}
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Cache == "miss" {
			t.Errorf("post-drain seed %d: cold on %s (cache miss) — warming failed", seed, shard)
		}
	}

	// No goroutine leaks: once traffic stops and idle connections close, we
	// settle back to (near) the pre-traffic baseline.
	http.DefaultClient.CloseIdleConnections()
	rt.client.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseGoroutines+8 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutine leak: %d now vs %d baseline", runtime.NumGoroutine(), baseGoroutines)
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
}
