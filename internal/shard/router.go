package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"enframe/internal/obs"
	"enframe/internal/server"
)

// DefaultReplicas is the replication factor: how many shards of a key's
// preference list are considered its owners (primary + failover targets) and
// warmed on membership change.
const DefaultReplicas = 2

// DefaultLoadFactor is the bounded-load cap multiplier: a shard whose
// in-flight count exceeds LoadFactor × mean is skipped in favour of the next
// shard on the key's preference list, so a single hot key cannot melt its
// primary while the rest of the fleet idles.
const DefaultLoadFactor = 1.25

// RouterConfig sizes a Router. Zero values take the documented defaults.
type RouterConfig struct {
	// Shards lists the initial fleet: base URLs ("http://host:port") or bare
	// host:port addresses of enframe serve processes.
	Shards []string
	// Replicas is the replication factor (default DefaultReplicas, clamped
	// to the fleet size).
	Replicas int
	// VirtualNodes is the per-shard ring point count (default
	// DefaultVirtualNodes).
	VirtualNodes int
	// LoadFactor is the bounded-load cap multiplier (default
	// DefaultLoadFactor; values ≤ 1 disable the bound).
	LoadFactor float64
	// MaxBodyBytes bounds a routed request body. Default 1 MiB.
	MaxBodyBytes int64
	// Registry receives the router metrics; a fresh one is created when nil.
	Registry *obs.Registry
	// Client issues the forwarded requests; defaults to a keep-alive client
	// with no overall timeout (the shard owns the request deadline).
	Client *http.Client
}

// Router fronts a fleet of enframe serve shards: it computes each request's
// artifact content hash (the shard cache key) with the same BuildSpec the
// shards use, routes the request to the key's primary shard on a
// consistent-hash ring — so all traffic for one artifact lands where it is
// hot and concurrent requests batch into one compilation — fails over to
// replicas when the primary is unreachable, spills under bounded load, and
// on membership change rebuilds the ring and warms moved keys onto their new
// owners before traffic finds them cold.
type Router struct {
	cfg    RouterConfig
	reg    *obs.Registry
	client *http.Client

	mu       sync.Mutex
	ring     *Ring
	inflight map[string]int // shard → forwarded requests in flight
	total    int
	// keys remembers every artifact routed so far: key → the
	// artifact-identifying request JSON, replayed against /v1/warm when the
	// ring reassigns the key.
	keys map[string][]byte
	// hot tracks which shards actually hold each key warm (answered a
	// routed request or a warm for it). Ownership alone doesn't imply
	// residency — a replica that never served the key is cold — so rebuild
	// warms against this set, not against the old owner list.
	hot map[string]map[string]bool

	mRequests   *obs.Counter
	mForwards   *obs.Counter
	mFailovers  *obs.Counter
	mSpills     *obs.Counter
	mNoShard    *obs.Counter
	mBadRequest *obs.Counter
	mStreams    *obs.Counter
	mMoves      *obs.Counter
	mWarmSent   *obs.Counter
	mWarmErrors *obs.Counter
	gRingSize   *obs.Gauge
	gKeys       *obs.Gauge
}

// NewRouter builds a router over the configured fleet.
func NewRouter(cfg RouterConfig) *Router {
	if cfg.Replicas <= 0 {
		cfg.Replicas = DefaultReplicas
	}
	if cfg.LoadFactor == 0 {
		cfg.LoadFactor = DefaultLoadFactor
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	rt := &Router{
		cfg:      cfg,
		reg:      cfg.Registry,
		client:   cfg.Client,
		ring:     NewRing(cfg.Shards, cfg.VirtualNodes),
		inflight: map[string]int{},
		keys:     map[string][]byte{},
		hot:      map[string]map[string]bool{},

		mRequests:   cfg.Registry.Counter("shard.route.requests"),
		mForwards:   cfg.Registry.Counter("shard.route.forwards"),
		mFailovers:  cfg.Registry.Counter("shard.route.failovers"),
		mSpills:     cfg.Registry.Counter("shard.route.spills"),
		mNoShard:    cfg.Registry.Counter("shard.route.no_shard"),
		mBadRequest: cfg.Registry.Counter("shard.route.bad_request"),
		mStreams:    cfg.Registry.Counter("shard.route.streams"),
		mMoves:      cfg.Registry.Counter("shard.ring.moves"),
		mWarmSent:   cfg.Registry.Counter("shard.warm.sent"),
		mWarmErrors: cfg.Registry.Counter("shard.warm.errors"),
		gRingSize:   cfg.Registry.Gauge("shard.ring.size"),
		gKeys:       cfg.Registry.Gauge("shard.keys.tracked"),
	}
	rt.gRingSize.Set(float64(rt.ring.Len()))
	return rt
}

// Registry exposes the router's metrics registry.
func (rt *Router) Registry() *obs.Registry { return rt.reg }

// Shards returns the current fleet, sorted.
func (rt *Router) Shards() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.ring.Shards()
}

// Handler returns the router's route mux: the routed data plane (/v1/run,
// /v1/whatif, /v1/warm), the local control plane (/healthz, /metrics), and
// membership administration (/admin/join, /admin/leave, /admin/shards).
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", rt.handleRoute)
	mux.HandleFunc("/v1/whatif", rt.handleRoute)
	mux.HandleFunc("/v1/warm", rt.handleRoute)
	mux.HandleFunc("/v1/stream", rt.handleStreamRoute)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		obs.WriteMetricsHTTP(rt.reg, w, r)
	})
	mux.HandleFunc("/admin/shards", rt.handleShards)
	mux.HandleFunc("/admin/join", rt.handleMembership(true))
	mux.HandleFunc("/admin/leave", rt.handleMembership(false))
	return mux
}

func writeRouteError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// routeKey derives the artifact content hash for a request body, per route.
// The router runs the same BuildSpec as the shards, so key computation — and
// request validation — cannot drift between the two layers.
func routeKey(path string, body []byte) (key string, artJSON []byte, err error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var rreq server.RunRequest
	if path == "/v1/whatif" {
		var wreq server.WhatifRequest
		if err := dec.Decode(&wreq); err != nil {
			return "", nil, err
		}
		rreq = wreq.RunRequest()
	} else {
		if err := dec.Decode(&rreq); err != nil {
			return "", nil, err
		}
	}
	_, key, err = server.BuildSpec(rreq)
	if err != nil {
		return "", nil, err
	}
	artJSON, err = json.Marshal(server.ArtifactRequest(rreq))
	if err != nil {
		return "", nil, err
	}
	return key, artJSON, nil
}

// pick chooses the target shard for a key under bounded load: walk the
// preference list, take the first shard whose in-flight count is under the
// cap (LoadFactor × mean, computed over the whole fleet including the
// request being placed). If every owner is over the cap the primary takes
// the request anyway — the bound sheds hot spots, it does not reject.
// The returned release func MUST be called once the forward completes.
func (rt *Router) pick(key string) (addr string, owners []string, spilled bool, release func()) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	owners = rt.ring.Owners(key, rt.ring.Len())
	if len(owners) == 0 {
		return "", nil, false, func() {}
	}
	addr = owners[0]
	if rt.cfg.LoadFactor > 1 && rt.ring.Len() > 1 {
		loadCap := rt.cfg.LoadFactor * float64(rt.total+1) / float64(rt.ring.Len())
		for i, o := range owners {
			if float64(rt.inflight[o]) < loadCap {
				addr, spilled = o, i > 0
				break
			}
		}
	}
	rt.inflight[addr]++
	rt.total++
	picked := addr
	var once sync.Once
	release = func() {
		once.Do(func() {
			rt.mu.Lock()
			rt.inflight[picked]--
			rt.total--
			rt.mu.Unlock()
		})
	}
	return addr, owners, spilled, release
}

// shardURL normalises a shard address into a base URL.
func shardURL(addr string) string {
	if len(addr) >= 7 && (addr[:7] == "http://" || (len(addr) >= 8 && addr[:8] == "https://")) {
		return addr
	}
	return "http://" + addr
}

// handleRoute is the routed data plane: decode enough of the body to compute
// the artifact key, pick the owning shard, proxy the request verbatim, and
// fail over along the preference list when a shard is unreachable.
func (rt *Router) handleRoute(w http.ResponseWriter, r *http.Request) {
	rt.mRequests.Inc()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeRouteError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		rt.mBadRequest.Inc()
		writeRouteError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	key, artJSON, err := routeKey(r.URL.Path, body)
	if err != nil {
		rt.mBadRequest.Inc()
		writeRouteError(w, http.StatusBadRequest, "%v", err)
		return
	}

	rt.mu.Lock()
	if _, ok := rt.keys[key]; !ok {
		rt.keys[key] = artJSON
		rt.gKeys.Set(float64(len(rt.keys)))
	}
	rt.mu.Unlock()

	addr, owners, spilled, release := rt.pick(key)
	if addr == "" {
		rt.mNoShard.Inc()
		writeRouteError(w, http.StatusServiceUnavailable, "no shards on the ring")
		return
	}
	if spilled {
		rt.mSpills.Inc()
	}

	// Try the picked shard, then fail over along the rest of the preference
	// list. Only transport-level failures (shard down, connection refused)
	// fail over — an HTTP response, whatever its status, is the answer.
	tried := 0
	for _, candidate := range orderedFrom(owners, addr) {
		tried++
		resp, ferr := rt.forward(r, candidate, body)
		if ferr != nil {
			rt.mFailovers.Inc()
			continue
		}
		rt.mForwards.Inc()
		if resp.StatusCode == http.StatusOK {
			rt.markHot(key, candidate)
		}
		release()
		copyResponse(w, resp, candidate)
		return
	}
	release()
	writeRouteError(w, http.StatusBadGateway, "all %d owner shards unreachable for key %s", tried, key[:16])
}

// handleStreamRoute pins /v1/stream traffic to one shard per session:
// streaming sessions are stateful and shard-local, so the router hashes
// "stream:<session_id>" onto the ring and always forwards to the key's
// primary owner — no bounded-load spill and no failover (another shard
// would answer 404, or worse, silently fork the session). An anonymous
// "create" gets its session id minted here, so the routing key exists
// before the session does and every later verb hashes to the same shard.
func (rt *Router) handleStreamRoute(w http.ResponseWriter, r *http.Request) {
	rt.mRequests.Inc()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeRouteError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		rt.mBadRequest.Inc()
		writeRouteError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var sreq server.StreamRequest
	if err := dec.Decode(&sreq); err != nil {
		rt.mBadRequest.Inc()
		writeRouteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if sreq.SessionID == "" {
		if sreq.Op != "create" {
			rt.mBadRequest.Inc()
			writeRouteError(w, http.StatusBadRequest, "op %q needs a session_id", sreq.Op)
			return
		}
		sreq.SessionID = server.NewStreamSessionID()
		if body, err = json.Marshal(sreq); err != nil {
			writeRouteError(w, http.StatusInternalServerError, "re-encode request: %v", err)
			return
		}
	}
	key := "stream:" + sreq.SessionID

	rt.mu.Lock()
	owners := rt.ring.Owners(key, 1)
	var addr string
	if len(owners) > 0 {
		addr = owners[0]
		rt.inflight[addr]++
		rt.total++
	}
	rt.mu.Unlock()
	if addr == "" {
		rt.mNoShard.Inc()
		writeRouteError(w, http.StatusServiceUnavailable, "no shards on the ring")
		return
	}
	defer func() {
		rt.mu.Lock()
		rt.inflight[addr]--
		rt.total--
		rt.mu.Unlock()
	}()

	resp, ferr := rt.forward(r, addr, body)
	if ferr != nil {
		// The session lives only on its owner; an unreachable owner is an
		// outage for this session, not a failover opportunity.
		writeRouteError(w, http.StatusBadGateway, "session shard %s unreachable: %v", addr, ferr)
		return
	}
	rt.mForwards.Inc()
	rt.mStreams.Inc()
	copyResponse(w, resp, addr)
}

// orderedFrom returns owners starting at addr, preserving preference order
// for the rest.
func orderedFrom(owners []string, addr string) []string {
	out := make([]string, 0, len(owners))
	out = append(out, addr)
	for _, o := range owners {
		if o != addr {
			out = append(out, o)
		}
	}
	return out
}

// forward proxies the request body to one shard, propagating the caller's
// context (deadline, disconnect) and identity headers.
func (rt *Router) forward(r *http.Request, addr string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		shardURL(addr)+r.URL.Path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	for _, h := range []string{"X-Tenant-Id", "X-Request-Id"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	return rt.client.Do(req)
}

// copyResponse relays a shard's response to the client, tagging which shard
// answered so byte-identity checks can name the server.
func copyResponse(w http.ResponseWriter, resp *http.Response, addr string) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("X-Shard", addr)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// handleShards is GET /admin/shards: the current fleet.
func (rt *Router) handleShards(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	shards := rt.ring.Shards()
	inflight := make(map[string]int, len(shards))
	for _, s := range shards {
		inflight[s] = rt.inflight[s]
	}
	keys := len(rt.keys)
	rt.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"shards": shards, "inflight": inflight, "keys_tracked": keys,
	})
}

type membershipRequest struct {
	Addr string `json:"addr"`
}

// handleMembership is POST /admin/join and /admin/leave.
func (rt *Router) handleMembership(join bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeRouteError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		var req membershipRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&req); err != nil || req.Addr == "" {
			writeRouteError(w, http.StatusBadRequest, "body must be {\"addr\": \"host:port\"}")
			return
		}
		var moved, warmed int
		var err error
		if join {
			moved, warmed, err = rt.Join(req.Addr)
		} else {
			moved, warmed, err = rt.Leave(req.Addr)
		}
		if err != nil {
			writeRouteError(w, http.StatusConflict, "%v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"shards": rt.Shards(), "moved": moved, "warmed": warmed,
		})
	}
}

// Join adds a shard to the ring and warms the keys it now owns. It returns
// the number of keys whose primary moved and the number of warm requests
// that succeeded, and blocks until warming completes — when Join returns,
// moved keys are hot on their new owners.
func (rt *Router) Join(addr string) (moved, warmed int, err error) {
	rt.mu.Lock()
	cur := rt.ring.Shards()
	for _, s := range cur {
		if s == addr {
			rt.mu.Unlock()
			return 0, 0, fmt.Errorf("shard %s already on the ring", addr)
		}
	}
	rt.mu.Unlock()
	return rt.rebuild(append(cur, addr))
}

// Leave drains a shard: it is removed from the ring (so no new traffic
// routes there) and every key it owned is warmed onto its new owners. The
// shard process itself is not contacted or stopped — the operator drains
// via the ring, then retires the process.
func (rt *Router) Leave(addr string) (moved, warmed int, err error) {
	rt.mu.Lock()
	cur := rt.ring.Shards()
	rt.mu.Unlock()
	next := make([]string, 0, len(cur))
	for _, s := range cur {
		if s != addr {
			next = append(next, s)
		}
	}
	if len(next) == len(cur) {
		return 0, 0, fmt.Errorf("shard %s not on the ring", addr)
	}
	if len(next) == 0 {
		return 0, 0, fmt.Errorf("cannot remove the last shard")
	}
	return rt.rebuild(next)
}

// markHot records that a shard holds key warm (it answered a routed request
// or a warm for it).
func (rt *Router) markHot(key, addr string) {
	rt.mu.Lock()
	set := rt.hot[key]
	if set == nil {
		set = map[string]bool{}
		rt.hot[key] = set
	}
	set[addr] = true
	rt.mu.Unlock()
}

// rebuild swaps in a new ring and migrates cache residency: every tracked
// key is warmed, in parallel, on each new owner not already known hot —
// before rebuild returns. Ownership on the *old* ring is not trusted as
// residency: a replica only counts as warm once it actually answered a
// request or a warm. Keys whose primary changed count as ring moves.
func (rt *Router) rebuild(shards []string) (moved, warmed int, err error) {
	type warmTarget struct {
		key  string
		addr string
		body []byte
	}
	var warms []warmTarget

	rt.mu.Lock()
	old := rt.ring
	next := NewRing(shards, rt.cfg.VirtualNodes)
	rt.ring = next
	rt.gRingSize.Set(float64(next.Len()))
	fleet := make(map[string]bool, next.Len())
	for _, s := range next.Shards() {
		fleet[s] = true
	}
	// A shard off the ring may be retired at any moment; forget its
	// residency so a future rejoin re-warms instead of trusting stale state.
	for _, set := range rt.hot {
		for addr := range set {
			if !fleet[addr] {
				delete(set, addr)
			}
		}
	}
	replicas := rt.cfg.Replicas
	for key, art := range rt.keys {
		oldOwners := old.Owners(key, replicas)
		newOwners := next.Owners(key, replicas)
		if len(newOwners) > 0 && (len(oldOwners) == 0 || oldOwners[0] != newOwners[0]) {
			moved++
		}
		for _, o := range newOwners {
			if !rt.hot[key][o] {
				warms = append(warms, warmTarget{key: key, addr: o, body: art})
			}
		}
	}
	rt.mu.Unlock()
	rt.mMoves.Add(int64(moved))

	// Warm in parallel with bounded fan-out; block until the fleet is hot.
	sem := make(chan struct{}, 8)
	var wg sync.WaitGroup
	var okCount int64
	var okMu sync.Mutex
	for _, wt := range warms {
		wg.Add(1)
		sem <- struct{}{}
		go func(wt warmTarget) {
			defer wg.Done()
			defer func() { <-sem }()
			if rt.warmOne(wt.addr, wt.body) {
				rt.markHot(wt.key, wt.addr)
				okMu.Lock()
				okCount++
				okMu.Unlock()
			}
		}(wt)
	}
	wg.Wait()
	return moved, int(okCount), nil
}

// warmOne posts one artifact-identifying request to a shard's /v1/warm.
func (rt *Router) warmOne(addr string, body []byte) bool {
	req, err := http.NewRequest(http.MethodPost, shardURL(addr)+"/v1/warm", bytes.NewReader(body))
	if err != nil {
		rt.mWarmErrors.Inc()
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.mWarmErrors.Inc()
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		rt.mWarmErrors.Inc()
		return false
	}
	rt.mWarmSent.Inc()
	return true
}
