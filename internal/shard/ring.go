// Package shard is ENFrame's request-level sharding layer: a
// consistent-hash ring that assigns each compiled artifact (identified by
// its content hash, the serving layer's cache key) to one primary shard
// plus replicas, and an HTTP router that fronts a fleet of `enframe serve`
// processes, forwarding every request to the shard that holds its artifact
// hot. Distinct concurrent requests for the same artifact therefore land on
// one shard and share one compilation (the shard's artifact cache coalesces
// them), with per-request strategy/ε overlays applied at probability
// compilation — cross-request batching. Membership changes rebuild the ring
// and warm moved keys onto their new owners before traffic finds them cold.
// Everything is standard library; see SERVING.md, "Sharded fleet".
package shard

import (
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the per-shard virtual-node count: enough points
// that the largest shard's share of the key space stays within a few
// percent of the mean, cheap enough that ring rebuilds are microseconds.
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring over a set of shard addresses.
// Each shard contributes vnodes virtual points; a key is owned by the
// shards owning the first distinct points at or after the key's hash,
// walking clockwise. Immutability makes membership change a swap: build a
// new ring, diff key ownership, warm the moved keys.
type Ring struct {
	vnodes int
	shards []string // sorted, deduplicated
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	shard int32
}

// fnv1a64 is FNV-1a with a murmur-style avalanche finalizer. Bare FNV-1a
// disperses the near-identical vnode labels ("addr\x000", "addr\x001", …)
// badly — arcs end up wildly uneven (measured 7× spread at 128 vnodes) —
// because a trailing-byte change only ripples through one multiply. The
// finalizer mixes every input bit into every output bit, which is what ring
// placement actually needs.
func fnv1a64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// NewRing builds a ring over the given shard addresses (deduplicated,
// order-insensitive) with vnodes virtual points per shard (≤ 0 uses
// DefaultVirtualNodes). An empty shard list yields an empty ring whose
// lookups return nothing.
func NewRing(shards []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(shards))
	uniq := make([]string, 0, len(shards))
	for _, s := range shards {
		if s != "" && !seen[s] {
			seen[s] = true
			uniq = append(uniq, s)
		}
	}
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, shards: uniq}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for si, addr := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{fnv1a64(fmt.Sprintf("%s\x00%d", addr, v)), int32(si)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Len returns the number of shards on the ring.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	return len(r.shards)
}

// Shards returns the shard addresses, sorted.
func (r *Ring) Shards() []string {
	if r == nil {
		return nil
	}
	return append([]string(nil), r.shards...)
}

// Owners returns the key's preference list: up to max distinct shards in
// clockwise ring order starting at the key's position. Owners(key, 1)[0]
// is the primary; the following entries are its replicas, and — past the
// replication factor — the bounded-load spill order.
func (r *Ring) Owners(key string, max int) []string {
	if r == nil || len(r.shards) == 0 || max <= 0 {
		return nil
	}
	if max > len(r.shards) {
		max = len(r.shards)
	}
	h := fnv1a64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[int32]bool, max)
	out := make([]string, 0, max)
	for n := 0; n < len(r.points) && len(out) < max; n++ {
		p := r.points[(i+n)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, r.shards[p.shard])
		}
	}
	return out
}

// Owner returns the key's primary shard ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	o := r.Owners(key, 1)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}
