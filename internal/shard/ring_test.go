package shard

import (
	"fmt"
	"testing"
)

func keysN(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("artifact-key-%04d", i)
	}
	return out
}

func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil, 0)
	if empty.Len() != 0 {
		t.Fatalf("empty ring Len = %d", empty.Len())
	}
	if o := empty.Owner("k"); o != "" {
		t.Fatalf("empty ring Owner = %q", o)
	}
	if o := empty.Owners("k", 3); o != nil {
		t.Fatalf("empty ring Owners = %v", o)
	}

	one := NewRing([]string{"a:1"}, 0)
	for _, k := range keysN(10) {
		if o := one.Owner(k); o != "a:1" {
			t.Fatalf("single-shard ring Owner(%q) = %q", k, o)
		}
	}
}

func TestRingDeterministicAndOrderInsensitive(t *testing.T) {
	a := NewRing([]string{"s1:1", "s2:1", "s3:1"}, 64)
	b := NewRing([]string{"s3:1", "s1:1", "s2:1"}, 64)
	for _, k := range keysN(200) {
		ao, bo := a.Owners(k, 3), b.Owners(k, 3)
		if len(ao) != 3 || len(bo) != 3 {
			t.Fatalf("Owners(%q) lengths %d/%d, want 3", k, len(ao), len(bo))
		}
		for i := range ao {
			if ao[i] != bo[i] {
				t.Fatalf("shard order changed preference list for %q: %v vs %v", k, ao, bo)
			}
		}
	}
}

func TestRingOwnersDistinct(t *testing.T) {
	r := NewRing([]string{"s1:1", "s2:1", "s3:1", "s4:1"}, 32)
	for _, k := range keysN(100) {
		owners := r.Owners(k, 4)
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("Owners(%q) repeats %q: %v", k, o, owners)
			}
			seen[o] = true
		}
	}
	// Asking for more owners than shards clamps.
	if got := r.Owners("k", 99); len(got) != 4 {
		t.Fatalf("Owners clamp: got %d, want 4", len(got))
	}
}

func TestRingBalance(t *testing.T) {
	shards := []string{"s1:1", "s2:1", "s3:1", "s4:1"}
	r := NewRing(shards, DefaultVirtualNodes)
	counts := map[string]int{}
	const n = 4000
	for _, k := range keysN(n) {
		counts[r.Owner(k)]++
	}
	mean := float64(n) / float64(len(shards))
	for _, s := range shards {
		got := float64(counts[s])
		if got < 0.5*mean || got > 1.5*mean {
			t.Errorf("shard %s owns %v keys, want within 50%% of mean %.0f (counts %v)",
				s, got, mean, counts)
		}
	}
}

// TestRingStability is the consistent-hashing property: adding one shard to
// a fleet of four moves roughly 1/5 of the keys — not half, as a modulo
// scheme would.
func TestRingStability(t *testing.T) {
	before := NewRing([]string{"s1:1", "s2:1", "s3:1", "s4:1"}, DefaultVirtualNodes)
	after := NewRing([]string{"s1:1", "s2:1", "s3:1", "s4:1", "s5:1"}, DefaultVirtualNodes)
	const n = 4000
	moved := 0
	for _, k := range keysN(n) {
		if before.Owner(k) != after.Owner(k) {
			moved++
		}
	}
	frac := float64(moved) / float64(n)
	// Expect ~1/5; fail on anything past 1/3 (a modulo scheme moves ~4/5).
	if frac > 1.0/3.0 {
		t.Errorf("join moved %.1f%% of keys, want ≈20%%", 100*frac)
	}
	if moved == 0 {
		t.Error("join moved no keys; the new shard owns nothing")
	}
}

func TestRingDeduplicates(t *testing.T) {
	r := NewRing([]string{"a:1", "a:1", "b:1", ""}, 8)
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (dedup + drop empty)", r.Len())
	}
}
