package lang

import (
	"strings"
	"testing"
)

// The parser recurses on nested syntax; without a depth limit, adversarial
// input is an unrecoverable `fatal error: stack overflow` (observed at
// ~5M nested parens before the guard existed). These tests pin the guard:
// pathological nesting returns a positioned error, realistic nesting parses.

func TestDeepParenNesting(t *testing.T) {
	src := "x = " + strings.Repeat("(", 100000) + "1" + strings.Repeat(")", 100000) + "\n"
	if _, err := Parse(src); err == nil {
		t.Fatal("want depth error, got success")
	}
}

func TestDeepIndexNesting(t *testing.T) {
	src := "y = x" + strings.Repeat("[x", 100000) + strings.Repeat("]", 100000) + "\n"
	if _, err := Parse(src); err == nil {
		t.Fatal("want depth error, got success")
	}
}

func TestDeepArrayLitNesting(t *testing.T) {
	src := "x = " + strings.Repeat("[None] * ", 100000) + "2\n"
	if _, err := Parse(src); err == nil {
		t.Fatal("want depth error, got success")
	}
}

func TestDeepForNesting(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 5000; i++ {
		b.WriteString(strings.Repeat("    ", i))
		b.WriteString("for i in range(0, 2):\n")
	}
	b.WriteString(strings.Repeat("    ", 5000))
	b.WriteString("x = 1\n")
	if _, err := Parse(b.String()); err == nil {
		t.Fatal("want depth error, got success")
	}
}

func TestDepthErrorIsPositioned(t *testing.T) {
	src := "x = " + strings.Repeat("(", 100000) + "1" + strings.Repeat(")", 100000) + "\n"
	_, err := Parse(src)
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("want *lang.Error, got %T: %v", err, err)
	}
	if perr.Pos.Line <= 0 {
		t.Fatalf("depth error carries no position: %+v", perr)
	}
	if !strings.Contains(perr.Error(), "nesting") {
		t.Fatalf("unexpected message: %v", perr)
	}
}

// TestModerateNestingStillParses guards against an over-eager limit: depth
// well beyond any canonical program must keep working.
func TestModerateNestingStillParses(t *testing.T) {
	src := "x = " + strings.Repeat("(", 50) + "1" + strings.Repeat(")", 50) + "\n"
	if _, err := Parse(src); err != nil {
		t.Fatalf("50 nested parens should parse: %v", err)
	}
	var b strings.Builder
	for i := 0; i < 20; i++ {
		b.WriteString(strings.Repeat("    ", i))
		b.WriteString("for i in range(0, 2):\n")
	}
	b.WriteString(strings.Repeat("    ", 20))
	b.WriteString("x = 1\n")
	if _, err := Parse(b.String()); err != nil {
		t.Fatalf("20 nested loops should parse: %v", err)
	}
}

// Malformed-input regressions: each must produce a positioned error, never
// a panic or a silent success.
func TestMalformedInputErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"bad dedent level", "for i in range(0, 2):\n    x = 1\n  y = 2\n"},
		{"unterminated paren", "x = (1 + \n"},
		{"unterminated bracket", "x = a[1\n"},
		{"missing colon", "for i in range(0, 2)\n    x = 1\n"},
		{"missing body", "for i in range(0, 2):\n"},
		{"overflow int literal", "x = 99999999999999999999999999\n"},
		{"comparison chain", "x = 1 < 2 < 3\n"},
		{"empty parens", "x = ()\n"},
		{"lone operator", "x = *\n"},
		{"keyword as name", "for for in range(0, 1):\n    x = 1\n"},
		{"assign to literal", "1 = 2\n"},
		{"unterminated call", "x = dist(a, \n"},
		{"bad tuple", "(a, ) = loadData()\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("no error for %q", c.src)
			}
			if perr, ok := err.(*Error); ok && perr.Pos.Line <= 0 {
				t.Fatalf("error without position for %q: %v", c.src, err)
			}
		})
	}
}
