// Package lang implements ENFrame's user language (paper §2): the Python
// fragment of Figure 4 with bounded-range loops, list comprehension,
// reduce_* aggregates, tie breaking, and the external calls loadData,
// loadParams, and init. It provides an indentation-aware lexer, a recursive
// descent parser producing an AST, and static validation.
package lang

import "fmt"

// TokKind enumerates the token kinds of the user language.
type TokKind uint8

const (
	TokEOF TokKind = iota
	TokNewline
	TokIndent
	TokDedent
	TokIdent
	TokInt
	TokFloat
	TokLParen
	TokRParen
	TokLBracket
	TokRBracket
	TokComma
	TokColon
	TokAssign // =
	TokEq     // ==
	TokLE     // <=
	TokGE     // >=
	TokLT     // <
	TokGT     // >
	TokPlus   // +
	TokStar   // *
	TokFor
	TokIn
	TokIf
	TokTrue
	TokFalse
	TokNone
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokNewline:
		return "newline"
	case TokIndent:
		return "indent"
	case TokDedent:
		return "dedent"
	case TokIdent:
		return "identifier"
	case TokInt:
		return "integer"
	case TokFloat:
		return "float"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokLBracket:
		return "'['"
	case TokRBracket:
		return "']'"
	case TokComma:
		return "','"
	case TokColon:
		return "':'"
	case TokAssign:
		return "'='"
	case TokEq:
		return "'=='"
	case TokLE:
		return "'<='"
	case TokGE:
		return "'>='"
	case TokLT:
		return "'<'"
	case TokGT:
		return "'>'"
	case TokPlus:
		return "'+'"
	case TokStar:
		return "'*'"
	case TokFor:
		return "'for'"
	case TokIn:
		return "'in'"
	case TokIf:
		return "'if'"
	case TokTrue:
		return "'True'"
	case TokFalse:
		return "'False'"
	case TokNone:
		return "'None'"
	}
	return fmt.Sprintf("TokKind(%d)", uint8(k))
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
}

// Pos is a 1-based source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a lexing, parsing, or validation error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
