package lang

// Canonical user programs from the paper's Figures 1–3. They parse with
// this package and drive the interpreter, the translator, and the CLI.

// KMedoidsSource is the k-medoids user program of Figure 1.
const KMedoidsSource = `
(O, n) = loadData()           # list and number of objects
(k, iter) = loadParams()      # number of clusters and iterations
M = init()                    # initialise medoids
for it in range(0,iter):      # clustering iterations
    InCl = [None] * k         # assignment phase
    for i in range(0,k):
        InCl[i] = [None] * n
        for l in range(0,n):
            InCl[i][l] = reduce_and([(dist(O[l],M[i]) <= dist(O[l],M[j])) for j in range(0,k)])
    InCl = breakTies2(InCl)   # each object is in exactly one cluster
    DistSum = [None] * k      # update phase
    for i in range(0,k):
        DistSum[i] = [None] * n
        for l in range(0,n):
            DistSum[i][l] = reduce_sum([dist(O[l],O[p]) for p in range(0,n) if InCl[i][p]])
    Centre = [None] * k
    for i in range(0,k):
        Centre[i] = [None] * n
        for l in range(0,n):
            Centre[i][l] = reduce_and([DistSum[i][l] <= DistSum[i][p] for p in range(0,n)])
    Centre = breakTies1(Centre)  # enforce one Centre per cluster
    M = [None] * k
    for i in range(0,k):
        M[i] = reduce_sum([O[l] for l in range(0,n) if Centre[i][l]])
`

// KMeansSource is the k-means user program of Figure 2.
const KMeansSource = `
(O, n) = loadData()           # list and number of objects
(k, iter) = loadParams()      # number of clusters and iterations
M = init()                    # initialise centroids
for it in range(0,iter):      # clustering iterations
    InCl = [None] * k         # assignment phase
    for i in range(0,k):
        InCl[i] = [None] * n
        for l in range(0,n):
            InCl[i][l] = reduce_and([dist(O[l],M[i]) <= dist(O[l],M[j]) for j in range(0,k)])
    InCl = breakTies2(InCl)   # each object is in exactly one cluster
    M = [None] * k            # update phase
    for i in range(0,k):
        M[i] = scalar_mult(invert(reduce_count([1 for l in range(0,n) if InCl[i][l]])), reduce_sum([O[l] for l in range(0,n) if InCl[i][l]]))
`

// MCLSource is the Markov clustering user program of Figure 3.
const MCLSource = `
(O, n, M) = loadData()        # M is a stochastic n*n matrix of edge weights
(r, iter) = loadParams()      # Hadamard power, number of iterations
for it in range(0,iter):
    N = [None] * n            # expansion phase
    for i in range(0,n):
        N[i] = [None] * n
        for j in range(0,n):
            N[i][j] = reduce_sum([M[i][k]*M[k][j] for k in range(0,n)])
    M = [None] * n            # inflation phase
    for i in range(0,n):
        M[i] = [None] * n
        for j in range(0,n):
            M[i][j] = pow(N[i][j],r)*invert(reduce_sum([pow(N[i][k],r) for k in range(0,n)]))
`

// Example3Source is the label-machinery example of §3.5 (Example 3).
const Example3Source = `
M = 7
M = M+2
for i in range(0,2):
    M = M+i
    for j in range(0,3):
        M = M+1
M = M+1
`
