package lang

import (
	"fmt"
	"strings"
)

// Program is a parsed user program.
type Program struct {
	Stmts []Stmt
}

// Stmt is a statement: an assignment, an external tuple binding, or a
// bounded-range loop.
type Stmt interface {
	stmt()
	Position() Pos
}

// Assign is `lvalue = expr`, covering scalar assignments, array element
// assignments, array initialisations, and single-name external calls such
// as `M = init()`.
type Assign struct {
	Pos    Pos
	Target LValue
	Value  Expr
}

// TupleAssign is `(a, b, …) = loadData()` / `= loadParams()`.
type TupleAssign struct {
	Pos   Pos
	Names []string
	Fn    string
}

// For is `for ID in range(from, to):` with a nested body.
type For struct {
	Pos      Pos
	Var      string
	From, To Expr
	Body     []Stmt
}

func (*Assign) stmt()      {}
func (*TupleAssign) stmt() {}
func (*For) stmt()         {}

func (s *Assign) Position() Pos      { return s.Pos }
func (s *TupleAssign) Position() Pos { return s.Pos }
func (s *For) Position() Pos         { return s.Pos }

// LValue is an assignable location: a name with zero or more index
// subscripts.
type LValue struct {
	Pos     Pos
	Name    string
	Indices []Expr
}

// Expr is an expression node.
type Expr interface {
	expr()
	Position() Pos
}

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	V   int
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Pos Pos
	V   float64
}

// BoolLit is True or False.
type BoolLit struct {
	Pos Pos
	V   bool
}

// NoneLit is None.
type NoneLit struct{ Pos Pos }

// Name references a variable.
type Name struct {
	Pos   Pos
	Ident string
}

// IndexExpr is `x[i]`.
type IndexExpr struct {
	Pos   Pos
	X     Expr
	Index Expr
}

// ArrayLit is `[None] * size`.
type ArrayLit struct {
	Pos  Pos
	Size Expr
}

// BinOp is a binary operation: '+', '*', or a comparison.
type BinOp struct {
	Pos  Pos
	Op   string
	L, R Expr
}

// Call is a builtin call: dist, pow, invert, scalar_mult, breakTies{,1,2},
// reduce_*, range (inside loops), loadData, loadParams, init.
type Call struct {
	Pos  Pos
	Fn   string
	Args []Expr
}

// ListCompr is `[elem for v in range(from, to) if cond]`; Cond is nil when
// absent.
type ListCompr struct {
	Pos      Pos
	Elem     Expr
	Var      string
	From, To Expr
	Cond     Expr
}

func (*IntLit) expr()    {}
func (*FloatLit) expr()  {}
func (*BoolLit) expr()   {}
func (*NoneLit) expr()   {}
func (*Name) expr()      {}
func (*IndexExpr) expr() {}
func (*ArrayLit) expr()  {}
func (*BinOp) expr()     {}
func (*Call) expr()      {}
func (*ListCompr) expr() {}

func (e *IntLit) Position() Pos    { return e.Pos }
func (e *FloatLit) Position() Pos  { return e.Pos }
func (e *BoolLit) Position() Pos   { return e.Pos }
func (e *NoneLit) Position() Pos   { return e.Pos }
func (e *Name) Position() Pos      { return e.Pos }
func (e *IndexExpr) Position() Pos { return e.Pos }
func (e *ArrayLit) Position() Pos  { return e.Pos }
func (e *BinOp) Position() Pos     { return e.Pos }
func (e *Call) Position() Pos      { return e.Pos }
func (e *ListCompr) Position() Pos { return e.Pos }

// String renders expressions in user-language syntax (for diagnostics).
func ExprString(e Expr) string {
	switch t := e.(type) {
	case *IntLit:
		return fmt.Sprintf("%d", t.V)
	case *FloatLit:
		return fmt.Sprintf("%g", t.V)
	case *BoolLit:
		if t.V {
			return "True"
		}
		return "False"
	case *NoneLit:
		return "None"
	case *Name:
		return t.Ident
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", ExprString(t.X), ExprString(t.Index))
	case *ArrayLit:
		return fmt.Sprintf("[None] * %s", ExprString(t.Size))
	case *BinOp:
		return fmt.Sprintf("(%s %s %s)", ExprString(t.L), t.Op, ExprString(t.R))
	case *Call:
		args := make([]string, len(t.Args))
		for i, a := range t.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("%s(%s)", t.Fn, strings.Join(args, ", "))
	case *ListCompr:
		s := fmt.Sprintf("[%s for %s in range(%s, %s)",
			ExprString(t.Elem), t.Var, ExprString(t.From), ExprString(t.To))
		if t.Cond != nil {
			s += " if " + ExprString(t.Cond)
		}
		return s + "]"
	}
	return "?"
}
