package lang

import "fmt"

// Validate enforces the static constraints of §2.2 on a parsed program:
// bounded-range loops over constant expressions, list comprehension only as
// reduce_* arguments, externals only as statement right-hand sides, builtins
// called with correct arity, and no use of undefined names.
func Validate(prog *Program) error {
	v := &validator{defined: map[string]bool{}}
	return v.stmts(prog.Stmts)
}

type validator struct {
	defined map[string]bool
}

func (v *validator) stmts(sts []Stmt) error {
	for _, st := range sts {
		if err := v.stmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (v *validator) stmt(st Stmt) error {
	switch t := st.(type) {
	case *TupleAssign:
		if t.Fn != "loadData" && t.Fn != "loadParams" {
			return errf(t.Pos, "tuple assignment requires loadData() or loadParams(), found %q", t.Fn)
		}
		for _, n := range t.Names {
			v.defined[n] = true
		}
		return nil
	case *Assign:
		// `M = init()` binds externally.
		if c, ok := t.Value.(*Call); ok && c.Fn == "init" {
			if len(t.Target.Indices) != 0 {
				return errf(t.Pos, "init() must be assigned to a plain name")
			}
			v.defined[t.Target.Name] = true
			return nil
		}
		if err := v.expr(t.Value, false); err != nil {
			return err
		}
		for _, ix := range t.Target.Indices {
			if err := v.expr(ix, false); err != nil {
				return err
			}
		}
		if len(t.Target.Indices) > 0 && !v.defined[t.Target.Name] {
			return errf(t.Pos, "array %q must be initialised before element assignment", t.Target.Name)
		}
		v.defined[t.Target.Name] = true
		return nil
	case *For:
		if err := v.rangeBound(t.From); err != nil {
			return err
		}
		if err := v.rangeBound(t.To); err != nil {
			return err
		}
		outer := v.defined[t.Var]
		v.defined[t.Var] = true
		if err := v.stmts(t.Body); err != nil {
			return err
		}
		v.defined[t.Var] = outer
		return nil
	}
	return fmt.Errorf("lang: unknown statement type %T", st)
}

// rangeBound admits the compile-time integer expressions allowed as range
// parameters: integer literals and (immutable) named integers, combined
// with + and *.
func (v *validator) rangeBound(e Expr) error {
	switch t := e.(type) {
	case *IntLit:
		return nil
	case *Name:
		if !v.defined[t.Ident] {
			return errf(t.Pos, "undefined name %q in range bound", t.Ident)
		}
		return nil
	case *BinOp:
		if t.Op != "+" && t.Op != "*" {
			return errf(t.Pos, "range bounds use only + and *")
		}
		if err := v.rangeBound(t.L); err != nil {
			return err
		}
		return v.rangeBound(t.R)
	}
	return errf(e.Position(), "range bounds must be compile-time integers")
}

func (v *validator) expr(e Expr, insideReduce bool) error {
	switch t := e.(type) {
	case *IntLit, *FloatLit, *BoolLit, *NoneLit:
		return nil
	case *Name:
		if !v.defined[t.Ident] {
			return errf(t.Pos, "undefined name %q", t.Ident)
		}
		return nil
	case *IndexExpr:
		if err := v.expr(t.X, false); err != nil {
			return err
		}
		return v.expr(t.Index, false)
	case *ArrayLit:
		return v.rangeBound(t.Size)
	case *BinOp:
		if err := v.expr(t.L, false); err != nil {
			return err
		}
		return v.expr(t.R, false)
	case *ListCompr:
		if !insideReduce {
			return errf(t.Pos, "list comprehension may only appear inside a reduce_* call")
		}
		if err := v.rangeBound(t.From); err != nil {
			return err
		}
		if err := v.rangeBound(t.To); err != nil {
			return err
		}
		outer := v.defined[t.Var]
		v.defined[t.Var] = true
		defer func() { v.defined[t.Var] = outer }()
		if err := v.expr(t.Elem, false); err != nil {
			return err
		}
		if t.Cond != nil {
			return v.expr(t.Cond, false)
		}
		return nil
	case *Call:
		sig, ok := builtins[t.Fn]
		if !ok {
			return errf(t.Pos, "unknown function %q", t.Fn)
		}
		switch t.Fn {
		case "loadData", "loadParams", "init":
			return errf(t.Pos, "%s() may only appear as a statement right-hand side", t.Fn)
		case "range":
			return errf(t.Pos, "range() may only appear in for-loops and list comprehensions")
		}
		if len(t.Args) < sig.minArgs || len(t.Args) > sig.maxArgs {
			return errf(t.Pos, "%s() takes %d argument(s), got %d", t.Fn, sig.minArgs, len(t.Args))
		}
		isReduce := len(t.Fn) > 7 && t.Fn[:7] == "reduce_"
		if isReduce {
			if _, ok := t.Args[0].(*ListCompr); !ok {
				return errf(t.Pos, "%s() requires a list comprehension argument", t.Fn)
			}
			return v.expr(t.Args[0], true)
		}
		if t.Fn == "pow" {
			if _, ok := t.Args[1].(*IntLit); !ok {
				if err := v.rangeBound(t.Args[1]); err != nil {
					return errf(t.Pos, "pow() exponent must be a compile-time integer")
				}
			}
		}
		for _, a := range t.Args {
			if err := v.expr(a, false); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("lang: unknown expression type %T", e)
}
