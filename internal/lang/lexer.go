package lang

import (
	"strings"
)

// Lex tokenises a user program, emitting INDENT/DEDENT tokens from leading
// whitespace as Python does. Tabs count as 8 columns; comments run from '#'
// to end of line; blank lines produce no tokens.
func Lex(src string) ([]Token, error) {
	lx := &lexer{src: src, line: 1, col: 1, indents: []int{0}}
	for !lx.eof() {
		if err := lx.lexLine(); err != nil {
			return nil, err
		}
	}
	// Close any open blocks.
	for len(lx.indents) > 1 {
		lx.indents = lx.indents[:len(lx.indents)-1]
		lx.emit(TokDedent, "")
	}
	lx.emit(TokEOF, "")
	return lx.toks, nil
}

type lexer struct {
	src     string
	off     int
	line    int
	col     int
	indents []int
	toks    []Token
}

func (lx *lexer) eof() bool { return lx.off >= len(lx.src) }

func (lx *lexer) peek() byte { return lx.src[lx.off] }

func (lx *lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else if c == '\t' {
		lx.col += 8 - (lx.col-1)%8
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *lexer) emit(kind TokKind, text string) {
	lx.toks = append(lx.toks, Token{Kind: kind, Text: text, Pos: lx.pos()})
}

func (lx *lexer) emitAt(kind TokKind, text string, pos Pos) {
	lx.toks = append(lx.toks, Token{Kind: kind, Text: text, Pos: pos})
}

// lexLine handles one physical line: indentation bookkeeping, then tokens.
func (lx *lexer) lexLine() error {
	// Measure indentation.
	indent := 0
	for !lx.eof() {
		switch lx.peek() {
		case ' ':
			indent++
			lx.advance()
			continue
		case '\t':
			indent += 8 - indent%8
			lx.advance()
			continue
		}
		break
	}
	// Blank or comment-only lines carry no block structure.
	if lx.eof() || lx.peek() == '\n' || lx.peek() == '#' {
		lx.skipRestOfLine()
		return nil
	}
	if err := lx.applyIndent(indent); err != nil {
		return err
	}
	for !lx.eof() && lx.peek() != '\n' {
		if err := lx.lexToken(); err != nil {
			return err
		}
	}
	lx.emit(TokNewline, "")
	if !lx.eof() {
		lx.advance() // consume '\n'
	}
	return nil
}

func (lx *lexer) skipRestOfLine() {
	for !lx.eof() && lx.peek() != '\n' {
		lx.advance()
	}
	if !lx.eof() {
		lx.advance()
	}
}

func (lx *lexer) applyIndent(indent int) error {
	top := lx.indents[len(lx.indents)-1]
	switch {
	case indent > top:
		lx.indents = append(lx.indents, indent)
		lx.emit(TokIndent, "")
	case indent < top:
		for len(lx.indents) > 1 && lx.indents[len(lx.indents)-1] > indent {
			lx.indents = lx.indents[:len(lx.indents)-1]
			lx.emit(TokDedent, "")
		}
		if lx.indents[len(lx.indents)-1] != indent {
			return errf(lx.pos(), "inconsistent indentation")
		}
	}
	return nil
}

func (lx *lexer) lexToken() error {
	c := lx.peek()
	pos := lx.pos()
	switch {
	case c == ' ' || c == '\t':
		lx.advance()
		return nil
	case c == '#':
		for !lx.eof() && lx.peek() != '\n' {
			lx.advance()
		}
		return nil
	case isLetter(c):
		start := lx.off
		for !lx.eof() && (isLetter(lx.peek()) || isDigit(lx.peek())) {
			lx.advance()
		}
		word := lx.src[start:lx.off]
		switch word {
		case "for":
			lx.emitAt(TokFor, word, pos)
		case "in":
			lx.emitAt(TokIn, word, pos)
		case "if":
			lx.emitAt(TokIf, word, pos)
		case "True":
			lx.emitAt(TokTrue, word, pos)
		case "False":
			lx.emitAt(TokFalse, word, pos)
		case "None":
			lx.emitAt(TokNone, word, pos)
		default:
			lx.emitAt(TokIdent, word, pos)
		}
		return nil
	case isDigit(c):
		start := lx.off
		kind := TokInt
		for !lx.eof() && isDigit(lx.peek()) {
			lx.advance()
		}
		if !lx.eof() && lx.peek() == '.' {
			kind = TokFloat
			lx.advance()
			for !lx.eof() && isDigit(lx.peek()) {
				lx.advance()
			}
		}
		lx.emitAt(kind, lx.src[start:lx.off], pos)
		return nil
	}
	lx.advance()
	switch c {
	case '(':
		lx.emitAt(TokLParen, "(", pos)
	case ')':
		lx.emitAt(TokRParen, ")", pos)
	case '[':
		lx.emitAt(TokLBracket, "[", pos)
	case ']':
		lx.emitAt(TokRBracket, "]", pos)
	case ',':
		lx.emitAt(TokComma, ",", pos)
	case ':':
		lx.emitAt(TokColon, ":", pos)
	case '+':
		lx.emitAt(TokPlus, "+", pos)
	case '*':
		lx.emitAt(TokStar, "*", pos)
	case '=':
		if !lx.eof() && lx.peek() == '=' {
			lx.advance()
			lx.emitAt(TokEq, "==", pos)
		} else {
			lx.emitAt(TokAssign, "=", pos)
		}
	case '<':
		if !lx.eof() && lx.peek() == '=' {
			lx.advance()
			lx.emitAt(TokLE, "<=", pos)
		} else {
			lx.emitAt(TokLT, "<", pos)
		}
	case '>':
		if !lx.eof() && lx.peek() == '=' {
			lx.advance()
			lx.emitAt(TokGE, ">=", pos)
		} else {
			lx.emitAt(TokGT, ">", pos)
		}
	default:
		return errf(pos, "unexpected character %q", string(c))
	}
	return nil
}

func isLetter(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// stripCommon removes a common leading margin from program literals in Go
// source, easing embedded test programs.
func stripCommon(src string) string {
	lines := strings.Split(src, "\n")
	margin := -1
	for _, ln := range lines {
		trimmed := strings.TrimLeft(ln, " \t")
		if trimmed == "" {
			continue
		}
		ind := len(ln) - len(trimmed)
		if margin < 0 || ind < margin {
			margin = ind
		}
	}
	if margin <= 0 {
		return src
	}
	for i, ln := range lines {
		if len(ln) >= margin {
			lines[i] = ln[margin:]
		}
	}
	return strings.Join(lines, "\n")
}
