package lang

import (
	"strconv"
)

// Builtins of the user language, checked by the validator.
var builtins = map[string]struct{ minArgs, maxArgs int }{
	"dist":         {2, 2},
	"pow":          {2, 2},
	"invert":       {1, 1},
	"scalar_mult":  {2, 2},
	"breakTies":    {1, 1},
	"breakTies1":   {1, 1},
	"breakTies2":   {1, 1},
	"reduce_and":   {1, 1},
	"reduce_or":    {1, 1},
	"reduce_sum":   {1, 1},
	"reduce_mult":  {1, 1},
	"reduce_count": {1, 1},
	"loadData":     {0, 0},
	"loadParams":   {0, 0},
	"init":         {0, 0},
	"range":        {2, 2},
}

// Parse lexes and parses a user program. A common indentation margin (from
// Go source literals) is stripped first.
func Parse(src string) (*Program, error) {
	toks, err := Tokens(src)
	if err != nil {
		return nil, err
	}
	return ParseTokens(toks)
}

// Tokens lexes a user program exactly as Parse does (the common indentation
// margin is stripped first). Split out so callers can time and trace lexing
// separately from parsing.
func Tokens(src string) ([]Token, error) {
	return Lex(stripCommon(src))
}

// ParseTokens parses a token stream produced by Tokens.
func ParseTokens(toks []Token) (*Program, error) {
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(TokEOF) {
		st, err := p.stmt()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, st)
	}
	return prog, nil
}

// MustParse parses or panics; for tests and embedded canonical programs.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	toks []Token
	i    int
	// depth counts active stmt/factor recursion frames. Every recursion
	// cycle in the grammar passes through one of the two, so bounding them
	// bounds the whole parse and turns pathologically nested input into a
	// positioned error instead of a stack overflow.
	depth int
}

// maxDepth is far beyond any real program (the canonical clustering
// programs nest < 10 deep) but small enough that the recursion never
// threatens the goroutine stack.
const maxDepth = 200

func (p *parser) push(pos Pos) error {
	p.depth++
	if p.depth > maxDepth {
		return errf(pos, "nesting deeper than %d levels", maxDepth)
	}
	return nil
}

func (p *parser) pop() { p.depth-- }

func (p *parser) cur() Token        { return p.toks[p.i] }
func (p *parser) at(k TokKind) bool { return p.toks[p.i].Kind == k }

func (p *parser) advance() Token {
	t := p.toks[p.i]
	if t.Kind != TokEOF {
		p.i++
	}
	return t
}

func (p *parser) expect(k TokKind) (Token, error) {
	if !p.at(k) {
		return Token{}, errf(p.cur().Pos, "expected %v, found %v", k, p.cur().Kind)
	}
	return p.advance(), nil
}

func (p *parser) stmt() (Stmt, error) {
	if err := p.push(p.cur().Pos); err != nil {
		return nil, err
	}
	defer p.pop()
	switch p.cur().Kind {
	case TokFor:
		return p.forStmt()
	case TokLParen:
		return p.tupleAssign()
	case TokIdent:
		return p.assign()
	}
	return nil, errf(p.cur().Pos, "expected a statement, found %v", p.cur().Kind)
}

func (p *parser) forStmt() (Stmt, error) {
	pos := p.advance().Pos // 'for'
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokIn); err != nil {
		return nil, err
	}
	rng, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if rng.Text != "range" {
		return nil, errf(rng.Pos, "for-loops iterate over range(a, b), found %q", rng.Text)
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	from, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokComma); err != nil {
		return nil, err
	}
	to, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokNewline); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokIndent); err != nil {
		return nil, err
	}
	var body []Stmt
	for !p.at(TokDedent) && !p.at(TokEOF) {
		st, err := p.stmt()
		if err != nil {
			return nil, err
		}
		body = append(body, st)
	}
	if _, err := p.expect(TokDedent); err != nil {
		return nil, err
	}
	return &For{Pos: pos, Var: name.Text, From: from, To: to, Body: body}, nil
}

func (p *parser) tupleAssign() (Stmt, error) {
	pos := p.advance().Pos // '('
	var names []string
	for {
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		names = append(names, name.Text)
		if p.at(TokComma) {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	fn, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokNewline); err != nil {
		return nil, err
	}
	return &TupleAssign{Pos: pos, Names: names, Fn: fn.Text}, nil
}

func (p *parser) assign() (Stmt, error) {
	lv, err := p.lvalue()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	rhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokNewline); err != nil {
		return nil, err
	}
	return &Assign{Pos: lv.Pos, Target: lv, Value: rhs}, nil
}

func (p *parser) lvalue() (LValue, error) {
	name, err := p.expect(TokIdent)
	if err != nil {
		return LValue{}, err
	}
	lv := LValue{Pos: name.Pos, Name: name.Text}
	for p.at(TokLBracket) {
		p.advance()
		ix, err := p.expr()
		if err != nil {
			return LValue{}, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return LValue{}, err
		}
		lv.Indices = append(lv.Indices, ix)
	}
	return lv, nil
}

// expr := additive [COMP additive]
func (p *parser) expr() (Expr, error) {
	l, err := p.additive()
	if err != nil {
		return nil, err
	}
	var op string
	switch p.cur().Kind {
	case TokLE:
		op = "<="
	case TokGE:
		op = ">="
	case TokLT:
		op = "<"
	case TokGT:
		op = ">"
	case TokEq:
		op = "=="
	default:
		return l, nil
	}
	pos := p.advance().Pos
	r, err := p.additive()
	if err != nil {
		return nil, err
	}
	return &BinOp{Pos: pos, Op: op, L: l, R: r}, nil
}

func (p *parser) additive() (Expr, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	for p.at(TokPlus) {
		pos := p.advance().Pos
		r, err := p.term()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Pos: pos, Op: "+", L: l, R: r}
	}
	return l, nil
}

func (p *parser) term() (Expr, error) {
	l, err := p.factor()
	if err != nil {
		return nil, err
	}
	for p.at(TokStar) {
		pos := p.advance().Pos
		r, err := p.factor()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Pos: pos, Op: "*", L: l, R: r}
	}
	return l, nil
}

func (p *parser) factor() (Expr, error) {
	if err := p.push(p.cur().Pos); err != nil {
		return nil, err
	}
	defer p.pop()
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.advance()
		v, err := strconv.Atoi(t.Text)
		if err != nil {
			return nil, errf(t.Pos, "bad integer literal %q", t.Text)
		}
		return &IntLit{Pos: t.Pos, V: v}, nil
	case TokFloat:
		p.advance()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad float literal %q", t.Text)
		}
		return &FloatLit{Pos: t.Pos, V: v}, nil
	case TokTrue:
		p.advance()
		return &BoolLit{Pos: t.Pos, V: true}, nil
	case TokFalse:
		p.advance()
		return &BoolLit{Pos: t.Pos, V: false}, nil
	case TokNone:
		p.advance()
		return &NoneLit{Pos: t.Pos}, nil
	case TokLParen:
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return p.postfix(e)
	case TokLBracket:
		return p.bracket()
	case TokIdent:
		p.advance()
		if p.at(TokLParen) {
			p.advance()
			var args []Expr
			for !p.at(TokRParen) {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.at(TokComma) {
					p.advance()
				}
			}
			p.advance() // ')'
			return p.postfix(&Call{Pos: t.Pos, Fn: t.Text, Args: args})
		}
		return p.postfix(&Name{Pos: t.Pos, Ident: t.Text})
	}
	return nil, errf(t.Pos, "expected an expression, found %v", t.Kind)
}

func (p *parser) postfix(e Expr) (Expr, error) {
	for p.at(TokLBracket) {
		pos := p.advance().Pos
		ix, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		e = &IndexExpr{Pos: pos, X: e, Index: ix}
	}
	return e, nil
}

// bracket parses `[None] * expr` (array initialisation) or a list
// comprehension `[elem for v in range(a, b) if cond]`.
func (p *parser) bracket() (Expr, error) {
	pos := p.advance().Pos // '['
	if p.at(TokNone) {
		p.advance()
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokStar); err != nil {
			return nil, err
		}
		size, err := p.factor()
		if err != nil {
			return nil, err
		}
		return &ArrayLit{Pos: pos, Size: size}, nil
	}
	elem, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokFor); err != nil {
		return nil, err
	}
	v, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokIn); err != nil {
		return nil, err
	}
	rng, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if rng.Text != "range" {
		return nil, errf(rng.Pos, "list comprehension iterates over range(a, b)")
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	from, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokComma); err != nil {
		return nil, err
	}
	to, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	var cond Expr
	if p.at(TokIf) {
		p.advance()
		cond, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokRBracket); err != nil {
		return nil, err
	}
	return &ListCompr{Pos: pos, Elem: elem, Var: v.Text, From: from, To: to, Cond: cond}, nil
}
