package lang

import (
	"strings"
	"testing"
)

func TestParseCanonicalPrograms(t *testing.T) {
	for name, src := range map[string]string{
		"kmedoids": KMedoidsSource,
		"kmeans":   KMeansSource,
		"mcl":      MCLSource,
		"example3": Example3Source,
	} {
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := Validate(prog); err != nil {
			t.Fatalf("%s: validate: %v", name, err)
		}
		if len(prog.Stmts) == 0 {
			t.Fatalf("%s: empty program", name)
		}
	}
}

func TestParseStructure(t *testing.T) {
	prog := MustParse(`
		(O, n) = loadData()
		(k, iter) = loadParams()
		M = init()
		for i in range(0, k):
			M[i] = reduce_sum([O[l] for l in range(0, n) if InCl[i][l]])
	`)
	if len(prog.Stmts) != 4 {
		t.Fatalf("got %d statements, want 4", len(prog.Stmts))
	}
	ta, ok := prog.Stmts[0].(*TupleAssign)
	if !ok || ta.Fn != "loadData" || len(ta.Names) != 2 {
		t.Fatalf("bad first statement: %#v", prog.Stmts[0])
	}
	f, ok := prog.Stmts[3].(*For)
	if !ok || f.Var != "i" {
		t.Fatalf("bad loop: %#v", prog.Stmts[3])
	}
	as, ok := f.Body[0].(*Assign)
	if !ok || as.Target.Name != "M" || len(as.Target.Indices) != 1 {
		t.Fatalf("bad loop body: %#v", f.Body[0])
	}
	call, ok := as.Value.(*Call)
	if !ok || call.Fn != "reduce_sum" {
		t.Fatalf("bad RHS: %#v", as.Value)
	}
	lc, ok := call.Args[0].(*ListCompr)
	if !ok || lc.Var != "l" || lc.Cond == nil {
		t.Fatalf("bad list comprehension: %#v", call.Args[0])
	}
}

func TestParseNestedIndentation(t *testing.T) {
	prog := MustParse(`
		x = 1
		for i in range(0, 2):
			y = 2
			for j in range(0, 3):
				z = 3
			w = 4
		v = 5
	`)
	if len(prog.Stmts) != 3 {
		t.Fatalf("got %d top-level statements, want 3", len(prog.Stmts))
	}
	outer := prog.Stmts[1].(*For)
	if len(outer.Body) != 3 {
		t.Fatalf("outer body has %d statements, want 3", len(outer.Body))
	}
	inner := outer.Body[1].(*For)
	if len(inner.Body) != 1 {
		t.Fatalf("inner body has %d statements, want 1", len(inner.Body))
	}
}

func TestParseComments(t *testing.T) {
	prog := MustParse(`
		x = 1  # trailing comment
		# whole-line comment

		y = x + 2
	`)
	if len(prog.Stmts) != 2 {
		t.Fatalf("got %d statements, want 2", len(prog.Stmts))
	}
}

func TestParseOperators(t *testing.T) {
	prog := MustParse("x = 1\ny = (x + 2) * 3\nb = y <= 4\nc = y == 5\nd = y >= 1\ne = y < 2\nf = y > 0\n")
	if len(prog.Stmts) != 7 {
		t.Fatalf("got %d statements", len(prog.Stmts))
	}
	b := prog.Stmts[2].(*Assign).Value.(*BinOp)
	if b.Op != "<=" {
		t.Errorf("op = %q", b.Op)
	}
	y := prog.Stmts[1].(*Assign).Value.(*BinOp)
	if y.Op != "*" {
		t.Errorf("precedence: outer op = %q, want *", y.Op)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"for i in lst:\n\tx = 1\n",      // not range
		"x = \n",                        // missing RHS
		"x = [None]\n",                  // array literal without size
		"(a b) = loadData()\n",          // malformed tuple
		"x = 1 +\n",                     // dangling operator
		"for i in range(0, 2): x = 1\n", // body must be an indented block
		"x = $\n",                       // bad character
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	cases := map[string]string{
		"undefined name":         "x = y + 1\n",
		"compr outside reduce":   "x = [1 for i in range(0, 2)]\n",
		"unknown function":       "x = foo(1)\n",
		"tuple external":         "(a, b) = init()\n",
		"element before init":    "M[0] = 1\n",
		"nonconstant range":      "(O, n) = loadData()\nfor i in range(0, dist(O[0], O[1])):\n\tx = 1\n",
		"reduce non-compr":       "x = reduce_sum(3)\n",
		"external in expression": "x = 1 + loadParams()\n",
	}
	for name, src := range cases {
		prog, err := Parse(src)
		if err != nil {
			continue // parse-level rejection is fine too
		}
		if err := Validate(prog); err == nil {
			t.Errorf("%s: expected a validation error for %q", name, src)
		}
	}
}

func TestLexIndentConsistency(t *testing.T) {
	if _, err := Lex("for i in range(0,1):\n    x = 1\n  y = 2\n"); err == nil {
		t.Error("expected inconsistent indentation error")
	}
}

func TestExprString(t *testing.T) {
	prog := MustParse("x = reduce_sum([1 for i in range(0, 3) if True])\n")
	s := ExprString(prog.Stmts[0].(*Assign).Value)
	for _, frag := range []string{"reduce_sum", "for i in range(0, 3)", "if True"} {
		if !strings.Contains(s, frag) {
			t.Errorf("ExprString = %q missing %q", s, frag)
		}
	}
}
