package lang

import (
	"strings"
	"testing"
)

// FuzzLexer: Lex must never panic; on success every token needs a sane
// position and the stream must end with EOF after balanced indentation.
func FuzzLexer(f *testing.F) {
	f.Add("x = 1\n")
	f.Add("for i in range(0, n):\n    x = i\n")
	f.Add("x = [None] * 3\n\tbad indent")
	f.Add("s = reduce_sum([a[i] for i in range(0, 3) if (a[i] <= 2)])")
	f.Add("(O, n) = loadData()\r\n# comment\nM = init()")
	f.Add(KMedoidsSource)
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Lex(src)
		if err != nil {
			return
		}
		depth := 0
		for _, tok := range toks {
			if tok.Pos.Line < 0 || tok.Pos.Col < 0 {
				t.Fatalf("token %v has negative position %v", tok.Kind, tok.Pos)
			}
			switch tok.Kind {
			case TokIndent:
				depth++
			case TokDedent:
				depth--
				if depth < 0 {
					t.Fatal("DEDENT below depth 0")
				}
			}
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatal("token stream does not end with EOF")
		}
		if depth != 0 {
			t.Fatalf("unbalanced indentation: depth %d at EOF", depth)
		}
	})
}

// FuzzParser: Parse must never panic, and a program that parses must also
// survive static validation without panicking.
func FuzzParser(f *testing.F) {
	f.Add("x = 1\n")
	f.Add("for i in range(0, 3):\n    x = (x + i)\n")
	f.Add("x = ((((1))))\n")
	f.Add("A = [None] * k\nA[0] = [None] * n\n")
	f.Add("b = reduce_and([True for i in range(0, 0)])\n")
	f.Add("x = [None] * [None] * [None] * 2\n")
	f.Add(strings.Repeat("(", 64) + "1" + strings.Repeat(")", 64))
	f.Add(KMeansSource)
	f.Add(MCLSource)
	f.Add(Example3Source)
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		// Validation must be total on anything the parser accepts.
		_ = Validate(prog)
	})
}
