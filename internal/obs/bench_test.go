package obs

import "testing"

// BenchmarkDisabled measures the nil (observability-off) fast path; the
// acceptance bar is 0 allocs/op and low single-digit ns.
func BenchmarkDisabled(b *testing.B) {
	var tr *Trace
	var c *Counter
	var tl *Timeline
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Root().Start("x")
		sp.SetInt("k", int64(i))
		sp.End()
		c.Add(1)
		tl.Add(0, 1)
	}
}

// BenchmarkEnabledCounter measures the enabled counter hot path (one atomic
// add after a one-time lookup).
func BenchmarkEnabledCounter(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkEnabledSpan measures span creation + end when tracing is on.
func BenchmarkEnabledSpan(b *testing.B) {
	tr := New("bench")
	root := tr.Root()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := root.Start("x")
		sp.End()
	}
	b.StopTimer()
	tr.Finish()
}
