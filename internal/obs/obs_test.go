package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fakeClock returns a deterministic clock advancing 1ms per reading.
func fakeClock() func() time.Time {
	epoch := time.Unix(1000, 0).UTC()
	n := 0
	return func() time.Time {
		n++
		return epoch.Add(time.Duration(n) * time.Millisecond)
	}
}

func newTestTrace(name string) *Trace {
	clock := fakeClock()
	t := &Trace{
		now:       clock,
		metrics:   NewRegistry(),
		timelines: map[string]*Timeline{},
	}
	t.root = &Span{t: t, name: name, tid: 1, start: t.now()}
	return t
}

func TestSpanTreeStructure(t *testing.T) {
	tr := newTestTrace("run")
	parse := tr.Root().Start("parse")
	parse.SetInt("tokens", 42)
	parse.End()
	compile := tr.Root().Start("compile")
	compile.SetStr("strategy", "hybrid")
	explore := compile.Start("explore")
	explore.End()
	compile.End()
	tr.Finish()

	tree := tr.Tree()
	for _, want := range []string{"run", "├─ parse", "└─ compile", "   └─ explore", "tokens=42", "strategy=hybrid"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
	if parse.Dur() != time.Millisecond {
		t.Errorf("parse span duration = %v, want 1ms", parse.Dur())
	}
	// Stage times nest: compile contains explore.
	if compile.Dur() < explore.Dur() {
		t.Errorf("compile (%v) shorter than child explore (%v)", compile.Dur(), explore.Dur())
	}
}

func TestChromeTraceGolden(t *testing.T) {
	tr := newTestTrace("enframe")
	parse := tr.Root().Start("parse")
	parse.SetInt("tokens", 42)
	parse.End()
	compile := tr.Root().Start("compile")
	compile.SetStr("strategy", "hybrid")
	compile.SetFloat("eps", 0.1)
	w0 := compile.Start("worker")
	w0.SetTID(2)
	w0.SetInt("id", 0)
	tr.Timeline("budget", 16).Add(3, 0.025)
	w0.End()
	compile.End()
	tr.Finish()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden.\ngot:  %s\nwant: %s", buf.Bytes(), want)
	}
}

func TestChromeTraceDisabled(t *testing.T) {
	var tr *Trace
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents":[]`) {
		t.Errorf("disabled trace export = %q", buf.String())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared.counter")
			g := r.Gauge("shared.max")
			h := r.Histogram("shared.hist", []float64{10, 100, 1000})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.SetMax(float64(w*perWorker + i))
				h.Observe(float64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared.counter").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("shared.max").Value(); got != workers*perWorker-1 {
		t.Errorf("gauge max = %g, want %d", got, workers*perWorker-1)
	}
	h := r.Histogram("shared.hist", nil)
	if h.Count() != workers*perWorker {
		t.Errorf("hist count = %d, want %d", h.Count(), workers*perWorker)
	}
	wantSum := float64(workers) * float64(perWorker*(perWorker-1)) / 2
	if h.Sum() != wantSum {
		t.Errorf("hist sum = %g, want %g", h.Sum(), wantSum)
	}
	bk := h.Buckets()
	if last := bk[len(bk)-1]; last.Count != workers*perWorker {
		t.Errorf("final cumulative bucket = %d, want %d", last.Count, workers*perWorker)
	}
}

func TestTracerConcurrentWorkers(t *testing.T) {
	tr := New("run")
	compile := tr.Root().Start("compile")
	tl := tr.Timeline("budget", 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := compile.Start("worker")
			ws.SetTID(w + 2)
			ws.SetInt("id", int64(w))
			for i := 0; i < 50; i++ {
				ws.SetInt("step", int64(i))
				tl.Add(w, float64(i))
			}
			ws.End()
		}(w)
	}
	wg.Wait()
	compile.End()
	tr.Finish()
	if n := strings.Count(tr.Tree(), "worker"); n != 8 {
		t.Errorf("tree has %d worker spans, want 8", n)
	}
	pts, dropped := tr.Timeline("budget", 64).Points()
	if len(pts) != 64 {
		t.Errorf("timeline kept %d points, want capacity 64", len(pts))
	}
	if dropped != 8*50-64 {
		t.Errorf("timeline dropped %d, want %d", dropped, 8*50-64)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTimelineBounded(t *testing.T) {
	tr := New("run")
	tl := tr.Timeline("spend", 4)
	for i := 0; i < 10; i++ {
		tl.Add(i, 1)
	}
	pts, dropped := tl.Points()
	if len(pts) != 4 || dropped != 6 {
		t.Errorf("got %d points, %d dropped; want 4, 6", len(pts), dropped)
	}
	// Same name returns the same timeline regardless of capacity argument.
	if tr.Timeline("spend", 99) != tl {
		t.Error("Timeline(name) did not memoise")
	}
}

// TestDisabledPathDoesNotAllocate asserts the nil (disabled) implementations
// are allocation-free, so instrumentation can stay unconditionally in hot
// code.
func TestDisabledPathDoesNotAllocate(t *testing.T) {
	var tr *Trace
	var reg *Registry
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tl *Timeline
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Root().Start("x")
		sp.SetInt("k", 1)
		sp.SetFloat("f", 1)
		sp.SetStr("s", "v")
		sp.End()
		reg.Counter("c").Add(1)
		c.Inc()
		g.SetMax(3)
		h.Observe(1)
		tl.Add(0, 1)
		tr.Finish()
	})
	if allocs != 0 {
		t.Errorf("disabled path allocates %v times per op, want 0", allocs)
	}
}

func TestRegistryString(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(3)
	r.Gauge("a.rate").Set(0.5)
	s := r.String()
	ai, bi := strings.Index(s, "a.rate"), strings.Index(s, "b.count")
	if ai < 0 || bi < 0 || ai > bi {
		t.Errorf("String() not sorted or missing entries:\n%s", s)
	}
}
