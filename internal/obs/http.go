package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
)

// metricJSON mirrors MetricValue with a JSON-encodable overflow bucket:
// encoding/json rejects +Inf, so Le is a float64 or the string "+Inf".
type metricJSON struct {
	Name    string       `json:"name"`
	Kind    string       `json:"kind"`
	Value   float64      `json:"value"`
	Sum     float64      `json:"sum,omitempty"`
	Buckets []bucketJSON `json:"buckets,omitempty"`
}

type bucketJSON struct {
	Le    any   `json:"le"`
	Count int64 `json:"count"`
}

// WriteMetricsHTTP renders a registry onto an HTTP response, negotiating
// among three formats: ?format=json (or Accept: application/json) gets the
// structured JSON snapshot, ?format=prometheus (or an Accept naming
// text/plain, as Prometheus scrapers send) gets exposition-format text, and
// everything else — including curl's bare Accept: */* — the legacy
// human-readable dump. Every /metrics endpoint in the fleet (serve shards,
// the shard router) shares this negotiation, so scrapers see one contract.
func WriteMetricsHTTP(reg *Registry, w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	accept := r.Header.Get("Accept")
	switch {
	case format == "json" || (format == "" && strings.Contains(accept, "application/json")):
		vals := reg.Values()
		out := make([]metricJSON, 0, len(vals))
		for _, v := range vals {
			m := metricJSON{Name: v.Name, Kind: v.Kind, Value: v.Value, Sum: v.Sum}
			for _, b := range v.Buckets {
				var le any = b.Le
				if math.IsInf(b.Le, 1) {
					le = "+Inf"
				}
				m.Buckets = append(m.Buckets, bucketJSON{Le: le, Count: b.Count})
			}
			out = append(out, m)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_ = json.NewEncoder(w).Encode(out)
	case format == "prometheus" || (format == "" && strings.Contains(accept, "text/plain")):
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, reg.String())
	}
}
