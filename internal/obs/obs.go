// Package obs is the observability layer of the reproduction: a
// concurrency-safe metrics registry (atomic counters, gauges, fixed-bucket
// histograms, bounded event timelines) and a span-based tracer that covers
// the whole compile pipeline (lex → parse → check → translate → ground →
// order → compile/approximate → distribute).
//
// Everything is nil-safe: a nil *Trace, *Span, *Registry, *Counter, *Gauge,
// *Histogram, or *Timeline is the disabled implementation. Disabled calls
// are a nil check and return — no locking, no allocation — so instrumented
// code passes the observer down unconditionally and pays nothing when
// observability is off (asserted by TestDisabledPathDoesNotAllocate and
// BenchmarkDisabled). The package uses only the standard library.
//
// A Trace exports as a human-readable span tree (Tree) and as Chrome
// trace_event JSON (WriteChromeTrace) loadable in about:tracing or
// https://ui.perfetto.dev. See OBSERVABILITY.md at the repository root.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Trace owns one pipeline run's spans, metrics, and timelines.
type Trace struct {
	mu        sync.Mutex
	now       func() time.Time // injectable for deterministic tests
	id        string           // random hex trace ID, propagated across processes
	spanSeq   atomic.Uint64    // span ID allocator, unique within the trace
	root      *Span
	metrics   *Registry
	timelines map[string]*Timeline
	// lanes maps extra Chrome-trace process IDs (spliced remote subtrees) to
	// their display labels. The local process is always lane 1.
	lanes map[int]string
}

// New starts an enabled trace whose root span is open from now on.
func New(name string) *Trace {
	return NewWithClock(name, time.Now)
}

// NewWithClock is New with an injectable clock — how tests keep exports
// byte-stable and how worker processes record spans against the same clock
// the per-connection offset handshake measured.
func NewWithClock(name string, now func() time.Time) *Trace {
	if now == nil {
		now = time.Now
	}
	t := &Trace{
		now:       now,
		id:        newTraceID(),
		metrics:   NewRegistry(),
		timelines: map[string]*Timeline{},
	}
	t.root = &Span{t: t, name: name, tid: 1, pid: 1, start: t.now(), id: t.spanSeq.Add(1)}
	return t
}

// newTraceID returns 16 hex characters of crypto/rand entropy.
func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ID returns the trace's random hex identifier ("" when disabled). It is the
// cross-process correlation key: job frames carry it to workers, whose
// shipped span subtrees are spliced back under the same trace.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Enabled reports whether the trace records anything.
func (t *Trace) Enabled() bool { return t != nil }

// Root returns the root span (nil for a disabled trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Metrics returns the trace's metrics registry (nil when disabled).
func (t *Trace) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return t.metrics
}

// Timeline returns the named bounded timeline, creating it with the given
// capacity on first use. Capacity is fixed at creation; later calls with a
// different capacity return the existing timeline unchanged.
func (t *Trace) Timeline(name string, capacity int) *Timeline {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tl := t.timelines[name]
	if tl == nil {
		if capacity < 1 {
			capacity = 1
		}
		tl = &Timeline{t: t, name: name, max: capacity,
			dropCtr: t.metrics.Counter("obs.timeline.dropped")}
		t.timelines[name] = tl
	}
	return tl
}

// Finish ends the root span. Spans still open keep accumulating until their
// own End; exports treat them as running up to the export instant.
func (t *Trace) Finish() { t.Root().End() }

// attrKind discriminates the payload of an Attr without boxing.
type attrKind uint8

const (
	attrInt attrKind = iota
	attrFloat
	attrStr
)

// Attr is one key=value annotation of a span.
type Attr struct {
	Key  string
	kind attrKind
	i    int64
	f    float64
	s    string
}

// Value returns the attribute payload for serialisation.
func (a Attr) Value() any {
	switch a.kind {
	case attrInt:
		return a.i
	case attrFloat:
		return a.f
	default:
		return a.s
	}
}

func (a Attr) valueString() string {
	switch a.kind {
	case attrInt:
		return fmt.Sprintf("%d", a.i)
	case attrFloat:
		return fmt.Sprintf("%.4g", a.f)
	default:
		return a.s
	}
}

// Span is one timed region of the pipeline. Spans nest; children may be
// started and ended from different goroutines (the distributed workers each
// own one).
type Span struct {
	t        *Trace
	name     string
	id       uint64 // unique within the trace; 0 only for spliced remote spans
	tid      int
	pid      int // Chrome-trace process lane; 0 and 1 both mean "local"
	start    time.Time
	end      time.Time
	attrs    []Attr
	children []*Span
}

// Start opens a child span.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.t
	c := &Span{t: t, name: name, id: t.spanSeq.Add(1)}
	t.mu.Lock()
	c.tid = s.tid
	c.pid = s.pid
	c.start = t.now()
	s.children = append(s.children, c)
	t.mu.Unlock()
	return c
}

// SpanID returns the span's trace-unique identifier (0 when disabled). A
// remote worker receiving this as its parent span ID roots its local subtree
// under it when the coordinator splices the subtree back.
func (s *Span) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// TraceID returns the owning trace's identifier ("" when disabled).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.t.id
}

// End closes the span; the first call wins.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if s.end.IsZero() {
		s.end = s.t.now()
	}
	s.t.mu.Unlock()
}

// SetTID assigns the span (and children started afterwards) to a Chrome
// trace lane; workers use lanes so concurrent spans do not stack.
func (s *Span) SetTID(tid int) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.tid = tid
	s.t.mu.Unlock()
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, kind: attrInt, i: v})
	s.t.mu.Unlock()
}

// SetFloat attaches a float attribute.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, kind: attrFloat, f: v})
	s.t.mu.Unlock()
}

// SetStr attaches a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, kind: attrStr, s: v})
	s.t.mu.Unlock()
}

// SetDuration attaches a duration attribute, rendered in milliseconds.
func (s *Span) SetDuration(key string, d time.Duration) {
	s.SetFloat(key, float64(d)/float64(time.Millisecond))
}

// Dur returns the span's wall time; for a still-open span, the time since
// its start.
func (s *Span) Dur() time.Duration {
	if s == nil {
		return 0
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return s.durLocked()
}

func (s *Span) durLocked() time.Duration {
	end := s.end
	if end.IsZero() {
		end = s.t.now()
	}
	return end.Sub(s.start)
}

// Tree renders the span hierarchy as an indented human-readable tree:
//
//	run                         14.2ms
//	├─ parse                     0.3ms tokens=812
//	└─ compile                  12.1ms strategy=hybrid
//	   └─ explore               11.8ms
func (t *Trace) Tree() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	t.root.render(&b, "", "", true)
	return b.String()
}

func (s *Span) render(b *strings.Builder, lead, branch string, last bool) {
	b.WriteString(lead)
	b.WriteString(branch)
	label := s.name
	pad := 34 - len(lead) - len(branch) - len(label)
	b.WriteString(label)
	for i := 0; i < pad; i++ {
		b.WriteByte(' ')
	}
	fmt.Fprintf(b, " %9s", fmtDur(s.durLocked()))
	for _, a := range s.attrs {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.valueString())
	}
	b.WriteByte('\n')
	childLead := lead
	if branch != "" {
		if last {
			childLead += "   "
		} else {
			childLead += "│  "
		}
	}
	for i, c := range s.children {
		cb := "├─ "
		if i == len(s.children)-1 {
			cb = "└─ "
		}
		c.render(b, childLead, cb, i == len(s.children)-1)
	}
}

// fmtDur renders a duration with millisecond-scale precision.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	}
}

// Timeline is a bounded append-only series of (elapsed, key, value) points;
// when full, further points are counted as dropped rather than recorded, so
// the hot path stays O(1) and memory stays bounded.
type Timeline struct {
	t       *Trace
	name    string
	mu      sync.Mutex
	max     int
	points  []TimelinePoint
	dropped int64
	dropCtr *Counter // obs.timeline.dropped, shared across timelines
}

// TimelinePoint is one timeline event.
type TimelinePoint struct {
	// At is the elapsed time since the trace root started.
	At time.Duration
	// Key identifies the series (e.g. a compilation-target index).
	Key int
	// Val is the recorded value (e.g. error budget spent).
	Val float64
}

// Add records one point (no-op when nil or full).
func (tl *Timeline) Add(key int, val float64) {
	if tl == nil {
		return
	}
	now := tl.t.now()
	tl.mu.Lock()
	if len(tl.points) < tl.max {
		tl.points = append(tl.points, TimelinePoint{At: now.Sub(tl.t.root.start), Key: key, Val: val})
	} else {
		tl.dropped++
		tl.dropCtr.Inc()
	}
	tl.mu.Unlock()
}

// Points returns a copy of the recorded points and the dropped count.
func (tl *Timeline) Points() ([]TimelinePoint, int64) {
	if tl == nil {
		return nil, 0
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return append([]TimelinePoint(nil), tl.points...), tl.dropped
}

// timelineNames returns the registered timeline names, sorted.
func (t *Trace) timelineNames() []string {
	names := make([]string, 0, len(t.timelines))
	for n := range t.timelines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
