package obs

import (
	"io"
	"math"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4). The registry's bespoke
// dotted names are sanitised to the metric-name charset [a-zA-Z0-9_:];
// histograms render as cumulative _bucket series plus _sum and _count.
// Output order is deterministic: metrics sort by raw name (Values order),
// and bucket series are ascending in le.

// WritePrometheus renders every metric in Prometheus text exposition format.
// A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	for _, mv := range r.Values() {
		name := sanitizeMetricName(mv.Name)
		switch mv.Kind {
		case "histogram":
			b.WriteString("# TYPE ")
			b.WriteString(name)
			b.WriteString(" histogram\n")
			for _, bk := range mv.Buckets {
				b.WriteString(name)
				b.WriteString(`_bucket{le="`)
				b.WriteString(formatLe(bk.Le))
				b.WriteString(`"} `)
				b.WriteString(strconv.FormatInt(bk.Count, 10))
				b.WriteByte('\n')
			}
			b.WriteString(name)
			b.WriteString("_sum ")
			b.WriteString(formatPromFloat(mv.Sum))
			b.WriteByte('\n')
			b.WriteString(name)
			b.WriteString("_count ")
			b.WriteString(formatPromFloat(mv.Value))
			b.WriteByte('\n')
		default:
			b.WriteString("# TYPE ")
			b.WriteString(name)
			b.WriteByte(' ')
			b.WriteString(mv.Kind)
			b.WriteByte('\n')
			b.WriteString(name)
			b.WriteByte(' ')
			b.WriteString(formatPromFloat(mv.Value))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// sanitizeMetricName maps an arbitrary registry name onto the Prometheus
// metric-name charset: invalid runes become '_', and a leading digit gets a
// '_' prefix.
func sanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if c >= '0' && c <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteByte(c)
			continue
		}
		if ok {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatLe renders a bucket upper bound; the overflow bucket is "+Inf".
func formatLe(le float64) string {
	if math.IsInf(le, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(le, 'g', -1, 64)
}

// formatPromFloat renders a sample value in the shortest round-trip form.
func formatPromFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
