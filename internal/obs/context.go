package obs

import "context"

// spanCtxKey keys the active span in a context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying s as the active span. A nil span
// returns ctx unchanged (no allocation), keeping the disabled path free.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the active span carried by ctx, or nil. The
// distributed executor uses it to parent remote job subtrees under the
// coordinator span that shipped the job.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}
