package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a concurrency-safe metrics registry. Metric handles are
// looked up once (under a mutex) and then updated lock-free with atomics,
// so the hot path never contends on the registry itself. A nil *Registry
// hands out nil handles whose methods no-op without allocating.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named fixed-bucket histogram, creating it on first
// use with the given upper bounds (ascending; an implicit +Inf bucket is
// appended). Later calls ignore the bounds argument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (no-op when nil).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 point-in-time value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v (no-op when nil).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetMax raises the gauge to v if v is larger.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: Observe is one atomic increment
// plus two atomic adds, with bucket search over the small immutable bounds
// slice. Bounds are upper bounds; values above the last bound land in the
// implicit +Inf bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one sample (no-op when nil).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Buckets returns (upper bound, cumulative count to that bound) pairs; the
// final pair's bound is +Inf.
func (h *Histogram) Buckets() []Bucket {
	if h == nil {
		return nil
	}
	out := make([]Bucket, len(h.counts))
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		out[i] = Bucket{Le: le, Count: cum}
	}
	return out
}

// Bucket is one cumulative histogram bucket.
type Bucket struct {
	Le    float64 // upper bound (inclusive), +Inf for the overflow bucket
	Count int64   // observations ≤ Le
}

// MetricValue is a point-in-time snapshot of one metric.
type MetricValue struct {
	Name    string
	Kind    string // "counter", "gauge", or "histogram"
	Value   float64
	Sum     float64  // histogram only
	Buckets []Bucket // histogram only
}

// Values snapshots every metric, sorted by name.
func (r *Registry) Values() []MetricValue {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MetricValue, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, MetricValue{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, MetricValue{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, h := range r.hists {
		out = append(out, MetricValue{
			Name: name, Kind: "histogram",
			Value: float64(h.Count()), Sum: h.Sum(), Buckets: h.Buckets(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// String renders the registry as one "name kind value" line per metric.
func (r *Registry) String() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	for _, mv := range r.Values() {
		switch mv.Kind {
		case "histogram":
			fmt.Fprintf(&b, "%-40s %-9s count=%.0f sum=%g\n", mv.Name, mv.Kind, mv.Value, mv.Sum)
		default:
			fmt.Fprintf(&b, "%-40s %-9s %g\n", mv.Name, mv.Kind, mv.Value)
		}
	}
	return b.String()
}
