package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// TestWritePrometheusGolden pins the text exposition byte-for-byte: metric
// order (sorted by raw name), name sanitisation, histogram bucket/sum/count
// rendering, and float formatting.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("server.requests").Add(42)
	r.Gauge("dist.worker.0.alive").Set(1)
	r.Gauge("process.goroutines").Set(12)
	r.Counter("9starts-with.digit").Add(1)
	h := r.Histogram("server.latency_ms", []float64{1, 5, 25})
	for _, v := range []float64{0.5, 3, 3, 17, 400} {
		h.Observe(v)
	}
	// The circuit-backend serving metrics (SERVING.md, /v1/whatif).
	r.Counter("circuit.cache.hits").Add(3)
	r.Counter("circuit.cache.misses").Add(1)
	r.Gauge("circuit.nodes").Set(512)
	he := r.Histogram("circuit.eval_ms", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.02, 0.4, 2.5} {
		he.Observe(v)
	}
	// The sharded-fleet serving metrics (SERVING.md, "Sharded fleet").
	r.Counter("shard.ring.moves").Add(5)
	r.Counter("server.batch.joined").Add(7)
	r.Counter("server.tenant.throttled").Add(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus_golden.txt")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("prometheus exposition drifted from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestWritePrometheusNil(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil registry wrote %q", buf.String())
	}
}

// TestValuesDeterministic registers metrics in scrambled order and requires
// Values() to come back sorted by name, identically across calls — the
// property both the Prometheus writer and -metrics output build on.
func TestValuesDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"z.last", "a.first", "m.mid", "b.second"} {
		r.Counter(n).Inc()
	}
	r.Gauge("k.gauge").Set(7)
	first := r.Values()
	if !sort.SliceIsSorted(first, func(i, j int) bool { return first[i].Name < first[j].Name }) {
		t.Fatalf("Values() not sorted: %+v", first)
	}
	second := r.Values()
	if len(first) != len(second) {
		t.Fatalf("Values() length changed: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].Name != second[i].Name || first[i].Value != second[i].Value {
			t.Fatalf("Values() not stable at %d: %+v vs %+v", i, first[i], second[i])
		}
	}
}

// TestTimelineDroppedCounter requires overflowed timeline points to surface
// in the trace registry as obs.timeline.dropped, so capped timelines are
// observable rather than silently lossy.
func TestTimelineDroppedCounter(t *testing.T) {
	tr := New("run")
	tl := tr.Timeline("spend", 4)
	for i := 0; i < 10; i++ {
		tl.Add(i, 1)
	}
	if got := tr.Metrics().Counter("obs.timeline.dropped").Value(); got != 6 {
		t.Errorf("obs.timeline.dropped = %d, want 6", got)
	}
}
