package obs

import "time"

// Cross-process span shipping. A worker process records its job under a
// local *Trace, exports the root span as a SpanExport, and the coordinator
// splices the subtree into its live trace — shifted by the per-connection
// clock offset and assigned a dedicated Chrome-trace process lane, so one
// -trace-out file shows every process side by side in Perfetto.

// SpanExport is the portable form of a span subtree: plain data, JSON-ready,
// with absolute UnixNano timestamps in the recording process's clock.
type SpanExport struct {
	Name string `json:"name"`
	// PID is the Chrome-trace process lane (1 = the exporting process's
	// local lane; rewritten by the splicing side).
	PID int `json:"pid,omitempty"`
	TID int `json:"tid,omitempty"`
	// StartNs/EndNs are absolute time.Time.UnixNano() readings of the
	// exporting trace's clock.
	StartNs  int64        `json:"start_unix_ns"`
	EndNs    int64        `json:"end_unix_ns"`
	Attrs    []AttrExport `json:"attrs,omitempty"`
	Children []SpanExport `json:"children,omitempty"`
}

// AttrExport is one exported attribute; exactly one of I/F/S is set.
type AttrExport struct {
	Key string   `json:"key"`
	I   *int64   `json:"i,omitempty"`
	F   *float64 `json:"f,omitempty"`
	S   *string  `json:"s,omitempty"`
}

// DurMs returns the exported span's wall time in milliseconds.
func (e SpanExport) DurMs() float64 {
	return float64(e.EndNs-e.StartNs) / float64(time.Millisecond)
}

// Export snapshots the span and its descendants. Open spans export as
// running up to the export instant. A nil span exports as the zero value.
func (s *Span) Export() SpanExport {
	if s == nil {
		return SpanExport{}
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return s.exportLocked()
}

func (s *Span) exportLocked() SpanExport {
	end := s.end
	if end.IsZero() {
		end = s.t.now()
	}
	pid := s.pid
	if pid == 0 {
		pid = 1
	}
	ex := SpanExport{
		Name:    s.name,
		PID:     pid,
		TID:     s.tid,
		StartNs: s.start.UnixNano(),
		EndNs:   end.UnixNano(),
	}
	if len(s.attrs) > 0 {
		ex.Attrs = make([]AttrExport, len(s.attrs))
		for i, a := range s.attrs {
			ea := AttrExport{Key: a.Key}
			switch a.kind {
			case attrInt:
				v := a.i
				ea.I = &v
			case attrFloat:
				v := a.f
				ea.F = &v
			default:
				v := a.s
				ea.S = &v
			}
			ex.Attrs[i] = ea
		}
	}
	if len(s.children) > 0 {
		ex.Children = make([]SpanExport, len(s.children))
		for i, c := range s.children {
			ex.Children[i] = c.exportLocked()
		}
	}
	return ex
}

// Splice attaches a remotely recorded span subtree as a child of s. Every
// timestamp in the subtree is shifted by shiftNs (add the negated
// per-connection clock offset to land remote readings on the local clock);
// every span lands on Chrome-trace process lane pid, labelled label in the
// exported trace's process metadata. Nil-safe: a disabled span drops the
// subtree.
func (s *Span) Splice(ex SpanExport, shiftNs int64, pid int, label string) {
	if s == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if pid > 1 && label != "" {
		if t.lanes == nil {
			t.lanes = map[int]string{}
		}
		if _, ok := t.lanes[pid]; !ok {
			t.lanes[pid] = label
		}
	}
	s.children = append(s.children, spliceLocked(t, ex, shiftNs, pid))
}

func spliceLocked(t *Trace, ex SpanExport, shiftNs int64, pid int) *Span {
	tid := ex.TID
	if tid == 0 {
		tid = 1
	}
	c := &Span{
		t:     t,
		name:  ex.Name,
		tid:   tid,
		pid:   pid,
		start: time.Unix(0, ex.StartNs+shiftNs),
		end:   time.Unix(0, ex.EndNs+shiftNs),
	}
	if len(ex.Attrs) > 0 {
		c.attrs = make([]Attr, 0, len(ex.Attrs))
		for _, a := range ex.Attrs {
			switch {
			case a.I != nil:
				c.attrs = append(c.attrs, Attr{Key: a.Key, kind: attrInt, i: *a.I})
			case a.F != nil:
				c.attrs = append(c.attrs, Attr{Key: a.Key, kind: attrFloat, f: *a.F})
			case a.S != nil:
				c.attrs = append(c.attrs, Attr{Key: a.Key, kind: attrStr, s: *a.S})
			}
		}
	}
	for _, ce := range ex.Children {
		c.children = append(c.children, spliceLocked(t, ce, shiftNs, pid))
	}
	return c
}
