package obs

import (
	"runtime/metrics"
	"sync"
	"time"
)

// Process runtime gauges, sampled from runtime/metrics by a background
// collector so /metrics answers scrape questions ("is the server leaking
// goroutines? how big is the heap? how much time has GC stolen?") without
// any per-request cost.

// runtimeSamples maps runtime/metrics names onto registry gauge names.
// Unsupported names (older toolchains) are skipped at first sample.
var runtimeSamples = []struct {
	src   string
	gauge string
}{
	{"/sched/goroutines:goroutines", "process.goroutines"},
	{"/memory/classes/heap/objects:bytes", "process.heap.objects_bytes"},
	{"/memory/classes/total:bytes", "process.memory.total_bytes"},
	{"/gc/cycles/total:gc-cycles", "process.gc.cycles"},
	{"/cpu/classes/gc/pause:cpu-seconds", "process.gc.pause_total_seconds"},
}

// StartRuntimeCollector samples process runtime gauges (goroutine count,
// heap bytes, GC cycle and pause totals) into the registry every interval,
// plus once immediately. It returns a stop function (idempotent). A nil
// registry returns a no-op stop.
func (r *Registry) StartRuntimeCollector(interval time.Duration) (stop func()) {
	if r == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	samples := make([]metrics.Sample, len(runtimeSamples))
	gauges := make([]*Gauge, len(runtimeSamples))
	for i, rs := range runtimeSamples {
		samples[i].Name = rs.src
		gauges[i] = r.Gauge(rs.gauge)
	}
	collect := func() {
		metrics.Read(samples)
		for i := range samples {
			switch samples[i].Value.Kind() {
			case metrics.KindUint64:
				gauges[i].Set(float64(samples[i].Value.Uint64()))
			case metrics.KindFloat64:
				gauges[i].Set(samples[i].Value.Float64())
			}
		}
	}
	collect()

	done := make(chan struct{})
	var once sync.Once
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				collect()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
