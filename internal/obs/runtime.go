package obs

import (
	"runtime/metrics"
	"sync"
	"time"
)

// Process runtime gauges, sampled from runtime/metrics by a background
// collector so /metrics answers scrape questions ("is the server leaking
// goroutines? how big is the heap? how much time has GC stolen?") without
// any per-request cost.

// runtimeSamples maps runtime/metrics names onto registry gauge names.
// Unsupported names (older toolchains) are skipped at first sample.
var runtimeSamples = []struct {
	src   string
	gauge string
}{
	{"/sched/goroutines:goroutines", "process.goroutines"},
	{"/memory/classes/heap/objects:bytes", "process.heap.objects_bytes"},
	{"/memory/classes/total:bytes", "process.memory.total_bytes"},
	{"/gc/cycles/total:gc-cycles", "process.gc.cycles"},
	{"/cpu/classes/gc/pause:cpu-seconds", "process.gc.pause_total_seconds"},
}

// SampleRuntime takes one immediate sample of the process runtime gauges.
// Scrape handlers call it so /metrics answers with the live process state
// rather than the last background tick — a leak check that scrapes twice in
// quick succession must see real movement, not a stale sample.
func (r *Registry) SampleRuntime() {
	if r == nil {
		return
	}
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, rs := range runtimeSamples {
		samples[i].Name = rs.src
	}
	metrics.Read(samples)
	for i := range samples {
		switch samples[i].Value.Kind() {
		case metrics.KindUint64:
			r.Gauge(runtimeSamples[i].gauge).Set(float64(samples[i].Value.Uint64()))
		case metrics.KindFloat64:
			r.Gauge(runtimeSamples[i].gauge).Set(samples[i].Value.Float64())
		}
	}
}

// StartRuntimeCollector samples process runtime gauges (goroutine count,
// heap bytes, GC cycle and pause totals) into the registry every interval,
// plus once immediately. It returns a stop function (idempotent). A nil
// registry returns a no-op stop.
func (r *Registry) StartRuntimeCollector(interval time.Duration) (stop func()) {
	if r == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	collect := r.SampleRuntime
	collect()

	done := make(chan struct{})
	var once sync.Once
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				collect()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
