package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// Chrome trace_event export: one "X" (complete) event per span and one "i"
// (instant) event per timeline point, in the JSON-object format understood
// by chrome://tracing and https://ui.perfetto.dev. Timestamps are
// microseconds relative to the root span's start, so traces are
// deterministic up to wall time regardless of when the run happened.

type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace serialises the trace as Chrome trace_event JSON.
// Open spans are exported as running up to the export instant.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`)
		return err
	}
	t.mu.Lock()
	f := chromeFile{DisplayTimeUnit: "ms"}
	f.TraceEvents = append(f.TraceEvents, chromeEvent{
		Name: "process_name", Phase: "M", PID: 1, TID: 1,
		Args: map[string]any{"name": t.root.name},
	})
	// Spliced remote subtrees live on their own process lanes; one metadata
	// event per lane names the worker process in Perfetto's lane header.
	lanePIDs := make([]int, 0, len(t.lanes))
	for pid := range t.lanes {
		lanePIDs = append(lanePIDs, pid)
	}
	sort.Ints(lanePIDs)
	for _, pid := range lanePIDs {
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "process_name", Phase: "M", PID: pid, TID: 1,
			Args: map[string]any{"name": t.lanes[pid]},
		})
	}
	t.root.chromeEvents(&f.TraceEvents)
	for _, name := range t.timelineNames() {
		tl := t.timelines[name]
		tl.mu.Lock()
		for _, p := range tl.points {
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: name, Cat: "timeline", Phase: "i", Scope: "t",
				TS: float64(p.At.Microseconds()), PID: 1, TID: 1,
				Args: map[string]any{"key": p.Key, "val": p.Val},
			})
		}
		tl.mu.Unlock()
	}
	t.mu.Unlock()

	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

func (s *Span) chromeEvents(out *[]chromeEvent) {
	ts := float64(s.start.Sub(s.t.root.start).Microseconds())
	dur := float64(s.durLocked().Microseconds())
	pid := s.pid
	if pid == 0 {
		pid = 1
	}
	ev := chromeEvent{
		Name: s.name, Cat: "pipeline", Phase: "X",
		TS: ts, Dur: &dur, PID: pid, TID: s.tid,
	}
	if len(s.attrs) > 0 {
		ev.Args = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			ev.Args[a.Key] = a.Value()
		}
	}
	*out = append(*out, ev)
	for _, c := range s.children {
		c.chromeEvents(out)
	}
}
