package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"enframe/internal/core"
	"enframe/internal/obs"
	"enframe/internal/prob"
)

// ResolveFunc turns a load message's spec payload into the core.Spec it
// denotes plus its artifact content hash. cmd/enframe injects the server's
// request resolver here, keeping dist free of a server dependency.
type ResolveFunc func(specJSON []byte) (core.Spec, string, error)

// WorkerConfig configures one worker process (or in-process worker, as the
// tests use).
type WorkerConfig struct {
	// Resolver materialises artifacts from shipped specs. Required.
	Resolver ResolveFunc
	// Slots is the worker's parallel job capacity, advertised in the
	// handshake. Default GOMAXPROCS.
	Slots int
	// MaxSessions bounds the session cache; the oldest session is evicted
	// beyond it. Default 8.
	MaxSessions int
	// Reg, when non-nil, receives dist.worker.* metrics. Its counters are
	// also piggybacked as deltas on result frames (v2+ connections), so
	// the coordinator's registry accumulates fleet-wide totals.
	Reg *obs.Registry
	// MaxProtocol caps the protocol version this worker negotiates (0 means
	// ProtocolVersion). Staged rollouts pin old revisions with it; tests use
	// it to exercise cross-version negotiation.
	MaxProtocol uint8
	// Now is the worker's clock (default time.Now). The handshake reports
	// its reading so the coordinator can map this worker's span timestamps
	// onto its own clock; injecting a skewed clock tests that mapping.
	Now func() time.Time
	// Fault, when non-nil, injects deterministic failures (tests only).
	Fault *FaultPlan
	// Logf, when non-nil, receives worker diagnostics.
	Logf func(format string, args ...any)
}

// Worker executes jobs shipped by coordinators. One worker serves any number
// of connections and sessions concurrently.
type Worker struct {
	cfg WorkerConfig
	ln  net.Listener

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	sessions map[string]*workerSession
	sessAge  []string // insertion order for eviction
	closed   atomic.Bool

	wg sync.WaitGroup

	mJobs     *obs.Counter
	mSessions *obs.Counter
	mBytesIn  *obs.Counter
	mBytesOut *obs.Counter
}

type workerSession struct {
	once sync.Once
	sess *prob.Session
	err  error
}

// NewWorker builds a worker; Listen binds it.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Resolver == nil {
		return nil, errors.New("dist: worker needs a Resolver")
	}
	if cfg.Slots <= 0 {
		cfg.Slots = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 8
	}
	if cfg.MaxProtocol == 0 || cfg.MaxProtocol > ProtocolVersion {
		cfg.MaxProtocol = ProtocolVersion
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	w := &Worker{
		cfg:      cfg,
		conns:    map[net.Conn]struct{}{},
		sessions: map[string]*workerSession{},
	}
	if cfg.Reg != nil {
		w.mJobs = cfg.Reg.Counter("dist.worker.jobs")
		w.mSessions = cfg.Reg.Counter("dist.worker.sessions")
		w.mBytesIn = cfg.Reg.Counter("dist.worker.bytes.recv")
		w.mBytesOut = cfg.Reg.Counter("dist.worker.bytes.sent")
	}
	return w, nil
}

// Listen binds the worker to addr (":0" picks an ephemeral port).
func (w *Worker) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: listen %s: %w", addr, err)
	}
	w.ln = ln
	return nil
}

// Addr returns the bound address (empty before Listen).
func (w *Worker) Addr() string {
	if w.ln == nil {
		return ""
	}
	return w.ln.Addr().String()
}

// Serve accepts coordinator connections until Close. It returns nil after a
// clean Close.
func (w *Worker) Serve() error {
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			if w.closed.Load() {
				return nil
			}
			return fmt.Errorf("dist: accept: %w", err)
		}
		w.mu.Lock()
		if w.closed.Load() {
			w.mu.Unlock()
			conn.Close()
			return nil
		}
		w.conns[conn] = struct{}{}
		w.mu.Unlock()
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			w.serveConn(conn)
		}()
	}
}

// Close kills the worker: the listener and every live connection drop
// immediately (in-flight jobs are abandoned), which is also how the fault
// plan's kill trigger simulates a crash.
func (w *Worker) Close() error {
	if !w.closed.CompareAndSwap(false, true) {
		return nil
	}
	var err error
	if w.ln != nil {
		err = w.ln.Close()
	}
	w.mu.Lock()
	for c := range w.conns {
		c.Close()
	}
	w.mu.Unlock()
	w.wg.Wait()
	return err
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// connWriter serialises frame writes from the per-job goroutines and owns
// the per-connection protocol version and metric-delta state.
type connWriter struct {
	mu      sync.Mutex
	conn    net.Conn
	out     *obs.Counter
	version uint8 // negotiated protocol revision (ProtocolVersion pre-handshake)
	// reg/lastVals drive counter-delta piggybacking on result frames: under
	// mu, each result ships (current − last shipped) per counter, so sends
	// interleaved across job goroutines never double-count.
	reg      *obs.Registry
	lastVals map[string]float64
}

func (cw *connWriter) send(t MsgType, payload []byte) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	cw.out.Add(int64(headerSize + len(payload)))
	return WriteFrameV(cw.conn, cw.version, t, payload)
}

// sendResult sends one result frame, attaching worker metric deltas on v2+
// connections. The delta snapshot happens under the write mutex so each
// counter increment is shipped exactly once.
func (cw *connWriter) sendResult(rm resultMsg) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.version >= 2 && cw.reg != nil {
		rm.Metrics = cw.metricDeltasLocked()
	}
	payload := encode(rm)
	cw.out.Add(int64(headerSize + len(payload)))
	return WriteFrameV(cw.conn, cw.version, MsgResult, payload)
}

// metricDeltasLocked snapshots the worker registry: counter deltas since the
// last result on this connection, gauges as absolutes.
func (cw *connWriter) metricDeltasLocked() []wireMetric {
	if cw.lastVals == nil {
		cw.lastVals = map[string]float64{}
	}
	var out []wireMetric
	for _, mv := range cw.reg.Values() {
		switch mv.Kind {
		case "counter":
			if d := mv.Value - cw.lastVals[mv.Name]; d != 0 {
				cw.lastVals[mv.Name] = mv.Value
				out = append(out, wireMetric{N: mv.Name, K: 0, V: d})
			}
		case "gauge":
			out = append(out, wireMetric{N: mv.Name, K: 1, V: mv.Value})
		}
	}
	return out
}

// serveConn runs one coordinator connection: handshake, then a read loop
// that answers pings inline and executes load/job requests on bounded
// goroutines.
func (w *Worker) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		w.mu.Lock()
		delete(w.conns, conn)
		w.mu.Unlock()
	}()
	cw := &connWriter{conn: conn, out: w.mBytesOut, version: w.cfg.MaxProtocol, reg: w.cfg.Reg}

	// Handshake: the coordinator speaks first. The connection negotiates
	// down to min(both sides' Version) as long as that clears both sides'
	// floors; otherwise MsgError is sent (best effort) before closing, so
	// the peer fails with a typed VersionError instead of a hang.
	t, payload, err := ReadFrame(conn)
	if err != nil {
		var ve *VersionError
		if errors.As(err, &ve) {
			_ = cw.send(MsgError, encode(errorMsg{Code: "version", Version: int(w.cfg.MaxProtocol),
				Msg: fmt.Sprintf("worker speaks v%d", w.cfg.MaxProtocol)}))
		}
		w.logf("handshake: %v", err)
		return
	}
	w.mBytesIn.Add(int64(headerSize + len(payload)))
	if t != MsgHello {
		w.logf("handshake: expected hello, got %v", t)
		return
	}
	var hello helloMsg
	if err := decode(payload, &hello); err != nil {
		w.logf("handshake: %v", err)
		return
	}
	negotiated := int(w.cfg.MaxProtocol)
	if hello.Version < negotiated {
		negotiated = hello.Version
	}
	coordMin := hello.MinVersion
	if coordMin == 0 {
		coordMin = hello.Version // v1 coordinators require their version exactly
	}
	if negotiated < MinProtocolVersion || negotiated < coordMin {
		_ = cw.send(MsgError, encode(errorMsg{Code: "version", Version: int(w.cfg.MaxProtocol),
			Msg: fmt.Sprintf("worker speaks v%d", w.cfg.MaxProtocol)}))
		return
	}
	cw.version = uint8(negotiated)
	ack := helloAckMsg{Version: negotiated, Slots: w.cfg.Slots}
	if negotiated >= 2 {
		ack.PID = os.Getpid()
		ack.ClockNs = w.cfg.Now().UnixNano()
	}
	if err := cw.send(MsgHelloAck, encode(ack)); err != nil {
		return
	}

	// jobSlots bounds concurrent job execution per connection. The defers
	// run cancel before Wait, so in-flight jobs see the cancellation as
	// soon as the read loop exits.
	jobSlots := make(chan struct{}, w.cfg.Slots)
	var jobs sync.WaitGroup
	defer jobs.Wait()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	for {
		t, payload, err := ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !w.closed.Load() {
				w.logf("read: %v", err)
			}
			return
		}
		w.mBytesIn.Add(int64(headerSize + len(payload)))
		switch t {
		case MsgPing:
			if err := cw.send(MsgPong, payload); err != nil {
				return
			}
		case MsgLoad:
			var lm loadMsg
			if err := decode(payload, &lm); err != nil {
				w.logf("load: %v", err)
				return
			}
			jobs.Add(1)
			go func() {
				defer jobs.Done()
				ack := w.loadSession(lm)
				_ = cw.send(MsgLoadAck, encode(ack))
			}()
		case MsgJob:
			var jm jobMsg
			if err := decode(payload, &jm); err != nil {
				w.logf("job: %v", err)
				return
			}
			jobs.Add(1)
			go func() {
				defer jobs.Done()
				// When the coordinator is tracing, this job runs under a
				// local tracer whose subtree ships back on the result
				// frame. The root opens before the slot wait so queueing
				// shows up as its own child span.
				var tr *obs.Trace
				if jm.Trace != nil && cw.version >= 2 {
					tr = obs.NewWithClock("job", w.cfg.Now)
					root := tr.Root()
					root.SetStr("trace_id", jm.Trace.ID)
					root.SetInt("parent_span", int64(jm.Trace.Span))
					root.SetInt("wire_id", int64(jm.ID))
					q := root.Start("queued")
					defer tr.Finish()
					select {
					case jobSlots <- struct{}{}:
						q.End()
						defer func() { <-jobSlots }()
					case <-ctx.Done():
						return
					}
				} else {
					select {
					case jobSlots <- struct{}{}:
						defer func() { <-jobSlots }()
					case <-ctx.Done():
						return
					}
				}
				w.runJob(ctx, cw, jm, tr)
			}()
		default:
			w.logf("unexpected frame %v", t)
			return
		}
	}
}

// loadSession resolves (or reuses) the session named by the load message.
func (w *Worker) loadSession(lm loadMsg) loadAckMsg {
	w.mu.Lock()
	ws, ok := w.sessions[lm.SessionKey]
	if !ok {
		ws = &workerSession{}
		w.sessions[lm.SessionKey] = ws
		w.sessAge = append(w.sessAge, lm.SessionKey)
		for len(w.sessAge) > w.cfg.MaxSessions {
			evict := w.sessAge[0]
			w.sessAge = w.sessAge[1:]
			delete(w.sessions, evict)
		}
	}
	w.mu.Unlock()

	ws.once.Do(func() {
		ws.err = func() error {
			spec, key, err := w.cfg.Resolver(lm.Spec)
			if err != nil {
				return fmt.Errorf("resolve spec: %w", err)
			}
			if key != lm.ArtifactKey {
				return fmt.Errorf("artifact key mismatch: resolved %s, coordinator sent %s", key, lm.ArtifactKey)
			}
			opts, err := lm.Opts.Options()
			if err != nil {
				return err
			}
			art, err := core.PrepareContext(context.Background(), spec)
			if err != nil {
				return fmt.Errorf("prepare: %w", err)
			}
			opts.Order = art.Order(opts.Heuristic)
			sess, err := prob.NewSession(art.Net, opts)
			if err != nil {
				return fmt.Errorf("session: %w", err)
			}
			ws.sess = sess
			w.mSessions.Add(1)
			w.logf("session %s loaded (artifact %.12s, %d targets)", lm.SessionKey, lm.ArtifactKey, sess.Targets())
			return nil
		}()
	})
	ack := loadAckMsg{SessionKey: lm.SessionKey}
	if ws.err != nil {
		ack.Err = ws.err.Error()
		return ack
	}
	ack.Targets = ws.sess.Targets()
	return ack
}

// runJob executes one job and sends its result, applying the fault plan.
// tr, when non-nil, is the job's local tracer; its span subtree ships on the
// result frame.
func (w *Worker) runJob(ctx context.Context, cw *connWriter, jm jobMsg, tr *obs.Trace) {
	w.mu.Lock()
	ws := w.sessions[jm.SessionKey]
	w.mu.Unlock()
	var rm resultMsg
	exec := tr.Root().Start("exec")
	if ws == nil || ws.sess == nil {
		rm = resultMsg{ID: jm.ID, Err: fmt.Sprintf("unknown session %s", jm.SessionKey)}
	} else {
		res, err := ws.sess.ExecJob(ctx, jm.job())
		if err != nil {
			if ctx.Err() != nil {
				return // connection is going away; no one is listening
			}
			rm = resultMsg{ID: jm.ID, Err: err.Error()}
		} else {
			rm = toResultMsg(res)
			exec.SetInt("branches", res.Stats.Branches)
			exec.SetInt("items", int64(len(res.Items)))
			exec.SetInt("forks", int64(len(res.Forks)))
		}
	}
	exec.End()
	w.mJobs.Add(1)
	if tr != nil {
		tr.Finish()
		ex := tr.Root().Export()
		rm.Span = &ex
	}

	action, delay := w.cfg.Fault.next()
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return
		}
	}
	switch action {
	case faultKill:
		w.logf("fault: killing worker after %d jobs", w.cfg.Fault.jobs.Load())
		if w.cfg.Fault.OnKill != nil {
			w.cfg.Fault.OnKill()
		}
		// Close from a fresh goroutine: Close waits for connection
		// handlers, and this job goroutine is one of them.
		go func() { _ = w.Close() }()
		return
	case faultDrop:
		w.logf("fault: dropping result of job %d", jm.ID)
		return
	}
	_ = cw.sendResult(rm)
}
