package dist

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzFrame hardens the wire decoder: arbitrary bytes must decode into
// either a valid frame or a typed error — never a panic, a hang, or an
// oversized allocation. Valid frames must re-encode byte-identically.
func FuzzFrame(f *testing.F) {
	// Seed corpus: every message type with representative payloads, plus
	// adversarial headers (checked into testdata/fuzz/FuzzFrame as well).
	var seed bytes.Buffer
	_ = WriteFrame(&seed, MsgHello, []byte(`{"version":1,"name":"coordinator"}`))
	f.Add(seed.Bytes())
	seed.Reset()
	_ = WriteFrame(&seed, MsgJob, []byte(`{"session_key":"s","id":7,"path":[{"v":3,"b":true}],"p":0.5}`))
	f.Add(seed.Bytes())
	seed.Reset()
	_ = WriteFrame(&seed, MsgResult, []byte(`{"id":7,"ok":true,"items":[{"k":0,"t":1,"m":0.25}]}`))
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{frameMagic[0]})
	f.Add([]byte{frameMagic[0], frameMagic[1], ProtocolVersion, byte(MsgPing), 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{frameMagic[0], frameMagic[1], 99, byte(MsgPing), 0, 0, 0, 0})
	f.Add([]byte("GET / HTTP/1.1\r\n\r\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		mt, payload, ver, err := ReadFrameV(r)
		if err != nil {
			if errors.Is(err, io.EOF) && len(data) > 0 {
				// io.EOF is reserved for a clean close before any byte.
				t.Fatalf("io.EOF leaked for non-empty partial frame (%d bytes)", len(data))
			}
			if err != io.EOF && !IsProtocolError(err) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if len(payload) > MaxFrameSize {
			t.Fatalf("decoded payload of %d bytes exceeds cap", len(payload))
		}
		var buf bytes.Buffer
		if werr := WriteFrameV(&buf, ver, mt, payload); werr != nil {
			t.Fatalf("re-encode of valid frame failed: %v", werr)
		}
		consumed := len(data) - r.Len()
		if !bytes.Equal(buf.Bytes(), data[:consumed]) {
			t.Fatalf("re-encode not byte-identical: %x vs %x", buf.Bytes(), data[:consumed])
		}
	})
}
