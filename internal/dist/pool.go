package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"enframe/internal/obs"
	"enframe/internal/prob"
)

// ErrNoWorkers is returned when every worker in a pool is dead. It wraps
// prob.ErrExecutorUnavailable so prob.MultiExecutor (and the serving layer's
// fallback policy) can classify it as a transport-level failure.
var ErrNoWorkers = fmt.Errorf("dist: no live workers: %w", prob.ErrExecutorUnavailable)

// PoolConfig configures a coordinator-side worker pool.
type PoolConfig struct {
	// Addrs lists worker TCP addresses. At least one must connect.
	Addrs []string
	// DialTimeout bounds the initial dial+handshake. Default 5s.
	DialTimeout time.Duration
	// HeartbeatEvery is the ping cadence per worker. Default 1s.
	HeartbeatEvery time.Duration
	// HeartbeatMiss is how many consecutive unanswered pings mark a worker
	// dead. Default 3.
	HeartbeatMiss int
	// JobTimeout bounds one shipped job end to end; on expiry the job is
	// retried (possibly on another worker). Zero disables. A dropped
	// result frame is recovered by this deadline.
	JobTimeout time.Duration
	// MaxRetries is the per-job cap on transport-level retries. Default 3.
	MaxRetries int
	// RetryBackoff is the base backoff between retries (doubled each
	// attempt). Default 50ms.
	RetryBackoff time.Duration
	// Reg, when non-nil, receives dist.* coordinator metrics.
	Reg *obs.Registry
	// Logf, when non-nil, receives pool diagnostics.
	Logf func(format string, args ...any)
}

// Pool holds live connections to a set of workers and hands out
// prob.JobExecutor sessions over them. Job shipping is fault tolerant:
// worker death fails in-flight waiters with a retryable error, and the
// executor reassigns the job to a surviving worker. Because workers execute
// jobs deterministically against session-local state, re-execution after a
// partial failure merges idempotently on the coordinator.
type Pool struct {
	cfg     PoolConfig
	workers []*poolWorker
	closed  atomic.Bool

	mShipped    *obs.Counter
	mRetries    *obs.Counter
	mReassigned *obs.Counter
	mOrphaned   *obs.Counter
	mBytesSent  *obs.Counter
	mBytesRecv  *obs.Counter
}

// poolWorker is one live worker connection plus its demultiplexing state.
type poolWorker struct {
	pool  *Pool
	index int
	addr  string
	conn  net.Conn
	slots int

	// proto is the negotiated protocol revision for this connection; trace
	// contexts and piggybacked telemetry flow only at v2+.
	proto uint8
	// remotePID is the worker's OS process ID (0 on v1 connections).
	remotePID int
	// clockOffNs estimates (worker clock − coordinator clock) from the
	// handshake: the worker's ack reading minus the midpoint of our
	// send/receive instants. Spliced worker spans shift by −clockOffNs to
	// land on the coordinator clock, so Perfetto lanes align.
	clockOffNs int64

	alive    atomic.Bool
	inflight atomic.Int64
	misses   atomic.Int64
	nextID   atomic.Uint64 // per-connection wire job IDs
	pingN    atomic.Uint64

	mu       sync.Mutex // guards writes, waiters, sessions
	waiters  map[uint64]chan poolReply
	sessions map[string]*loadState

	gAlive    *obs.Gauge
	gInflight *obs.Gauge
	mJobs     *obs.Counter

	done chan struct{} // closed when the reader exits
}

type poolReply struct {
	msg *resultMsg
	err error
}

// loadState is the per-worker singleflight for loading one session.
type loadState struct {
	once sync.Once
	done chan struct{}
	err  error
}

// finish resolves the singleflight exactly once.
func (ls *loadState) finish(err error) {
	ls.once.Do(func() {
		ls.err = err
		close(ls.done)
	})
}

// NewPool dials every address and performs the protocol handshake. It fails
// only if no worker connects; partial pools degrade gracefully. A version
// mismatch anywhere fails the whole pool with a typed *VersionError — mixed
// protocol revisions are a deployment error worth surfacing loudly.
func NewPool(ctx context.Context, cfg PoolConfig) (*Pool, error) {
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("dist: pool needs at least one worker address")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Second
	}
	if cfg.HeartbeatMiss <= 0 {
		cfg.HeartbeatMiss = 3
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	p := &Pool{cfg: cfg}
	if cfg.Reg != nil {
		p.mShipped = cfg.Reg.Counter("dist.jobs.shipped")
		p.mRetries = cfg.Reg.Counter("dist.jobs.retries")
		p.mReassigned = cfg.Reg.Counter("dist.jobs.reassigned")
		p.mOrphaned = cfg.Reg.Counter("dist.results.orphaned")
		p.mBytesSent = cfg.Reg.Counter("dist.bytes.sent")
		p.mBytesRecv = cfg.Reg.Counter("dist.bytes.recv")
	}

	var dialErrs []error
	for i, addr := range cfg.Addrs {
		w, err := p.dial(ctx, i, addr)
		if err != nil {
			var ve *VersionError
			if errors.As(err, &ve) {
				p.Close()
				return nil, err
			}
			dialErrs = append(dialErrs, err)
			p.logf("worker %s: %v", addr, err)
			continue
		}
		p.workers = append(p.workers, w)
	}
	if len(p.workers) == 0 {
		return nil, fmt.Errorf("dist: no workers reachable: %w: %w",
			prob.ErrExecutorUnavailable, errors.Join(dialErrs...))
	}
	for _, w := range p.workers {
		go w.readLoop()
		go w.heartbeat()
	}
	return p, nil
}

func (p *Pool) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

// dial connects and handshakes with one worker.
func (p *Pool) dial(ctx context.Context, index int, addr string) (*poolWorker, error) {
	dctx, cancel := context.WithTimeout(ctx, p.cfg.DialTimeout)
	defer cancel()
	var d net.Dialer
	conn, err := d.DialContext(dctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial: %w", err)
	}
	deadline := time.Now().Add(p.cfg.DialTimeout)
	conn.SetDeadline(deadline)
	t0 := time.Now()
	hello := helloMsg{
		Version:    ProtocolVersion,
		MinVersion: MinProtocolVersion,
		Name:       "coordinator",
		ClockNs:    t0.UnixNano(),
	}
	if err := WriteFrame(conn, MsgHello, encode(hello)); err != nil {
		conn.Close()
		return nil, err
	}
	t, payload, err := ReadFrame(conn)
	t1 := time.Now()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if t == MsgError {
		var em errorMsg
		_ = json.Unmarshal(payload, &em)
		conn.Close()
		if em.Code == "version" {
			return nil, &VersionError{Got: uint8(em.Version), Want: ProtocolVersion}
		}
		return nil, fmt.Errorf("dist: worker %s rejected handshake: %s", addr, em.Msg)
	}
	if t != MsgHelloAck {
		conn.Close()
		return nil, &FrameError{Op: "handshake", Err: fmt.Errorf("unexpected %v frame", t)}
	}
	var ack helloAckMsg
	if err := decode(payload, &ack); err != nil {
		conn.Close()
		return nil, err
	}
	if ack.Version < MinProtocolVersion || ack.Version > ProtocolVersion {
		conn.Close()
		return nil, &VersionError{Got: uint8(ack.Version), Want: ProtocolVersion}
	}
	conn.SetDeadline(time.Time{})
	w := &poolWorker{
		pool: p, index: index, addr: addr, conn: conn, slots: ack.Slots,
		proto:     uint8(ack.Version),
		remotePID: ack.PID,
		waiters:   map[uint64]chan poolReply{},
		sessions:  map[string]*loadState{},
		done:      make(chan struct{}),
	}
	if ack.ClockNs != 0 {
		// Estimate the worker clock against the midpoint of the handshake
		// round trip; the residual error is bounded by half the RTT.
		mid := t0.UnixNano() + (t1.UnixNano()-t0.UnixNano())/2
		w.clockOffNs = ack.ClockNs - mid
	}
	if ack.Slots <= 0 {
		w.slots = 1
	}
	w.alive.Store(true)
	if p.cfg.Reg != nil {
		w.gAlive = p.cfg.Reg.Gauge(fmt.Sprintf("dist.worker.%d.alive", index))
		w.gInflight = p.cfg.Reg.Gauge(fmt.Sprintf("dist.worker.%d.inflight", index))
		w.mJobs = p.cfg.Reg.Counter(fmt.Sprintf("dist.worker.%d.jobs_shipped", index))
	}
	w.gAlive.Set(1)
	w.gInflight.Set(0)
	p.logf("worker %d (%s) connected, %d slots, protocol v%d, clock offset %dns",
		index, addr, w.slots, w.proto, w.clockOffNs)
	return w, nil
}

// lanePID is the Chrome-trace process lane this worker's spliced spans land
// on: lane 1 is the coordinator, workers take 2, 3, … by pool index, so
// lanes stay distinct even when coordinator and workers share an OS pid
// (in-process tests).
func (w *poolWorker) lanePID() int { return w.index + 2 }

// laneLabel names the worker's Perfetto lane.
func (w *poolWorker) laneLabel() string {
	if w.remotePID > 0 {
		return fmt.Sprintf("worker %d (%s, pid %d)", w.index, w.addr, w.remotePID)
	}
	return fmt.Sprintf("worker %d (%s)", w.index, w.addr)
}

// AliveWorkers counts workers currently considered live.
func (p *Pool) AliveWorkers() int {
	n := 0
	for _, w := range p.workers {
		if w.alive.Load() {
			n++
		}
	}
	return n
}

// Close tears down every connection.
func (p *Pool) Close() error {
	if !p.closed.CompareAndSwap(false, true) {
		return nil
	}
	for _, w := range p.workers {
		w.markDead(errClosedPool)
	}
	return nil
}

// send writes one frame on the worker connection (serialised), stamped with
// the connection's negotiated protocol version.
func (w *poolWorker) send(t MsgType, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pool.mBytesSent.Add(int64(headerSize + len(payload)))
	if err := WriteFrameV(w.conn, w.proto, t, payload); err != nil {
		return fmt.Errorf("dist: worker %s: %w: %w", w.addr, prob.ErrExecutorUnavailable, err)
	}
	return nil
}

// readLoop demultiplexes incoming frames to waiters until the connection
// breaks, then marks the worker dead (failing all waiters retryably).
func (w *poolWorker) readLoop() {
	defer close(w.done)
	for {
		t, payload, err := ReadFrame(w.conn)
		if err != nil {
			w.markDead(err)
			return
		}
		w.pool.mBytesRecv.Add(int64(headerSize + len(payload)))
		switch t {
		case MsgPong:
			w.misses.Store(0)
		case MsgResult:
			var rm resultMsg
			if err := decode(payload, &rm); err != nil {
				w.markDead(err)
				return
			}
			w.applyRemoteMetrics(rm.Metrics)
			w.deliver(rm.ID, poolReply{msg: &rm})
		case MsgLoadAck:
			var am loadAckMsg
			if err := decode(payload, &am); err != nil {
				w.markDead(err)
				return
			}
			w.finishLoad(am)
		case MsgError:
			var em errorMsg
			_ = json.Unmarshal(payload, &em)
			w.markDead(fmt.Errorf("dist: worker %s error: %s (%s)", w.addr, em.Msg, em.Code))
			return
		default:
			w.markDead(&FrameError{Op: "demux", Err: fmt.Errorf("unexpected %v frame", t)})
			return
		}
	}
}

// applyRemoteMetrics folds piggybacked worker telemetry into the pool
// registry. Counter deltas sum fleet-wide under `worker.<name>`; gauge
// absolutes land per worker under `dist.worker.<i>.<name>`. Applied even for
// results that turn out orphaned — the work (and its cost) really happened.
func (w *poolWorker) applyRemoteMetrics(ms []wireMetric) {
	reg := w.pool.cfg.Reg
	if reg == nil || len(ms) == 0 {
		return
	}
	for _, m := range ms {
		switch m.K {
		case 0: // counter delta
			reg.Counter("worker." + m.N).Add(int64(m.V))
		case 1: // gauge absolute
			reg.Gauge(fmt.Sprintf("dist.worker.%d.%s", w.index, m.N)).Set(m.V)
		}
	}
}

// deliver routes one result to its waiter; results for jobs nobody waits on
// (late arrivals after a timeout-driven reassignment) are counted and
// dropped — the coordinator merge is duplicate tolerant by construction, but
// dropping here keeps even the transport exactly-once.
func (w *poolWorker) deliver(id uint64, r poolReply) {
	w.mu.Lock()
	ch, ok := w.waiters[id]
	delete(w.waiters, id)
	w.mu.Unlock()
	if !ok {
		w.pool.mOrphaned.Add(1)
		w.pool.logf("worker %s: orphaned result for wire job %d", w.addr, id)
		return
	}
	ch <- r // buffered
}

// heartbeat pings on a fixed cadence and kills the worker after too many
// consecutive unanswered pings.
func (w *poolWorker) heartbeat() {
	ticker := time.NewTicker(w.pool.cfg.HeartbeatEvery)
	defer ticker.Stop()
	for {
		select {
		case <-w.done:
			return
		case <-ticker.C:
			if !w.alive.Load() {
				return
			}
			if w.misses.Add(1) > int64(w.pool.cfg.HeartbeatMiss) {
				w.markDead(fmt.Errorf("dist: worker %s missed %d heartbeats", w.addr, w.pool.cfg.HeartbeatMiss))
				return
			}
			n := w.pingN.Add(1)
			if err := w.send(MsgPing, encode(pingMsg{Nonce: n})); err != nil {
				w.markDead(err)
				return
			}
		}
	}
}

// markDead transitions the worker to dead exactly once: the connection
// closes, every waiter fails with a retryable transport error, and pending
// session loads fail so future sessions re-resolve elsewhere.
func (w *poolWorker) markDead(cause error) {
	if !w.alive.CompareAndSwap(true, false) {
		return
	}
	// Zero both liveness gauges so /metrics never reports a dead worker as
	// alive or still owning in-flight jobs.
	w.gAlive.Set(0)
	w.gInflight.Set(0)
	if !errors.Is(cause, errClosedPool) {
		w.pool.logf("worker %d (%s) dead: %v", w.index, w.addr, cause)
	}
	w.conn.Close()
	err := fmt.Errorf("dist: worker %s died: %w: %w", w.addr, prob.ErrExecutorUnavailable, cause)
	w.mu.Lock()
	waiters := w.waiters
	w.waiters = map[uint64]chan poolReply{}
	sessions := w.sessions
	w.sessions = map[string]*loadState{}
	w.mu.Unlock()
	for _, ch := range waiters {
		ch <- poolReply{err: err}
	}
	for _, ls := range sessions {
		ls.finish(err)
	}
}

var errClosedPool = errors.New("pool closed")

// Session binds a compilation session across the pool and returns the
// executor that ships its jobs. specJSON must resolve (via each worker's
// ResolveFunc) to the artifact named by artifactKey. Sessions load lazily
// per worker on first dispatch, so workers that join a session late (after
// a reassignment) still resolve it.
func (p *Pool) Session(artifactKey string, specJSON []byte, wo WireOpts) *PoolExecutor {
	return &PoolExecutor{
		pool:       p,
		sessionKey: SessionKey(artifactKey, wo),
		load: loadMsg{
			SessionKey:  SessionKey(artifactKey, wo),
			ArtifactKey: artifactKey,
			Spec:        specJSON,
			Opts:        wo,
		},
	}
}

// PoolExecutor is prob.JobExecutor over a worker pool for one session.
type PoolExecutor struct {
	pool       *Pool
	sessionKey string
	load       loadMsg
}

// Slots sums the capacity of live workers.
func (e *PoolExecutor) Slots() int {
	n := 0
	for _, w := range e.pool.workers {
		if w.alive.Load() {
			n += w.slots
		}
	}
	return n
}

// pick selects the live worker with the most free capacity, excluding the
// previous attempt's worker when alternatives exist (reassignment).
func (e *PoolExecutor) pick(exclude *poolWorker) *poolWorker {
	var best *poolWorker
	var bestFree int64
	for _, w := range e.pool.workers {
		if !w.alive.Load() || w == exclude {
			continue
		}
		free := int64(w.slots) - w.inflight.Load()
		if best == nil || free > bestFree {
			best, bestFree = w, free
		}
	}
	if best == nil && exclude != nil && exclude.alive.Load() {
		return exclude // sole survivor: retry in place
	}
	return best
}

// ExecuteJob ships one job, retrying with backoff and reassignment across
// workers on transport failures. Execution errors reported by a worker are
// permanent; only transport-level failures (death, timeout, dropped result)
// retry. Re-execution is safe: jobs are deterministic and the coordinator
// merge consumes exactly one result per job.
func (e *PoolExecutor) ExecuteJob(ctx context.Context, j *prob.WireJob) (*prob.WireResult, error) {
	var last *poolWorker
	var lastErr error
	for attempt := 0; attempt <= e.pool.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			e.pool.mRetries.Add(1)
			backoff := e.pool.cfg.RetryBackoff << (attempt - 1)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		w := e.pick(last)
		if w == nil {
			return nil, ErrNoWorkers
		}
		if last != nil && w != last {
			e.pool.mReassigned.Add(1)
			e.pool.logf("job %d reassigned %s -> %s", j.ID, last.addr, w.addr)
		}
		res, err := e.runOn(ctx, w, j)
		if err == nil {
			return res, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !errors.Is(err, prob.ErrExecutorUnavailable) {
			return nil, err // permanent: the job itself failed
		}
		last, lastErr = w, err
	}
	return nil, fmt.Errorf("dist: job %d failed after %d attempts: %w", j.ID, e.pool.cfg.MaxRetries+1, lastErr)
}

// runOn executes one attempt on one worker.
func (e *PoolExecutor) runOn(ctx context.Context, w *poolWorker, j *prob.WireJob) (*prob.WireResult, error) {
	if err := e.ensureLoaded(ctx, w); err != nil {
		return nil, err
	}

	wireID := w.nextID.Add(1)
	ch := make(chan poolReply, 1)
	w.mu.Lock()
	if !w.alive.Load() {
		w.mu.Unlock()
		return nil, fmt.Errorf("dist: worker %s died: %w", w.addr, prob.ErrExecutorUnavailable)
	}
	w.waiters[wireID] = ch
	w.mu.Unlock()
	w.inflight.Add(1)
	w.gInflight.Set(float64(w.inflight.Load()))
	defer func() {
		w.inflight.Add(-1)
		w.gInflight.Set(float64(w.inflight.Load()))
	}()

	// Wire IDs are per-connection; the worker echoes ours back, and the
	// result is restored to the coordinator's job ID on receipt.
	jm := toJobMsg(e.sessionKey, j)
	jm.ID = wireID

	// When the caller is tracing and the connection speaks v2+, open a local
	// "ship" span covering the attempt's wire round trip and propagate its
	// trace context on the job frame; the worker ships its span subtree back
	// on the result, which splices under this span on the worker's lane.
	var ship *obs.Span
	if parent := obs.SpanFromContext(ctx); parent != nil && w.proto >= 2 {
		ship = parent.Start("ship")
		ship.SetInt("job", int64(j.ID))
		ship.SetInt("wire_id", int64(wireID))
		ship.SetInt("worker", int64(w.index))
		ship.SetStr("addr", w.addr)
		jm.Trace = &wireTrace{ID: ship.TraceID(), Span: ship.SpanID()}
		defer ship.End()
	}

	if err := w.send(MsgJob, encode(jm)); err != nil {
		w.forget(wireID)
		return nil, err
	}
	e.pool.mShipped.Add(1)
	w.mJobs.Add(1)

	var timeoutCh <-chan time.Time
	if e.pool.cfg.JobTimeout > 0 {
		timer := time.NewTimer(e.pool.cfg.JobTimeout)
		defer timer.Stop()
		timeoutCh = timer.C
	}
	select {
	case r := <-ch:
		if r.err != nil {
			return nil, r.err
		}
		if ship != nil && r.msg.Span != nil {
			// Map worker timestamps onto the coordinator clock and land the
			// subtree on this worker's dedicated process lane.
			ship.Splice(*r.msg.Span, -w.clockOffNs, w.lanePID(), w.laneLabel())
		}
		if !r.msg.OK {
			return nil, fmt.Errorf("dist: worker %s: job failed: %s", w.addr, r.msg.Err)
		}
		res, err := r.msg.result()
		if err != nil {
			return nil, err
		}
		res.ID = j.ID
		return res, nil
	case <-timeoutCh:
		w.forget(wireID)
		return nil, fmt.Errorf("dist: worker %s: job deadline exceeded: %w", w.addr, prob.ErrExecutorUnavailable)
	case <-ctx.Done():
		w.forget(wireID)
		return nil, ctx.Err()
	}
}

// forget abandons a waiter; a result arriving later is counted as orphaned.
func (w *poolWorker) forget(id uint64) {
	w.mu.Lock()
	delete(w.waiters, id)
	w.mu.Unlock()
}

// ensureLoaded makes sure the worker holds this session, singleflighting the
// load per (worker, session).
func (e *PoolExecutor) ensureLoaded(ctx context.Context, w *poolWorker) error {
	w.mu.Lock()
	ls, ok := w.sessions[e.sessionKey]
	if !ok {
		ls = &loadState{done: make(chan struct{})}
		w.sessions[e.sessionKey] = ls
	}
	w.mu.Unlock()
	if !ok {
		if err := w.send(MsgLoad, encode(e.load)); err != nil {
			w.mu.Lock()
			delete(w.sessions, e.sessionKey)
			w.mu.Unlock()
			ls.finish(err)
			return err
		}
	}
	select {
	case <-ls.done:
		return ls.err
	case <-w.done:
		return fmt.Errorf("dist: worker %s died during load: %w", w.addr, prob.ErrExecutorUnavailable)
	case <-ctx.Done():
		return ctx.Err()
	}
}

// finishLoad resolves the singleflight for one load ack.
func (w *poolWorker) finishLoad(am loadAckMsg) {
	w.mu.Lock()
	ls := w.sessions[am.SessionKey]
	w.mu.Unlock()
	if ls == nil {
		return
	}
	if am.Err != "" {
		// A load failure is permanent for this session: the spec does not
		// resolve. Do not wrap as retryable.
		ls.finish(fmt.Errorf("dist: worker %s: load session: %s", w.addr, am.Err))
		return
	}
	ls.finish(nil)
}
