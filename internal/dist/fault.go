package dist

import (
	"sync/atomic"
	"time"
)

// FaultPlan injects deterministic failures into a worker, counted over the
// jobs the worker completes (1-based). Race-enabled tests and the worker
// smoke harness use it to exercise reassignment, duplicate-tolerant merging,
// and budget reclamation without relying on timing.
type FaultPlan struct {
	// KillAfterJobs > 0 kills the worker (closes its listener and every
	// connection) immediately after it finishes that many jobs — the
	// mid-stream death scenario: the result of the killing job is never
	// sent.
	KillAfterJobs int64
	// DropEveryNth > 0 swallows the result of every Nth completed job while
	// keeping the connection alive; the coordinator's job deadline must
	// recover it.
	DropEveryNth int64
	// DelayEveryNth > 0 sleeps Delay before sending every Nth result.
	DelayEveryNth int64
	Delay         time.Duration
	// OnKill, when set, runs once as the kill trigger fires (before the
	// connections drop) — tests hook assertions here.
	OnKill func()

	jobs   atomic.Int64
	killed atomic.Bool
}

// faultAction is the plan's verdict for one completed job.
type faultAction uint8

const (
	faultNone faultAction = iota
	faultDrop
	faultKill
)

// next advances the completed-job counter and returns the action plus any
// send delay. Nil plans act as no-ops.
func (f *FaultPlan) next() (faultAction, time.Duration) {
	if f == nil {
		return faultNone, 0
	}
	n := f.jobs.Add(1)
	var delay time.Duration
	if f.DelayEveryNth > 0 && n%f.DelayEveryNth == 0 {
		delay = f.Delay
	}
	if f.KillAfterJobs > 0 && n >= f.KillAfterJobs && f.killed.CompareAndSwap(false, true) {
		return faultKill, delay
	}
	if f.DropEveryNth > 0 && n%f.DropEveryNth == 0 {
		return faultDrop, delay
	}
	return faultNone, delay
}
