// Package dist is ENFrame's multi-process compilation plane: worker
// processes (enframe worker) hold caches of compiled event networks and
// execute depth-d decision-tree jobs shipped over TCP by a coordinator pool
// that implements prob.JobExecutor. The plane is stdlib-only: length-
// prefixed binary framing with protocol versioning, JSON message payloads,
// per-worker heartbeats, retry-with-backoff and job reassignment on worker
// death, and deterministic fault injection for race-enabled tests. See
// DESIGN.md "Distributed plane".
package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ProtocolVersion is the highest wire protocol revision this build speaks;
// MinProtocolVersion is the lowest it still accepts. The hello/ack handshake
// negotiates the connection down to min(coordinator, worker), so a v2
// coordinator interoperates with v1 workers (and vice versa) by simply not
// using v2 features — trace-context propagation and piggybacked telemetry —
// on that connection. Frames outside [MinProtocolVersion, ProtocolVersion]
// fail with a VersionError.
//
//	v1: base plane (PR 5).
//	v2: hello carries min_version + clock_ns; hello_ack carries pid +
//	    clock_ns (per-connection clock-offset handshake); job frames may
//	    carry a trace context; result frames may piggyback the worker-side
//	    span subtree and metric deltas.
const (
	ProtocolVersion    = 2
	MinProtocolVersion = 1
)

// MaxFrameSize bounds one frame's payload; larger lengths are rejected with
// ErrTooLarge before any allocation of that size.
const MaxFrameSize = 64 << 20

// frameMagic guards against cross-protocol traffic (e.g. HTTP) reaching a
// worker port.
var frameMagic = [2]byte{0xE5, 0x46} // "åF" — Event-network Frame

// headerSize is magic(2) + version(1) + type(1) + length(4).
const headerSize = 8

// MsgType discriminates frame payloads.
type MsgType uint8

const (
	// MsgHello/MsgHelloAck is the handshake; the coordinator speaks first.
	MsgHello MsgType = iota + 1
	MsgHelloAck
	// MsgLoad asks the worker to materialise a compilation session
	// (artifact + fixed compile options); MsgLoadAck confirms or fails it.
	MsgLoad
	MsgLoadAck
	// MsgJob ships one decision-tree job; MsgResult returns its stream.
	MsgJob
	MsgResult
	// MsgPing/MsgPong carry liveness nonces.
	MsgPing
	MsgPong
	// MsgError reports a protocol-level failure (e.g. version mismatch)
	// before the sender closes the connection.
	MsgError
)

func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgHelloAck:
		return "hello_ack"
	case MsgLoad:
		return "load"
	case MsgLoadAck:
		return "load_ack"
	case MsgJob:
		return "job"
	case MsgResult:
		return "result"
	case MsgPing:
		return "ping"
	case MsgPong:
		return "pong"
	case MsgError:
		return "error"
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Typed frame-decoding failures. The serving layer maps any of these to
// HTTP 502 — a broken worker plane is an upstream failure, never a hang or
// panic.
var (
	// ErrTruncated marks a frame cut short mid-header or mid-payload.
	ErrTruncated = errors.New("dist: truncated frame")
	// ErrTooLarge marks a length field beyond MaxFrameSize.
	ErrTooLarge = errors.New("dist: frame exceeds size limit")
	// ErrBadMagic marks traffic that is not ENFrame wire protocol.
	ErrBadMagic = errors.New("dist: bad frame magic")
	// ErrBadType marks an unknown message type byte.
	ErrBadType = errors.New("dist: unknown frame type")
)

// VersionError reports a protocol-version mismatch between peers.
type VersionError struct {
	Got, Want uint8
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("dist: protocol version mismatch: peer speaks v%d, want v%d", e.Got, e.Want)
}

// FrameError wraps a frame-level failure with the operation that hit it.
type FrameError struct {
	Op  string
	Err error
}

func (e *FrameError) Error() string { return fmt.Sprintf("dist: %s: %v", e.Op, e.Err) }
func (e *FrameError) Unwrap() error { return e.Err }

// WriteFrame emits one frame at the current ProtocolVersion: magic, version,
// type, big-endian payload length, payload.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	return WriteFrameV(w, ProtocolVersion, t, payload)
}

// WriteFrameV emits one frame stamped with an explicit protocol version —
// how a connection that negotiated down to an older revision keeps every
// frame it sends inside that revision.
func WriteFrameV(w io.Writer, version uint8, t MsgType, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return &FrameError{Op: "write", Err: ErrTooLarge}
	}
	var hdr [headerSize]byte
	hdr[0], hdr[1] = frameMagic[0], frameMagic[1]
	hdr[2] = version
	hdr[3] = byte(t)
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return &FrameError{Op: "write header", Err: err}
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return &FrameError{Op: "write payload", Err: err}
		}
	}
	return nil
}

// ReadFrame decodes one frame, discarding which in-range protocol version
// stamped it. See ReadFrameV.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	t, payload, _, err := ReadFrameV(r)
	return t, payload, err
}

// ReadFrameV decodes one frame and returns the protocol version that stamped
// it. A clean EOF at a frame boundary returns io.EOF; EOF mid-frame returns
// ErrTruncated (wrapped in a FrameError); a version byte outside
// [MinProtocolVersion, ProtocolVersion] returns a VersionError. The decoder
// never panics and never allocates more than the bytes actually present: a
// lying length field fails with ErrTruncated after reading at most the
// available input, in bounded chunks.
func ReadFrameV(r io.Reader) (MsgType, []byte, uint8, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, 0, io.EOF // clean close between frames
		}
		return 0, nil, 0, &FrameError{Op: "read header", Err: err}
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return 0, nil, 0, &FrameError{Op: "read header", Err: truncated(err)}
	}
	if hdr[0] != frameMagic[0] || hdr[1] != frameMagic[1] {
		return 0, nil, 0, &FrameError{Op: "read header", Err: ErrBadMagic}
	}
	if hdr[2] < MinProtocolVersion || hdr[2] > ProtocolVersion {
		return 0, nil, 0, &VersionError{Got: hdr[2], Want: ProtocolVersion}
	}
	t := MsgType(hdr[3])
	if t < MsgHello || t > MsgError {
		return 0, nil, 0, &FrameError{Op: "read header", Err: ErrBadType}
	}
	n := binary.BigEndian.Uint32(hdr[4:])
	if n > MaxFrameSize {
		return 0, nil, 0, &FrameError{Op: "read payload", Err: ErrTooLarge}
	}
	payload, err := readPayload(r, int(n))
	if err != nil {
		return 0, nil, 0, &FrameError{Op: "read payload", Err: truncated(err)}
	}
	return t, payload, hdr[2], nil
}

// readPayload reads exactly n bytes, growing in bounded chunks so a lying
// length field cannot force a large up-front allocation.
func readPayload(r io.Reader, n int) ([]byte, error) {
	const chunk = 1 << 20
	if n == 0 {
		return nil, nil
	}
	if n <= chunk {
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	buf := make([]byte, 0, chunk)
	for len(buf) < n {
		step := n - len(buf)
		if step > chunk {
			step = chunk
		}
		off := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, buf[off:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// truncated normalises the io errors of a short read to ErrTruncated.
func truncated(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return err
}

// IsProtocolError reports whether err is one of the plane's typed wire
// failures — the class the serving layer surfaces as 502 Bad Gateway.
func IsProtocolError(err error) bool {
	var ve *VersionError
	var fe *FrameError
	return errors.As(err, &ve) || errors.As(err, &fe)
}
