package dist_test

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"enframe/internal/core"
	"enframe/internal/dist"
	"enframe/internal/obs"
	"enframe/internal/prob"
	"enframe/internal/server"
)

// testResolver is the production wiring in miniature: the shipped spec is a
// server.RunRequest, resolved through the same BuildSpec that keys the
// server's artifact cache — so the worker-side content hash is the server's.
func testResolver(specJSON []byte) (core.Spec, string, error) {
	var req server.RunRequest
	if err := json.Unmarshal(specJSON, &req); err != nil {
		return core.Spec{}, "", err
	}
	return server.BuildSpec(req)
}

// genRequest is a small seeded generator workload (tiny networks, 1 or 2
// jobs) — enough for transport-level checks.
func genRequest(seed int64) server.RunRequest {
	return server.RunRequest{
		Data:     server.DataSpec{Kind: "gen", Seed: seed},
		Strategy: "exact",
	}
}

// sensorRequest is the fault-test workload: the kmedoids sensor pipeline
// over n points produces ~20 depth-1 jobs, so fault plans reliably fire
// mid-run.
func sensorRequest(n int) server.RunRequest {
	return server.RunRequest{
		Data:   server.DataSpec{Kind: "sensor", N: n},
		Params: server.ParamSpec{K: 2, Iter: 2, R: 2},
	}
}

func startWorker(t *testing.T, fault *dist.FaultPlan) *dist.Worker {
	t.Helper()
	w, err := dist.NewWorker(dist.WorkerConfig{
		Resolver: testResolver,
		Slots:    2,
		Fault:    fault,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := w.Serve(); err != nil {
			t.Logf("worker serve: %v", err)
		}
	}()
	t.Cleanup(func() { _ = w.Close() })
	return w
}

func newPool(t *testing.T, cfg dist.PoolConfig) *dist.Pool {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	p, err := dist.NewPool(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p
}

// runOverPool compiles one workload through the pool and returns the
// result plus the sequential reference computed in-process.
func runOverPool(t *testing.T, p *dist.Pool, req server.RunRequest, wo dist.WireOpts) (*prob.Result, *prob.Result) {
	t.Helper()
	specJSON, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	spec, key, err := server.BuildSpec(req)
	if err != nil {
		t.Fatal(err)
	}
	art, err := core.PrepareContext(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := wo.Options()
	if err != nil {
		t.Fatal(err)
	}
	opts.Order = art.Order(opts.Heuristic)
	seq, err := prob.Compile(art.Net, opts)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	exec := p.Session(key, specJSON, wo)
	got, err := prob.CompileExec(context.Background(), art.Net, opts, exec)
	if err != nil {
		t.Fatalf("CompileExec over pool: %v", err)
	}
	return got, seq
}

// runOverPoolObs is runOverPool with tracing wired through the compile, so
// trace tests see the distribute/job/ship span hierarchy plus any spliced
// remote subtrees.
func runOverPoolObs(t *testing.T, p *dist.Pool, req server.RunRequest, wo dist.WireOpts, tr *obs.Trace) *prob.Result {
	t.Helper()
	specJSON, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	spec, key, err := server.BuildSpec(req)
	if err != nil {
		t.Fatal(err)
	}
	art, err := core.PrepareContext(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := wo.Options()
	if err != nil {
		t.Fatal(err)
	}
	opts.Order = art.Order(opts.Heuristic)
	opts.Obs = tr
	exec := p.Session(key, specJSON, wo)
	got, err := prob.CompileExec(context.Background(), art.Net, opts, exec)
	if err != nil {
		t.Fatalf("CompileExec over pool: %v", err)
	}
	return got
}

func assertBitIdentical(t *testing.T, got, want *prob.Result) {
	t.Helper()
	if len(got.Targets) != len(want.Targets) {
		t.Fatalf("target count %d vs %d", len(got.Targets), len(want.Targets))
	}
	for i, tb := range got.Targets {
		w := want.Targets[i]
		if math.Float64bits(tb.Lower) != math.Float64bits(w.Lower) ||
			math.Float64bits(tb.Upper) != math.Float64bits(w.Upper) {
			t.Fatalf("target %s: distributed [%x, %x] vs sequential [%x, %x]",
				tb.Name,
				math.Float64bits(tb.Lower), math.Float64bits(tb.Upper),
				math.Float64bits(w.Lower), math.Float64bits(w.Upper))
		}
	}
}

// TestEndToEndByteIdentity ships jobs over real TCP to two worker processes'
// worth of state and asserts the merged marginals are bit-identical to the
// sequential compiler — the plane's core contract.
func TestEndToEndByteIdentity(t *testing.T) {
	w1, w2 := startWorker(t, nil), startWorker(t, nil)
	p := newPool(t, dist.PoolConfig{Addrs: []string{w1.Addr(), w2.Addr()}})
	wo := dist.WireOpts{Strategy: "exact", JobDepth: 2, Heuristic: "fanout"}
	for _, seed := range []int64{1, 2, 3, 5} {
		got, seq := runOverPool(t, p, genRequest(seed), wo)
		assertBitIdentical(t, got, seq)
	}
	// The sensor pipeline exercises a real clustering network (many jobs).
	wo.JobDepth = 1
	got, seq := runOverPool(t, p, sensorRequest(12), wo)
	assertBitIdentical(t, got, seq)
}

// TestWorkerKillMidRun kills the first worker after two completed jobs (the
// second result is never sent and every connection drops). The run must
// finish bit-identically on the survivor, with at least one reassignment.
func TestWorkerKillMidRun(t *testing.T) {
	killed := make(chan struct{})
	w1 := startWorker(t, &dist.FaultPlan{KillAfterJobs: 2, OnKill: func() { close(killed) }})
	w2 := startWorker(t, nil)
	reg := newTestRegistry(t)
	p := newPool(t, dist.PoolConfig{
		Addrs:      []string{w1.Addr(), w2.Addr()},
		MaxRetries: 6,
		Reg:        reg,
	})
	wo := dist.WireOpts{Strategy: "exact", JobDepth: 1, Heuristic: "fanout"}
	got, seq := runOverPool(t, p, sensorRequest(12), wo)
	assertBitIdentical(t, got, seq)
	select {
	case <-killed:
	default:
		t.Fatal("fault plan never fired: the workload produced too few jobs to exercise the kill")
	}
	if p.AliveWorkers() != 1 {
		t.Fatalf("AliveWorkers = %d, want 1 after kill", p.AliveWorkers())
	}
	if v := reg.Counter("dist.jobs.reassigned").Value(); v == 0 {
		t.Fatal("no reassignment recorded after worker death")
	}
}

// TestWorkerKillBudgetReclaimed is the ε-contract half of the fault suite:
// a budgeted (hybrid) run loses a worker mid-stream, the coordinator
// re-ships the lost jobs with their original budgets, and the final bounds
// still satisfy Upper−Lower ≤ 2ε on every target.
func TestWorkerKillBudgetReclaimed(t *testing.T) {
	w1 := startWorker(t, &dist.FaultPlan{KillAfterJobs: 1})
	w2 := startWorker(t, nil)
	p := newPool(t, dist.PoolConfig{Addrs: []string{w1.Addr(), w2.Addr()}, MaxRetries: 6})
	const eps = 0.05
	wo := dist.WireOpts{Strategy: "hybrid", Epsilon: eps, JobDepth: 1, Heuristic: "fanout"}
	req := sensorRequest(12)
	specJSON, _ := json.Marshal(req)
	spec, key, err := server.BuildSpec(req)
	if err != nil {
		t.Fatal(err)
	}
	art, err := core.PrepareContext(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := wo.Options()
	if err != nil {
		t.Fatal(err)
	}
	opts.Order = art.Order(opts.Heuristic)
	res, err := prob.CompileExec(context.Background(), art.Net, opts, p.Session(key, specJSON, wo))
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range res.Targets {
		if tb.Gap() > 2*eps+1e-9 {
			t.Fatalf("target %s: gap %g > 2ε after worker loss — budget leaked", tb.Name, tb.Gap())
		}
		if tb.Lower < -1e-12 || tb.Upper > 1+1e-12 || tb.Lower > tb.Upper {
			t.Fatalf("target %s: bounds [%g, %g] invalid", tb.Name, tb.Lower, tb.Upper)
		}
	}
}

// TestDroppedResultRecovery drops every Nth result frame while keeping the
// connection alive; the pool's job deadline must recover each loss by
// re-shipping, and re-execution must not perturb a bit.
func TestDroppedResultRecovery(t *testing.T) {
	w := startWorker(t, &dist.FaultPlan{DropEveryNth: 5})
	reg := newTestRegistry(t)
	p := newPool(t, dist.PoolConfig{
		Addrs:      []string{w.Addr()},
		JobTimeout: 250 * time.Millisecond,
		MaxRetries: 8,
		Reg:        reg,
	})
	wo := dist.WireOpts{Strategy: "exact", JobDepth: 1, Heuristic: "fanout"}
	got, seq := runOverPool(t, p, sensorRequest(12), wo)
	assertBitIdentical(t, got, seq)
	if reg.Counter("dist.jobs.retries").Value() == 0 {
		t.Fatal("no retries recorded despite dropped results")
	}
}

// TestAllWorkersDead kills every worker and asserts the compilation fails
// with a typed, retry-classifiable error instead of hanging.
func TestAllWorkersDead(t *testing.T) {
	w := startWorker(t, &dist.FaultPlan{KillAfterJobs: 1})
	p := newPool(t, dist.PoolConfig{Addrs: []string{w.Addr()}, MaxRetries: 2})
	wo := dist.WireOpts{Strategy: "exact", JobDepth: 1, Heuristic: "fanout"}
	req := sensorRequest(12)
	specJSON, _ := json.Marshal(req)
	spec, key, err := server.BuildSpec(req)
	if err != nil {
		t.Fatal(err)
	}
	art, err := core.PrepareContext(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	opts, _ := wo.Options()
	opts.Order = art.Order(opts.Heuristic)
	done := make(chan error, 1)
	go func() {
		_, err := prob.CompileExec(context.Background(), art.Net, opts, p.Session(key, specJSON, wo))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("compilation succeeded with every worker dead")
		}
		if !errors.Is(err, prob.ErrExecutorUnavailable) {
			t.Fatalf("want error wrapping prob.ErrExecutorUnavailable, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("compilation hung after total worker loss")
	}
}

// TestVersionMismatchPoolSide connects the pool to a fake worker speaking a
// future protocol revision; NewPool must fail with a typed *VersionError.
func TestVersionMismatchPoolSide(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		_, _, _ = dist.ReadFrame(c) // consume hello
		// Reply with a hand-rolled v2 header.
		_, _ = c.Write([]byte{0xE5, 0x46, dist.ProtocolVersion + 1, byte(dist.MsgHelloAck), 0, 0, 0, 0})
		time.Sleep(200 * time.Millisecond)
	}()
	_, err = dist.NewPool(context.Background(), dist.PoolConfig{Addrs: []string{ln.Addr().String()}})
	var ve *dist.VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("want *VersionError, got %v", err)
	}
	if !dist.IsProtocolError(err) {
		t.Fatal("version mismatch must classify as protocol error for the 502 path")
	}
}

// TestVersionMismatchWorkerSide sends a wrong-version hello to a real
// worker; the worker must answer with a typed error frame, not hang.
func TestVersionMismatchWorkerSide(t *testing.T) {
	w := startWorker(t, nil)
	c, err := net.DialTimeout("tcp", w.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Write([]byte{0xE5, 0x46, 99, byte(dist.MsgHello), 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	mt, payload, err := dist.ReadFrame(c)
	if err != nil {
		t.Fatalf("worker sent no error frame: %v", err)
	}
	if mt != dist.MsgError {
		t.Fatalf("want MsgError, got %v", mt)
	}
	var em struct {
		Code    string `json:"code"`
		Version int    `json:"version"`
	}
	if err := json.Unmarshal(payload, &em); err != nil {
		t.Fatal(err)
	}
	if em.Code != "version" || em.Version != dist.ProtocolVersion {
		t.Fatalf("error frame %+v, want code=version version=%d", em, dist.ProtocolVersion)
	}
}

// TestTruncatedFrameWorkerSide wedges nothing: a connection that dies
// mid-frame is dropped, and the worker keeps serving fresh connections.
func TestTruncatedFrameWorkerSide(t *testing.T) {
	w := startWorker(t, nil)
	c, err := net.DialTimeout("tcp", w.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = c.Write([]byte{0xE5, 0x46, dist.ProtocolVersion}) // header cut short
	_ = c.Close()

	// The worker must still answer a well-formed handshake afterwards.
	p := newPool(t, dist.PoolConfig{Addrs: []string{w.Addr()}})
	if p.AliveWorkers() != 1 {
		t.Fatal("worker wedged by a truncated frame")
	}
}

// TestGoroutineCleanup runs a full distributed compile, tears everything
// down, and asserts the goroutine count returns to baseline — no leaked
// readers, heartbeats, or job handlers.
func TestGoroutineCleanup(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		w1, w2 := startWorker(t, nil), startWorker(t, nil)
		p := newPool(t, dist.PoolConfig{Addrs: []string{w1.Addr(), w2.Addr()}})
		wo := dist.WireOpts{Strategy: "exact", JobDepth: 2, Heuristic: "fanout"}
		got, seq := runOverPool(t, p, genRequest(1), wo)
		assertBitIdentical(t, got, seq)
		_ = p.Close()
		_ = w1.Close()
		_ = w2.Close()
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d before, %d after\n%s", before, runtime.NumGoroutine(), truncateStack(string(buf[:n])))
}

func truncateStack(s string) string {
	if lines := strings.Split(s, "\n"); len(lines) > 80 {
		return strings.Join(lines[:80], "\n") + "\n..."
	}
	return s
}

// TestSlotsAggregation checks the executor advertises the live capacity sum
// and degrades as workers die.
func TestSlotsAggregation(t *testing.T) {
	w1, w2 := startWorker(t, nil), startWorker(t, nil)
	p := newPool(t, dist.PoolConfig{Addrs: []string{w1.Addr(), w2.Addr()}})
	exec := p.Session("k", []byte(`{}`), dist.WireOpts{Strategy: "exact", JobDepth: 2, Heuristic: "fanout"})
	if got := exec.Slots(); got != 4 {
		t.Fatalf("Slots = %d, want 4 (2 workers × 2 slots)", got)
	}
	_ = w1.Close()
	deadline := time.Now().Add(10 * time.Second)
	for exec.Slots() != 2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if got := exec.Slots(); got != 2 {
		t.Fatalf("Slots = %d after one worker died, want 2", got)
	}
}

// TestLoadFailurePermanent ships a spec that does not resolve; the failure
// must surface as a permanent error (the job itself cannot run anywhere),
// not burn retries as a transport fault.
func TestLoadFailurePermanent(t *testing.T) {
	w := startWorker(t, nil)
	p := newPool(t, dist.PoolConfig{Addrs: []string{w.Addr()}, MaxRetries: 2})
	exec := p.Session("bogus", []byte(`{"data":{"kind":"nope"}}`), dist.WireOpts{Strategy: "exact", JobDepth: 2, Heuristic: "fanout"})
	_, err := exec.ExecuteJob(context.Background(), &prob.WireJob{ID: 1, P: 1})
	if err == nil {
		t.Fatal("want load failure")
	}
	if errors.Is(err, prob.ErrExecutorUnavailable) {
		t.Fatalf("load failure classified as retryable transport error: %v", err)
	}
}

func newTestRegistry(t *testing.T) *obs.Registry {
	t.Helper()
	return obs.New("dist-test").Metrics()
}
