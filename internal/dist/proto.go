package dist

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"enframe/internal/event"
	"enframe/internal/obs"
	"enframe/internal/prob"
)

// Message payloads are JSON inside binary frames: control traffic is tiny,
// and Go's JSON encoder emits shortest-round-trip float64 literals, so
// probability masses survive the wire bit-exactly — the property the
// coordinator's ordered merge depends on.

type helloMsg struct {
	Version int `json:"version"`
	// MinVersion is the lowest protocol revision the coordinator accepts
	// (absent, meaning "Version exactly", from v1 coordinators).
	MinVersion int    `json:"min_version,omitempty"`
	Name       string `json:"name,omitempty"`
	// ClockNs is the coordinator's clock reading at send time (v2+), the
	// first half of the per-connection clock-offset handshake.
	ClockNs int64 `json:"clock_ns,omitempty"`
}

type helloAckMsg struct {
	// Version is the negotiated protocol revision for this connection:
	// min(coordinator's Version, worker's Version).
	Version int `json:"version"`
	// Slots is the worker's parallel job capacity.
	Slots int `json:"slots"`
	// PID is the worker's OS process ID (v2+), shown in trace lane labels.
	PID int `json:"pid,omitempty"`
	// ClockNs is the worker's clock reading at ack time (v2+). The
	// coordinator estimates the per-connection offset as
	// ClockNs − midpoint(send hello, receive ack) and uses it to map
	// worker span timestamps onto its own clock.
	ClockNs int64 `json:"clock_ns,omitempty"`
}

// WireOpts is the subset of prob.Options a session fixes on the worker.
// Variable orders are not shipped: order computation is deterministic, so
// both sides derive the identical order from the heuristic.
type WireOpts struct {
	Strategy     string  `json:"strategy"`
	Epsilon      float64 `json:"epsilon,omitempty"`
	JobDepth     int     `json:"job_depth"`
	Heuristic    string  `json:"heuristic"`
	SkipDisabled bool    `json:"skip_disabled,omitempty"`
	Slack        float64 `json:"slack,omitempty"`
	TimeoutNs    int64   `json:"timeout_ns,omitempty"`
}

// FromOptions projects compile options onto the wire form.
func FromOptions(o prob.Options) WireOpts {
	h := "fanout"
	if o.Heuristic == prob.InputOrder {
		h = "input"
	}
	return WireOpts{
		Strategy:     o.Strategy.String(),
		Epsilon:      o.Epsilon,
		JobDepth:     o.JobDepth,
		Heuristic:    h,
		SkipDisabled: o.SkipDisabled,
		Slack:        o.Slack,
		TimeoutNs:    int64(o.Timeout),
	}
}

// Options reconstitutes compile options worker-side.
func (wo WireOpts) Options() (prob.Options, error) {
	var strat prob.Strategy
	switch wo.Strategy {
	case "exact":
		strat = prob.Exact
	case "eager":
		strat = prob.Eager
	case "lazy":
		strat = prob.Lazy
	case "hybrid":
		strat = prob.Hybrid
	default:
		return prob.Options{}, fmt.Errorf("dist: unknown strategy %q", wo.Strategy)
	}
	var h prob.OrderHeuristic
	switch wo.Heuristic {
	case "fanout", "":
		h = prob.FanoutOrder
	case "input":
		h = prob.InputOrder
	default:
		return prob.Options{}, fmt.Errorf("dist: unknown heuristic %q", wo.Heuristic)
	}
	return prob.Options{
		Strategy:     strat,
		Epsilon:      wo.Epsilon,
		JobDepth:     wo.JobDepth,
		Heuristic:    h,
		SkipDisabled: wo.SkipDisabled,
		Slack:        wo.Slack,
		Timeout:      time.Duration(wo.TimeoutNs),
	}, nil
}

// SessionKey derives the worker-side session cache key: the artifact content
// hash plus a fingerprint of the fixed compile options.
func SessionKey(artifactKey string, wo WireOpts) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%g\x00%d\x00%s\x00%t\x00%g",
		artifactKey, wo.Strategy, wo.Epsilon, wo.JobDepth, wo.Heuristic,
		wo.SkipDisabled, wo.Slack)
	return hex.EncodeToString(h.Sum(nil))[:32]
}

type loadMsg struct {
	SessionKey  string `json:"session_key"`
	ArtifactKey string `json:"artifact_key"`
	// Spec is the artifact-identifying request (the server.RunRequest JSON
	// shape with per-request fields stripped); the worker resolves it
	// through its injected resolver and verifies the content hash matches
	// ArtifactKey.
	Spec json.RawMessage `json:"spec"`
	Opts WireOpts        `json:"opts"`
}

type loadAckMsg struct {
	SessionKey string `json:"session_key"`
	Targets    int    `json:"targets,omitempty"`
	Err        string `json:"err,omitempty"`
}

type wireAssign struct {
	V uint32 `json:"v"`
	B bool   `json:"b,omitempty"`
}

// wireTrace is the trace context a v2 job frame carries: enough for the
// worker to label its local tracer and for the coordinator to know which
// span the returned subtree belongs under.
type wireTrace struct {
	// ID is the coordinator trace's random hex identifier.
	ID string `json:"id"`
	// Span is the coordinator-side parent span ID the shipped job runs
	// under.
	Span uint64 `json:"span"`
}

type jobMsg struct {
	SessionKey string       `json:"session_key"`
	ID         uint64       `json:"id"`
	Path       []wireAssign `json:"path,omitempty"`
	OI         int          `json:"oi,omitempty"`
	P          float64      `json:"p"`
	E          []float64    `json:"e,omitempty"`
	TimeoutNs  int64        `json:"timeout_ns,omitempty"`
	// Trace, when present (v2+ and the coordinator is tracing), asks the
	// worker to run the job under a local tracer and ship the span subtree
	// back on the result frame.
	Trace *wireTrace `json:"trace,omitempty"`
}

type wireItem struct {
	K uint8   `json:"k"` // 0 add, 1 fork
	T int32   `json:"t,omitempty"`
	B bool    `json:"b,omitempty"`
	F int32   `json:"f,omitempty"`
	M float64 `json:"m,omitempty"`
}

type wireFork struct {
	Path []wireAssign `json:"path,omitempty"`
	OI   int          `json:"oi,omitempty"`
	P    float64      `json:"p"`
	E    []float64    `json:"e,omitempty"`
}

type wireStats struct {
	Branches     int64 `json:"branches,omitempty"`
	Assignments  int64 `json:"assignments,omitempty"`
	MaskUpdates  int64 `json:"mask_updates,omitempty"`
	BudgetPrunes int64 `json:"budget_prunes,omitempty"`
	MaxDepth     int64 `json:"max_depth,omitempty"`
	DurNanos     int64 `json:"dur_ns,omitempty"`
}

// wireMetric is one piggybacked worker-process metric on a result frame:
// counters travel as deltas since the previous result on the same
// connection (the coordinator sums them into fleet totals), gauges as
// absolute values (the coordinator namespaces them per worker).
type wireMetric struct {
	N string  `json:"n"`
	K uint8   `json:"k,omitempty"` // 0 counter delta, 1 gauge absolute
	V float64 `json:"v"`
}

type resultMsg struct {
	ID       uint64     `json:"id"`
	OK       bool       `json:"ok"`
	Err      string     `json:"err,omitempty"`
	TimedOut bool       `json:"timed_out,omitempty"`
	Items    []wireItem `json:"items,omitempty"`
	Forks    []wireFork `json:"forks,omitempty"`
	Residual []float64  `json:"residual,omitempty"`
	Stats    wireStats  `json:"stats"`
	// Span is the worker-side span subtree for this job (v2+, only when
	// the job frame carried a trace context), in the worker's clock.
	Span *obs.SpanExport `json:"span,omitempty"`
	// Metrics are worker-process metric readings piggybacked on the result
	// (v2+): no extra frames, and worker telemetry survives worker death up
	// to its last shipped result.
	Metrics []wireMetric `json:"metrics,omitempty"`
}

type pingMsg struct {
	Nonce uint64 `json:"nonce"`
}

type errorMsg struct {
	Code    string `json:"code"`
	Msg     string `json:"msg,omitempty"`
	Version int    `json:"version,omitempty"`
}

func toWireAssigns(path []prob.Assign) []wireAssign {
	if len(path) == 0 {
		return nil
	}
	out := make([]wireAssign, len(path))
	for i, a := range path {
		out[i] = wireAssign{V: uint32(a.Var), B: a.Val}
	}
	return out
}

func fromWireAssigns(path []wireAssign) []prob.Assign {
	if len(path) == 0 {
		return nil
	}
	out := make([]prob.Assign, len(path))
	for i, a := range path {
		out[i] = prob.Assign{Var: event.VarID(a.V), Val: a.B}
	}
	return out
}

func toJobMsg(sessionKey string, j *prob.WireJob) jobMsg {
	return jobMsg{
		SessionKey: sessionKey,
		ID:         j.ID,
		Path:       toWireAssigns(j.Path),
		OI:         j.OI,
		P:          j.P,
		E:          j.E,
		TimeoutNs:  int64(j.Timeout),
	}
}

func (m jobMsg) job() *prob.WireJob {
	return &prob.WireJob{
		ID:      m.ID,
		Path:    fromWireAssigns(m.Path),
		OI:      m.OI,
		P:       m.P,
		E:       m.E,
		Timeout: time.Duration(m.TimeoutNs),
	}
}

func toResultMsg(res *prob.WireResult) resultMsg {
	m := resultMsg{
		ID: res.ID, OK: true, TimedOut: res.TimedOut, Residual: res.Residual,
		Stats: wireStats{
			Branches:     res.Stats.Branches,
			Assignments:  res.Stats.Assignments,
			MaskUpdates:  res.Stats.MaskUpdates,
			BudgetPrunes: res.Stats.BudgetPrunes,
			MaxDepth:     res.Stats.MaxDepth,
			DurNanos:     res.Stats.DurNanos,
		},
	}
	if len(res.Items) > 0 {
		m.Items = make([]wireItem, len(res.Items))
		for i, it := range res.Items {
			m.Items[i] = wireItem{K: uint8(it.Kind), T: it.Target, B: it.IsTrue, F: it.Fork, M: it.Mass}
		}
	}
	if len(res.Forks) > 0 {
		m.Forks = make([]wireFork, len(res.Forks))
		for i, f := range res.Forks {
			m.Forks[i] = wireFork{Path: toWireAssigns(f.Path), OI: f.OI, P: f.P, E: f.E}
		}
	}
	return m
}

func (m *resultMsg) result() (*prob.WireResult, error) {
	res := &prob.WireResult{
		ID: m.ID, TimedOut: m.TimedOut, Residual: m.Residual,
		Stats: prob.JobStats{
			Branches:     m.Stats.Branches,
			Assignments:  m.Stats.Assignments,
			MaskUpdates:  m.Stats.MaskUpdates,
			BudgetPrunes: m.Stats.BudgetPrunes,
			MaxDepth:     m.Stats.MaxDepth,
			DurNanos:     m.Stats.DurNanos,
		},
	}
	if len(m.Items) > 0 {
		res.Items = make([]prob.WireItem, len(m.Items))
		for i, it := range m.Items {
			if it.K > uint8(prob.ItemFork) {
				return nil, fmt.Errorf("dist: result %d: unknown item kind %d", m.ID, it.K)
			}
			if it.K == uint8(prob.ItemFork) && (it.F < 0 || int(it.F) >= len(m.Forks)) {
				return nil, fmt.Errorf("dist: result %d: fork index %d out of range", m.ID, it.F)
			}
			res.Items[i] = prob.WireItem{Kind: prob.ItemKind(it.K), Target: it.T, IsTrue: it.B, Fork: it.F, Mass: it.M}
		}
	}
	if len(m.Forks) > 0 {
		res.Forks = make([]prob.WireFork, len(m.Forks))
		for i, f := range m.Forks {
			res.Forks[i] = prob.WireFork{Path: fromWireAssigns(f.Path), OI: f.OI, P: f.P, E: f.E}
		}
	}
	return res, nil
}

// encode marshals a payload; marshal failures are programming errors.
func encode(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("dist: encode: %v", err))
	}
	return b
}

func decode(b []byte, v any) error {
	if err := json.Unmarshal(b, v); err != nil {
		return &FrameError{Op: "decode payload", Err: err}
	}
	return nil
}
