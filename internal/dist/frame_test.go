package dist

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("{}"), []byte(`{"version":1,"slots":4}`), bytes.Repeat([]byte("x"), 3<<20)}
	for _, mt := range []MsgType{MsgHello, MsgHelloAck, MsgLoad, MsgLoadAck, MsgJob, MsgResult, MsgPing, MsgPong, MsgError} {
		for _, p := range payloads {
			var buf bytes.Buffer
			if err := WriteFrame(&buf, mt, p); err != nil {
				t.Fatalf("%v: write: %v", mt, err)
			}
			gt, gp, err := ReadFrame(&buf)
			if err != nil {
				t.Fatalf("%v: read: %v", mt, err)
			}
			if gt != mt || !bytes.Equal(gp, p) {
				t.Fatalf("%v: round trip mismatch: got %v, %d bytes", mt, gt, len(gp))
			}
		}
	}
}

func TestFrameCleanEOF(t *testing.T) {
	_, _, err := ReadFrame(bytes.NewReader(nil))
	if err != io.EOF {
		t.Fatalf("empty stream: want io.EOF, got %v", err)
	}
}

// frame builds a raw frame with full control over every header byte.
func frame(version byte, mt byte, length uint32, payload []byte) []byte {
	b := []byte{frameMagic[0], frameMagic[1], version, mt,
		byte(length >> 24), byte(length >> 16), byte(length >> 8), byte(length)}
	return append(b, payload...)
}

func TestFrameTruncatedHeader(t *testing.T) {
	full := frame(ProtocolVersion, byte(MsgPing), 2, []byte("{}"))
	for cut := 1; cut < headerSize; cut++ {
		_, _, err := ReadFrame(bytes.NewReader(full[:cut]))
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d: want ErrTruncated, got %v", cut, err)
		}
		if !IsProtocolError(err) {
			t.Fatalf("cut %d: truncated header must classify as protocol error", cut)
		}
	}
}

func TestFrameTruncatedPayload(t *testing.T) {
	full := frame(ProtocolVersion, byte(MsgPing), 10, []byte("short"))
	_, _, err := ReadFrame(bytes.NewReader(full))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestFrameLyingLength(t *testing.T) {
	// A length close to the cap with almost no data must fail with
	// ErrTruncated after reading only what exists — not allocate 64 MiB.
	full := frame(ProtocolVersion, byte(MsgJob), MaxFrameSize-1, []byte("tiny"))
	_, _, err := ReadFrame(bytes.NewReader(full))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestFrameBadMagic(t *testing.T) {
	raw := []byte("GET / HTTP/1.1\r\n\r\n")
	_, _, err := ReadFrame(bytes.NewReader(raw))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
}

func TestFrameVersionMismatch(t *testing.T) {
	raw := frame(ProtocolVersion+7, byte(MsgHello), 0, nil)
	_, _, err := ReadFrame(bytes.NewReader(raw))
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("want *VersionError, got %v", err)
	}
	if ve.Got != ProtocolVersion+7 || ve.Want != ProtocolVersion {
		t.Fatalf("version error fields: %+v", ve)
	}
	if !IsProtocolError(err) {
		t.Fatal("version mismatch must classify as protocol error")
	}
}

func TestFrameBadType(t *testing.T) {
	for _, mt := range []byte{0, byte(MsgError) + 1, 200} {
		raw := frame(ProtocolVersion, mt, 0, nil)
		_, _, err := ReadFrame(bytes.NewReader(raw))
		if !errors.Is(err, ErrBadType) {
			t.Fatalf("type %d: want ErrBadType, got %v", mt, err)
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	raw := frame(ProtocolVersion, byte(MsgJob), MaxFrameSize+1, nil)
	_, _, err := ReadFrame(bytes.NewReader(raw))
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("read: want ErrTooLarge, got %v", err)
	}
	var sink bytes.Buffer
	if err := WriteFrame(&sink, MsgJob, make([]byte, MaxFrameSize+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("write: want ErrTooLarge, got %v", err)
	}
}

func TestIsProtocolErrorNegative(t *testing.T) {
	if IsProtocolError(nil) || IsProtocolError(io.EOF) || IsProtocolError(errors.New("boom")) {
		t.Fatal("IsProtocolError misclassifies unrelated errors")
	}
}

// TestSessionKeyStability pins the session key to its inputs: same inputs
// agree, any differing input disagrees.
func TestSessionKeyStability(t *testing.T) {
	base := WireOpts{Strategy: "exact", JobDepth: 3, Heuristic: "fanout"}
	k := SessionKey("abc", base)
	if k != SessionKey("abc", base) {
		t.Fatal("session key not deterministic")
	}
	if k == SessionKey("abd", base) {
		t.Fatal("artifact key not hashed")
	}
	eps := base
	eps.Epsilon = 0.1
	if k == SessionKey("abc", eps) {
		t.Fatal("epsilon not hashed")
	}
}
