package dist_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"enframe/internal/dist"
	"enframe/internal/obs"
)

// TestFrameVersionRoundTrip writes frames at every supported protocol
// revision and requires the decoder to return the stamping version and the
// re-encode to be byte-identical — the invariant the fuzz corpus relies on.
func TestFrameVersionRoundTrip(t *testing.T) {
	payload := []byte(`{"id":7}`)
	for v := uint8(dist.MinProtocolVersion); v <= dist.ProtocolVersion; v++ {
		var buf bytes.Buffer
		if err := dist.WriteFrameV(&buf, v, dist.MsgJob, payload); err != nil {
			t.Fatalf("v%d write: %v", v, err)
		}
		wire := append([]byte(nil), buf.Bytes()...)
		mt, got, ver, err := dist.ReadFrameV(bytes.NewReader(wire))
		if err != nil {
			t.Fatalf("v%d read: %v", v, err)
		}
		if mt != dist.MsgJob || ver != v || !bytes.Equal(got, payload) {
			t.Fatalf("v%d round trip: type %v ver %d payload %q", v, mt, ver, got)
		}
		buf.Reset()
		if err := dist.WriteFrameV(&buf, ver, mt, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), wire) {
			t.Fatalf("v%d re-encode not byte-identical", v)
		}
	}
}

// startWorkerCfg is startWorker with full config control (protocol ceiling,
// injected clock).
func startWorkerCfg(t *testing.T, cfg dist.WorkerConfig) *dist.Worker {
	t.Helper()
	if cfg.Resolver == nil {
		cfg.Resolver = testResolver
	}
	if cfg.Slots == 0 {
		cfg.Slots = 2
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	w, err := dist.NewWorker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := w.Serve(); err != nil {
			t.Logf("worker serve: %v", err)
		}
	}()
	t.Cleanup(func() { _ = w.Close() })
	return w
}

// tracedRun compiles one workload over the pool with tracing enabled and
// returns the finished trace.
func tracedRun(t *testing.T, p *dist.Pool, seed int64) *obs.Trace {
	t.Helper()
	tr := obs.New("coordinator")
	req := genRequest(seed)
	wo := dist.WireOpts{Strategy: "exact", JobDepth: 2, Heuristic: "fanout"}
	runOverPoolObs(t, p, req, wo, tr)
	tr.Finish()
	return tr
}

// collectPIDs walks an exported span tree, counting spans per pid lane
// (0 normalises to the local lane 1) and recording lane transitions.
func collectPIDs(ex obs.SpanExport, into map[int]int) {
	pid := ex.PID
	if pid == 0 {
		pid = 1
	}
	into[pid]++
	for _, c := range ex.Children {
		collectPIDs(c, into)
	}
}

// remoteSubtreeParents walks the tree and reports the names of spans that
// directly parent a remote (pid > 1) subtree.
func remoteSubtreeParents(ex obs.SpanExport, parents map[string]int) {
	selfPID := ex.PID
	if selfPID == 0 {
		selfPID = 1
	}
	for _, c := range ex.Children {
		cPID := c.PID
		if cPID == 0 {
			cPID = 1
		}
		if selfPID == 1 && cPID > 1 {
			parents[ex.Name]++
		}
		remoteSubtreeParents(c, parents)
	}
}

// spanTimeBounds returns the min start / max end across spans on the given
// lane predicate.
func spanTimeBounds(ex obs.SpanExport, match func(pid int) bool, minStart, maxEnd *int64) {
	pid := ex.PID
	if pid == 0 {
		pid = 1
	}
	if match(pid) {
		if *minStart == 0 || ex.StartNs < *minStart {
			*minStart = ex.StartNs
		}
		if ex.EndNs > *maxEnd {
			*maxEnd = ex.EndNs
		}
	}
	for _, c := range ex.Children {
		spanTimeBounds(c, match, minStart, maxEnd)
	}
}

// TestMergedTraceWorkerLanes runs a traced remote compilation against a
// worker whose injected clock is an hour ahead and requires the merged trace
// to carry (1) spans on at least two distinct pid lanes, (2) every remote
// subtree parented under a coordinator-side "ship" span (no orphans), and
// (3) remote timestamps mapped onto the coordinator clock despite the skew.
func TestMergedTraceWorkerLanes(t *testing.T) {
	skewed := func() time.Time { return time.Now().Add(time.Hour) }
	w := startWorkerCfg(t, dist.WorkerConfig{Now: skewed})
	pool := newPool(t, dist.PoolConfig{Addrs: []string{w.Addr()}})
	tr := tracedRun(t, pool, 42)

	ex := tr.Root().Export()
	pids := map[int]int{}
	collectPIDs(ex, pids)
	if len(pids) < 2 {
		t.Fatalf("trace has %d pid lane(s) %v, want >= 2", len(pids), pids)
	}
	parents := map[string]int{}
	remoteSubtreeParents(ex, parents)
	for name, n := range parents {
		if name != "ship" {
			t.Fatalf("%d remote subtree(s) parented under %q, want only under \"ship\"", n, name)
		}
	}
	if parents["ship"] == 0 {
		t.Fatal("no remote subtrees spliced under ship spans")
	}

	// Clock mapping: the worker's clock is an hour ahead, so unmapped
	// timestamps would sit ~3.6e12 ns outside the trace; mapped ones must
	// land inside the coordinator's own window.
	var remoteStart, remoteEnd int64
	spanTimeBounds(ex, func(pid int) bool { return pid > 1 }, &remoteStart, &remoteEnd)
	rootStart, rootEnd := ex.StartNs, ex.EndNs
	const slack = int64(time.Minute)
	if remoteStart < rootStart-slack || remoteEnd > rootEnd+slack {
		t.Fatalf("remote span window [%d,%d] not mapped into coordinator window [%d,%d] (worker clock is +1h)",
			remoteStart, remoteEnd, rootStart, rootEnd)
	}
}

// TestNegotiationDownToV1 pairs a v2 coordinator with a worker capped at
// protocol v1: the connection must negotiate down and work, and no trace
// subtrees or piggybacked metrics may flow.
func TestNegotiationDownToV1(t *testing.T) {
	w := startWorkerCfg(t, dist.WorkerConfig{MaxProtocol: 1})
	reg := obs.NewRegistry()
	pool := newPool(t, dist.PoolConfig{Addrs: []string{w.Addr()}, Reg: reg})

	tr := tracedRun(t, pool, 42) // tracing on, but the wire is v1

	ex := tr.Root().Export()
	pids := map[int]int{}
	collectPIDs(ex, pids)
	if len(pids) != 1 {
		t.Fatalf("v1 connection leaked remote lanes: %v", pids)
	}
	for _, mv := range reg.Values() {
		if len(mv.Name) > 7 && mv.Name[:7] == "worker." {
			t.Fatalf("v1 connection piggybacked worker metric %q", mv.Name)
		}
	}
}

// TestWorkerDeathZeroesGauges kills a worker mid-life and requires both its
// alive and inflight gauges to read zero afterwards; closing the pool must
// do the same for healthy workers.
func TestWorkerDeathZeroesGauges(t *testing.T) {
	w := startWorkerCfg(t, dist.WorkerConfig{})
	reg := obs.NewRegistry()
	pool := newPool(t, dist.PoolConfig{
		Addrs: []string{w.Addr()}, Reg: reg,
		HeartbeatEvery: 20 * time.Millisecond, HeartbeatMiss: 2,
	})
	if got := reg.Gauge("dist.worker.0.alive").Value(); got != 1 {
		t.Fatalf("alive gauge %v after connect, want 1", got)
	}
	_ = w.Close()
	deadline := time.Now().Add(5 * time.Second)
	for pool.AliveWorkers() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never marked dead")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := reg.Gauge("dist.worker.0.alive").Value(); got != 0 {
		t.Fatalf("alive gauge %v after death, want 0", got)
	}
	if got := reg.Gauge("dist.worker.0.inflight").Value(); got != 0 {
		t.Fatalf("inflight gauge %v after death, want 0", got)
	}

	w2 := startWorkerCfg(t, dist.WorkerConfig{})
	reg2 := obs.NewRegistry()
	pool2, err := dist.NewPool(context.Background(), dist.PoolConfig{
		Addrs: []string{w2.Addr()}, Reg: reg2, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = pool2.Close()
	if got := reg2.Gauge("dist.worker.0.alive").Value(); got != 0 {
		t.Fatalf("alive gauge %v after pool close, want 0", got)
	}
	if got := reg2.Gauge("dist.worker.0.inflight").Value(); got != 0 {
		t.Fatalf("inflight gauge %v after pool close, want 0", got)
	}
}
