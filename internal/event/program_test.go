package event

import (
	"strings"
	"testing"
)

func TestProgramDeclarations(t *testing.T) {
	sp := NewSpace()
	x := NewVar(sp.Add("x", 0.5), "x")
	p := NewProgram(sp)
	p.DeclareBool("phi", x)
	p.DeclareNum("val", NewCondVal(x, Num(3)))

	if _, ok := p.Lookup("phi"); !ok {
		t.Error("phi not found")
	}
	if p.Bool("phi") != x {
		t.Error("wrong event bound to phi")
	}
	if p.Num("val") == nil {
		t.Error("wrong c-value bound to val")
	}
	if names := p.Names(); len(names) != 2 || names[0] != "phi" {
		t.Errorf("Names = %v", names)
	}
	got := p.NamesMatching(func(n string) bool { return strings.HasPrefix(n, "v") })
	if len(got) != 1 || got[0] != "val" {
		t.Errorf("NamesMatching = %v", got)
	}
	s := p.String()
	if !strings.Contains(s, "phi ≡ x") || !strings.Contains(s, "val ≡") {
		t.Errorf("String = %q", s)
	}
}

func TestProgramImmutability(t *testing.T) {
	sp := NewSpace()
	p := NewProgram(sp)
	p.DeclareBool("e", True)
	defer func() {
		if recover() == nil {
			t.Error("duplicate declaration must panic (§3.4 immutability)")
		}
	}()
	p.DeclareBool("e", False)
}

func TestSpaceValidation(t *testing.T) {
	sp := NewSpace()
	x := sp.Add("x", 0.25)
	if sp.Name(x) != "x" || sp.Prob(x) != 0.25 || sp.Len() != 1 {
		t.Error("space accessors broken")
	}
	sp.SetProb(x, 0.75)
	if sp.Prob(x) != 0.75 {
		t.Error("SetProb ineffective")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range probability must panic")
		}
	}()
	sp.Add("y", 1.5)
}

func TestBoolLookupPanicsOnWrongKind(t *testing.T) {
	sp := NewSpace()
	p := NewProgram(sp)
	p.DeclareNum("n", NewConstNum(Num(1)))
	defer func() {
		if recover() == nil {
			t.Error("Bool on a numeric declaration must panic")
		}
	}()
	p.Bool("n")
}
