// Package event implements ENFrame's event language (paper §3): conditional
// values (c-values) over a feature space extended with an undefined element
// u, Boolean event expressions over random variables, their semantics under
// valuations, their probabilistic semantics, and grounded event programs.
package event

import (
	"fmt"
	"math"

	"enframe/internal/vec"
)

// Kind discriminates the runtime values of the event domain.
type Kind uint8

const (
	// Undef is the special element u (u for vectors): the value of a
	// conditional value whose guard is false, and of 0⁻¹.
	Undef Kind = iota
	// Scalar is a real number.
	Scalar
	// Vector is a point in the feature space.
	Vector
	// Boolean is a truth value. Boolean values never appear inside
	// c-values (events encode them), but the per-world interpreter of the
	// user language stores them in the same domain.
	Boolean
)

func (k Kind) String() string {
	switch k {
	case Undef:
		return "undef"
	case Scalar:
		return "scalar"
	case Vector:
		return "vector"
	case Boolean:
		return "boolean"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is an element of the extended value domain of §3.2: a scalar, a
// feature vector, a Boolean, or the undefined element u. The zero Value is
// undefined.
type Value struct {
	Kind Kind
	S    float64
	V    vec.Vec
	B    bool
}

// U is the undefined value u.
var U = Value{Kind: Undef}

// Num returns a scalar value.
func Num(s float64) Value { return Value{Kind: Scalar, S: s} }

// Vect returns a vector value.
func Vect(v vec.Vec) Value { return Value{Kind: Vector, V: v} }

// Bool returns a Boolean value.
func Bool(b bool) Value { return Value{Kind: Boolean, B: b} }

// IsUndef reports whether v is the undefined element.
func (v Value) IsUndef() bool { return v.Kind == Undef }

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case Undef:
		return "u"
	case Scalar:
		return fmt.Sprintf("%g", v.S)
	case Vector:
		return v.V.String()
	case Boolean:
		return fmt.Sprintf("%t", v.B)
	}
	return "?"
}

// Equal reports whether two values are identical (undefined equals
// undefined; vectors compare component-wise).
func (v Value) Equal(w Value) bool {
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case Undef:
		return true
	case Scalar:
		return v.S == w.S || (math.IsNaN(v.S) && math.IsNaN(w.S))
	case Vector:
		return v.V.Equal(w.V)
	case Boolean:
		return v.B == w.B
	}
	return false
}

// AlmostEqual compares scalars and vectors within eps; other kinds must
// match exactly.
func (v Value) AlmostEqual(w Value, eps float64) bool {
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case Scalar:
		return math.Abs(v.S-w.S) <= eps
	case Vector:
		return v.V.AlmostEqual(w.V, eps)
	default:
		return v.Equal(w)
	}
}

// Add implements the extended +: u + x = x, x + u = x, and the natural sum
// on matching scalars or vectors. Adding a scalar to a vector panics — event
// programs are type checked before evaluation.
func Add(a, b Value) Value {
	if a.IsUndef() {
		return b
	}
	if b.IsUndef() {
		return a
	}
	switch {
	case a.Kind == Scalar && b.Kind == Scalar:
		return Num(a.S + b.S)
	case a.Kind == Vector && b.Kind == Vector:
		return Vect(a.V.Add(b.V))
	}
	panic(fmt.Sprintf("event: Add on %s and %s", a.Kind, b.Kind))
}

// Mul implements the extended ·: u annihilates (u · x = u), scalars multiply,
// and a scalar times a vector scales the vector (scalar_mult in the user
// language).
func Mul(a, b Value) Value {
	if a.IsUndef() || b.IsUndef() {
		return U
	}
	switch {
	case a.Kind == Scalar && b.Kind == Scalar:
		return Num(a.S * b.S)
	case a.Kind == Scalar && b.Kind == Vector:
		return Vect(b.V.Scale(a.S))
	case a.Kind == Vector && b.Kind == Scalar:
		return Vect(a.V.Scale(b.S))
	}
	panic(fmt.Sprintf("event: Mul on %s and %s", a.Kind, b.Kind))
}

// Inv implements the extended ⁻¹ on scalars: 0⁻¹ = u and u⁻¹ = u.
func Inv(a Value) Value {
	if a.IsUndef() {
		return U
	}
	if a.Kind != Scalar {
		panic(fmt.Sprintf("event: Inv on %s", a.Kind))
	}
	if a.S == 0 {
		return U
	}
	return Num(1 / a.S)
}

// PowVal raises a scalar to an integer power, propagating u.
func PowVal(a Value, exp int) Value {
	if a.IsUndef() {
		return U
	}
	if a.Kind != Scalar {
		panic(fmt.Sprintf("event: Pow on %s", a.Kind))
	}
	return Num(math.Pow(a.S, float64(exp)))
}

// DistVal computes the distance between two vector values under metric; the
// result is u when either argument is undefined.
func DistVal(metric vec.Distance, a, b Value) Value {
	if a.IsUndef() || b.IsUndef() {
		return U
	}
	if a.Kind != Vector || b.Kind != Vector {
		panic(fmt.Sprintf("event: Dist on %s and %s", a.Kind, b.Kind))
	}
	return Num(metric(a.V, b.V))
}

// CmpOp is a comparison operator of the ATOM production.
type CmpOp uint8

const (
	LE CmpOp = iota // ≤
	GE              // ≥
	EQ              // =
	LT              // <
	GT              // >
)

func (op CmpOp) String() string {
	switch op {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	case LT:
		return "<"
	case GT:
		return ">"
	}
	return fmt.Sprintf("CmpOp(%d)", uint8(op))
}

// Holds applies op to two floats.
func (op CmpOp) Holds(a, b float64) bool {
	switch op {
	case LE:
		return a <= b
	case GE:
		return a >= b
	case EQ:
		return a == b
	case LT:
		return a < b
	case GT:
		return a > b
	}
	panic("event: unknown comparison operator")
}

// Flip returns the operator with swapped operands (a op b ⇔ b op.Flip() a).
func (op CmpOp) Flip() CmpOp {
	switch op {
	case LE:
		return GE
	case GE:
		return LE
	case LT:
		return GT
	case GT:
		return LT
	default:
		return op
	}
}

// Compare evaluates [a op b] under §3.2: the comparison is false only when
// both sides are defined scalars and op does not hold; any comparison
// involving u is true.
func Compare(op CmpOp, a, b Value) bool {
	if a.IsUndef() || b.IsUndef() {
		return true
	}
	if a.Kind != Scalar || b.Kind != Scalar {
		panic(fmt.Sprintf("event: Compare on %s and %s", a.Kind, b.Kind))
	}
	return op.Holds(a.S, b.S)
}
