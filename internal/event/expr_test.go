package event

import (
	"math/rand"
	"testing"

	"enframe/internal/vec"
)

func TestSmartConstructors(t *testing.T) {
	sp := NewSpace()
	x := NewVar(sp.Add("x", 0.5), "x")
	y := NewVar(sp.Add("y", 0.5), "y")

	if NewAnd() != True {
		t.Error("empty conjunction must be ⊤")
	}
	if NewOr() != False {
		t.Error("empty disjunction must be ⊥")
	}
	if NewAnd(x) != x {
		t.Error("unary conjunction must collapse")
	}
	if NewAnd(x, False) != False {
		t.Error("x ∧ ⊥ must be ⊥")
	}
	if NewAnd(x, True) != x {
		t.Error("x ∧ ⊤ must be x")
	}
	if NewOr(x, True) != True {
		t.Error("x ∨ ⊤ must be ⊤")
	}
	if NewOr(x, False) != x {
		t.Error("x ∨ ⊥ must be x")
	}
	if NewNot(NewNot(x)) != x {
		t.Error("double negation must cancel")
	}
	if NewNot(True) != False || NewNot(False) != True {
		t.Error("negated constants must fold")
	}
	// Flattening: (x ∧ y) ∧ x has two distinct conjuncts.
	a := NewAnd(NewAnd(x, y), x).(*And)
	if len(a.Es) != 2 {
		t.Errorf("flattened conjunction has %d conjuncts, want 2", len(a.Es))
	}
}

func TestGuardMergesIntoCondVal(t *testing.T) {
	sp := NewSpace()
	x := NewVar(sp.Add("x", 0.5), "x")
	y := NewVar(sp.Add("y", 0.5), "y")
	cv := NewCondVal(y, Num(3))
	g := NewGuard(x, cv)
	merged, ok := g.(*CondVal)
	if !ok {
		t.Fatalf("guard over ⊗ should merge into ⊗, got %T", g)
	}
	if _, ok := merged.Guard.(*And); !ok {
		t.Errorf("merged guard should be a conjunction, got %T", merged.Guard)
	}
	if NewGuard(True, cv) != cv {
		t.Error("⊤ ∧ v must be v")
	}
}

func TestEvalExprBasic(t *testing.T) {
	sp := NewSpace()
	xid, yid := sp.Add("x", 0.5), sp.Add("y", 0.5)
	x, y := NewVar(xid, "x"), NewVar(yid, "y")
	e := NewOr(NewAnd(x, NewNot(y)), NewAnd(NewNot(x), y)) // xor
	cases := []struct {
		vx, vy, want bool
	}{
		{false, false, false}, {true, false, true},
		{false, true, true}, {true, true, false},
	}
	for _, c := range cases {
		nu := MapValuation{xid: c.vx, yid: c.vy}
		if got := EvalExpr(e, nu); got != c.want {
			t.Errorf("xor(%t,%t) = %t, want %t", c.vx, c.vy, got, c.want)
		}
	}
}

func TestEvalNumConditional(t *testing.T) {
	sp := NewSpace()
	xid := sp.Add("x", 0.5)
	x := NewVar(xid, "x")
	// x⊗2 + ¬x⊗3
	n := NewSum(NewCondVal(x, Num(2)), NewCondVal(NewNot(x), Num(3)))
	if got := EvalNum(n, MapValuation{xid: true}, nil); !got.Equal(Num(2)) {
		t.Errorf("got %v, want 2", got)
	}
	if got := EvalNum(n, MapValuation{xid: false}, nil); !got.Equal(Num(3)) {
		t.Errorf("got %v, want 3", got)
	}
	// Empty sum of undefined parts: x⊗1 with x false gives u.
	if got := EvalNum(NewSum(NewCondVal(x, Num(1))), MapValuation{xid: false}, nil); !got.IsUndef() {
		t.Errorf("got %v, want u", got)
	}
}

func TestExampleTwoKMeansCentroid(t *testing.T) {
	// Example 2 of the paper: M0 = Φ(o0)⊗o0 + ¬Φ(o0)⊗o2, with
	// Φ(o0) = x1 ∨ x3.
	sp := NewSpace()
	x1 := NewVar(sp.Add("x1", 0.5), "x1")
	x3 := NewVar(sp.Add("x3", 0.5), "x3")
	phi := NewOr(x1, x3)
	o0, o2 := vec.New(0, 0), vec.New(4, 0)
	m0 := NewSum(NewCondVal(phi, Vect(o0)), NewCondVal(NewNot(phi), Vect(o2)))
	got := EvalNum(m0, MapValuation{0: true, 1: false}, nil)
	if !got.Equal(Vect(o0)) {
		t.Errorf("Φ true: M0 = %v, want o0", got)
	}
	got = EvalNum(m0, MapValuation{0: false, 1: false}, nil)
	if !got.Equal(Vect(o2)) {
		t.Errorf("Φ false: M0 = %v, want o2", got)
	}
}

func TestExactProb(t *testing.T) {
	sp := NewSpace()
	x := NewVar(sp.Add("x", 0.3), "x")
	y := NewVar(sp.Add("y", 0.5), "y")
	if got := ExactProb(x, sp); !almost(got, 0.3) {
		t.Errorf("Pr[x] = %g, want 0.3", got)
	}
	if got := ExactProb(NewAnd(x, y), sp); !almost(got, 0.15) {
		t.Errorf("Pr[x ∧ y] = %g, want 0.15", got)
	}
	if got := ExactProb(NewOr(x, y), sp); !almost(got, 0.3+0.5-0.15) {
		t.Errorf("Pr[x ∨ y] = %g, want 0.65", got)
	}
	if got := ExactProb(NewNot(x), sp); !almost(got, 0.7) {
		t.Errorf("Pr[¬x] = %g, want 0.7", got)
	}
	if got := ExactProb(True, sp); !almost(got, 1) {
		t.Errorf("Pr[⊤] = %g, want 1", got)
	}
	if got := ExactProb(False, sp); !almost(got, 0) {
		t.Errorf("Pr[⊥] = %g, want 0", got)
	}
}

func TestExactProbAtom(t *testing.T) {
	// Pr[[x⊗1 ≤ y⊗2]] — with u-comparisons true unless both defined and
	// violated: the atom is false only when x true, y false is impossible
	// since 1 ≤ u … enumerate by hand: comparison false iff both defined
	// and 1 ≤ 2 fails — never. So probability 1.
	sp := NewSpace()
	x := NewVar(sp.Add("x", 0.4), "x")
	y := NewVar(sp.Add("y", 0.6), "y")
	a := NewAtom(LE, NewCondVal(x, Num(1)), NewCondVal(y, Num(2)))
	if got := ExactProb(a, sp); !almost(got, 1) {
		t.Errorf("Pr = %g, want 1", got)
	}
	// Flipped: [x⊗2 ≤ y⊗1] is false iff both x and y true.
	b := NewAtom(LE, NewCondVal(x, Num(2)), NewCondVal(y, Num(1)))
	if got := ExactProb(b, sp); !almost(got, 1-0.4*0.6) {
		t.Errorf("Pr = %g, want %g", got, 1-0.24)
	}
}

func TestExactDistribution(t *testing.T) {
	sp := NewSpace()
	x := NewVar(sp.Add("x", 0.25), "x")
	n := NewSum(NewCondVal(x, Num(10)), NewConstNum(Num(1)))
	outs := ExactDistribution(n, sp, nil)
	if len(outs) != 2 {
		t.Fatalf("got %d outcomes, want 2", len(outs))
	}
	var p11, p1 float64
	for _, o := range outs {
		switch {
		case o.Val.Equal(Num(11)):
			p11 = o.Prob
		case o.Val.Equal(Num(1)):
			p1 = o.Prob
		}
	}
	if !almost(p11, 0.25) || !almost(p1, 0.75) {
		t.Errorf("distribution {11: %g, 1: %g}, want {11: 0.25, 1: 0.75}", p11, p1)
	}
}

func TestSupport(t *testing.T) {
	sp := NewSpace()
	xid, yid, zid := sp.Add("x", 0.5), sp.Add("y", 0.5), sp.Add("z", 0.5)
	x, y := NewVar(xid, "x"), NewVar(yid, "y")
	_ = zid
	e := NewAnd(x, NewAtom(LE, NewCondVal(y, Num(1)), NewConstNum(Num(2))))
	sup := Support(e)
	if len(sup) != 2 || sup[0] != xid || sup[1] != yid {
		t.Errorf("Support = %v, want [%d %d]", sup, xid, yid)
	}
}

// TestRandomExprDeMorgan checks ¬(a ∧ b) ≡ ¬a ∨ ¬b on random expressions
// under random valuations.
func TestRandomExprDeMorgan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sp := NewSpace()
	var vars []Expr
	for i := 0; i < 6; i++ {
		vars = append(vars, NewVar(sp.Add("x", 0.5), "x"))
	}
	randExpr := func(depth int) Expr {
		var rec func(d int) Expr
		rec = func(d int) Expr {
			if d == 0 || rng.Intn(3) == 0 {
				return vars[rng.Intn(len(vars))]
			}
			switch rng.Intn(3) {
			case 0:
				return NewAnd(rec(d-1), rec(d-1))
			case 1:
				return NewOr(rec(d-1), rec(d-1))
			default:
				return NewNot(rec(d - 1))
			}
		}
		return rec(depth)
	}
	for trial := 0; trial < 200; trial++ {
		a, b := randExpr(3), randExpr(3)
		lhs := NewNot(NewAnd(a, b))
		rhs := NewOr(NewNot(a), NewNot(b))
		nu := make(MapValuation)
		for i := 0; i < sp.Len(); i++ {
			nu[VarID(i)] = rng.Intn(2) == 0
		}
		if EvalExpr(lhs, nu) != EvalExpr(rhs, nu) {
			t.Fatalf("De Morgan violated for %v vs %v under %v", lhs, rhs, nu)
		}
	}
}

func almost(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
