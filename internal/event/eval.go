package event

import (
	"enframe/internal/vec"
)

// Valuation maps random variables to truth values; it is a sample point
// ν ∈ Ω of the probability space induced by X (§3.3).
type Valuation interface {
	Value(x VarID) bool
}

// MapValuation is a Valuation backed by a map; variables not present are
// false.
type MapValuation map[VarID]bool

// Value implements Valuation.
func (m MapValuation) Value(x VarID) bool { return m[x] }

// SliceValuation is a Valuation backed by a dense slice indexed by VarID.
type SliceValuation []bool

// Value implements Valuation.
func (s SliceValuation) Value(x VarID) bool { return s[x] }

// Evaluator evaluates event expressions under one valuation, memoising on
// shared subexpression pointers so that DAG-shaped programs are evaluated in
// time linear in the number of distinct subexpressions.
type Evaluator struct {
	Metric vec.Distance
	nu     Valuation
	memoB  map[Expr]bool
	memoN  map[NumExpr]Value
}

// NewEvaluator returns an evaluator for the given valuation. A nil metric
// defaults to Euclidean distance.
func NewEvaluator(nu Valuation, metric vec.Distance) *Evaluator {
	if metric == nil {
		metric = vec.Euclidean
	}
	return &Evaluator{
		Metric: metric,
		nu:     nu,
		memoB:  make(map[Expr]bool),
		memoN:  make(map[NumExpr]Value),
	}
}

// EvalExpr computes ν(e) for a Boolean event expression.
func (ev *Evaluator) EvalExpr(e Expr) bool {
	if b, ok := ev.memoB[e]; ok {
		return b
	}
	var out bool
	switch t := e.(type) {
	case *Var:
		out = ev.nu.Value(t.X)
	case *Const:
		out = t.B
	case *Not:
		out = !ev.EvalExpr(t.E)
	case *And:
		out = true
		for _, c := range t.Es {
			if !ev.EvalExpr(c) {
				out = false
				break
			}
		}
	case *Or:
		out = false
		for _, c := range t.Es {
			if ev.EvalExpr(c) {
				out = true
				break
			}
		}
	case *Atom:
		out = Compare(t.Op, ev.EvalNum(t.L), ev.EvalNum(t.R))
	default:
		panic("event: unknown expression type")
	}
	ev.memoB[e] = out
	return out
}

// EvalNum computes ν(x) for a c-value expression.
func (ev *Evaluator) EvalNum(x NumExpr) Value {
	if v, ok := ev.memoN[x]; ok {
		return v
	}
	var out Value
	switch t := x.(type) {
	case *CondVal:
		if ev.EvalExpr(t.Guard) {
			out = t.Val
		} else {
			out = U
		}
	case *GuardNum:
		if ev.EvalExpr(t.Guard) {
			out = ev.EvalNum(t.V)
		} else {
			out = U
		}
	case *Sum:
		out = U
		for _, c := range t.Xs {
			out = Add(out, ev.EvalNum(c))
		}
	case *Prod:
		out = Num(1)
		for _, c := range t.Xs {
			out = Mul(out, ev.EvalNum(c))
		}
	case *InvOf:
		out = Inv(ev.EvalNum(t.X))
	case *PowOf:
		out = PowVal(ev.EvalNum(t.X), t.Exp)
	case *DistOf:
		out = DistVal(ev.Metric, ev.EvalNum(t.L), ev.EvalNum(t.R))
	default:
		panic("event: unknown c-value type")
	}
	ev.memoN[x] = out
	return out
}

// EvalExpr evaluates a Boolean event under one valuation with a fresh
// evaluator.
func EvalExpr(e Expr, nu Valuation) bool { return NewEvaluator(nu, nil).EvalExpr(e) }

// EvalNum evaluates a c-value under one valuation with a fresh evaluator.
func EvalNum(x NumExpr, nu Valuation, metric vec.Distance) Value {
	return NewEvaluator(nu, metric).EvalNum(x)
}

// ExactProb computes the probability that the Boolean event e is true by
// enumerating the valuations of its support. It is exponential in the size
// of the support and meant for tests, examples, and tiny instances; the
// prob package implements the real algorithms.
func ExactProb(e Expr, space *Space) float64 {
	sup := Support(e)
	var total float64
	enumerate(sup, space, func(nu MapValuation, p float64) {
		if EvalExpr(e, nu) {
			total += p
		}
	})
	return total
}

// Outcome pairs a possible value of a c-value with its probability.
type Outcome struct {
	Val  Value
	Prob float64
}

// ExactDistribution computes the discrete probability distribution of a
// c-value expression by enumeration of its support (test-sized inputs only).
// Outcomes with equal values are merged; ordering is unspecified.
func ExactDistribution(x NumExpr, space *Space, metric vec.Distance) []Outcome {
	sup := numSupport(x)
	var outs []Outcome
	enumerate(sup, space, func(nu MapValuation, p float64) {
		v := EvalNum(x, nu, metric)
		for i := range outs {
			if outs[i].Val.Equal(v) {
				outs[i].Prob += p
				return
			}
		}
		outs = append(outs, Outcome{Val: v, Prob: p})
	})
	return outs
}

func numSupport(x NumExpr) []VarID {
	// Wrap x in an atom so Support's walker visits it.
	return Support(NewAtom(LE, x, x))
}

// enumerate walks all valuations of the given variables, calling fn with
// each valuation and its probability mass.
func enumerate(vars []VarID, space *Space, fn func(MapValuation, float64)) {
	nu := make(MapValuation, len(vars))
	var rec func(i int, p float64)
	rec = func(i int, p float64) {
		if i == len(vars) {
			fn(nu, p)
			return
		}
		x := vars[i]
		px := space.Prob(x)
		if px > 0 {
			nu[x] = true
			rec(i+1, p*px)
		}
		if px < 1 {
			nu[x] = false
			rec(i+1, p*(1-px))
		}
		delete(nu, x)
	}
	rec(0, 1)
}
