package event

import (
	"math"
	"testing"
	"testing/quick"

	"enframe/internal/vec"
)

func TestUndefPropagation(t *testing.T) {
	u := U
	five := Num(5)
	if got := Add(u, five); !got.Equal(five) {
		t.Errorf("u + 5 = %v, want 5", got)
	}
	if got := Add(five, u); !got.Equal(five) {
		t.Errorf("5 + u = %v, want 5", got)
	}
	if got := Add(u, u); !got.IsUndef() {
		t.Errorf("u + u = %v, want u", got)
	}
	if got := Mul(u, five); !got.IsUndef() {
		t.Errorf("u · 5 = %v, want u", got)
	}
	if got := Mul(five, u); !got.IsUndef() {
		t.Errorf("5 · u = %v, want u", got)
	}
	if got := Inv(Num(0)); !got.IsUndef() {
		t.Errorf("0⁻¹ = %v, want u", got)
	}
	if got := Inv(u); !got.IsUndef() {
		t.Errorf("u⁻¹ = %v, want u", got)
	}
	// The paper's example: 5 · (3−3)⁻¹ = 5 · u = u.
	if got := Mul(five, Inv(Num(3-3))); !got.IsUndef() {
		t.Errorf("5 · (3-3)⁻¹ = %v, want u", got)
	}
	if got := PowVal(u, 3); !got.IsUndef() {
		t.Errorf("u^3 = %v, want u", got)
	}
}

func TestVectorUndef(t *testing.T) {
	v := Vect(vec.New(1, 2))
	if got := Add(U, v); !got.Equal(v) {
		t.Errorf("u + v = %v, want v", got)
	}
	if got := Mul(U, v); !got.IsUndef() {
		t.Errorf("u · v = %v, want u", got)
	}
	if got := DistVal(vec.Euclidean, U, v); !got.IsUndef() {
		t.Errorf("dist(u, v) = %v, want u", got)
	}
	w := Vect(vec.New(4, 6))
	if got := DistVal(vec.Euclidean, v, w); got.Kind != Scalar || got.S != 5 {
		t.Errorf("dist((1,2),(4,6)) = %v, want 5", got)
	}
	if got := Mul(Num(2), v); !got.Equal(Vect(vec.New(2, 4))) {
		t.Errorf("2 · (1,2) = %v, want (2,4)", got)
	}
}

func TestCompareWithUndef(t *testing.T) {
	// §3.2: comparisons involving u evaluate to true.
	for _, op := range []CmpOp{LE, GE, EQ, LT, GT} {
		if !Compare(op, U, Num(1)) {
			t.Errorf("u %v 1 should be true", op)
		}
		if !Compare(op, Num(1), U) {
			t.Errorf("1 %v u should be true", op)
		}
		if !Compare(op, U, U) {
			t.Errorf("u %v u should be true", op)
		}
	}
	if Compare(LT, Num(2), Num(1)) {
		t.Error("2 < 1 should be false")
	}
	if !Compare(LE, Num(1), Num(1)) {
		t.Error("1 <= 1 should be true")
	}
	if Compare(EQ, Num(1), Num(2)) {
		t.Error("1 == 2 should be false")
	}
	if !Compare(GE, Num(2), Num(1)) {
		t.Error("2 >= 1 should be true")
	}
	if !Compare(GT, Num(2), Num(1)) {
		t.Error("2 > 1 should be true")
	}
}

func TestCmpOpFlip(t *testing.T) {
	err := quick.Check(func(a, b float64) bool {
		for _, op := range []CmpOp{LE, GE, EQ, LT, GT} {
			if op.Holds(a, b) != op.Flip().Holds(b, a) {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestAddCommutesOnDefined(t *testing.T) {
	err := quick.Check(func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		return Add(Num(a), Num(b)).Equal(Add(Num(b), Num(a)))
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestValueEqualAndString(t *testing.T) {
	if !U.Equal(U) {
		t.Error("u must equal u")
	}
	if U.String() != "u" {
		t.Errorf("U.String() = %q", U.String())
	}
	if Num(1).Equal(Bool(true)) {
		t.Error("scalar must not equal boolean")
	}
	if !Vect(vec.New(1)).Equal(Vect(vec.New(1))) {
		t.Error("equal vectors must compare equal")
	}
	if Vect(vec.New(1)).Equal(Vect(vec.New(1, 2))) {
		t.Error("different-dimension vectors must differ")
	}
	if !Num(1).AlmostEqual(Num(1+1e-12), 1e-9) {
		t.Error("AlmostEqual within eps")
	}
	if Num(1).AlmostEqual(Num(1.1), 1e-9) {
		t.Error("AlmostEqual outside eps")
	}
}
