package event

import (
	"fmt"
	"sort"
	"strings"
)

// VarID identifies one of the independent Boolean random variables in the
// set X that induces the probability space (§3.3).
type VarID int

// Space holds the random variables of an event program: their names and
// their marginal probabilities of being true. Variables are independent;
// correlations between data points are expressed by the events themselves.
type Space struct {
	names []string
	probs []float64
}

// NewSpace returns an empty variable space.
func NewSpace() *Space { return &Space{} }

// Add introduces a fresh random variable with the given name and
// Pr[x = true] = p, returning its id.
func (s *Space) Add(name string, p float64) VarID {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("event: probability %g out of [0,1] for variable %q", p, name))
	}
	s.names = append(s.names, name)
	s.probs = append(s.probs, p)
	return VarID(len(s.names) - 1)
}

// Len reports the number of variables.
func (s *Space) Len() int { return len(s.names) }

// Name returns the name of variable x.
func (s *Space) Name(x VarID) string { return s.names[x] }

// Prob returns Pr[x = true].
func (s *Space) Prob(x VarID) float64 { return s.probs[x] }

// SetProb overwrites Pr[x = true].
func (s *Space) SetProb(x VarID, p float64) {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("event: probability %g out of [0,1]", p))
	}
	s.probs[x] = p
}

// Expr is a Boolean event expression (EVENT in the grammar of §3.1): a
// propositional formula over random variables, constants, and comparison
// atoms between c-values. Expressions are immutable; shared subexpressions
// are shared Go pointers.
type Expr interface {
	isExpr()
	String() string
}

// NumExpr is a conditional value expression (CVAL in the grammar of §3.1).
type NumExpr interface {
	isNum()
	String() string
}

// Var is a reference to a random variable x ∈ X.
type Var struct {
	X    VarID
	Name string
}

// TrueExpr is the constant ⊤; FalseExpr is ⊥.
type Const struct{ B bool }

// Not is ¬E.
type Not struct{ E Expr }

// And is the n-ary conjunction of its operands.
type And struct{ Es []Expr }

// Or is the n-ary disjunction of its operands.
type Or struct{ Es []Expr }

// Atom is the comparison [L op R] between two c-values.
type Atom struct {
	Op   CmpOp
	L, R NumExpr
}

func (*Var) isExpr()   {}
func (*Const) isExpr() {}
func (*Not) isExpr()   {}
func (*And) isExpr()   {}
func (*Or) isExpr()    {}
func (*Atom) isExpr()  {}

// CondVal is the c-value EVENT ⊗ VAL: Val if the guard is true, u otherwise.
// Val is a constant scalar or vector.
type CondVal struct {
	Guard Expr
	Val   Value
}

// GuardNum is the c-value EVENT ∧ CVAL: the value of V if the guard is true,
// u otherwise.
type GuardNum struct {
	Guard Expr
	V     NumExpr
}

// Sum is the n-ary Σ of c-values.
type Sum struct{ Xs []NumExpr }

// Prod is the n-ary Π of c-values.
type Prod struct{ Xs []NumExpr }

// InvOf is CVAL⁻¹.
type InvOf struct{ X NumExpr }

// PowOf is CVAL^Exp for a constant integer exponent.
type PowOf struct {
	X   NumExpr
	Exp int
}

// DistOf is dist(L, R); the metric is supplied at evaluation time.
type DistOf struct{ L, R NumExpr }

func (*CondVal) isNum()  {}
func (*GuardNum) isNum() {}
func (*Sum) isNum()      {}
func (*Prod) isNum()     {}
func (*InvOf) isNum()    {}
func (*PowOf) isNum()    {}
func (*DistOf) isNum()   {}

// True and False are the shared constant events.
var (
	True  Expr = &Const{B: true}
	False Expr = &Const{B: false}
)

// NewVar returns a variable reference expression.
func NewVar(x VarID, name string) Expr { return &Var{X: x, Name: name} }

// NewNot returns ¬e with double negation and constants simplified.
func NewNot(e Expr) Expr {
	switch t := e.(type) {
	case *Const:
		if t.B {
			return False
		}
		return True
	case *Not:
		return t.E
	}
	return &Not{E: e}
}

// NewAnd returns the conjunction of es, flattening nested conjunctions,
// dropping ⊤, short-circuiting on ⊥, and deduplicating identical pointers.
func NewAnd(es ...Expr) Expr {
	flat := make([]Expr, 0, len(es))
	seen := make(map[Expr]bool, len(es))
	for _, e := range es {
		switch t := e.(type) {
		case *Const:
			if !t.B {
				return False
			}
			continue
		case *And:
			for _, c := range t.Es {
				if !seen[c] {
					seen[c] = true
					flat = append(flat, c)
				}
			}
			continue
		}
		if !seen[e] {
			seen[e] = true
			flat = append(flat, e)
		}
	}
	switch len(flat) {
	case 0:
		return True
	case 1:
		return flat[0]
	}
	return &And{Es: flat}
}

// NewOr returns the disjunction of es, flattening nested disjunctions,
// dropping ⊥, short-circuiting on ⊤, and deduplicating identical pointers.
func NewOr(es ...Expr) Expr {
	flat := make([]Expr, 0, len(es))
	seen := make(map[Expr]bool, len(es))
	for _, e := range es {
		switch t := e.(type) {
		case *Const:
			if t.B {
				return True
			}
			continue
		case *Or:
			for _, c := range t.Es {
				if !seen[c] {
					seen[c] = true
					flat = append(flat, c)
				}
			}
			continue
		}
		if !seen[e] {
			seen[e] = true
			flat = append(flat, e)
		}
	}
	switch len(flat) {
	case 0:
		return False
	case 1:
		return flat[0]
	}
	return &Or{Es: flat}
}

// NewAtom returns the comparison event [l op r].
func NewAtom(op CmpOp, l, r NumExpr) Expr { return &Atom{Op: op, L: l, R: r} }

// NewCondVal returns guard ⊗ val.
func NewCondVal(guard Expr, val Value) NumExpr { return &CondVal{Guard: guard, Val: val} }

// NewConstNum returns the always-defined constant c-value ⊤ ⊗ val.
func NewConstNum(val Value) NumExpr { return &CondVal{Guard: True, Val: val} }

// NewGuard returns guard ∧ v, simplifying constant guards.
func NewGuard(guard Expr, v NumExpr) NumExpr {
	if c, ok := guard.(*Const); ok {
		if c.B {
			return v
		}
		return NewCondVal(False, U)
	}
	if cv, ok := v.(*CondVal); ok {
		// guard ∧ (g ⊗ v) = (guard ∧ g) ⊗ v
		return NewCondVal(NewAnd(guard, cv.Guard), cv.Val)
	}
	return &GuardNum{Guard: guard, V: v}
}

// NewSum returns Σ xs, flattening nested sums.
func NewSum(xs ...NumExpr) NumExpr {
	flat := make([]NumExpr, 0, len(xs))
	for _, x := range xs {
		if s, ok := x.(*Sum); ok {
			flat = append(flat, s.Xs...)
			continue
		}
		flat = append(flat, x)
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &Sum{Xs: flat}
}

// NewProd returns Π xs, flattening nested products.
func NewProd(xs ...NumExpr) NumExpr {
	flat := make([]NumExpr, 0, len(xs))
	for _, x := range xs {
		if p, ok := x.(*Prod); ok {
			flat = append(flat, p.Xs...)
			continue
		}
		flat = append(flat, x)
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &Prod{Xs: flat}
}

// NewInv returns x⁻¹.
func NewInv(x NumExpr) NumExpr { return &InvOf{X: x} }

// NewPow returns x^exp.
func NewPow(x NumExpr, exp int) NumExpr { return &PowOf{X: x, Exp: exp} }

// NewDist returns dist(l, r).
func NewDist(l, r NumExpr) NumExpr { return &DistOf{L: l, R: r} }

func (v *Var) String() string {
	if v.Name != "" {
		return v.Name
	}
	return fmt.Sprintf("x%d", v.X)
}

func (c *Const) String() string {
	if c.B {
		return "⊤"
	}
	return "⊥"
}

func (n *Not) String() string { return "¬" + parenthesize(n.E) }

func (a *And) String() string { return joinExprs(a.Es, " ∧ ") }
func (o *Or) String() string  { return joinExprs(o.Es, " ∨ ") }

func (a *Atom) String() string {
	return fmt.Sprintf("[%s %s %s]", a.L.String(), a.Op, a.R.String())
}

func (c *CondVal) String() string {
	return fmt.Sprintf("%s⊗%s", parenthesize(c.Guard), c.Val)
}

func (g *GuardNum) String() string {
	return fmt.Sprintf("%s∧(%s)", parenthesize(g.Guard), g.V)
}

func (s *Sum) String() string  { return joinNums(s.Xs, " + ") }
func (p *Prod) String() string { return joinNums(p.Xs, " · ") }

func (i *InvOf) String() string { return fmt.Sprintf("(%s)⁻¹", i.X) }

func (p *PowOf) String() string { return fmt.Sprintf("(%s)^%d", p.X, p.Exp) }

func (d *DistOf) String() string { return fmt.Sprintf("dist(%s, %s)", d.L, d.R) }

func parenthesize(e Expr) string {
	switch e.(type) {
	case *And, *Or:
		return "(" + e.String() + ")"
	}
	return e.String()
}

func joinExprs(es []Expr, sep string) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = parenthesize(e)
	}
	return strings.Join(parts, sep)
}

func joinNums(xs []NumExpr, sep string) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = x.String()
	}
	return strings.Join(parts, sep)
}

// Support returns the sorted set of random variables the event expression
// depends on.
func Support(e Expr) []VarID {
	set := make(map[VarID]bool)
	var walkE func(Expr)
	var walkN func(NumExpr)
	seenE := make(map[Expr]bool)
	seenN := make(map[NumExpr]bool)
	walkE = func(e Expr) {
		if e == nil || seenE[e] {
			return
		}
		seenE[e] = true
		switch t := e.(type) {
		case *Var:
			set[t.X] = true
		case *Not:
			walkE(t.E)
		case *And:
			for _, c := range t.Es {
				walkE(c)
			}
		case *Or:
			for _, c := range t.Es {
				walkE(c)
			}
		case *Atom:
			walkN(t.L)
			walkN(t.R)
		}
	}
	walkN = func(x NumExpr) {
		if x == nil || seenN[x] {
			return
		}
		seenN[x] = true
		switch t := x.(type) {
		case *CondVal:
			walkE(t.Guard)
		case *GuardNum:
			walkE(t.Guard)
			walkN(t.V)
		case *Sum:
			for _, c := range t.Xs {
				walkN(c)
			}
		case *Prod:
			for _, c := range t.Xs {
				walkN(c)
			}
		case *InvOf:
			walkN(t.X)
		case *PowOf:
			walkN(t.X)
		case *DistOf:
			walkN(t.L)
			walkN(t.R)
		}
	}
	walkE(e)
	out := make([]VarID, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
