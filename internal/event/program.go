package event

import (
	"fmt"
	"sort"
	"strings"
)

// DeclKind distinguishes Boolean event declarations from c-value
// declarations in an event program.
type DeclKind uint8

const (
	// BoolDecl declares a Boolean event (EID ≡ EVENT).
	BoolDecl DeclKind = iota
	// NumDecl declares a named c-value (EID ≡ CVAL).
	NumDecl
)

// Decl is one grounded declaration of an event program: a unique name bound
// to either a Boolean event or a c-value. Event programs require
// immutability — each name is assigned exactly once (§3.4).
type Decl struct {
	Name string
	Kind DeclKind
	E    Expr    // set when Kind == BoolDecl
	N    NumExpr // set when Kind == NumDecl
}

// Program is a grounded event program: the variable space plus an ordered
// sequence of immutable declarations. ∀-loops of the paper's event language
// are grounded at construction time (bounded ranges are known statically);
// sharing between iterations is preserved through shared subexpression
// pointers.
type Program struct {
	Space  *Space
	Decls  []Decl
	byName map[string]int
}

// NewProgram returns an empty event program over the given variable space.
func NewProgram(space *Space) *Program {
	return &Program{Space: space, byName: make(map[string]int)}
}

// DeclareBool binds name to a Boolean event. It panics when the name is
// already bound: event declarations are immutable.
func (p *Program) DeclareBool(name string, e Expr) Expr {
	p.bind(name, Decl{Name: name, Kind: BoolDecl, E: e})
	return e
}

// DeclareNum binds name to a c-value expression.
func (p *Program) DeclareNum(name string, x NumExpr) NumExpr {
	p.bind(name, Decl{Name: name, Kind: NumDecl, N: x})
	return x
}

func (p *Program) bind(name string, d Decl) {
	if _, dup := p.byName[name]; dup {
		panic(fmt.Sprintf("event: duplicate declaration of %q (event identifiers are immutable)", name))
	}
	p.byName[name] = len(p.Decls)
	p.Decls = append(p.Decls, d)
}

// Lookup returns the declaration bound to name.
func (p *Program) Lookup(name string) (Decl, bool) {
	i, ok := p.byName[name]
	if !ok {
		return Decl{}, false
	}
	return p.Decls[i], true
}

// Bool returns the Boolean event bound to name, panicking when absent or of
// the wrong kind. Use for programmatically constructed programs where the
// name is known to exist.
func (p *Program) Bool(name string) Expr {
	d, ok := p.Lookup(name)
	if !ok || d.Kind != BoolDecl {
		panic(fmt.Sprintf("event: no Boolean event named %q", name))
	}
	return d.E
}

// Num returns the c-value bound to name, panicking when absent or of the
// wrong kind.
func (p *Program) Num(name string) NumExpr {
	d, ok := p.Lookup(name)
	if !ok || d.Kind != NumDecl {
		panic(fmt.Sprintf("event: no c-value named %q", name))
	}
	return d.N
}

// Names returns all declared names in declaration order.
func (p *Program) Names() []string {
	out := make([]string, len(p.Decls))
	for i, d := range p.Decls {
		out[i] = d.Name
	}
	return out
}

// NamesMatching returns the declared names for which keep returns true,
// sorted lexicographically.
func (p *Program) NamesMatching(keep func(string) bool) []string {
	var out []string
	for _, d := range p.Decls {
		if keep(d.Name) {
			out = append(out, d.Name)
		}
	}
	sort.Strings(out)
	return out
}

// String renders the program one declaration per line, for debugging and
// the CLI's -dump-events mode.
func (p *Program) String() string {
	var b strings.Builder
	for _, d := range p.Decls {
		switch d.Kind {
		case BoolDecl:
			fmt.Fprintf(&b, "%s ≡ %s\n", d.Name, d.E)
		case NumDecl:
			fmt.Fprintf(&b, "%s ≡ %s\n", d.Name, d.N)
		}
	}
	return b.String()
}
