package data

import (
	"testing"
)

func TestGenerateShape(t *testing.T) {
	rs := Generate(Config{N: 500, Seed: 1})
	if len(rs) != 500 {
		t.Fatalf("generated %d readings", len(rs))
	}
	regimes := map[string]int{}
	for i, r := range rs {
		if r.Hour != i {
			t.Fatalf("reading %d has hour %d", i, r.Hour)
		}
		if r.Load < 0 || r.PD < 0 {
			t.Fatalf("negative reading %+v", r)
		}
		regimes[r.Regime]++
		if p := r.Point(); p.Dim() != 2 || p[0] != r.Load || p[1] != r.PD {
			t.Fatalf("Point() mismatch: %v vs %+v", p, r)
		}
	}
	if len(regimes) != len(DefaultRegimes) {
		t.Errorf("only %d regimes appear in 500 readings: %v", len(regimes), regimes)
	}
	// Weights order the regime frequencies roughly.
	if regimes["healthy/low-load"] < regimes["fault-under-stress"] {
		t.Errorf("regime weights not respected: %v", regimes)
	}
}

func TestGenerateReproducible(t *testing.T) {
	a := Points(50, 7)
	b := Points(50, 7)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("same seed produced different data")
		}
	}
	c := Points(50, 8)
	same := true
	for i := range a {
		if !a[i].Equal(c[i]) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestRegimesSeparate(t *testing.T) {
	// Faulty regimes must have clearly higher discharge counts than
	// healthy ones — otherwise the clustering examples are meaningless.
	rs := Generate(Config{N: 2000, Seed: 2})
	var healthyPD, faultPD, nh, nf float64
	for _, r := range rs {
		switch r.Regime {
		case "healthy/low-load", "healthy/peak-load":
			healthyPD += r.PD
			nh++
		default:
			faultPD += r.PD
			nf++
		}
	}
	if healthyPD/nh >= faultPD/nf {
		t.Errorf("healthy mean PD %.1f not below faulty mean PD %.1f", healthyPD/nh, faultPD/nf)
	}
}
