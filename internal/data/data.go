// Package data generates a synthetic stand-in for the energy-network data
// set of the paper's evaluation [28]: hourly pairs of (partial-discharge
// occurrence count, average network load) gathered from partial-discharge
// and load sensors in distribution substations. The real IPEC data set is
// proprietary; the generator draws points from a small mixture of operating
// regimes with seeded Gaussian noise, which preserves everything the
// benchmarks exercise — cluster structure in a 2-D feature space. See
// DESIGN.md "Substitutions".
package data

import (
	"math"
	"math/rand"

	"enframe/internal/vec"
)

// Regime is one operating mode of the monitored network; points scatter
// around its centre.
type Regime struct {
	// Name describes the regime for documentation and examples.
	Name string
	// MeanLoad is the average network load (arbitrary units, ~0–100).
	MeanLoad float64
	// MeanPD is the hourly partial-discharge count.
	MeanPD float64
	// Spread is the standard deviation of both coordinates.
	Spread float64
	// Weight is the relative share of readings from this regime.
	Weight float64
}

// DefaultRegimes models a distribution network: healthy operation at
// moderate load, load peaks, incipient insulation faults (discharges at
// normal load), and faults under stress (discharges tracking load).
var DefaultRegimes = []Regime{
	{Name: "healthy/low-load", MeanLoad: 25, MeanPD: 2, Spread: 4, Weight: 0.35},
	{Name: "healthy/peak-load", MeanLoad: 70, MeanPD: 4, Spread: 6, Weight: 0.3},
	{Name: "incipient-fault", MeanLoad: 30, MeanPD: 45, Spread: 7, Weight: 0.2},
	{Name: "fault-under-stress", MeanLoad: 75, MeanPD: 70, Spread: 8, Weight: 0.15},
}

// Config parameterises generation.
type Config struct {
	// N is the number of hourly readings to generate.
	N int
	// Regimes defaults to DefaultRegimes.
	Regimes []Regime
	// Seed drives all randomness; runs are reproducible.
	Seed int64
}

// Reading is one hour of aggregated sensor data.
type Reading struct {
	Hour   int
	Load   float64
	PD     float64
	Regime string
}

// Point returns the reading as a feature vector (load, pd).
func (r Reading) Point() vec.Vec { return vec.New(r.Load, r.PD) }

// Generate produces N readings.
func Generate(cfg Config) []Reading {
	regimes := cfg.Regimes
	if regimes == nil {
		regimes = DefaultRegimes
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	total := 0.0
	for _, rg := range regimes {
		total += rg.Weight
	}
	out := make([]Reading, cfg.N)
	for i := range out {
		x := rng.Float64() * total
		var rg Regime
		for _, cand := range regimes {
			if x < cand.Weight {
				rg = cand
				break
			}
			x -= cand.Weight
			rg = cand
		}
		load := rg.MeanLoad + rng.NormFloat64()*rg.Spread
		pd := rg.MeanPD + rng.NormFloat64()*rg.Spread
		// Discharge counts and loads are non-negative.
		out[i] = Reading{
			Hour:   i,
			Load:   math.Max(0, load),
			PD:     math.Max(0, pd),
			Regime: rg.Name,
		}
	}
	return out
}

// Points generates N readings and returns just their feature vectors —
// the common entry point for the benchmarks.
func Points(n int, seed int64) []vec.Vec {
	rs := Generate(Config{N: n, Seed: seed})
	pts := make([]vec.Vec, len(rs))
	for i, r := range rs {
		pts[i] = r.Point()
	}
	return pts
}
