package cluster

import (
	"math/rand"
	"testing"

	"enframe/internal/event"
	"enframe/internal/vec"
)

func twoBlobs(rng *rand.Rand, n int) []vec.Vec {
	pts := make([]vec.Vec, n)
	for i := range pts {
		cx := 0.0
		if i >= n/2 {
			cx = 100
		}
		pts[i] = vec.New(cx+rng.Float64()*5, rng.Float64()*5)
	}
	return pts
}

func TestKMedoidsSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 20
	pts := twoBlobs(rng, n)
	r := KMedoids(pts, nil, 2, 4, []int{0, n - 1}, nil)
	for l := 0; l < n; l++ {
		wantCluster := 0
		if l >= n/2 {
			wantCluster = 1
		}
		if !r.InCl[wantCluster][l] {
			t.Errorf("object %d not in cluster %d", l, wantCluster)
		}
		if r.InCl[1-wantCluster][l] {
			t.Errorf("object %d in both clusters", l)
		}
	}
	for i := 0; i < 2; i++ {
		medoids := 0
		for l := 0; l < n; l++ {
			if r.Centre[i][l] {
				medoids++
				if !r.InCl[i][l] {
					t.Errorf("medoid %d of cluster %d is not a member", l, i)
				}
			}
		}
		if medoids != 1 {
			t.Errorf("cluster %d has %d medoids", i, medoids)
		}
	}
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 20
	pts := twoBlobs(rng, n)
	r := KMeans(pts, nil, 2, 4, []int{0, n - 1}, nil)
	for l := 0; l < n; l++ {
		wantCluster := 0
		if l >= n/2 {
			wantCluster = 1
		}
		if !r.InCl[wantCluster][l] {
			t.Errorf("object %d not in cluster %d", l, wantCluster)
		}
	}
	for i, c := range r.Centroids {
		if c.Kind != event.Vector {
			t.Fatalf("centroid %d is %v", i, c)
		}
	}
	if r.Centroids[0].V[0] > 50 || r.Centroids[1].V[0] < 50 {
		t.Errorf("centroids %v / %v not separated", r.Centroids[0], r.Centroids[1])
	}
}

func TestAbsentObjectsIgnored(t *testing.T) {
	pts := []vec.Vec{vec.New(0), vec.New(1), vec.New(50), vec.New(51)}
	present := []bool{true, false, true, true}
	r := KMedoids(pts, present, 2, 3, []int{0, 2}, nil)
	for i := 0; i < 2; i++ {
		if r.InCl[i][1] || r.Centre[i][1] {
			t.Errorf("absent object assigned or elected in cluster %d", i)
		}
	}
}

func TestAbsentInitialMedoid(t *testing.T) {
	// The cluster with an absent initial medoid has an undefined medoid;
	// comparisons against u hold, so every object lands in the first
	// cluster after tie-breaking.
	pts := []vec.Vec{vec.New(0), vec.New(1), vec.New(2)}
	present := []bool{true, true, false}
	r := KMedoids(pts, present, 2, 1, []int{2, 0}, nil)
	if !r.InCl[0][0] || !r.InCl[0][1] {
		t.Errorf("objects should fall into cluster 0 (undefined medoid): %v", r.InCl)
	}
}

func TestEmptyWorld(t *testing.T) {
	pts := []vec.Vec{vec.New(0), vec.New(1)}
	present := []bool{false, false}
	r := KMedoids(pts, present, 2, 2, []int{0, 1}, nil)
	for i := range r.Centre {
		for l := range r.Centre[i] {
			if r.Centre[i][l] || r.InCl[i][l] {
				t.Error("empty world must produce no assignments")
			}
		}
	}
}

func TestBreakTies(t *testing.T) {
	m := [][]bool{
		{true, true, false},
		{true, false, true},
	}
	breakTies2(m) // keep first true per column
	want := [][]bool{
		{true, true, false},
		{false, false, true},
	}
	for i := range want {
		for l := range want[i] {
			if m[i][l] != want[i][l] {
				t.Fatalf("breakTies2[%d][%d] = %t", i, l, m[i][l])
			}
		}
	}
	m2 := [][]bool{{true, true, false}, {false, true, true}}
	breakTies1(m2) // keep first true per row
	if !m2[0][0] || m2[0][1] || m2[1][2] || !m2[1][1] {
		t.Fatalf("breakTies1 = %v", m2)
	}
}

func TestMCLTwoTriangles(t *testing.T) {
	// Two triangles bridged by one edge; MCL separates them.
	w := make([][]float64, 6)
	for i := range w {
		w[i] = make([]float64, 6)
		w[i][i] = 1
	}
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 2}, {3, 4}, {3, 5}, {4, 5}, {2, 3}} {
		w[e[0]][e[1]], w[e[1]][e[0]] = 1, 1
	}
	r := MCL(MCLFromWeights(w), 2, 6)
	if !r.SameCluster(0, 1, 0.05) || !r.SameCluster(1, 2, 0.05) {
		t.Error("first triangle not clustered together")
	}
	if !r.SameCluster(3, 4, 0.05) || !r.SameCluster(4, 5, 0.05) {
		t.Error("second triangle not clustered together")
	}
	if r.SameCluster(0, 5, 0.05) {
		t.Error("triangles merged")
	}
}

func TestMCLStochasticRows(t *testing.T) {
	// After inflation each normalised row of defined entries sums to 1.
	w := [][]float64{{1, 0.5}, {0.5, 1}}
	r := MCL(MCLFromWeights(w), 2, 3)
	for i := range r.M {
		sum := 0.0
		for j := range r.M[i] {
			if r.M[i][j].Kind == event.Scalar {
				sum += r.M[i][j].S
			}
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("row %d sums to %g", i, sum)
		}
	}
}
