package cluster

import (
	"enframe/internal/event"
	"enframe/internal/vec"
)

// KMeansResult holds the final state of one k-means run.
type KMeansResult struct {
	// InCl[i][l] reports that object l is assigned to cluster i.
	InCl [][]bool
	// Centroids[i] is the final centroid of cluster i (u for a cluster
	// that ended up empty).
	Centroids []event.Value
}

// KMeans runs the user program of Figure 2 on the objects marked present.
// Initial centroids are the positions of the init objects (u when absent).
// A nil present slice means all objects exist.
func KMeans(points []vec.Vec, present []bool, k, iter int, init []int, metric vec.Distance) KMeansResult {
	if metric == nil {
		metric = vec.Euclidean
	}
	n := len(points)
	if present == nil {
		present = allPresent(n)
	}

	centroids := make([]event.Value, k)
	for i := 0; i < k; i++ {
		if present[init[i]] {
			centroids[i] = event.Vect(points[init[i]])
		} else {
			centroids[i] = event.U
		}
	}

	inCl := newBoolMatrix(k, n)
	for it := 0; it < iter; it++ {
		// Assignment phase.
		for i := 0; i < k; i++ {
			for l := 0; l < n; l++ {
				if !present[l] {
					inCl[i][l] = false
					continue
				}
				ol := event.Vect(points[l])
				di := event.DistVal(metric, ol, centroids[i])
				in := true
				for j := 0; j < k; j++ {
					dj := event.DistVal(metric, ol, centroids[j])
					if !event.Compare(event.LE, di, dj) {
						in = false
						break
					}
				}
				inCl[i][l] = in
			}
		}
		breakTies2(inCl)

		// Update phase: M[i] = (Σ InCl[i][l] ⊗ 1)⁻¹ · Σ InCl[i][l] ∧ O_l.
		for i := 0; i < k; i++ {
			count := event.U
			sum := event.U
			for l := 0; l < n; l++ {
				if inCl[i][l] {
					count = event.Add(count, event.Num(1))
					sum = event.Add(sum, event.Vect(points[l]))
				}
			}
			centroids[i] = event.Mul(event.Inv(count), sum)
		}
	}
	return KMeansResult{InCl: inCl, Centroids: centroids}
}
