package cluster

import (
	"enframe/internal/event"
)

// MCLResult is the final stochastic matrix of a Markov clustering run.
type MCLResult struct {
	// M[i][j] is the flow from node j towards attractor i (u when the
	// column normalisation was undefined).
	M [][]event.Value
}

// MCL runs the user program of Figure 3: iter alternations of expansion
// (matrix squaring) and inflation (Hadamard power r followed by column
// rescaling). Entries are extended values so that undefined input entries
// propagate per §3.2 (in particular a zero normalisation sum inverts to u).
func MCL(m [][]event.Value, r, iter int) MCLResult {
	n := len(m)
	cur := make([][]event.Value, n)
	for i := range cur {
		cur[i] = append([]event.Value(nil), m[i]...)
	}
	next := make([][]event.Value, n)
	for i := range next {
		next[i] = make([]event.Value, n)
	}
	for it := 0; it < iter; it++ {
		// Expansion: N[i][j] = Σ_k M[i][k] · M[k][j].
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				sum := event.U
				for k := 0; k < n; k++ {
					sum = event.Add(sum, event.Mul(cur[i][k], cur[k][j]))
				}
				next[i][j] = sum
			}
		}
		// Inflation: M[i][j] = N[i][j]^r · (Σ_k N[i][k]^r)⁻¹.
		//
		// Figure 3 normalises along k of N[i][k]; with the convention that
		// M[i][j] is the flow from j to i this is the column sum of the
		// transposed orientation — we follow the program text literally.
		for i := 0; i < n; i++ {
			norm := event.U
			for k := 0; k < n; k++ {
				norm = event.Add(norm, event.PowVal(next[i][k], r))
			}
			inv := event.Inv(norm)
			for j := 0; j < n; j++ {
				cur[i][j] = event.Mul(event.PowVal(next[i][j], r), inv)
			}
		}
	}
	return MCLResult{M: cur}
}

// MCLFromWeights builds the extended-value matrix of certain edge weights.
func MCLFromWeights(w [][]float64) [][]event.Value {
	m := make([][]event.Value, len(w))
	for i := range w {
		m[i] = make([]event.Value, len(w[i]))
		for j := range w[i] {
			m[i][j] = event.Num(w[i][j])
		}
	}
	return m
}

// Attractor returns the node that dominates node i's flow (the argmax of
// row i), or -1 when the row is entirely undefined. After convergence the
// attractor identifies i's cluster.
func (r MCLResult) Attractor(i int) int {
	best, bestFlow := -1, 0.0
	for j := range r.M[i] {
		if f := r.M[i][j]; f.Kind == event.Scalar && f.S > bestFlow {
			best, bestFlow = j, f.S
		}
	}
	return best
}

// SameCluster reports whether nodes i and j share an attractor whose flow
// exceeds the threshold in both rows.
func (r MCLResult) SameCluster(i, j int, threshold float64) bool {
	ai := r.Attractor(i)
	if ai < 0 || ai != r.Attractor(j) {
		return false
	}
	fi, fj := r.M[i][ai], r.M[j][ai]
	return fi.Kind == event.Scalar && fj.Kind == event.Scalar &&
		fi.S > threshold && fj.S > threshold
}
