// Package cluster implements the three clustering algorithms of the paper
// (§2.1) — k-medoids, k-means, and Markov clustering — as deterministic,
// per-world procedures that follow the user programs of Figures 1–3 exactly,
// including the undefined-value semantics of §3.2 (distances to an undefined
// medoid compare as true, empty reductions are undefined, ties break towards
// the first index). The naïve possible-worlds baseline iterates these over
// all valuations.
package cluster

import (
	"enframe/internal/event"
	"enframe/internal/vec"
)

// KMedoidsResult holds the final state of one k-medoids run: cluster
// membership and medoid selection per (cluster, object), indexed by the
// original object ids. Entries for absent objects are false.
type KMedoidsResult struct {
	// InCl[i][l] reports that object l is assigned to cluster i.
	InCl [][]bool
	// Centre[i][l] reports that object l is the medoid of cluster i.
	Centre [][]bool
}

// KMedoids runs the user program of Figure 1 on the objects marked present,
// with initial medoids init (object indices; an absent initial medoid makes
// that cluster's medoid undefined, as Φ(o_π(i)) ⊗ o_π(i) evaluates to u).
// A nil present slice means all objects exist.
func KMedoids(points []vec.Vec, present []bool, k, iter int, init []int, metric vec.Distance) KMedoidsResult {
	if metric == nil {
		metric = vec.Euclidean
	}
	n := len(points)
	if present == nil {
		present = allPresent(n)
	}

	// Medoids as extended values: a position or u.
	medoids := make([]event.Value, k)
	for i := 0; i < k; i++ {
		if present[init[i]] {
			medoids[i] = event.Vect(points[init[i]])
		} else {
			medoids[i] = event.U
		}
	}

	inCl := newBoolMatrix(k, n)
	centre := newBoolMatrix(k, n)
	distSum := make([][]event.Value, k)
	for i := range distSum {
		distSum[i] = make([]event.Value, n)
	}

	for it := 0; it < iter; it++ {
		// Assignment phase: InCl[i][l] = ⋀_j [dist(O_l, M_i) ≤ dist(O_l, M_j)].
		for i := 0; i < k; i++ {
			for l := 0; l < n; l++ {
				if !present[l] {
					inCl[i][l] = false
					continue
				}
				ol := event.Vect(points[l])
				di := event.DistVal(metric, ol, medoids[i])
				in := true
				for j := 0; j < k; j++ {
					dj := event.DistVal(metric, ol, medoids[j])
					if !event.Compare(event.LE, di, dj) {
						in = false
						break
					}
				}
				inCl[i][l] = in
			}
		}
		breakTies2(inCl)

		// Update phase: DistSum[i][l] = Σ_{p: InCl[i][p]} dist(O_l, O_p).
		for i := 0; i < k; i++ {
			for l := 0; l < n; l++ {
				if !present[l] {
					distSum[i][l] = event.U
					continue
				}
				sum := event.U
				for p := 0; p < n; p++ {
					if inCl[i][p] {
						sum = event.Add(sum, event.DistVal(metric, event.Vect(points[l]), event.Vect(points[p])))
					}
				}
				distSum[i][l] = sum
			}
		}
		// Centre[i][l] = ⋀_p [DistSum[i][l] ≤ DistSum[i][p]], over present
		// objects only (the event encoding guards absent competitors).
		for i := 0; i < k; i++ {
			for l := 0; l < n; l++ {
				if !present[l] {
					centre[i][l] = false
					continue
				}
				c := true
				for p := 0; p < n; p++ {
					if !present[p] {
						continue
					}
					if !event.Compare(event.LE, distSum[i][l], distSum[i][p]) {
						c = false
						break
					}
				}
				centre[i][l] = c
			}
		}
		breakTies1(centre)

		// Elect new medoids: M[i] = Σ_{l: Centre[i][l]} O_l (exactly one
		// term after tie-breaking, or u for an empty selection).
		for i := 0; i < k; i++ {
			m := event.U
			for l := 0; l < n; l++ {
				if centre[i][l] {
					m = event.Add(m, event.Vect(points[l]))
				}
			}
			medoids[i] = m
		}
	}
	return KMedoidsResult{InCl: inCl, Centre: centre}
}

// breakTies2 keeps, for each fixed object l, only the first cluster i with
// M[i][l] true (§2.2).
func breakTies2(m [][]bool) {
	if len(m) == 0 {
		return
	}
	for l := 0; l < len(m[0]); l++ {
		seen := false
		for i := 0; i < len(m); i++ {
			if m[i][l] {
				if seen {
					m[i][l] = false
				}
				seen = true
			}
		}
	}
}

// breakTies1 keeps, for each fixed cluster i, only the first object l with
// M[i][l] true (§2.2).
func breakTies1(m [][]bool) {
	for i := range m {
		seen := false
		for l := range m[i] {
			if m[i][l] {
				if seen {
					m[i][l] = false
				}
				seen = true
			}
		}
	}
}

func newBoolMatrix(k, n int) [][]bool {
	m := make([][]bool, k)
	for i := range m {
		m[i] = make([]bool, n)
	}
	return m
}

func allPresent(n int) []bool {
	p := make([]bool, n)
	for i := range p {
		p[i] = true
	}
	return p
}
