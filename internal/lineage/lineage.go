// Package lineage models uncertain data points and generates the correlation
// schemes of the paper's evaluation (§5 "Uncertainty"): positive
// correlations (disjunctions of l positive literals), mutex sets of
// cardinality at most m, and conditional correlations shaped as a Markov
// chain, plus independent lineage and certain points. Points are divided
// into groups that share identical lineage (group size 4 in the paper),
// which is realistic for uncertain time-series sensor data.
package lineage

import (
	"fmt"
	"math/rand"

	"enframe/internal/event"
	"enframe/internal/vec"
)

// Object is an uncertain data point: a fixed position in the feature space
// whose existence is conditioned on a Boolean event over the random
// variables of the space (Φ(o) in the paper).
type Object struct {
	ID      int
	Pos     vec.Vec
	Lineage event.Expr
}

// Scheme selects one of the correlation patterns of §5.
type Scheme uint8

const (
	// Independent gives every group its own fresh random variable.
	Independent Scheme = iota
	// Positive makes events disjunctions of L distinct positive literals
	// drawn from a pool of NumVars variables: points are positively
	// correlated or independent.
	Positive
	// Mutex partitions groups into sets of cardinality at most M; within
	// a set any two points are mutually exclusive, across sets
	// independent.
	Mutex
	// Conditional chains groups as a Markov chain: Φ_{i+1} =
	// (Φ_i ∧ xt_{i+1}) ∨ (¬Φ_i ∧ xf_{i+1}), introducing two fresh
	// variables per group.
	Conditional
)

func (s Scheme) String() string {
	switch s {
	case Independent:
		return "independent"
	case Positive:
		return "positive"
	case Mutex:
		return "mutex"
	case Conditional:
		return "conditional"
	}
	return fmt.Sprintf("Scheme(%d)", uint8(s))
}

// Config parameterises lineage generation.
type Config struct {
	Scheme Scheme
	// GroupSize is the number of consecutive points sharing identical
	// lineage; the paper uses 4. Zero defaults to 4.
	GroupSize int
	// NumVars is the size of the variable pool for the Positive scheme
	// (the v axis of Fig. 6).
	NumVars int
	// L is the number of positive literals per event in the Positive
	// scheme (l = 8 in the paper).
	L int
	// M is the maximum mutex-set cardinality (m = 12 in the paper).
	M int
	// CertainFraction is the fraction c of points whose lineage is ⊤.
	CertainFraction float64
	// ProbLow and ProbHigh bound the marginal probabilities of the random
	// variables; the paper draws them uniformly from [0.5, 0.8]. Zero
	// values default to that range.
	ProbLow, ProbHigh float64
	// Seed drives all random choices; runs are reproducible.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.GroupSize <= 0 {
		c.GroupSize = 4
	}
	if c.ProbLow == 0 && c.ProbHigh == 0 {
		c.ProbLow, c.ProbHigh = 0.5, 0.8
	}
	if c.L <= 0 {
		c.L = 8
	}
	if c.M <= 0 {
		c.M = 12
	}
	return c
}

// Attach builds uncertain objects from the given positions under the
// configured correlation scheme, returning the objects and the variable
// space their lineage ranges over.
func Attach(points []vec.Vec, cfg Config) ([]Object, *event.Space, error) {
	cfg = cfg.withDefaults()
	if cfg.CertainFraction < 0 || cfg.CertainFraction > 1 {
		return nil, nil, fmt.Errorf("lineage: certain fraction %g out of [0,1]", cfg.CertainFraction)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	space := event.NewSpace()
	newVar := func(name string) event.Expr {
		p := cfg.ProbLow + rng.Float64()*(cfg.ProbHigh-cfg.ProbLow)
		id := space.Add(name, p)
		return event.NewVar(id, name)
	}

	nGroups := (len(points) + cfg.GroupSize - 1) / cfg.GroupSize
	certainGroups := int(cfg.CertainFraction * float64(nGroups))
	certain := make([]bool, nGroups)
	for _, g := range rng.Perm(nGroups)[:certainGroups] {
		certain[g] = true
	}

	groupEvents := make([]event.Expr, nGroups)
	uncertainIdx := make([]int, 0, nGroups)
	for g := 0; g < nGroups; g++ {
		if certain[g] {
			groupEvents[g] = event.True
		} else {
			uncertainIdx = append(uncertainIdx, g)
		}
	}

	switch cfg.Scheme {
	case Independent:
		for _, g := range uncertainIdx {
			groupEvents[g] = newVar(fmt.Sprintf("x%d", g))
		}

	case Positive:
		v := cfg.NumVars
		if v <= 0 {
			return nil, nil, fmt.Errorf("lineage: positive scheme requires NumVars > 0")
		}
		pool := make([]event.Expr, v)
		for i := range pool {
			pool[i] = newVar(fmt.Sprintf("x%d", i))
		}
		l := cfg.L
		if l > v {
			l = v
		}
		for _, g := range uncertainIdx {
			lits := make([]event.Expr, 0, l)
			for _, i := range rng.Perm(v)[:l] {
				lits = append(lits, pool[i])
			}
			groupEvents[g] = event.NewOr(lits...)
		}

	case Mutex:
		// Φ(g_j) = x_j ∧ ¬x_1 ∧ … ∧ ¬x_{j-1} within each mutex set: at
		// most one member exists in any world, members of different sets
		// are independent.
		for start := 0; start < len(uncertainIdx); start += cfg.M {
			end := start + cfg.M
			if end > len(uncertainIdx) {
				end = len(uncertainIdx)
			}
			var prior []event.Expr
			for j := start; j < end; j++ {
				g := uncertainIdx[j]
				x := newVar(fmt.Sprintf("x%d_%d", start/cfg.M, j-start))
				conj := make([]event.Expr, 0, len(prior)+1)
				conj = append(conj, x)
				for _, pr := range prior {
					conj = append(conj, event.NewNot(pr))
				}
				groupEvents[g] = event.NewAnd(conj...)
				prior = append(prior, x)
			}
		}

	case Conditional:
		var prev event.Expr
		for i, g := range uncertainIdx {
			if i == 0 {
				prev = newVar("x0")
				groupEvents[g] = prev
				continue
			}
			xt := newVar(fmt.Sprintf("xt%d", i))
			xf := newVar(fmt.Sprintf("xf%d", i))
			cur := event.NewOr(
				event.NewAnd(prev, xt),
				event.NewAnd(event.NewNot(prev), xf),
			)
			groupEvents[g] = cur
			prev = cur
		}

	default:
		return nil, nil, fmt.Errorf("lineage: unknown scheme %v", cfg.Scheme)
	}

	objs := make([]Object, len(points))
	for i, p := range points {
		objs[i] = Object{ID: i, Pos: p, Lineage: groupEvents[i/cfg.GroupSize]}
	}
	return objs, space, nil
}

// Events extracts the lineage events of the objects, indexed by object.
func Events(objs []Object) []event.Expr {
	out := make([]event.Expr, len(objs))
	for i, o := range objs {
		out[i] = o.Lineage
	}
	return out
}

// Positions extracts the positions of the objects, indexed by object.
func Positions(objs []Object) []vec.Vec {
	out := make([]vec.Vec, len(objs))
	for i, o := range objs {
		out[i] = o.Pos
	}
	return out
}

// Certain builds objects that exist in every world (lineage ⊤) over an
// empty variable space extension; convenient for deterministic baselines.
func Certain(points []vec.Vec) []Object {
	objs := make([]Object, len(points))
	for i, p := range points {
		objs[i] = Object{ID: i, Pos: p, Lineage: event.True}
	}
	return objs
}
