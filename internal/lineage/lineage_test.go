package lineage

import (
	"math"
	"testing"

	"enframe/internal/event"
	"enframe/internal/vec"
	"enframe/internal/worlds"
)

func points(n int) []vec.Vec {
	pts := make([]vec.Vec, n)
	for i := range pts {
		pts[i] = vec.New(float64(i), 0)
	}
	return pts
}

func TestGroupsShareLineage(t *testing.T) {
	objs, _, err := Attach(points(8), Config{Scheme: Independent, GroupSize: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if objs[0].Lineage != objs[3].Lineage {
		t.Error("objects of one group must share lineage")
	}
	if objs[0].Lineage == objs[4].Lineage {
		t.Error("objects of different groups must not share lineage")
	}
}

func TestProbabilityRange(t *testing.T) {
	_, space, err := Attach(points(16), Config{Scheme: Independent, GroupSize: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < space.Len(); i++ {
		p := space.Prob(event.VarID(i))
		if p < 0.5 || p > 0.8 {
			t.Errorf("variable %d has probability %g outside the paper's [0.5, 0.8]", i, p)
		}
	}
}

func TestPositiveScheme(t *testing.T) {
	objs, space, err := Attach(points(12), Config{
		Scheme: Positive, GroupSize: 4, NumVars: 6, L: 3, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if space.Len() != 6 {
		t.Errorf("space has %d variables, want 6", space.Len())
	}
	// Positive events are monotone: setting more variables true never
	// destroys an object.
	for _, o := range objs {
		allFalse := event.EvalExpr(o.Lineage, event.MapValuation{})
		allTrue := event.EvalExpr(o.Lineage, constantValuation(space, true))
		if allFalse {
			t.Error("positive event true under the all-false valuation")
		}
		if !allTrue {
			t.Error("positive event false under the all-true valuation")
		}
	}
}

func TestMutexScheme(t *testing.T) {
	objs, space, err := Attach(points(9), Config{
		Scheme: Mutex, GroupSize: 1, M: 3, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Within a mutex set, at most one object exists in any world.
	worlds.Enumerate(space, func(nu event.SliceValuation, p float64) bool {
		for set := 0; set < 3; set++ {
			alive := 0
			for j := 0; j < 3; j++ {
				if event.EvalExpr(objs[set*3+j].Lineage, nu) {
					alive++
				}
			}
			if alive > 1 {
				t.Fatalf("mutex set %d has %d objects alive in world %v", set, alive, nu)
			}
		}
		return true
	})
}

func TestConditionalSchemeIsAMarkovChain(t *testing.T) {
	objs, space, err := Attach(points(4), Config{
		Scheme: Conditional, GroupSize: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 fresh variables per group after the first: 1 + 2·3.
	if space.Len() != 7 {
		t.Errorf("space has %d variables, want 7", space.Len())
	}
	// Each Φ_{i+1} depends on Φ_i: the support of consecutive events
	// overlaps through the chain.
	for i := 0; i+1 < len(objs); i++ {
		s1 := event.Support(objs[i].Lineage)
		s2 := event.Support(objs[i+1].Lineage)
		if len(s2) <= len(s1) {
			t.Errorf("chain support must grow: |S%d| = %d, |S%d| = %d", i, len(s1), i+1, len(s2))
		}
	}
}

func TestCertainFraction(t *testing.T) {
	objs, space, err := Attach(points(20), Config{
		Scheme: Independent, GroupSize: 1, CertainFraction: 0.5, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	certain := 0
	for _, o := range objs {
		if o.Lineage == event.True {
			certain++
		}
	}
	if certain != 10 {
		t.Errorf("%d certain objects, want 10", certain)
	}
	if space.Len() != 10 {
		t.Errorf("space has %d variables, want 10", space.Len())
	}
}

func TestCertainHelper(t *testing.T) {
	objs := Certain(points(3))
	for _, o := range objs {
		if o.Lineage != event.True {
			t.Error("Certain must produce ⊤ lineage")
		}
	}
	if got := Positions(objs); len(got) != 3 || !got[1].Equal(vec.New(1, 0)) {
		t.Errorf("Positions = %v", got)
	}
	if got := Events(objs); len(got) != 3 {
		t.Errorf("Events = %v", got)
	}
}

func TestAttachValidation(t *testing.T) {
	if _, _, err := Attach(points(4), Config{Scheme: Positive}); err == nil {
		t.Error("positive scheme without NumVars must fail")
	}
	if _, _, err := Attach(points(4), Config{CertainFraction: 1.5}); err == nil {
		t.Error("certain fraction out of range must fail")
	}
}

func TestSeedReproducibility(t *testing.T) {
	a, sa, _ := Attach(points(8), Config{Scheme: Positive, NumVars: 5, L: 2, Seed: 42})
	b, sb, _ := Attach(points(8), Config{Scheme: Positive, NumVars: 5, L: 2, Seed: 42})
	if sa.Len() != sb.Len() {
		t.Fatal("different variable counts for equal seeds")
	}
	for i := 0; i < sa.Len(); i++ {
		if sa.Prob(event.VarID(i)) != sb.Prob(event.VarID(i)) {
			t.Fatal("different probabilities for equal seeds")
		}
	}
	for i := range a {
		if math.Abs(event.ExactProb(a[i].Lineage, sa)-event.ExactProb(b[i].Lineage, sb)) > 1e-12 {
			t.Fatal("different lineage for equal seeds")
		}
	}
}

func constantValuation(space *event.Space, v bool) event.MapValuation {
	nu := event.MapValuation{}
	for i := 0; i < space.Len(); i++ {
		nu[event.VarID(i)] = v
	}
	return nu
}
