// Package benchutil holds the helpers the benchmark and smoke drivers
// (cmd/loadgen, cmd/distbench) share: latency percentiles, /metrics
// scraping, JSON snapshot writing, and the spawn protocol for enframe child
// processes (build the binary on demand, scrape the LISTEN line, stop with
// SIGTERM). Extracted so the serve, what-if, distributed, and shard
// benchmarks cannot drift apart in how they measure or how they spawn.
package benchutil

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"syscall"
	"time"
)

// Ms converts a duration to float milliseconds, the unit every snapshot
// uses.
func Ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Percentile returns the p-th percentile (nearest-rank) of an
// ascending-sorted latency slice, in milliseconds. Empty input returns 0.
func Percentile(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return Ms(sorted[idx])
}

// Median returns the middle element of a copy-sorted float slice (upper
// median for even lengths; 0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// HistBucket is one cumulative histogram bucket as /metrics?format=json
// encodes it: Le is a float64 upper bound or the string "+Inf".
type HistBucket struct {
	Le    any   `json:"le"`
	Count int64 `json:"count"`
}

// Histogram is a scraped histogram snapshot.
type Histogram struct {
	Count   float64      `json:"count"`
	Sum     float64      `json:"sum"`
	Buckets []HistBucket `json:"buckets"`
}

// metricJSON is the /metrics?format=json row shape.
type metricJSON struct {
	Name    string       `json:"name"`
	Kind    string       `json:"kind"`
	Value   float64      `json:"value"`
	Sum     float64      `json:"sum"`
	Buckets []HistBucket `json:"buckets"`
}

func fetchMetrics(addr string) ([]metricJSON, error) {
	resp, err := http.Get("http://" + addr + "/metrics?format=json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var vals []metricJSON
	if err := json.NewDecoder(resp.Body).Decode(&vals); err != nil {
		return nil, err
	}
	return vals, nil
}

// FetchCounter reads one counter or gauge value off an enframe /metrics
// endpoint; -1 on any failure (scrape failures degrade, they don't abort a
// bench run).
func FetchCounter(addr, name string) float64 {
	vals, err := fetchMetrics(addr)
	if err != nil {
		return -1
	}
	for _, v := range vals {
		if v.Name == name {
			return v.Value
		}
	}
	return -1
}

// FetchHistogram reads one histogram off an enframe /metrics endpoint; nil
// on any failure.
func FetchHistogram(addr, name string) *Histogram {
	vals, err := fetchMetrics(addr)
	if err != nil {
		return nil
	}
	for _, v := range vals {
		if v.Name == name && v.Kind == "histogram" {
			return &Histogram{Count: v.Value, Sum: v.Sum, Buckets: v.Buckets}
		}
	}
	return nil
}

// WriteJSON writes v to path as indented JSON.
func WriteJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// BuildEnframe builds the enframe binary into a temp dir and returns its
// path plus a cleanup func. Pass a non-empty existing path to skip the
// build (the -enframe flag convention).
func BuildEnframe(existing string) (string, func(), error) {
	if existing != "" {
		return existing, func() {}, nil
	}
	dir, err := os.MkdirTemp("", "enframe-bench")
	if err != nil {
		return "", nil, err
	}
	bin := filepath.Join(dir, "enframe")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/enframe")
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		os.RemoveAll(dir)
		return "", nil, fmt.Errorf("build enframe: %w", err)
	}
	return bin, func() { os.RemoveAll(dir) }, nil
}

// Proc is a spawned enframe child process.
type Proc struct {
	Addr string
	cmd  *exec.Cmd
}

// Stop terminates the child gracefully (SIGTERM) and waits.
func (p *Proc) Stop() {
	_ = p.cmd.Process.Signal(syscall.SIGTERM)
	_, _ = p.cmd.Process.Wait()
}

// Kill terminates the child immediately (SIGKILL) and reaps it — the
// fault-injection path for failover drills.
func (p *Proc) Kill() {
	_ = p.cmd.Process.Kill()
	_, _ = p.cmd.Process.Wait()
}

// SpawnListen starts an enframe subcommand child (worker, serve, route —
// anything that prints "LISTEN <addr>" on stdout once bound) and scrapes
// its bound address. The child's stderr passes through; stdout keeps
// draining in the background so the child never blocks on a full pipe.
func SpawnListen(bin string, args ...string) (*Proc, error) {
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(out)
	deadline := time.AfterFunc(30*time.Second, func() { _ = cmd.Process.Kill() })
	for sc.Scan() {
		var a string
		if _, err := fmt.Sscanf(sc.Text(), "LISTEN %s", &a); err == nil {
			deadline.Stop()
			go func() {
				for sc.Scan() {
				}
			}()
			return &Proc{Addr: a, cmd: cmd}, nil
		}
	}
	deadline.Stop()
	_ = cmd.Process.Kill()
	_ = cmd.Wait()
	return nil, fmt.Errorf("%s %v: no LISTEN line on stdout", filepath.Base(bin), args)
}
