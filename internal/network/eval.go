package network

import (
	"enframe/internal/event"
)

// Assignment holds the evaluated values of every node under one complete
// valuation: Bools for Boolean nodes and Nums for numeric nodes.
type Assignment struct {
	Bools []bool
	Nums  []event.Value
}

// Eval evaluates the whole network bottom-up under a complete valuation.
// Node ids are topologically ordered by construction, so a single pass
// suffices. This is the reference semantics used by differential tests; the
// compiler in internal/prob must agree with it on every valuation.
func (n *Net) Eval(nu event.Valuation) Assignment {
	a := Assignment{
		Bools: make([]bool, len(n.Nodes)),
		Nums:  make([]event.Value, len(n.Nodes)),
	}
	for id := range n.Nodes {
		nd := &n.Nodes[id]
		switch nd.Kind {
		case KVar:
			a.Bools[id] = nu.Value(nd.Var)
		case KConst:
			a.Bools[id] = nd.B
		case KNot:
			a.Bools[id] = !a.Bools[nd.Kids[0]]
		case KAnd:
			v := true
			for _, k := range nd.Kids {
				if !a.Bools[k] {
					v = false
					break
				}
			}
			a.Bools[id] = v
		case KOr:
			v := false
			for _, k := range nd.Kids {
				if a.Bools[k] {
					v = true
					break
				}
			}
			a.Bools[id] = v
		case KCmp:
			a.Bools[id] = event.Compare(nd.Op, a.Nums[nd.Kids[0]], a.Nums[nd.Kids[1]])
		case KCondVal:
			if a.Bools[nd.Kids[0]] {
				a.Nums[id] = nd.Val
			} else {
				a.Nums[id] = event.U
			}
		case KGuard:
			if a.Bools[nd.Kids[0]] {
				a.Nums[id] = a.Nums[nd.Kids[1]]
			} else {
				a.Nums[id] = event.U
			}
		case KSum:
			v := event.U
			for _, k := range nd.Kids {
				v = event.Add(v, a.Nums[k])
			}
			a.Nums[id] = v
		case KProd:
			v := event.Num(1)
			for _, k := range nd.Kids {
				v = event.Mul(v, a.Nums[k])
			}
			a.Nums[id] = v
		case KInv:
			a.Nums[id] = event.Inv(a.Nums[nd.Kids[0]])
		case KPow:
			a.Nums[id] = event.PowVal(a.Nums[nd.Kids[0]], nd.Exp)
		case KDist:
			a.Nums[id] = event.DistVal(n.Metric, a.Nums[nd.Kids[0]], a.Nums[nd.Kids[1]])
		}
	}
	return a
}
