package network

import (
	"testing"

	"enframe/internal/event"
)

func TestIsomorphicPermutedConstruction(t *testing.T) {
	sp := event.NewSpace()
	x := sp.Add("x", 0.3)
	y := sp.Add("y", 0.5)
	z := sp.Add("z", 0.7)

	// Same formula, children supplied in different orders and the DAG built
	// bottom-up in a different sequence: (x∧y)∨¬z targeted as "t".
	a := NewBuilder(sp, nil)
	a.Target("t", a.Or(a.And(a.Var(x), a.Var(y)), a.Not(a.Var(z))))
	na := a.Build()

	b := NewBuilder(sp, nil)
	nz := b.Not(b.Var(z)) // build the negation first, swap ∧/∨ child order
	b.Target("t", b.Or(nz, b.And(b.Var(y), b.Var(x))))
	nb := b.Build()

	if err := Isomorphic(na, nb); err != nil {
		t.Fatalf("permuted construction must be isomorphic: %v", err)
	}
}

func TestIsomorphicDetectsDifferences(t *testing.T) {
	sp := event.NewSpace()
	x := sp.Add("x", 0.3)
	y := sp.Add("y", 0.5)

	and := NewBuilder(sp, nil)
	and.Target("t", and.And(and.Var(x), and.Var(y)))
	nAnd := and.Build()

	or := NewBuilder(sp, nil)
	or.Target("t", or.Or(or.Var(x), or.Var(y)))
	nOr := or.Build()

	if err := Isomorphic(nAnd, nOr); err == nil {
		t.Fatal("x∧y vs x∨y must not be isomorphic")
	}

	named := NewBuilder(sp, nil)
	named.Target("u", named.And(named.Var(x), named.Var(y)))
	nNamed := named.Build()
	if err := Isomorphic(nAnd, nNamed); err == nil {
		t.Fatal("mismatched target names must not be isomorphic")
	}
}

func TestIsomorphicSumOrderIsSignificant(t *testing.T) {
	sp := event.NewSpace()
	x := sp.Add("x", 0.3)
	y := sp.Add("y", 0.5)

	a := NewBuilder(sp, nil)
	ax := a.CondVal(a.Var(x), event.Num(1))
	ay := a.CondVal(a.Var(y), event.Num(2))
	a.Target("s", a.Cmp(event.LT, a.Sum(ax, ay), a.ConstNum(event.Num(5))))
	na := a.Build()

	b := NewBuilder(sp, nil)
	bx := b.CondVal(b.Var(x), event.Num(1))
	by := b.CondVal(b.Var(y), event.Num(2))
	b.Target("s", b.Cmp(event.LT, b.Sum(by, bx), b.ConstNum(event.Num(5))))
	nb := b.Build()

	// Float addition is order-sensitive, so Σ children compare exactly.
	if err := Isomorphic(na, nb); err == nil {
		t.Fatal("reordered Σ children must not count as isomorphic")
	}
}
