package network

import (
	"testing"

	"enframe/internal/event"
)

// buildFPNet grounds a tiny two-target network; perturb hooks let each case
// vary one ingredient.
func buildFPNet(p1 float64, exp int, targetName string) *Net {
	sp := event.NewSpace()
	x := sp.Add("x", p1)
	y := sp.Add("y", 0.5)
	b := NewBuilder(sp, nil)
	vx, vy := b.Var(x), b.Var(y)
	sum := b.Sum(b.CondVal(vx, event.Num(2)), b.CondVal(vy, event.Num(3)))
	cmp := b.Cmp(event.LT, sum, b.ConstNum(event.Num(4)))
	b.Target(targetName, b.And(vx, cmp))
	b.Target("t2", b.Or(vx, vy))
	_ = b.Pow(sum, exp) // swept away unless reachable
	return b.Build()
}

func TestFingerprintDeterministic(t *testing.T) {
	a := Fingerprint(buildFPNet(0.5, 2, "t1"))
	b := Fingerprint(buildFPNet(0.5, 2, "t1"))
	if a != b {
		t.Fatalf("identical builds fingerprint differently: %x vs %x", a, b)
	}
}

func TestFingerprintIgnoresProbabilities(t *testing.T) {
	// Marginal probabilities are replay inputs, not structure: a circuit
	// traced over the network is valid for any assignment, so the
	// fingerprint must not move when only probabilities change.
	a := Fingerprint(buildFPNet(0.5, 2, "t1"))
	b := Fingerprint(buildFPNet(0.7, 2, "t1"))
	if a != b {
		t.Fatalf("probability change moved the fingerprint")
	}
}

func TestFingerprintSeesStructureAndTargets(t *testing.T) {
	base := Fingerprint(buildFPNet(0.5, 2, "t1"))
	if got := Fingerprint(buildFPNet(0.5, 2, "renamed")); got == base {
		t.Fatalf("target rename did not move the fingerprint")
	}
	// A different constant payload grounds a different network.
	sp := event.NewSpace()
	x := sp.Add("x", 0.5)
	y := sp.Add("y", 0.5)
	b := NewBuilder(sp, nil)
	vx, vy := b.Var(x), b.Var(y)
	sum := b.Sum(b.CondVal(vx, event.Num(2)), b.CondVal(vy, event.Num(99)))
	cmp := b.Cmp(event.LT, sum, b.ConstNum(event.Num(4)))
	b.Target("t1", b.And(vx, cmp))
	b.Target("t2", b.Or(vx, vy))
	if got := Fingerprint(b.Build()); got == base {
		t.Fatalf("payload change did not move the fingerprint")
	}
}

func TestFingerprintSeesSpaceGrowth(t *testing.T) {
	// An unused variable does not change the grounded nodes, but it changes
	// the probability-vector length a circuit replay expects, so it must
	// move the fingerprint (the stream plane would otherwise reuse a
	// circuit whose NumVars no longer matches the space).
	mk := func(extra bool) *Net {
		sp := event.NewSpace()
		x := sp.Add("x", 0.5)
		if extra {
			sp.Add("unused", 0.5)
		}
		b := NewBuilder(sp, nil)
		b.Target("t", b.Var(x))
		return b.Build()
	}
	if Fingerprint(mk(false)) == Fingerprint(mk(true)) {
		t.Fatalf("space growth did not move the fingerprint")
	}
}
