package network

import (
	"math"

	"enframe/internal/event"
)

// Fingerprint returns a structural content hash of the network: node kinds,
// payloads, child lists, targets, and the variable-space size. Two networks
// with equal fingerprints ground the same program state — node for node,
// id for id — so a decision circuit traced over one replays identically
// over the other. The streaming data plane uses this for dirty-subtree
// detection: a window segment whose re-grounded network fingerprints equal
// to its previous build keeps its consed circuit instead of re-tracing.
//
// The hash is FNV-1a over the dense node arrays in id order. Builds are
// deterministic (the fused emitter visits the program in evaluation order
// and hash-consing assigns dense ids in first-construction order), so two
// builds from identical program state produce identical arrays and hence
// identical fingerprints; no canonical graph hashing is needed.
func Fingerprint(n *Net) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	mixStr := func(s string) {
		mix(uint64(len(s)))
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
	}
	mix(uint64(n.Space.Len()))
	mix(uint64(len(n.Nodes)))
	for i := range n.Nodes {
		nd := &n.Nodes[i]
		mix(uint64(nd.Kind))
		switch nd.Kind {
		case KVar:
			mix(uint64(nd.Var))
		case KConst:
			mix(b2u(nd.B))
		case KCmp:
			mix(uint64(nd.Op))
		case KPow:
			mix(uint64(int64(nd.Exp)))
		case KCondVal:
			mix(uint64(nd.Val.Kind))
			switch nd.Val.Kind {
			case event.Scalar:
				mix(math.Float64bits(nd.Val.S))
			case event.Vector:
				mix(uint64(len(nd.Val.V)))
				for _, x := range nd.Val.V {
					mix(math.Float64bits(x))
				}
			case event.Boolean:
				mix(b2u(nd.Val.B))
			}
		}
		mix(uint64(len(nd.Kids)))
		for _, k := range nd.Kids {
			mix(uint64(uint32(k)))
		}
	}
	mix(uint64(len(n.Targets)))
	for _, t := range n.Targets {
		mixStr(t.Name)
		mix(uint64(uint32(t.Node)))
	}
	return h
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
