package network

import (
	"fmt"
	"math/rand"
	"testing"

	"enframe/internal/event"
	"enframe/internal/vec"
	"enframe/internal/worlds"
)

func TestHashConsing(t *testing.T) {
	sp := event.NewSpace()
	x := sp.Add("x", 0.5)
	y := sp.Add("y", 0.5)
	b := NewBuilder(sp, nil)
	a1 := b.And(b.Var(x), b.Var(y))
	a2 := b.And(b.Var(x), b.Var(y))
	if a1 != a2 {
		t.Error("structurally identical conjunctions must intern to one node")
	}
	c1 := b.CondVal(a1, event.Num(3))
	c2 := b.CondVal(a2, event.Num(3))
	if c1 != c2 {
		t.Error("identical ⊗ nodes must intern to one node")
	}
	if b.CondVal(a1, event.Num(4)) == c1 {
		t.Error("different payloads must not collide")
	}
}

func TestBooleanSimplification(t *testing.T) {
	sp := event.NewSpace()
	x := sp.Add("x", 0.5)
	b := NewBuilder(sp, nil)
	vx := b.Var(x)
	if b.And(vx, b.Bool(true)) != vx {
		t.Error("x ∧ ⊤ must simplify to x")
	}
	if got := b.And(vx, b.Bool(false)); b.Build2Node(got).Kind != KConst {
		t.Error("x ∧ ⊥ must fold to ⊥")
	}
	if b.Or(vx, b.Bool(false)) != vx {
		t.Error("x ∨ ⊥ must simplify to x")
	}
	if b.Not(b.Not(vx)) != vx {
		t.Error("double negation must cancel")
	}
	if b.And(vx, vx) != vx {
		t.Error("idempotent conjunction must collapse")
	}
}

// Build2Node exposes a node for white-box tests.
func (b *Builder) Build2Node(id NodeID) Node { return b.nodes[id] }

func TestConstantFolding(t *testing.T) {
	sp := event.NewSpace()
	x := sp.Add("x", 0.5)
	b := NewBuilder(sp, nil)
	c3 := b.ConstNum(event.Num(3))
	c4 := b.ConstNum(event.Num(4))
	// Constant comparison folds to a Boolean constant.
	if n := b.Build2Node(b.Cmp(event.LE, c3, c4)); n.Kind != KConst || !n.B {
		t.Errorf("3 ≤ 4 folded to %v", n)
	}
	// Constant sum terms merge.
	g := b.CondVal(b.Var(x), event.Num(10))
	sum := b.Sum(c3, g, c4)
	if n := b.Build2Node(sum); len(n.Kids) != 2 {
		t.Errorf("Σ(3, x⊗10, 4) has %d children, want 2 (guarded + folded const)", len(n.Kids))
	}
	// Products annihilate on certainly-undefined factors.
	u := b.CondVal(b.Bool(false), event.U)
	if v, ok := b.constOf(b.Prod(c3, u)); !ok || !v.IsUndef() {
		t.Error("Π with a certain-u factor must fold to u")
	}
	// dist between constants folds.
	va := b.ConstNum(event.Vect(vec.New(0, 0)))
	vb := b.ConstNum(event.Vect(vec.New(3, 4)))
	if v, ok := b.constOf(b.Dist(va, vb)); !ok || v.S != 5 {
		t.Errorf("dist of constants folded to %v", v)
	}
	// Inv and Pow fold, including 0⁻¹ = u.
	if v, ok := b.constOf(b.Inv(b.ConstNum(event.Num(0)))); !ok || !v.IsUndef() {
		t.Error("0⁻¹ must fold to u")
	}
	if v, ok := b.constOf(b.Pow(c3, 2)); !ok || v.S != 9 {
		t.Errorf("3² folded to %v", v)
	}
}

func TestSweepRemovesGarbage(t *testing.T) {
	sp := event.NewSpace()
	x := sp.Add("x", 0.5)
	b := NewBuilder(sp, nil)
	vx := b.Var(x)
	b.CondVal(vx, event.Num(1)) // dead node
	keep := b.Not(vx)
	b.Target("t", keep)
	net := b.Build()
	if net.NumNodes() != 2 {
		t.Errorf("swept network has %d nodes, want 2 (var + not)", net.NumNodes())
	}
	if net.Targets[0].Node != 1 {
		t.Errorf("target remapped to %d", net.Targets[0].Node)
	}
}

// TestEvalMatchesEventSemantics compiles random event expressions and
// checks network evaluation against the event evaluator on every world.
func TestEvalMatchesEventSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		sp := event.NewSpace()
		var vars []event.Expr
		for i := 0; i < 5; i++ {
			vars = append(vars, event.NewVar(sp.Add(fmt.Sprintf("x%d", i), 0.5), ""))
		}
		var mkB func(d int) event.Expr
		var mkN func(d int) event.NumExpr
		mkB = func(d int) event.Expr {
			if d == 0 {
				return vars[rng.Intn(len(vars))]
			}
			switch rng.Intn(4) {
			case 0:
				return event.NewAnd(mkB(d-1), mkB(d-1))
			case 1:
				return event.NewOr(mkB(d-1), mkB(d-1))
			case 2:
				return event.NewNot(mkB(d - 1))
			default:
				return event.NewAtom(event.LE, mkN(d-1), mkN(d-1))
			}
		}
		mkN = func(d int) event.NumExpr {
			if d == 0 {
				return event.NewCondVal(mkB(0), event.Num(float64(rng.Intn(5))))
			}
			switch rng.Intn(3) {
			case 0:
				return event.NewSum(mkN(d-1), mkN(d-1))
			case 1:
				return event.NewGuard(mkB(d-1), mkN(d-1))
			default:
				return event.NewInv(mkN(d - 1))
			}
		}
		e := mkB(3)
		b := NewBuilder(sp, nil)
		// No-fold keeps the node structure aligned with the AST.
		b.DisableConstFold()
		id := b.AddExpr(e)
		b.Target("t", id)
		net := b.Build()
		worlds.Enumerate(sp, func(nu event.SliceValuation, p float64) bool {
			got := net.Eval(nu).Bools[net.Targets[0].Node]
			want := event.EvalExpr(e, nu)
			if got != want {
				t.Fatalf("trial %d: network %t vs event %t under %v (expr %v)",
					trial, got, want, nu, e)
			}
			return true
		})
	}
}

func TestTypesDetectErrors(t *testing.T) {
	sp := event.NewSpace()
	x := sp.Add("x", 0.5)
	b := NewBuilder(sp, nil)
	va := b.CondVal(b.Var(x), event.Vect(vec.New(1, 2)))
	bad := b.Cmp(event.LE, va, va) // comparison over vectors
	b.Target("bad", bad)
	net := b.Build()
	if _, err := net.Types(); err == nil {
		t.Error("vector comparison must be rejected")
	}
}

func TestTypesVectorPropagation(t *testing.T) {
	sp := event.NewSpace()
	x := sp.Add("x", 0.5)
	b := NewBuilder(sp, nil)
	b.DisableConstFold()
	vecNode := b.CondVal(b.Var(x), event.Vect(vec.New(1, 2)))
	scal := b.CondVal(b.Var(x), event.Num(2))
	sum := b.Sum(vecNode, vecNode)
	prod := b.Prod(scal, vecNode) // scalar_mult
	d := b.Dist(sum, prod)
	b.Target("t", b.Cmp(event.LE, d, scal))
	net := b.Build()
	types, err := net.Types()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[ValueType]int{}
	for _, ty := range types {
		counts[ty]++
	}
	if counts[TVector] < 3 {
		t.Errorf("expected vector-typed nodes, got %v", counts)
	}
}
