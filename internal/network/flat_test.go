package network

import (
	"fmt"
	"testing"

	"enframe/internal/event"
)

// buildMixedNet constructs a network covering every node kind, with shared
// subexpressions so fan-out (parent spans) exceeds one.
func buildMixedNet() *Net {
	sp := event.NewSpace()
	for i := 0; i < 4; i++ {
		sp.Add(fmt.Sprintf("x%d", i), 0.5)
	}
	b := NewBuilder(sp, nil)
	v0, v1 := b.Var(0), b.Var(1)
	c0 := b.CondVal(v0, event.Num(2))
	c1 := b.CondVal(v1, event.Num(3))
	s := b.Sum(c0, c1, b.ConstNum(event.Num(1)))
	g := b.Guard(v0, s)
	cmp := b.Cmp(event.LE, g, c1)
	and := b.And(cmp, b.Not(v1))
	b.Target("t", b.Or(and, b.Var(2)))
	b.Target("u", and) // shared target node: two targets, overlapping cones
	return b.Build()
}

// TestFlatMatchesPointerLayout asserts the CSR view is an exact transcription
// of the pointer DAG: kinds, child spans in declaration order, parent spans
// in increasing-id order, operators, and CondVal payloads.
func TestFlatMatchesPointerLayout(t *testing.T) {
	n := buildMixedNet()
	f := n.Flat()

	if len(f.Kind) != len(n.Nodes) {
		t.Fatalf("Kind has %d entries, net has %d nodes", len(f.Kind), len(n.Nodes))
	}
	if len(f.KidOff) != len(n.Nodes)+1 || len(f.ParOff) != len(n.Nodes)+1 {
		t.Fatalf("offset arrays not nodes+1: kids %d pars %d", len(f.KidOff), len(f.ParOff))
	}
	for id := range n.Nodes {
		nd := &n.Nodes[id]
		nid := NodeID(id)
		if f.Kind[id] != nd.Kind {
			t.Errorf("node %d: kind %v vs %v", id, f.Kind[id], nd.Kind)
		}
		kids := f.KidsOf(nid)
		if len(kids) != len(nd.Kids) || f.NumKids(nid) != len(nd.Kids) {
			t.Fatalf("node %d: %d kids vs %d", id, len(kids), len(nd.Kids))
		}
		for k := range kids {
			if kids[k] != nd.Kids[k] {
				t.Errorf("node %d kid %d: %d vs %d", id, k, kids[k], nd.Kids[k])
			}
		}
		pars := f.ParsOf(nid)
		if len(pars) != len(n.Parents[id]) {
			t.Fatalf("node %d: %d parents vs %d", id, len(pars), len(n.Parents[id]))
		}
		for k := range pars {
			if pars[k] != n.Parents[id][k] {
				t.Errorf("node %d parent %d: %d vs %d", id, k, pars[k], n.Parents[id][k])
			}
			if k > 0 && pars[k] <= pars[k-1] {
				t.Errorf("node %d: parent span not strictly increasing at %d", id, k)
			}
		}
		if nd.Kind == KCmp && f.Op[id] != nd.Op {
			t.Errorf("node %d: op %v vs %v", id, f.Op[id], nd.Op)
		}
		if nd.Kind == KCondVal {
			vi := f.ValIdx[id]
			if vi < 0 || int(vi) >= len(f.Vals) {
				t.Fatalf("node %d: ValIdx %d out of range", id, vi)
			}
			if !f.Vals[vi].Equal(nd.Val) {
				t.Errorf("node %d: val %v vs %v", id, f.Vals[vi], nd.Val)
			}
		} else if f.ValIdx[id] != -1 {
			t.Errorf("node %d: non-CondVal has ValIdx %d", id, f.ValIdx[id])
		}
	}
	// CSR invariants: offsets monotone, spans tile the shared slices exactly.
	if f.KidOff[0] != 0 || f.ParOff[0] != 0 {
		t.Error("offset arrays do not start at 0")
	}
	if int(f.KidOff[len(n.Nodes)]) != len(f.Kids) || int(f.ParOff[len(n.Nodes)]) != len(f.Pars) {
		t.Error("final offsets do not cover the shared slices")
	}
}

// TestFlatCached asserts the view is built once and shared.
func TestFlatCached(t *testing.T) {
	n := buildMixedNet()
	if n.Flat() != n.Flat() {
		t.Fatal("Flat() rebuilt the layout on second use")
	}
}
