// Package network implements event networks (§4.1): directed acyclic graph
// representations of event programs in which expressions common to several
// events are represented once. Nodes are Boolean connectives, comparison
// atoms, aggregates, and c-values; the probability-computation algorithms of
// internal/prob operate on these graphs.
package network

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"
	"sync"

	"enframe/internal/event"
	"enframe/internal/obs"
	"enframe/internal/vec"
)

// NodeID indexes a node of a network. Ids are dense and topologically
// ordered: every node's children have smaller ids.
type NodeID int32

// NoNode is the absent node id.
const NoNode NodeID = -1

// Kind enumerates the node types of an event network.
type Kind uint8

const (
	// KVar is a leaf for a random variable x ∈ X.
	KVar Kind = iota
	// KConst is the Boolean constant ⊤ or ⊥.
	KConst
	// KNot is Boolean negation.
	KNot
	// KAnd is n-ary conjunction.
	KAnd
	// KOr is n-ary disjunction.
	KOr
	// KCmp is a comparison atom [left op right] over two numeric nodes.
	KCmp
	// KCondVal is guard ⊗ const: the constant value when the Boolean
	// child holds, u otherwise.
	KCondVal
	// KGuard is guard ∧ cval: the numeric child's value when the Boolean
	// child holds, u otherwise. Children are [guard, value].
	KGuard
	// KSum is the n-ary Σ of numeric children.
	KSum
	// KProd is the n-ary Π of numeric children.
	KProd
	// KInv is the multiplicative inverse with 0⁻¹ = u.
	KInv
	// KPow is exponentiation by a constant integer.
	KPow
	// KDist is the distance between two (vector-valued) numeric children.
	KDist
)

func (k Kind) String() string {
	switch k {
	case KVar:
		return "var"
	case KConst:
		return "const"
	case KNot:
		return "not"
	case KAnd:
		return "and"
	case KOr:
		return "or"
	case KCmp:
		return "cmp"
	case KCondVal:
		return "condval"
	case KGuard:
		return "guard"
	case KSum:
		return "sum"
	case KProd:
		return "prod"
	case KInv:
		return "inv"
	case KPow:
		return "pow"
	case KDist:
		return "dist"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// numKinds is the number of node kinds (for per-kind counters).
const numKinds = int(KDist) + 1

// IsBool reports whether nodes of this kind carry Boolean values; the
// remaining kinds carry values of the extended numeric domain (scalars,
// vectors, u).
func (k Kind) IsBool() bool {
	switch k {
	case KVar, KConst, KNot, KAnd, KOr, KCmp:
		return true
	}
	return false
}

// Node is one vertex of an event network.
type Node struct {
	Kind Kind
	Kids []NodeID
	// Var is the random variable of a KVar node.
	Var event.VarID
	// B is the constant of a KConst node.
	B bool
	// Val is the constant payload of a KCondVal node.
	Val event.Value
	// Op is the operator of a KCmp node.
	Op event.CmpOp
	// Exp is the exponent of a KPow node.
	Exp int
}

// Target is a compilation target: a named Boolean node whose probability the
// compiler computes.
type Target struct {
	Name string
	Node NodeID
}

// Net is a finalised, immutable event network.
type Net struct {
	Space   *event.Space
	Metric  vec.Distance
	Nodes   []Node
	Parents [][]NodeID
	Targets []Target
	// VarNode maps each random variable to its leaf node (NoNode when the
	// variable does not occur in the network).
	VarNode []NodeID

	// flat is the lazily built structure-of-arrays view (see Flat).
	flatOnce sync.Once
	flat     *Flat
}

// NumNodes reports the network size.
func (n *Net) NumNodes() int { return len(n.Nodes) }

// KindCounts returns the number of live network nodes per node kind.
func (n *Net) KindCounts() map[string]int64 {
	var by [numKinds]int64
	for _, nd := range n.Nodes {
		by[nd.Kind]++
	}
	out := make(map[string]int64, numKinds)
	for k, c := range by {
		if c > 0 {
			out[Kind(k).String()] = c
		}
	}
	return out
}

// Builder constructs a network with structural hash-consing: structurally
// identical subexpressions become the same node, so the repetitive event
// programs of data mining tasks stay compact. Construction is the serving
// layer's cold-request hot path, so the builder is engineered for it:
// intern keys are built into a reusable scratch buffer (a lookup allocates
// nothing), commutative ∧/∨ children are canonically sorted before lookup
// so argument order cannot defeat sharing, and child-id slices are carved
// out of chunked arenas instead of one allocation per node.
type Builder struct {
	space    *event.Space
	metric   vec.Distance
	nodes    []Node
	interned map[string]NodeID
	exprMemo map[event.Expr]NodeID
	numMemo  map[event.NumExpr]NodeID
	targets  []Target
	noFold   bool
	// keyBuf is the reusable intern-key scratch; scratch the reusable n-ary
	// flattening buffer; pair backs fixed-arity child lists during lookup.
	keyBuf  []byte
	scratch []NodeID
	pair    [2]NodeID
	// kidArena is the current chunk child slices are carved from.
	kidArena []NodeID
	// Hash-cons accounting: lookups and hits of intern, created nodes per
	// kind, canonical reorderings, arena chunks. Published to reg (when set)
	// by Build.
	lookups     int64
	hits        int64
	canon       int64
	arenaChunks int64
	kindCreated [numKinds]int64
	reg         *obs.Registry
}

// NewBuilder returns a builder over the given variable space. A nil metric
// defaults to Euclidean distance.
func NewBuilder(space *event.Space, metric vec.Distance) *Builder {
	if metric == nil {
		metric = vec.Euclidean
	}
	return &Builder{
		space:    space,
		metric:   metric,
		interned: make(map[string]NodeID),
		exprMemo: make(map[event.Expr]NodeID),
		numMemo:  make(map[event.NumExpr]NodeID),
	}
}

// kidChunkSize is the arena chunk granularity; fan-ins above a quarter chunk
// get a dedicated allocation so one giant conjunction cannot strand a chunk.
const kidChunkSize = 4096

// arenaCopy persists a (possibly scratch-backed) child list into the arena.
func (b *Builder) arenaCopy(kids []NodeID) []NodeID {
	if len(kids) == 0 {
		return nil
	}
	if len(kids) > kidChunkSize/4 {
		return slices.Clone(kids)
	}
	if len(b.kidArena)+len(kids) > cap(b.kidArena) {
		b.kidArena = make([]NodeID, 0, kidChunkSize)
		b.arenaChunks++
	}
	start := len(b.kidArena)
	b.kidArena = append(b.kidArena, kids...)
	return b.kidArena[start:len(b.kidArena):len(b.kidArena)]
}

// intern looks up the node identified by (n's payload, kids), creating it on
// a miss. kids may alias a scratch buffer: it is only read during the
// lookup, and copied into the arena when the node is new. The lookup itself
// allocates nothing — the key is built into a reusable buffer and the map
// probe uses the compiler's zero-copy string conversion.
func (b *Builder) intern(n Node, kids []NodeID) NodeID {
	n.Kids = kids
	b.keyBuf = appendInternKey(b.keyBuf[:0], n)
	b.lookups++
	if id, ok := b.interned[string(b.keyBuf)]; ok {
		b.hits++
		return id
	}
	b.kindCreated[n.Kind]++
	n.Kids = b.arenaCopy(kids)
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, n)
	b.interned[string(b.keyBuf)] = id
	return id
}

// SetObs directs the builder to publish hash-cons and node-kind metrics to
// the registry when Build runs. A nil registry disables publishing.
func (b *Builder) SetObs(reg *obs.Registry) { b.reg = reg }

// BuilderStats is the hash-cons accounting of one network construction.
type BuilderStats struct {
	// Lookups counts intern consults; Hits of them resolved to an already
	// existing structurally identical node.
	Lookups int64
	Hits    int64
	// Created counts distinct nodes built (Lookups − Hits).
	Created int64
	// CanonRewrites counts ∧/∨ constructions whose children arrived in
	// non-canonical order and were sorted before the intern lookup.
	CanonRewrites int64
	// ArenaChunks counts the child-slice arena chunks allocated.
	ArenaChunks int64
	// ByKind breaks Created down per node kind.
	ByKind map[string]int64
}

// HitRate returns Hits/Lookups (0 when nothing was interned).
func (s BuilderStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// Stats snapshots the builder's hash-cons accounting; valid before and
// after Build.
func (b *Builder) Stats() BuilderStats {
	st := BuilderStats{
		Lookups:       b.lookups,
		Hits:          b.hits,
		Created:       b.lookups - b.hits,
		CanonRewrites: b.canon,
		ArenaChunks:   b.arenaChunks,
		ByKind:        make(map[string]int64, numKinds),
	}
	for k, c := range b.kindCreated {
		if c > 0 {
			st.ByKind[Kind(k).String()] = c
		}
	}
	return st
}

func appendInternKey(buf []byte, n Node) []byte {
	buf = append(buf, byte(n.Kind))
	switch n.Kind {
	case KVar:
		buf = binary.AppendVarint(buf, int64(n.Var))
	case KConst:
		if n.B {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case KCmp:
		buf = append(buf, byte(n.Op))
	case KPow:
		buf = binary.AppendVarint(buf, int64(n.Exp))
	case KCondVal:
		buf = append(buf, byte(n.Val.Kind))
		switch n.Val.Kind {
		case event.Scalar:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(n.Val.S))
		case event.Vector:
			for _, x := range n.Val.V {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
			}
		case event.Boolean:
			if n.Val.B {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	}
	for _, k := range n.Kids {
		buf = binary.AppendVarint(buf, int64(k))
	}
	return buf
}

// Var returns the leaf node for variable x.
func (b *Builder) Var(x event.VarID) NodeID {
	return b.intern(Node{Kind: KVar, Var: x}, nil)
}

// Bool returns the constant node for ⊤ or ⊥.
func (b *Builder) Bool(v bool) NodeID { return b.intern(Node{Kind: KConst, B: v}, nil) }

// intern1 and intern2 intern fixed-arity nodes through the builder-held pair
// buffer, keeping the child list off the heap during lookup.
func (b *Builder) intern1(n Node, k NodeID) NodeID {
	b.pair[0] = k
	return b.intern(n, b.pair[:1])
}

func (b *Builder) intern2(n Node, l, r NodeID) NodeID {
	b.pair[0], b.pair[1] = l, r
	return b.intern(n, b.pair[:2])
}

// Not returns ¬k, simplifying constants and double negation.
func (b *Builder) Not(k NodeID) NodeID {
	switch n := b.nodes[k]; n.Kind {
	case KConst:
		return b.Bool(!n.B)
	case KNot:
		return n.Kids[0]
	}
	return b.intern1(Node{Kind: KNot}, k)
}

// And returns the conjunction of ks, flattening, deduplicating, and
// simplifying constants. Children are canonically sorted: ∧ and ∨ are
// commutative, so structurally equal connectives built in any argument
// order intern to one node.
func (b *Builder) And(ks ...NodeID) NodeID { return b.nary(KAnd, ks) }

// Or returns the disjunction of ks, flattening, deduplicating, and
// simplifying constants, with the same canonical child order as And.
func (b *Builder) Or(ks ...NodeID) NodeID { return b.nary(KOr, ks) }

func (b *Builder) nary(kind Kind, ks []NodeID) NodeID {
	neutral, absorbing := true, false // KAnd
	if kind == KOr {
		neutral, absorbing = false, true
	}
	flat := b.scratch[:0]
	for _, k := range ks {
		n := &b.nodes[k]
		if n.Kind == KConst {
			if n.B == absorbing {
				b.scratch = flat
				return b.Bool(absorbing)
			}
			continue // neutral element dropped
		}
		if n.Kind == kind {
			// Nested chains flatten; their children are already canonical
			// but must be re-sorted against the siblings below.
			flat = append(flat, n.Kids...)
			continue
		}
		flat = append(flat, k)
	}
	// Canonicalise: sort children and drop adjacent duplicates (∧/∨ are
	// commutative and idempotent). This is what lifts the hash-cons hit
	// rate — iteration-order differences in the front end no longer mint
	// fresh nodes for the same connective.
	if !slices.IsSorted(flat) {
		slices.Sort(flat)
		b.canon++
	}
	flat = dedupSorted(flat)
	b.scratch = flat[:0]
	switch len(flat) {
	case 0:
		return b.Bool(neutral)
	case 1:
		return flat[0]
	}
	return b.intern(Node{Kind: kind}, flat)
}

// dedupSorted removes adjacent duplicates in place.
func dedupSorted(xs []NodeID) []NodeID {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || xs[i-1] != x {
			out = append(out, x)
		}
	}
	return out
}

// constOf reports whether a numeric node is a build-time constant of the
// extended domain (a ⊗ node with a constant guard).
func (b *Builder) constOf(id NodeID) (event.Value, bool) {
	n := b.nodes[id]
	if n.Kind != KCondVal {
		return event.Value{}, false
	}
	if g := b.nodes[n.Kids[0]]; g.Kind == KConst {
		if g.B {
			return n.Val, true
		}
		return event.U, true
	}
	return event.Value{}, false
}

// Cmp returns the comparison node [l op r], folded to a Boolean constant
// when both sides are build-time constants. This partial evaluation is what
// collapses the sub-networks ranging only over certain data points (§5,
// Fig. 8).
func (b *Builder) Cmp(op event.CmpOp, l, r NodeID) NodeID {
	if !b.noFold {
		if lv, ok := b.constOf(l); ok {
			if rv, ok2 := b.constOf(r); ok2 {
				return b.Bool(event.Compare(op, lv, rv))
			}
		}
	}
	return b.intern2(Node{Kind: KCmp, Op: op}, l, r)
}

// CondVal returns guard ⊗ val for a constant value.
func (b *Builder) CondVal(guard NodeID, val event.Value) NodeID {
	return b.intern1(Node{Kind: KCondVal, Val: val}, guard)
}

// ConstNum returns the always-defined constant ⊤ ⊗ val.
func (b *Builder) ConstNum(val event.Value) NodeID { return b.CondVal(b.Bool(true), val) }

// Guard returns guard ∧ v. When v is itself a conditional constant the
// guards are merged into a single ⊗ node.
func (b *Builder) Guard(guard, v NodeID) NodeID {
	if g := b.nodes[guard]; g.Kind == KConst {
		if g.B {
			return v
		}
		return b.CondVal(b.Bool(false), event.U)
	}
	if n := b.nodes[v]; n.Kind == KCondVal {
		return b.CondVal(b.And(guard, n.Kids[0]), n.Val)
	}
	return b.intern2(Node{Kind: KGuard}, guard, v)
}

// Sum returns Σ ks, flattening nested sums. With constant folding enabled
// (the default), children that are certainly-defined constants (⊤ ⊗ v) are
// pre-summed into a single constant child: this is why certain data points
// speed up compilation (§5, Fig. 8) — "distance sums … can be initialised
// using the distances to objects that certainly exist".
func (b *Builder) Sum(ks ...NodeID) NodeID { return b.naryNum(KSum, ks) }

// Prod returns Π ks, flattening nested products.
func (b *Builder) Prod(ks ...NodeID) NodeID { return b.naryNum(KProd, ks) }

func (b *Builder) naryNum(kind Kind, ks []NodeID) NodeID {
	// Σ/Π children keep their construction order: floating-point addition
	// is not associative-commutative bit-for-bit, and evaluation must stay
	// identical between the fused and two-phase front ends.
	flat := b.scratch[:0]
	for _, k := range ks {
		if n := &b.nodes[k]; n.Kind == kind {
			flat = append(flat, n.Kids...)
			continue
		}
		flat = append(flat, k)
	}
	if kind == KSum && !b.noFold {
		folded := flat[:0]
		acc := event.U
		nConst := 0
		for _, k := range flat {
			if v, ok := b.constOf(k); ok {
				// Defined constants pre-sum; certainly-undefined terms are
				// the identity of + and drop out entirely.
				acc = event.Add(acc, v)
				nConst++
				continue
			}
			folded = append(folded, k)
		}
		if nConst > 0 && !acc.IsUndef() {
			folded = append(folded, b.ConstNum(acc))
		}
		flat = folded
	}
	if kind == KProd && !b.noFold {
		folded := flat[:0]
		acc := event.Num(1)
		nConst := 0
		for _, k := range flat {
			if v, ok := b.constOf(k); ok {
				if v.IsUndef() {
					// u annihilates the whole product.
					return b.ConstNum(event.U)
				}
				acc = event.Mul(acc, v)
				nConst++
				continue
			}
			folded = append(folded, k)
		}
		if nConst > 0 {
			folded = append(folded, b.ConstNum(acc))
		}
		flat = folded
	}
	b.scratch = flat[:0]
	switch len(flat) {
	case 0:
		// Σ of nothing is the undefined value u.
		return b.CondVal(b.Bool(false), event.U)
	case 1:
		return flat[0]
	}
	return b.intern(Node{Kind: kind}, flat)
}

func (b *Builder) isTrueConst(id NodeID) bool {
	n := b.nodes[id]
	return n.Kind == KConst && n.B
}

// DisableConstFold turns off Σ constant folding; used by the ablation
// benchmarks and by tests that need bit-identical summation order.
func (b *Builder) DisableConstFold() { b.noFold = true }

// Inv returns k⁻¹, folding constants.
func (b *Builder) Inv(k NodeID) NodeID {
	if v, ok := b.constOf(k); ok && !b.noFold {
		return b.ConstNum(event.Inv(v))
	}
	return b.intern1(Node{Kind: KInv}, k)
}

// Pow returns k^exp, folding constants.
func (b *Builder) Pow(k NodeID, exp int) NodeID {
	if v, ok := b.constOf(k); ok && !b.noFold {
		return b.ConstNum(event.PowVal(v, exp))
	}
	return b.intern1(Node{Kind: KPow, Exp: exp}, k)
}

// Dist returns dist(l, r), folded when both endpoints are constant.
func (b *Builder) Dist(l, r NodeID) NodeID {
	if !b.noFold {
		if lv, ok := b.constOf(l); ok {
			if rv, ok2 := b.constOf(r); ok2 {
				return b.ConstNum(event.DistVal(b.metric, lv, rv))
			}
		}
	}
	return b.intern2(Node{Kind: KDist}, l, r)
}

// AddExpr compiles a Boolean event expression into the network, sharing
// previously compiled subexpressions both by pointer and by structure.
func (b *Builder) AddExpr(e event.Expr) NodeID {
	if id, ok := b.exprMemo[e]; ok {
		return id
	}
	var id NodeID
	switch t := e.(type) {
	case *event.Var:
		id = b.Var(t.X)
	case *event.Const:
		id = b.Bool(t.B)
	case *event.Not:
		id = b.Not(b.AddExpr(t.E))
	case *event.And:
		ks := make([]NodeID, len(t.Es))
		for i, c := range t.Es {
			ks[i] = b.AddExpr(c)
		}
		id = b.And(ks...)
	case *event.Or:
		ks := make([]NodeID, len(t.Es))
		for i, c := range t.Es {
			ks[i] = b.AddExpr(c)
		}
		id = b.Or(ks...)
	case *event.Atom:
		id = b.Cmp(t.Op, b.AddNum(t.L), b.AddNum(t.R))
	default:
		panic("network: unknown event expression type")
	}
	b.exprMemo[e] = id
	return id
}

// AddNum compiles a c-value expression into the network.
func (b *Builder) AddNum(x event.NumExpr) NodeID {
	if id, ok := b.numMemo[x]; ok {
		return id
	}
	var id NodeID
	switch t := x.(type) {
	case *event.CondVal:
		id = b.CondVal(b.AddExpr(t.Guard), t.Val)
	case *event.GuardNum:
		id = b.Guard(b.AddExpr(t.Guard), b.AddNum(t.V))
	case *event.Sum:
		ks := make([]NodeID, len(t.Xs))
		for i, c := range t.Xs {
			ks[i] = b.AddNum(c)
		}
		id = b.Sum(ks...)
	case *event.Prod:
		ks := make([]NodeID, len(t.Xs))
		for i, c := range t.Xs {
			ks[i] = b.AddNum(c)
		}
		id = b.Prod(ks...)
	case *event.InvOf:
		id = b.Inv(b.AddNum(t.X))
	case *event.PowOf:
		id = b.Pow(b.AddNum(t.X), t.Exp)
	case *event.DistOf:
		id = b.Dist(b.AddNum(t.L), b.AddNum(t.R))
	default:
		panic("network: unknown c-value expression type")
	}
	b.numMemo[x] = id
	return id
}

// Target registers a compilation target for the given Boolean node.
func (b *Builder) Target(name string, id NodeID) {
	if !b.nodes[id].Kind.IsBool() {
		panic(fmt.Sprintf("network: target %q is not a Boolean node", name))
	}
	b.targets = append(b.targets, Target{Name: name, Node: id})
}

// Build finalises the network: when targets are registered, nodes
// unreachable from any target (construction garbage left behind by constant
// folding) are swept away; parent lists are materialised. The builder must
// not be reused afterwards.
func (b *Builder) Build() *Net {
	nodes := b.nodes
	targets := b.targets
	if len(targets) > 0 {
		nodes, targets = b.sweep()
	}
	parents := make([][]NodeID, len(nodes))
	for id, n := range nodes {
		for _, k := range n.Kids {
			parents[k] = append(parents[k], NodeID(id))
		}
	}
	varNode := make([]NodeID, b.space.Len())
	for i := range varNode {
		varNode[i] = NoNode
	}
	for id, n := range nodes {
		if n.Kind == KVar {
			varNode[n.Var] = NodeID(id)
		}
	}
	net := &Net{
		Space:   b.space,
		Metric:  b.metric,
		Nodes:   nodes,
		Parents: parents,
		Targets: targets,
		VarNode: varNode,
	}
	if b.reg != nil {
		st := b.Stats()
		b.reg.Counter("network.hashcons.lookups").Add(st.Lookups)
		b.reg.Counter("network.hashcons.hits").Add(st.Hits)
		b.reg.Counter("network.nodes.created").Add(st.Created)
		b.reg.Counter("network.nodes.live").Add(int64(len(nodes)))
		b.reg.Gauge("network.hashcons.hit_rate").Set(st.HitRate())
		b.reg.Counter("network.builder.canon_rewrites").Add(st.CanonRewrites)
		b.reg.Counter("network.builder.arena_chunks").Add(st.ArenaChunks)
		for kind, c := range net.KindCounts() {
			b.reg.Counter("network.nodes.kind." + kind).Add(c)
		}
	}
	return net
}

// sweep keeps only the nodes reachable downward from a target, preserving
// the topological id order.
func (b *Builder) sweep() ([]Node, []Target) {
	keep := make([]bool, len(b.nodes))
	var mark func(id NodeID)
	stack := make([]NodeID, 0, len(b.targets))
	mark = func(id NodeID) {
		if keep[id] {
			return
		}
		keep[id] = true
		stack = append(stack, id)
	}
	for _, t := range b.targets {
		mark(t.Node)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, k := range b.nodes[id].Kids {
			mark(k)
		}
	}
	remap := make([]NodeID, len(b.nodes))
	nodes := make([]Node, 0, len(b.nodes))
	for id, n := range b.nodes {
		if !keep[id] {
			remap[id] = NoNode
			continue
		}
		kids := make([]NodeID, len(n.Kids))
		for i, k := range n.Kids {
			kids[i] = remap[k]
		}
		n.Kids = kids
		remap[id] = NodeID(len(nodes))
		nodes = append(nodes, n)
	}
	targets := make([]Target, len(b.targets))
	for i, t := range b.targets {
		targets[i] = Target{Name: t.Name, Node: remap[t.Node]}
	}
	return nodes, targets
}

// FromProgram compiles all declarations of an event program into a network
// and registers the declarations named by targetNames as compilation
// targets.
func FromProgram(prog *event.Program, metric vec.Distance, targetNames []string) (*Net, error) {
	b := NewBuilder(prog.Space, metric)
	ids := make(map[string]NodeID, len(prog.Decls))
	for _, d := range prog.Decls {
		switch d.Kind {
		case event.BoolDecl:
			ids[d.Name] = b.AddExpr(d.E)
		case event.NumDecl:
			ids[d.Name] = b.AddNum(d.N)
		}
	}
	for _, name := range targetNames {
		id, ok := ids[name]
		if !ok {
			return nil, fmt.Errorf("network: target %q is not declared by the program", name)
		}
		if !b.nodes[id].Kind.IsBool() {
			return nil, fmt.Errorf("network: target %q is not a Boolean event", name)
		}
		b.Target(name, id)
	}
	return b.Build(), nil
}
