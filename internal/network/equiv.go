package network

import (
	"fmt"
	"slices"
	"sort"
)

// Isomorphic reports whether two networks are structurally identical up to
// node numbering and commutative ∧/∨ child order: every target name must
// exist in both nets and root DAGs that hash-cons to the same canonical
// form. Σ/Π child order is compared exactly — float addition is not
// associative-commutative, so reordered sums are NOT isomorphic here even
// though they are mathematically equal. A nil error means any evaluator
// that respects child order computes bit-identical results on both nets.
//
// It is the oracle check between the fused front end and the legacy
// two-phase translate-then-ground path.
func Isomorphic(a, b *Net) error {
	an := targetsByName(a)
	bn := targetsByName(b)
	if len(an) != len(bn) {
		return fmt.Errorf("network: target count differs: %d vs %d", len(an), len(bn))
	}
	names := make([]string, 0, len(an))
	for name := range an {
		if _, ok := bn[name]; !ok {
			return fmt.Errorf("network: target %q missing from second net", name)
		}
		names = append(names, name)
	}
	sort.Strings(names)

	// Re-intern both nets into one shared canonical id space: nodes are in
	// topological order (kids precede parents), so a single ascending scan
	// resolves each node's canonical form from its kids' canonical ids.
	table := make(map[string]NodeID, len(a.Nodes)+len(b.Nodes))
	ca := canonicalIDs(a, table)
	cb := canonicalIDs(b, table)
	for _, name := range names {
		if ca[an[name]] != cb[bn[name]] {
			return fmt.Errorf("network: target %q differs structurally", name)
		}
	}
	return nil
}

func targetsByName(n *Net) map[string]NodeID {
	out := make(map[string]NodeID, len(n.Targets))
	for _, t := range n.Targets {
		out[t.Name] = t.Node
	}
	return out
}

// canonicalIDs assigns every node a canonical id from the shared table. Two
// nodes — same net or not — get the same canonical id iff their DAGs are
// isomorphic under the Isomorphic contract.
func canonicalIDs(net *Net, table map[string]NodeID) []NodeID {
	canon := make([]NodeID, len(net.Nodes))
	var buf []byte
	var kids []NodeID
	for id, n := range net.Nodes {
		kids = kids[:0]
		for _, k := range n.Kids {
			kids = append(kids, canon[k])
		}
		if n.Kind == KAnd || n.Kind == KOr {
			// Commutative connectives compare order-insensitively; their
			// canonical kid ids define the canonical order.
			slices.Sort(kids)
		}
		nn := n
		nn.Kids = kids
		buf = appendInternKey(buf[:0], nn)
		c, ok := table[string(buf)]
		if !ok {
			c = NodeID(len(table))
			table[string(buf)] = c
		}
		canon[id] = c
	}
	return canon
}
