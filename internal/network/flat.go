package network

import "enframe/internal/event"

// Flat is the structure-of-arrays view of a network: node kinds, CSR-style
// child and parent spans into single flat slices, and dense payload arrays,
// all indexed by NodeID. The probability compiler's packed core walks these
// contiguous slices instead of chasing per-node pointers — one cache line of
// Kind covers 64 nodes, and a node's children are KidOff[id]..KidOff[id+1]
// in one shared slice. The view is immutable and shared by all compilations
// of the network; Net.Flat builds it once on first use.
type Flat struct {
	// Kind is the per-node kind tag.
	Kind []Kind
	// KidOff has len(nodes)+1 entries; node id's children are
	// Kids[KidOff[id]:KidOff[id+1]] in declaration order.
	KidOff []int32
	Kids   []NodeID
	// ParOff/Pars are the transposed spans: node id's parents are
	// Pars[ParOff[id]:ParOff[id+1]] in increasing id order (the propagation
	// order of the pointer-DAG walker, preserved bit-for-bit).
	ParOff []int32
	Pars   []NodeID
	// Op is the comparison operator, meaningful for KCmp nodes only.
	Op []event.CmpOp
	// ValIdx indexes Vals for KCondVal nodes; -1 elsewhere. The c-value
	// payloads live in one dense slice so the hot ⊗-derivation reads 8
	// bytes of index instead of a 48-byte Node field.
	ValIdx []int32
	Vals   []event.Value
}

// NumKids returns the fan-in of a node.
func (f *Flat) NumKids(id NodeID) int { return int(f.KidOff[id+1] - f.KidOff[id]) }

// KidsOf returns the child span of a node.
func (f *Flat) KidsOf(id NodeID) []NodeID { return f.Kids[f.KidOff[id]:f.KidOff[id+1]] }

// ParsOf returns the parent span of a node.
func (f *Flat) ParsOf(id NodeID) []NodeID { return f.Pars[f.ParOff[id]:f.ParOff[id+1]] }

// Flat returns the structure-of-arrays view of the network, building it on
// first use. The view is cached: repeated compilations of one network (the
// serving layer's hot path) share a single layout.
func (n *Net) Flat() *Flat {
	n.flatOnce.Do(func() { n.flat = buildFlat(n) })
	return n.flat
}

func buildFlat(n *Net) *Flat {
	nn := len(n.Nodes)
	f := &Flat{
		Kind:   make([]Kind, nn),
		KidOff: make([]int32, nn+1),
		Op:     make([]event.CmpOp, nn),
		ValIdx: make([]int32, nn),
	}
	nKids, nPars := 0, 0
	for id := range n.Nodes {
		nKids += len(n.Nodes[id].Kids)
		nPars += len(n.Parents[id])
	}
	f.Kids = make([]NodeID, 0, nKids)
	f.Pars = make([]NodeID, 0, nPars)
	f.ParOff = make([]int32, nn+1)
	for id := range n.Nodes {
		nd := &n.Nodes[id]
		f.Kind[id] = nd.Kind
		f.KidOff[id] = int32(len(f.Kids))
		f.Kids = append(f.Kids, nd.Kids...)
		f.Op[id] = nd.Op
		if nd.Kind == KCondVal {
			f.ValIdx[id] = int32(len(f.Vals))
			f.Vals = append(f.Vals, nd.Val)
		} else {
			f.ValIdx[id] = -1
		}
	}
	f.KidOff[nn] = int32(len(f.Kids))
	for id := range n.Parents {
		f.ParOff[id] = int32(len(f.Pars))
		f.Pars = append(f.Pars, n.Parents[id]...)
	}
	f.ParOff[nn] = int32(len(f.Pars))
	return f
}
