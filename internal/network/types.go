package network

import (
	"fmt"

	"enframe/internal/event"
)

// ValueType is the static type of a node's defined outcomes.
type ValueType uint8

const (
	// TBool marks Boolean nodes.
	TBool ValueType = iota
	// TScalar marks numeric nodes whose defined outcomes are reals.
	TScalar
	// TVector marks numeric nodes whose defined outcomes are feature
	// vectors.
	TVector
)

func (t ValueType) String() string {
	switch t {
	case TBool:
		return "bool"
	case TScalar:
		return "scalar"
	case TVector:
		return "vector"
	}
	return fmt.Sprintf("ValueType(%d)", uint8(t))
}

// Types computes the static type of every node. Event programs are
// well-typed by construction of the translator and encoders; Types reports
// an error for ill-typed networks (e.g. a comparison between vectors), which
// the probability compiler refuses to process.
func (n *Net) Types() ([]ValueType, error) {
	ts := make([]ValueType, len(n.Nodes))
	numKid := func(id NodeID, k NodeID) (ValueType, error) {
		t := ts[k]
		if t == TBool {
			return 0, fmt.Errorf("network: node %d: numeric operand %d is Boolean", id, k)
		}
		return t, nil
	}
	for id := range n.Nodes {
		nd := &n.Nodes[id]
		switch nd.Kind {
		case KVar, KConst, KNot, KAnd, KOr:
			ts[id] = TBool
		case KCmp:
			for _, k := range nd.Kids {
				t, err := numKid(NodeID(id), k)
				if err != nil {
					return nil, err
				}
				if t != TScalar {
					return nil, fmt.Errorf("network: node %d: comparison over %s operands", id, t)
				}
			}
			ts[id] = TBool
		case KCondVal:
			switch nd.Val.Kind {
			case event.Vector:
				ts[id] = TVector
			default:
				ts[id] = TScalar
			}
		case KGuard:
			t, err := numKid(NodeID(id), nd.Kids[1])
			if err != nil {
				return nil, err
			}
			ts[id] = t
		case KSum:
			t0 := TScalar
			for i, k := range nd.Kids {
				t, err := numKid(NodeID(id), k)
				if err != nil {
					return nil, err
				}
				if i == 0 {
					t0 = t
				} else if t != t0 {
					return nil, fmt.Errorf("network: node %d: sum of mixed scalar/vector operands", id)
				}
			}
			ts[id] = t0
		case KProd:
			// Scalars multiply; one vector operand makes the product a
			// vector (scalar_mult); two vector operands are ill-typed.
			vecs := 0
			for _, k := range nd.Kids {
				t, err := numKid(NodeID(id), k)
				if err != nil {
					return nil, err
				}
				if t == TVector {
					vecs++
				}
			}
			if vecs > 1 {
				return nil, fmt.Errorf("network: node %d: product of two vectors", id)
			}
			if vecs == 1 {
				ts[id] = TVector
			} else {
				ts[id] = TScalar
			}
		case KInv, KPow:
			t, err := numKid(NodeID(id), nd.Kids[0])
			if err != nil {
				return nil, err
			}
			if t != TScalar {
				return nil, fmt.Errorf("network: node %d: %s of a vector", id, nd.Kind)
			}
			ts[id] = TScalar
		case KDist:
			for _, k := range nd.Kids {
				t, err := numKid(NodeID(id), k)
				if err != nil {
					return nil, err
				}
				if t != TVector {
					return nil, fmt.Errorf("network: node %d: dist over %s operand", id, t)
				}
			}
			ts[id] = TScalar
		}
	}
	return ts, nil
}
