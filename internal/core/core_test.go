package core

import (
	"fmt"
	"math/rand"
	"testing"

	"enframe/internal/event"
	"enframe/internal/interp"
	"enframe/internal/lang"
	"enframe/internal/lineage"
	"enframe/internal/prob"
	"enframe/internal/vec"
	"enframe/internal/worlds"
)

// TestRunKMedoidsEndToEnd runs the full pipeline (parse → translate →
// network → compile) on Figure 1's program and cross-checks the medoid
// probabilities against the per-world naïve baseline. The generic
// translation follows the paper's unguarded encoding, so the comparison
// uses fully certain data plus one uncertain tail object, where both
// encodings agree with the subset semantics.
func TestRunKMedoidsEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := make([]vec.Vec, 6)
	for i := range pts {
		pts[i] = vec.New(float64(rng.Intn(20)), float64(rng.Intn(20)))
	}
	objs, space, err := lineage.Attach(pts, lineage.Config{
		Scheme: lineage.Independent, GroupSize: 2, CertainFraction: 0, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Spec{
		Source:      lang.KMedoidsSource,
		Objects:     objs,
		Space:       space,
		Params:      []int{2, 2},
		InitIndices: []int{0, 1},
		Metric:      vec.SquaredEuclidean,
		Targets:     []string{"Centre["},
		Compile:     prob.Options{Strategy: prob.Exact},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Result.Targets); got != 2*len(objs) {
		t.Fatalf("got %d targets, want %d", got, 2*len(objs))
	}
	for _, tb := range rep.Result.Targets {
		if tb.Gap() > 1e-9 {
			t.Fatalf("%s did not converge: [%g, %g]", tb.Name, tb.Lower, tb.Upper)
		}
	}
	// Cross-check against brute force: run the program per world through
	// the interpreter (absent objects bound to u, exactly the semantics
	// the generic translation encodes) and accumulate probabilities.
	prog := lang.MustParse(lang.KMedoidsSource)
	evs := lineage.Events(objs)
	want := map[string]float64{}
	worlds.Enumerate(space, func(nu event.SliceValuation, p float64) bool {
		present := worlds.Presence(evs, nu)
		w, err := interp.Run(prog, interp.External{
			Objects: objs, Present: present,
			Params: []int{2, 2}, InitIndices: []int{0, 1},
			Metric: vec.SquaredEuclidean,
		})
		if err != nil {
			t.Fatal(err)
		}
		centre, err := w.BoolMatrix("Centre")
		if err != nil {
			t.Fatal(err)
		}
		for i := range centre {
			for l := range centre[i] {
				if centre[i][l] {
					want[fmt.Sprintf("Centre[%d][%d]", i, l)] += p
				}
			}
		}
		return true
	})
	for _, tb := range rep.Result.Targets {
		if d := tb.Lower - want[tb.Name]; d > 1e-9 || d < -1e-9 {
			t.Fatalf("%s: pipeline %g vs per-world interpreter %g", tb.Name, tb.Lower, want[tb.Name])
		}
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Spec{Source: "x = ("}); err == nil {
		t.Error("expected parse error")
	}
	if _, err := Run(Spec{Source: "x = 1\n"}); err == nil {
		t.Error("expected no-targets error")
	}
	if _, err := Run(Spec{Source: "x = 1\n", Targets: []string{"nope["}}); err == nil {
		t.Error("expected unknown-target error")
	}
}
