package core

import (
	"strings"
	"testing"

	"enframe/internal/data"
	"enframe/internal/lang"
	"enframe/internal/lineage"
	"enframe/internal/obs"
	"enframe/internal/prob"
)

// TestRunTraced checks that a traced end-to-end run produces a span tree
// covering every pipeline stage, fills Report.Timings, and records
// hash-consing stats from grounding.
func TestRunTraced(t *testing.T) {
	objs, space, err := lineage.Attach(data.Points(8, 1), lineage.Config{
		Scheme: lineage.Positive, NumVars: 6, L: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New("run")
	rep, err := Run(Spec{
		Source:      lang.KMedoidsSource,
		Objects:     objs,
		Space:       space,
		Params:      []int{2, 2},
		InitIndices: []int{0, 1},
		Targets:     []string{"Centre["},
		Compile:     prob.Options{Strategy: prob.Exact, Obs: tr},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()

	tree := tr.Tree()
	for _, stage := range []string{"lex", "parse", "check", "translate", "ground", "compile"} {
		if !strings.Contains(tree, stage) {
			t.Errorf("trace tree missing stage %q:\n%s", stage, tree)
		}
	}

	tm := rep.Timings
	if tm.Total <= 0 {
		t.Fatalf("Timings.Total = %v, want > 0", tm.Total)
	}
	sum := tm.Lex + tm.Parse + tm.Translate + tm.Ground + tm.Compile
	if sum > tm.Total {
		t.Errorf("stage timings sum %v exceeds total %v", sum, tm.Total)
	}

	if rep.Ground.Lookups == 0 || rep.Ground.Created == 0 {
		t.Errorf("grounding stats empty: %+v", rep.Ground)
	}
	if hr := rep.Ground.HitRate(); hr < 0 || hr > 1 {
		t.Errorf("hash-cons hit rate %v out of [0,1]", hr)
	}
	if got := tr.Metrics().Counter("network.hashcons.lookups").Value(); got != rep.Ground.Lookups {
		t.Errorf("metrics lookups %d != report %d", got, rep.Ground.Lookups)
	}
}

// TestRunUntracedTimings checks stage timings are recorded even when no
// trace is attached — they are plain Report fields, not trace artifacts.
func TestRunUntracedTimings(t *testing.T) {
	objs, space, err := lineage.Attach(data.Points(6, 1), lineage.Config{
		Scheme: lineage.Positive, NumVars: 5, L: 8, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Spec{
		Source:      lang.KMedoidsSource,
		Objects:     objs,
		Space:       space,
		Params:      []int{2, 2},
		InitIndices: []int{0, 1},
		Targets:     []string{"Centre["},
		Compile:     prob.Options{Strategy: prob.Exact},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Timings.Total <= 0 || rep.Timings.Translate <= 0 {
		t.Errorf("untraced run lost timings: %+v", rep.Timings)
	}
}
