// Package core is the ENFrame platform facade: it takes a user program (the
// Python fragment of §2), probabilistic input data, and a set of target
// events, and runs the full pipeline — parse → validate → translate to an
// event program (§3) → ground into an event network (§4.1) → compute exact
// or ε-approximate probabilities (§4). Users stay oblivious to the
// probabilistic nature of the input: the same program runs deterministically
// through internal/interp and probabilistically through this package.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"enframe/internal/circuit"
	"enframe/internal/event"
	"enframe/internal/lang"
	"enframe/internal/lineage"
	"enframe/internal/network"
	"enframe/internal/prob"
	"enframe/internal/translate"
	"enframe/internal/vec"
)

// Spec describes one ENFrame run.
type Spec struct {
	// Source is the user program text.
	Source string
	// Parsed, when non-nil, is the already parsed form of Source; the
	// pipeline then skips lexing and parsing entirely. Long-lived callers
	// that re-ground the same program against mutating data — the streaming
	// data plane re-grounds a window segment on every structural delta —
	// parse once and reuse the AST (it is immutable after parsing).
	Parsed *lang.Program
	// Objects are the uncertain input data points backing loadData();
	// Space is the variable space their lineage ranges over.
	Objects []lineage.Object
	Space   *event.Space
	// Params backs loadParams() in binding order.
	Params []int
	// InitIndices backs init().
	InitIndices []int
	// Matrix backs a third loadData() binding (Markov clustering).
	Matrix [][]float64
	// Metric is the distance measure for dist(); nil means Euclidean.
	Metric vec.Distance
	// Targets selects the program variables whose final events become
	// compilation targets. Entries are flattened element symbols
	// ("Centre[0][2]") or prefixes ending in "[" ("Centre[") matching all
	// elements; they must be Boolean-valued.
	Targets []string
	// Compile configures the probability computation.
	Compile prob.Options
	// LegacyFrontEnd routes preparation through the two-phase
	// translate-then-ground path (§3.5 materialises the event-program AST,
	// §4.1 walks it into the network) instead of the default fused
	// streaming builder. Kept as the differential oracle for the fused
	// front end; the two paths produce semantically identical networks.
	LegacyFrontEnd bool
}

// Report is the outcome of a run.
type Report struct {
	// Result holds per-target probability bounds and compilation stats.
	Result *prob.Result
	// Events is the translated event program (§3.4). The default fused
	// front end never materialises it, so it is nil unless the run used
	// Spec.LegacyFrontEnd.
	Events *event.Program
	// Net is the grounded event network the compiler ran on.
	Net *network.Net
	// Translation exposes the final symbolic bindings (legacy front end
	// only; nil on the fused path).
	Translation *translate.Result
	// Ground is the hash-cons accounting of the network construction.
	Ground network.BuilderStats
	// Timings is the wall-clock breakdown of the run across stages.
	Timings Timings
}

// Timings is the per-stage wall-clock breakdown of one pipeline run.
// Translate includes semantic checking; Compile's internal breakdown
// (order/init/explore) lives in Result.Stats.Timings.
type Timings struct {
	Lex       time.Duration
	Parse     time.Duration
	Translate time.Duration
	Ground    time.Duration
	Compile   time.Duration
	Total     time.Duration
}

// Artifact is the reusable compiled prefix of a run: the translated event
// program and the grounded, hash-consed event network (§4.1), i.e.
// everything up to — but not including — probability compilation. An
// Artifact is immutable after construction (compilation keeps all mutable
// masks in per-run state), so one Artifact may serve any number of
// concurrent CompileContext calls with different strategies, ε, workers,
// and deadlines. The serving layer's compiled-network cache stores
// Artifacts keyed by a content hash of (program, data spec, targets).
type Artifact struct {
	// Events is the translated event program (§3.4); nil on the default
	// fused front end, which grounds during translation instead.
	Events *event.Program
	// Net is the grounded event network compilation runs on.
	Net *network.Net
	// Translation exposes the final symbolic bindings (legacy front end
	// only; nil on the fused path).
	Translation *translate.Result
	// Ground is the hash-cons accounting of the network construction.
	Ground network.BuilderStats
	// PrepTimings holds the Lex/Parse/Translate/Ground stage durations of
	// the original preparation; Compile and Total are zero.
	PrepTimings Timings

	// orders memoizes the Shannon-expansion variable order per heuristic,
	// so cache hits re-enter compilation past the order stage too.
	ordersMu sync.Mutex
	orders   map[prob.OrderHeuristic][]event.VarID

	// circuits memoizes the traced arithmetic circuit per heuristic, with
	// the same single-flight coalescing as the serving layer's artifact
	// cache: concurrent first callers share one trace. Only complete
	// circuits are cached (a timed-out partial trace must not serve
	// replay-at-other-probabilities queries forever after).
	circuitsMu sync.Mutex
	circuits   map[prob.OrderHeuristic]*circuitCall
}

// circuitCall is one in-flight or completed circuit trace.
type circuitCall struct {
	done chan struct{}
	c    *circuit.Circuit
	res  *prob.Result
	err  error
}

// Run executes the full ENFrame pipeline. When spec.Compile.Obs is set,
// every stage is traced as a span under the trace root and the hot layers
// publish counters into the trace's metrics registry.
func Run(spec Spec) (*Report, error) {
	return RunContext(context.Background(), spec)
}

// RunContext is Run with cooperative cancellation: the pipeline aborts
// between stages and — during the long compilation stage — at branch
// granularity when ctx is cancelled or its deadline passes.
func RunContext(ctx context.Context, spec Spec) (*Report, error) {
	art, err := PrepareContext(ctx, spec)
	if err != nil {
		return nil, err
	}
	return art.CompileContext(ctx, spec.Compile)
}

// PrepareContext runs the pipeline up to and including grounding
// (lex → parse → translate → ground) and returns the reusable Artifact.
// spec.Compile is consulted only for its Obs trace; strategy, ε, workers,
// and deadline belong to CompileContext.
func PrepareContext(ctx context.Context, spec Spec) (*Artifact, error) {
	tr := spec.Compile.Obs
	root := tr.Root()
	var tm Timings
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	prog := spec.Parsed
	if prog == nil {
		tLex := time.Now()
		lexSpan := root.Start("lex")
		toks, err := lang.Tokens(spec.Source)
		lexSpan.SetInt("tokens", int64(len(toks)))
		lexSpan.End()
		tm.Lex = time.Since(tLex)
		if err != nil {
			return nil, fmt.Errorf("core: lex: %w", err)
		}

		tParse := time.Now()
		parseSpan := root.Start("parse")
		prog, err = lang.ParseTokens(toks)
		parseSpan.End()
		tm.Parse = time.Since(tParse)
		if err != nil {
			return nil, fmt.Errorf("core: parse: %w", err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	ext := translate.External{
		Objects:     spec.Objects,
		Space:       spec.Space,
		Matrix:      spec.Matrix,
		Params:      spec.Params,
		InitIndices: spec.InitIndices,
		Obs:         tr,
	}

	if spec.LegacyFrontEnd {
		tTranslate := time.Now()
		res, err := translate.Translate(prog, ext)
		tm.Translate = time.Since(tTranslate)
		if err != nil {
			return nil, fmt.Errorf("core: translate: %w", err)
		}
		targets, err := expandTargets(res, spec.Targets)
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}

		tGround := time.Now()
		groundSpan := root.Start("ground")
		b := network.NewBuilder(spec.Space, spec.Metric)
		b.SetObs(tr.Metrics())
		for _, sym := range targets {
			e, ok := res.BoolEvent(sym)
			if !ok {
				groundSpan.End()
				return nil, fmt.Errorf("core: target %q is not a Boolean program variable", sym)
			}
			b.Target(sym, b.AddExpr(e))
			if err := ctx.Err(); err != nil {
				groundSpan.End()
				return nil, fmt.Errorf("core: %w", err)
			}
		}
		net := b.Build()
		ground := b.Stats()
		groundSpan.SetInt("nodes", int64(net.NumNodes()))
		groundSpan.SetInt("targets", int64(len(net.Targets)))
		groundSpan.SetFloat("hashcons_hit_rate", ground.HitRate())
		groundSpan.End()
		tm.Ground = time.Since(tGround)
		tm.Total = tm.Lex + tm.Parse + tm.Translate + tm.Ground

		return &Artifact{
			Events: res.Program, Net: net, Translation: res,
			Ground: ground, PrepTimings: tm,
		}, nil
	}

	// Fused front end: translation emits events straight into the
	// hash-consed builder, so Translate covers the interleaved grounding
	// work and Ground only the target sweep + finalisation.
	tTranslate := time.Now()
	b := network.NewBuilder(spec.Space, spec.Metric)
	b.SetObs(tr.Metrics())
	res, err := translate.TranslateInto(prog, ext, b)
	tm.Translate = time.Since(tTranslate)
	if err != nil {
		return nil, fmt.Errorf("core: translate: %w", err)
	}
	targets, err := expandTargets(res, spec.Targets)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	tGround := time.Now()
	groundSpan := root.Start("ground")
	for _, sym := range targets {
		id, ok := res.BoolNode(sym)
		if !ok {
			groundSpan.End()
			return nil, fmt.Errorf("core: target %q is not a Boolean program variable", sym)
		}
		b.Target(sym, id)
	}
	net := b.Build()
	ground := b.Stats()
	groundSpan.SetInt("nodes", int64(net.NumNodes()))
	groundSpan.SetInt("targets", int64(len(net.Targets)))
	groundSpan.SetFloat("hashcons_hit_rate", ground.HitRate())
	groundSpan.End()
	tm.Ground = time.Since(tGround)
	tm.Total = tm.Lex + tm.Parse + tm.Translate + tm.Ground

	return &Artifact{Net: net, Ground: ground, PrepTimings: tm}, nil
}

// Order returns the artifact's memoized variable order for the heuristic,
// computing it on first use. Safe for concurrent callers.
func (a *Artifact) Order(h prob.OrderHeuristic) []event.VarID {
	a.ordersMu.Lock()
	defer a.ordersMu.Unlock()
	if a.orders == nil {
		a.orders = map[prob.OrderHeuristic][]event.VarID{}
	}
	order, ok := a.orders[h]
	if !ok {
		order = prob.Order(a.Net, h)
		a.orders[h] = order
	}
	return order
}

// Circuit returns the artifact's traced arithmetic circuit for the
// heuristic, compiling it on first use; cached reports whether the circuit
// came from the memo (a warm call costs zero compilations). Concurrent
// first callers coalesce onto one trace; a leader whose context dies hands
// leadership to the next waiter instead of caching its failure. When
// opts.Order overrides the variable order the memo is bypassed entirely.
func (a *Artifact) Circuit(ctx context.Context, opts prob.Options) (*circuit.Circuit, *prob.Result, bool, error) {
	opts.Strategy = prob.Circuit
	if opts.Order != nil {
		c, res, err := prob.CompileCircuit(ctx, a.Net, opts)
		if err != nil {
			return nil, nil, false, fmt.Errorf("core: compile: %w", err)
		}
		return c, res, false, nil
	}
	opts.Order = a.Order(opts.Heuristic)
	for {
		a.circuitsMu.Lock()
		if call, ok := a.circuits[opts.Heuristic]; ok {
			a.circuitsMu.Unlock()
			select {
			case <-call.done:
			case <-ctx.Done():
				return nil, nil, false, fmt.Errorf("core: %w", ctx.Err())
			}
			if call.err == nil {
				return call.c, call.res, true, nil
			}
			if errors.Is(call.err, context.Canceled) || errors.Is(call.err, context.DeadlineExceeded) {
				continue // the leader's context died; retry as the new leader
			}
			return nil, nil, false, call.err
		}
		call := &circuitCall{done: make(chan struct{})}
		if a.circuits == nil {
			a.circuits = map[prob.OrderHeuristic]*circuitCall{}
		}
		a.circuits[opts.Heuristic] = call
		a.circuitsMu.Unlock()

		c, res, err := prob.CompileCircuit(ctx, a.Net, opts)
		if err != nil {
			err = fmt.Errorf("core: compile: %w", err)
		}
		call.c, call.res, call.err = c, res, err
		if err != nil || !c.Complete() {
			a.circuitsMu.Lock()
			delete(a.circuits, opts.Heuristic)
			a.circuitsMu.Unlock()
		}
		close(call.done)
		return c, res, false, err
	}
}

// InvalidateCircuits drops every memoized circuit and variable order from
// the artifact. An Artifact itself is immutable, so ordinary callers never
// need this; it exists for owners that REPLACE an artifact behind a stable
// handle (a streaming session rebuilding a window segment's network after a
// structural delta) and must guarantee that no stale memoized circuit —
// traced over the pre-delta network — can ever serve a replay query again.
// In-flight Circuit calls complete against the old memo entries they hold;
// calls arriving after InvalidateCircuits returns re-trace.
func (a *Artifact) InvalidateCircuits() {
	a.ordersMu.Lock()
	a.orders = nil
	a.ordersMu.Unlock()
	a.circuitsMu.Lock()
	a.circuits = nil
	a.circuitsMu.Unlock()
}

// CompileContext computes probabilities on the prepared network with fresh
// compilation options. Repeated calls — concurrent ones included — share the
// artifact; the variable order is memoized per heuristic unless opts.Order
// overrides it.
func (a *Artifact) CompileContext(ctx context.Context, opts prob.Options) (*Report, error) {
	if opts.Order == nil {
		opts.Order = a.Order(opts.Heuristic)
	}
	tm := a.PrepTimings
	tCompile := time.Now()
	pr, err := prob.CompileCtx(ctx, a.Net, opts)
	tm.Compile = time.Since(tCompile)
	tm.Total = tm.Lex + tm.Parse + tm.Translate + tm.Ground + tm.Compile
	if err != nil {
		return nil, fmt.Errorf("core: compile: %w", err)
	}
	return &Report{
		Result: pr, Events: a.Events, Net: a.Net, Translation: a.Translation,
		Ground: a.Ground, Timings: tm,
	}, nil
}

// symbolTable is the part of a translation result target expansion needs;
// both the legacy translate.Result and the fused translate.NetResult
// satisfy it.
type symbolTable interface {
	HasBool(sym string) bool
	SymbolsWithPrefix(prefix string) []string
}

// expandTargets resolves target patterns against the translated bindings.
func expandTargets(res symbolTable, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("core: no targets requested")
	}
	var out []string
	for _, pat := range patterns {
		// A bare name that is itself a Boolean scalar ("b0") is an exact
		// target, not a prefix pattern.
		if !strings.Contains(pat, "[") {
			if res.HasBool(pat) {
				out = append(out, pat)
				continue
			}
		}
		if strings.HasSuffix(pat, "[") || !strings.Contains(pat, "[") {
			prefix := strings.TrimSuffix(pat, "[") + "["
			matches := res.SymbolsWithPrefix(prefix)
			if len(matches) == 0 {
				return nil, fmt.Errorf("core: no program variables match target pattern %q", pat)
			}
			out = append(out, matches...)
			continue
		}
		out = append(out, pat)
	}
	sort.Strings(out)
	// Deduplicate.
	uniq := out[:0]
	for i, s := range out {
		if i == 0 || out[i-1] != s {
			uniq = append(uniq, s)
		}
	}
	return uniq, nil
}
