package core

import (
	"context"
	"testing"

	"enframe/internal/data"
	"enframe/internal/lang"
	"enframe/internal/lineage"
	"enframe/internal/prob"
)

func smallSpec(t *testing.T, parsed *lang.Program) Spec {
	t.Helper()
	objs, space, err := lineage.Attach(data.Points(6, 3), lineage.Config{
		Scheme: lineage.Positive, GroupSize: 2, NumVars: 5, L: 3, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return Spec{
		Source:      lang.KMedoidsSource,
		Parsed:      parsed,
		Objects:     objs,
		Space:       space,
		Params:      []int{2, 2},
		InitIndices: []int{0, 1},
		Targets:     []string{"Centre["},
	}
}

// TestPrepareParsedSkipsLexParse checks that a pre-parsed program prepares
// to the same artifact as the source text, without re-lexing.
func TestPrepareParsedSkipsLexParse(t *testing.T) {
	ctx := context.Background()
	base, err := PrepareContext(ctx, smallSpec(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	toks, err := lang.Tokens(lang.KMedoidsSource)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lang.ParseTokens(toks)
	if err != nil {
		t.Fatal(err)
	}
	art, err := PrepareContext(ctx, smallSpec(t, prog))
	if err != nil {
		t.Fatal(err)
	}
	if art.PrepTimings.Lex != 0 || art.PrepTimings.Parse != 0 {
		t.Fatalf("pre-parsed preparation still spent time lexing/parsing: %+v", art.PrepTimings)
	}
	if got, want := art.Net.NumNodes(), base.Net.NumNodes(); got != want {
		t.Fatalf("pre-parsed network has %d nodes, source path %d", got, want)
	}
	if got, want := len(art.Net.Targets), len(base.Net.Targets); got != want {
		t.Fatalf("target count drifted: %d vs %d", got, want)
	}
}

// TestInvalidateCircuits is the circuit-cache invalidation regression: after
// InvalidateCircuits, the next Circuit call must re-trace instead of serving
// the stale memo (the streaming plane relies on this when a structural delta
// replaces a segment's network behind a stable handle).
func TestInvalidateCircuits(t *testing.T) {
	ctx := context.Background()
	art, err := PrepareContext(ctx, smallSpec(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	c1, _, cached, err := art.Circuit(ctx, prob.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatalf("first Circuit call reported cached")
	}
	c2, _, cached, err := art.Circuit(ctx, prob.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !cached || c2 != c1 {
		t.Fatalf("second Circuit call did not hit the memo (cached=%v, same=%v)", cached, c2 == c1)
	}

	art.InvalidateCircuits()

	c3, _, cached, err := art.Circuit(ctx, prob.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatalf("Circuit call after InvalidateCircuits served the stale memo")
	}
	if c3 == c1 {
		t.Fatalf("Circuit call after InvalidateCircuits returned the old circuit pointer")
	}
	// The re-trace is over the same (unchanged) artifact, so the fresh
	// circuit must still be equivalent — same node count and targets.
	if c3.Nodes() != c1.Nodes() || len(c3.Targets()) != len(c1.Targets()) {
		t.Fatalf("re-traced circuit differs structurally: %d/%d nodes, %d/%d targets",
			c3.Nodes(), c1.Nodes(), len(c3.Targets()), len(c1.Targets()))
	}
}
