package encode

import (
	"time"

	"enframe/internal/cluster"
	"enframe/internal/event"
	"enframe/internal/lineage"
	"enframe/internal/prob"
	"enframe/internal/vec"
	"enframe/internal/worlds"
)

// NaiveOptions configures the naïve possible-worlds baseline.
type NaiveOptions struct {
	// Memoise caches the clustering result per distinct present-object
	// subset. The paper's baseline clusters every world explicitly;
	// memoisation is the ablation variant.
	Memoise bool
	// Timeout aborts the enumeration, returning TimedOut bounds.
	Timeout time.Duration
}

// Naive computes the same target probabilities as Network + prob.Compile by
// explicitly iterating over every possible world and running deterministic
// k-medoids in each (§5 "Algorithms"). It is exponential in the number of
// random variables and serves as the paper's baseline.
func (sp *KMedoidsSpec) Naive(opts NaiveOptions) (*prob.Result, error) {
	if err := sp.validate(); err != nil {
		return nil, err
	}
	names := sp.TargetNames()
	probs := make([]float64, len(names))

	evs := lineage.Events(sp.Objects)
	points := lineage.Positions(sp.Objects)
	init := sp.init()
	metric := sp.metric()
	pairs := sp.pairs()

	type memoEntry struct{ hit []bool }
	memo := make(map[worlds.PresenceKey]memoEntry)

	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}
	timedOut := false
	nWorlds := int64(0)
	start := time.Now()

	worlds.Enumerate(sp.Space, func(nu event.SliceValuation, p float64) bool {
		nWorlds++
		if !deadline.IsZero() && nWorlds&255 == 0 && time.Now().After(deadline) {
			timedOut = true
			return false
		}
		var hit []bool
		if opts.Memoise {
			key, present, ok := worlds.KeyOf(evs, nu)
			if ok {
				if e, cached := memo[key]; cached {
					hit = e.hit
				} else {
					hit = sp.evalWorld(points, present, init, metric, pairs)
					memo[key] = memoEntry{hit: hit}
				}
			} else {
				hit = sp.evalWorld(points, present, init, metric, pairs)
			}
		} else {
			present := worlds.Presence(evs, nu)
			hit = sp.evalWorld(points, present, init, metric, pairs)
		}
		for i, h := range hit {
			if h {
				probs[i] += p
			}
		}
		return true
	})

	res := &prob.Result{TimedOut: timedOut}
	res.Stats.Branches = nWorlds
	res.Stats.Duration = time.Since(start)
	res.Stats.Jobs = 1
	for i, name := range names {
		upper := probs[i]
		if timedOut {
			// The unexplored mass could fall either way; report the loose
			// but sound interval [p, 1].
			upper = 1
		}
		res.Targets = append(res.Targets, prob.TargetBound{Name: name, Lower: probs[i], Upper: upper})
	}
	return res, nil
}

// evalWorld clusters one world and evaluates the target events.
func (sp *KMedoidsSpec) evalWorld(points []vec.Vec, present []bool, init []int, metric vec.Distance, pairs [][2]int) []bool {
	r := cluster.KMedoids(points, present, sp.K, sp.Iter, init, metric)
	var hit []bool
	switch sp.Targets {
	case TargetsMedoids:
		for i := 0; i < sp.K; i++ {
			hit = append(hit, r.Centre[i]...)
		}
	case TargetsAssignment:
		for i := 0; i < sp.K; i++ {
			hit = append(hit, r.InCl[i]...)
		}
	case TargetsCoOccurrence:
		for _, pr := range pairs {
			co := false
			for i := 0; i < sp.K; i++ {
				if r.InCl[i][pr[0]] && r.InCl[i][pr[1]] {
					co = true
					break
				}
			}
			hit = append(hit, co)
		}
	}
	return hit
}
