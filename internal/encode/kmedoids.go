// Package encode translates the three clustering algorithms of §2.1 into
// event networks whose per-world semantics provably equals running the
// algorithm on the objects present in that world (the paper's "golden
// standard"). The encodings follow Figures 1–3 with the existence guards
// spelled out (see DESIGN.md "Encoding notes"): absent objects belong to no
// cluster, compete for no medoid, and distances to a medoid expand over the
// medoid-selector events so the networks stay in the Σ-of-guarded-constants
// fragment that the masking compiler handles incrementally.
package encode

import (
	"fmt"

	"enframe/internal/event"
	"enframe/internal/lineage"
	"enframe/internal/network"
	"enframe/internal/vec"
)

// TargetSet selects which events become compilation targets.
type TargetSet uint8

const (
	// TargetsMedoids targets the medoid-selection events Centre[i][l] of
	// the final iteration (the paper's benchmark target set).
	TargetsMedoids TargetSet = iota
	// TargetsAssignment targets the object–cluster assignment events
	// InCl[i][l] of the final iteration.
	TargetsAssignment
	// TargetsCoOccurrence targets "are objects l and l' in the same
	// cluster?" events for the configured pairs.
	TargetsCoOccurrence
)

func (t TargetSet) String() string {
	switch t {
	case TargetsMedoids:
		return "medoids"
	case TargetsAssignment:
		return "assignment"
	case TargetsCoOccurrence:
		return "cooccurrence"
	}
	return fmt.Sprintf("TargetSet(%d)", uint8(t))
}

// KMedoidsSpec describes one probabilistic k-medoids task.
type KMedoidsSpec struct {
	Objects []lineage.Object
	Space   *event.Space
	K, Iter int
	// Init holds the initial medoid object indices π(0..k-1); nil picks
	// the first K objects.
	Init   []int
	Metric vec.Distance
	// Targets selects the compilation target set; Pairs configures the
	// co-occurrence pairs (nil targets consecutive pairs (0,1), (2,3), …).
	Targets TargetSet
	Pairs   [][2]int
}

func (sp *KMedoidsSpec) init() []int {
	if sp.Init != nil {
		return sp.Init
	}
	init := make([]int, sp.K)
	for i := range init {
		init[i] = i
	}
	return init
}

func (sp *KMedoidsSpec) metric() vec.Distance {
	if sp.Metric == nil {
		return vec.Euclidean
	}
	return sp.Metric
}

func (sp *KMedoidsSpec) pairs() [][2]int {
	if sp.Pairs != nil {
		return sp.Pairs
	}
	var ps [][2]int
	for l := 0; l+1 < len(sp.Objects); l += 2 {
		ps = append(ps, [2]int{l, l + 1})
	}
	return ps
}

// TargetName renders the canonical name of a target event; the naïve
// baseline and the compiled network use identical names and ordering.
func (sp *KMedoidsSpec) TargetNames() []string {
	var names []string
	switch sp.Targets {
	case TargetsMedoids:
		for i := 0; i < sp.K; i++ {
			for l := range sp.Objects {
				names = append(names, fmt.Sprintf("Centre[%d][%d]", i, l))
			}
		}
	case TargetsAssignment:
		for i := 0; i < sp.K; i++ {
			for l := range sp.Objects {
				names = append(names, fmt.Sprintf("InCl[%d][%d]", i, l))
			}
		}
	case TargetsCoOccurrence:
		for _, p := range sp.pairs() {
			names = append(names, fmt.Sprintf("CoOcc[%d][%d]", p[0], p[1]))
		}
	}
	return names
}

// Network compiles the spec into an event network with targets registered.
func (sp *KMedoidsSpec) Network() (*network.Net, error) {
	if err := sp.validate(); err != nil {
		return nil, err
	}
	n := len(sp.Objects)
	k := sp.K
	metric := sp.metric()
	b := network.NewBuilder(sp.Space, metric)

	// Existence events and the constant distance matrix.
	phi := make([]network.NodeID, n)
	for l, o := range sp.Objects {
		phi[l] = b.AddExpr(o.Lineage)
	}
	d := distanceMatrix(lineage.Positions(sp.Objects), metric)

	// dM[i][l]: the c-value dist(O_l, M_i) of the current medoids,
	// initialised from π: Φ(o_π(i)) ⊗ d(o_l, o_π(i)).
	dM := make([][]network.NodeID, k)
	init := sp.init()
	for i := 0; i < k; i++ {
		dM[i] = make([]network.NodeID, n)
		for l := 0; l < n; l++ {
			dM[i][l] = b.CondVal(phi[init[i]], event.Num(d[l][init[i]]))
		}
	}

	var inClT, centreT [][]network.NodeID
	for it := 0; it < sp.Iter; it++ {
		// Assignment: InCl[i][l] = Φ_l ∧ ⋀_j [dM[i][l] ≤ dM[j][l]].
		inCl := makeMatrix(k, n)
		for i := 0; i < k; i++ {
			for l := 0; l < n; l++ {
				conj := make([]network.NodeID, 0, k)
				conj = append(conj, phi[l])
				for j := 0; j < k; j++ {
					if j == i {
						continue
					}
					conj = append(conj, b.Cmp(event.LE, dM[i][l], dM[j][l]))
				}
				inCl[i][l] = b.And(conj...)
			}
		}
		inClT = breakTies2Net(b, inCl)

		// Update: DistSum[i][l] = Σ_p InCl[i][p] ⊗ d(l, p).
		distSum := makeMatrix(k, n)
		for i := 0; i < k; i++ {
			for l := 0; l < n; l++ {
				terms := make([]network.NodeID, n)
				for p := 0; p < n; p++ {
					terms[p] = b.CondVal(inClT[i][p], event.Num(d[l][p]))
				}
				distSum[i][l] = b.Sum(terms...)
			}
		}

		// Centre[i][l] = Φ_l ∧ ⋀_p (¬Φ_p ∨ [DistSum[i][l] ≤ DistSum[i][p]]).
		centre := makeMatrix(k, n)
		for i := 0; i < k; i++ {
			for l := 0; l < n; l++ {
				conj := make([]network.NodeID, 0, n)
				conj = append(conj, phi[l])
				for p := 0; p < n; p++ {
					if p == l {
						continue
					}
					cmp := b.Cmp(event.LE, distSum[i][l], distSum[i][p])
					conj = append(conj, b.Or(b.Not(phi[p]), cmp))
				}
				centre[i][l] = b.And(conj...)
			}
		}
		centreT = breakTies1Net(b, centre)

		// Next-iteration medoid distances expand over the selector:
		// dist(O_l, M_i) = Σ_p Centre[i][p] ⊗ d(l, p).
		if it+1 < sp.Iter {
			for i := 0; i < k; i++ {
				for l := 0; l < n; l++ {
					terms := make([]network.NodeID, n)
					for p := 0; p < n; p++ {
						terms[p] = b.CondVal(centreT[i][p], event.Num(d[l][p]))
					}
					dM[i][l] = b.Sum(terms...)
				}
			}
		}
	}

	sp.registerTargets(b, inClT, centreT)
	return b.Build(), nil
}

func (sp *KMedoidsSpec) registerTargets(b *network.Builder, inClT, centreT [][]network.NodeID) {
	switch sp.Targets {
	case TargetsMedoids:
		for i := 0; i < sp.K; i++ {
			for l := range sp.Objects {
				b.Target(fmt.Sprintf("Centre[%d][%d]", i, l), centreT[i][l])
			}
		}
	case TargetsAssignment:
		for i := 0; i < sp.K; i++ {
			for l := range sp.Objects {
				b.Target(fmt.Sprintf("InCl[%d][%d]", i, l), inClT[i][l])
			}
		}
	case TargetsCoOccurrence:
		for _, p := range sp.pairs() {
			both := make([]network.NodeID, sp.K)
			for i := 0; i < sp.K; i++ {
				both[i] = b.And(inClT[i][p[0]], inClT[i][p[1]])
			}
			b.Target(fmt.Sprintf("CoOcc[%d][%d]", p[0], p[1]), b.Or(both...))
		}
	}
}

func (sp *KMedoidsSpec) validate() error {
	n := len(sp.Objects)
	if n == 0 {
		return fmt.Errorf("encode: no objects")
	}
	if sp.K <= 0 || sp.K > n {
		return fmt.Errorf("encode: k = %d out of range for %d objects", sp.K, n)
	}
	if sp.Iter <= 0 {
		return fmt.Errorf("encode: iter = %d must be positive", sp.Iter)
	}
	for _, ix := range sp.init() {
		if ix < 0 || ix >= n {
			return fmt.Errorf("encode: initial medoid index %d out of range", ix)
		}
	}
	for _, p := range sp.pairs() {
		if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
			return fmt.Errorf("encode: co-occurrence pair %v out of range", p)
		}
	}
	return nil
}

// breakTies2Net encodes breakTies2: object l keeps only the first cluster i
// whose InCl[i][l] holds.
func breakTies2Net(b *network.Builder, m [][]network.NodeID) [][]network.NodeID {
	k := len(m)
	n := len(m[0])
	out := makeMatrix(k, n)
	for l := 0; l < n; l++ {
		for i := 0; i < k; i++ {
			conj := make([]network.NodeID, 0, i+1)
			conj = append(conj, m[i][l])
			for j := 0; j < i; j++ {
				conj = append(conj, b.Not(m[j][l]))
			}
			out[i][l] = b.And(conj...)
		}
	}
	return out
}

// breakTies1Net encodes breakTies1: cluster i keeps only the first object l
// whose Centre[i][l] holds.
func breakTies1Net(b *network.Builder, m [][]network.NodeID) [][]network.NodeID {
	k := len(m)
	n := len(m[0])
	out := makeMatrix(k, n)
	for i := 0; i < k; i++ {
		for l := 0; l < n; l++ {
			conj := make([]network.NodeID, 0, l+1)
			conj = append(conj, m[i][l])
			for p := 0; p < l; p++ {
				conj = append(conj, b.Not(m[i][p]))
			}
			out[i][l] = b.And(conj...)
		}
	}
	return out
}

func makeMatrix(k, n int) [][]network.NodeID {
	m := make([][]network.NodeID, k)
	for i := range m {
		m[i] = make([]network.NodeID, n)
	}
	return m
}

func distanceMatrix(pts []vec.Vec, metric vec.Distance) [][]float64 {
	n := len(pts)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			d[i][j] = metric(pts[i], pts[j])
		}
	}
	return d
}
