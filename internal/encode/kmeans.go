package encode

import (
	"fmt"

	"enframe/internal/event"
	"enframe/internal/lineage"
	"enframe/internal/network"
	"enframe/internal/vec"
)

// KMeansSpec describes one probabilistic k-means task (Figure 2). Unlike
// k-medoids, the cluster centroids are true vector-valued c-values —
// (Σ InCl ⊗ 1)⁻¹ · (Σ InCl ∧ O_l) — so the network contains vector sums,
// inversions, products, and dist nodes; the masking compiler handles these
// conservatively (they decide once their inputs do), which keeps exact
// compilation correct but gives it fewer early decisions than k-medoids.
type KMeansSpec struct {
	Objects []lineage.Object
	Space   *event.Space
	K, Iter int
	// Init holds the initial centroid object indices; nil picks the
	// first K objects.
	Init   []int
	Metric vec.Distance
}

func (sp *KMeansSpec) init() []int {
	if sp.Init != nil {
		return sp.Init
	}
	init := make([]int, sp.K)
	for i := range init {
		init[i] = i
	}
	return init
}

// TargetNames lists the assignment targets InCl[i][l] of the final
// iteration in network order.
func (sp *KMeansSpec) TargetNames() []string {
	var names []string
	for i := 0; i < sp.K; i++ {
		for l := range sp.Objects {
			names = append(names, fmt.Sprintf("InCl[%d][%d]", i, l))
		}
	}
	return names
}

// Network compiles the guarded k-means encoding: per world it equals
// running Figure 2's program on the objects present in that world.
func (sp *KMeansSpec) Network() (*network.Net, error) {
	n := len(sp.Objects)
	if n == 0 {
		return nil, fmt.Errorf("encode: no objects")
	}
	if sp.K <= 0 || sp.K > n {
		return nil, fmt.Errorf("encode: k = %d out of range for %d objects", sp.K, n)
	}
	if sp.Iter <= 0 {
		return nil, fmt.Errorf("encode: iter = %d must be positive", sp.Iter)
	}
	metric := sp.Metric
	if metric == nil {
		metric = vec.Euclidean
	}
	b := network.NewBuilder(sp.Space, metric)

	phi := make([]network.NodeID, n)
	obj := make([]network.NodeID, n)
	for l, o := range sp.Objects {
		phi[l] = b.AddExpr(o.Lineage)
		obj[l] = b.CondVal(phi[l], event.Vect(o.Pos))
	}

	// Initial centroids: Φ(o_π(i)) ⊗ o_π(i).
	centroid := make([]network.NodeID, sp.K)
	for i, ix := range sp.init() {
		centroid[i] = obj[ix]
	}

	var inClT [][]network.NodeID
	for it := 0; it < sp.Iter; it++ {
		// Assignment: InCl[i][l] = Φ_l ∧ ⋀_j [dist(O_l, M_i) ≤ dist(O_l, M_j)].
		dM := make([][]network.NodeID, sp.K)
		for i := 0; i < sp.K; i++ {
			dM[i] = make([]network.NodeID, n)
			for l := 0; l < n; l++ {
				dM[i][l] = b.Dist(obj[l], centroid[i])
			}
		}
		inCl := makeMatrix(sp.K, n)
		for i := 0; i < sp.K; i++ {
			for l := 0; l < n; l++ {
				conj := make([]network.NodeID, 0, sp.K)
				conj = append(conj, phi[l])
				for j := 0; j < sp.K; j++ {
					if j == i {
						continue
					}
					conj = append(conj, b.Cmp(event.LE, dM[i][l], dM[j][l]))
				}
				inCl[i][l] = b.And(conj...)
			}
		}
		inClT = breakTies2Net(b, inCl)

		// Update: M_i = (Σ_l InCl[i][l] ⊗ 1)⁻¹ · (Σ_l InCl[i][l] ∧ O_l).
		for i := 0; i < sp.K; i++ {
			counts := make([]network.NodeID, n)
			sums := make([]network.NodeID, n)
			for l := 0; l < n; l++ {
				counts[l] = b.CondVal(inClT[i][l], event.Num(1))
				sums[l] = b.Guard(inClT[i][l], obj[l])
			}
			centroid[i] = b.Prod(b.Inv(b.Sum(counts...)), b.Sum(sums...))
		}
	}

	for i := 0; i < sp.K; i++ {
		for l := range sp.Objects {
			b.Target(fmt.Sprintf("InCl[%d][%d]", i, l), inClT[i][l])
		}
	}
	return b.Build(), nil
}
