package encode

import (
	"fmt"

	"enframe/internal/event"
	"enframe/internal/network"
)

// MCLSpec describes Markov clustering (Figure 3) over an uncertain graph:
// edge (i, j) carries weight Weights[i][j] when its lineage event holds and
// weight 0 otherwise. The encoded network follows the event program of
// Figure 3 — expansion is Σ_k M[i][k]·M[k][j], inflation is the Hadamard
// power with a row-normalising inversion — and the compilation targets are
// co-clustering events [M[i][k] > θ] ∧ [M[j][k] > θ] for the configured
// node pairs.
type MCLSpec struct {
	Weights [][]float64
	// EdgeLineage[i][j] conditions edge (i, j); nil entries (or a nil
	// matrix) mean the edge is certain.
	EdgeLineage [][]event.Expr
	Space       *event.Space
	// R is the Hadamard (inflation) power; Iter the number of
	// expansion/inflation rounds.
	R, Iter int
	// Threshold is θ of the co-clustering events.
	Threshold float64
	// Pairs are the queried node pairs.
	Pairs [][2]int
}

// TargetNames lists the co-clustering targets in network order.
func (sp *MCLSpec) TargetNames() []string {
	var names []string
	for _, p := range sp.Pairs {
		names = append(names, fmt.Sprintf("CoCluster[%d][%d]", p[0], p[1]))
	}
	return names
}

// Network compiles the spec.
func (sp *MCLSpec) Network() (*network.Net, error) {
	n := len(sp.Weights)
	if n == 0 {
		return nil, fmt.Errorf("encode: empty weight matrix")
	}
	if sp.R <= 0 || sp.Iter <= 0 {
		return nil, fmt.Errorf("encode: r = %d and iter = %d must be positive", sp.R, sp.Iter)
	}
	if len(sp.Pairs) == 0 {
		return nil, fmt.Errorf("encode: no co-clustering pairs requested")
	}
	b := network.NewBuilder(sp.Space, nil)

	// M[i][j]: weight if the edge exists, 0 otherwise (a missing edge is
	// weight 0, not an undefined value — the matrix stays defined).
	m := make([][]network.NodeID, n)
	for i := range m {
		m[i] = make([]network.NodeID, n)
		for j := range m[i] {
			w := sp.Weights[i][j]
			var lin event.Expr
			if sp.EdgeLineage != nil && sp.EdgeLineage[i] != nil {
				lin = sp.EdgeLineage[i][j]
			}
			if lin == nil {
				m[i][j] = b.ConstNum(event.Num(w))
				continue
			}
			g := b.AddExpr(lin)
			m[i][j] = b.Sum(
				b.CondVal(g, event.Num(w)),
				b.CondVal(b.Not(g), event.Num(0)),
			)
		}
	}

	next := make([][]network.NodeID, n)
	for i := range next {
		next[i] = make([]network.NodeID, n)
	}
	for it := 0; it < sp.Iter; it++ {
		// Expansion: N[i][j] = Σ_k M[i][k] · M[k][j].
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				terms := make([]network.NodeID, n)
				for k := 0; k < n; k++ {
					terms[k] = b.Prod(m[i][k], m[k][j])
				}
				next[i][j] = b.Sum(terms...)
			}
		}
		// Inflation: M[i][j] = N[i][j]^r · (Σ_k N[i][k]^r)⁻¹.
		for i := 0; i < n; i++ {
			pows := make([]network.NodeID, n)
			for k := 0; k < n; k++ {
				pows[k] = b.Pow(next[i][k], sp.R)
			}
			inv := b.Inv(b.Sum(pows...))
			for j := 0; j < n; j++ {
				m[i][j] = b.Prod(b.Pow(next[i][j], sp.R), inv)
			}
		}
	}

	theta := b.ConstNum(event.Num(sp.Threshold))
	for _, p := range sp.Pairs {
		if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
			return nil, fmt.Errorf("encode: pair %v out of range", p)
		}
		attract := make([]network.NodeID, n)
		for k := 0; k < n; k++ {
			attract[k] = b.And(
				b.Cmp(event.GT, m[p[0]][k], theta),
				b.Cmp(event.GT, m[p[1]][k], theta),
			)
		}
		b.Target(fmt.Sprintf("CoCluster[%d][%d]", p[0], p[1]), b.Or(attract...))
	}
	return b.Build(), nil
}
