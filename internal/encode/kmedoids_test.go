package encode

import (
	"math/rand"
	"testing"

	"enframe/internal/event"
	"enframe/internal/lineage"
	"enframe/internal/prob"
	"enframe/internal/vec"
)

func makeSpec(t *testing.T, rng *rand.Rand, scheme lineage.Scheme, targets TargetSet, n, k, iter int) *KMedoidsSpec {
	t.Helper()
	pts := make([]vec.Vec, n)
	for i := range pts {
		pts[i] = vec.New(float64(rng.Intn(20)), float64(rng.Intn(20)))
	}
	cfg := lineage.Config{
		Scheme:    scheme,
		GroupSize: 1 + rng.Intn(2),
		NumVars:   3 + rng.Intn(4),
		L:         2,
		M:         3,
		Seed:      rng.Int63(),
	}
	objs, space, err := lineage.Attach(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &KMedoidsSpec{
		Objects: objs,
		Space:   space,
		K:       k,
		Iter:    iter,
		Metric:  vec.SquaredEuclidean,
		Targets: targets,
	}
}

func checkAgainstNaive(t *testing.T, sp *KMedoidsSpec, trial int) {
	t.Helper()
	naive, err := sp.Naive(NaiveOptions{})
	if err != nil {
		t.Fatalf("trial %d: naive: %v", trial, err)
	}
	net, err := sp.Network()
	if err != nil {
		t.Fatalf("trial %d: network: %v", trial, err)
	}
	res, err := prob.Compile(net, prob.Options{Strategy: prob.Exact})
	if err != nil {
		t.Fatalf("trial %d: compile: %v", trial, err)
	}
	if len(res.Targets) != len(naive.Targets) {
		t.Fatalf("trial %d: %d compiled targets vs %d naive", trial, len(res.Targets), len(naive.Targets))
	}
	for i, tb := range res.Targets {
		nb := naive.Targets[i]
		if tb.Name != nb.Name {
			t.Fatalf("trial %d: target %d name %q vs %q", trial, i, tb.Name, nb.Name)
		}
		if tb.Gap() > 1e-9 {
			t.Fatalf("trial %d: %s did not converge: [%g, %g]", trial, tb.Name, tb.Lower, tb.Upper)
		}
		if d := tb.Lower - nb.Lower; d > 1e-9 || d < -1e-9 {
			t.Fatalf("trial %d: %s: compiled %g vs naive %g", trial, tb.Name, tb.Lower, nb.Lower)
		}
	}
}

// TestKMedoidsWorldEquivalence is the core reproduction invariant: the
// compiled event network computes, for every target event, exactly the
// probability obtained by clustering in each possible world ("the exact same
// quality as the golden standard", §5).
func TestKMedoidsWorldEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	schemes := []lineage.Scheme{lineage.Independent, lineage.Positive, lineage.Mutex, lineage.Conditional}
	for trial := 0; trial < 24; trial++ {
		scheme := schemes[trial%len(schemes)]
		n := 4 + rng.Intn(4)
		k := 2 + rng.Intn(2)
		iter := 1 + rng.Intn(3)
		sp := makeSpec(t, rng, scheme, TargetsMedoids, n, k, iter)
		checkAgainstNaive(t, sp, trial)
	}
}

func TestKMedoidsAssignmentTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 8; trial++ {
		sp := makeSpec(t, rng, lineage.Positive, TargetsAssignment, 5, 2, 2)
		checkAgainstNaive(t, sp, trial)
	}
}

func TestKMedoidsCoOccurrenceTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 8; trial++ {
		sp := makeSpec(t, rng, lineage.Mutex, TargetsCoOccurrence, 6, 2, 2)
		checkAgainstNaive(t, sp, trial)
	}
}

func TestKMedoidsCertainDataIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts := make([]vec.Vec, 8)
	for i := range pts {
		pts[i] = vec.New(float64(rng.Intn(30)), float64(rng.Intn(30)))
	}
	objs := lineage.Certain(pts)
	sp := &KMedoidsSpec{
		Objects: objs,
		Space:   event.NewSpace(),
		K:       2,
		Iter:    3,
		Metric:  vec.SquaredEuclidean,
		Targets: TargetsMedoids,
	}
	net, err := sp.Network()
	if err != nil {
		t.Fatal(err)
	}
	res, err := prob.Compile(net, prob.Options{Strategy: prob.Exact})
	if err != nil {
		t.Fatal(err)
	}
	// Every target must be 0 or 1, and exactly one medoid per cluster.
	perCluster := make([]int, sp.K)
	for _, tb := range res.Targets {
		if tb.Gap() > 0 {
			t.Fatalf("%s not converged on certain data", tb.Name)
		}
		if tb.Lower != 0 && tb.Lower != 1 {
			t.Fatalf("%s = %g, want 0 or 1 on certain data", tb.Name, tb.Lower)
		}
	}
	for i := 0; i < sp.K; i++ {
		for l := range objs {
			tb, ok := res.Target(targetName("Centre", i, l))
			if !ok {
				t.Fatalf("missing target Centre[%d][%d]", i, l)
			}
			if tb.Lower == 1 {
				perCluster[i]++
			}
		}
	}
	for i, c := range perCluster {
		if c != 1 {
			t.Fatalf("cluster %d elected %d medoids, want exactly 1", i, c)
		}
	}
	// The network should collapse to constants on certain data.
	if net.NumNodes() > 10 {
		t.Errorf("certain-data network has %d nodes; partial evaluation should collapse it", net.NumNodes())
	}
}

func targetName(kind string, i, l int) string {
	return kind + "[" + itoa(i) + "][" + itoa(l) + "]"
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}
