package encode

import (
	"fmt"
	"math/rand"
	"testing"

	"enframe/internal/cluster"
	"enframe/internal/event"
	"enframe/internal/lineage"
	"enframe/internal/prob"
	"enframe/internal/vec"
	"enframe/internal/worlds"
)

// TestKMeansWorldEquivalence checks the guarded k-means encoding against
// per-world execution of the deterministic algorithm, for every world.
func TestKMeansWorldEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	schemes := []lineage.Scheme{lineage.Independent, lineage.Positive, lineage.Mutex, lineage.Conditional}
	for trial := 0; trial < 12; trial++ {
		n := 4 + rng.Intn(3)
		pts := make([]vec.Vec, n)
		for i := range pts {
			pts[i] = vec.New(float64(rng.Intn(20)), float64(rng.Intn(20)))
		}
		objs, space, err := lineage.Attach(pts, lineage.Config{
			Scheme: schemes[trial%4], GroupSize: 2, NumVars: 4, L: 2, M: 3, Seed: rng.Int63(),
		})
		if err != nil {
			t.Fatal(err)
		}
		sp := &KMeansSpec{
			Objects: objs, Space: space, K: 2, Iter: 1 + rng.Intn(2),
			Metric: vec.SquaredEuclidean,
		}
		net, err := sp.Network()
		if err != nil {
			t.Fatal(err)
		}
		// Expected probabilities by world enumeration of the
		// deterministic algorithm.
		want := make([]float64, 2*n)
		evs := lineage.Events(objs)
		worlds.Enumerate(space, func(nu event.SliceValuation, p float64) bool {
			present := worlds.Presence(evs, nu)
			r := cluster.KMeans(pts, present, sp.K, sp.Iter, sp.init(), vec.SquaredEuclidean)
			for i := 0; i < sp.K; i++ {
				for l := 0; l < n; l++ {
					if r.InCl[i][l] {
						want[i*n+l] += p
					}
				}
			}
			return true
		})
		res, err := prob.Compile(net, prob.Options{Strategy: prob.Exact})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < sp.K; i++ {
			for l := 0; l < n; l++ {
				tb, ok := res.Target(fmt.Sprintf("InCl[%d][%d]", i, l))
				if !ok {
					t.Fatalf("missing target InCl[%d][%d]", i, l)
				}
				if tb.Gap() > 1e-9 {
					t.Fatalf("trial %d: %s did not converge", trial, tb.Name)
				}
				if d := tb.Lower - want[i*n+l]; d > 1e-9 || d < -1e-9 {
					t.Fatalf("trial %d: %s: compiled %g vs per-world %g",
						trial, tb.Name, tb.Lower, want[i*n+l])
				}
			}
		}
	}
}

func TestKMeansSpecValidation(t *testing.T) {
	if _, err := (&KMeansSpec{Space: event.NewSpace()}).Network(); err == nil {
		t.Error("empty spec must fail")
	}
	objs := lineage.Certain([]vec.Vec{vec.New(0), vec.New(1)})
	if _, err := (&KMeansSpec{Objects: objs, Space: event.NewSpace(), K: 5, Iter: 1}).Network(); err == nil {
		t.Error("k > n must fail")
	}
	if _, err := (&KMeansSpec{Objects: objs, Space: event.NewSpace(), K: 2, Iter: 0}).Network(); err == nil {
		t.Error("iter = 0 must fail")
	}
}
