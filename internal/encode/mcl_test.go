package encode

import (
	"testing"

	"enframe/internal/cluster"
	"enframe/internal/event"
	"enframe/internal/prob"
	"enframe/internal/worlds"
)

// TestMCLWorldEquivalence: the compiled co-clustering probabilities equal
// per-world Markov clustering over the uncertain bridge edges.
func TestMCLWorldEquivalence(t *testing.T) {
	// Two triangles; both bridges 2–3 and 0–5 are uncertain.
	n := 6
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		w[i][i] = 1
	}
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 2}, {3, 4}, {3, 5}, {4, 5}} {
		w[e[0]][e[1]], w[e[1]][e[0]] = 1, 1
	}
	w[2][3], w[3][2] = 1, 1
	w[0][5], w[5][0] = 1, 1

	space := event.NewSpace()
	xb := event.NewVar(space.Add("bridge23", 0.5), "bridge23")
	yb := event.NewVar(space.Add("bridge05", 0.4), "bridge05")
	lin := make([][]event.Expr, n)
	for i := range lin {
		lin[i] = make([]event.Expr, n)
	}
	lin[2][3], lin[3][2] = xb, xb
	lin[0][5], lin[5][0] = yb, yb

	const (
		r     = 2
		iter  = 3
		theta = 0.4
	)
	pairs := [][2]int{{0, 1}, {2, 3}, {0, 5}, {1, 4}}
	sp := &MCLSpec{
		Weights: w, EdgeLineage: lin, Space: space,
		R: r, Iter: iter, Threshold: theta, Pairs: pairs,
	}
	net, err := sp.Network()
	if err != nil {
		t.Fatal(err)
	}
	res, err := prob.Compile(net, prob.Options{Strategy: prob.Exact})
	if err != nil {
		t.Fatal(err)
	}

	// Per-world ground truth with the same co-clustering formula.
	want := make([]float64, len(pairs))
	worlds.Enumerate(space, func(nu event.SliceValuation, p float64) bool {
		m := make([][]event.Value, n)
		for i := range m {
			m[i] = make([]event.Value, n)
			for j := range m[i] {
				weight := w[i][j]
				if lin[i][j] != nil && !event.EvalExpr(lin[i][j], nu) {
					weight = 0
				}
				m[i][j] = event.Num(weight)
			}
		}
		out := cluster.MCL(m, r, iter)
		for pi, pr := range pairs {
			co := false
			for k := 0; k < n; k++ {
				a, b := out.M[pr[0]][k], out.M[pr[1]][k]
				if a.Kind == event.Scalar && b.Kind == event.Scalar && a.S > theta && b.S > theta {
					co = true
					break
				}
			}
			if co {
				want[pi] += p
			}
		}
		return true
	})

	for pi := range pairs {
		tb := res.Targets[pi]
		if tb.Gap() > 1e-9 {
			t.Fatalf("%s did not converge: [%g, %g]", tb.Name, tb.Lower, tb.Upper)
		}
		if d := tb.Lower - want[pi]; d > 1e-9 || d < -1e-9 {
			t.Fatalf("%s: compiled %g vs per-world %g", tb.Name, tb.Lower, want[pi])
		}
	}
	// Sanity: an intra-triangle pair co-clusters at least as often as the
	// cross-community pair (when both bridges appear, the communities
	// genuinely blur, so neither probability is trivially 0 or 1).
	if res.Targets[0].Lower < res.Targets[3].Upper {
		t.Errorf("intra-triangle %g below cross-pair %g",
			res.Targets[0].Lower, res.Targets[3].Upper)
	}
}

func TestMCLSpecValidation(t *testing.T) {
	if _, err := (&MCLSpec{Space: event.NewSpace()}).Network(); err == nil {
		t.Error("empty spec must fail")
	}
	sp := &MCLSpec{Weights: [][]float64{{1}}, Space: event.NewSpace(), R: 2, Iter: 1}
	if _, err := sp.Network(); err == nil {
		t.Error("no pairs must fail")
	}
	sp.Pairs = [][2]int{{0, 9}}
	if _, err := sp.Network(); err == nil {
		t.Error("out-of-range pair must fail")
	}
}
