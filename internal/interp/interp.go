// Package interp executes user programs (internal/lang) in one possible
// world, following the deterministic semantics of §2 extended with the
// undefined value u of §3.2 — the per-world image of the event semantics:
// distances to undefined operands are undefined, comparisons involving u
// hold, empty reductions of sums and counts are undefined. The naïve
// baseline and the differential tests for the generic translation build on
// this interpreter.
package interp

import (
	"fmt"

	"enframe/internal/event"
	"enframe/internal/lang"
	"enframe/internal/lineage"
	"enframe/internal/vec"
)

// External supplies the implementations of the abstract primitives
// loadData(), loadParams(), and init() (§2 "Input data").
type External struct {
	// Objects backs loadData(): `(O, n) = loadData()` binds O to the
	// object array and n to its length. Absent objects (per Present) are
	// bound to the undefined value, matching O_l ≡ Φ(o_l) ⊗ o_l.
	Objects []lineage.Object
	// Present marks which objects exist in this world; nil means all.
	Present []bool
	// Matrix backs a third loadData() binding, e.g. `(O, n, M) =
	// loadData()` for Markov clustering.
	Matrix [][]float64
	// Params backs loadParams() in binding order, e.g. `(k, iter)`.
	Params []int
	// InitIndices backs init(): the bound variable becomes the array of
	// initial medoids/centroids O[π(0)], …, O[π(k-1)] (undefined for
	// absent objects).
	InitIndices []int
	// Metric is the distance measure of dist(); nil means Euclidean.
	Metric vec.Distance
}

// Value is a runtime value: an extended scalar/vector/Boolean value, an
// array, or the uninitialised placeholder None.
type Value struct {
	None bool
	Arr  []Value
	V    event.Value
}

// IsArr reports whether the value is an array.
func (v Value) IsArr() bool { return v.Arr != nil }

func scalarVal(v event.Value) Value { return Value{V: v} }

func noneVal() Value { return Value{None: true} }

// World is the final variable environment of one program run.
type World struct {
	vars map[string]Value
	ext  External
}

// Var returns the final value of a program variable.
func (w *World) Var(name string) (Value, bool) {
	v, ok := w.vars[name]
	return v, ok
}

// BoolMatrix extracts a 2-dimensional Boolean array variable such as InCl
// or Centre.
func (w *World) BoolMatrix(name string) ([][]bool, error) {
	v, ok := w.vars[name]
	if !ok {
		return nil, fmt.Errorf("interp: no variable %q", name)
	}
	if !v.IsArr() {
		return nil, fmt.Errorf("interp: %q is not an array", name)
	}
	out := make([][]bool, len(v.Arr))
	for i, row := range v.Arr {
		if !row.IsArr() {
			return nil, fmt.Errorf("interp: %q[%d] is not an array", name, i)
		}
		out[i] = make([]bool, len(row.Arr))
		for j, c := range row.Arr {
			if c.None {
				return nil, fmt.Errorf("interp: %q[%d][%d] is uninitialised", name, i, j)
			}
			if c.V.Kind != event.Boolean {
				return nil, fmt.Errorf("interp: %q[%d][%d] is %v, not Boolean", name, i, j, c.V.Kind)
			}
			out[i][j] = c.V.B
		}
	}
	return out, nil
}

// Run validates and executes a program in one world.
func Run(prog *lang.Program, ext External) (*World, error) {
	if err := lang.Validate(prog); err != nil {
		return nil, err
	}
	if ext.Metric == nil {
		ext.Metric = vec.Euclidean
	}
	in := &interp{ext: ext, vars: map[string]Value{}}
	if err := in.stmts(prog.Stmts); err != nil {
		return nil, err
	}
	return &World{vars: in.vars, ext: ext}, nil
}

type interp struct {
	ext  External
	vars map[string]Value
}

func (in *interp) present(l int) bool {
	return in.ext.Present == nil || in.ext.Present[l]
}

func (in *interp) objectValue(l int) event.Value {
	if in.present(l) {
		return event.Vect(in.ext.Objects[l].Pos)
	}
	return event.U
}

func (in *interp) stmts(sts []lang.Stmt) error {
	for _, st := range sts {
		if err := in.stmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (in *interp) stmt(st lang.Stmt) error {
	switch t := st.(type) {
	case *lang.TupleAssign:
		return in.tupleAssign(t)
	case *lang.Assign:
		return in.assign(t)
	case *lang.For:
		from, err := in.intExpr(t.From)
		if err != nil {
			return err
		}
		to, err := in.intExpr(t.To)
		if err != nil {
			return err
		}
		outer, had := in.vars[t.Var]
		for i := from; i < to; i++ {
			in.vars[t.Var] = scalarVal(event.Num(float64(i)))
			if err := in.stmts(t.Body); err != nil {
				return err
			}
		}
		if had {
			in.vars[t.Var] = outer
		} else {
			delete(in.vars, t.Var)
		}
		return nil
	}
	return fmt.Errorf("interp: unknown statement %T", st)
}

func (in *interp) tupleAssign(t *lang.TupleAssign) error {
	switch t.Fn {
	case "loadData":
		if len(t.Names) < 2 || len(t.Names) > 3 {
			return errAt(t.Pos, "loadData() binds (O, n) or (O, n, M)")
		}
		objs := make([]Value, len(in.ext.Objects))
		for l := range objs {
			objs[l] = scalarVal(in.objectValue(l))
		}
		in.vars[t.Names[0]] = Value{Arr: objs}
		in.vars[t.Names[1]] = scalarVal(event.Num(float64(len(objs))))
		if len(t.Names) == 3 {
			if in.ext.Matrix == nil {
				return errAt(t.Pos, "loadData() has no matrix binding configured")
			}
			rows := make([]Value, len(in.ext.Matrix))
			for i, r := range in.ext.Matrix {
				cells := make([]Value, len(r))
				for j, x := range r {
					cells[j] = scalarVal(event.Num(x))
				}
				rows[i] = Value{Arr: cells}
			}
			in.vars[t.Names[2]] = Value{Arr: rows}
		}
		return nil
	case "loadParams":
		if len(t.Names) != len(in.ext.Params) {
			return errAt(t.Pos, "loadParams() binds %d names but %d params were supplied",
				len(t.Names), len(in.ext.Params))
		}
		for i, n := range t.Names {
			in.vars[n] = scalarVal(event.Num(float64(in.ext.Params[i])))
		}
		return nil
	}
	return errAt(t.Pos, "unknown external %q", t.Fn)
}

func (in *interp) assign(t *lang.Assign) error {
	// `M = init()`.
	if c, ok := t.Value.(*lang.Call); ok && c.Fn == "init" {
		ms := make([]Value, len(in.ext.InitIndices))
		for i, ix := range in.ext.InitIndices {
			ms[i] = scalarVal(in.objectValue(ix))
		}
		in.vars[t.Target.Name] = Value{Arr: ms}
		return nil
	}
	val, err := in.expr(t.Value)
	if err != nil {
		return err
	}
	if len(t.Target.Indices) == 0 {
		in.vars[t.Target.Name] = val
		return nil
	}
	// Array element assignment: walk to the cell.
	cur, ok := in.vars[t.Target.Name]
	if !ok || !cur.IsArr() {
		return errAt(t.Pos, "%q is not an initialised array", t.Target.Name)
	}
	cell := &cur
	for d, ixe := range t.Target.Indices {
		ix, err := in.intExpr(ixe)
		if err != nil {
			return err
		}
		if !cell.IsArr() {
			return errAt(t.Pos, "%q has fewer than %d dimensions", t.Target.Name, d+1)
		}
		if ix < 0 || ix >= len(cell.Arr) {
			return errAt(t.Pos, "index %d out of range for %q (size %d)", ix, t.Target.Name, len(cell.Arr))
		}
		cell = &cell.Arr[ix]
	}
	*cell = val
	return nil
}

func (in *interp) intExpr(e lang.Expr) (int, error) {
	v, err := in.expr(e)
	if err != nil {
		return 0, err
	}
	if v.IsArr() || v.None || v.V.Kind != event.Scalar {
		return 0, errAt(e.Position(), "expected an integer, found %s", lang.ExprString(e))
	}
	i := int(v.V.S)
	if float64(i) != v.V.S {
		return 0, errAt(e.Position(), "expected an integer, found %g", v.V.S)
	}
	return i, nil
}

func (in *interp) expr(e lang.Expr) (Value, error) {
	switch t := e.(type) {
	case *lang.IntLit:
		return scalarVal(event.Num(float64(t.V))), nil
	case *lang.FloatLit:
		return scalarVal(event.Num(t.V)), nil
	case *lang.BoolLit:
		return scalarVal(event.Bool(t.V)), nil
	case *lang.NoneLit:
		return noneVal(), nil
	case *lang.Name:
		v, ok := in.vars[t.Ident]
		if !ok {
			return Value{}, errAt(t.Pos, "undefined name %q", t.Ident)
		}
		return v, nil
	case *lang.IndexExpr:
		base, err := in.expr(t.X)
		if err != nil {
			return Value{}, err
		}
		ix, err := in.intExpr(t.Index)
		if err != nil {
			return Value{}, err
		}
		if !base.IsArr() {
			return Value{}, errAt(t.Pos, "indexing a non-array")
		}
		if ix < 0 || ix >= len(base.Arr) {
			return Value{}, errAt(t.Pos, "index %d out of range (size %d)", ix, len(base.Arr))
		}
		return base.Arr[ix], nil
	case *lang.ArrayLit:
		size, err := in.intExpr(t.Size)
		if err != nil {
			return Value{}, err
		}
		arr := make([]Value, size)
		for i := range arr {
			arr[i] = noneVal()
		}
		return Value{Arr: arr}, nil
	case *lang.BinOp:
		return in.binop(t)
	case *lang.Call:
		return in.call(t)
	case *lang.ListCompr:
		return Value{}, errAt(t.Pos, "list comprehension outside reduce_*")
	}
	return Value{}, fmt.Errorf("interp: unknown expression %T", e)
}

func (in *interp) binop(t *lang.BinOp) (Value, error) {
	l, err := in.scalarOrVec(t.L)
	if err != nil {
		return Value{}, err
	}
	r, err := in.scalarOrVec(t.R)
	if err != nil {
		return Value{}, err
	}
	switch t.Op {
	case "+":
		return scalarVal(event.Add(l, r)), nil
	case "*":
		return scalarVal(event.Mul(l, r)), nil
	}
	op, err := cmpOp(t.Op)
	if err != nil {
		return Value{}, errAt(t.Pos, "%v", err)
	}
	return scalarVal(event.Bool(event.Compare(op, l, r))), nil
}

func cmpOp(op string) (event.CmpOp, error) {
	switch op {
	case "<=":
		return event.LE, nil
	case ">=":
		return event.GE, nil
	case "<":
		return event.LT, nil
	case ">":
		return event.GT, nil
	case "==":
		return event.EQ, nil
	}
	return 0, fmt.Errorf("unknown operator %q", op)
}

// scalarOrVec evaluates an expression to an extended value (never an array
// or None).
func (in *interp) scalarOrVec(e lang.Expr) (event.Value, error) {
	v, err := in.expr(e)
	if err != nil {
		return event.Value{}, err
	}
	if v.None {
		return event.Value{}, errAt(e.Position(), "use of uninitialised value")
	}
	if v.IsArr() {
		return event.Value{}, errAt(e.Position(), "expected a scalar or vector, found an array")
	}
	return v.V, nil
}

func (in *interp) call(t *lang.Call) (Value, error) {
	if len(t.Fn) > 7 && t.Fn[:7] == "reduce_" {
		return in.reduce(t)
	}
	switch t.Fn {
	case "dist":
		l, err := in.scalarOrVec(t.Args[0])
		if err != nil {
			return Value{}, err
		}
		r, err := in.scalarOrVec(t.Args[1])
		if err != nil {
			return Value{}, err
		}
		for _, v := range []event.Value{l, r} {
			if v.Kind != event.Vector && v.Kind != event.Undef {
				return Value{}, errAt(t.Pos, "dist() expects feature vectors, found %v", v.Kind)
			}
		}
		return scalarVal(event.DistVal(in.ext.Metric, l, r)), nil
	case "pow":
		b, err := in.scalarOrVec(t.Args[0])
		if err != nil {
			return Value{}, err
		}
		exp, err := in.intExpr(t.Args[1])
		if err != nil {
			return Value{}, err
		}
		return scalarVal(event.PowVal(b, exp)), nil
	case "invert":
		b, err := in.scalarOrVec(t.Args[0])
		if err != nil {
			return Value{}, err
		}
		return scalarVal(event.Inv(b)), nil
	case "scalar_mult":
		s, err := in.scalarOrVec(t.Args[0])
		if err != nil {
			return Value{}, err
		}
		v, err := in.scalarOrVec(t.Args[1])
		if err != nil {
			return Value{}, err
		}
		return scalarVal(event.Mul(s, v)), nil
	case "breakTies", "breakTies1", "breakTies2":
		arg, err := in.expr(t.Args[0])
		if err != nil {
			return Value{}, err
		}
		return in.breakTies(t, arg)
	case "init", "loadData", "loadParams":
		return Value{}, errAt(t.Pos, "%s() may only appear as a statement right-hand side", t.Fn)
	}
	return Value{}, errAt(t.Pos, "unknown function %q", t.Fn)
}

// breakTies implements the three tie-breaking variants of §2.2 on Boolean
// arrays, returning a fresh array.
func (in *interp) breakTies(t *lang.Call, arg Value) (Value, error) {
	if !arg.IsArr() {
		return Value{}, errAt(t.Pos, "%s() expects an array", t.Fn)
	}
	boolOf := func(v Value) (bool, error) {
		if v.None || v.IsArr() || v.V.Kind != event.Boolean {
			return false, errAt(t.Pos, "%s() expects a Boolean array", t.Fn)
		}
		return v.V.B, nil
	}
	switch t.Fn {
	case "breakTies":
		out := make([]Value, len(arg.Arr))
		seen := false
		for i, c := range arg.Arr {
			b, err := boolOf(c)
			if err != nil {
				return Value{}, err
			}
			out[i] = scalarVal(event.Bool(b && !seen))
			seen = seen || b
		}
		return Value{Arr: out}, nil
	case "breakTies1":
		// Fix the first dimension; break ties along the second.
		out := make([]Value, len(arg.Arr))
		for i, row := range arg.Arr {
			if !row.IsArr() {
				return Value{}, errAt(t.Pos, "breakTies1() expects a 2-dimensional array")
			}
			cells := make([]Value, len(row.Arr))
			seen := false
			for l, c := range row.Arr {
				b, err := boolOf(c)
				if err != nil {
					return Value{}, err
				}
				cells[l] = scalarVal(event.Bool(b && !seen))
				seen = seen || b
			}
			out[i] = Value{Arr: cells}
		}
		return Value{Arr: out}, nil
	case "breakTies2":
		// Fix the second dimension; break ties along the first.
		k := len(arg.Arr)
		out := make([]Value, k)
		var n int
		for i, row := range arg.Arr {
			if !row.IsArr() {
				return Value{}, errAt(t.Pos, "breakTies2() expects a 2-dimensional array")
			}
			if i == 0 {
				n = len(row.Arr)
			} else if len(row.Arr) != n {
				return Value{}, errAt(t.Pos, "breakTies2() expects a rectangular array")
			}
			out[i] = Value{Arr: make([]Value, n)}
		}
		for l := 0; l < n; l++ {
			seen := false
			for i := 0; i < k; i++ {
				b, err := boolOf(arg.Arr[i].Arr[l])
				if err != nil {
					return Value{}, err
				}
				out[i].Arr[l] = scalarVal(event.Bool(b && !seen))
				seen = seen || b
			}
		}
		return Value{Arr: out}, nil
	}
	return Value{}, errAt(t.Pos, "unknown tie breaker %q", t.Fn)
}

// reduce evaluates reduce_*(list comprehension) following the translation
// semantics of §3.5: excluded elements contribute the neutral element of
// the reduction (u for sums and counts — so empty reductions are undefined —
// true for conjunctions, false for disjunctions, 1 for products).
func (in *interp) reduce(t *lang.Call) (Value, error) {
	lc := t.Args[0].(*lang.ListCompr)
	from, err := in.intExpr(lc.From)
	if err != nil {
		return Value{}, err
	}
	to, err := in.intExpr(lc.To)
	if err != nil {
		return Value{}, err
	}
	outer, had := in.vars[lc.Var]
	defer func() {
		if had {
			in.vars[lc.Var] = outer
		} else {
			delete(in.vars, lc.Var)
		}
	}()

	acc := event.U // sum/count accumulator
	accB := t.Fn == "reduce_and"
	accM := event.Num(1)
	for i := from; i < to; i++ {
		in.vars[lc.Var] = scalarVal(event.Num(float64(i)))
		if lc.Cond != nil {
			cond, err := in.scalarOrVec(lc.Cond)
			if err != nil {
				return Value{}, err
			}
			if cond.Kind != event.Boolean {
				return Value{}, errAt(lc.Pos, "filter condition must be Boolean")
			}
			if !cond.B {
				continue
			}
		}
		switch t.Fn {
		case "reduce_count":
			acc = event.Add(acc, event.Num(1))
			continue
		}
		el, err := in.scalarOrVec(lc.Elem)
		if err != nil {
			return Value{}, err
		}
		switch t.Fn {
		case "reduce_and":
			if el.Kind != event.Boolean {
				return Value{}, errAt(lc.Pos, "reduce_and over non-Boolean elements")
			}
			accB = accB && el.B
		case "reduce_or":
			if el.Kind != event.Boolean {
				return Value{}, errAt(lc.Pos, "reduce_or over non-Boolean elements")
			}
			accB = accB || el.B
		case "reduce_sum":
			acc = event.Add(acc, el)
		case "reduce_mult":
			accM = event.Mul(accM, el)
		default:
			return Value{}, errAt(t.Pos, "unknown reduction %q", t.Fn)
		}
	}
	switch t.Fn {
	case "reduce_and", "reduce_or":
		return scalarVal(event.Bool(accB)), nil
	case "reduce_sum", "reduce_count":
		return scalarVal(acc), nil
	case "reduce_mult":
		return scalarVal(accM), nil
	}
	return Value{}, errAt(t.Pos, "unknown reduction %q", t.Fn)
}

func errAt(pos lang.Pos, format string, args ...any) error {
	return fmt.Errorf("interp: %s: %s", pos, fmt.Sprintf(format, args...))
}
