package interp

import (
	"math/rand"
	"strings"
	"testing"

	"enframe/internal/cluster"
	"enframe/internal/event"
	"enframe/internal/lang"
	"enframe/internal/lineage"
	"enframe/internal/vec"
)

func runSrc(t *testing.T, src string, ext External) *World {
	t.Helper()
	w, err := Run(lang.MustParse(src), ext)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func scalar(t *testing.T, w *World, name string) float64 {
	t.Helper()
	v, ok := w.Var(name)
	if !ok || v.IsArr() || v.None || v.V.Kind != event.Scalar {
		t.Fatalf("variable %q is not a scalar: %+v", name, v)
	}
	return v.V.S
}

func TestArithmeticAndLoops(t *testing.T) {
	w := runSrc(t, lang.Example3Source, External{})
	if got := scalar(t, w, "M"); got != 17 {
		t.Errorf("M = %g, want 17", got)
	}
}

func TestReduceSemantics(t *testing.T) {
	src := `
		s = reduce_sum([i for i in range(0, 4)])
		c = reduce_count([1 for i in range(0, 5) if i < 2])
		a = reduce_and([i < 9 for i in range(0, 3)])
		a2 = reduce_and([i < 1 for i in range(0, 3)])
		o = reduce_or([i == 2 for i in range(0, 3)])
		m = reduce_mult([i + 1 for i in range(0, 4)])
	`
	w := runSrc(t, src, External{})
	if got := scalar(t, w, "s"); got != 6 {
		t.Errorf("s = %g", got)
	}
	if got := scalar(t, w, "c"); got != 2 {
		t.Errorf("c = %g", got)
	}
	if v, _ := w.Var("a"); !v.V.B {
		t.Error("a should be true")
	}
	if v, _ := w.Var("a2"); v.V.B {
		t.Error("a2 should be false")
	}
	if v, _ := w.Var("o"); !v.V.B {
		t.Error("o should be true")
	}
	if got := scalar(t, w, "m"); got != 24 {
		t.Errorf("m = %g", got)
	}
}

func TestEmptyReductionsAreUndefined(t *testing.T) {
	// Per the event-language translation, empty sums and counts are u.
	src := `
		s = reduce_sum([i for i in range(0, 3) if i > 9])
		c = reduce_count([1 for i in range(0, 0)])
	`
	w := runSrc(t, src, External{})
	for _, name := range []string{"s", "c"} {
		v, _ := w.Var(name)
		if !v.V.IsUndef() {
			t.Errorf("%s = %v, want u", name, v.V)
		}
	}
}

func TestUndefComparisonSemantics(t *testing.T) {
	src := `
		u = invert(0)
		b = u <= 3
		m = u * 5
		s = u + 7
	`
	w := runSrc(t, src, External{})
	if v, _ := w.Var("b"); !v.V.B {
		t.Error("u <= 3 must hold (§3.2)")
	}
	if v, _ := w.Var("m"); !v.V.IsUndef() {
		t.Error("u · 5 must be u")
	}
	if got := scalar(t, w, "s"); got != 7 {
		t.Errorf("u + 7 = %g, want 7", got)
	}
}

func TestLoadDataBindsObjects(t *testing.T) {
	objs := lineage.Certain([]vec.Vec{vec.New(1, 2), vec.New(3, 4)})
	src := `
		(O, n) = loadData()
		d = dist(O[0], O[1])
	`
	w := runSrc(t, src, External{Objects: objs})
	if got := scalar(t, w, "n"); got != 2 {
		t.Errorf("n = %g", got)
	}
	if got := scalar(t, w, "d"); got < 2.82 || got > 2.83 {
		t.Errorf("d = %g, want 2√2", got)
	}
}

func TestAbsentObjectsAreUndefined(t *testing.T) {
	objs := lineage.Certain([]vec.Vec{vec.New(0), vec.New(5)})
	src := `
		(O, n) = loadData()
		d = dist(O[0], O[1])
	`
	w := runSrc(t, src, External{Objects: objs, Present: []bool{true, false}})
	if v, _ := w.Var("d"); !v.V.IsUndef() {
		t.Errorf("distance to absent object = %v, want u", v.V)
	}
}

// TestKMedoidsProgramMatchesDirectImplementation runs Figure 1's program
// through the interpreter on fully present data and compares against the
// dedicated cluster.KMedoids implementation.
func TestKMedoidsProgramMatchesDirectImplementation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(5)
		pts := make([]vec.Vec, n)
		for i := range pts {
			pts[i] = vec.New(float64(rng.Intn(30)), float64(rng.Intn(30)))
		}
		k := 2 + rng.Intn(2)
		iter := 1 + rng.Intn(3)
		init := rng.Perm(n)[:k]

		w := runSrc(t, lang.KMedoidsSource, External{
			Objects:     lineage.Certain(pts),
			Params:      []int{k, iter},
			InitIndices: init,
			Metric:      vec.SquaredEuclidean,
		})
		gotIn, err := w.BoolMatrix("InCl")
		if err != nil {
			t.Fatal(err)
		}
		gotC, err := w.BoolMatrix("Centre")
		if err != nil {
			t.Fatal(err)
		}
		want := cluster.KMedoids(pts, nil, k, iter, init, vec.SquaredEuclidean)
		for i := 0; i < k; i++ {
			for l := 0; l < n; l++ {
				if gotIn[i][l] != want.InCl[i][l] {
					t.Fatalf("trial %d: InCl[%d][%d]: program %t vs direct %t",
						trial, i, l, gotIn[i][l], want.InCl[i][l])
				}
				if gotC[i][l] != want.Centre[i][l] {
					t.Fatalf("trial %d: Centre[%d][%d]: program %t vs direct %t",
						trial, i, l, gotC[i][l], want.Centre[i][l])
				}
			}
		}
	}
}

// TestKMeansProgramMatchesDirectImplementation does the same for Figure 2.
func TestKMeansProgramMatchesDirectImplementation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(5)
		pts := make([]vec.Vec, n)
		for i := range pts {
			pts[i] = vec.New(float64(rng.Intn(30)), float64(rng.Intn(30)))
		}
		k := 2
		iter := 1 + rng.Intn(3)
		init := rng.Perm(n)[:k]

		w := runSrc(t, lang.KMeansSource, External{
			Objects:     lineage.Certain(pts),
			Params:      []int{k, iter},
			InitIndices: init,
			Metric:      vec.SquaredEuclidean,
		})
		got, err := w.BoolMatrix("InCl")
		if err != nil {
			t.Fatal(err)
		}
		want := cluster.KMeans(pts, nil, k, iter, init, vec.SquaredEuclidean)
		for i := 0; i < k; i++ {
			for l := 0; l < n; l++ {
				if got[i][l] != want.InCl[i][l] {
					t.Fatalf("trial %d: InCl[%d][%d] mismatch", trial, i, l)
				}
			}
		}
		mv, _ := w.Var("M")
		for i := 0; i < k; i++ {
			if !mv.Arr[i].V.AlmostEqual(want.Centroids[i], 1e-9) && !mv.Arr[i].V.Equal(want.Centroids[i]) {
				t.Fatalf("trial %d: centroid %d: %v vs %v", trial, i, mv.Arr[i].V, want.Centroids[i])
			}
		}
	}
}

func TestBreakTiesBuiltins(t *testing.T) {
	src := `
		A = [None] * 3
		A[0] = True
		A[1] = True
		A[2] = False
		B = breakTies(A)
	`
	w := runSrc(t, src, External{})
	b, _ := w.Var("B")
	if !b.Arr[0].V.B || b.Arr[1].V.B || b.Arr[2].V.B {
		t.Errorf("breakTies = %v", b)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := map[string]External{
		"M = [None] * 2\nx = M[5]\n":                      {},
		"(k, j) = loadParams()\n":                         {Params: []int{1}},
		"x = 1\ny = x + dist(x, x)\n":                     {},
		"M = [None] * 2\nM[0][1] = 1\n":                   {},
		"x = reduce_sum([1 for i in range(0, 2) if i])\n": {},
	}
	for src, ext := range cases {
		if _, err := Run(lang.MustParse(src), ext); err == nil {
			t.Errorf("expected runtime error for %q", strings.TrimSpace(src))
		}
	}
}
