// Energygrid: the paper's evaluation workload (§5) in miniature.
//
// Hourly readings from partial-discharge and network-load sensors in an
// energy distribution network are clustered with probabilistic k-medoids to
// separate operating regimes (healthy operation vs incipient insulation
// faults). Readings are uncertain — sensors drop out, and readings within a
// small time window share lineage (group size 4) — with positive
// correlations (each lineage event is a disjunction of l = 8 literals).
//
// The example compares the naïve baseline (cluster in every world) against
// exact compilation and hybrid ε-approximation, and prints the regimes the
// elected medoids fall into.
package main

import (
	"fmt"
	"log"
	"time"

	"enframe/internal/data"
	"enframe/internal/encode"
	"enframe/internal/lineage"
	"enframe/internal/prob"
)

func main() {
	const (
		n    = 40
		v    = 12 // random variables
		k    = 2
		iter = 3
	)
	readings := data.Generate(data.Config{N: n, Seed: 7})
	points := data.Points(n, 7)
	objs, space, err := lineage.Attach(points, lineage.Config{
		Scheme:  lineage.Positive,
		NumVars: v,
		L:       8,
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}
	spec := &encode.KMedoidsSpec{
		Objects: objs, Space: space, K: k, Iter: iter,
		Targets: encode.TargetsMedoids,
	}

	// Naïve baseline: cluster explicitly in each of the 2^v worlds.
	t0 := time.Now()
	naive, err := spec.Naive(encode.NaiveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	naiveT := time.Since(t0)

	// ENFrame: compile the event network once, exactly and approximately.
	net, err := spec.Network()
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	exact, err := prob.Compile(net, prob.Options{Strategy: prob.Exact})
	if err != nil {
		log.Fatal(err)
	}
	exactT := time.Since(t0)
	t0 = time.Now()
	hybrid, err := prob.Compile(net, prob.Options{Strategy: prob.Hybrid, Epsilon: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	hybridT := time.Since(t0)

	fmt.Printf("%d readings, %d variables (%d worlds), %d-node event network\n",
		n, v, 1<<v, net.NumNodes())
	fmt.Printf("naïve per-world clustering: %8v  (%d worlds)\n", naiveT.Round(time.Millisecond), naive.Stats.Branches)
	fmt.Printf("exact compilation:          %8v  (%d branches)\n", exactT.Round(time.Millisecond), exact.Stats.Branches)
	fmt.Printf("hybrid ε=0.1:               %8v  (%d branches)\n\n", hybridT.Round(time.Millisecond), hybrid.Stats.Branches)

	fmt.Println("most probable medoids (exact vs naïve vs hybrid bounds):")
	for i := 0; i < k; i++ {
		bestL, bestP := -1, 0.0
		for l := range objs {
			tb, _ := exact.Target(fmt.Sprintf("Centre[%d][%d]", i, l))
			if tb.Estimate() > bestP {
				bestL, bestP = l, tb.Estimate()
			}
		}
		nb := naive.Targets[i*len(objs)+bestL]
		hb, _ := hybrid.Target(fmt.Sprintf("Centre[%d][%d]", i, bestL))
		fmt.Printf("  cluster %d: reading #%d (regime %q, load=%.0f, pd=%.0f)\n",
			i, bestL, readings[bestL].Regime, readings[bestL].Load, readings[bestL].PD)
		fmt.Printf("    exact %.4f   naïve %.4f   hybrid [%.4f, %.4f]\n",
			bestP, nb.Lower, hb.Lower, hb.Upper)
	}
}
