// Approximation: the three ε-approximation strategies of §4.3 side by side,
// plus distributed compilation (§4.4).
//
// All strategies compute, for every target, bounds [L, U] with U − L ≤ 2ε
// and an estimate within ε of the true probability. They differ in where
// the error budget is spent: eager cuts the leftmost decision-tree
// branches, lazy stops once all bounds are tight (cutting the rightmost
// branches — very effective under positive correlations, where the tree is
// deeply unbalanced), and hybrid halves the budget at every split, pruning
// across the whole width of the tree.
package main

import (
	"fmt"
	"log"
	"time"

	"enframe/internal/data"
	"enframe/internal/encode"
	"enframe/internal/lineage"
	"enframe/internal/prob"
)

func main() {
	const (
		n   = 60
		v   = 18
		eps = 0.1
	)
	objs, space, err := lineage.Attach(data.Points(n, 3), lineage.Config{
		Scheme: lineage.Positive, NumVars: v, L: 8, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	spec := &encode.KMedoidsSpec{
		Objects: objs, Space: space, K: 2, Iter: 3,
		Targets: encode.TargetsMedoids,
	}
	net, err := spec.Network()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d objects, %d variables, %d-node network, %d targets, ε = %g\n\n",
		n, v, net.NumNodes(), len(net.Targets), eps)

	exact, err := prob.Compile(net, prob.Options{Strategy: prob.Exact, Timeout: 2 * time.Minute})
	if err != nil {
		log.Fatal(err)
	}

	type runRow struct {
		name string
		opts prob.Options
	}
	rows := []runRow{
		{"exact", prob.Options{Strategy: prob.Exact}},
		{"eager", prob.Options{Strategy: prob.Eager, Epsilon: eps}},
		{"lazy", prob.Options{Strategy: prob.Lazy, Epsilon: eps}},
		{"hybrid", prob.Options{Strategy: prob.Hybrid, Epsilon: eps}},
		{"hybrid-d (16 virtual workers)", prob.Options{
			Strategy: prob.Hybrid, Epsilon: eps,
			Workers: 16, JobDepth: 3, SimulateWorkers: true,
		}},
	}
	fmt.Printf("%-30s %12s %10s %10s %s\n", "strategy", "time", "branches", "max gap", "max |err|")
	for _, row := range rows {
		res, err := prob.Compile(net, row.opts)
		if err != nil {
			log.Fatal(err)
		}
		maxErr := 0.0
		for i, tb := range res.Targets {
			if e := abs(tb.Estimate() - exact.Targets[i].Estimate()); e > maxErr {
				maxErr = e
			}
		}
		t := res.Stats.Duration
		if row.opts.SimulateWorkers {
			t = res.Stats.SimulatedMakespan
		}
		fmt.Printf("%-30s %12v %10d %10.4f %.4f\n",
			row.name, t.Round(time.Millisecond), res.Stats.Branches, res.MaxGap(), maxErr)
	}
	fmt.Println("\nevery strategy stays within ε of the exact probabilities.")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
