// Quickstart: the paper's Example 1, end to end.
//
// Four objects o0..o3 on a line with the lineage of Example 1:
//
//	Φ(o0) = x1 ∨ x3,  Φ(o1) = x2,  Φ(o2) = x3,  Φ(o3) = ¬x2 ∧ x4
//
// We cluster them with probabilistic k-medoids (k = 2) under possible
// worlds semantics — the result is equivalent to running k-medoids in every
// possible world separately ("the golden standard"), without enumerating
// the worlds — and ask Example 1's query: "are o1 and o2 in the same
// cluster?".
package main

import (
	"fmt"
	"log"

	"enframe/internal/encode"
	"enframe/internal/event"
	"enframe/internal/lineage"
	"enframe/internal/prob"
	"enframe/internal/vec"
)

func main() {
	// Independent Boolean random variables with their probabilities.
	space := event.NewSpace()
	x1 := event.NewVar(space.Add("x1", 0.7), "x1")
	x2 := event.NewVar(space.Add("x2", 0.6), "x2")
	x3 := event.NewVar(space.Add("x3", 0.5), "x3")
	x4 := event.NewVar(space.Add("x4", 0.8), "x4")

	// Objects on a line, as drawn in Example 1. Lineage events encode
	// arbitrary correlations: o3 exists only when o1 does not (they are
	// contradicting readings and never share a world, let alone a
	// cluster).
	objs := []lineage.Object{
		{ID: 0, Pos: vec.New(0), Lineage: event.NewOr(x1, x3)},
		{ID: 1, Pos: vec.New(2), Lineage: x2},
		{ID: 2, Pos: vec.New(7), Lineage: x3},
		{ID: 3, Pos: vec.New(9), Lineage: event.NewAnd(event.NewNot(x2), x4)},
	}

	spec := &encode.KMedoidsSpec{
		Objects: objs,
		Space:   space,
		K:       2,
		Iter:    3,
		Init:    []int{1, 3}, // initial medoids o1 and o3, as in Example 1
		Targets: encode.TargetsMedoids,
	}
	net, err := spec.Network()
	if err != nil {
		log.Fatal(err)
	}
	res, err := prob.Compile(net, prob.Options{Strategy: prob.Exact})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("event network: %d nodes over %d variables\n\n", net.NumNodes(), space.Len())
	fmt.Println("medoid probabilities (exact):")
	for i := 0; i < spec.K; i++ {
		for l := range objs {
			tb, _ := res.Target(fmt.Sprintf("Centre[%d][%d]", i, l))
			fmt.Printf("  Pr[o%d is the medoid of cluster %d] = %.4f\n", l, i, tb.Estimate())
		}
	}

	// Example 1's query, as a co-occurrence target over the same task.
	spec.Targets = encode.TargetsCoOccurrence
	spec.Pairs = [][2]int{{1, 2}, {1, 3}}
	coNet, err := spec.Network()
	if err != nil {
		log.Fatal(err)
	}
	coRes, err := prob.Compile(coNet, prob.Options{Strategy: prob.Exact})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nco-occurrence queries (exact):")
	for _, tb := range coRes.Targets {
		fmt.Printf("  Pr[%s] = %.4f\n", tb.Name, tb.Estimate())
	}
	fmt.Println("\nNote Pr[CoOcc[1][3]] = 0: o1 and o3 are mutually exclusive readings —")
	fmt.Println("ignoring that correlation would wrongly put them in one cluster (§1).")
}
