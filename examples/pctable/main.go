// Pctable: loadData() from a probabilistic database (§2 "Input data").
//
// ENFrame can pull its input objects from a positive relational algebra
// query with aggregates over pc-tables (the paper uses the SPROUT engine;
// internal/pctable is this repository's substrate). Two uncertain tables —
// sensors (which may be offline) and their hourly readings (which may be
// spurious) — are joined and filtered; the query result's tuples, each
// carrying its lineage event, become the uncertain objects of a k-medoids
// clustering, correlations included.
package main

import (
	"fmt"
	"log"

	"enframe/internal/encode"
	"enframe/internal/event"
	"enframe/internal/pctable"
	"enframe/internal/prob"
)

func main() {
	space := event.NewSpace()
	v := func(name string, p float64) event.Expr {
		return event.NewVar(space.Add(name, p), name)
	}
	up2 := v("sensor2_up", 0.7) // sensor 2 may be offline

	sensors := pctable.NewRelation("sensors", "sid", "station")
	sensors.Insert(nil, pctable.Num(1), pctable.Str("north"))
	sensors.Insert(up2, pctable.Num(2), pctable.Str("south"))

	readings := pctable.NewRelation("readings", "sid", "hour", "load", "pd")
	for h, row := range [][4]float64{
		{1, 0, 24, 2}, {1, 1, 28, 3}, {1, 2, 71, 5}, {1, 3, 69, 4},
		{2, 0, 26, 44}, {2, 1, 31, 48}, {2, 2, 74, 70}, {2, 3, 78, 66},
	} {
		readings.Insert(
			v(fmt.Sprintf("r%d", h), 0.6+0.05*float64(h%4)),
			pctable.Num(row[0]), pctable.Num(row[1]), pctable.Num(row[2]), pctable.Num(row[3]),
		)
	}

	// Query: readings of online sensors, discharge-relevant hours only.
	q := sensors.Join(readings).Select(func(get func(string) pctable.Value) bool {
		return get("hour").F <= 3
	})
	fmt.Printf("query result: %d tuples\n", len(q.Tuples))
	probs := q.TupleProb(space)
	for i, t := range q.Tuples {
		fmt.Printf("  %v  Φ = %-28v Pr = %.3f\n", t.Values, t.Lineage, probs[i])
	}

	// Aggregate c-value: expected number of result tuples per world.
	fmt.Println("\ndistribution of COUNT(*) over the south station:")
	south := q.Select(func(get func(string) pctable.Value) bool {
		return get("station").Equal(pctable.Str("south"))
	})
	for _, o := range event.ExactDistribution(south.AggCount(), space, nil) {
		fmt.Printf("  %v tuples with probability %.3f\n", o.Val, o.Prob)
	}

	// The query result becomes ENFrame's input data: cluster (load, pd).
	objs := q.Objects("load", "pd")
	spec := &encode.KMedoidsSpec{
		Objects: objs, Space: space, K: 2, Iter: 3,
		Targets: encode.TargetsMedoids,
	}
	net, err := spec.Network()
	if err != nil {
		log.Fatal(err)
	}
	res, err := prob.Compile(net, prob.Options{Strategy: prob.Exact})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmedoid probabilities over the query result (exact):")
	for _, tb := range res.Targets {
		if tb.Estimate() > 0.05 {
			fmt.Printf("  %s = %.4f\n", tb.Name, tb.Estimate())
		}
	}
}
