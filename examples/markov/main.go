// Markov: the MCL user program of Figure 3 on a small graph.
//
// A 6-node graph with two natural communities {0,1,2} and {3,4,5} is
// clustered by Markov Clustering: alternating expansion (matrix squaring)
// and inflation (Hadamard power + rescaling) concentrates the stochastic
// flow inside communities. The program runs through the full ENFrame
// pipeline — parsed, translated to an event program, and evaluated — and
// the same program is also interpreted deterministically; both agree.
//
// A second, probabilistic run makes the single bridge edge (2–3) uncertain
// and reports the distribution of the flow between the communities.
package main

import (
	"fmt"
	"log"

	"enframe/internal/cluster"
	"enframe/internal/event"
	"enframe/internal/interp"
	"enframe/internal/lang"
	"enframe/internal/lineage"
	"enframe/internal/vec"
)

func adjacency(bridge float64) [][]float64 {
	// Two triangles joined by one bridge edge 2–3 of the given weight;
	// self-loops keep the matrix stochastic-friendly.
	n := 6
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		m[i][i] = 1
	}
	edges := [][2]int{{0, 1}, {0, 2}, {1, 2}, {3, 4}, {3, 5}, {4, 5}}
	for _, e := range edges {
		m[e[0]][e[1]] = 1
		m[e[1]][e[0]] = 1
	}
	m[2][3], m[3][2] = bridge, bridge
	return m
}

func main() {
	prog := lang.MustParse(lang.MCLSource)
	points := make([]vec.Vec, 6)
	for i := range points {
		points[i] = vec.New(float64(i))
	}
	objs := lineage.Certain(points)

	// Deterministic run through the interpreter.
	w, err := interp.Run(prog, interp.External{
		Objects: objs,
		Matrix:  adjacency(1),
		Params:  []int{2, 4}, // Hadamard power r = 2, 4 iterations
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deterministic MCL flow matrix (4 iterations, r = 2):")
	mv, _ := w.Var("M")
	flows := make([][]event.Value, 6)
	for i := 0; i < 6; i++ {
		flows[i] = make([]event.Value, 6)
		for j := 0; j < 6; j++ {
			flows[i][j] = mv.Arr[i].Arr[j].V
		}
	}
	printMatrix(flows)

	// Cross-check against the direct MCL implementation.
	direct := cluster.MCL(cluster.MCLFromWeights(adjacency(1)), 2, 4)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if !direct.M[i][j].AlmostEqual(flows[i][j], 1e-9) {
				log.Fatalf("interpreter and direct MCL disagree at (%d,%d)", i, j)
			}
		}
	}
	fmt.Println("\ncommunities (flow > 0.05):")
	for i := 0; i < 6; i++ {
		var members []int
		for j := 0; j < 6; j++ {
			if f := flows[i][j]; f.Kind == event.Scalar && f.S > 0.05 {
				members = append(members, j)
			}
		}
		if len(members) > 1 {
			fmt.Printf("  attractor %d: %v\n", i, members)
		}
	}

	// Probabilistic variant: the bridge edge exists with probability 0.5.
	// The flow between the communities becomes a random variable; its
	// distribution comes straight from the event language.
	space := event.NewSpace()
	xe := event.NewVar(space.Add("bridge", 0.5), "bridge")
	weights := adjacency(1)
	n := 6
	mat := make([][]event.NumExpr, n)
	for i := range mat {
		mat[i] = make([]event.NumExpr, n)
		for j := range mat[i] {
			w := event.NewConstNum(event.Num(weights[i][j]))
			if (i == 2 && j == 3) || (i == 3 && j == 2) {
				// Missing edge means weight 0, not an absent value.
				w = event.NewSum(
					event.NewCondVal(xe, event.Num(1)),
					event.NewCondVal(event.NewNot(xe), event.Num(0)),
				)
			}
			mat[i][j] = w
		}
	}
	// One expansion + inflation step on events: N[2][3] = Σ_k M[2][k]·M[k][3].
	terms := make([]event.NumExpr, n)
	for k := 0; k < n; k++ {
		terms[k] = event.NewProd(mat[2][k], mat[k][3])
	}
	n23 := event.NewSum(terms...)
	fmt.Println("\ndistribution of the expanded cross-community flow N[2][3]:")
	for _, o := range event.ExactDistribution(n23, space, nil) {
		fmt.Printf("  %v with probability %.2f\n", o.Val, o.Prob)
	}
}

func printMatrix(m [][]event.Value) {
	for _, row := range m {
		fmt.Print("  ")
		for _, v := range row {
			if v.Kind == event.Scalar {
				fmt.Printf("%5.2f ", v.S)
			} else {
				fmt.Printf("%5s ", v)
			}
		}
		fmt.Println()
	}
}
