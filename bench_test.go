package enframe

// One benchmark per figure of the paper's evaluation (§5), pinned to a
// representative point of each sweep, plus the ablation benchmarks listed
// in DESIGN.md. cmd/figures regenerates the full series; these benches make
// `go test -bench .` reproduce the orderings (naïve ≫ exact ≫ hybrid,
// lazy ≈ hybrid on positive correlations, certain points cheap, …) in
// minutes.

import (
	"context"
	"testing"

	"enframe/internal/cluster"
	"enframe/internal/core"
	"enframe/internal/data"
	"enframe/internal/encode"
	"enframe/internal/lang"
	"enframe/internal/lineage"
	"enframe/internal/network"
	"enframe/internal/obs"
	"enframe/internal/prob"
	"enframe/internal/translate"
	"enframe/internal/vec"
)

// benchSpec builds the standard k-medoids benchmark task.
func benchSpec(b *testing.B, n int, cfg lineage.Config) *encode.KMedoidsSpec {
	b.Helper()
	objs, space, err := lineage.Attach(data.Points(n, 1), cfg)
	if err != nil {
		b.Fatal(err)
	}
	return &encode.KMedoidsSpec{
		Objects: objs, Space: space, K: 2, Iter: 3,
		Targets: encode.TargetsMedoids,
	}
}

func positiveCfg(v int) lineage.Config {
	return lineage.Config{Scheme: lineage.Positive, NumVars: v, L: 8, Seed: 1}
}

func benchNet(b *testing.B, sp *encode.KMedoidsSpec) *network.Net {
	b.Helper()
	net, err := sp.Network()
	if err != nil {
		b.Fatal(err)
	}
	return net
}

func benchCompile(b *testing.B, net *network.Net, opts prob.Options) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := prob.Compile(net, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.TimedOut {
			b.Fatal("benchmark point timed out")
		}
	}
}

// --- Figure 6 (left): positive correlations, scalability in variables ----

func BenchmarkFig6LeftNaive(b *testing.B) {
	sp := benchSpec(b, 60, positiveCfg(12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp.Naive(encode.NaiveOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6LeftExact(b *testing.B) {
	net := benchNet(b, benchSpec(b, 60, positiveCfg(12)))
	benchCompile(b, net, prob.Options{Strategy: prob.Exact})
}

func BenchmarkFig6LeftEager(b *testing.B) {
	net := benchNet(b, benchSpec(b, 60, positiveCfg(12)))
	benchCompile(b, net, prob.Options{Strategy: prob.Eager, Epsilon: 0.1})
}

func BenchmarkFig6LeftLazy(b *testing.B) {
	net := benchNet(b, benchSpec(b, 60, positiveCfg(12)))
	benchCompile(b, net, prob.Options{Strategy: prob.Lazy, Epsilon: 0.1})
}

func BenchmarkFig6LeftHybrid(b *testing.B) {
	net := benchNet(b, benchSpec(b, 60, positiveCfg(12)))
	benchCompile(b, net, prob.Options{Strategy: prob.Hybrid, Epsilon: 0.1})
}

func BenchmarkFig6LeftHybridD(b *testing.B) {
	net := benchNet(b, benchSpec(b, 60, positiveCfg(12)))
	benchCompile(b, net, prob.Options{
		Strategy: prob.Hybrid, Epsilon: 0.1,
		Workers: 16, JobDepth: 3, SimulateWorkers: true,
	})
}

// --- Figure 6 (right): scalability in the data-set fraction --------------

func BenchmarkFig6RightHybridHalf(b *testing.B) {
	net := benchNet(b, benchSpec(b, 60, positiveCfg(20)))
	benchCompile(b, net, prob.Options{Strategy: prob.Hybrid, Epsilon: 0.1})
}

func BenchmarkFig6RightHybridFull(b *testing.B) {
	net := benchNet(b, benchSpec(b, 120, positiveCfg(20)))
	benchCompile(b, net, prob.Options{Strategy: prob.Hybrid, Epsilon: 0.1})
}

// --- Figure 7: mutex and conditional correlations -------------------------

func BenchmarkFig7MutexExact(b *testing.B) {
	net := benchNet(b, benchSpec(b, 56, lineage.Config{Scheme: lineage.Mutex, M: 12, Seed: 1}))
	benchCompile(b, net, prob.Options{Strategy: prob.Exact})
}

func BenchmarkFig7MutexHybrid(b *testing.B) {
	net := benchNet(b, benchSpec(b, 56, lineage.Config{Scheme: lineage.Mutex, M: 12, Seed: 1}))
	benchCompile(b, net, prob.Options{Strategy: prob.Hybrid, Epsilon: 0.1})
}

func BenchmarkFig7CondExact(b *testing.B) {
	net := benchNet(b, benchSpec(b, 32, lineage.Config{Scheme: lineage.Conditional, Seed: 1}))
	benchCompile(b, net, prob.Options{Strategy: prob.Exact})
}

func BenchmarkFig7CondHybrid(b *testing.B) {
	net := benchNet(b, benchSpec(b, 32, lineage.Config{Scheme: lineage.Conditional, Seed: 1}))
	benchCompile(b, net, prob.Options{Strategy: prob.Hybrid, Epsilon: 0.1})
}

// --- Figure 8: certain data points ----------------------------------------

func BenchmarkFig8Certain0(b *testing.B) {
	cfg := positiveCfg(24)
	net := benchNet(b, benchSpec(b, 120, cfg))
	benchCompile(b, net, prob.Options{Strategy: prob.Hybrid, Epsilon: 0.1})
}

func BenchmarkFig8Certain95(b *testing.B) {
	cfg := positiveCfg(24)
	cfg.CertainFraction = 0.95
	net := benchNet(b, benchSpec(b, 120, cfg))
	benchCompile(b, net, prob.Options{Strategy: prob.Hybrid, Epsilon: 0.1})
}

// --- Figure 9: distributed compilation ------------------------------------

func BenchmarkFig9Workers4Job3(b *testing.B) {
	net := benchNet(b, benchSpec(b, 80, positiveCfg(20)))
	benchCompile(b, net, prob.Options{
		Strategy: prob.Hybrid, Epsilon: 0.1,
		Workers: 4, JobDepth: 3, SimulateWorkers: true,
	})
}

func BenchmarkFig9Workers16Job3(b *testing.B) {
	net := benchNet(b, benchSpec(b, 80, positiveCfg(20)))
	benchCompile(b, net, prob.Options{
		Strategy: prob.Hybrid, Epsilon: 0.1,
		Workers: 16, JobDepth: 3, SimulateWorkers: true,
	})
}

func BenchmarkFig9Workers16Job9(b *testing.B) {
	net := benchNet(b, benchSpec(b, 80, positiveCfg(20)))
	benchCompile(b, net, prob.Options{
		Strategy: prob.Hybrid, Epsilon: 0.1,
		Workers: 16, JobDepth: 9, SimulateWorkers: true,
	})
}

// --- Ablations (DESIGN.md) -------------------------------------------------

func BenchmarkAblationVarOrderFanout(b *testing.B) {
	net := benchNet(b, benchSpec(b, 60, positiveCfg(12)))
	benchCompile(b, net, prob.Options{Strategy: prob.Exact, Heuristic: prob.FanoutOrder})
}

func BenchmarkAblationVarOrderInput(b *testing.B) {
	net := benchNet(b, benchSpec(b, 60, positiveCfg(12)))
	benchCompile(b, net, prob.Options{Strategy: prob.Exact, Heuristic: prob.InputOrder})
}

func BenchmarkAblationMasking(b *testing.B) {
	net := benchNet(b, benchSpec(b, 40, positiveCfg(10)))
	benchCompile(b, net, prob.Options{Strategy: prob.Exact})
}

func BenchmarkAblationRecompute(b *testing.B) {
	net := benchNet(b, benchSpec(b, 40, positiveCfg(10)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prob.CompileRef(net, prob.Options{Strategy: prob.Exact}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationNaivePlain(b *testing.B) {
	sp := benchSpec(b, 60, positiveCfg(12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp.Naive(encode.NaiveOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationNaiveMemoised(b *testing.B) {
	sp := benchSpec(b, 60, positiveCfg(12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp.Naive(encode.NaiveOptions{Memoise: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTargetsMedoids(b *testing.B) {
	sp := benchSpec(b, 60, positiveCfg(12))
	sp.Targets = encode.TargetsMedoids
	net := benchNet(b, sp)
	benchCompile(b, net, prob.Options{Strategy: prob.Exact})
}

func BenchmarkAblationTargetsAssignment(b *testing.B) {
	sp := benchSpec(b, 60, positiveCfg(12))
	sp.Targets = encode.TargetsAssignment
	net := benchNet(b, sp)
	benchCompile(b, net, prob.Options{Strategy: prob.Exact})
}

func BenchmarkAblationTargetsCoOccurrence(b *testing.B) {
	sp := benchSpec(b, 60, positiveCfg(12))
	sp.Targets = encode.TargetsCoOccurrence
	net := benchNet(b, sp)
	benchCompile(b, net, prob.Options{Strategy: prob.Exact})
}

// --- Pipeline micro-benchmarks --------------------------------------------

func BenchmarkNetworkBuildKMedoids(b *testing.B) {
	sp := benchSpec(b, 100, positiveCfg(20))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp.Network(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTranslateKMedoids(b *testing.B) {
	objs, space, err := lineage.Attach(data.Points(24, 1), positiveCfg(10))
	if err != nil {
		b.Fatal(err)
	}
	prog := lang.MustParse(lang.KMedoidsSource)
	ext := translate.External{
		Objects: objs, Space: space,
		Params: []int{2, 3}, InitIndices: []int{0, 1},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := translate.Translate(prog, ext); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseKMedoids(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lang.Parse(lang.KMedoidsSource); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeterministicKMedoids(b *testing.B) {
	pts := data.Points(200, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.KMedoids(pts, nil, 2, 3, []int{0, 1}, vec.Euclidean)
	}
}

// --- Observability overhead ------------------------------------------------

// coreSpec builds the full-pipeline benchmark spec (source → probabilities).
func coreSpec(tb testing.TB, withObs bool) core.Spec {
	tb.Helper()
	objs, space, err := lineage.Attach(data.Points(24, 1), positiveCfg(10))
	if err != nil {
		tb.Fatal(err)
	}
	spec := core.Spec{
		Source:      lang.KMedoidsSource,
		Objects:     objs,
		Space:       space,
		Params:      []int{2, 3},
		InitIndices: []int{0, 1},
		Targets:     []string{"Centre["},
		Compile:     prob.Options{Strategy: prob.Exact},
	}
	if withObs {
		spec.Compile.Obs = obs.New("bench")
	}
	return spec
}

// BenchmarkPipelineEndToEnd runs the whole pipeline with observability
// disabled (nil trace — the no-op path).
func BenchmarkPipelineEndToEnd(b *testing.B) {
	spec := coreSpec(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineEndToEndTraced runs the same pipeline with spans and
// metrics enabled; the delta against BenchmarkPipelineEndToEnd is the full
// observability cost.
func BenchmarkPipelineEndToEndTraced(b *testing.B) {
	spec := coreSpec(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Front-end paths --------------------------------------------------------

// BenchmarkFrontEndFused measures preparation (lex → parse → fused
// translate+ground) on the default streaming builder path.
func BenchmarkFrontEndFused(b *testing.B) {
	spec := coreSpec(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PrepareContext(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrontEndLegacy measures the same preparation through the legacy
// two-phase path (event-program AST, then grounding); the ratio against
// BenchmarkFrontEndFused is the fusion win.
func BenchmarkFrontEndLegacy(b *testing.B) {
	spec := coreSpec(b, false)
	spec.LegacyFrontEnd = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PrepareContext(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
}
