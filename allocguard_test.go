package enframe

import (
	"context"
	"testing"

	"enframe/internal/core"
	"enframe/internal/prob"
)

// frontEndAllocBudget is the ceiling on allocations per obs-disabled fused
// front-end run (lex → parse → fused translate+ground) at the kmedoids n=24
// benchmark scale. Measured ~32.5k after the streaming-builder fusion (the
// legacy two-phase path sat at ~1.51M); the headroom absorbs map growth
// nondeterminism, not regressions — a return to AST materialisation or
// per-node key allocation blows through it immediately.
const frontEndAllocBudget = 45000

// TestFrontEndAllocGuard holds the fused front end to its post-fusion
// allocation profile. Run as part of `make ci` (via `make alloc-guard`).
func TestFrontEndAllocGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc guard is a perf gate, skipped in -short")
	}
	spec := coreSpec(t, false)
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := core.PrepareContext(context.Background(), spec); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("fused front end: %.0f allocs/op (budget %d)", allocs, frontEndAllocBudget)
	if allocs > frontEndAllocBudget {
		t.Errorf("fused front end allocates %.0f/op, over the %d budget — the streaming builder hot path regressed",
			allocs, frontEndAllocBudget)
	}
}

// compileAllocBudget is the ceiling on allocations per exact compile through
// the bit-parallel flat core at the same kmedoids n=24 scale. The packed core
// allocates its planes, abstract records, aux tables, and trail once up
// front and then runs allocation-free through the ~1.4M parent-edge visits
// of the expansion; measured ~200 allocs/op. The headroom absorbs slice
// regrowth nondeterminism — any per-node or per-propagation allocation
// creeping into the hot loop blows the budget by orders of magnitude.
const compileAllocBudget = 450

// TestCompileAllocGuard holds the flat compilation core to its packed
// allocation profile. Run as part of `make ci` (via `make alloc-guard`).
func TestCompileAllocGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc guard is a perf gate, skipped in -short")
	}
	spec := coreSpec(t, false)
	art, err := core.PrepareContext(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	opts := prob.Options{Strategy: prob.Exact}
	if _, err := prob.Compile(art.Net, opts); err != nil {
		t.Fatal(err) // warm the cached network.Flat layout
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := prob.Compile(art.Net, opts); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("flat exact compile: %.0f allocs/op (budget %d)", allocs, compileAllocBudget)
	if allocs > compileAllocBudget {
		t.Errorf("flat compile allocates %.0f/op, over the %d budget — the packed core hot path regressed",
			allocs, compileAllocBudget)
	}
}
