package enframe

import (
	"context"
	"testing"

	"enframe/internal/core"
)

// frontEndAllocBudget is the ceiling on allocations per obs-disabled fused
// front-end run (lex → parse → fused translate+ground) at the kmedoids n=24
// benchmark scale. Measured ~32.5k after the streaming-builder fusion (the
// legacy two-phase path sat at ~1.51M); the headroom absorbs map growth
// nondeterminism, not regressions — a return to AST materialisation or
// per-node key allocation blows through it immediately.
const frontEndAllocBudget = 45000

// TestFrontEndAllocGuard holds the fused front end to its post-fusion
// allocation profile. Run as part of `make ci` (via `make alloc-guard`).
func TestFrontEndAllocGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc guard is a perf gate, skipped in -short")
	}
	spec := coreSpec(t, false)
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := core.PrepareContext(context.Background(), spec); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("fused front end: %.0f allocs/op (budget %d)", allocs, frontEndAllocBudget)
	if allocs > frontEndAllocBudget {
		t.Errorf("fused front end allocates %.0f/op, over the %d budget — the streaming builder hot path regressed",
			allocs, frontEndAllocBudget)
	}
}
