// Package enframe is a Go reproduction of "ENFrame: A Platform for
// Processing Probabilistic Data" (van Schaik, Olteanu, Fink; EDBT 2014):
// a platform that runs user programs written in a small Python fragment
// over probabilistic data under possible worlds semantics, by tracing the
// computation with events and computing exact or ε-approximate target
// probabilities over a bulk-compiled event network.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); runnable entry points are cmd/enframe, cmd/figures, and the
// programs under examples/. The benchmarks in this package regenerate
// pinned points of every figure of the paper's evaluation; cmd/figures
// sweeps the full parameter ranges.
package enframe
