GO ?= go
FUZZTIME ?= 30s

.PHONY: build test test-short test-race vet fuzz-smoke fuzz bench bench-serve bench-compare alloc-guard obs-race smoke serve-smoke worker-smoke trace-smoke bench-distributed circuit-equiv bench-whatif shard-smoke bench-shard stream-smoke bench-stream ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fuzz-smoke replays the committed corpora (runs as ordinary tests) and then
# fuzzes each target briefly; quick enough for CI.
fuzz-smoke:
	$(GO) test ./internal/lang ./internal/difftest ./internal/dist -run '^Fuzz'
	$(GO) test ./internal/lang -run '^$$' -fuzz '^FuzzLexer$$' -fuzztime 10s
	$(GO) test ./internal/lang -run '^$$' -fuzz '^FuzzParser$$' -fuzztime 10s
	$(GO) test ./internal/difftest -run '^$$' -fuzz '^FuzzPipeline$$' -fuzztime 10s
	$(GO) test ./internal/dist -run '^$$' -fuzz '^FuzzFrame$$' -fuzztime 10s

# fuzz runs the differential pipeline fuzzer for FUZZTIME (default 30s).
fuzz:
	$(GO) test ./internal/difftest -run '^$$' -fuzz '^FuzzPipeline$$' -fuzztime $(FUZZTIME)

# bench snapshots the pipeline's stage-by-stage cost plus the key
# observability counters (hash-cons hit rate, tree branches/depth) into
# BENCH_pipeline.json, the perf trajectory later PRs report against.
bench:
	$(GO) run ./cmd/bench -out BENCH_pipeline.json

# bench-compare re-measures the fused front end (translate+ground) and fails
# if ns/op regressed more than 20% against the committed snapshot.
bench-compare:
	$(GO) run ./cmd/bench -compare BENCH_pipeline.json

# alloc-guard pins the obs-disabled fused front end and the bit-parallel
# flat compilation core to their post-optimisation allocation budgets (see
# allocguard_test.go).
alloc-guard:
	$(GO) test -run '^Test(FrontEnd|Compile)AllocGuard$$' -count=1 -v .

# bench-serve loads the serving layer (in-process, ephemeral port) and
# refreshes BENCH_serve.json: throughput, p50/p95/p99 latency, and the
# compiled-artifact cache hit rate.
bench-serve:
	$(GO) run ./cmd/loadgen -out BENCH_serve.json

# obs-race runs the metrics-registry and tracer tests under the race
# detector with concurrent workers hammering shared counters and spans.
obs-race:
	$(GO) test -race ./internal/obs/...

# smoke exercises the observability CLI surface on a quickstart-sized run:
# -trace must print a span tree, -json must emit valid JSON on stdout, and
# -trace-out must produce a loadable Chrome trace.
smoke: build
	$(GO) run ./cmd/enframe -program kmedoids -n 8 -vars 6 -iter 2 \
		-trace -json -trace-out /tmp/enframe-smoke-trace.json > /tmp/enframe-smoke.json
	$(GO) run ./cmd/enframe -program kmedoids -n 8 -vars 6 -iter 2 \
		-strategy hybrid -eps 0.1 -workers 4 -metrics > /dev/null

# serve-smoke boots a server on an ephemeral port, POSTs the builtin
# kmedoids request twice, asserts the second response reports a cache hit,
# and drains.
serve-smoke: build
	$(GO) run ./cmd/loadgen -smoke

# worker-smoke spawns real `enframe worker` processes and requires marginals
# shipped over TCP to be byte-identical to the in-process compile — once
# against healthy workers and once with a worker killing itself mid-run
# (DESIGN.md, "Distributed plane").
worker-smoke: build
	$(GO) run ./cmd/distbench -smoke

# trace-smoke runs one remote compilation through the real CLI against a real
# worker process and requires the emitted Chrome trace to parse and to carry
# the worker's spans on its own named process lane (cross-process trace
# propagation end to end, OBSERVABILITY.md).
trace-smoke: build
	$(GO) run ./cmd/distbench -trace-smoke

# bench-distributed measures per-job busy times over a real worker process
# and refreshes BENCH_distributed.json: virtual makespans for 1/2/4/8
# workers from list-scheduling the measured job DAG (the single-CPU CI
# container cannot show real multi-process scaling). Fails below ×1.5
# virtual speedup at 4 workers.
bench-distributed: build
	$(GO) run ./cmd/distbench -out BENCH_distributed.json

# circuit-equiv runs the circuit-backend oracle under the race detector:
# 300 generated programs compiled via the traced circuit must be
# bit-identical to plain exact compilation (marginals and work counters),
# with deterministic re-traces and tolerance-checked replay at perturbed
# probabilities (DESIGN.md, "Circuit backend").
circuit-equiv:
	$(GO) test -race ./internal/difftest -run '^TestCircuit' -count=1

# bench-whatif benchmarks the /v1/whatif circuit serving mode and refreshes
# BENCH_whatif.json: a warm 32-point sweep must replay the cached circuit
# with zero recompilations, and one replay must beat one warm recompile by
# at least 5× per point.
bench-whatif: build
	$(GO) run ./cmd/loadgen -whatif -out BENCH_whatif.json

# shard-smoke boots a real sharded fleet (2 enframe serve shards + an
# enframe route router, separate processes), requires routed marginals to be
# byte-identical to a single-node reference, joins a third shard and verifies
# the router warmed the keys it now owns (direct shard-side cache probes),
# then SIGKILLs a primary and requires replica failover (SERVING.md,
# "Sharded fleet").
shard-smoke: build
	$(GO) run ./cmd/loadgen -shard-smoke

# stream-smoke boots a real `enframe serve` process and drives the /v1/stream
# streaming data plane end to end: twin sessions (incremental vs an
# always-full-recompile oracle) fed identical delta batches must stay
# bitwise-identical after every push, a duplicate push must be rejected with
# 409 carrying the session sequence, and the process must return to its
# baseline goroutine count after the sessions close (no leaks) before
# draining on SIGTERM (SERVING.md, "Streaming sessions").
stream-smoke: build
	$(GO) run ./cmd/loadgen -stream-smoke

# bench-stream measures streaming update latency and refreshes
# BENCH_stream.json: probability-only deltas must replay the memoized circuit
# at least 100× faster than a warm full recompilation, and incremental
# structural deltas (one dirty segment of eight) at least 2× faster.
bench-stream: build
	$(GO) run ./cmd/loadgen -stream -out BENCH_stream.json

# bench-shard measures shard-count scaling and merges the shard_scaling
# section into BENCH_serve.json: real warm per-key service times partitioned
# by the real consistent-hash ring over 1/2/4 virtual shards (the single-CPU
# CI container cannot show real multi-process scaling — real fleets are
# measured as labeled context). Fails below ×1.5 virtual warm throughput at
# 4 shards.
bench-shard: build
	$(GO) run ./cmd/loadgen -shard-sweep -out BENCH_serve.json

ci: vet build test test-race obs-race alloc-guard smoke serve-smoke worker-smoke trace-smoke bench-distributed circuit-equiv bench-whatif shard-smoke stream-smoke
