GO ?= go
FUZZTIME ?= 30s

.PHONY: build test test-short test-race vet fuzz-smoke fuzz ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fuzz-smoke replays the committed corpora (runs as ordinary tests) and then
# fuzzes each target briefly; quick enough for CI.
fuzz-smoke:
	$(GO) test ./internal/lang ./internal/difftest -run '^Fuzz'
	$(GO) test ./internal/lang -run '^$$' -fuzz '^FuzzLexer$$' -fuzztime 10s
	$(GO) test ./internal/lang -run '^$$' -fuzz '^FuzzParser$$' -fuzztime 10s
	$(GO) test ./internal/difftest -run '^$$' -fuzz '^FuzzPipeline$$' -fuzztime 10s

# fuzz runs the differential pipeline fuzzer for FUZZTIME (default 30s).
fuzz:
	$(GO) test ./internal/difftest -run '^$$' -fuzz '^FuzzPipeline$$' -fuzztime $(FUZZTIME)

ci: vet build test test-race
