package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"enframe/internal/difftest"
)

// runFuzz is the `enframe fuzz` subcommand: run the differential
// verification harness over a contiguous seed range and report every
// disagreement with its reproducing seed.
func runFuzz(args []string) error {
	fs := flag.NewFlagSet("fuzz", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "first generator seed")
	count := fs.Int("n", 100, "number of consecutive seeds to check")
	full := fs.Bool("full", false, "cross all approximation and distribution settings per seed")
	noShrink := fs.Bool("noshrink", false, "report failing programs without shrinking")
	quiet := fs.Bool("q", false, "suppress the per-seed progress dots")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: enframe fuzz [-seed N] [-n COUNT] [-full] [-noshrink] [-q]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("fuzz: unexpected argument %q", fs.Arg(0))
	}
	if *count < 1 {
		return fmt.Errorf("fuzz: -n must be positive")
	}

	opt := difftest.Quick()
	if *full {
		opt = difftest.Full()
	}
	opt.NoShrink = *noShrink

	start := time.Now()
	failures := 0
	for i := 0; i < *count; i++ {
		s := *seed + int64(i)
		if err := difftest.Check(s, opt); err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "\n%v\n", err)
		} else if !*quiet && *count > 1 {
			fmt.Print(".")
		}
	}
	if !*quiet && *count > 1 {
		fmt.Println()
	}
	fmt.Printf("fuzz: %d seeds starting at %d, %d failure(s), %v\n",
		*count, *seed, failures, time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		return fmt.Errorf("%d differential failure(s)", failures)
	}
	return nil
}
