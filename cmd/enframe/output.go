package main

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"enframe/internal/core"
	"enframe/internal/obs"
	"enframe/internal/prob"
)

// JSON output mode (-json): one machine-readable object on stdout carrying
// everything the human-readable table shows, plus the stage-timing
// breakdown, hash-cons accounting, and (with -metrics) the metrics
// registry.

type jsonRun struct {
	Program      string           `json:"program"`
	N            int              `json:"n"`
	Scheme       string           `json:"scheme"`
	Strategy     string           `json:"strategy"`
	Epsilon      float64          `json:"epsilon,omitempty"`
	Workers      int              `json:"workers"`
	Seed         int64            `json:"seed"`
	Objects      int              `json:"objects"`
	Variables    int              `json:"variables"`
	NetworkNodes int              `json:"network_nodes"`
	NodeKinds    map[string]int64 `json:"node_kinds"`
	TimedOut     bool             `json:"timed_out"`
	Targets      []jsonTarget     `json:"targets"`
	Stats        jsonStats        `json:"stats"`
	TimingsMs    jsonTimings      `json:"timings_ms"`
	Metrics      map[string]float64 `json:"metrics,omitempty"`
}

type jsonTarget struct {
	Name     string  `json:"name"`
	Lower    float64 `json:"lower"`
	Upper    float64 `json:"upper"`
	Estimate float64 `json:"estimate"`
}

type jsonStats struct {
	Branches            int64        `json:"branches"`
	Assignments         int64        `json:"assignments"`
	MaskUpdates         int64        `json:"mask_updates"`
	BudgetPrunes        int64        `json:"budget_prunes"`
	MaxDepth            int64        `json:"max_depth"`
	Jobs                int64        `json:"jobs"`
	HashConsHitRate     float64      `json:"hashcons_hit_rate"`
	SimulatedMakespanMs float64      `json:"simulated_makespan_ms,omitempty"`
	PerWorker           []jsonWorker `json:"per_worker,omitempty"`
}

type jsonWorker struct {
	Jobs        int64   `json:"jobs"`
	Branches    int64   `json:"branches"`
	BusyMs      float64 `json:"busy_ms"`
	Utilization float64 `json:"utilization"`
}

type jsonTimings struct {
	Lex            float64 `json:"lex"`
	Parse          float64 `json:"parse"`
	Translate      float64 `json:"translate"`
	Ground         float64 `json:"ground"`
	Compile        float64 `json:"compile"`
	CompileOrder   float64 `json:"compile_order"`
	CompileInit    float64 `json:"compile_init"`
	CompileExplore float64 `json:"compile_explore"`
	Total          float64 `json:"total"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// writeJSON emits the run report as one JSON object.
func writeJSON(w io.Writer, rep *core.Report, targets []prob.TargetBound, tr *obs.Trace, withMetrics bool) error {
	st := rep.Result.Stats
	out := jsonRun{
		Program:      *programFlag,
		N:            *nFlag,
		Scheme:       *schemeFlag,
		Strategy:     *stratFlag,
		Workers:      *workersFlag,
		Seed:         *seedFlag,
		Objects:      *nFlag,
		Variables:    rep.Net.Space.Len(),
		NetworkNodes: rep.Net.NumNodes(),
		NodeKinds:    rep.Net.KindCounts(),
		TimedOut:     rep.Result.TimedOut,
		Stats: jsonStats{
			Branches:            st.Branches,
			Assignments:         st.Assignments,
			MaskUpdates:         st.MaskUpdates,
			BudgetPrunes:        st.BudgetPrunes,
			MaxDepth:            st.MaxDepth,
			Jobs:                st.Jobs,
			HashConsHitRate:     rep.Ground.HitRate(),
			SimulatedMakespanMs: ms(st.SimulatedMakespan),
		},
		TimingsMs: jsonTimings{
			Lex:            ms(rep.Timings.Lex),
			Parse:          ms(rep.Timings.Parse),
			Translate:      ms(rep.Timings.Translate),
			Ground:         ms(rep.Timings.Ground),
			Compile:        ms(rep.Timings.Compile),
			CompileOrder:   ms(st.Timings.Order),
			CompileInit:    ms(st.Timings.Init),
			CompileExplore: ms(st.Timings.Explore),
			Total:          ms(rep.Timings.Total),
		},
	}
	if *stratFlag != "exact" {
		out.Epsilon = *epsFlag
	}
	for _, tb := range targets {
		out.Targets = append(out.Targets, jsonTarget{
			Name: tb.Name, Lower: tb.Lower, Upper: tb.Upper, Estimate: tb.Estimate(),
		})
	}
	makespan := st.Timings.Explore
	if st.SimulatedMakespan > 0 {
		makespan = st.SimulatedMakespan
	}
	for _, ws := range st.PerWorker {
		out.Stats.PerWorker = append(out.Stats.PerWorker, jsonWorker{
			Jobs: ws.Jobs, Branches: ws.Branches,
			BusyMs: ms(ws.Busy), Utilization: ws.Utilization(makespan),
		})
	}
	if withMetrics && tr != nil {
		out.Metrics = map[string]float64{}
		for _, mv := range tr.Metrics().Values() {
			out.Metrics[mv.Name] = mv.Value
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// printWorkerTable renders per-worker utilisation under -trace.
func printWorkerTable(w io.Writer, st prob.Stats) {
	if len(st.PerWorker) == 0 {
		return
	}
	makespan := st.Timings.Explore
	if st.SimulatedMakespan > 0 {
		makespan = st.SimulatedMakespan
	}
	fmt.Fprintln(w, "worker\tjobs\tbranches\tbusy\tutilization")
	for wi, ws := range st.PerWorker {
		fmt.Fprintf(w, "%d\t%d\t%d\t%v\t%.1f%%\n",
			wi, ws.Jobs, ws.Branches, ws.Busy.Round(time.Microsecond),
			100*ws.Utilization(makespan))
	}
}

// printBudgetTimeline summarises the per-target budget-spend timeline.
func printBudgetTimeline(w io.Writer, tr *obs.Trace) {
	pts, dropped := tr.Timeline("budget.spend", 1).Points()
	if len(pts) == 0 {
		return
	}
	perTarget := map[int]float64{}
	for _, p := range pts {
		perTarget[p.Key] += p.Val
	}
	keys := make([]int, 0, len(perTarget))
	for k := range perTarget {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	fmt.Fprintf(w, "budget spend timeline: %d events (%d dropped)\n", len(pts), dropped)
	for _, k := range keys {
		fmt.Fprintf(w, "  target %d: %.6f spent, first at %v, last at %v\n",
			k, perTarget[k], firstAt(pts, k), lastAt(pts, k))
	}
}

func firstAt(pts []obs.TimelinePoint, key int) time.Duration {
	for _, p := range pts {
		if p.Key == key {
			return p.At.Round(time.Microsecond)
		}
	}
	return 0
}

func lastAt(pts []obs.TimelinePoint, key int) time.Duration {
	var last time.Duration
	for _, p := range pts {
		if p.Key == key {
			last = p.At
		}
	}
	return last.Round(time.Microsecond)
}
