package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"enframe/internal/server"
)

// runServe is the `enframe serve` subcommand: the long-lived serving layer
// of internal/server, with SIGINT/SIGTERM triggering a graceful drain.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	inflight := fs.Int("inflight", 0, "max concurrently executing runs (0 = 4×GOMAXPROCS)")
	queue := fs.Int("queue", 0, "max runs waiting for a worker slot (0 = 4×inflight)")
	cacheEntries := fs.Int("cache", 64, "compiled-artifact LRU capacity (entries)")
	defTimeout := fs.Duration("timeout", 30*time.Second, "default per-request deadline")
	maxTimeout := fs.Duration("max-timeout", 2*time.Minute, "upper clamp on requested deadlines")
	maxBody := fs.Int64("max-body", 1<<20, "request body size limit in bytes")
	tenantQuota := fs.Int("tenant-quota", 0, "max admission slots per named tenant (0 = half of inflight+queue)")
	grace := fs.Duration("grace", 30*time.Second, "drain grace period on SIGTERM/SIGINT")
	pprofOn := fs.Bool("pprof", false, "mount /debug/pprof on the serving mux")
	accessLog := fs.Bool("access-log", true, "write one JSON access-log line per request to stderr")
	streamSessions := fs.Int("stream-sessions", 0, "max live /v1/stream sessions (0 = 64)")
	streamIdle := fs.Duration("stream-idle", 0, "idle age after which a stream session may be evicted (0 = 15m)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: enframe serve [-addr HOST:PORT] [flags]   (API schema in SERVING.md)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("serve: unexpected argument %q", fs.Arg(0))
	}

	cfg := server.Config{
		Addr:           *addr,
		MaxInflight:    *inflight,
		QueueDepth:     *queue,
		CacheEntries:   *cacheEntries,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		MaxBodyBytes:   *maxBody,
		TenantQuota:    *tenantQuota,
		Pprof:          *pprofOn,

		MaxStreamSessions: *streamSessions,
		StreamIdleTimeout: *streamIdle,
	}
	if *accessLog {
		cfg.AccessLog = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	srv := server.New(cfg)
	if err := srv.Start(); err != nil {
		return err
	}
	// The LISTEN line is the spawn protocol (same as `enframe worker`):
	// harnesses that start shard fleets on ephemeral ports scrape stdout for
	// the bound address.
	fmt.Printf("LISTEN %s\n", srv.Addr())
	fmt.Fprintf(os.Stderr, "enframe: serving on http://%s (POST /v1/run, POST /v1/stream, GET /healthz, GET /metrics)\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Fprintf(os.Stderr, "enframe: %v received, draining (grace %v)\n", got, *grace)
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "enframe: drained cleanly")
	return nil
}
