package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"

	"enframe/internal/server"
	"enframe/internal/stream"
)

// runStream is the `enframe stream` subcommand: a thin client for the
// /v1/stream session protocol of a running `enframe serve` (or `enframe
// route`) process. One invocation issues one protocol verb; the session id
// printed by create addresses the session in later invocations:
//
//	enframe stream -addr 127.0.0.1:8080 -op create -config '{"segments":3}'
//	enframe stream -addr ... -op push -session ID -base-seq 0 \
//	        -deltas '[{"op":"prob","window":0,"var":"x0","p":0.4}]'
//	enframe stream -addr ... -op query -session ID
//	enframe stream -addr ... -op close -session ID
func runStream(args []string) error {
	fs := flag.NewFlagSet("stream", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "server or router address")
	op := fs.String("op", "query", "protocol verb: create, push, query, or close")
	session := fs.String("session", "", "session id (required for push/query/close)")
	configJSON := fs.String("config", "", "session config JSON for create (see SERVING.md)")
	baseSeq := fs.Uint64("base-seq", 0, "expected session sequence for push")
	deltasJSON := fs.String("deltas", "", "delta batch JSON array for push ('-' = read stdin)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: enframe stream -addr HOST:PORT -op VERB [flags]   (protocol in SERVING.md)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("stream: unexpected argument %q", fs.Arg(0))
	}

	req := server.StreamRequest{Op: *op, SessionID: *session, BaseSeq: *baseSeq}
	if *configJSON != "" {
		req.Config = &stream.Config{}
		if err := json.Unmarshal([]byte(*configJSON), req.Config); err != nil {
			return fmt.Errorf("stream: bad -config: %w", err)
		}
	}
	if *deltasJSON != "" {
		raw := []byte(*deltasJSON)
		if *deltasJSON == "-" {
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(os.Stdin); err != nil {
				return fmt.Errorf("stream: read stdin: %w", err)
			}
			raw = buf.Bytes()
		}
		if err := json.Unmarshal(raw, &req.Deltas); err != nil {
			return fmt.Errorf("stream: bad -deltas: %w", err)
		}
	}

	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post("http://"+*addr+"/v1/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	defer resp.Body.Close()
	var pretty bytes.Buffer
	if _, err := pretty.ReadFrom(resp.Body); err != nil {
		return err
	}
	var out bytes.Buffer
	if json.Indent(&out, pretty.Bytes(), "", "  ") == nil {
		fmt.Println(out.String())
	} else {
		fmt.Println(pretty.String())
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stream: %s: status %d", *op, resp.StatusCode)
	}
	return nil
}
