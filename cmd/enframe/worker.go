// The worker subcommand and the run subcommand's -remote path: both ends of
// the distributed compilation plane (internal/dist, DESIGN.md).
//
// A worker is a long-lived process that executes depth-d compilation jobs
// shipped to it over TCP:
//
//	enframe worker -listen 127.0.0.1:9631
//
// It prints "LISTEN <addr>" on stdout once bound — with -listen :0 the
// ephemeral port is read from there — and serves until SIGINT/SIGTERM.
// Workers resolve shipped artifact specs through the same resolver as the
// HTTP serving layer (server.BuildSpec) and verify the artifact content hash
// before caching the session, so a coordinator and its workers always agree
// on the event network bit for bit.
//
// The run side ships jobs with:
//
//	enframe -remote 127.0.0.1:9631,127.0.0.1:9632 [-remote-fallback] ...
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"enframe/internal/core"
	"enframe/internal/dist"
	"enframe/internal/obs"
	"enframe/internal/prob"
	"enframe/internal/server"
)

// workerFlags is the flag set of the worker subcommand.
var workerFlags = flag.NewFlagSet("worker", flag.ExitOnError)

var (
	workerListenFlag   = workerFlags.String("listen", "127.0.0.1:9631", "TCP address to bind (port 0 picks an ephemeral port, reported on stdout)")
	workerSlotsFlag    = workerFlags.Int("slots", 0, "parallel job capacity advertised to coordinators (0 = GOMAXPROCS)")
	workerSessionsFlag = workerFlags.Int("sessions", 8, "compiled-session cache capacity (oldest evicted beyond it)")
	workerQuietFlag    = workerFlags.Bool("quiet", false, "suppress per-connection diagnostics on stderr")

	// Deterministic fault injection for the smoke harness and fault drills
	// (see TESTING.md); both count completed jobs, not wall clock.
	workerKillAfterFlag = workerFlags.Int64("fault-kill-after", 0, "TESTING: exit after completing this many jobs, mid-stream")
	workerDropNthFlag   = workerFlags.Int64("fault-drop-nth", 0, "TESTING: swallow the result of every Nth completed job")
)

// runWorker starts a distributed compilation worker and serves until Close
// (signal) or a listener error.
func runWorker(args []string) error {
	if err := workerFlags.Parse(args); err != nil {
		return err
	}
	if workerFlags.NArg() > 0 {
		return fmt.Errorf("worker: unexpected argument %q", workerFlags.Arg(0))
	}

	var fault *dist.FaultPlan
	if *workerKillAfterFlag > 0 || *workerDropNthFlag > 0 {
		fault = &dist.FaultPlan{
			KillAfterJobs: *workerKillAfterFlag,
			DropEveryNth:  *workerDropNthFlag,
		}
	}
	logf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "enframe worker: "+format+"\n", a...)
	}
	if *workerQuietFlag {
		logf = nil
	}
	w, err := dist.NewWorker(dist.WorkerConfig{
		Resolver:    resolveWireSpec,
		Slots:       *workerSlotsFlag,
		MaxSessions: *workerSessionsFlag,
		Fault:       fault,
		Logf:        logf,
	})
	if err != nil {
		return err
	}
	if err := w.Listen(*workerListenFlag); err != nil {
		return err
	}

	// The LISTEN line is the spawn protocol: harnesses that start workers
	// with -listen :0 scrape the ephemeral port from stdout.
	fmt.Printf("LISTEN %s\n", w.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		_ = w.Close()
	}()
	return w.Serve()
}

// resolveWireSpec is the worker-side artifact resolver: shipped specs are
// server.RunRequest JSON stripped to artifact-identifying fields
// (server.ArtifactRequest), so the worker re-derives the network through the
// exact code path the serving layer uses.
func resolveWireSpec(specJSON []byte) (core.Spec, string, error) {
	var req server.RunRequest
	if err := json.Unmarshal(specJSON, &req); err != nil {
		return core.Spec{}, "", fmt.Errorf("worker: decode spec: %w", err)
	}
	return server.BuildSpec(req)
}

// remoteRequest projects the run flags onto the served request shape. The
// program always ships as inline source (workers never read local files);
// the artifact key hashes resolved source text, so inline and builtin forms
// of the same program share a key.
func remoteRequest(source string) server.RunRequest {
	return server.RunRequest{
		Source: source,
		Data: server.DataSpec{
			Kind:    "sensor",
			N:       *nFlag,
			Scheme:  *schemeFlag,
			Vars:    *varsFlag,
			L:       *lFlag,
			M:       *mFlag,
			Certain: *certainFlag,
			Group:   *groupFlag,
			Seed:    *seedFlag,
		},
		Params:   server.ParamSpec{K: *kFlag, Iter: *iterFlag, R: *rFlag},
		Targets:  splitTargets(*targetsFlag),
		Strategy: *stratFlag,
		Epsilon:  *epsFlag,
		JobDepth: *jobFlag,
	}
}

// runRemote is the run subcommand's -remote path: prepare the artifact
// locally, dial the worker pool, and compile by shipping jobs. With
// -remote-fallback, transport-level failure reruns in process — the same
// policy the serving layer applies to remote_fallback requests.
func runRemote(source string, strategy prob.Strategy, tr *obs.Trace) (*core.Report, error) {
	ctx := context.Background()
	req := remoteRequest(source)
	spec, key, err := server.BuildSpec(req)
	if err != nil {
		return nil, err
	}
	spec.Compile.Obs = tr
	art, err := core.PrepareContext(ctx, spec)
	if err != nil {
		return nil, err
	}
	opts := prob.Options{
		Strategy: strategy,
		Epsilon:  *epsFlag,
		Workers:  *workersFlag,
		JobDepth: *jobFlag,
		Timeout:  *timeoutFlag,
		Obs:      tr,
	}
	rep, err := compileRemote(ctx, art, key, req, opts, tr)
	if err == nil {
		return rep, nil
	}
	if *remoteFallbackFlag && isRemoteErr(err) {
		fmt.Fprintf(os.Stderr, "enframe: remote plane unavailable (%v); falling back to local compilation\n", err)
		return art.CompileContext(ctx, opts)
	}
	return nil, err
}

// compileRemote runs one compilation over a freshly dialed pool.
func compileRemote(ctx context.Context, art *core.Artifact, key string, req server.RunRequest, opts prob.Options, tr *obs.Trace) (*core.Report, error) {
	var reg *obs.Registry
	if tr != nil {
		reg = tr.Metrics()
	}
	pool, err := dist.NewPool(ctx, dist.PoolConfig{
		Addrs: splitTargets(*remoteFlag),
		Reg:   reg,
	})
	if err != nil {
		return nil, err
	}
	defer pool.Close()

	specJSON, err := json.Marshal(server.ArtifactRequest(req))
	if err != nil {
		return nil, fmt.Errorf("encode wire spec: %w", err)
	}
	opts.Order = art.Order(opts.Heuristic)
	exec := pool.Session(key, specJSON, dist.FromOptions(opts))

	tm := art.PrepTimings
	tCompile := time.Now()
	pr, err := prob.CompileExec(ctx, art.Net, opts, exec)
	tm.Compile = time.Since(tCompile)
	tm.Total = tm.Lex + tm.Parse + tm.Translate + tm.Ground + tm.Compile
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "enframe: remote: compiled over %d live worker(s)\n", pool.AliveWorkers())
	return &core.Report{
		Result: pr, Events: art.Events, Net: art.Net, Translation: art.Translation,
		Ground: art.Ground, Timings: tm,
	}, nil
}

// isRemoteErr classifies transport-plane failures (protocol violations, lost
// or unreachable workers) that -remote-fallback may absorb; artifact and
// compilation errors stay fatal either way.
func isRemoteErr(err error) bool {
	return dist.IsProtocolError(err) || errors.Is(err, prob.ErrExecutorUnavailable)
}
